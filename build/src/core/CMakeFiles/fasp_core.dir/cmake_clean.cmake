file(REMOVE_RECURSE
  "CMakeFiles/fasp_core.dir/buffered_engine.cc.o"
  "CMakeFiles/fasp_core.dir/buffered_engine.cc.o.d"
  "CMakeFiles/fasp_core.dir/engine.cc.o"
  "CMakeFiles/fasp_core.dir/engine.cc.o.d"
  "CMakeFiles/fasp_core.dir/fasp_engine.cc.o"
  "CMakeFiles/fasp_core.dir/fasp_engine.cc.o.d"
  "CMakeFiles/fasp_core.dir/fasp_page_io.cc.o"
  "CMakeFiles/fasp_core.dir/fasp_page_io.cc.o.d"
  "libfasp_core.a"
  "libfasp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
