file(REMOVE_RECURSE
  "libfasp_core.a"
)
