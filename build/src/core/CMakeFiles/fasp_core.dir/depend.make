# Empty dependencies file for fasp_core.
# This may be replaced when dependencies are built.
