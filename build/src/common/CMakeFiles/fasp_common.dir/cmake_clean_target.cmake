file(REMOVE_RECURSE
  "libfasp_common.a"
)
