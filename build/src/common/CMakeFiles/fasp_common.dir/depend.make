# Empty dependencies file for fasp_common.
# This may be replaced when dependencies are built.
