file(REMOVE_RECURSE
  "CMakeFiles/fasp_common.dir/crc32.cc.o"
  "CMakeFiles/fasp_common.dir/crc32.cc.o.d"
  "CMakeFiles/fasp_common.dir/logging.cc.o"
  "CMakeFiles/fasp_common.dir/logging.cc.o.d"
  "CMakeFiles/fasp_common.dir/rng.cc.o"
  "CMakeFiles/fasp_common.dir/rng.cc.o.d"
  "CMakeFiles/fasp_common.dir/status.cc.o"
  "CMakeFiles/fasp_common.dir/status.cc.o.d"
  "libfasp_common.a"
  "libfasp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
