# Empty compiler generated dependencies file for fasp_bench_util.
# This may be replaced when dependencies are built.
