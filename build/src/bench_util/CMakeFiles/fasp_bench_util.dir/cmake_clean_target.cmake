file(REMOVE_RECURSE
  "libfasp_bench_util.a"
)
