file(REMOVE_RECURSE
  "CMakeFiles/fasp_bench_util.dir/runner.cc.o"
  "CMakeFiles/fasp_bench_util.dir/runner.cc.o.d"
  "CMakeFiles/fasp_bench_util.dir/table.cc.o"
  "CMakeFiles/fasp_bench_util.dir/table.cc.o.d"
  "libfasp_bench_util.a"
  "libfasp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
