file(REMOVE_RECURSE
  "CMakeFiles/fasp_workload.dir/workload.cc.o"
  "CMakeFiles/fasp_workload.dir/workload.cc.o.d"
  "libfasp_workload.a"
  "libfasp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
