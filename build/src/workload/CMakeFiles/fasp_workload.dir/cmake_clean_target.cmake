file(REMOVE_RECURSE
  "libfasp_workload.a"
)
