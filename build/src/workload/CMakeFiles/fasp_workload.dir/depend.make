# Empty dependencies file for fasp_workload.
# This may be replaced when dependencies are built.
