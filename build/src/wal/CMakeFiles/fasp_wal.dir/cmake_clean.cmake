file(REMOVE_RECURSE
  "CMakeFiles/fasp_wal.dir/journal.cc.o"
  "CMakeFiles/fasp_wal.dir/journal.cc.o.d"
  "CMakeFiles/fasp_wal.dir/legacy_wal.cc.o"
  "CMakeFiles/fasp_wal.dir/legacy_wal.cc.o.d"
  "CMakeFiles/fasp_wal.dir/nv_heap.cc.o"
  "CMakeFiles/fasp_wal.dir/nv_heap.cc.o.d"
  "CMakeFiles/fasp_wal.dir/nvwal_log.cc.o"
  "CMakeFiles/fasp_wal.dir/nvwal_log.cc.o.d"
  "CMakeFiles/fasp_wal.dir/slot_header_log.cc.o"
  "CMakeFiles/fasp_wal.dir/slot_header_log.cc.o.d"
  "CMakeFiles/fasp_wal.dir/volatile_cache.cc.o"
  "CMakeFiles/fasp_wal.dir/volatile_cache.cc.o.d"
  "libfasp_wal.a"
  "libfasp_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
