# Empty dependencies file for fasp_wal.
# This may be replaced when dependencies are built.
