file(REMOVE_RECURSE
  "libfasp_wal.a"
)
