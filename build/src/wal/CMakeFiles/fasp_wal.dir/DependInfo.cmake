
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wal/journal.cc" "src/wal/CMakeFiles/fasp_wal.dir/journal.cc.o" "gcc" "src/wal/CMakeFiles/fasp_wal.dir/journal.cc.o.d"
  "/root/repo/src/wal/legacy_wal.cc" "src/wal/CMakeFiles/fasp_wal.dir/legacy_wal.cc.o" "gcc" "src/wal/CMakeFiles/fasp_wal.dir/legacy_wal.cc.o.d"
  "/root/repo/src/wal/nv_heap.cc" "src/wal/CMakeFiles/fasp_wal.dir/nv_heap.cc.o" "gcc" "src/wal/CMakeFiles/fasp_wal.dir/nv_heap.cc.o.d"
  "/root/repo/src/wal/nvwal_log.cc" "src/wal/CMakeFiles/fasp_wal.dir/nvwal_log.cc.o" "gcc" "src/wal/CMakeFiles/fasp_wal.dir/nvwal_log.cc.o.d"
  "/root/repo/src/wal/slot_header_log.cc" "src/wal/CMakeFiles/fasp_wal.dir/slot_header_log.cc.o" "gcc" "src/wal/CMakeFiles/fasp_wal.dir/slot_header_log.cc.o.d"
  "/root/repo/src/wal/volatile_cache.cc" "src/wal/CMakeFiles/fasp_wal.dir/volatile_cache.cc.o" "gcc" "src/wal/CMakeFiles/fasp_wal.dir/volatile_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fasp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/fasp_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/pager/CMakeFiles/fasp_pager.dir/DependInfo.cmake"
  "/root/repo/build/src/page/CMakeFiles/fasp_page.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
