file(REMOVE_RECURSE
  "CMakeFiles/fasp_pm.dir/device.cc.o"
  "CMakeFiles/fasp_pm.dir/device.cc.o.d"
  "CMakeFiles/fasp_pm.dir/phase.cc.o"
  "CMakeFiles/fasp_pm.dir/phase.cc.o.d"
  "libfasp_pm.a"
  "libfasp_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
