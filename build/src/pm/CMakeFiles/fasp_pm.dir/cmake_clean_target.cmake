file(REMOVE_RECURSE
  "libfasp_pm.a"
)
