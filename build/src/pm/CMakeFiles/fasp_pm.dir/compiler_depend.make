# Empty compiler generated dependencies file for fasp_pm.
# This may be replaced when dependencies are built.
