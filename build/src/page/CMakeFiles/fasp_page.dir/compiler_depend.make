# Empty compiler generated dependencies file for fasp_page.
# This may be replaced when dependencies are built.
