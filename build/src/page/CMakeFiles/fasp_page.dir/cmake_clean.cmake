file(REMOVE_RECURSE
  "CMakeFiles/fasp_page.dir/page_io.cc.o"
  "CMakeFiles/fasp_page.dir/page_io.cc.o.d"
  "CMakeFiles/fasp_page.dir/slotted_page.cc.o"
  "CMakeFiles/fasp_page.dir/slotted_page.cc.o.d"
  "libfasp_page.a"
  "libfasp_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
