file(REMOVE_RECURSE
  "libfasp_page.a"
)
