
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/page/page_io.cc" "src/page/CMakeFiles/fasp_page.dir/page_io.cc.o" "gcc" "src/page/CMakeFiles/fasp_page.dir/page_io.cc.o.d"
  "/root/repo/src/page/slotted_page.cc" "src/page/CMakeFiles/fasp_page.dir/slotted_page.cc.o" "gcc" "src/page/CMakeFiles/fasp_page.dir/slotted_page.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fasp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
