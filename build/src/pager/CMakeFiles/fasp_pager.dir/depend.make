# Empty dependencies file for fasp_pager.
# This may be replaced when dependencies are built.
