file(REMOVE_RECURSE
  "libfasp_pager.a"
)
