file(REMOVE_RECURSE
  "CMakeFiles/fasp_pager.dir/pager.cc.o"
  "CMakeFiles/fasp_pager.dir/pager.cc.o.d"
  "CMakeFiles/fasp_pager.dir/superblock.cc.o"
  "CMakeFiles/fasp_pager.dir/superblock.cc.o.d"
  "libfasp_pager.a"
  "libfasp_pager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_pager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
