# Empty dependencies file for fasp_db.
# This may be replaced when dependencies are built.
