file(REMOVE_RECURSE
  "CMakeFiles/fasp_db.dir/ast.cc.o"
  "CMakeFiles/fasp_db.dir/ast.cc.o.d"
  "CMakeFiles/fasp_db.dir/catalog.cc.o"
  "CMakeFiles/fasp_db.dir/catalog.cc.o.d"
  "CMakeFiles/fasp_db.dir/database.cc.o"
  "CMakeFiles/fasp_db.dir/database.cc.o.d"
  "CMakeFiles/fasp_db.dir/executor.cc.o"
  "CMakeFiles/fasp_db.dir/executor.cc.o.d"
  "CMakeFiles/fasp_db.dir/parser.cc.o"
  "CMakeFiles/fasp_db.dir/parser.cc.o.d"
  "CMakeFiles/fasp_db.dir/row_codec.cc.o"
  "CMakeFiles/fasp_db.dir/row_codec.cc.o.d"
  "CMakeFiles/fasp_db.dir/tokenizer.cc.o"
  "CMakeFiles/fasp_db.dir/tokenizer.cc.o.d"
  "CMakeFiles/fasp_db.dir/value.cc.o"
  "CMakeFiles/fasp_db.dir/value.cc.o.d"
  "libfasp_db.a"
  "libfasp_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
