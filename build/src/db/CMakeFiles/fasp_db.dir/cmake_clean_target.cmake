file(REMOVE_RECURSE
  "libfasp_db.a"
)
