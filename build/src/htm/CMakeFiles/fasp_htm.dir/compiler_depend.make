# Empty compiler generated dependencies file for fasp_htm.
# This may be replaced when dependencies are built.
