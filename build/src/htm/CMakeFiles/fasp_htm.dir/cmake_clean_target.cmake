file(REMOVE_RECURSE
  "libfasp_htm.a"
)
