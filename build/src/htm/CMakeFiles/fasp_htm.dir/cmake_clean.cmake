file(REMOVE_RECURSE
  "CMakeFiles/fasp_htm.dir/rtm.cc.o"
  "CMakeFiles/fasp_htm.dir/rtm.cc.o.d"
  "libfasp_htm.a"
  "libfasp_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
