file(REMOVE_RECURSE
  "CMakeFiles/fasp_btree.dir/btree.cc.o"
  "CMakeFiles/fasp_btree.dir/btree.cc.o.d"
  "CMakeFiles/fasp_btree.dir/hash_index.cc.o"
  "CMakeFiles/fasp_btree.dir/hash_index.cc.o.d"
  "libfasp_btree.a"
  "libfasp_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
