# Empty dependencies file for fasp_btree.
# This may be replaced when dependencies are built.
