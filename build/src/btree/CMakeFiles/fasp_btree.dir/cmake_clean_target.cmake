file(REMOVE_RECURSE
  "libfasp_btree.a"
)
