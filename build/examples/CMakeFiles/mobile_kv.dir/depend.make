# Empty dependencies file for mobile_kv.
# This may be replaced when dependencies are built.
