file(REMOVE_RECURSE
  "CMakeFiles/mobile_kv.dir/mobile_kv.cpp.o"
  "CMakeFiles/mobile_kv.dir/mobile_kv.cpp.o.d"
  "mobile_kv"
  "mobile_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
