# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/pm_test[1]_include.cmake")
include("/root/repo/build/tests/htm_test[1]_include.cmake")
include("/root/repo/build/tests/page_test[1]_include.cmake")
include("/root/repo/build/tests/pager_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/crash_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/fasp_page_io_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/page_param_test[1]_include.cmake")
include("/root/repo/build/tests/page_size_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/hash_index_test[1]_include.cmake")
include("/root/repo/build/tests/paper_figures_test[1]_include.cmake")
include("/root/repo/build/tests/atomicity_assumptions_test[1]_include.cmake")
include("/root/repo/build/tests/prune_test[1]_include.cmake")
