
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/engine_test.cc" "tests/CMakeFiles/engine_test.dir/core/engine_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/core/engine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fasp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/fasp_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/fasp_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/page/CMakeFiles/fasp_page.dir/DependInfo.cmake"
  "/root/repo/build/src/pager/CMakeFiles/fasp_pager.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/fasp_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/fasp_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fasp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/fasp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fasp_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
