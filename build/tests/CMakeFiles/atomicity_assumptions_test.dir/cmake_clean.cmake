file(REMOVE_RECURSE
  "CMakeFiles/atomicity_assumptions_test.dir/recovery/atomicity_assumptions_test.cc.o"
  "CMakeFiles/atomicity_assumptions_test.dir/recovery/atomicity_assumptions_test.cc.o.d"
  "atomicity_assumptions_test"
  "atomicity_assumptions_test.pdb"
  "atomicity_assumptions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomicity_assumptions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
