# Empty dependencies file for atomicity_assumptions_test.
# This may be replaced when dependencies are built.
