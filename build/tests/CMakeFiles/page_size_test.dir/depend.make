# Empty dependencies file for page_size_test.
# This may be replaced when dependencies are built.
