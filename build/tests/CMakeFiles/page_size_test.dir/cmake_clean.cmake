file(REMOVE_RECURSE
  "CMakeFiles/page_size_test.dir/core/page_size_test.cc.o"
  "CMakeFiles/page_size_test.dir/core/page_size_test.cc.o.d"
  "page_size_test"
  "page_size_test.pdb"
  "page_size_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_size_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
