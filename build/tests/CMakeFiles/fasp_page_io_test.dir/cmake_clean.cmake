file(REMOVE_RECURSE
  "CMakeFiles/fasp_page_io_test.dir/core/fasp_page_io_test.cc.o"
  "CMakeFiles/fasp_page_io_test.dir/core/fasp_page_io_test.cc.o.d"
  "fasp_page_io_test"
  "fasp_page_io_test.pdb"
  "fasp_page_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasp_page_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
