# Empty dependencies file for fasp_page_io_test.
# This may be replaced when dependencies are built.
