file(REMOVE_RECURSE
  "CMakeFiles/page_param_test.dir/page/page_param_test.cc.o"
  "CMakeFiles/page_param_test.dir/page/page_param_test.cc.o.d"
  "page_param_test"
  "page_param_test.pdb"
  "page_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
