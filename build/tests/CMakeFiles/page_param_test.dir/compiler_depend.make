# Empty compiler generated dependencies file for page_param_test.
# This may be replaced when dependencies are built.
