# Empty compiler generated dependencies file for fig06_insert_breakdown.
# This may be replaced when dependencies are built.
