# Empty dependencies file for fig10_multi_insert.
# This may be replaced when dependencies are built.
