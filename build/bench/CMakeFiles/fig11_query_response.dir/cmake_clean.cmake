file(REMOVE_RECURSE
  "CMakeFiles/fig11_query_response.dir/fig11_query_response.cc.o"
  "CMakeFiles/fig11_query_response.dir/fig11_query_response.cc.o.d"
  "fig11_query_response"
  "fig11_query_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_query_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
