# Empty compiler generated dependencies file for fig11_query_response.
# This may be replaced when dependencies are built.
