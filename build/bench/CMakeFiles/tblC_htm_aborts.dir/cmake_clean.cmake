file(REMOVE_RECURSE
  "CMakeFiles/tblC_htm_aborts.dir/tblC_htm_aborts.cc.o"
  "CMakeFiles/tblC_htm_aborts.dir/tblC_htm_aborts.cc.o.d"
  "tblC_htm_aborts"
  "tblC_htm_aborts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tblC_htm_aborts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
