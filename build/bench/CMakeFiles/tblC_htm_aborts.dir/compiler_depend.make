# Empty compiler generated dependencies file for tblC_htm_aborts.
# This may be replaced when dependencies are built.
