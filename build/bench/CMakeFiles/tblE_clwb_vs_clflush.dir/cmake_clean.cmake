file(REMOVE_RECURSE
  "CMakeFiles/tblE_clwb_vs_clflush.dir/tblE_clwb_vs_clflush.cc.o"
  "CMakeFiles/tblE_clwb_vs_clflush.dir/tblE_clwb_vs_clflush.cc.o.d"
  "tblE_clwb_vs_clflush"
  "tblE_clwb_vs_clflush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tblE_clwb_vs_clflush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
