# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tblE_clwb_vs_clflush.
