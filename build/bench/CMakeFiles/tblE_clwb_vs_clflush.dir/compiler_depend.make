# Empty compiler generated dependencies file for tblE_clwb_vs_clflush.
# This may be replaced when dependencies are built.
