# Empty dependencies file for fig08_commit_breakdown.
# This may be replaced when dependencies are built.
