file(REMOVE_RECURSE
  "CMakeFiles/tblA_write_amplification.dir/tblA_write_amplification.cc.o"
  "CMakeFiles/tblA_write_amplification.dir/tblA_write_amplification.cc.o.d"
  "tblA_write_amplification"
  "tblA_write_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tblA_write_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
