# Empty compiler generated dependencies file for tblA_write_amplification.
# This may be replaced when dependencies are built.
