file(REMOVE_RECURSE
  "CMakeFiles/tblD_hash_vs_btree.dir/tblD_hash_vs_btree.cc.o"
  "CMakeFiles/tblD_hash_vs_btree.dir/tblD_hash_vs_btree.cc.o.d"
  "tblD_hash_vs_btree"
  "tblD_hash_vs_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tblD_hash_vs_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
