# Empty compiler generated dependencies file for tblD_hash_vs_btree.
# This may be replaced when dependencies are built.
