# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tblD_hash_vs_btree.
