# Empty dependencies file for tblB_defrag_overhead.
# This may be replaced when dependencies are built.
