file(REMOVE_RECURSE
  "CMakeFiles/tblB_defrag_overhead.dir/tblB_defrag_overhead.cc.o"
  "CMakeFiles/tblB_defrag_overhead.dir/tblB_defrag_overhead.cc.o.d"
  "tblB_defrag_overhead"
  "tblB_defrag_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tblB_defrag_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
