// Negative-compile fixture: calling a REQUIRES(mu) function without
// holding the capability must be rejected under -Werror=thread-safety.
#include "common/thread_annotations.h"

namespace {

class Log
{
  public:
    void append(int entry) REQUIRES(mu_) { last_ = entry; }

    void appendBroken(int entry)
    {
        append(entry); // BAD: mu_ not held
    }

  private:
    fasp::Mutex mu_;
    int last_ GUARDED_BY(mu_) = 0;
};

} // namespace

int
main()
{
    Log log;
    log.appendBroken(7);
    return 0;
}
