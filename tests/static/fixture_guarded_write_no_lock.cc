// Negative-compile fixture: writing a GUARDED_BY member without the
// guarding mutex must be rejected under -Werror=thread-safety.
#include "common/thread_annotations.h"

namespace {

class Counter
{
  public:
    void incrementBroken()
    {
        value_++; // BAD: mu_ not held
    }

  private:
    fasp::Mutex mu_;
    int value_ GUARDED_BY(mu_) = 0;
};

} // namespace

int
main()
{
    Counter counter;
    counter.incrementBroken();
    return 0;
}
