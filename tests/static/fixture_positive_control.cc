// Positive-control fixture: idiomatic use of the annotated primitives
// — fasp::MutexLock over a GUARDED_BY member, a REQUIRES callee under
// the lock, and the RAII PageLatch guards — must compile clean under
// -Wthread-safety -Werror=thread-safety. If this fixture fails, the
// macros are broken, not the callers.
#include "common/thread_annotations.h"
#include "pager/latch_table.h"

namespace {

class Counter
{
  public:
    void increment()
    {
        fasp::MutexLock lk(&mu_);
        bump();
    }

    int snapshot()
    {
        fasp::MutexLock lk(&mu_);
        return value_;
    }

  private:
    void bump() REQUIRES(mu_) { value_++; }

    fasp::Mutex mu_;
    int value_ GUARDED_BY(mu_) = 0;
};

int
readUnderLatches(fasp::LatchTable &table, fasp::PageId pid,
                 Counter &counter)
{
    std::size_t slot = table.slotFor(pid);
    {
        fasp::SharedPageLatchGuard shared(table.latch(slot), pid);
        counter.increment();
    }
    fasp::ExclusivePageLatchGuard exclusive(table.latch(slot), pid);
    return counter.snapshot();
}

} // namespace

int
main()
{
    fasp::LatchTable table(8);
    Counter counter;
    return readUnderLatches(table, 3, counter);
}
