// fasp-analyze fixture: v2s must fire.
//
// The first clflush executes before any PM store on every path into
// it — it cannot be ordering anything this function wrote.
#include <cstdint>

namespace pm { class PmDevice; }

void
publishRecord(pm::PmDevice &device, std::uint64_t off)
{
    device.clflush(off); // nothing stored yet on any path
    device.writeU64(off, 7u);
    device.clflush(off);
    device.sfence();
}
