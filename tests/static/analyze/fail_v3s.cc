// fasp-analyze fixture: v3s must fire.
//
// The record is flushed but the fence comes after txCommitPoint: at
// the commit point the line is FLUSHED, not FENCED, so the commit
// record can reach PM before the payload.
#include <cstdint>

namespace pm { class PmDevice; }

void
commitRecord(pm::PmDevice &device, std::uint64_t off)
{
    device.txBegin();
    device.writeU64(off, 7u);
    device.clflush(off);
    device.txCommitPoint(); // `off` not yet fenced
    device.sfence();
    device.txEnd(true);
}
