// fasp-analyze fixture: v1s must fire.
//
// The early-return path leaves `off` DIRTY at function exit, and the
// function participates in the persistence protocol (it fences), so
// durability is its own responsibility, not a caller's.
#include <cstdint>

namespace pm { class PmDevice; }

void
commitHeader(pm::PmDevice &device, std::uint64_t off, bool fastPath)
{
    device.writeU64(off, 1u);
    if (fastPath)
        return; // leaves `off` unflushed
    device.clflush(off);
    device.sfence();
}
