// fasp-analyze fixture: the clang front end must reproduce, from a
// hand-written `-ast-dump=json` document (clang_schema.json), the
// same v1s the internal front end reports on this source. The JSON
// exercises the delta-encoded location scheme: "file" appears once
// and is inherited across skipped subtrees, macro locations resolve
// to expansion coordinates, "includedFrom" never advances the
// decoder, and /usr/ declarations are rejected wholesale.
#include <cstdint>

namespace pm { class PmDevice; }

void
publishEpoch(pm::PmDevice &device, std::uint64_t off, bool fastPath)
{
    device.writeU64(off, 2u);
    if (fastPath)
        return; // leaves `off` unflushed
    device.clflush(off);
    device.sfence();
}
