// fasp-analyze fixture: a justified waiver suppresses its finding —
// zero findings, exit 0 (and the waiver counts as used, so no
// stale-waiver either).
#include <cstdint>

namespace pm { class PmDevice; }

void
bestEffortHint(pm::PmDevice &device, std::uint64_t off)
{
    device.sfence();
    // fasp-analyze: allow(v1s) -- hint cell is best-effort; rebuilt on recovery
    device.writeU64(off, 1u);
}
