// fasp-analyze fixture: stale-waiver must fire.
//
// The file-level waiver below names a real rule and carries a reason,
// but the code is fully compliant — the waiver suppresses nothing and
// must be flagged so dead waivers cannot accumulate.
// fasp-analyze: allow-file(v1s) -- deliberately stale: nothing to waive
#include <cstdint>

namespace pm { class PmDevice; }

void
wellBehaved(pm::PmDevice &device, std::uint64_t off)
{
    device.writeU64(off, 1u);
    device.clflush(off);
    device.sfence();
}
