// fasp-analyze fixture: fence-in-loop must fire (warning; the test
// runs with --werror so it also gates the exit code).
//
// Flushing per iteration is required; fencing per iteration is a
// serializing stall per frame. The fence belongs after the loop.
#include <cstdint>

namespace pm { class PmDevice; }

void
writeFrames(pm::PmDevice &device, std::uint64_t base, int count)
{
    for (int i = 0; i < count; ++i) {
        device.writeU64(base + 16u * static_cast<std::uint64_t>(i), 1u);
        device.clflush(base + 16u * static_cast<std::uint64_t>(i));
        device.sfence(); // should be hoisted out of the loop
    }
}
