// fasp-analyze fixture: waiver-needs-reason must fire, and the
// unjustified waiver must NOT suppress the v1s underneath it.
#include <cstdint>

namespace pm { class PmDevice; }

void
leakStore(pm::PmDevice &device, std::uint64_t off)
{
    device.sfence();
    // fasp-analyze: allow(v1s)
    device.writeU64(off, 1u);
}
