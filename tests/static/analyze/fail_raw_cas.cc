// fasp-analyze fixture: raw-cas must fire.
//
// This file does not live under src/pm/, so calling PmDevice::casU64
// directly skips the dirty-tag protocol (pm::Pcas::cas) that keeps
// the checker's V4 CAS carve-out sound.
#include <cstdint>

namespace pm { class PmDevice; }

bool
bumpVersion(pm::PmDevice &device, std::uint64_t off,
            std::uint64_t expected)
{
    bool won = device.casU64(off, expected, expected + 1) != 0u;
    device.clflush(off);
    device.sfence();
    return won;
}
