// fasp-analyze fixture: the repo's canonical idioms must analyze
// clean — zero findings, exit 0.
//
// Exercises: RAII latch guards and SiteScope tags (string literal and
// named constant), branches, early return on the abort path, a flush
// loop with the fence hoisted after it, txCommitPoint ordering, a
// switch with default, a do-while, and a lambda.
#include <cstdint>

namespace pm { class PmDevice; class SiteScope; }
namespace fasp { class Mutex; class MutexLock; }

namespace demo {

constexpr const char *kScrubSite = "Appender::scrub";

class Appender
{
  public:
    void append(std::uint64_t base, int frames);
    void repair(std::uint64_t off, int mode);
    void scrub(std::uint64_t off);

  private:
    pm::PmDevice &device_;
    fasp::Mutex mu_;
};

void
Appender::append(std::uint64_t base, int frames)
{
    fasp::MutexLock lock(&mu_);
    pm::SiteScope site(device_, "Appender::append");
    device_.txBegin();
    if (frames == 0) {
        device_.txEnd(false);
        return; // abort path: nothing written
    }
    for (int i = 0; i < frames; ++i) {
        device_.writeU64(base + 16u * static_cast<std::uint64_t>(i), 1u);
        device_.clflush(base + 16u * static_cast<std::uint64_t>(i));
    }
    device_.sfence(); // one fence for the whole batch
    device_.txCommitPoint();
    device_.writeU64(base, 2u);
    device_.clflush(base);
    device_.sfence();
    device_.txEnd(true);
}

void
Appender::repair(std::uint64_t off, int mode)
{
    fasp::MutexLock lock(&mu_);
    switch (mode) {
    case 0:
        device_.writeU64(off, 0u);
        break;
    case 1:
        device_.writeU64(off, 1u);
        break;
    default:
        return; // nothing written on unknown modes
    }
    device_.clflush(off);
    device_.sfence();
}

void
Appender::scrub(std::uint64_t off)
{
    pm::SiteScope site(device_, kScrubSite);
    device_.writeU64(off, 0u);
    auto flushLine = [&]() { device_.clflush(off); };
    bool again = true;
    do {
        flushLine();
        again = false;
    } while (again);
    device_.sfence();
}

} // namespace demo
