/**
 * @file
 * Unit tests for Status / Result.
 */

#include <gtest/gtest.h>

#include "common/status.h"

namespace fasp {
namespace {

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage)
{
    Status s(StatusCode::Corruption, "bad header");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_EQ(s.message(), "bad header");
    EXPECT_EQ(s.toString(), "Corruption: bad header");
}

TEST(StatusTest, ShorthandConstructors)
{
    EXPECT_EQ(statusNotFound().code(), StatusCode::NotFound);
    EXPECT_EQ(statusAlreadyExists().code(), StatusCode::AlreadyExists);
    EXPECT_EQ(statusPageFull().code(), StatusCode::PageFull);
    EXPECT_EQ(statusCorruption().code(), StatusCode::Corruption);
    EXPECT_EQ(statusInvalid().code(), StatusCode::InvalidArgument);
    EXPECT_EQ(statusNoSpace().code(), StatusCode::NoSpace);
    EXPECT_EQ(statusParseError().code(), StatusCode::ParseError);
}

TEST(StatusTest, EqualityComparesCodeOnly)
{
    EXPECT_EQ(Status(StatusCode::NotFound, "a"),
              Status(StatusCode::NotFound, "b"));
    EXPECT_FALSE(Status(StatusCode::NotFound) ==
                 Status(StatusCode::NoSpace));
}

TEST(StatusTest, EveryCodeHasAName)
{
    for (int c = 0; c <= static_cast<int>(StatusCode::ParseError); ++c) {
        EXPECT_STRNE(statusCodeName(static_cast<StatusCode>(c)),
                     "Unknown");
    }
}

TEST(ResultTest, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(*r, 42);
    EXPECT_TRUE(r.status().isOk());
}

TEST(ResultTest, HoldsError)
{
    Result<int> r(statusNotFound("missing"));
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), StatusCode::NotFound);
}

TEST(ResultTest, ValueOrFallsBack)
{
    EXPECT_EQ((Result<int>(7)).valueOr(9), 7);
    EXPECT_EQ((Result<int>(statusNotFound())).valueOr(9), 9);
}

TEST(ResultTest, MoveOnlyTypes)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
    ASSERT_TRUE(r.isOk());
    std::unique_ptr<int> p = std::move(*r);
    EXPECT_EQ(*p, 5);
}

Status
helperReturnsEarly(bool fail)
{
    FASP_RETURN_IF_ERROR(fail ? statusNoSpace("full") : Status::ok());
    return statusNotFound("fell through");
}

TEST(ResultTest, ReturnIfErrorMacro)
{
    EXPECT_EQ(helperReturnsEarly(true).code(), StatusCode::NoSpace);
    EXPECT_EQ(helperReturnsEarly(false).code(), StatusCode::NotFound);
}

} // namespace
} // namespace fasp
