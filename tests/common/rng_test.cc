/**
 * @file
 * Unit tests for the deterministic RNG and Zipf generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"

namespace fasp {
namespace {

TEST(RngTest, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, BoundedCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng.nextInRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, BernoulliRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, FillBytesFillsExactLength)
{
    Rng rng(17);
    unsigned char buf[37];
    std::fill(std::begin(buf), std::end(buf), 0xcc);
    rng.fillBytes(buf, 29);
    // The tail must be untouched.
    for (int i = 29; i < 37; ++i)
        EXPECT_EQ(buf[i], 0xcc);
}

TEST(ZipfTest, SamplesInRange)
{
    Rng rng(19);
    ZipfGenerator zipf(1000, 0.99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.next(rng), 1000u);
}

TEST(ZipfTest, SkewFavorsLowRanks)
{
    Rng rng(23);
    ZipfGenerator zipf(10000, 0.99);
    std::map<std::uint64_t, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[zipf.next(rng)]++;
    // Rank 0 should dominate: clearly above the uniform expectation.
    EXPECT_GT(counts[0], n / 10000 * 50);
    // And the head (first 100 ranks) should hold a large share.
    int head = 0;
    for (std::uint64_t r = 0; r < 100; ++r)
        head += counts.count(r) ? counts[r] : 0;
    EXPECT_GT(head, n / 3);
}

TEST(ZipfTest, NearUniformWhenThetaSmall)
{
    Rng rng(29);
    ZipfGenerator zipf(100, 0.01);
    std::map<std::uint64_t, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[zipf.next(rng)]++;
    EXPECT_LT(counts[0], n / 100 * 3);
}

} // namespace
} // namespace fasp
