/**
 * @file
 * Unit tests for CRC32C.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/crc32.h"

namespace fasp {
namespace {

TEST(Crc32Test, KnownVector)
{
    // RFC 3720 test vector: CRC32C("123456789") = 0xe3069283.
    const char *digits = "123456789";
    EXPECT_EQ(crc32c(digits, 9), 0xe3069283u);
}

TEST(Crc32Test, EmptyIsSeedIdentity)
{
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32Test, SensitiveToSingleBitFlip)
{
    std::string data(64, 'a');
    std::uint32_t base = crc32c(data.data(), data.size());
    data[17] ^= 0x01;
    EXPECT_NE(crc32c(data.data(), data.size()), base);
}

TEST(Crc32Test, ChainingMatchesOneShot)
{
    std::string data = "the quick brown fox jumps over the lazy dog";
    std::uint32_t one_shot = crc32c(data.data(), data.size());
    std::uint32_t first = crc32c(data.data(), 10);
    std::uint32_t chained = crc32c(data.data() + 10, data.size() - 10,
                                   first);
    EXPECT_EQ(chained, one_shot);
}

TEST(Crc32Test, ZeroBufferNonZeroCrc)
{
    unsigned char zeros[32] = {};
    EXPECT_NE(crc32c(zeros, sizeof(zeros)), 0u);
}

} // namespace
} // namespace fasp
