/**
 * @file
 * Unit tests for the pager: superblock round trip, format layout,
 * bitmap allocation, and reopening.
 */

#include <gtest/gtest.h>

#include <vector>

#include "page/page_io.h"
#include "page/slotted_page.h"
#include "pager/pager.h"
#include "pm/device.h"
#include "support/checker_guard.h"

namespace fasp::pager {
namespace {

using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

PmDevice
makeDevice(std::size_t size = 16u << 20,
           PmMode mode = PmMode::Direct)
{
    PmConfig cfg;
    cfg.size = size;
    cfg.mode = mode;
    return PmDevice(cfg);
}

TEST(SuperblockTest, RoundTrip)
{
    auto dev = makeDevice();
    testsupport::PmCheckerGuard guard(dev);
    Superblock sb;
    sb.pageSize = 4096;
    sb.pageCount = 1024;
    sb.bitmapPages = 1;
    sb.directoryPid = 2;
    sb.logOff = 1024ull * 4096;
    sb.logLen = 1u << 20;
    sb.writeTo(dev);

    auto loaded = Superblock::readFrom(dev);
    ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
    EXPECT_EQ(loaded->pageSize, 4096u);
    EXPECT_EQ(loaded->pageCount, 1024u);
    EXPECT_EQ(loaded->bitmapPages, 1u);
    EXPECT_EQ(loaded->directoryPid, 2u);
    EXPECT_EQ(loaded->logOff, 1024ull * 4096);
    EXPECT_EQ(loaded->logLen, 1u << 20);
    // v3: one 4 KiB PMwCAS descriptor page sits between the directory
    // and the first data page.
    EXPECT_EQ(loaded->pcasPid(), 3u);
    EXPECT_EQ(loaded->pcasPages(), 1u);
    EXPECT_EQ(loaded->firstDataPid(), 4u);
}

TEST(SuperblockTest, DetectsCorruption)
{
    auto dev = makeDevice();
    testsupport::PmCheckerGuard guard(dev);
    Superblock sb;
    sb.pageSize = 4096;
    sb.pageCount = 1024;
    sb.logOff = 1024ull * 4096;
    sb.logLen = 0;
    sb.writeTo(dev);

    dev.writeU16(12, 0xdead); // flip bytes inside the CRC-covered area
    dev.clflush(0);           // make the corruption durable
    dev.sfence();
    auto loaded = Superblock::readFrom(dev);
    EXPECT_FALSE(loaded.isOk());
    EXPECT_EQ(loaded.status().code(), StatusCode::Corruption);
}

TEST(SuperblockTest, DetectsUnformattedDevice)
{
    auto dev = makeDevice();
    testsupport::PmCheckerGuard guard(dev);
    auto loaded = Superblock::readFrom(dev);
    EXPECT_FALSE(loaded.isOk());
}

TEST(PagerFormatTest, LayoutIsSane)
{
    auto dev = makeDevice();
    testsupport::PmCheckerGuard guard(dev);
    Pager::FormatParams params;
    params.logLen = 2u << 20;
    auto sb = Pager::format(dev, params);
    ASSERT_TRUE(sb.isOk()) << sb.status().toString();

    EXPECT_EQ(sb->pageSize, kDefaultPageSize);
    EXPECT_GT(sb->pageCount, 1000u);
    EXPECT_GE(sb->bitmapPages, 1u);
    EXPECT_EQ(sb->directoryPid, 1 + sb->bitmapPages);
    EXPECT_EQ(sb->logOff,
              static_cast<std::uint64_t>(sb->pageCount) * sb->pageSize);
    EXPECT_LE(sb->logOff + sb->logLen, dev.size());

    // Reopen reads the same superblock.
    auto reopened = Pager::open(dev);
    ASSERT_TRUE(reopened.isOk());
    EXPECT_EQ(reopened->pageCount, sb->pageCount);
}

TEST(PagerFormatTest, DirectoryPageIsEmptySlottedLeaf)
{
    auto dev = makeDevice();
    testsupport::PmCheckerGuard guard(dev);
    auto sb = Pager::format(dev, {});
    ASSERT_TRUE(sb.isOk());

    std::vector<std::uint8_t> buf(sb->pageSize);
    dev.read(sb->pageOffset(sb->directoryPid), buf.data(), buf.size());
    page::BufferPageIO io(buf.data(), buf.size());
    EXPECT_EQ(page::pageType(io), page::PageType::Leaf);
    EXPECT_EQ(page::numRecords(io), 0);
    EXPECT_TRUE(page::checkIntegrity(io).isOk());
}

TEST(PagerFormatTest, MetaPagesMarkedAllocated)
{
    auto dev = makeDevice();
    testsupport::PmCheckerGuard guard(dev);
    auto sb = Pager::format(dev, {});
    ASSERT_TRUE(sb.isOk());

    std::vector<std::uint8_t> bitmap;
    Pager::loadBitmap(dev, *sb, bitmap);
    VectorBitmapIO io(bitmap);
    PageAllocator alloc(io, *sb);
    for (PageId pid = 0; pid < sb->firstDataPid(); ++pid)
        EXPECT_TRUE(alloc.isAllocated(pid)) << "pid " << pid;
    EXPECT_FALSE(alloc.isAllocated(sb->firstDataPid()));
    EXPECT_EQ(alloc.allocatedCount(),
              sb->directoryPid + 1 + sb->pcasPages());
}

TEST(PagerFormatTest, RejectsBadPageSize)
{
    auto dev = makeDevice();
    testsupport::PmCheckerGuard guard(dev);
    Pager::FormatParams params;
    params.pageSize = 3000; // not a power of two
    EXPECT_FALSE(Pager::format(dev, params).isOk());
    params.pageSize = 128; // below minimum
    EXPECT_FALSE(Pager::format(dev, params).isOk());
    params.pageSize = 65536; // page offsets are 16-bit
    EXPECT_FALSE(Pager::format(dev, params).isOk());
}

TEST(PagerFormatTest, AcceptsLargestSupportedPageSize)
{
    auto dev = makeDevice(64u << 20);
    testsupport::PmCheckerGuard guard(dev);
    Pager::FormatParams params;
    params.pageSize = 32768;
    auto sb = Pager::format(dev, params);
    ASSERT_TRUE(sb.isOk()) << sb.status().toString();
    EXPECT_EQ(sb->pageSize, 32768u);
    EXPECT_TRUE(Pager::open(dev).isOk());
}

TEST(PagerFormatTest, RejectsTooSmallDevice)
{
    auto dev = makeDevice(1u << 16);
    testsupport::PmCheckerGuard guard(dev);
    Pager::FormatParams params;
    params.logLen = 1u << 20;
    EXPECT_FALSE(Pager::format(dev, params).isOk());
}

TEST(PagerFormatTest, FormatIsDurableInCacheSimMode)
{
    auto dev = makeDevice(16u << 20, PmMode::CacheSim);
    testsupport::PmCheckerGuard guard(dev);
    auto sb = Pager::format(dev, {});
    ASSERT_TRUE(sb.isOk());
    // A crash immediately after format must not lose the layout.
    dev.crash();
    dev.reviveAfterCrash();
    auto reopened = Pager::open(dev);
    ASSERT_TRUE(reopened.isOk()) << reopened.status().toString();
    EXPECT_EQ(reopened->pageCount, sb->pageCount);

    std::vector<std::uint8_t> bitmap;
    Pager::loadBitmap(dev, *reopened, bitmap);
    VectorBitmapIO io(bitmap);
    PageAllocator alloc(io, *reopened);
    EXPECT_TRUE(alloc.isAllocated(reopened->directoryPid));
}

class PageAllocatorTest : public ::testing::Test
{
  protected:
    PageAllocatorTest() : bytes_(128, 0), io_(bytes_)
    {
        sb_.pageSize = 4096;
        sb_.pageCount = 1024;
        sb_.bitmapPages = 1;
        sb_.directoryPid = 2;
    }

    std::vector<std::uint8_t> bytes_;
    VectorBitmapIO io_;
    Superblock sb_;
};

TEST_F(PageAllocatorTest, AllocatesFromFirstDataPid)
{
    PageAllocator alloc(io_, sb_);
    auto pid = alloc.allocate();
    ASSERT_TRUE(pid.isOk());
    EXPECT_EQ(*pid, sb_.firstDataPid());
    EXPECT_TRUE(alloc.isAllocated(*pid));
}

TEST_F(PageAllocatorTest, SequentialAllocationsAreDistinct)
{
    PageAllocator alloc(io_, sb_);
    auto a = alloc.allocate();
    auto b = alloc.allocate();
    auto c = alloc.allocate();
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    ASSERT_TRUE(c.isOk());
    EXPECT_NE(*a, *b);
    EXPECT_NE(*b, *c);
    EXPECT_EQ(alloc.allocatedCount(), 3u);
}

TEST_F(PageAllocatorTest, FreedPageIsReused)
{
    PageAllocator alloc(io_, sb_);
    auto a = alloc.allocate();
    auto b = alloc.allocate();
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    alloc.free(*a);
    EXPECT_FALSE(alloc.isAllocated(*a));
    auto c = alloc.allocate();
    ASSERT_TRUE(c.isOk());
    EXPECT_EQ(*c, *a) << "first-fit must reuse the freed page";
}

TEST_F(PageAllocatorTest, ExhaustionReturnsNoSpace)
{
    sb_.pageCount = 16;
    PageAllocator alloc(io_, sb_);
    for (PageId pid = sb_.firstDataPid(); pid < 16; ++pid)
        ASSERT_TRUE(alloc.allocate().isOk());
    auto overflow = alloc.allocate();
    // Pages below firstDataPid are free in this synthetic bitmap, so
    // the wrap-around pass will claim them; mark them first.
    for (PageId pid = 0; pid < sb_.firstDataPid(); ++pid)
        alloc.markAllocated(pid);
    overflow = alloc.allocate();
    EXPECT_FALSE(overflow.isOk());
    EXPECT_EQ(overflow.status().code(), StatusCode::NoSpace);
}

TEST_F(PageAllocatorTest, MarkAllocatedIsIdempotent)
{
    PageAllocator alloc(io_, sb_);
    alloc.markAllocated(100);
    alloc.markAllocated(100);
    EXPECT_TRUE(alloc.isAllocated(100));
    alloc.free(100);
    EXPECT_FALSE(alloc.isAllocated(100));
}

TEST_F(PageAllocatorTest, BitmapSlotMath)
{
    EXPECT_EQ(bitmapSlot(0).byteIndex, 0u);
    EXPECT_EQ(bitmapSlot(0).mask, 1u);
    EXPECT_EQ(bitmapSlot(7).mask, 0x80u);
    EXPECT_EQ(bitmapSlot(8).byteIndex, 1u);
    EXPECT_EQ(bitmapSlot(8).mask, 1u);
}

} // namespace
} // namespace fasp::pager
