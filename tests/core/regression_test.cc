/**
 * @file
 * Regression tests for the three protocol hazards the adversarial
 * crash sweeps uncovered during development (see DESIGN.md
 * "hardening"):
 *
 *  1. stale-log resurrection (fixed by commit-mark epochs);
 *  2. in-place writes under the durable slot header after an
 *     uncommitted same-transaction split (fixed by the content floor);
 *  3. same-transaction reuse of a freed page in the buffered engines
 *     (fixed by deferring allocator frees to commit).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rng.h"
#include "core/engine.h"
#include "pager/pager.h"
#include "pm/device.h"
#include "wal/slot_header_log.h"

namespace fasp::core {
namespace {

using btree::BTree;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

std::vector<std::uint8_t>
value(std::uint64_t seed, std::size_t len = 48)
{
    std::vector<std::uint8_t> out(len);
    Rng rng(seed * 2654435761u + 17);
    rng.fillBytes(out.data(), out.size());
    return out;
}

std::span<const std::uint8_t>
asSpan(const std::vector<std::uint8_t> &v)
{
    return std::span<const std::uint8_t>(v);
}

// --- Hazard 1: stale-log resurrection ----------------------------------------

TEST(LogEpochRegressionTest, StaleCommittedBytesCannotReplay)
{
    PmConfig cfg;
    cfg.size = 24u << 20;
    cfg.mode = PmMode::CacheSim;
    PmDevice device(cfg);
    auto sb = *pager::Pager::format(device, {});

    // Transaction A commits and is checkpointed; its bytes remain in
    // the log region beyond the truncation point.
    wal::SlotHeaderLog log(device, sb);
    std::vector<std::uint8_t> header_a(40, 0xaa);
    log.begin();
    ASSERT_TRUE(log.appendPageHeader(sb.firstDataPid(),
                                     asSpan(header_a))
                    .isOk());
    ASSERT_TRUE(log.commit(1).isOk());
    ASSERT_TRUE(log.checkpointAndTruncate().isOk());
    std::uint64_t epoch_after_a = log.epoch();

    // Adversary: transaction B starts appending over the log head but
    // only its FIRST store survives the crash (RandomLines-style);
    // because A's first entry had identical framing, the durable bytes
    // now read as A's complete transaction again — CRC and all. The
    // epoch in A's commit mark must reject the replay.
    std::vector<std::uint8_t> header_b(40, 0xbb);
    log.begin();
    ASSERT_TRUE(log.appendPageHeader(sb.firstDataPid(),
                                     asSpan(header_b))
                    .isOk());
    // Crash without any flush: drop every line B dirtied.
    device.crash();
    device.reviveAfterCrash();

    // Overwrite page content so a (wrong) replay would be visible.
    device.memset(sb.pageOffset(sb.firstDataPid()), 0xcc, 40);
    device.flushRange(sb.pageOffset(sb.firstDataPid()), 40);
    device.sfence();

    wal::SlotHeaderLog fresh(device, sb);
    auto result = fresh.recover();
    ASSERT_TRUE(result.isOk());
    EXPECT_FALSE(result->replayed)
        << "a stale commit mark from epoch " << epoch_after_a - 1
        << " must not replay under epoch " << epoch_after_a;
    std::uint8_t probe;
    device.readDurable(sb.pageOffset(sb.firstDataPid()), &probe, 1);
    EXPECT_EQ(probe, 0xcc) << "page must not have been overwritten";
}

TEST(LogEpochRegressionTest, EpochSurvivesReopen)
{
    PmConfig cfg;
    cfg.size = 24u << 20;
    PmDevice device(cfg);
    auto sb = *pager::Pager::format(device, {});
    std::uint64_t epoch;
    {
        wal::SlotHeaderLog log(device, sb);
        log.begin();
        ASSERT_TRUE(log.commit(1).isOk());
        ASSERT_TRUE(log.checkpointAndTruncate().isOk());
        epoch = log.epoch();
        EXPECT_GT(epoch, 1u);
    }
    wal::SlotHeaderLog reopened(device, sb);
    reopened.begin();
    EXPECT_EQ(reopened.epoch(), epoch);
}

// --- Hazard 2: durable-header floor -------------------------------------------

TEST(ContentFloorRegressionTest, UncommittedSplitNeverTearsHeader)
{
    // Fill one FASH leaf to capacity, then run a multi-insert
    // transaction that splits it and keeps inserting, and ABANDON the
    // transaction. The durable page must be byte-identical readable:
    // every committed record reachable, header intact.
    PmConfig cfg;
    cfg.size = 24u << 20;
    cfg.mode = PmMode::CacheSim;
    PmDevice device(cfg);
    EngineConfig engine_cfg;
    engine_cfg.kind = EngineKind::Fash;
    engine_cfg.format.logLen = 2u << 20;
    auto engine = std::move(*Engine::create(device, engine_cfg, true));
    auto tree = *engine->createTree(1);

    std::map<std::uint64_t, std::vector<std::uint8_t>> model;
    for (std::uint64_t key = 1; key <= 61; ++key) {
        auto v = value(key);
        ASSERT_TRUE(engine->insert(tree, key, asSpan(v)).isOk());
        model[key] = v;
    }

    {
        auto tx = engine->begin();
        for (std::uint64_t key = 1000; key <= 1012; ++key) {
            auto v = value(key);
            ASSERT_TRUE(
                tree.insert(tx->pageIO(), key, asSpan(v)).isOk());
        }
        tx->rollback(); // abandon: splits must leave no durable trace
    }

    auto tx = engine->begin();
    ASSERT_TRUE(tree.checkIntegrity(tx->pageIO()).isOk());
    std::vector<std::uint8_t> out;
    for (const auto &[key, v] : model) {
        ASSERT_TRUE(tree.get(tx->pageIO(), key, out).isOk()) << key;
        EXPECT_EQ(out, v);
    }
    auto n = tree.count(tx->pageIO());
    ASSERT_TRUE(n.isOk());
    EXPECT_EQ(*n, model.size());
    tx->rollback();
}

// --- Hazard 3: same-transaction page reuse (buffered engines) ------------------

TEST(PageReuseRegressionTest, DefragThenSplitInOneTransaction)
{
    // The historical failure: copy-on-write defragmentation frees the
    // old page, a split later in the SAME transaction reallocates that
    // id as its left sibling, and the commit-time freed-page cleanup
    // wiped the sibling. Drive defrag+split in one transaction on
    // every buffered engine and verify the full contents.
    for (EngineKind kind : {EngineKind::Nvwal, EngineKind::LegacyWal,
                            EngineKind::Journal}) {
        PmConfig cfg;
        cfg.size = 32u << 20;
        PmDevice device(cfg);
        EngineConfig engine_cfg;
        engine_cfg.kind = kind;
        engine_cfg.format.logLen = 8u << 20;
        auto engine =
            std::move(*Engine::create(device, engine_cfg, true));
        auto tree = *engine->createTree(1);

        // Variable-size records fragment pages, making CoW defrag
        // likely; a large batch guarantees splits.
        Rng rng(99);
        std::map<std::uint64_t, std::vector<std::uint8_t>> model;
        auto tx = engine->begin();
        for (int i = 0; i < 400; ++i) {
            std::uint64_t key = rng.nextBounded(1u << 20) | 1;
            if (model.count(key))
                continue;
            auto v = value(key, 8 + rng.nextBounded(200));
            ASSERT_TRUE(
                tree.insert(tx->pageIO(), key, asSpan(v)).isOk());
            model[key] = v;
            // Interleave updates/deletes to churn free space.
            if (i % 7 == 3 && !model.empty()) {
                auto it = model.begin();
                std::advance(it, rng.nextBounded(model.size()));
                auto v2 = value(it->first + 5555,
                                8 + rng.nextBounded(300));
                ASSERT_TRUE(tree.update(tx->pageIO(), it->first,
                                        asSpan(v2))
                                .isOk());
                it->second = v2;
            }
        }
        ASSERT_TRUE(tx->commit().isOk());

        auto check = engine->begin();
        ASSERT_TRUE(tree.checkIntegrity(check->pageIO()).isOk())
            << engineKindName(kind);
        std::vector<std::uint8_t> out;
        for (const auto &[key, v] : model) {
            ASSERT_TRUE(tree.get(check->pageIO(), key, out).isOk())
                << engineKindName(kind) << " key " << key;
            EXPECT_EQ(out, v);
        }
        check->rollback();
    }
}

TEST(PageReuseRegressionTest, FreedPageNotReusedWithinTx)
{
    // Direct check of the allocator contract: a live page freed inside
    // a transaction must not be handed out again before commit.
    PmConfig cfg;
    cfg.size = 32u << 20;
    PmDevice device(cfg);
    EngineConfig engine_cfg;
    engine_cfg.kind = EngineKind::Nvwal;
    auto engine = std::move(*Engine::create(device, engine_cfg, true));
    auto tree = *engine->createTree(1);
    auto v = value(1, 64);
    ASSERT_TRUE(engine->insert(tree, 1, asSpan(v)).isOk());

    auto tx = engine->begin();
    auto pid = tx->pageIO().allocPage();
    ASSERT_TRUE(pid.isOk());
    // Freshly allocated page freed again: immediate reuse is fine.
    tx->pageIO().freePage(*pid);
    auto pid2 = tx->pageIO().allocPage();
    ASSERT_TRUE(pid2.isOk());
    EXPECT_EQ(*pid2, *pid);

    // A LIVE page (the tree root) freed mid-tx must not be recycled.
    auto root = tree.rootPid(tx->pageIO());
    ASSERT_TRUE(root.isOk());
    tx->pageIO().freePage(*root);
    auto pid3 = tx->pageIO().allocPage();
    ASSERT_TRUE(pid3.isOk());
    EXPECT_NE(*pid3, *root)
        << "live pages stay unavailable until commit";
    tx->rollback();
}

} // namespace
} // namespace fasp::core
