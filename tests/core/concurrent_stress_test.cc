/**
 * @file
 * Concurrency stress suite (run under ThreadSanitizer in CI).
 *
 * Layers, bottom-up:
 *  - LatchTable: mutual exclusion and reader/writer semantics proved
 *    by hammering a non-atomic counter that only the latch protects.
 *  - PmDevice (CacheSim mode): concurrent writers on disjoint lines
 *    through the sharded dirty-line cache, with the persistency
 *    checker attached.
 *  - Rtm: concurrent single-line transactions on disjoint and on
 *    overlapping lines; commits must serialize per line.
 *  - Engines: N client threads of mixed insert/update/delete traffic
 *    against one tree, persistency checker attached throughout, then
 *    a single-threaded full verification pass against a per-thread
 *    reference model.
 *
 * Thread counts stay small (4) and per-thread op counts modest so the
 * suite finishes quickly even under TSan's ~10x slowdown.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "htm/rtm.h"
#include "pager/latch_table.h"
#include "pm/device.h"
#include "support/checker_guard.h"

namespace fasp::core {
namespace {

using btree::BTree;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;
using testsupport::PmCheckerGuard;

constexpr std::size_t kThreads = 4;

std::vector<std::uint8_t>
value(std::uint64_t seed, std::size_t len)
{
    std::vector<std::uint8_t> out(len);
    Rng rng(seed);
    rng.fillBytes(out.data(), out.size());
    return out;
}

// ---------------------------------------------------------------- latches

TEST(ConcurrentLatchTest, ExclusiveProtectsPlainCounter)
{
    LatchTable latches(64);
    const std::size_t slot = latches.slotFor(7);
    constexpr std::size_t kIncrements = 20000;

    // Deliberately NOT atomic: only the latch makes this safe, so a
    // latch bug shows up as a lost update (and as a TSan race).
    std::uint64_t counter = 0;

    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&] {
            for (std::size_t i = 0; i < kIncrements; ++i) {
                while (!latches.tryAcquireExclusive(slot)) {
                    std::this_thread::yield();
                }
                ++counter;
                latches.releaseExclusive(slot);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(counter, kThreads * kIncrements);
    EXPECT_GE(latches.statsSnapshot().exclusiveAcquires,
              kThreads * kIncrements);
}

TEST(ConcurrentLatchTest, ReadersCoexistWritersExclude)
{
    LatchTable latches(64);
    const std::size_t slot = latches.slotFor(3);

    std::uint64_t published = 0;    // written under exclusive only
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> torn_reads{0};

    std::vector<std::thread> readers;
    for (std::size_t t = 0; t < kThreads - 1; ++t) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                if (!latches.tryAcquireShared(slot)) {
                    std::this_thread::yield();
                    continue;
                }
                // Writers keep `published` a multiple of 1000; seeing
                // anything else means a reader overlapped a writer.
                if (published % 1000 != 0)
                    torn_reads.fetch_add(1);
                latches.releaseShared(slot);
            }
        });
    }

    for (std::uint64_t round = 1; round <= 500; ++round) {
        while (!latches.tryAcquireExclusive(slot))
            std::this_thread::yield();
        // Pass through non-multiple states inside the critical section.
        published += 1;
        published += 999;
        latches.releaseExclusive(slot);
    }
    stop.store(true, std::memory_order_release);
    for (auto &r : readers)
        r.join();

    EXPECT_EQ(torn_reads.load(), 0u);
    EXPECT_EQ(published, 500u * 1000u);
}

TEST(ConcurrentLatchTest, RaiiGuardsProtectPlainCounter)
{
    // Same lost-update hammer as above, but through the annotated RAII
    // guards (SharedPageLatchGuard / ExclusivePageLatchGuard) — the
    // scoped API that -Wthread-safety checks at compile time. Guards
    // conflict-abort (throw) instead of spinning forever, so workers
    // catch LatchConflict and retry, mirroring engine transactions.
    LatchTable latches(64);
    const std::size_t slot = latches.slotFor(7);
    PageLatch &latch = latches.latch(slot);
    constexpr std::size_t kIncrements = 20000;

    std::uint64_t counter = 0;

    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&] {
            for (std::size_t i = 0; i < kIncrements; ++i) {
                for (;;) {
                    try {
                        ExclusivePageLatchGuard guard(latch, 7);
                        ++counter;
                        break;
                    } catch (const LatchConflict &) {
                        std::this_thread::yield();
                    }
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(counter, kThreads * kIncrements);

    // The shared guard really releases: an exclusive acquire succeeds
    // after a scoped shared hold ends.
    {
        SharedPageLatchGuard reader(latch, 7);
    }
    {
        ExclusivePageLatchGuard writer(latch, 7);
    }
}

TEST(ConcurrentLatchTest, GuardThrowsLatchConflictWhenHeld)
{
    LatchTable latches(64);
    PageLatch &latch = latches.latch(latches.slotFor(5));

    ExclusivePageLatchGuard holder(latch, 5);
    EXPECT_THROW(SharedPageLatchGuard(latch, 5), LatchConflict);
    EXPECT_THROW(ExclusivePageLatchGuard(latch, 5), LatchConflict);
}

TEST(ConcurrentLatchTest, UpgradeOnlySucceedsForSoleReader)
{
    LatchTable latches(64);
    const std::size_t slot = latches.slotFor(11);

    ASSERT_TRUE(latches.tryAcquireShared(slot));
    ASSERT_TRUE(latches.tryAcquireShared(slot)); // second reader
    EXPECT_FALSE(latches.tryUpgrade(slot));      // not sole -> refuse
    latches.releaseShared(slot);
    EXPECT_TRUE(latches.tryUpgrade(slot));       // sole reader now
    EXPECT_FALSE(latches.tryAcquireShared(slot));
    latches.releaseExclusive(slot);
}

// ----------------------------------------------------------------- device

TEST(ConcurrentDeviceTest, DisjointLineWritersUnderChecker)
{
    PmConfig pm_cfg;
    pm_cfg.size = 4u << 20;
    pm_cfg.mode = PmMode::CacheSim;
    PmDevice device(pm_cfg);
    PmCheckerGuard guard(device);

    constexpr std::size_t kLinesPerThread = 256;
    constexpr std::size_t kRounds = 16;

    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            // Thread t owns every kThreads-th cache line: neighbours
            // in PM, so the sharded dirty-line cache sees interleaved
            // traffic, but no line is ever shared.
            for (std::size_t round = 0; round < kRounds; ++round) {
                for (std::size_t i = 0; i < kLinesPerThread; ++i) {
                    PmOffset off = static_cast<PmOffset>(
                        (t + i * kThreads) * kCacheLineSize);
                    std::uint64_t v = round * 1000 + t;
                    device.write(off, &v, sizeof v);
                    device.clflush(off);
                }
                device.sfence();
            }
        });
    }
    for (auto &w : workers)
        w.join();

    // Single-threaded read-back: last round's value must be visible.
    for (std::size_t t = 0; t < kThreads; ++t) {
        for (std::size_t i = 0; i < kLinesPerThread; ++i) {
            PmOffset off = static_cast<PmOffset>(
                (t + i * kThreads) * kCacheLineSize);
            std::uint64_t v = 0;
            device.read(off, &v, sizeof v);
            EXPECT_EQ(v, (kRounds - 1) * 1000 + t);
        }
    }
    EXPECT_EQ(device.stats().clflushes,
              kThreads * kRounds * kLinesPerThread);
}

// -------------------------------------------------------------------- rtm

TEST(ConcurrentRtmTest, OverlappingCommitsSerializePerLine)
{
    PmConfig pm_cfg;
    pm_cfg.size = 1u << 20;
    pm_cfg.mode = PmMode::Direct;
    PmDevice device(pm_cfg);

    htm::RtmConfig rtm_cfg;
    htm::Rtm rtm(device, rtm_cfg);

    // Phase 1: all threads blind-write tagged values to the same
    // cache line through RTM regions. The bodies never read the
    // contended line (the engines always hold at least a shared page
    // latch while reading, so body-time reads of lines another thread
    // is committing cannot happen); only the commit-time applies
    // touch the device, and the per-line locks must serialize them so
    // no store tears and every committed value is one of the tags.
    constexpr PmOffset kOff = 0;
    constexpr std::size_t kIncrements = 5000;
    std::uint64_t zero = 0;
    device.write(kOff, &zero, sizeof zero);

    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (std::size_t i = 1; i <= kIncrements; ++i) {
                std::uint64_t tag = (t + 1) * 1'000'000 + i;
                bool committed = rtm.execute([&](htm::RtmRegion &r) {
                    r.write(kOff, &tag, sizeof tag);
                });
                ASSERT_TRUE(committed);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    std::uint64_t last = 0;
    device.read(kOff, &last, sizeof last);
    std::uint64_t tid = last / 1'000'000, seq = last % 1'000'000;
    EXPECT_GE(tid, 1u);
    EXPECT_LE(tid, kThreads);
    EXPECT_EQ(seq, kIncrements); // each thread's writes apply in order

    // Phase 2: the engines' actual pattern — read-modify-write under
    // an external exclusive latch (as FaspEngine holds page latches
    // across its RTM commit). The count must come out exact.
    device.write(kOff, &zero, sizeof zero);
    LatchTable latches(16);
    const std::size_t slot = latches.slotFor(0);
    std::vector<std::thread> latched;
    for (std::size_t t = 0; t < kThreads; ++t) {
        latched.emplace_back([&] {
            for (std::size_t i = 0; i < kIncrements; ++i) {
                while (!latches.tryAcquireExclusive(slot))
                    std::this_thread::yield();
                bool committed = rtm.execute([&](htm::RtmRegion &r) {
                    std::uint64_t cur = 0;
                    device.read(kOff, &cur, sizeof cur);
                    ++cur;
                    r.write(kOff, &cur, sizeof cur);
                });
                latches.releaseExclusive(slot);
                ASSERT_TRUE(committed);
            }
        });
    }
    for (auto &w : latched)
        w.join();

    std::uint64_t final_count = 0;
    device.read(kOff, &final_count, sizeof final_count);
    EXPECT_EQ(final_count, kThreads * kIncrements);

    const htm::RtmStats &stats = rtm.stats();
    EXPECT_EQ(stats.fallbacks.load(), 0u);
    EXPECT_EQ(stats.aborts.load(), stats.abortsContention.load());
}

TEST(ConcurrentRtmTest, DisjointLinesNeverContend)
{
    PmConfig pm_cfg;
    pm_cfg.size = 1u << 20;
    pm_cfg.mode = PmMode::Direct;
    PmDevice device(pm_cfg);

    htm::Rtm rtm(device, htm::RtmConfig{});

    constexpr std::size_t kIncrements = 5000;
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            // One private cache line per thread; spaced two lines
            // apart so the commit-lock hash cannot collide... it can
            // (hashing), but disjoint *lines* are the common case and
            // collisions only cost spurious aborts, handled by retry.
            PmOffset off =
                static_cast<PmOffset>(t * 2 * kCacheLineSize);
            for (std::size_t i = 0; i < kIncrements; ++i) {
                bool committed = rtm.execute([&](htm::RtmRegion &r) {
                    std::uint64_t cur = 0;
                    device.read(off, &cur, sizeof cur);
                    ++cur;
                    r.write(off, &cur, sizeof cur);
                });
                ASSERT_TRUE(committed);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    for (std::size_t t = 0; t < kThreads; ++t) {
        PmOffset off =
            static_cast<PmOffset>(t * 2 * kCacheLineSize);
        std::uint64_t v = 0;
        device.read(off, &v, sizeof v);
        EXPECT_EQ(v, kIncrements);
    }
}

// ---------------------------------------------------------------- engines

/**
 * Mixed-operation stress against one engine. Each thread owns the key
 * residue class (key % kThreads == tid) but the keys interleave, so
 * neighbouring records share pages and the per-page latches (FAST,
 * FASH) or the engine mutex (buffered engines) see real contention.
 * The persistency checker stays attached for the whole run; at the end
 * a single-threaded pass verifies the tree against the union of the
 * per-thread reference models.
 */
class ConcurrentEngineStressTest
    : public ::testing::TestWithParam<EngineKind>
{
  protected:
    ConcurrentEngineStressTest()
    {
        PmConfig pm_cfg;
        pm_cfg.size = 48u << 20;
        pm_cfg.mode = PmMode::Direct;
        device_ = std::make_unique<PmDevice>(pm_cfg);
        guard_ = std::make_unique<PmCheckerGuard>(*device_);
    }

    std::unique_ptr<PmDevice> device_;
    std::unique_ptr<PmCheckerGuard> guard_;
};

TEST_P(ConcurrentEngineStressTest, MixedOpsThenFullVerify)
{
    EngineConfig cfg;
    cfg.kind = GetParam();
    cfg.format.logLen = 8u << 20;
    auto engine_res = Engine::create(*device_, cfg, true);
    ASSERT_TRUE(engine_res.isOk()) << engine_res.status().toString();
    std::unique_ptr<Engine> engine = std::move(*engine_res);

    auto tree_res = engine->createTree(2);
    ASSERT_TRUE(tree_res.isOk());
    BTree tree = *tree_res;

    constexpr std::size_t kOpsPerThread = 400;
    using Model = std::map<std::uint64_t, std::vector<std::uint8_t>>;
    std::vector<Model> models(kThreads);
    std::vector<std::vector<std::uint64_t>> erased(kThreads);

    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng(0xC0FFEE + t);
            Model &model = models[t];
            std::uint64_t next_key = t; // residue class t, interleaved

            auto retry = [&](auto op) {
                for (;;) {
                    try {
                        return op();
                    } catch (const LatchConflict &) {
                        std::this_thread::yield();
                    }
                }
            };

            for (std::size_t i = 0; i < kOpsPerThread; ++i) {
                std::uint64_t dice = rng.next() % 100;
                if (model.empty() || dice < 60) {
                    std::uint64_t key = next_key;
                    next_key += kThreads;
                    auto bytes = value(key * 31 + 7, 40);
                    Status s = retry([&] {
                        return engine->insert(
                            tree, key,
                            std::span<const std::uint8_t>(bytes));
                    });
                    ASSERT_TRUE(s.isOk()) << s.toString();
                    model[key] = std::move(bytes);
                } else if (dice < 85) {
                    auto it = model.begin();
                    std::advance(it,
                                 rng.next() % model.size());
                    auto bytes = value(it->first * 131 + i, 56);
                    Status s = retry([&] {
                        return engine->update(
                            tree, it->first,
                            std::span<const std::uint8_t>(bytes));
                    });
                    ASSERT_TRUE(s.isOk()) << s.toString();
                    it->second = std::move(bytes);
                } else {
                    auto it = model.begin();
                    std::advance(it,
                                 rng.next() % model.size());
                    Status s = retry([&] {
                        return engine->erase(tree, it->first);
                    });
                    ASSERT_TRUE(s.isOk()) << s.toString();
                    erased[t].push_back(it->first);
                    model.erase(it);
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();

    // Single-threaded verification: every surviving key present with
    // the right bytes, every erased key absent, count exact.
    std::size_t expected = 0;
    std::vector<std::uint8_t> read_back;
    for (std::size_t t = 0; t < kThreads; ++t) {
        expected += models[t].size();
        for (const auto &[key, bytes] : models[t]) {
            Status s = engine->get(tree, key, read_back);
            ASSERT_TRUE(s.isOk())
                << "key " << key << ": " << s.toString();
            EXPECT_EQ(read_back, bytes) << "key " << key;
        }
        for (std::uint64_t key : erased[t]) {
            if (models[t].count(key))
                continue; // erased then re-inserted? (keys are unique,
                          // so this cannot happen, but stay defensive)
            Status s = engine->get(tree, key, read_back);
            EXPECT_EQ(s.code(), StatusCode::NotFound)
                << "erased key " << key << " still readable";
        }
    }
    auto tx = engine->begin();
    auto counted = tree.count(tx->pageIO());
    ASSERT_TRUE(counted.isOk());
    EXPECT_EQ(*counted, expected);
}

INSTANTIATE_TEST_SUITE_P(Engines, ConcurrentEngineStressTest,
                         ::testing::Values(EngineKind::Fast,
                                           EngineKind::Fash,
                                           EngineKind::Nvwal),
                         [](const auto &info) {
                             return std::string(
                                 engineKindName(info.param));
                         });

} // namespace
} // namespace fasp::core
