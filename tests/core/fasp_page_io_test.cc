/**
 * @file
 * Unit tests for FaspPageIO: shadow-header redirection, dirty-range
 * tracking and flushing, write-through mode, and the pre-commit
 * immutability floor.
 */

#include <gtest/gtest.h>

#include "core/fasp_page_io.h"
#include "page/slotted_page.h"
#include "pm/device.h"

namespace fasp::core {
namespace {

using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

class FaspPageIOTest : public ::testing::Test
{
  protected:
    FaspPageIOTest()
    {
        PmConfig cfg;
        cfg.size = 1u << 16;
        cfg.mode = PmMode::CacheSim;
        device_ = std::make_unique<PmDevice>(cfg);

        // A committed page image: slotted leaf with two records.
        FaspPageIO init_io(*device_, kPageOff, kPageSize, true);
        page::init(init_io, page::PageType::Leaf, 0);
        insertVia(init_io, 10);
        insertVia(init_io, 20);
        device_->flushRange(kPageOff, kPageSize);
        device_->sfence();
    }

    static void insertVia(page::PageIO &io, std::uint64_t key)
    {
        std::uint8_t payload[16] = {};
        storeU64(payload, key);
        ASSERT_TRUE(page::insertRecord(
                        io, key,
                        std::span<const std::uint8_t>(payload, 16))
                        .isOk());
    }

    static constexpr PmOffset kPageOff = 4096;
    static constexpr std::size_t kPageSize = 4096;
    std::unique_ptr<PmDevice> device_;
};

TEST_F(FaspPageIOTest, HeaderWritesGoToShadowNotPm)
{
    FaspPageIO io(*device_, kPageOff, kPageSize, false);
    io.materializeShadow();
    EXPECT_TRUE(io.hasShadow());
    EXPECT_FALSE(io.headerDirty());

    std::uint16_t before = device_->readU16(kPageOff);
    io.writeHeaderU16(page::kOffNumRecords, 99);
    EXPECT_TRUE(io.headerDirty());
    EXPECT_EQ(page::numRecords(io), 99)
        << "reads must see the shadow";
    EXPECT_EQ(device_->readU16(kPageOff), before)
        << "PM header must be untouched before commit";
}

TEST_F(FaspPageIOTest, ContentWritesGoInPlaceAndAreTracked)
{
    FaspPageIO io(*device_, kPageOff, kPageSize, false);
    io.materializeShadow();
    std::uint8_t data[32] = {0xaa};
    io.writeContent(2000, data, sizeof(data));
    EXPECT_TRUE(io.contentDirty());

    // Visible via the device immediately (in the simulated cache)...
    std::uint8_t probe;
    device_->read(kPageOff + 2000, &probe, 1);
    EXPECT_EQ(probe, 0xaa);
    // ...but not yet durable until the ranges are flushed.
    device_->readDurable(kPageOff + 2000, &probe, 1);
    EXPECT_EQ(probe, 0x00);
    io.flushDirtyRanges();
    device_->sfence();
    device_->readDurable(kPageOff + 2000, &probe, 1);
    EXPECT_EQ(probe, 0xaa);
    EXPECT_FALSE(io.contentDirty());
}

TEST_F(FaspPageIOTest, AdjacentWritesCoalesceToFewFlushes)
{
    FaspPageIO io(*device_, kPageOff, kPageSize, false);
    std::uint8_t byte = 1;
    // 64 adjacent 1-byte writes = one cache line.
    for (int i = 0; i < 64; ++i)
        io.writeContent(static_cast<std::uint16_t>(1024 + i), &byte, 1);
    EXPECT_EQ(io.flushDirtyRanges(), 1u);
}

TEST_F(FaspPageIOTest, ShadowGrowsAndTrimsWithSlotCount)
{
    FaspPageIO io(*device_, kPageOff, kPageSize, false);
    io.materializeShadow();
    std::size_t base = io.shadowBytes().size();
    EXPECT_EQ(base, page::headerBytes(2));

    insertVia(io, 30);
    EXPECT_EQ(io.shadowBytes().size(), page::headerBytes(3));

    page::RecordRef dropped{};
    ASSERT_TRUE(page::eraseRecord(io, 0, &dropped).isOk());
    EXPECT_EQ(io.shadowBytes().size(), page::headerBytes(2));
}

TEST_F(FaspPageIOTest, ContentFloorIsDurableHeaderEnd)
{
    FaspPageIO io(*device_, kPageOff, kPageSize, false);
    EXPECT_EQ(io.contentFloor(), 0) << "no shadow yet";
    io.materializeShadow();
    EXPECT_EQ(io.contentFloor(), page::headerBytes(2));

    // Shrinking the shadow must NOT lower the floor: the durable
    // header still owns those bytes until commit.
    page::RecordRef dropped{};
    ASSERT_TRUE(page::eraseRecord(io, 0, &dropped).isOk());
    ASSERT_TRUE(page::eraseRecord(io, 0, &dropped).isOk());
    EXPECT_EQ(page::numRecords(io), 0);
    EXPECT_EQ(io.contentFloor(), page::headerBytes(2));
}

TEST_F(FaspPageIOTest, AllocationRespectsTheFloor)
{
    // Make a page whose durable header is large, then shrink it in
    // the shadow: the gap must NOT open up over the durable header.
    FaspPageIO init_io(*device_, 8192, kPageSize, true);
    page::init(init_io, page::PageType::Leaf, 0);
    for (std::uint64_t key = 1; key <= 40; ++key)
        insertVia(init_io, key);
    device_->flushRange(8192, kPageSize);
    device_->sfence();

    FaspPageIO io(*device_, 8192, kPageSize, false);
    io.materializeShadow();
    std::vector<page::RecordRef> dropped;
    ASSERT_TRUE(page::dropLowerSlots(io, 39, &dropped).isOk());
    ASSERT_EQ(page::numRecords(io), 1);

    // Fill via inserts until full: no record may be allocated below
    // the durable header end.
    std::uint64_t key = 1000;
    while (page::checkFit(io, 16) == page::FitResult::Fits)
        insertVia(io, key++);
    std::uint16_t floor = io.contentFloor();
    for (std::uint16_t i = 0; i < page::numRecords(io); ++i) {
        EXPECT_GE(page::slotOffset(io, i), floor)
            << "record " << i << " allocated under the durable header";
    }
}

TEST_F(FaspPageIOTest, WriteThroughWritesHeaderDirectly)
{
    FaspPageIO io(*device_, 12288, kPageSize, /*write_through=*/true);
    page::init(io, page::PageType::Leaf, 0);
    EXPECT_FALSE(io.hasShadow());
    EXPECT_EQ(device_->readU16(12288 + page::kOffNumRecords), 0);
    EXPECT_TRUE(io.contentDirty()) << "header writes tracked too";
    insertVia(io, 5);
    EXPECT_EQ(device_->readU16(12288 + page::kOffNumRecords), 1);
}

TEST_F(FaspPageIOTest, ScratchWritesAreNeverTracked)
{
    FaspPageIO io(*device_, kPageOff, kPageSize, false);
    io.materializeShadow();
    io.writeScratchU16(static_cast<std::uint16_t>(kPageSize - 8), 42);
    EXPECT_FALSE(io.contentDirty())
        << "free-list scratch must not be flushed at commit";
    // But the store is device-visible.
    EXPECT_EQ(device_->readU16(kPageOff + kPageSize - 8), 42);
}

} // namespace
} // namespace fasp::core
