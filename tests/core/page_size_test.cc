/**
 * @file
 * Engine-level tests across database page sizes (the paper notes 4K or
 * 8K pages as typical): formatting, heavy load, and reopen for every
 * engine at 1K, 4K, and 8K pages.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rng.h"
#include "core/engine.h"
#include "pm/device.h"

namespace fasp::core {
namespace {

using btree::BTree;
using pm::PmConfig;
using pm::PmDevice;

struct SizeCase
{
    EngineKind kind;
    std::uint32_t pageSize;
};

class PageSizeTest : public ::testing::TestWithParam<SizeCase>
{};

TEST_P(PageSizeTest, LoadAndReopen)
{
    const SizeCase &param = GetParam();
    PmConfig pm_cfg;
    pm_cfg.size = 48u << 20;
    PmDevice device(pm_cfg);

    EngineConfig cfg;
    cfg.kind = param.kind;
    cfg.format.pageSize = param.pageSize;
    cfg.format.logLen = 8u << 20;

    std::map<std::uint64_t, std::vector<std::uint8_t>> model;
    {
        auto engine = Engine::create(device, cfg, true);
        ASSERT_TRUE(engine.isOk()) << engine.status().toString();
        EXPECT_EQ((*engine)->superblock().pageSize, param.pageSize);
        auto tree = (*engine)->createTree(1);
        ASSERT_TRUE(tree.isOk());

        Rng rng(param.pageSize + 3);
        for (int i = 0; i < 1500; ++i) {
            std::uint64_t key = rng.next() | 1;
            if (model.count(key))
                continue;
            std::vector<std::uint8_t> v(8 + rng.nextBounded(
                                                param.pageSize / 8));
            rng.fillBytes(v.data(), v.size());
            ASSERT_TRUE(
                (*engine)
                    ->insert(*tree, key,
                             std::span<const std::uint8_t>(v))
                    .isOk())
                << "i=" << i;
            model[key] = v;
        }
        auto tx = (*engine)->begin();
        ASSERT_TRUE(tree->checkIntegrity(tx->pageIO()).isOk());
        tx->rollback();
    }

    auto engine = Engine::create(device, cfg, false);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();
    auto tx = (*engine)->begin();
    auto tree = BTree::open(tx->pageIO(), 1);
    ASSERT_TRUE(tree.isOk());
    std::vector<std::uint8_t> out;
    for (const auto &[key, v] : model) {
        ASSERT_TRUE(tree->get(tx->pageIO(), key, out).isOk()) << key;
        EXPECT_EQ(out, v);
    }
    tx->rollback();
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PageSizeTest,
    ::testing::Values(SizeCase{EngineKind::Fast, 1024},
                      SizeCase{EngineKind::Fast, 8192},
                      SizeCase{EngineKind::Fash, 1024},
                      SizeCase{EngineKind::Fash, 8192},
                      SizeCase{EngineKind::Nvwal, 8192},
                      SizeCase{EngineKind::LegacyWal, 8192},
                      SizeCase{EngineKind::Journal, 1024}),
    [](const ::testing::TestParamInfo<SizeCase> &info) {
        return std::string(engineKindName(info.param.kind)) + "_" +
               std::to_string(info.param.pageSize);
    });

} // namespace
} // namespace fasp::core
