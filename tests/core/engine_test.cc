/**
 * @file
 * Integration tests for every engine (FAST, FASH, NVWAL, legacy WAL,
 * rollback journal): transactions, rollback, persistence across
 * reopen, splits under load, overflow values, and engine-specific
 * behaviours (FAST in-place commits, NVWAL checkpointing).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rng.h"
#include "core/buffered_engine.h"
#include "core/engine.h"
#include "core/fasp_engine.h"
#include "pm/device.h"

namespace fasp::core {
namespace {

using btree::BTree;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

std::vector<std::uint8_t>
value(std::uint64_t seed, std::size_t len)
{
    std::vector<std::uint8_t> out(len);
    Rng rng(seed);
    rng.fillBytes(out.data(), out.size());
    return out;
}

std::span<const std::uint8_t>
asSpan(const std::vector<std::uint8_t> &v)
{
    return std::span<const std::uint8_t>(v);
}

class EngineTest : public ::testing::TestWithParam<EngineKind>
{
  protected:
    EngineTest()
    {
        PmConfig pm_cfg;
        pm_cfg.size = 32u << 20;
        pm_cfg.mode = PmMode::Direct;
        device_ = std::make_unique<PmDevice>(pm_cfg);
    }

    EngineConfig
    engineConfig()
    {
        EngineConfig cfg;
        cfg.kind = GetParam();
        cfg.format.logLen = 4u << 20;
        return cfg;
    }

    std::unique_ptr<Engine>
    freshEngine()
    {
        auto engine = Engine::create(*device_, engineConfig(), true);
        EXPECT_TRUE(engine.isOk()) << engine.status().toString();
        return std::move(*engine);
    }

    std::unique_ptr<Engine>
    reopenEngine()
    {
        auto engine = Engine::create(*device_, engineConfig(), false);
        EXPECT_TRUE(engine.isOk()) << engine.status().toString();
        return std::move(*engine);
    }

    std::unique_ptr<PmDevice> device_;
};

TEST_P(EngineTest, CreateTreeInsertGet)
{
    auto engine = freshEngine();
    auto tree = engine->createTree(1);
    ASSERT_TRUE(tree.isOk()) << tree.status().toString();

    auto v = value(7, 64);
    ASSERT_TRUE(engine->insert(*tree, 42, asSpan(v)).isOk());

    std::vector<std::uint8_t> out;
    ASSERT_TRUE(engine->get(*tree, 42, out).isOk());
    EXPECT_EQ(out, v);
    EXPECT_EQ(engine->get(*tree, 43, out).code(),
              StatusCode::NotFound);
}

TEST_P(EngineTest, UpdateAndErase)
{
    auto engine = freshEngine();
    auto tree = engine->createTree(1);
    ASSERT_TRUE(tree.isOk());

    auto v1 = value(1, 32);
    auto v2 = value(2, 48);
    ASSERT_TRUE(engine->insert(*tree, 5, asSpan(v1)).isOk());
    ASSERT_TRUE(engine->update(*tree, 5, asSpan(v2)).isOk());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(engine->get(*tree, 5, out).isOk());
    EXPECT_EQ(out, v2);
    ASSERT_TRUE(engine->erase(*tree, 5).isOk());
    EXPECT_EQ(engine->get(*tree, 5, out).code(), StatusCode::NotFound);
}

TEST_P(EngineTest, MultiOperationTransaction)
{
    auto engine = freshEngine();
    auto tree = engine->createTree(1);
    ASSERT_TRUE(tree.isOk());

    auto tx = engine->begin();
    for (std::uint64_t key = 1; key <= 20; ++key) {
        auto v = value(key, 40);
        ASSERT_TRUE(
            tree->insert(tx->pageIO(), key, asSpan(v)).isOk());
    }
    ASSERT_TRUE(tx->commit().isOk());

    std::vector<std::uint8_t> out;
    for (std::uint64_t key = 1; key <= 20; ++key)
        EXPECT_TRUE(engine->get(*tree, key, out).isOk()) << key;
}

TEST_P(EngineTest, RollbackDiscardsChanges)
{
    auto engine = freshEngine();
    auto tree = engine->createTree(1);
    ASSERT_TRUE(tree.isOk());
    auto v = value(3, 32);
    ASSERT_TRUE(engine->insert(*tree, 1, asSpan(v)).isOk());

    {
        auto tx = engine->begin();
        auto v2 = value(4, 32);
        ASSERT_TRUE(tree->insert(tx->pageIO(), 2, asSpan(v2)).isOk());
        ASSERT_TRUE(tree->update(tx->pageIO(), 1, asSpan(v2)).isOk());
        tx->rollback();
    }

    std::vector<std::uint8_t> out;
    ASSERT_TRUE(engine->get(*tree, 1, out).isOk());
    EXPECT_EQ(out, v) << "update must have been rolled back";
    EXPECT_EQ(engine->get(*tree, 2, out).code(), StatusCode::NotFound);
}

TEST_P(EngineTest, AbandonedTransactionRollsBack)
{
    auto engine = freshEngine();
    auto tree = engine->createTree(1);
    ASSERT_TRUE(tree.isOk());
    {
        auto tx = engine->begin();
        auto v = value(5, 16);
        ASSERT_TRUE(tree->insert(tx->pageIO(), 9, asSpan(v)).isOk());
        // tx destroyed without commit.
    }
    EXPECT_EQ(engine->stats().txRolledBack, 1u);
    std::vector<std::uint8_t> out;
    EXPECT_EQ(engine->get(*tree, 9, out).code(), StatusCode::NotFound);
}

TEST_P(EngineTest, PersistsAcrossReopen)
{
    std::map<std::uint64_t, std::vector<std::uint8_t>> model;
    {
        auto engine = freshEngine();
        auto tree = engine->createTree(1);
        ASSERT_TRUE(tree.isOk());
        Rng rng(17);
        for (int i = 0; i < 500; ++i) {
            std::uint64_t key = rng.next();
            auto v = value(key, 8 + rng.nextBounded(120));
            if (model.count(key))
                continue;
            ASSERT_TRUE(engine->insert(*tree, key, asSpan(v)).isOk());
            model[key] = v;
        }
    } // engine destroyed; device retains durable state

    auto engine = reopenEngine();
    auto tx = engine->begin();
    auto tree = BTree::open(tx->pageIO(), 1);
    ASSERT_TRUE(tree.isOk());
    std::vector<std::uint8_t> out;
    for (const auto &[key, v] : model) {
        ASSERT_TRUE(tree->get(tx->pageIO(), key, out).isOk()) << key;
        EXPECT_EQ(out, v);
    }
    EXPECT_TRUE(tree->checkIntegrity(tx->pageIO()).isOk());
    tx->rollback();
}

TEST_P(EngineTest, HeavyInsertLoadWithSplits)
{
    auto engine = freshEngine();
    auto tree = engine->createTree(1);
    ASSERT_TRUE(tree.isOk());
    Rng rng(23);
    std::map<std::uint64_t, bool> model;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t key = rng.next();
        if (model.count(key))
            continue;
        auto v = value(key, 64);
        ASSERT_TRUE(engine->insert(*tree, key, asSpan(v)).isOk())
            << "i=" << i;
        model[key] = true;
    }
    auto tx = engine->begin();
    auto n = tree->count(tx->pageIO());
    ASSERT_TRUE(n.isOk());
    EXPECT_EQ(*n, model.size());
    auto stats = tree->stats(tx->pageIO());
    ASSERT_TRUE(stats.isOk());
    EXPECT_GT(stats->leafPages, 10u);
    EXPECT_TRUE(tree->checkIntegrity(tx->pageIO()).isOk());
    tx->rollback();
}

TEST_P(EngineTest, OverflowValuesPersist)
{
    auto big = value(99, 12000);
    {
        auto engine = freshEngine();
        auto tree = engine->createTree(1);
        ASSERT_TRUE(tree.isOk());
        ASSERT_TRUE(engine->insert(*tree, 1, asSpan(big)).isOk());
    }
    auto engine = reopenEngine();
    auto tx = engine->begin();
    auto tree = BTree::open(tx->pageIO(), 1);
    ASSERT_TRUE(tree.isOk());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(tree->get(tx->pageIO(), 1, out).isOk());
    EXPECT_EQ(out, big);
    tx->rollback();
}

TEST_P(EngineTest, MixedWorkloadMatchesModel)
{
    auto engine = freshEngine();
    auto tree = engine->createTree(1);
    ASSERT_TRUE(tree.isOk());

    Rng rng(31);
    std::map<std::uint64_t, std::vector<std::uint8_t>> model;
    for (int step = 0; step < 2000; ++step) {
        std::uint64_t key = rng.nextBounded(400);
        auto v = value(rng.next(), 8 + rng.nextBounded(100));
        std::uint64_t dice = rng.nextBounded(10);
        if (dice < 5) {
            Status status = engine->insert(*tree, key, asSpan(v));
            if (model.count(key))
                EXPECT_EQ(status.code(), StatusCode::AlreadyExists);
            else {
                ASSERT_TRUE(status.isOk()) << status.toString();
                model[key] = v;
            }
        } else if (dice < 8) {
            Status status = engine->update(*tree, key, asSpan(v));
            if (model.count(key)) {
                ASSERT_TRUE(status.isOk());
                model[key] = v;
            } else {
                EXPECT_EQ(status.code(), StatusCode::NotFound);
            }
        } else {
            Status status = engine->erase(*tree, key);
            if (model.count(key)) {
                ASSERT_TRUE(status.isOk());
                model.erase(key);
            } else {
                EXPECT_EQ(status.code(), StatusCode::NotFound);
            }
        }
    }

    auto tx = engine->begin();
    std::size_t scanned = 0;
    ASSERT_TRUE(tree->scan(tx->pageIO(), 0, ~std::uint64_t{0},
                           [&](std::uint64_t k,
                               std::span<const std::uint8_t> v) {
                               auto it = model.find(k);
                               EXPECT_NE(it, model.end());
                               if (it != model.end()) {
                                   EXPECT_TRUE(std::equal(
                                       v.begin(), v.end(),
                                       it->second.begin(),
                                       it->second.end()));
                               }
                               ++scanned;
                               return true;
                           })
                    .isOk());
    EXPECT_EQ(scanned, model.size());
    EXPECT_TRUE(tree->checkIntegrity(tx->pageIO()).isOk());
    tx->rollback();
}

TEST_P(EngineTest, MultipleTreesCoexist)
{
    auto engine = freshEngine();
    auto ta = engine->createTree(1);
    auto tb = engine->createTree(2);
    ASSERT_TRUE(ta.isOk());
    ASSERT_TRUE(tb.isOk());
    auto va = value(1, 16);
    auto vb = value(2, 16);
    ASSERT_TRUE(engine->insert(*ta, 7, asSpan(va)).isOk());
    ASSERT_TRUE(engine->insert(*tb, 7, asSpan(vb)).isOk());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(engine->get(*ta, 7, out).isOk());
    EXPECT_EQ(out, va);
    ASSERT_TRUE(engine->get(*tb, 7, out).isOk());
    EXPECT_EQ(out, vb);
}

TEST_P(EngineTest, DropTreeFreesPages)
{
    auto engine = freshEngine();
    auto tree = engine->createTree(1);
    ASSERT_TRUE(tree.isOk());
    for (std::uint64_t key = 1; key <= 1000; ++key) {
        auto v = value(key, 64);
        ASSERT_TRUE(engine->insert(*tree, key, asSpan(v)).isOk());
    }
    auto tx = engine->begin();
    ASSERT_TRUE(BTree::drop(tx->pageIO(), 1).isOk());
    ASSERT_TRUE(tx->commit().isOk());

    auto tx2 = engine->begin();
    EXPECT_EQ(BTree::open(tx2->pageIO(), 1).status().code(),
              StatusCode::NotFound);
    tx2->rollback();

    // A new tree can be created reusing the freed space.
    auto tree2 = engine->createTree(1);
    ASSERT_TRUE(tree2.isOk());
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineTest,
    ::testing::Values(EngineKind::Fast, EngineKind::Fash,
                      EngineKind::Nvwal, EngineKind::LegacyWal,
                      EngineKind::Journal),
    [](const ::testing::TestParamInfo<EngineKind> &info) {
        return engineKindName(info.param);
    });

// --- Engine-specific behaviour ----------------------------------------------

TEST(FastEngineTest, SingleInsertUsesInPlaceCommit)
{
    PmConfig pm_cfg;
    pm_cfg.size = 32u << 20;
    PmDevice device(pm_cfg);
    EngineConfig cfg;
    cfg.kind = EngineKind::Fast;
    auto engine = Engine::create(device, cfg, true);
    ASSERT_TRUE(engine.isOk());
    auto tree = (*engine)->createTree(1);
    ASSERT_TRUE(tree.isOk());

    std::uint64_t before = (*engine)->stats().inPlaceCommits;
    auto v = value(1, 64);
    ASSERT_TRUE((*engine)->insert(*tree, 10, asSpan(v)).isOk());
    EXPECT_EQ((*engine)->stats().inPlaceCommits, before + 1)
        << "a single-record insert must take the in-place path";

    // Updates and deletes of a single record too (paper §3.2).
    ASSERT_TRUE((*engine)->update(*tree, 10, asSpan(v)).isOk());
    ASSERT_TRUE((*engine)->erase(*tree, 10).isOk());
    EXPECT_EQ((*engine)->stats().inPlaceCommits, before + 3);
}

TEST(FastEngineTest, SplitFallsBackToSlotHeaderLogging)
{
    PmConfig pm_cfg;
    pm_cfg.size = 32u << 20;
    PmDevice device(pm_cfg);
    EngineConfig cfg;
    cfg.kind = EngineKind::Fast;
    auto engine = Engine::create(device, cfg, true);
    ASSERT_TRUE(engine.isOk());
    auto tree = (*engine)->createTree(1);
    ASSERT_TRUE(tree.isOk());

    // FAST leaves cap at kMaxInPlaceSlots records, so within the first
    // ~27 single-record inserts a split (and thus a logged commit)
    // must occur.
    std::uint64_t logged_before = (*engine)->stats().logCommits;
    for (std::uint64_t key = 1; key <= 40; ++key) {
        auto v = value(key, 16);
        ASSERT_TRUE((*engine)->insert(*tree, key, asSpan(v)).isOk());
    }
    EXPECT_GT((*engine)->stats().logCommits, logged_before);
    EXPECT_GT((*engine)->stats().inPlaceCommits, 0u);
}

TEST(FashEngineTest, NeverUsesInPlaceCommit)
{
    PmConfig pm_cfg;
    pm_cfg.size = 32u << 20;
    PmDevice device(pm_cfg);
    EngineConfig cfg;
    cfg.kind = EngineKind::Fash;
    auto engine = Engine::create(device, cfg, true);
    ASSERT_TRUE(engine.isOk());
    auto tree = (*engine)->createTree(1);
    ASSERT_TRUE(tree.isOk());
    for (std::uint64_t key = 1; key <= 50; ++key) {
        auto v = value(key, 16);
        ASSERT_TRUE((*engine)->insert(*tree, key, asSpan(v)).isOk());
    }
    EXPECT_EQ((*engine)->stats().inPlaceCommits, 0u);
    EXPECT_GT((*engine)->stats().logCommits, 0u);
}

TEST(FastEngineTest, RtmAbortInjectionStillCommits)
{
    PmConfig pm_cfg;
    pm_cfg.size = 32u << 20;
    PmDevice device(pm_cfg);
    EngineConfig cfg;
    cfg.kind = EngineKind::Fast;
    cfg.inPlaceCommitVia = InPlaceCommitVia::Rtm;
    cfg.rtm.abortProbability = 0.9;
    cfg.rtm.seed = 77;
    cfg.rtmRetriesBeforeFallback = 4; // force frequent fallbacks
    auto engine = Engine::create(device, cfg, true);
    ASSERT_TRUE(engine.isOk());
    auto tree = (*engine)->createTree(1);
    ASSERT_TRUE(tree.isOk());

    for (std::uint64_t key = 1; key <= 200; ++key) {
        auto v = value(key, 16);
        ASSERT_TRUE((*engine)->insert(*tree, key, asSpan(v)).isOk());
    }
    auto *fasp = dynamic_cast<FaspEngine *>(engine->get());
    ASSERT_NE(fasp, nullptr);
    EXPECT_GT((*engine)->stats().rtmFallbacks, 0u)
        << "with p=0.9 and 4 retries some commits must fall back";
    // And everything is still correct.
    auto tx = (*engine)->begin();
    auto n = tree->count(tx->pageIO());
    ASSERT_TRUE(n.isOk());
    EXPECT_EQ(*n, 200u);
    tx->rollback();
}

TEST(NvwalEngineTest, LazyCheckpointAppliesFrames)
{
    PmConfig pm_cfg;
    pm_cfg.size = 32u << 20;
    PmDevice device(pm_cfg);
    EngineConfig cfg;
    cfg.kind = EngineKind::Nvwal;
    cfg.format.logLen = 256u << 10; // small log: forces checkpoints
    auto engine = Engine::create(device, cfg, true);
    ASSERT_TRUE(engine.isOk());
    auto *nvwal = dynamic_cast<NvwalEngine *>(engine->get());
    ASSERT_NE(nvwal, nullptr);
    auto tree = (*engine)->createTree(1);
    ASSERT_TRUE(tree.isOk());

    for (std::uint64_t key = 1; key <= 2000; ++key) {
        auto v = value(key, 64);
        ASSERT_TRUE((*engine)->insert(*tree, key, asSpan(v)).isOk());
    }
    EXPECT_GT(nvwal->walLog().stats().checkpoints, 0u);

    std::vector<std::uint8_t> out;
    for (std::uint64_t key = 1; key <= 2000; ++key)
        ASSERT_TRUE((*engine)->get(*tree, key, out).isOk()) << key;
}

TEST(NvwalEngineTest, DifferentialLoggingIsSmall)
{
    PmConfig pm_cfg;
    pm_cfg.size = 32u << 20;
    PmDevice device(pm_cfg);
    EngineConfig cfg;
    cfg.kind = EngineKind::Nvwal;
    auto engine = Engine::create(device, cfg, true);
    ASSERT_TRUE(engine.isOk());
    auto *nvwal = dynamic_cast<NvwalEngine *>(engine->get());
    auto tree = (*engine)->createTree(1);
    ASSERT_TRUE(tree.isOk());
    // Warm the tree so the next insert touches an existing page.
    for (std::uint64_t key = 1; key <= 10; ++key) {
        auto v = value(key, 64);
        ASSERT_TRUE((*engine)->insert(*tree, key, asSpan(v)).isOk());
    }
    std::uint64_t bytes_before = nvwal->walLog().stats().frameBytes;
    auto v = value(999, 64);
    ASSERT_TRUE((*engine)->insert(*tree, 999, asSpan(v)).isOk());
    std::uint64_t frame_bytes =
        nvwal->walLog().stats().frameBytes - bytes_before;
    EXPECT_LT(frame_bytes, 1024u)
        << "a 64B insert must log far less than a full 4K page";
    EXPECT_GT(frame_bytes, 64u);
}

} // namespace
} // namespace fasp::core
