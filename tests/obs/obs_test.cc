/**
 * @file
 * Unit and stress tests of the observability layer: histogram bucket
 * boundaries / quantiles / merge, registry stability, trace-ring
 * overflow and wraparound, PM-event attribution (phase + site tables,
 * slot overflow), concurrent recording from many threads (the
 * TSan-stress half of ISSUE 4 satellite 3), and the span profiler
 * (ring accounting, contention/heat folding, outlier reservoir,
 * metrics-off negative path).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "pm/phase.h"

namespace fasp::obs {
namespace {

// --- Histogram buckets ---------------------------------------------------

TEST(HistogramTest, BucketBoundaries)
{
    // Bucket 0 holds exactly the value 0.
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperEdge(0), 0u);
    // Bucket i (i >= 1) holds [2^(i-1), 2^i - 1].
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(7), 3u);
    EXPECT_EQ(Histogram::bucketIndex(8), 4u);
    EXPECT_EQ(Histogram::bucketUpperEdge(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperEdge(2), 3u);
    EXPECT_EQ(Histogram::bucketUpperEdge(3), 7u);
    for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
        std::uint64_t lo = std::uint64_t{1} << (i - 1);
        std::uint64_t hi = Histogram::bucketUpperEdge(i);
        EXPECT_EQ(Histogram::bucketIndex(lo), i);
        EXPECT_EQ(Histogram::bucketIndex(hi), i);
        EXPECT_EQ(Histogram::bucketIndex(hi + 1), i + 1);
    }
    // The last bucket absorbs everything beyond its lower edge.
    constexpr std::size_t last = Histogram::kBuckets - 1;
    EXPECT_EQ(Histogram::bucketIndex(std::uint64_t{1} << (last - 1)),
              last);
    EXPECT_EQ(Histogram::bucketIndex(std::uint64_t{1} << 63), last);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}), last);
}

TEST(HistogramTest, RecordCountSumMax)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    h.record(0);
    h.record(5);
    h.record(100);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 105u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(Histogram::bucketIndex(5)), 1u);
    EXPECT_EQ(h.bucketCount(Histogram::bucketIndex(100)), 1u);
}

TEST(HistogramTest, QuantilesReportBucketUpperEdge)
{
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.record(5); // all land in bucket 3 = [4, 7]
    EXPECT_EQ(h.p50(), 7u);
    EXPECT_EQ(h.p95(), 7u);
    EXPECT_EQ(h.p99(), 7u);

    // 90 small + 10 large: p50 stays small, p99 reports the tail.
    Histogram mix;
    for (int i = 0; i < 90; ++i)
        mix.record(2);
    for (int i = 0; i < 10; ++i)
        mix.record(1000);
    EXPECT_EQ(mix.p50(), 3u); // bucket 2 = [2, 3]
    EXPECT_EQ(mix.p99(), 1023u); // bucket 10 = [512, 1023]
}

TEST(HistogramTest, OverflowBucketReportsRecordedMax)
{
    Histogram h;
    std::uint64_t huge = std::uint64_t{1} << 62;
    h.record(huge);
    EXPECT_EQ(h.quantile(1.0), huge);
    EXPECT_EQ(h.p50(), huge);
}

TEST(HistogramTest, MergeAddsBucketsAndKeepsMax)
{
    Histogram a, b;
    a.record(1);
    a.record(6);
    b.record(6);
    b.record(4000);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.sum(), 1u + 6 + 6 + 4000);
    EXPECT_EQ(a.max(), 4000u);
    EXPECT_EQ(a.bucketCount(Histogram::bucketIndex(6)), 2u);
    EXPECT_EQ(a.bucketCount(Histogram::bucketIndex(4000)), 1u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.max(), 0u);
    EXPECT_EQ(a.quantile(0.99), 0u);
}

// --- Registry ------------------------------------------------------------

TEST(MetricsRegistryTest, NamesResolveToStableAddresses)
{
    MetricsRegistry reg;
    Counter &c1 = reg.counter("test.counter");
    Counter &c2 = reg.counter("test.counter");
    EXPECT_EQ(&c1, &c2);
    c1.inc();
    c2.add(4);
    EXPECT_EQ(c1.value(), 5u);

    Gauge &g = reg.gauge("test.gauge");
    g.set(-3);
    g.add(1);
    EXPECT_EQ(reg.gauge("test.gauge").value(), -2);

    Histogram &h = reg.histogram("test.hist");
    h.record(9);
    EXPECT_EQ(&h, &reg.histogram("test.hist"));

    auto counters = reg.counters();
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters[0].first, "test.counter");
    EXPECT_EQ(counters[0].second, 5u);

    auto hists = reg.histograms();
    ASSERT_EQ(hists.size(), 1u);
    EXPECT_EQ(hists[0].second.count, 1u);
    ASSERT_EQ(hists[0].second.buckets.size(), 1u);

    reg.reset();
    EXPECT_EQ(reg.counter("test.counter").value(), 0u);
    EXPECT_EQ(reg.gauge("test.gauge").value(), 0);
    EXPECT_EQ(reg.histogram("test.hist").count(), 0u);
    // Names stay registered after reset.
    EXPECT_EQ(reg.counters().size(), 1u);
}

// --- PmAttribution -------------------------------------------------------

TEST(PmAttributionTest, BillsPhaseAndSite)
{
    PmAttribution attr;
    attr.onPmStore("siteA", pm::Component::LogFlush, 64);
    attr.onPmStore("siteA", pm::Component::LogFlush, 32);
    attr.onPmFlush("siteA", pm::Component::LogFlush);
    attr.onPmFence("siteB", pm::Component::Checkpoint);
    attr.onPmModelNs("siteB", pm::Component::Checkpoint, 300);

    PmCellSnapshot lf = attr.phase(pm::Component::LogFlush);
    EXPECT_EQ(lf.stores, 2u);
    EXPECT_EQ(lf.storeBytes, 96u);
    EXPECT_EQ(lf.flushes, 1u);
    EXPECT_EQ(lf.fences, 0u);

    PmCellSnapshot cp = attr.phase(pm::Component::Checkpoint);
    EXPECT_EQ(cp.fences, 1u);
    EXPECT_EQ(cp.modelNs, 300u);
    EXPECT_TRUE(attr.phase(pm::Component::Defrag).empty());

    auto sites = attr.sites();
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_EQ(sites[0].first, "siteA");
    EXPECT_EQ(sites[0].second.stores, 2u);
    EXPECT_EQ(sites[0].second.flushes, 1u);
    EXPECT_EQ(sites[1].first, "siteB");
    EXPECT_EQ(sites[1].second.modelNs, 300u);

    attr.reset();
    EXPECT_TRUE(attr.phase(pm::Component::LogFlush).empty());
}

TEST(PmAttributionTest, NullSiteBilledAsUntagged)
{
    PmAttribution attr;
    attr.onPmFlush(nullptr, pm::Component::None);
    auto sites = attr.sites();
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0].first, "(untagged)");
    EXPECT_EQ(sites[0].second.flushes, 1u);
}

TEST(PmAttributionTest, ContentEqualTagsShareOneSlot)
{
    // Identical literals can have distinct addresses across TUs; the
    // table must fall back to content equality.
    PmAttribution attr;
    std::string a = "same-site", b = "same-site";
    ASSERT_NE(a.c_str(), b.c_str());
    attr.onPmFlush(a.c_str(), pm::Component::None);
    attr.onPmFlush(b.c_str(), pm::Component::None);
    auto sites = attr.sites();
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0].second.flushes, 2u);
}

TEST(PmAttributionTest, SlotTableOverflowFoldsIntoOverflowSite)
{
    PmAttribution attr;
    std::deque<std::string> tags; // stable c_str() addresses
    for (std::size_t i = 0; i < PmAttribution::kMaxSites + 10; ++i) {
        tags.push_back("site-" + std::to_string(i));
        attr.onPmFlush(tags.back().c_str(), pm::Component::None);
    }
    auto sites = attr.sites();
    ASSERT_EQ(sites.size(), PmAttribution::kMaxSites + 1);
    EXPECT_EQ(sites.back().first, "(overflow)");
    EXPECT_EQ(sites.back().second.flushes, 10u);
    std::uint64_t total = 0;
    for (const auto &[name, cell] : sites)
        total += cell.flushes;
    EXPECT_EQ(total, PmAttribution::kMaxSites + 10);
}

TEST(PhaseLedgerTest, FoldAccumulatesPerEngine)
{
    PhaseLedger::global().reset();
    PmAttribution attr;
    attr.onPmFlush("s", pm::Component::LogFlush);
    PhaseLedger::global().fold("ENGINE_A", attr);
    PhaseLedger::global().fold("ENGINE_A", attr); // sweep: accumulate
    PhaseLedger::global().fold("ENGINE_B", attr);

    auto entries = PhaseLedger::global().entries();
    ASSERT_EQ(entries.size(), 2u);
    std::size_t lf = static_cast<std::size_t>(pm::Component::LogFlush);
    EXPECT_EQ(entries[0].engine, "ENGINE_A");
    EXPECT_EQ(entries[0].phases[lf].flushes, 2u);
    ASSERT_EQ(entries[0].sites.size(), 1u);
    EXPECT_EQ(entries[0].sites[0].second.flushes, 2u);
    EXPECT_EQ(entries[1].engine, "ENGINE_B");
    EXPECT_EQ(entries[1].phases[lf].flushes, 1u);
    PhaseLedger::global().reset();
    EXPECT_TRUE(PhaseLedger::global().entries().empty());
}

// --- TraceRing -----------------------------------------------------------

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(TraceRing(1).capacity(), 8u);
    EXPECT_EQ(TraceRing(8).capacity(), 8u);
    EXPECT_EQ(TraceRing(9).capacity(), 16u);
    EXPECT_EQ(TraceRing(4096).capacity(), 4096u);
}

TEST(TraceRingTest, OverflowOverwritesOldestAndCountsDropped)
{
    TraceRing ring(8);
    for (std::uint64_t i = 0; i < 20; ++i) {
        TraceEvent ev;
        ev.seq = i;
        ev.op = TraceOp::TxCommit;
        ev.pageId = i;
        ring.record(ev);
    }
    EXPECT_EQ(ring.recorded(), 20u);
    EXPECT_EQ(ring.dropped(), 12u);
    auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 8u);
    // Retained events are the newest 8, oldest first.
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 12 + i);
        EXPECT_EQ(events[i].pageId, 12 + i);
    }
    ring.reset();
    EXPECT_EQ(ring.recorded(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRingTest, PartialFillSnapshotsInOrder)
{
    TraceRing ring(16);
    for (std::uint64_t i = 0; i < 5; ++i) {
        TraceEvent ev;
        ev.seq = 100 + i;
        ring.record(ev);
    }
    EXPECT_EQ(ring.dropped(), 0u);
    auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].seq, 100 + i);
}

TEST(TracerTest, CollectMergesRingsBySequence)
{
    Tracer tracer(64);
    tracer.record(TraceOp::TxCommit, "FAST", 7, "in-place");
    std::thread other([&] {
        tracer.record(TraceOp::TxAbort, "FASH", 9);
        tracer.record(TraceOp::RtmAbort, nullptr, 0, "capacity");
    });
    other.join();
    tracer.record(TraceOp::PageAlloc, "FAST", 11);

    EXPECT_EQ(tracer.ringCount(), 2u);
    EXPECT_EQ(tracer.totalRecorded(), 4u);
    EXPECT_EQ(tracer.totalDropped(), 0u);
    auto events = tracer.collect();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GT(events[i].seq, events[i - 1].seq);
    EXPECT_STREQ(events[0].engine, "FAST");
    EXPECT_STREQ(events[0].detail, "in-place");
    EXPECT_EQ(events[0].pageId, 7u);

    tracer.reset();
    EXPECT_EQ(tracer.totalRecorded(), 0u);
    EXPECT_TRUE(tracer.collect().empty());
}

TEST(TracerTest, TraceOpNamesAreStable)
{
    EXPECT_STREQ(traceOpName(TraceOp::TxCommit), "tx-commit");
    EXPECT_STREQ(traceOpName(TraceOp::RtmAbort), "rtm-abort");
    EXPECT_STREQ(traceOpName(TraceOp::Recovery), "recovery");
}

// --- Concurrent recording stress (run under TSan in CI) ------------------

TEST(ObsStressTest, ConcurrentRecordingFromManyThreads)
{
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kOpsPerThread = 20000;

    MetricsRegistry reg;
    Counter &counter = reg.counter("stress.ops");
    Histogram &hist = reg.histogram("stress.latency");
    PmAttribution attr;
    Tracer tracer(256);
    static const char *kSites[] = {"stress.a", "stress.b", "stress.c"};

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = 0; i < kOpsPerThread; ++i) {
                counter.inc();
                hist.record(i % 5000);
                const char *site = kSites[i % 3];
                auto phase = static_cast<pm::Component>(
                    i % PmAttribution::kNumPhases);
                attr.onPmStore(site, phase, 64);
                attr.onPmFlush(site, phase);
                attr.onPmFence(site, phase);
                attr.onPmModelNs(site, phase, 10);
                if (i % 16 == 0)
                    tracer.record(TraceOp::TxCommit, "FAST",
                                  t * kOpsPerThread + i);
                // Concurrent registry lookups must also be safe.
                if (i % 4096 == 0)
                    reg.counter("stress.ops").inc();
            }
        });
    }
    for (auto &th : threads)
        th.join();

    constexpr std::uint64_t kOps = kThreads * kOpsPerThread;
    EXPECT_GE(counter.value(), kOps);
    EXPECT_EQ(hist.count(), kOps);

    std::uint64_t phase_flushes = 0;
    for (std::size_t i = 0; i < PmAttribution::kNumPhases; ++i)
        phase_flushes +=
            attr.phase(static_cast<pm::Component>(i)).flushes;
    EXPECT_EQ(phase_flushes, kOps);

    std::uint64_t site_flushes = 0;
    auto sites = attr.sites();
    EXPECT_EQ(sites.size(), 3u);
    for (const auto &[name, cell] : sites)
        site_flushes += cell.flushes;
    EXPECT_EQ(site_flushes, kOps);

    EXPECT_EQ(tracer.ringCount(), kThreads);
    EXPECT_EQ(tracer.totalRecorded(), kOps / 16);
    auto events = tracer.collect();
    EXPECT_EQ(events.size() + tracer.totalDropped(),
              tracer.totalRecorded());
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].seq, events[i - 1].seq);
}

// --- TraceRing overrun under concurrent collect --------------------------

// Regression: drop accounting is settled at overwrite time, so a
// reader racing a wrapping writer must always observe
// dropped <= recorded with the difference bounded by the capacity,
// and must never surface a torn event (seq and payload disagreeing).
TEST(TraceRingTest, OverrunUnderConcurrentCollectKeepsAccounting)
{
    constexpr std::uint64_t kWrites = 50000;
    Tracer tracer(16);
    std::atomic<bool> writing{true};

    std::thread writer([&] {
        for (std::uint64_t i = 0; i < kWrites; ++i)
            tracer.record(TraceOp::TxCommit, "FAST", i);
        writing.store(false, std::memory_order_release);
    });

    while (writing.load(std::memory_order_acquire)) {
        auto stats = tracer.ringStats();
        for (const TraceRingStats &s : stats) {
            EXPECT_LE(s.dropped, s.recorded);
            EXPECT_LE(s.retained, s.capacity);
        }
        for (const TraceEvent &ev : tracer.collect())
            EXPECT_LT(ev.pageId, kWrites);
    }
    writer.join();

    EXPECT_EQ(tracer.totalRecorded(), kWrites);
    EXPECT_EQ(tracer.totalDropped(), kWrites - 16);
    auto stats = tracer.ringStats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].retained, 16u);
    auto events = tracer.collect();
    EXPECT_EQ(events.size(), 16u);
    for (const TraceEvent &ev : events)
        EXPECT_EQ(ev.pageId, kWrites - 16 + (ev.seq - events[0].seq));
}

// --- Span profiler -------------------------------------------------------

TEST(SpanProfilerTest, ReservoirKeepsSlowestAndLatchHistMerges)
{
    SpanProfiler prof;
    for (std::uint64_t i = 1; i <= kOutliersPerEngine + 4; ++i) {
        TxSpan span;
        span.txId = i;
        span.engine = "FAST";
        span.engineCode = 1;
        span.committed = true;
        span.wallNs = i * 1000;
        span.phaseNs[0] = i * 1000;
        prof.recordSpan(span, {});
    }
    auto outs = prof.outliers();
    ASSERT_EQ(outs.size(), kOutliersPerEngine);
    // The slowest survive; the first (fastest) spans were evicted.
    for (const SpanOutlier &o : outs)
        EXPECT_GE(o.span.txId, 5u);
    // A span at the floor no longer qualifies as a candidate.
    TxSpan slow;
    slow.engineCode = 1;
    slow.wallNs = 5000;
    EXPECT_FALSE(prof.outlierCandidate(slow));
    slow.wallNs = 50000;
    EXPECT_TRUE(prof.outlierCandidate(slow));

    prof.recordLatchWait(3, 100, false);
    prof.recordLatchWait(900, 70000, true);
    EXPECT_EQ(prof.totalLatchWaits(), 2u);
    EXPECT_EQ(prof.totalLatchConflicts(), 1u);
    EXPECT_EQ(prof.contendedSlotCount(), 2u);
    HistogramSnapshot merged = prof.latchWaitHist();
    EXPECT_EQ(merged.count, 2u);
    EXPECT_EQ(merged.max, 70000u);
    prof.resetLatchContention();
    EXPECT_EQ(prof.totalLatchWaits(), 0u);
    EXPECT_EQ(prof.latchWaitHist().count, 0u);
    // Contention reset leaves spans and outliers alone.
    EXPECT_EQ(prof.outliers().size(), kOutliersPerEngine);
}

// 8-thread stress over the span rings, contention aggregates, and the
// heat sketch, with a concurrent snapshot reader (run under TSan in
// CI). Invariant checked after the join: every recorded span is
// accounted for — per ring, retained spans + dropped == recorded.
TEST(ObsStressTest, SpanRingAndHeatSketchConcurrent)
{
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kSpansPerThread = 2000;

    SpanProfiler prof;
    std::atomic<bool> writing{true};

    std::thread reader([&] {
        while (writing.load(std::memory_order_acquire)) {
            (void)prof.engineSummaries();
            (void)prof.latchContention();
            (void)prof.latchWaitHist();
            (void)prof.pageHeat();
            (void)prof.outliers();
            (void)prof.ringStats();
            (void)prof.spansRecorded();
        }
    });

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = 0; i < kSpansPerThread; ++i) {
                TxSpan span;
                span.txId = t * kSpansPerThread + i;
                span.engine = "FAST";
                span.engineCode = 1;
                span.committed = i % 7 != 0;
                span.wallNs = 100 + (span.txId % 9000);
                span.phaseNs[0] = span.wallNs;
                span.latchWaits = 1;
                span.latchWaitNs = 50;
                prof.recordSpan(span, {});
                prof.recordLatchWait(t * 100 + (i % 3), 50,
                                     i % 11 == 0);
                prof.recordPageAccess(i % 300, i % 2 == 0);
                if (i % 13 == 0)
                    prof.recordPageConflict(i % 300);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    writing.store(false, std::memory_order_release);
    reader.join();

    constexpr std::uint64_t kSpans = kThreads * kSpansPerThread;
    EXPECT_EQ(prof.spansRecorded(), kSpans);

    auto engines = prof.engineSummaries();
    ASSERT_EQ(engines.size(), 1u);
    EXPECT_EQ(engines[0].spans, kSpans);
    EXPECT_EQ(engines[0].commits + engines[0].aborts, kSpans);
    EXPECT_EQ(engines[0].wallNs.count, kSpans);
    EXPECT_EQ(engines[0].latchWaits, kSpans);

    auto stats = prof.ringStats();
    ASSERT_EQ(stats.size(), kThreads);
    std::uint64_t recorded = 0;
    for (const SpanRingStats &s : stats) {
        std::uint64_t retained =
            std::min<std::uint64_t>(s.recorded, s.capacity);
        EXPECT_EQ(retained + s.dropped, s.recorded);
        recorded += s.recorded;
    }
    EXPECT_EQ(recorded, kSpans);

    EXPECT_EQ(prof.totalLatchWaits(), kSpans);
    EXPECT_EQ(prof.latchWaitHist().count, kSpans);

    PageHeatSnapshot heat = prof.pageHeat(kPageHeatSlots);
    EXPECT_LE(heat.tracked, kPageHeatSlots);
    std::uint64_t heat_hits = 0;
    for (const PageHeatEntry &e : heat.top)
        heat_hits += e.accesses;
    // Decay halves counts, so only a loose lower bound holds; every
    // access either landed in a cell or was counted as overflow.
    EXPECT_GT(heat_hits + heat.overflow, 0u);

    auto outs = prof.outliers();
    EXPECT_EQ(outs.size(), kOutliersPerEngine);
    for (const SpanOutlier &o : outs)
        EXPECT_GE(o.span.wallNs, 100u);
}

// Negative path: with metrics off, the span free functions must leave
// the global profiler untouched — no spans, no outliers, no latch or
// heat folding (the "--metrics off ⇒ empty outlier capture" check).
TEST(SpanProfilerTest, MetricsOffRecordsNothing)
{
    ASSERT_FALSE(enabled());
    SpanProfiler &prof = SpanProfiler::global();
    std::uint64_t spans0 = prof.spansRecorded();
    std::size_t outliers0 = prof.outliers().size();
    std::uint64_t waits0 = prof.totalLatchWaits();

    spanBegin("FAST", 1, 42);
    spanPageAccess(7, true);
    spanLatchWait(3, 5000, true);
    spanSplit();
    spanDefrag();
    spanPageConflict(7);
    spanEnd(true, "in-place");

    EXPECT_EQ(prof.spansRecorded(), spans0);
    EXPECT_EQ(prof.outliers().size(), outliers0);
    EXPECT_EQ(prof.totalLatchWaits(), waits0);
    EXPECT_EQ(outliers0, 0u);
}

} // namespace
} // namespace fasp::obs
