/**
 * @file
 * Flight-recorder tests (PR 5 satellite 3): format/attach/append
 * roundtrip, ring wraparound, torn-head negative fixtures — a record
 * only partially persisted at the crash point must be detected via its
 * CRC and skipped, never misparsed — plus the checker-cleanliness and
 * recorder-off zero-footprint guarantees.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "btree/btree.h"
#include "common/crc32.h"
#include "core/engine.h"
#include "obs/flight_recorder.h"
#include "pm/device.h"
#include "support/checker_guard.h"

namespace fasp::obs {
namespace {

using pm::CrashPolicy;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

constexpr PmOffset kOff = 4096;
constexpr std::uint64_t kLen = 64 + 16 * 64; // 16 slots

PmConfig
cacheSimConfig(CrashPolicy policy = CrashPolicy::DropAll)
{
    PmConfig cfg;
    cfg.size = 64u << 10;
    cfg.mode = PmMode::CacheSim;
    cfg.crashPolicy = policy;
    cfg.crashSeed = 99;
    return cfg;
}

/** Read the recorder region out of the device's durable image. */
std::vector<std::uint8_t>
durableRegion(const PmDevice &device)
{
    std::vector<std::uint8_t> out(kLen);
    std::memcpy(out.data(), device.durableData() + kOff, kLen);
    return out;
}

TEST(FlightRecorderTest, FormatAttachAppendRoundtrip)
{
    PmDevice device(cacheSimConfig());
    FlightRecorder::formatRegion(device, kOff, kLen);

    FlightRecorder fr(device, kOff, kLen);
    EXPECT_EQ(fr.capacity(), 16u);
    auto stats = fr.attach();
    ASSERT_TRUE(stats.isOk());
    EXPECT_EQ(stats->validRecords, 0u);
    EXPECT_EQ(stats->tornRecords, 0u);

    fr.append(FlightEventType::OpBegin, 1, 7, 0, 0);
    fr.append(FlightEventType::PageSplit, 1, 7, 42, 0);
    fr.append(FlightEventType::CommitPoint, 1, 7, 0, 2);

    auto region = durableRegion(device);
    std::vector<std::uint32_t> torn;
    auto records =
        FlightRecorder::decodeRegion(region.data(), kLen, &torn);
    EXPECT_TRUE(torn.empty());
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].type, FlightEventType::OpBegin);
    EXPECT_EQ(records[0].txid, 7u);
    EXPECT_EQ(records[1].type, FlightEventType::PageSplit);
    EXPECT_EQ(records[1].pageId, 42u);
    EXPECT_EQ(records[2].type, FlightEventType::CommitPoint);
    EXPECT_EQ(records[2].aux, 2u);
    EXPECT_EQ(records[0].seq + 1, records[1].seq);
    EXPECT_EQ(records[1].seq + 1, records[2].seq);

    // A second attach resumes the sequence past the survivors.
    FlightRecorder fr2(device, kOff, kLen);
    auto stats2 = fr2.attach();
    ASSERT_TRUE(stats2.isOk());
    EXPECT_EQ(stats2->validRecords, 3u);
    EXPECT_EQ(stats2->maxSeq, records[2].seq);
    fr2.append(FlightEventType::Abort, 1, 8, 0, 0);
    auto region2 = durableRegion(device);
    auto records2 = FlightRecorder::decodeRegion(region2.data(), kLen);
    ASSERT_EQ(records2.size(), 4u);
    EXPECT_EQ(records2[3].seq, records[2].seq + 1);
}

TEST(FlightRecorderTest, WraparoundKeepsLatestRecords)
{
    PmDevice device(cacheSimConfig());
    FlightRecorder::formatRegion(device, kOff, kLen);
    FlightRecorder fr(device, kOff, kLen);
    ASSERT_TRUE(fr.attach().isOk());

    for (std::uint64_t i = 1; i <= 40; ++i)
        fr.append(FlightEventType::CommitPoint, 2, i, 0, 0);

    auto region = durableRegion(device);
    auto records = FlightRecorder::decodeRegion(region.data(), kLen);
    ASSERT_EQ(records.size(), 16u); // capacity
    EXPECT_EQ(records.front().txid, 25u);
    EXPECT_EQ(records.back().txid, 40u);
}

TEST(FlightRecorderTest, ManuallyCorruptedSlotIsTornNeverMisparsed)
{
    PmDevice device(cacheSimConfig());
    FlightRecorder::formatRegion(device, kOff, kLen);
    FlightRecorder fr(device, kOff, kLen);
    ASSERT_TRUE(fr.attach().isOk());
    for (std::uint64_t i = 1; i <= 5; ++i)
        fr.append(FlightEventType::CommitPoint, 1, i, 0, 0);

    // Corrupt one byte of the third record's txid, as a torn line
    // would. The CRC must catch it.
    PmOffset slot3 = kOff + 64 + 2 * 64;
    std::uint8_t byte = 0;
    device.read(slot3 + 16, &byte, 1);
    byte ^= 0xff;
    device.write(slot3 + 16, &byte, 1);
    device.flushRange(slot3 + 16, 1);
    device.sfence();

    auto region = durableRegion(device);
    std::vector<std::uint32_t> torn;
    auto records =
        FlightRecorder::decodeRegion(region.data(), kLen, &torn);
    ASSERT_EQ(torn.size(), 1u);
    EXPECT_EQ(torn[0], 2u);
    ASSERT_EQ(records.size(), 4u);
    for (const FlightRecord &rec : records)
        EXPECT_NE(rec.seq, 3u) << "torn record was misparsed as valid";

    // attach() repairs: the torn slot is zeroed and reported.
    FlightRecorder fr2(device, kOff, kLen);
    auto stats = fr2.attach();
    ASSERT_TRUE(stats.isOk());
    EXPECT_EQ(stats->tornRecords, 1u);
    EXPECT_EQ(stats->validRecords, 4u);
    auto region2 = durableRegion(device);
    std::vector<std::uint32_t> torn2;
    FlightRecorder::decodeRegion(region2.data(), kLen, &torn2);
    EXPECT_TRUE(torn2.empty()) << "repair left a torn slot behind";
}

TEST(FlightRecorderTest, CrashMidAppendUnderTornLines)
{
    // Sweep a crash over every persistence event of one append under
    // TornLines: whatever survives, decode must yield either the full
    // record intact or a torn/absent slot — never a misparse.
    for (std::uint64_t k = 0; k < 3; ++k) {
        PmDevice device(cacheSimConfig(CrashPolicy::TornLines));
        FlightRecorder::formatRegion(device, kOff, kLen);
        FlightRecorder fr(device, kOff, kLen);
        ASSERT_TRUE(fr.attach().isOk());
        fr.append(FlightEventType::OpBegin, 1, 11, 0, 0);

        pm::PointCrashInjector injector(device.eventCount() + k);
        device.setCrashInjector(&injector);
        bool crashed = false;
        try {
            fr.append(FlightEventType::CommitPoint, 1, 11, 0, 777);
        } catch (const pm::CrashException &) {
            crashed = true;
        }
        device.setCrashInjector(nullptr);
        ASSERT_TRUE(crashed) << "append has 3 events, k=" << k;

        auto region = durableRegion(device);
        std::vector<std::uint32_t> torn;
        auto records =
            FlightRecorder::decodeRegion(region.data(), kLen, &torn);
        ASSERT_GE(records.size(), 1u);
        EXPECT_EQ(records[0].txid, 11u);
        for (const FlightRecord &rec : records) {
            if (rec.seq == records[0].seq + 1) {
                // The interrupted record decoded as valid: it must be
                // byte-exact, not a partial write that slipped past
                // the CRC.
                EXPECT_EQ(rec.type, FlightEventType::CommitPoint);
                EXPECT_EQ(rec.txid, 11u);
                EXPECT_EQ(rec.aux, 777u);
            }
        }
        for (std::uint32_t slot : torn)
            EXPECT_EQ(slot, 1u) << "tearing leaked beyond the slot";

        // Recovery path: revive, attach (repairing any torn slot),
        // and keep appending.
        device.reviveAfterCrash();
        FlightRecorder fr2(device, kOff, kLen);
        auto stats = fr2.attach();
        ASSERT_TRUE(stats.isOk());
        fr2.append(FlightEventType::RecoveryEnd, 1, 0, 0, 0);
        auto region2 = durableRegion(device);
        std::vector<std::uint32_t> torn2;
        auto records2 =
            FlightRecorder::decodeRegion(region2.data(), kLen, &torn2);
        EXPECT_TRUE(torn2.empty());
        EXPECT_EQ(records2.back().type, FlightEventType::RecoveryEnd);
    }
}

TEST(FlightRecorderTest, AppendsAreCheckerCleanInsideTransactions)
{
    PmDevice device(cacheSimConfig());
    FlightRecorder::formatRegion(device, kOff, kLen);
    FlightRecorder fr(device, kOff, kLen);
    {
        testsupport::PmCheckerGuard guard(device);
        ASSERT_TRUE(fr.attach().isOk());
        // Appends inside a checker transaction window must count as
        // flushed-and-fenced by the commit point.
        device.txBegin();
        fr.append(FlightEventType::OpBegin, 1, 5, 0, 0);
        fr.append(FlightEventType::CommitPoint, 1, 5, 0, 1);
        device.txCommitPoint();
        device.txEnd(/*committed=*/true);
        // Guard destructor asserts a violation-free report.
    }
}

TEST(FlightRecorderTest, RecorderOffEnginePathHasNoFootprint)
{
    // The acceptance criterion's recorder-off path: the engine never
    // constructs a recorder, so per-transaction cost is one nullptr
    // check — and the PM event stream is byte-identical between two
    // runs with the feature compiled in but disabled.
    ASSERT_FALSE(FlightRecorder::enabled());
    auto run = [](std::uint64_t &events) {
        PmConfig cfg;
        cfg.size = 16u << 20;
        cfg.mode = PmMode::Direct;
        PmDevice device(cfg);
        core::EngineConfig ecfg;
        ecfg.kind = core::EngineKind::Fast;
        ecfg.format.logLen = 1u << 20;
        auto engine = core::Engine::create(device, ecfg, true);
        ASSERT_TRUE(engine.isOk());
        EXPECT_EQ((*engine)->flightRecorder(), nullptr);
        auto tree = (*engine)->createTree(1);
        ASSERT_TRUE(tree.isOk());
        for (std::uint64_t key = 1; key <= 50; ++key) {
            std::array<std::uint8_t, 32> v{};
            v[0] = static_cast<std::uint8_t>(key);
            ASSERT_TRUE((*engine)
                            ->insert(*tree, key,
                                     std::span<const std::uint8_t>(v))
                            .isOk());
        }
        events = device.eventCount();
    };
    std::uint64_t events_a = 0;
    std::uint64_t events_b = 0;
    run(events_a);
    run(events_b);
    EXPECT_EQ(events_a, events_b);
    EXPECT_GT(events_a, 0u);
}

TEST(FlightRecorderTest, EngineEmitsOpEventsWhenEnabled)
{
    FlightRecorder::setEnabled(true);
    PmConfig cfg;
    cfg.size = 16u << 20;
    cfg.mode = PmMode::CacheSim;
    PmDevice device(cfg);
    core::EngineConfig ecfg;
    ecfg.kind = core::EngineKind::Fast;
    ecfg.format.logLen = 1u << 20;
    auto engine_res = core::Engine::create(device, ecfg, true);
    ASSERT_TRUE(engine_res.isOk());
    auto engine = std::move(*engine_res);
    ASSERT_NE(engine->flightRecorder(), nullptr);
    auto tree_res = engine->createTree(1);
    ASSERT_TRUE(tree_res.isOk());

    std::array<std::uint8_t, 32> v{};
    ASSERT_TRUE(
        engine->insert(*tree_res, 1, std::span<const std::uint8_t>(v))
            .isOk());
    FlightRecorder::setEnabled(false);

    // The committed insert must have left an OpBegin/CommitPoint pair
    // in the durable region.
    const std::uint8_t *base = device.durableData();
    // Region location comes from the superblock (offset 44/52).
    std::uint64_t fr_off = 0;
    std::uint64_t fr_len = 0;
    std::memcpy(&fr_off, base + 44, 8);
    std::memcpy(&fr_len, base + 52, 8);
    ASSERT_NE(fr_len, 0u);
    auto records =
        FlightRecorder::decodeRegion(base + fr_off, fr_len);
    bool begin_seen = false;
    bool commit_seen = false;
    std::uint64_t last_txid = 0;
    for (const FlightRecord &rec : records) {
        if (rec.type == FlightEventType::OpBegin) {
            begin_seen = true;
            last_txid = rec.txid;
        }
        if (rec.type == FlightEventType::CommitPoint &&
            rec.txid == last_txid) {
            commit_seen = true;
        }
    }
    EXPECT_TRUE(begin_seen);
    EXPECT_TRUE(commit_seen);
}

} // namespace
} // namespace fasp::obs
