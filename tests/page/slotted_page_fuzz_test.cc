/**
 * @file
 * Property-based fuzz of the slotted page against a std::map reference
 * model: long random insert/update/delete/drop/defrag sequences at
 * page sizes from 512 B to 4 KB, with the page re-checked against the
 * model (and its own integrity/free-list invariants) throughout.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "page/page_io.h"
#include "page/slotted_page.h"

namespace fasp::page {
namespace {

/** Reference model: key -> full payload (key bytes + value bytes). */
using Model = std::map<std::uint64_t, std::vector<std::uint8_t>>;

class SlottedPageFuzzTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    SlottedPageFuzzTest()
        : pageSize_(GetParam()), buf_(pageSize_, 0),
          io_(buf_.data(), pageSize_)
    {
        init(io_, PageType::Leaf, 0);
    }

    std::vector<std::uint8_t>
    makePayload(std::uint64_t key, std::size_t value_len, Rng &rng)
    {
        std::vector<std::uint8_t> payload(8 + value_len);
        storeU64(payload.data(), key);
        if (value_len)
            rng.fillBytes(payload.data() + 8, value_len);
        return payload;
    }

    /** Compact into a fresh buffer and swap it in. */
    void
    defrag()
    {
        std::vector<std::uint8_t> fresh(pageSize_, 0);
        BufferPageIO dst(fresh.data(), pageSize_);
        ASSERT_TRUE(defragmentInto(io_, dst).isOk());
        buf_.swap(fresh);
        io_ = BufferPageIO(buf_.data(), pageSize_);
    }

    /** Full cross-check of page contents vs. the model. */
    void
    verifyAgainst(const Model &model)
    {
        Status integrity = checkIntegrity(io_);
        ASSERT_TRUE(integrity.isOk()) << integrity.toString();
        ASSERT_TRUE(freeListConsistent(io_));
        ASSERT_EQ(numRecords(io_), model.size());
        std::uint16_t slot = 0;
        std::vector<std::uint8_t> payload;
        for (const auto &[key, expected] : model) {
            ASSERT_EQ(recordKey(io_, slot), key);
            auto found = lowerBound(io_, key);
            ASSERT_TRUE(found.found);
            ASSERT_EQ(found.slot, slot);
            readPayload(io_, slot, payload);
            ASSERT_EQ(payload, expected);
            ++slot;
        }
    }

    std::size_t pageSize_;
    std::vector<std::uint8_t> buf_;
    BufferPageIO io_;
};

TEST_P(SlottedPageFuzzTest, RandomOpsMatchReferenceModel)
{
    Model model;
    Rng rng(0x5eed0000 + pageSize_);
    // Value sizes scale with the page so small pages still exercise
    // both the multi-record and the page-full paths.
    const std::size_t max_value = pageSize_ / 16;
    const std::size_t ops = 6000;
    std::uint64_t defrags = 0, full_rejects = 0;

    for (std::size_t op = 0; op < ops; ++op) {
        std::uint32_t dice = rng.nextBounded(100);
        if (dice < 55 || model.empty()) {
            // Insert a fresh key.
            std::uint64_t key = rng.nextBounded(10000) + 1;
            if (model.count(key))
                continue;
            auto payload =
                makePayload(key, rng.nextBounded(max_value + 1), rng);
            FitResult fit = checkFit(
                io_, static_cast<std::uint16_t>(payload.size()), true);
            if (fit == FitResult::NeedsDefrag) {
                ASSERT_NO_FATAL_FAILURE(defrag());
                ++defrags;
                fit = checkFit(
                    io_, static_cast<std::uint16_t>(payload.size()),
                    true);
            }
            if (fit != FitResult::Fits) {
                ++full_rejects;
                continue; // page genuinely full: a split elsewhere
            }
            ASSERT_TRUE(
                insertRecord(io_, key,
                             std::span<const std::uint8_t>(payload))
                    .isOk());
            model.emplace(key, std::move(payload));
        } else if (dice < 75) {
            // Update an existing key with a new-length payload.
            auto it = model.begin();
            std::advance(it, rng.nextBounded(model.size()));
            auto payload = makePayload(
                it->first, rng.nextBounded(max_value + 1), rng);
            FitResult fit = checkFit(
                io_, static_cast<std::uint16_t>(payload.size()),
                false);
            if (fit == FitResult::NeedsDefrag) {
                ASSERT_NO_FATAL_FAILURE(defrag());
                ++defrags;
                fit = checkFit(
                    io_, static_cast<std::uint16_t>(payload.size()),
                    false);
            }
            if (fit != FitResult::Fits) {
                ++full_rejects;
                continue;
            }
            auto found = lowerBound(io_, it->first);
            ASSERT_TRUE(found.found);
            RecordRef old_ref{};
            ASSERT_TRUE(
                updateRecord(io_, found.slot,
                             std::span<const std::uint8_t>(payload),
                             &old_ref)
                    .isOk());
            reclaimExtent(io_, old_ref);
            it->second = std::move(payload);
        } else if (dice < 92) {
            // Erase an existing key.
            auto it = model.begin();
            std::advance(it, rng.nextBounded(model.size()));
            auto found = lowerBound(io_, it->first);
            ASSERT_TRUE(found.found);
            RecordRef old_ref{};
            ASSERT_TRUE(eraseRecord(io_, found.slot, &old_ref).isOk());
            reclaimExtent(io_, old_ref);
            model.erase(it);
        } else if (dice < 96) {
            // Split-style bulk removal of the lowest slots.
            std::uint16_t nrec = numRecords(io_);
            if (nrec < 2)
                continue;
            auto count = static_cast<std::uint16_t>(
                1 + rng.nextBounded(nrec / 2));
            std::vector<RecordRef> dropped;
            ASSERT_TRUE(dropLowerSlots(io_, count, &dropped).isOk());
            ASSERT_EQ(dropped.size(), count);
            for (const RecordRef &ref : dropped)
                reclaimExtent(io_, ref);
            model.erase(model.begin(), std::next(model.begin(), count));
        } else if (dice < 98) {
            // Crash-recovery path: rebuild the scratch free list.
            rebuildFreeList(io_);
            ASSERT_TRUE(freeListConsistent(io_));
        } else {
            ASSERT_NO_FATAL_FAILURE(defrag());
            ++defrags;
        }

        if (op % 97 == 0) {
            ASSERT_NO_FATAL_FAILURE(verifyAgainst(model))
                << "op " << op;
        } else {
            Status integrity = checkIntegrity(io_);
            ASSERT_TRUE(integrity.isOk())
                << integrity.toString() << " at op " << op;
        }
    }

    ASSERT_NO_FATAL_FAILURE(verifyAgainst(model));
    // The sequence must have actually exercised the interesting paths.
    EXPECT_GT(defrags, 0u) << "fuzz never hit the defrag path";
    if (pageSize_ <= 1024) {
        EXPECT_GT(full_rejects, 0u)
            << "small pages should hit NeedsSplit";
    }

    // Probe lowerBound on keys around the model contents.
    for (int i = 0; i < 500; ++i) {
        std::uint64_t probe = rng.nextBounded(11000);
        auto it = model.lower_bound(probe);
        auto found = lowerBound(io_, probe);
        if (it == model.end()) {
            EXPECT_EQ(found.slot, numRecords(io_));
            EXPECT_FALSE(found.found);
        } else {
            EXPECT_EQ(found.found, it->first == probe);
            EXPECT_EQ(recordKey(io_, found.slot), it->first);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, SlottedPageFuzzTest,
                         ::testing::Values(512, 1024, 2048, 4096),
                         [](const auto &info) {
                             return std::to_string(info.param) + "B";
                         });

} // namespace
} // namespace fasp::page
