/**
 * @file
 * Unit tests for the slotted-page structure: layout, search, insert,
 * update, delete, fit checks, defragmentation, and integrity checking.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "page/page_io.h"
#include "page/slotted_page.h"

namespace fasp::page {
namespace {

constexpr std::size_t kPage = 4096;

/** Test fixture owning one buffer-backed page. */
class SlottedPageTest : public ::testing::Test
{
  protected:
    SlottedPageTest() : buf_(kPage, 0), io_(buf_.data(), kPage)
    {
        init(io_, PageType::Leaf, 0);
    }

    /** Payload = key (8 bytes LE) + value_len filler bytes. */
    std::vector<std::uint8_t>
    makePayload(std::uint64_t key, std::size_t value_len,
                std::uint8_t fill = 0x77)
    {
        std::vector<std::uint8_t> payload(8 + value_len, fill);
        storeU64(payload.data(), key);
        return payload;
    }

    Status
    insert(std::uint64_t key, std::size_t value_len = 8)
    {
        auto payload = makePayload(key, value_len);
        return insertRecord(io_, key,
                            std::span<const std::uint8_t>(payload));
    }

    std::vector<std::uint8_t> buf_;
    BufferPageIO io_;
};

TEST_F(SlottedPageTest, InitProducesEmptyConsistentPage)
{
    EXPECT_EQ(numRecords(io_), 0);
    EXPECT_EQ(contentStart(io_), kPage - kScratchBytes);
    EXPECT_EQ(pageType(io_), PageType::Leaf);
    EXPECT_EQ(level(io_), 0);
    EXPECT_EQ(aux(io_), kInvalidPageId);
    EXPECT_EQ(fragFree(io_), 0);
    EXPECT_TRUE(checkIntegrity(io_).isOk());
    EXPECT_TRUE(freeListConsistent(io_));
}

TEST_F(SlottedPageTest, HeaderBytesFormula)
{
    EXPECT_EQ(headerBytes(0), kSlotArrayOff);
    EXPECT_EQ(headerBytes(26), kSlotArrayOff + 52);
    // The in-place commit bound: header fits one cache line.
    EXPECT_LE(headerBytes(kMaxInPlaceSlots), kCacheLineSize);
    EXPECT_GT(headerBytes(kMaxInPlaceSlots + 1), kCacheLineSize);
}

TEST_F(SlottedPageTest, InsertAndReadBack)
{
    ASSERT_TRUE(insert(42, 16).isOk());
    EXPECT_EQ(numRecords(io_), 1);
    EXPECT_EQ(recordKey(io_, 0), 42u);
    std::vector<std::uint8_t> payload;
    readPayload(io_, 0, payload);
    EXPECT_EQ(payload.size(), 24u);
    EXPECT_EQ(loadU64(payload.data()), 42u);
    EXPECT_EQ(payload[8], 0x77);
    EXPECT_TRUE(checkIntegrity(io_).isOk());
}

TEST_F(SlottedPageTest, SlotsStaySortedUnderRandomInsertOrder)
{
    Rng rng(3);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 50; ++i) {
        std::uint64_t key = rng.next() | 1;
        if (lowerBound(io_, key).found)
            continue;
        ASSERT_TRUE(insert(key).isOk());
        keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    ASSERT_EQ(numRecords(io_), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(recordKey(io_, i), keys[i]);
    EXPECT_TRUE(checkIntegrity(io_).isOk());
}

TEST_F(SlottedPageTest, DuplicateKeyRejected)
{
    ASSERT_TRUE(insert(5).isOk());
    EXPECT_EQ(insert(5).code(), StatusCode::AlreadyExists);
    EXPECT_EQ(numRecords(io_), 1);
}

TEST_F(SlottedPageTest, LowerBoundSemantics)
{
    for (std::uint64_t key : {10u, 20u, 30u})
        ASSERT_TRUE(insert(key).isOk());

    auto hit = lowerBound(io_, 20);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.slot, 1);

    auto miss_mid = lowerBound(io_, 15);
    EXPECT_FALSE(miss_mid.found);
    EXPECT_EQ(miss_mid.slot, 1);

    auto miss_high = lowerBound(io_, 99);
    EXPECT_FALSE(miss_high.found);
    EXPECT_EQ(miss_high.slot, 3);

    auto miss_low = lowerBound(io_, 1);
    EXPECT_FALSE(miss_low.found);
    EXPECT_EQ(miss_low.slot, 0);
}

TEST_F(SlottedPageTest, ContentGrowsDownward)
{
    ASSERT_TRUE(insert(1, 8).isOk());
    std::uint16_t first = slotOffset(io_, 0);
    ASSERT_TRUE(insert(2, 8).isOk());
    std::uint16_t second = slotOffset(io_, 1);
    EXPECT_LT(second, first) << "records grow toward the page start";
    EXPECT_EQ(contentStart(io_), second);
}

TEST_F(SlottedPageTest, UpdateDoesNotOverwriteOldRecord)
{
    ASSERT_TRUE(insert(7, 8).isOk());
    RecordRef old_ref{};
    std::uint16_t old_off = slotOffset(io_, 0);

    auto payload = makePayload(7, 8, 0x99);
    ASSERT_TRUE(updateRecord(io_, 0,
                             std::span<const std::uint8_t>(payload),
                             &old_ref)
                    .isOk());
    EXPECT_EQ(old_ref.off, old_off);
    EXPECT_NE(slotOffset(io_, 0), old_off)
        << "new record must live at a new offset";
    // The old bytes are still intact at the old offset (recovery needs
    // them until commit).
    EXPECT_EQ(io_.readContentU64(old_off + kRecordHeaderBytes), 7u);
    std::vector<std::uint8_t> out;
    readPayload(io_, 0, out);
    EXPECT_EQ(out[8], 0x99);
}

TEST_F(SlottedPageTest, EraseRemovesSlotKeepsBytes)
{
    for (std::uint64_t key : {10u, 20u, 30u})
        ASSERT_TRUE(insert(key).isOk());
    RecordRef old_ref{};
    ASSERT_TRUE(eraseRecord(io_, 1, &old_ref).isOk());
    EXPECT_EQ(numRecords(io_), 2);
    EXPECT_EQ(recordKey(io_, 0), 10u);
    EXPECT_EQ(recordKey(io_, 1), 30u);
    // The deleted record's bytes persist until reclamation.
    EXPECT_EQ(io_.readContentU64(old_ref.off + kRecordHeaderBytes), 20u);
    EXPECT_TRUE(checkIntegrity(io_).isOk());
}

TEST_F(SlottedPageTest, ReclaimThenReuseThroughFreeList)
{
    ASSERT_TRUE(insert(10, 40).isOk());
    ASSERT_TRUE(insert(20, 40).isOk());
    RecordRef old_ref{};
    ASSERT_TRUE(eraseRecord(io_, 0, &old_ref).isOk());
    reclaimExtent(io_, old_ref);
    EXPECT_EQ(fragFree(io_), 50); // 2 + 8 + 40
    EXPECT_TRUE(freeListConsistent(io_));

    // Exhaust the gap so the next insert must use the free list.
    std::uint64_t key = 100;
    while (freeGap(io_) >= 2 + 8 + 40 + 2)
        ASSERT_TRUE(insert(key++, 40).isOk());

    std::uint16_t frag_before = fragFree(io_);
    ASSERT_TRUE(insert(key, 40).isOk());
    EXPECT_LT(fragFree(io_), frag_before)
        << "insert must have consumed the free list";
    EXPECT_TRUE(checkIntegrity(io_).isOk());
    EXPECT_TRUE(freeListConsistent(io_));
}

TEST_F(SlottedPageTest, CheckFitTransitions)
{
    // Fill the page with 64-byte-payload records.
    std::uint64_t key = 1;
    while (checkFit(io_, 64) == FitResult::Fits)
        ASSERT_TRUE(insert(key++, 56).isOk());
    EXPECT_EQ(checkFit(io_, 64), FitResult::NeedsSplit)
        << "fresh page with no fragmentation cannot need defrag";

    // Delete every second record and reclaim: now fragmented space
    // exists, so a large record needs defragmentation, not a split.
    std::uint16_t nrec = numRecords(io_);
    for (std::uint16_t slot = nrec; slot-- > 0;) {
        if (slot % 2 == 0) {
            RecordRef old_ref{};
            ASSERT_TRUE(eraseRecord(io_, slot, &old_ref).isOk());
            reclaimExtent(io_, old_ref);
        }
    }
    EXPECT_GT(fragFree(io_), 0);
    EXPECT_EQ(checkFit(io_, 400), FitResult::NeedsDefrag);
    // A small record still fits directly via the free list.
    EXPECT_EQ(checkFit(io_, 40), FitResult::Fits);
}

TEST_F(SlottedPageTest, DefragmentCompactsIntoFreshPage)
{
    std::uint64_t key = 1;
    while (checkFit(io_, 48) == FitResult::Fits)
        ASSERT_TRUE(insert(key++, 40).isOk());
    std::uint16_t nrec = numRecords(io_);
    for (std::uint16_t slot = nrec; slot-- > 0;) {
        if (slot % 2 == 1) {
            RecordRef old_ref{};
            ASSERT_TRUE(eraseRecord(io_, slot, &old_ref).isOk());
            reclaimExtent(io_, old_ref);
        }
    }

    std::vector<std::uint8_t> fresh(kPage, 0);
    BufferPageIO dst(fresh.data(), kPage);
    ASSERT_TRUE(defragmentInto(io_, dst).isOk());

    EXPECT_EQ(numRecords(dst), numRecords(io_));
    EXPECT_EQ(fragFree(dst), 0);
    EXPECT_GT(freeGap(dst), freeGap(io_));
    for (std::uint16_t i = 0; i < numRecords(dst); ++i)
        EXPECT_EQ(recordKey(dst, i), recordKey(io_, i));
    EXPECT_TRUE(checkIntegrity(dst).isOk());
    EXPECT_TRUE(freeListConsistent(dst));
}

TEST_F(SlottedPageTest, InternalPageChildPointers)
{
    std::vector<std::uint8_t> buf(kPage, 0);
    BufferPageIO internal(buf.data(), kPage);
    init(internal, PageType::Internal, 1, 77);

    std::uint8_t payload[12];
    storeU64(payload, 500);
    storeU32(payload + 8, 33);
    ASSERT_TRUE(
        insertRecord(internal, 500,
                     std::span<const std::uint8_t>(payload, 12))
            .isOk());
    EXPECT_EQ(childPid(internal, 0), 33u);
    EXPECT_EQ(aux(internal), 77u);
    setAux(internal, 99);
    EXPECT_EQ(aux(internal), 99u);
    EXPECT_EQ(level(internal), 1);
    EXPECT_EQ(pageType(internal), PageType::Internal);
}

TEST_F(SlottedPageTest, PageFullWhenNoSpace)
{
    std::uint64_t key = 1;
    Status status = Status::ok();
    while (status.isOk())
        status = insert(key++, 100);
    EXPECT_EQ(status.code(), StatusCode::PageFull);
    EXPECT_TRUE(checkIntegrity(io_).isOk());
}

TEST_F(SlottedPageTest, IntegrityDetectsBadOffset)
{
    ASSERT_TRUE(insert(1).isOk());
    // Corrupt slot 0 to point past the content area.
    io_.writeHeaderU16(kSlotArrayOff, kPage - 2);
    EXPECT_FALSE(checkIntegrity(io_).isOk());
}

TEST_F(SlottedPageTest, IntegrityDetectsUnsortedKeys)
{
    ASSERT_TRUE(insert(10).isOk());
    ASSERT_TRUE(insert(20).isOk());
    // Swap the two slots.
    std::uint16_t s0 = slotOffset(io_, 0);
    std::uint16_t s1 = slotOffset(io_, 1);
    io_.writeHeaderU16(kSlotArrayOff, s1);
    io_.writeHeaderU16(kSlotArrayOff + 2, s0);
    EXPECT_FALSE(checkIntegrity(io_).isOk());
}

TEST_F(SlottedPageTest, UpdateCanUseFreeListWithoutNewSlot)
{
    // Fill the gap completely.
    std::uint64_t key = 1;
    while (checkFit(io_, 64) == FitResult::Fits)
        ASSERT_TRUE(insert(key++, 56).isOk());
    // Free one record to create a hole.
    RecordRef hole{};
    ASSERT_TRUE(eraseRecord(io_, 0, &hole).isOk());
    reclaimExtent(io_, hole);
    // Update (no new slot) fits via the hole even though insert can't.
    EXPECT_EQ(checkFit(io_, 56, /*needs_new_slot=*/false),
              FitResult::Fits);
    auto payload = makePayload(recordKey(io_, 0), 48, 0x55);
    RecordRef old_ref{};
    EXPECT_TRUE(updateRecord(io_, 0,
                             std::span<const std::uint8_t>(payload),
                             &old_ref)
                    .isOk());
    EXPECT_TRUE(checkIntegrity(io_).isOk());
}

} // namespace
} // namespace fasp::page
