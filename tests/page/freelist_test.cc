/**
 * @file
 * Unit tests for intra-page free-list maintenance: consistency checks,
 * lazy rebuild after scratch corruption (paper §4.3), and allocation
 * behaviour from fragmented space.
 */

#include <gtest/gtest.h>

#include <vector>

#include "page/page_io.h"
#include "page/slotted_page.h"

namespace fasp::page {
namespace {

constexpr std::size_t kPage = 4096;

class FreeListTest : public ::testing::Test
{
  protected:
    FreeListTest() : buf_(kPage, 0), io_(buf_.data(), kPage)
    {
        init(io_, PageType::Leaf, 0);
    }

    Status
    insert(std::uint64_t key, std::size_t value_len)
    {
        std::vector<std::uint8_t> payload(8 + value_len, 0x44);
        storeU64(payload.data(), key);
        return insertRecord(io_, key,
                            std::span<const std::uint8_t>(payload));
    }

    /** Delete + reclaim slot @p slot. */
    void
    eraseAndReclaim(std::uint16_t slot)
    {
        RecordRef old_ref{};
        ASSERT_TRUE(eraseRecord(io_, slot, &old_ref).isOk());
        reclaimExtent(io_, old_ref);
    }

    std::uint16_t
    scratchFreeHead()
    {
        return io_.readScratchU16(
            static_cast<std::uint16_t>(kPage - kScratchBytes));
    }

    std::vector<std::uint8_t> buf_;
    BufferPageIO io_;
};

TEST_F(FreeListTest, EmptyListIsConsistent)
{
    EXPECT_TRUE(freeListConsistent(io_));
    EXPECT_EQ(fragFree(io_), 0);
}

TEST_F(FreeListTest, ReclaimedExtentsChainUp)
{
    for (std::uint64_t key = 1; key <= 5; ++key)
        ASSERT_TRUE(insert(key, 24).isOk());
    eraseAndReclaim(1);
    eraseAndReclaim(2); // was slot 3 before the first erase
    EXPECT_EQ(fragFree(io_), 2 * (2 + 8 + 24));
    EXPECT_TRUE(freeListConsistent(io_));
}

TEST_F(FreeListTest, ConsistencyDetectsBadTotal)
{
    for (std::uint64_t key = 1; key <= 3; ++key)
        ASSERT_TRUE(insert(key, 24).isOk());
    eraseAndReclaim(0);
    ASSERT_TRUE(freeListConsistent(io_));
    // Corrupt freeTotal.
    io_.writeScratchU16(static_cast<std::uint16_t>(kPage - 6), 9999);
    EXPECT_FALSE(freeListConsistent(io_));
}

TEST_F(FreeListTest, ConsistencyDetectsDanglingHead)
{
    io_.writeScratchU16(static_cast<std::uint16_t>(kPage - 8), 0xfff0);
    EXPECT_FALSE(freeListConsistent(io_));
}

TEST_F(FreeListTest, ConsistencyDetectsOverlapWithRecord)
{
    ASSERT_TRUE(insert(1, 24).isOk());
    std::uint16_t rec_off = slotOffset(io_, 0);
    // Forge a free block right on top of the live record.
    io_.writeScratchU16(rec_off, 16);
    io_.writeScratchU16(rec_off + 2, 0);
    io_.writeScratchU16(static_cast<std::uint16_t>(kPage - 8), rec_off);
    io_.writeScratchU16(static_cast<std::uint16_t>(kPage - 6), 16);
    EXPECT_FALSE(freeListConsistent(io_));
}

TEST_F(FreeListTest, RebuildRecoversAllGaps)
{
    for (std::uint64_t key = 1; key <= 8; ++key)
        ASSERT_TRUE(insert(key, 24).isOk());
    eraseAndReclaim(1);
    eraseAndReclaim(3);
    eraseAndReclaim(5);
    std::uint16_t expected = fragFree(io_);
    ASSERT_GT(expected, 0);

    // Simulate a crash that lost every scratch write: zero the footer.
    io_.writeScratchU16(static_cast<std::uint16_t>(kPage - 8), 0);
    io_.writeScratchU16(static_cast<std::uint16_t>(kPage - 6), 0);
    EXPECT_EQ(fragFree(io_), 0);

    rebuildFreeList(io_);
    EXPECT_EQ(fragFree(io_), expected);
    EXPECT_TRUE(freeListConsistent(io_));
}

TEST_F(FreeListTest, RebuildOnEmptyPageYieldsNothing)
{
    rebuildFreeList(io_);
    EXPECT_EQ(fragFree(io_), 0);
    EXPECT_EQ(scratchFreeHead(), 0);
    EXPECT_TRUE(freeListConsistent(io_));
}

TEST_F(FreeListTest, AllocationSelfHealsFromGarbageChain)
{
    // Fill the gap, then free a record so an allocation must walk the
    // free list.
    std::uint64_t key = 1;
    while (checkFit(io_, 32) == FitResult::Fits)
        ASSERT_TRUE(insert(key++, 24).isOk());
    eraseAndReclaim(0);

    // Corrupt the chain head to a bogus offset; the allocator must
    // rebuild lazily and still succeed (paper §4.3: inconsistent free
    // lists are corrected in a lazy manner).
    io_.writeScratchU16(static_cast<std::uint16_t>(kPage - 8), 0xfffc);
    std::vector<std::uint8_t> payload(32, 0x11);
    storeU64(payload.data(), key);
    EXPECT_TRUE(insertRecord(io_, key,
                             std::span<const std::uint8_t>(payload))
                    .isOk());
    EXPECT_TRUE(checkIntegrity(io_).isOk());
}

TEST_F(FreeListTest, SplitBlockLeavesRemainderOnList)
{
    for (std::uint64_t key = 1; key <= 2; ++key)
        ASSERT_TRUE(insert(key, 100).isOk());
    // Exhaust the gap.
    std::uint64_t key = 10;
    while (checkFit(io_, 32) == FitResult::Fits)
        ASSERT_TRUE(insert(key++, 24).isOk());
    // Free the 100-byte-value record: a 110-byte block.
    eraseAndReclaim(0);
    std::uint16_t before = fragFree(io_);
    ASSERT_EQ(before, 110);

    // Insert a 24-byte-value record (34-byte footprint): splits block.
    std::vector<std::uint8_t> payload(32, 0x22);
    storeU64(payload.data(), 9999999);
    ASSERT_TRUE(insertRecord(io_, 9999999,
                             std::span<const std::uint8_t>(payload))
                    .isOk());
    EXPECT_EQ(fragFree(io_), 110 - 34);
    EXPECT_TRUE(freeListConsistent(io_));
    EXPECT_TRUE(checkIntegrity(io_).isOk());
}

TEST_F(FreeListTest, TinyRemainderTakenWhole)
{
    ASSERT_TRUE(insert(1, 30).isOk()); // footprint 40
    std::uint64_t key = 10;
    while (checkFit(io_, 32) == FitResult::Fits)
        ASSERT_TRUE(insert(key++, 24).isOk());
    eraseAndReclaim(0); // 40-byte block
    // 38-byte footprint leaves remainder 2 < kMinFreeBlock: take all.
    std::vector<std::uint8_t> payload(36, 0x33);
    storeU64(payload.data(), 8888888);
    ASSERT_TRUE(insertRecord(io_, 8888888,
                             std::span<const std::uint8_t>(payload))
                    .isOk());
    EXPECT_EQ(fragFree(io_), 0);
    EXPECT_EQ(scratchFreeHead(), 0);
    EXPECT_TRUE(checkIntegrity(io_).isOk());
}

} // namespace
} // namespace fasp::page
