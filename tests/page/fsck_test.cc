/**
 * @file
 * Tests for the two-tier slottedFsck() (DESIGN.md §13): the cheap tier
 * must pass on healthy pages in both trust modes, flag each seeded
 * structural corruption, and confine scratch (free-list) checks to
 * trust_scratch=true — stale scratch state on a crash-recovered page
 * is best-effort by contract, not corruption.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "page/page_io.h"
#include "page/slotted_page.h"
#include "workload/workload.h"

namespace fasp::page {
namespace {

constexpr std::size_t kPage = 4096;

class FsckTest : public ::testing::Test
{
  protected:
    FsckTest() : buf_(kPage, 0), io_(buf_.data(), kPage)
    {
        init(io_, PageType::Leaf, 0);
    }

    Status insert(std::uint64_t key, std::size_t value_len = 24)
    {
        std::vector<std::uint8_t> payload(8 + value_len, 0x44);
        storeU64(payload.data(), key);
        return insertRecord(io_, key,
                            std::span<const std::uint8_t>(payload));
    }

    /** Raw little-endian write into the page header. */
    void pokeU16(std::size_t off, std::uint16_t v)
    {
        buf_[off] = static_cast<std::uint8_t>(v & 0xff);
        buf_[off + 1] = static_cast<std::uint8_t>(v >> 8);
    }

    std::vector<std::uint8_t> buf_;
    BufferPageIO io_;
};

TEST_F(FsckTest, CleanPagePassesBothTrustModes)
{
    for (std::uint64_t k = 1; k <= 8; ++k)
        ASSERT_TRUE(insert(k).isOk());
    // Erasing interior slots leaves real free blocks behind, so the
    // trusted pass exercises the free-list walk, not an empty list.
    ASSERT_TRUE(eraseRecord(io_, 2, nullptr).isOk());
    ASSERT_TRUE(eraseRecord(io_, 4, nullptr).isOk());
    EXPECT_TRUE(slottedFsck(io_, /*trust_scratch=*/true).isOk());
    EXPECT_TRUE(slottedFsck(io_, /*trust_scratch=*/false).isOk());
}

TEST_F(FsckTest, FlagsInvalidPageType)
{
    ASSERT_TRUE(insert(1).isOk());
    pokeU16(kOffFlags, 0x00ee);
    EXPECT_FALSE(slottedFsck(io_, true).isOk());
    EXPECT_FALSE(slottedFsck(io_, false).isOk());
}

TEST_F(FsckTest, FlagsContentStartPastContentEnd)
{
    pokeU16(kOffContentStart,
            static_cast<std::uint16_t>(kPage - kScratchBytes + 2));
    EXPECT_FALSE(slottedFsck(io_, false).isOk());
}

TEST_F(FsckTest, FlagsSlotOffsetOutOfRange)
{
    ASSERT_TRUE(insert(1).isOk());
    // Slot 0's offset steered below contentStart.
    pokeU16(kSlotArrayOff, 0x0004);
    EXPECT_FALSE(slottedFsck(io_, false).isOk());
}

TEST_F(FsckTest, FlagsRecordExtentPastContentEnd)
{
    ASSERT_TRUE(insert(1).isOk());
    std::uint16_t off = slotOffset(io_, 0);
    // Record length field inflated so the extent escapes the page.
    io_.writeContentU16(off, 0x4000);
    EXPECT_FALSE(slottedFsck(io_, false).isOk());
}

TEST_F(FsckTest, StaleFreeListOnlyFailsWhenTrusted)
{
    ASSERT_TRUE(insert(1).isOk());
    // A crash image may carry a dangling freeHead: the pointed-at
    // block's size field here reads 0x4444 (record filler), escaping
    // the content area.
    std::uint16_t head = slotOffset(io_, 0);
    io_.writeScratchU16(
        static_cast<std::uint16_t>(kPage - kScratchBytes), head);
    EXPECT_FALSE(slottedFsck(io_, /*trust_scratch=*/true).isOk());
    EXPECT_TRUE(slottedFsck(io_, /*trust_scratch=*/false).isOk());
}

TEST_F(FsckTest, FragFreeMismatchOnlyFailsWhenTrusted)
{
    for (std::uint64_t k = 1; k <= 4; ++k)
        ASSERT_TRUE(insert(k).isOk());
    ASSERT_TRUE(eraseRecord(io_, 1, nullptr).isOk());
    // Drift the accounting without touching the list itself.
    std::uint16_t total = fragFree(io_);
    io_.writeScratchU16(
        static_cast<std::uint16_t>(kPage - kScratchBytes + 2),
        static_cast<std::uint16_t>(total + 2));
    EXPECT_FALSE(slottedFsck(io_, /*trust_scratch=*/true).isOk());
    EXPECT_TRUE(slottedFsck(io_, /*trust_scratch=*/false).isOk());
}

/** Thousands of delete/reinsert-larger churn steps (the DeleteDefrag
 *  stream behind fasp-soak's churn mix) against one page: freed
 *  extents rarely fit the next insert, so the page repeatedly takes
 *  the copy-on-write defragmentation path (§4.3). The fsck must stay
 *  clean in both trust modes after every step, and the churn must
 *  actually have forced defragmentation — otherwise the test is not
 *  exercising what it claims. */
TEST_F(FsckTest, DeleteChurnWithDefragPressureStaysClean)
{
    // keySpan is sized so even all-96-byte values fit the 4096B page:
    // 24 * (2 slot + 2 hdr + 8 key + 96 value) = 2592 bytes — the
    // stream's live-set model then never diverges from the page.
    workload::DeleteDefragStream stream(101, /*keySpan=*/24,
                                        /*valueMin=*/16,
                                        /*valueMax=*/96);
    int defrags = 0;
    int applied = 0;
    std::vector<std::uint8_t> shadow(kPage, 0);
    for (int i = 0; i < 20000; ++i) {
        workload::DeleteDefragStream::Step step = stream.next();
        SearchResult pos = lowerBound(io_, step.key);
        std::vector<std::uint8_t> payload(8 + step.valueSize, 0x5a);
        storeU64(payload.data(), step.key);
        auto place = [&](bool new_slot) {
            FitResult fit = checkFit(
                io_, static_cast<std::uint16_t>(payload.size()),
                new_slot);
            if (fit == FitResult::NeedsDefrag) {
                BufferPageIO dst(shadow.data(), kPage);
                ASSERT_TRUE(defragmentInto(io_, dst).isOk());
                std::memcpy(buf_.data(), shadow.data(), kPage);
                defrags++;
                fit = checkFit(
                    io_, static_cast<std::uint16_t>(payload.size()),
                    new_slot);
            }
            if (fit != FitResult::Fits)
                return; // page full: skip this op, keep churning
            if (new_slot) {
                ASSERT_TRUE(
                    insertRecord(io_, step.key,
                                 std::span<const std::uint8_t>(payload))
                        .isOk());
            } else {
                RecordRef old{};
                ASSERT_TRUE(
                    updateRecord(io_, pos.slot,
                                 std::span<const std::uint8_t>(payload),
                                 &old)
                        .isOk());
                reclaimExtent(io_, old);
            }
            applied++;
        };
        switch (step.type) {
          case workload::OpType::Insert:
            ASSERT_FALSE(pos.found);
            place(/*new_slot=*/true);
            break;
          case workload::OpType::Update:
            ASSERT_TRUE(pos.found);
            place(/*new_slot=*/false);
            break;
          case workload::OpType::Delete: {
            ASSERT_TRUE(pos.found);
            RecordRef old{};
            ASSERT_TRUE(eraseRecord(io_, pos.slot, &old).isOk());
            reclaimExtent(io_, old);
            applied++;
            break;
          }
          case workload::OpType::Lookup:
            break;
        }
        ASSERT_TRUE(slottedFsck(io_, /*trust_scratch=*/true).isOk())
            << "strict fsck broke at churn step " << i;
        ASSERT_TRUE(slottedFsck(io_, /*trust_scratch=*/false).isOk())
            << "lenient fsck broke at churn step " << i;
    }
    EXPECT_GT(defrags, 10)
        << "churn never forced the defragmentation path";
    EXPECT_GT(applied, 10000);
}

#ifdef FASP_EXPENSIVE_CHECKS
TEST_F(FsckTest, ExpensiveTierFlagsKeyOrderViolation)
{
    ASSERT_TRUE(insert(10).isOk());
    ASSERT_TRUE(insert(20).isOk());
    // Swap the stored keys so the slot order no longer matches; the
    // cheap tier never reads keys, the expensive tier must object.
    std::uint16_t off0 = slotOffset(io_, 0);
    std::uint16_t off1 = slotOffset(io_, 1);
    std::uint8_t k[8];
    storeU64(k, 20);
    io_.writeContent(off0 + kRecordHeaderBytes, k, sizeof k);
    storeU64(k, 10);
    io_.writeContent(off1 + kRecordHeaderBytes, k, sizeof k);
    EXPECT_FALSE(slottedFsck(io_, false).isOk());
}
#endif

} // namespace
} // namespace fasp::page
