/**
 * @file
 * Parameterized property tests for the slotted page across page sizes
 * and record-size regimes: a randomized op sequence is checked against
 * a reference model, with structural integrity and free-list
 * consistency verified throughout.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "page/page_io.h"
#include "page/slotted_page.h"

namespace fasp::page {
namespace {

struct PageParams
{
    std::size_t pageSize;
    std::size_t maxValue;
    std::uint16_t reservedSlots;
    std::uint64_t seed;
};

class SlottedPageParamTest : public ::testing::TestWithParam<PageParams>
{};

TEST_P(SlottedPageParamTest, RandomOpsMatchReferenceModel)
{
    const PageParams &params = GetParam();
    std::vector<std::uint8_t> buf(params.pageSize, 0);
    BufferPageIO io(buf.data(), params.pageSize);
    init(io, PageType::Leaf, 0, kInvalidPageId, params.reservedSlots);

    Rng rng(params.seed);
    std::map<std::uint64_t, std::vector<std::uint8_t>> model;

    auto make_payload = [&](std::uint64_t key) {
        std::vector<std::uint8_t> payload(
            8 + 1 + rng.nextBounded(params.maxValue));
        storeU64(payload.data(), key);
        rng.fillBytes(payload.data() + 8, payload.size() - 8);
        return payload;
    };

    int defrags = 0;
    for (int step = 0; step < 3000; ++step) {
        std::uint64_t key = rng.nextBounded(200) + 1;
        std::uint64_t dice = rng.nextBounded(100);

        if (dice < 55) { // insert
            if (model.count(key))
                continue;
            auto payload = make_payload(key);
            FitResult fit = checkFit(
                io, static_cast<std::uint16_t>(payload.size()), true);
            if (fit == FitResult::Fits) {
                ASSERT_TRUE(
                    insertRecord(io, key,
                                 std::span<const std::uint8_t>(payload))
                        .isOk())
                    << "step " << step;
                model[key] = payload;
            } else if (fit == FitResult::NeedsDefrag) {
                // Copy-on-write compaction into a fresh buffer.
                std::vector<std::uint8_t> fresh(params.pageSize, 0);
                BufferPageIO dst(fresh.data(), params.pageSize);
                ASSERT_TRUE(defragmentInto(io, dst).isOk());
                buf = fresh;
                ++defrags;
                // Compaction usually makes room; the adaptive slot
                // reservation of the fresh page may legitimately
                // leave the record still unfitting, in which case a
                // tree would split — never NeedsDefrag again.
                FitResult refit = checkFit(
                    io, static_cast<std::uint16_t>(payload.size()),
                    true);
                ASSERT_NE(refit, FitResult::NeedsDefrag)
                    << "CoW must not loop";
                if (refit == FitResult::Fits) {
                    ASSERT_TRUE(insertRecord(
                                    io, key,
                                    std::span<const std::uint8_t>(
                                        payload))
                                    .isOk());
                    model[key] = payload;
                }
            }
            // NeedsSplit: page legitimately full; skip (a tree would
            // split here).
        } else if (dice < 75) { // update
            auto sr = lowerBound(io, key);
            if (!sr.found)
                continue;
            auto payload = make_payload(key);
            if (checkFit(io,
                         static_cast<std::uint16_t>(payload.size()),
                         false) != FitResult::Fits) {
                continue;
            }
            RecordRef old_ref{};
            ASSERT_TRUE(
                updateRecord(io, sr.slot,
                             std::span<const std::uint8_t>(payload),
                             &old_ref)
                    .isOk());
            reclaimExtent(io, old_ref);
            model[key] = payload;
        } else if (dice < 95) { // erase
            auto sr = lowerBound(io, key);
            if (!sr.found)
                continue;
            RecordRef old_ref{};
            ASSERT_TRUE(eraseRecord(io, sr.slot, &old_ref).isOk());
            reclaimExtent(io, old_ref);
            model.erase(key);
        } else { // verify one record
            auto sr = lowerBound(io, key);
            ASSERT_EQ(sr.found, model.count(key) == 1);
        }

        if (step % 250 == 249) {
            ASSERT_TRUE(checkIntegrity(io).isOk()) << "step " << step;
            ASSERT_TRUE(freeListConsistent(io)) << "step " << step;
        }
    }

    // Final state: exact contents.
    ASSERT_EQ(numRecords(io), model.size());
    std::uint16_t slot = 0;
    std::vector<std::uint8_t> out;
    for (const auto &[key, payload] : model) {
        EXPECT_EQ(recordKey(io, slot), key);
        readPayload(io, slot, out);
        EXPECT_EQ(out, payload);
        ++slot;
    }
    EXPECT_TRUE(checkIntegrity(io).isOk());
    EXPECT_TRUE(freeListConsistent(io));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SlottedPageParamTest,
    ::testing::Values(PageParams{512, 24, 0, 1},
                      PageParams{1024, 48, 0, 2},
                      PageParams{2048, 100, 0, 3},
                      PageParams{4096, 64, 0, 4},
                      PageParams{4096, 64, 26, 5},
                      PageParams{4096, 300, 0, 6},
                      PageParams{8192, 400, 0, 7},
                      PageParams{16384, 900, 0, 8},
                      PageParams{4096, 12, 40, 9}),
    [](const ::testing::TestParamInfo<PageParams> &info) {
        return "p" + std::to_string(info.param.pageSize) + "_v" +
               std::to_string(info.param.maxValue) + "_r" +
               std::to_string(info.param.reservedSlots);
    });

} // namespace
} // namespace fasp::page
