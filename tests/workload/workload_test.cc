/**
 * @file
 * Unit tests for the workload generators.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/workload.h"

namespace fasp::workload {
namespace {

TEST(KeyStreamTest, SequentialCountsUp)
{
    KeyStream keys(KeyPattern::Sequential, 1);
    EXPECT_EQ(keys.next(), 1u);
    EXPECT_EQ(keys.next(), 2u);
    EXPECT_EQ(keys.next(), 3u);
}

TEST(KeyStreamTest, UniformIsDeterministicAndDistinct)
{
    KeyStream a(KeyPattern::UniformRandom, 7);
    KeyStream b(KeyPattern::UniformRandom, 7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t key = a.next();
        EXPECT_EQ(key, b.next());
        seen.insert(key);
    }
    EXPECT_EQ(seen.size(), 10000u) << "64-bit keys must not collide";
}

TEST(KeyStreamTest, ZipfStaysInPopulation)
{
    KeyStream keys(KeyPattern::Zipfian, 3, 1000);
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t key = keys.next();
        EXPECT_GE(key, 1u);
        EXPECT_LE(key, 1000u);
    }
}

TEST(ValueGenTest, FixedSizeExact)
{
    ValueGen gen = ValueGen::fixed(77);
    std::vector<std::uint8_t> out;
    for (int i = 0; i < 10; ++i) {
        gen.next(out);
        EXPECT_EQ(out.size(), 77u);
    }
}

TEST(ValueGenTest, UniformSizeInRange)
{
    ValueGen gen = ValueGen::uniform(10, 50);
    std::set<std::size_t> sizes;
    std::vector<std::uint8_t> out;
    for (int i = 0; i < 2000; ++i) {
        gen.next(out);
        EXPECT_GE(out.size(), 10u);
        EXPECT_LE(out.size(), 50u);
        sizes.insert(out.size());
    }
    EXPECT_GT(sizes.size(), 30u) << "sizes should vary";
}

TEST(ValueGenTest, ContentVaries)
{
    ValueGen gen = ValueGen::fixed(32);
    std::vector<std::uint8_t> a, b;
    gen.next(a);
    gen.next(b);
    EXPECT_NE(a, b);
}

TEST(MixedWorkloadTest, OnlyTargetsLiveKeys)
{
    MixedWorkload workload({40, 25, 20}, 5);
    std::set<std::uint64_t> live;
    for (int i = 0; i < 20000; ++i) {
        Op op = workload.next();
        switch (op.type) {
          case OpType::Insert:
            EXPECT_EQ(live.count(op.key), 0u);
            live.insert(op.key);
            break;
          case OpType::Update:
          case OpType::Lookup:
            EXPECT_EQ(live.count(op.key), 1u);
            break;
          case OpType::Delete:
            EXPECT_EQ(live.count(op.key), 1u);
            live.erase(op.key);
            break;
        }
    }
    EXPECT_EQ(live.size(), workload.liveKeys());
}

TEST(MixedWorkloadTest, MixRoughlyCalibrated)
{
    MixedWorkload workload({50, 20, 10}, 11);
    std::map<OpType, int> counts;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        counts[workload.next().type]++;
    EXPECT_NEAR(counts[OpType::Insert] / double(n), 0.50, 0.03);
    EXPECT_NEAR(counts[OpType::Update] / double(n), 0.20, 0.03);
    EXPECT_NEAR(counts[OpType::Delete] / double(n), 0.10, 0.03);
    EXPECT_NEAR(counts[OpType::Lookup] / double(n), 0.20, 0.03);
}

TEST(MixedWorkloadTest, FirstOpIsAlwaysInsert)
{
    MixedWorkload workload({0, 50, 25}, 13);
    // Even with 0% insert weight, an empty table forces inserts.
    Op op = workload.next();
    EXPECT_EQ(op.type, OpType::Insert);
}

TEST(MixedWorkloadTest, KeysFitSignedInt64)
{
    MixedWorkload workload({100, 0, 0}, 17);
    for (int i = 0; i < 10000; ++i) {
        Op op = workload.next();
        EXPECT_LE(op.key,
                  static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()))
            << "keys must survive a SQL integer-literal round trip";
    }
}

} // namespace
} // namespace fasp::workload
