/**
 * @file
 * Tests for the YCSB A-F generator, the live-population KeyStream
 * skew, and the delete/defrag churn stream.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "workload/workload.h"

namespace fasp::workload {
namespace {

// --- YcsbMix ratios ---------------------------------------------------------

TEST(YcsbMixTest, RatiosMatchTheSpec)
{
    struct Want
    {
        char name;
        unsigned read, update, insert, scan, rmw;
    };
    const Want wants[] = {
        {'A', 50, 50, 0, 0, 0},  {'B', 95, 5, 0, 0, 0},
        {'C', 100, 0, 0, 0, 0},  {'D', 95, 0, 5, 0, 0},
        {'E', 0, 0, 5, 95, 0},   {'F', 50, 0, 0, 0, 50},
    };
    for (const Want &w : wants) {
        YcsbMix mix = ycsbMix(w.name);
        EXPECT_EQ(mix.name, w.name);
        EXPECT_EQ(mix.readPct, w.read) << w.name;
        EXPECT_EQ(mix.updatePct, w.update) << w.name;
        EXPECT_EQ(mix.insertPct, w.insert) << w.name;
        EXPECT_EQ(mix.scanPct, w.scan) << w.name;
        EXPECT_EQ(mix.rmwPct, w.rmw) << w.name;
        EXPECT_EQ(mix.readPct + mix.updatePct + mix.insertPct +
                      mix.scanPct + mix.rmwPct,
                  100u)
            << w.name;
    }
    EXPECT_EQ(ycsbMix('D').pattern, KeyPattern::Latest);
    EXPECT_EQ(ycsbMix('A').pattern, KeyPattern::Zipfian);
}

// --- determinism ------------------------------------------------------------

TEST(YcsbWorkloadTest, SameSeedSameStream)
{
    for (char name : {'A', 'D', 'E', 'F'}) {
        YcsbWorkload::Options opt;
        opt.mix = ycsbMix(name);
        opt.seed = 42;
        opt.preload = 500;
        YcsbWorkload a(opt), b(opt);
        for (int i = 0; i < 2000; ++i) {
            YcsbOpSpec x = a.next();
            YcsbOpSpec y = b.next();
            ASSERT_EQ(x.type, y.type) << name << " op " << i;
            ASSERT_EQ(x.key, y.key) << name << " op " << i;
            ASSERT_EQ(x.scanLen, y.scanLen) << name << " op " << i;
        }
    }
}

TEST(YcsbWorkloadTest, DifferentSeedsDiverge)
{
    YcsbWorkload::Options opt;
    opt.mix = ycsbMix('A');
    opt.preload = 500;
    opt.seed = 1;
    YcsbWorkload a(opt);
    opt.seed = 2;
    YcsbWorkload b(opt);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().key == b.next().key ? 1 : 0;
    EXPECT_LT(same, 100);
}

// --- op-ratio convergence ---------------------------------------------------

TEST(YcsbWorkloadTest, OpRatiosConverge)
{
    for (char name : {'A', 'B', 'D', 'E', 'F'}) {
        YcsbMix mix = ycsbMix(name);
        YcsbWorkload::Options opt;
        opt.mix = mix;
        opt.seed = 7;
        opt.preload = 1000;
        YcsbWorkload workload(opt);
        std::map<YcsbOp, int> counts;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            counts[workload.next().type]++;
        EXPECT_NEAR(counts[YcsbOp::Read] / double(n),
                    mix.readPct / 100.0, 0.02)
            << name;
        EXPECT_NEAR(counts[YcsbOp::Update] / double(n),
                    mix.updatePct / 100.0, 0.02)
            << name;
        EXPECT_NEAR(counts[YcsbOp::Insert] / double(n),
                    mix.insertPct / 100.0, 0.02)
            << name;
        EXPECT_NEAR(counts[YcsbOp::Scan] / double(n),
                    mix.scanPct / 100.0, 0.02)
            << name;
        EXPECT_NEAR(counts[YcsbOp::ReadModifyWrite] / double(n),
                    mix.rmwPct / 100.0, 0.02)
            << name;
    }
}

// --- existing-key discipline ------------------------------------------------

TEST(YcsbWorkloadTest, NonInsertOpsTargetExistingKeys)
{
    for (char name : {'A', 'D', 'E'}) {
        YcsbWorkload::Options opt;
        opt.mix = ycsbMix(name);
        opt.seed = 13;
        opt.preload = 200;
        YcsbWorkload workload(opt);
        std::set<std::uint64_t> present;
        for (std::uint64_t i = 0; i < opt.preload; ++i)
            present.insert(workload.keyOfIndex(i));
        for (int i = 0; i < 5000; ++i) {
            YcsbOpSpec op = workload.next();
            if (op.type == YcsbOp::Insert) {
                EXPECT_EQ(present.count(op.key), 0u) << name;
                present.insert(op.key);
            } else {
                EXPECT_EQ(present.count(op.key), 1u)
                    << name << ": " << ycsbOpName(op.type)
                    << " targeted an absent key";
            }
        }
        EXPECT_EQ(present.size(), workload.insertedCount()) << name;
    }
}

TEST(YcsbWorkloadTest, ScanLenBounded)
{
    YcsbWorkload::Options opt;
    opt.mix = ycsbMix('E');
    opt.seed = 3;
    opt.preload = 500;
    YcsbWorkload workload(opt);
    bool sawScan = false;
    for (int i = 0; i < 2000; ++i) {
        YcsbOpSpec op = workload.next();
        if (op.type != YcsbOp::Scan)
            continue;
        sawScan = true;
        EXPECT_GE(op.scanLen, 1u);
        EXPECT_LE(op.scanLen, opt.mix.maxScanLen);
    }
    EXPECT_TRUE(sawScan);
}

// --- distribution sanity ----------------------------------------------------

TEST(YcsbWorkloadTest, ZipfianConcentratesOnFewKeys)
{
    YcsbWorkload::Options opt;
    opt.mix = ycsbMix('B'); // 95% reads, Zipfian
    opt.seed = 5;
    opt.preload = 10000;
    YcsbWorkload workload(opt);
    std::map<std::uint64_t, int> hits;
    int reads = 0;
    for (int i = 0; i < 50000; ++i) {
        YcsbOpSpec op = workload.next();
        if (op.type == YcsbOp::Read) {
            hits[op.key]++;
            reads++;
        }
    }
    // Under theta=0.99 Zipf the top ~1% of keys draw roughly half the
    // traffic; under uniform they would draw ~1%.
    std::vector<int> counts;
    counts.reserve(hits.size());
    for (const auto &[k, c] : hits)
        counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    std::size_t top = opt.preload / 100;
    long topHits = 0;
    for (std::size_t i = 0; i < top && i < counts.size(); ++i)
        topHits += counts[i];
    EXPECT_GT(topHits, reads / 4)
        << "top 1% of keys should dominate a Zipfian read stream";
}

TEST(YcsbWorkloadTest, LatestFavorsRecentInserts)
{
    YcsbWorkload::Options opt;
    opt.mix = ycsbMix('D'); // 95% reads over Latest, 5% inserts
    opt.seed = 9;
    opt.preload = 1000;
    YcsbWorkload workload(opt);
    // Track insertion order; index of key in arrival order.
    std::map<std::uint64_t, std::uint64_t> arrival;
    for (std::uint64_t i = 0; i < opt.preload; ++i)
        arrival[workload.keyOfIndex(i)] = i;
    std::uint64_t next_idx = opt.preload;
    long reads = 0, recentReads = 0;
    for (int i = 0; i < 20000; ++i) {
        YcsbOpSpec op = workload.next();
        if (op.type == YcsbOp::Insert) {
            arrival[op.key] = next_idx++;
        } else if (op.type == YcsbOp::Read) {
            reads++;
            // "Recent" = newest 10% of the population at draw time.
            auto it = arrival.find(op.key);
            ASSERT_NE(it, arrival.end());
            if (next_idx - it->second <= next_idx / 10)
                recentReads++;
        }
    }
    EXPECT_GT(recentReads, reads / 2)
        << "latest-key distribution should hit the newest 10% of keys "
           "more than half the time";
}

TEST(YcsbWorkloadTest, SequentialOrderConcentratesKeyRange)
{
    // Skewed-hot-page mode: Sequential order + Zipfian ranks puts the
    // hot keys on adjacent B-tree keys (= few leaf pages).
    YcsbWorkload::Options opt;
    opt.mix = ycsbMix('B');
    opt.seed = 21;
    opt.preload = 10000;
    opt.order = KeyOrder::Sequential;
    YcsbWorkload workload(opt);
    EXPECT_EQ(workload.keyOfIndex(0), 1u);
    EXPECT_EQ(workload.keyOfIndex(41), 42u);
    long lowKeyReads = 0, reads = 0;
    for (int i = 0; i < 20000; ++i) {
        YcsbOpSpec op = workload.next();
        if (op.type != YcsbOp::Read)
            continue;
        reads++;
        if (op.key <= opt.preload / 100)
            lowKeyReads++;
    }
    EXPECT_GT(lowKeyReads, reads / 4)
        << "hot Zipf ranks must collapse onto the lowest key range";
}

// --- multi-client partitioning ----------------------------------------------

TEST(YcsbWorkloadTest, StridedClientsAreDisjoint)
{
    const int kClients = 4;
    std::set<std::uint64_t> seen;
    for (int c = 0; c < kClients; ++c) {
        YcsbWorkload::Options opt;
        opt.mix = ycsbMix('A');
        opt.seed = 100 + c;
        opt.preload = 250;
        opt.indexOffset = c;
        opt.indexStride = kClients;
        YcsbWorkload workload(opt);
        for (std::uint64_t i = 0; i < 500; ++i) {
            auto [it, fresh] = seen.insert(workload.keyOfIndex(i));
            EXPECT_TRUE(fresh) << "client " << c << " index " << i
                               << " collided with another client";
        }
    }
}

// --- KeyStream live-population regression -----------------------------------

// Regression for the pre-PR-9 bug where Zipfian/Latest ranks were keys
// themselves: a skewed read stream over a hashed keyspace targeted keys
// 1..population, none of which had ever been inserted.
TEST(KeyStreamTest, SkewedDrawsComeFromInsertedPopulation)
{
    for (KeyPattern pattern :
         {KeyPattern::Zipfian, KeyPattern::Latest}) {
        KeyStream keys(pattern, 17);
        std::set<std::uint64_t> inserted;
        // Note a scattered (hashed-like) population.
        for (std::uint64_t i = 1; i <= 400; ++i) {
            std::uint64_t key = i * 2654435761u;
            keys.noteInserted(key);
            inserted.insert(key);
        }
        EXPECT_EQ(keys.insertedCount(), inserted.size());
        for (int i = 0; i < 5000; ++i)
            EXPECT_EQ(inserted.count(keys.next()), 1u)
                << "skewed draw outside the inserted population";
    }
}

TEST(KeyStreamTest, LatestSkewsTowardNewestNotes)
{
    KeyStream keys(KeyPattern::Latest, 23);
    for (std::uint64_t k = 1; k <= 1000; ++k)
        keys.noteInserted(k * 7);
    long recent = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        // Newest 10% of notes are keys 901*7 .. 1000*7.
        if (keys.next() > 900 * 7)
            recent++;
    }
    EXPECT_GT(recent, n / 2);
}

TEST(KeyStreamTest, ZipfianSkewsTowardOldestNotes)
{
    KeyStream keys(KeyPattern::Zipfian, 29);
    for (std::uint64_t k = 1; k <= 1000; ++k)
        keys.noteInserted(k * 7);
    long old = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        if (keys.next() <= 100 * 7)
            old++;
    }
    EXPECT_GT(old, n / 2);
}

// --- DeleteDefragStream -----------------------------------------------------

TEST(DeleteDefragStreamTest, OpsRespectLiveSet)
{
    DeleteDefragStream stream(31);
    std::set<std::uint64_t> live;
    for (int i = 0; i < 20000; ++i) {
        DeleteDefragStream::Step step = stream.next();
        EXPECT_GE(step.key, stream.keyBase());
        EXPECT_LT(step.key, stream.keyBase() + stream.keySpan());
        switch (step.type) {
          case OpType::Insert:
            EXPECT_EQ(live.count(step.key), 0u);
            EXPECT_GT(step.valueSize, 0u);
            live.insert(step.key);
            break;
          case OpType::Update:
          case OpType::Delete:
            EXPECT_EQ(live.count(step.key), 1u);
            if (step.type == OpType::Delete)
                live.erase(step.key);
            break;
          case OpType::Lookup:
            EXPECT_EQ(live.count(step.key), 1u);
            break;
        }
        EXPECT_EQ(live.size(), stream.liveCount());
    }
    EXPECT_GT(live.size(), 0u);
}

TEST(DeleteDefragStreamTest, AlternatingSizesForceFragmentation)
{
    DeleteDefragStream stream(37, /*keySpan=*/48, /*valueMin=*/16,
                              /*valueMax=*/120);
    std::set<std::size_t> small, large;
    int deletes = 0;
    for (int i = 0; i < 20000; ++i) {
        DeleteDefragStream::Step step = stream.next();
        if (step.type == OpType::Delete)
            deletes++;
        if (step.type == OpType::Insert ||
            step.type == OpType::Update) {
            EXPECT_GE(step.valueSize, 16u);
            EXPECT_LE(step.valueSize, 120u);
            (step.valueSize <= (16u + 120u) / 2 ? small : large)
                .insert(step.valueSize);
        }
    }
    EXPECT_GT(deletes, 4000) << "churn stream must be delete-heavy";
    EXPECT_FALSE(small.empty());
    EXPECT_FALSE(large.empty());
}

TEST(DeleteDefragStreamTest, Deterministic)
{
    DeleteDefragStream a(41), b(41);
    for (int i = 0; i < 5000; ++i) {
        DeleteDefragStream::Step x = a.next();
        DeleteDefragStream::Step y = b.next();
        ASSERT_EQ(x.type, y.type);
        ASSERT_EQ(x.key, y.key);
        ASSERT_EQ(x.valueSize, y.valueSize);
    }
}

} // namespace
} // namespace fasp::workload
