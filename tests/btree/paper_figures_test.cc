/**
 * @file
 * Walk the paper's worked example (Figures 4 and 5) step by step: page
 * 3 holds keys {11, 13, 15, 17, 19}; inserting key 14 overflows it; a
 * new LEFT sibling receives the keys at or below the median including
 * the incoming 14; the parent gains a (separator -> left) entry; the
 * original page keeps the upper keys, its freed extents becoming the
 * intra-page free list after checkpointing (Figure 5); and §4.4's
 * crash cases hold at each stage.
 */

#include <gtest/gtest.h>

#include <memory>

#include "btree/btree.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/fasp_page_io.h"
#include "pm/device.h"

namespace fasp::btree {
namespace {

using core::Engine;
using core::EngineConfig;
using core::EngineKind;
using core::FaspPageIO;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

class PaperSplitTest : public ::testing::Test
{
  protected:
    PaperSplitTest()
    {
        PmConfig pm_cfg;
        pm_cfg.size = 16u << 20;
        pm_cfg.mode = PmMode::CacheSim;
        // Small pages and 160-byte values so exactly five records
        // fill a leaf, as in the figure.
        device_ = std::make_unique<PmDevice>(pm_cfg);
        cfg_.kind = EngineKind::Fash;
        cfg_.format.pageSize = 1024;
        cfg_.format.logLen = 1u << 20;
        engine_ = std::move(*Engine::create(*device_, cfg_, true));
        tree_ = std::make_unique<BTree>(
            std::move(*engine_->createTree(1)));
    }

    /** Insert one (key, 160B) record in its own transaction. */
    void
    insertKey(std::uint64_t key)
    {
        std::vector<std::uint8_t> value(160);
        Rng rng(key);
        rng.fillBytes(value.data(), value.size());
        ASSERT_TRUE(engine_
                        ->insert(*tree_, key,
                                 std::span<const std::uint8_t>(value))
                        .isOk())
            << key;
    }

    /** Keys of a page's slots, read from the durable image. */
    std::vector<std::uint64_t>
    durableKeys(PageId pid)
    {
        FaspPageIO io(*device_, engine_->superblock().pageOffset(pid),
                      engine_->superblock().pageSize,
                      /*write_through=*/true);
        std::vector<std::uint64_t> keys;
        for (std::uint16_t i = 0; i < page::numRecords(io); ++i)
            keys.push_back(page::recordKey(io, i));
        return keys;
    }

    std::unique_ptr<PmDevice> device_;
    EngineConfig cfg_;
    std::unique_ptr<Engine> engine_;
    std::unique_ptr<BTree> tree_;
};

TEST_F(PaperSplitTest, Figure4SplitSendsIncomingKeyLeft)
{
    // Page 3's initial contents in the figure.
    for (std::uint64_t key : {17u, 13u, 15u, 19u, 11u})
        insertKey(key);

    auto tx = engine_->begin();
    auto root_before = *tree_->rootPid(tx->pageIO());
    auto n = *tree_->count(tx->pageIO());
    EXPECT_EQ(n, 5u);
    tx->rollback();

    // "Insert key=14": causes the overflow and split.
    insertKey(14);

    auto tx2 = engine_->begin();
    PageId root = *tree_->rootPid(tx2->pageIO());
    EXPECT_NE(root, root_before) << "the root leaf split grows a root";

    page::PageIO &root_view = tx2->pageIO().page(root, false);
    ASSERT_EQ(page::level(root_view), 1);
    ASSERT_EQ(page::numRecords(root_view), 1);
    std::uint64_t separator = page::recordKey(root_view, 0);
    PageId left = page::childPid(root_view, 0);
    PageId right = page::aux(root_view);

    // Figure 4 (5): the ORIGINAL page is the right child — its parent
    // entry is the aux pointer, so it "never changes"; the separator
    // is the largest key in the left sibling and the incoming key 14
    // is among the keys that moved left (the figure shows the new
    // sibling holding 11, 13, 14).
    EXPECT_EQ(right, root_before);
    std::vector<std::uint64_t> left_keys = durableKeys(left);
    std::vector<std::uint64_t> right_keys = durableKeys(right);
    EXPECT_EQ(left_keys.back(), separator);
    EXPECT_TRUE(std::find(left_keys.begin(), left_keys.end(), 14u) !=
                left_keys.end())
        << "the pending key lands in the fresh left sibling";
    for (std::uint64_t k : left_keys)
        EXPECT_LE(k, separator);
    for (std::uint64_t k : right_keys)
        EXPECT_GT(k, separator);
    EXPECT_EQ(left_keys.size() + right_keys.size(), 6u);
    EXPECT_TRUE(tree_->checkIntegrity(tx2->pageIO()).isOk());
    tx2->rollback();
}

TEST_F(PaperSplitTest, Figure5FreedExtentsBecomeFreeList)
{
    for (std::uint64_t key : {17u, 13u, 15u, 19u, 11u})
        insertKey(key);
    auto tx = engine_->begin();
    PageId original = *tree_->rootPid(tx->pageIO());
    tx->rollback();

    insertKey(14);

    // After the eager checkpoint, the original page's migrated records
    // are reclaimed as fragmented free space managed as a linked list
    // (Figure 5) — and that list must reconcile with the header.
    FaspPageIO io(*device_,
                  engine_->superblock().pageOffset(original),
                  engine_->superblock().pageSize,
                  /*write_through=*/true);
    EXPECT_GT(page::fragFree(io), 0)
        << "the dropped records' space is on the free list";
    EXPECT_TRUE(page::freeListConsistent(io));

    // Figure 5's closing property: the free list can be reconstructed
    // from the record offset array from scratch.
    std::uint16_t before = page::fragFree(io);
    io.writeScratchU16(
        static_cast<std::uint16_t>(io.pageSize() - 8), 0);
    io.writeScratchU16(
        static_cast<std::uint16_t>(io.pageSize() - 6), 0);
    page::rebuildFreeList(io);
    // The rebuild may recover up to one alignment-pad byte per live
    // record that reclaimExtent's block accounting cannot see.
    EXPECT_GE(page::fragFree(io), before);
    EXPECT_LE(page::fragFree(io),
              before + page::numRecords(io));
    EXPECT_TRUE(page::freeListConsistent(io));
}

TEST_F(PaperSplitTest, Section44CrashBeforeCommitIsInvisible)
{
    for (std::uint64_t key : {17u, 13u, 15u, 19u, 11u})
        insertKey(key);

    // §4.4 cases (2)-(4): crash after the sibling was created and the
    // parent's free space written, but before the commit mark. Crash
    // at every single event of the splitting insert and require the
    // durable tree to read exactly {11,13,15,17,19}.
    for (std::uint64_t k = 0;; ++k) {
        // Rebuild the same pre-state fresh for each crash point.
        PmConfig pm_cfg;
        pm_cfg.size = 16u << 20;
        pm_cfg.mode = PmMode::CacheSim;
        PmDevice device(pm_cfg);
        auto engine = std::move(*Engine::create(device, cfg_, true));
        auto tree = *engine->createTree(1);
        std::vector<std::uint8_t> value(160, 0x3c);
        for (std::uint64_t key : {17u, 13u, 15u, 19u, 11u}) {
            ASSERT_TRUE(engine
                            ->insert(tree, key,
                                     std::span<const std::uint8_t>(
                                         value))
                            .isOk());
        }

        pm::PointCrashInjector injector(device.eventCount() + k);
        device.setCrashInjector(&injector);
        bool crashed = false;
        bool committed = false;
        try {
            committed = engine
                            ->insert(tree, 14,
                                     std::span<const std::uint8_t>(
                                         value))
                            .isOk();
        } catch (const pm::CrashException &) {
            crashed = true;
        }
        device.setCrashInjector(nullptr);
        if (!crashed)
            break; // swept past the whole split

        engine.reset();
        device.reviveAfterCrash();
        auto recovered = std::move(*Engine::create(device, cfg_,
                                                   false));
        auto tx = recovered->begin();
        BTree t(1);
        ASSERT_TRUE(t.checkIntegrity(tx->pageIO()).isOk())
            << "crash point " << k;
        auto n = t.count(tx->pageIO());
        ASSERT_TRUE(n.isOk());
        auto has14 = t.contains(tx->pageIO(), 14);
        ASSERT_TRUE(has14.isOk());
        if (*has14) {
            EXPECT_EQ(*n, 6u) << "crash point " << k;
        } else {
            EXPECT_EQ(*n, 5u) << "crash point " << k;
            EXPECT_FALSE(committed);
        }
        for (std::uint64_t key : {11u, 13u, 15u, 17u, 19u}) {
            auto present = t.contains(tx->pageIO(), key);
            ASSERT_TRUE(present.isOk());
            EXPECT_TRUE(*present)
                << "crash point " << k << " lost key " << key;
        }
        tx->rollback();
    }
}

} // namespace
} // namespace fasp::btree
