/**
 * @file
 * Tests for the hash index: unit behaviour over the in-memory
 * TxPageIO, a randomized reference-model workload, engine integration
 * (the paper's claim that failure-atomic slotted paging serves
 * hash-based indexes too), and crash atomicity.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <unordered_map>

#include "btree/hash_index.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/engine.h"
#include "pm/device.h"

namespace fasp::btree {
namespace {

/** Minimal in-memory TxPageIO (mirrors the one in btree_test). */
class MemTxPageIO : public TxPageIO
{
  public:
    explicit MemTxPageIO(std::size_t page_size,
                         std::uint16_t leaf_cap = 0)
        : pageSize_(page_size), leafCap_(leaf_cap)
    {
        pages_[0] = std::make_unique<Page>(pageSize_);
        pages_[1] = std::make_unique<Page>(pageSize_);
        page::init(*pages_[1]->io, page::PageType::Leaf, 0);
        next_ = 2;
    }

    std::size_t pageSize() const override { return pageSize_; }

    page::PageIO &page(PageId pid, bool) override
    {
        auto it = pages_.find(pid);
        if (it == pages_.end())
            faspPanic("access to unallocated page %u", pid);
        return *it->second->io;
    }

    Result<PageId> allocPage() override
    {
        PageId pid = next_++;
        pages_[pid] = std::make_unique<Page>(pageSize_);
        return pid;
    }

    void freePage(PageId pid) override { pages_.erase(pid); }

    void deferReclaim(PageId pid, const page::RecordRef &ref) override
    {
        page::reclaimExtent(page(pid, true), ref);
    }

    PageId directoryPid() const override { return 1; }
    std::uint16_t maxLeafSlots() const override { return leafCap_; }

    std::size_t livePages() const { return pages_.size(); }

  private:
    struct Page
    {
        explicit Page(std::size_t size)
            : bytes(size, 0),
              io(std::make_unique<page::BufferPageIO>(bytes.data(),
                                                      size))
        {}
        std::vector<std::uint8_t> bytes;
        std::unique_ptr<page::BufferPageIO> io;
    };

    std::size_t pageSize_;
    std::uint16_t leafCap_;
    std::unordered_map<PageId, std::unique_ptr<Page>> pages_;
    PageId next_;
};

std::vector<std::uint8_t>
value(std::uint64_t seed, std::size_t len)
{
    std::vector<std::uint8_t> out(len);
    Rng rng(seed);
    rng.fillBytes(out.data(), out.size());
    return out;
}

std::span<const std::uint8_t>
asSpan(const std::vector<std::uint8_t> &v)
{
    return std::span<const std::uint8_t>(v);
}

class HashIndexTest : public ::testing::Test
{
  protected:
    HashIndexTest() : io_(4096) {}

    HashIndex makeIndex(std::uint32_t buckets = 16)
    {
        auto index = HashIndex::create(io_, 9, buckets);
        EXPECT_TRUE(index.isOk()) << index.status().toString();
        return *index;
    }

    MemTxPageIO io_;
};

TEST_F(HashIndexTest, CreateValidatesBucketCount)
{
    EXPECT_FALSE(HashIndex::create(io_, 1, 0).isOk());
    EXPECT_FALSE(HashIndex::create(io_, 2, 12).isOk()); // not pow2
    EXPECT_FALSE(HashIndex::create(io_, 3, 1u << 12).isOk())
        << "directory must fit one page";
    EXPECT_TRUE(HashIndex::create(io_, 4, 64).isOk());
    EXPECT_EQ(HashIndex::create(io_, 4, 8).status().code(),
              StatusCode::AlreadyExists);
}

TEST_F(HashIndexTest, InsertGetUpdateErase)
{
    HashIndex index = makeIndex();
    auto v1 = value(1, 32);
    ASSERT_TRUE(index.insert(io_, 42, asSpan(v1)).isOk());
    EXPECT_EQ(index.insert(io_, 42, asSpan(v1)).code(),
              StatusCode::AlreadyExists);

    std::vector<std::uint8_t> out;
    ASSERT_TRUE(index.get(io_, 42, out).isOk());
    EXPECT_EQ(out, v1);
    EXPECT_EQ(index.get(io_, 43, out).code(), StatusCode::NotFound);

    auto v2 = value(2, 200);
    ASSERT_TRUE(index.update(io_, 42, asSpan(v2)).isOk());
    ASSERT_TRUE(index.get(io_, 42, out).isOk());
    EXPECT_EQ(out, v2);
    EXPECT_EQ(index.update(io_, 43, asSpan(v2)).code(),
              StatusCode::NotFound);

    ASSERT_TRUE(index.erase(io_, 42).isOk());
    EXPECT_EQ(index.erase(io_, 42).code(), StatusCode::NotFound);
}

TEST_F(HashIndexTest, RejectsOversizedValues)
{
    HashIndex index = makeIndex();
    auto big = value(1, 3000); // > maxInlineValue(4096) == 960
    EXPECT_EQ(index.insert(io_, 1, asSpan(big)).code(),
              StatusCode::NotSupported);
}

TEST_F(HashIndexTest, ChainsGrowUnderLoad)
{
    HashIndex index = makeIndex(4); // tiny directory: long chains
    for (std::uint64_t key = 1; key <= 800; ++key) {
        auto v = value(key, 48);
        ASSERT_TRUE(index.insert(io_, key, asSpan(v)).isOk()) << key;
    }
    auto stats = index.stats(io_);
    ASSERT_TRUE(stats.isOk());
    EXPECT_EQ(stats->records, 800u);
    EXPECT_EQ(stats->buckets, 4u);
    EXPECT_GT(stats->longestChain, 1u);
    EXPECT_TRUE(index.checkIntegrity(io_).isOk());

    std::vector<std::uint8_t> out;
    for (std::uint64_t key = 1; key <= 800; ++key)
        ASSERT_TRUE(index.get(io_, key, out).isOk()) << key;
}

TEST_F(HashIndexTest, ForEachVisitsEverythingOnce)
{
    HashIndex index = makeIndex(8);
    std::map<std::uint64_t, std::vector<std::uint8_t>> model;
    Rng rng(5);
    for (int i = 0; i < 300; ++i) {
        std::uint64_t key = rng.next() | 1;
        auto v = value(key, 24);
        ASSERT_TRUE(index.insert(io_, key, asSpan(v)).isOk());
        model[key] = v;
    }
    std::map<std::uint64_t, int> seen;
    ASSERT_TRUE(index
                    .forEach(io_,
                             [&](std::uint64_t k,
                                 std::span<const std::uint8_t> v) {
                                 seen[k]++;
                                 EXPECT_TRUE(std::equal(
                                     v.begin(), v.end(),
                                     model[k].begin(),
                                     model[k].end()));
                                 return true;
                             })
                    .isOk());
    EXPECT_EQ(seen.size(), model.size());
    for (const auto &[k, n] : seen)
        EXPECT_EQ(n, 1) << k;
}

TEST_F(HashIndexTest, DropFreesEverything)
{
    HashIndex index = makeIndex(8);
    for (std::uint64_t key = 1; key <= 400; ++key) {
        auto v = value(key, 64);
        ASSERT_TRUE(index.insert(io_, key, asSpan(v)).isOk());
    }
    ASSERT_TRUE(HashIndex::drop(io_, index.id()).isOk());
    EXPECT_EQ(io_.livePages(), 2u);
    EXPECT_EQ(HashIndex::open(io_, index.id()).status().code(),
              StatusCode::NotFound);
}

TEST_F(HashIndexTest, FuzzAgainstReferenceModel)
{
    HashIndex index = makeIndex(32);
    Rng rng(77);
    std::map<std::uint64_t, std::vector<std::uint8_t>> model;
    for (int step = 0; step < 5000; ++step) {
        std::uint64_t key = rng.nextBounded(600) + 1;
        auto v = value(rng.next(), 8 + rng.nextBounded(120));
        std::uint64_t dice = rng.nextBounded(100);
        if (dice < 50) {
            Status status = index.insert(io_, key, asSpan(v));
            if (model.count(key))
                EXPECT_EQ(status.code(), StatusCode::AlreadyExists);
            else {
                ASSERT_TRUE(status.isOk()) << status.toString();
                model[key] = v;
            }
        } else if (dice < 75) {
            Status status = index.update(io_, key, asSpan(v));
            if (model.count(key)) {
                ASSERT_TRUE(status.isOk()) << status.toString();
                model[key] = v;
            } else {
                EXPECT_EQ(status.code(), StatusCode::NotFound);
            }
        } else if (dice < 90) {
            Status status = index.erase(io_, key);
            if (model.count(key)) {
                ASSERT_TRUE(status.isOk());
                model.erase(key);
            } else {
                EXPECT_EQ(status.code(), StatusCode::NotFound);
            }
        } else {
            std::vector<std::uint8_t> out;
            Status status = index.get(io_, key, out);
            if (model.count(key)) {
                ASSERT_TRUE(status.isOk());
                EXPECT_EQ(out, model[key]);
            } else {
                EXPECT_EQ(status.code(), StatusCode::NotFound);
            }
        }
        if (step % 1000 == 999) {
            ASSERT_TRUE(index.checkIntegrity(io_).isOk())
                << "step " << step;
        }
    }
    auto n = index.count(io_);
    ASSERT_TRUE(n.isOk());
    EXPECT_EQ(*n, model.size());
}

// --- Engine integration (all five engines share the index) --------------------

class HashEngineTest : public ::testing::TestWithParam<core::EngineKind>
{};

TEST_P(HashEngineTest, WorksThroughEveryEngine)
{
    pm::PmConfig pm_cfg;
    pm_cfg.size = 32u << 20;
    pm::PmDevice device(pm_cfg);
    core::EngineConfig cfg;
    cfg.kind = GetParam();
    cfg.format.logLen = 8u << 20;
    auto engine =
        std::move(*core::Engine::create(device, cfg, true));

    {
        auto tx = engine->begin();
        ASSERT_TRUE(
            HashIndex::create(tx->pageIO(), 1, 64).isOk());
        ASSERT_TRUE(tx->commit().isOk());
    }

    HashIndex index(1);
    Rng rng(3);
    std::map<std::uint64_t, std::vector<std::uint8_t>> model;
    for (int i = 0; i < 600; ++i) {
        std::uint64_t key = rng.next() | 1;
        auto v = value(key, 40);
        auto tx = engine->begin();
        ASSERT_TRUE(
            index.insert(tx->pageIO(), key, asSpan(v)).isOk());
        ASSERT_TRUE(tx->commit().isOk());
        model[key] = v;
    }

    auto tx = engine->begin();
    ASSERT_TRUE(index.checkIntegrity(tx->pageIO()).isOk());
    std::vector<std::uint8_t> out;
    for (const auto &[key, v] : model) {
        ASSERT_TRUE(index.get(tx->pageIO(), key, out).isOk()) << key;
        EXPECT_EQ(out, v);
    }
    tx->rollback();

    // FAST: single-record hash inserts use the in-place commit path,
    // which is precisely the paper's portability claim.
    if (GetParam() == core::EngineKind::Fast) {
        EXPECT_GT(engine->stats().inPlaceCommits, 400u);
    }
}

TEST_P(HashEngineTest, PersistsAcrossReopen)
{
    pm::PmConfig pm_cfg;
    pm_cfg.size = 32u << 20;
    pm::PmDevice device(pm_cfg);
    core::EngineConfig cfg;
    cfg.kind = GetParam();
    cfg.format.logLen = 8u << 20;

    auto v = value(7, 64);
    {
        auto engine =
            std::move(*core::Engine::create(device, cfg, true));
        auto tx = engine->begin();
        ASSERT_TRUE(HashIndex::create(tx->pageIO(), 1, 16).isOk());
        HashIndex index(1);
        ASSERT_TRUE(index.insert(tx->pageIO(), 5, asSpan(v)).isOk());
        ASSERT_TRUE(tx->commit().isOk());
    }
    auto engine = std::move(*core::Engine::create(device, cfg, false));
    auto tx = engine->begin();
    auto index = HashIndex::open(tx->pageIO(), 1);
    ASSERT_TRUE(index.isOk());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(index->get(tx->pageIO(), 5, out).isOk());
    EXPECT_EQ(out, v);
    tx->rollback();
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, HashEngineTest,
    ::testing::Values(core::EngineKind::Fast, core::EngineKind::Fash,
                      core::EngineKind::Nvwal,
                      core::EngineKind::LegacyWal,
                      core::EngineKind::Journal),
    [](const ::testing::TestParamInfo<core::EngineKind> &info) {
        return core::engineKindName(info.param);
    });

TEST(HashCrashTest, InFlightInsertIsAtomic)
{
    // Sweep a crash through every persistence event of one hash insert
    // under the adversarial RandomLines policy.
    for (std::uint64_t k = 0;; ++k) {
        pm::PmConfig pm_cfg;
        pm_cfg.size = 8u << 20;
        pm_cfg.mode = pm::PmMode::CacheSim;
        pm_cfg.crashPolicy = pm::CrashPolicy::RandomLines;
        pm_cfg.crashSeed = k + 1;
        pm::PmDevice device(pm_cfg);
        core::EngineConfig cfg;
        cfg.kind = core::EngineKind::Fast;
        cfg.format.logLen = 1u << 20;
        auto engine =
            std::move(*core::Engine::create(device, cfg, true));
        {
            auto tx = engine->begin();
            ASSERT_TRUE(HashIndex::create(tx->pageIO(), 1, 8).isOk());
            ASSERT_TRUE(tx->commit().isOk());
        }
        HashIndex index(1);
        std::map<std::uint64_t, std::vector<std::uint8_t>> model;
        for (std::uint64_t key = 1; key <= 30; ++key) {
            auto v = value(key, 48);
            auto tx = engine->begin();
            ASSERT_TRUE(
                index.insert(tx->pageIO(), key, asSpan(v)).isOk());
            ASSERT_TRUE(tx->commit().isOk());
            model[key] = v;
        }

        pm::PointCrashInjector injector(device.eventCount() + k);
        device.setCrashInjector(&injector);
        bool crashed = false;
        try {
            auto v = value(999, 48);
            auto tx = engine->begin();
            Status status =
                index.insert(tx->pageIO(), 999, asSpan(v));
            ASSERT_TRUE(status.isOk());
            ASSERT_TRUE(tx->commit().isOk());
        } catch (const pm::CrashException &) {
            crashed = true;
        }
        device.setCrashInjector(nullptr);
        if (!crashed)
            break; // swept past the whole insert

        engine.reset();
        device.reviveAfterCrash();
        auto recovered =
            std::move(*core::Engine::create(device, cfg, false));
        auto tx = recovered->begin();
        ASSERT_TRUE(index.checkIntegrity(tx->pageIO()).isOk())
            << "crash point " << k;
        std::vector<std::uint8_t> out;
        for (const auto &[key, v] : model) {
            ASSERT_TRUE(index.get(tx->pageIO(), key, out).isOk())
                << "crash point " << k << " key " << key;
            EXPECT_EQ(out, v);
        }
        auto survivor = index.contains(tx->pageIO(), 999);
        ASSERT_TRUE(survivor.isOk());
        if (*survivor) {
            ASSERT_TRUE(index.get(tx->pageIO(), 999, out).isOk());
            EXPECT_EQ(out, value(999, 48));
        }
        tx->rollback();
    }
}

} // namespace
} // namespace fasp::btree
