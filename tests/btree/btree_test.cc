/**
 * @file
 * B-tree unit and property tests over a minimal in-memory TxPageIO
 * (no engine, no PM): splits, defragmentation, overflow chains, scans,
 * and a randomized workload checked against std::map.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "common/logging.h"
#include "common/rng.h"

namespace fasp::btree {
namespace {

/** Plain-memory TxPageIO: pages are heap buffers, allocation is a
 *  bump counter, reclaims apply immediately. */
class MemTxPageIO : public TxPageIO
{
  public:
    explicit MemTxPageIO(std::size_t page_size, std::uint16_t leaf_cap = 0)
        : pageSize_(page_size), leafCap_(leaf_cap)
    {
        // Page 0 plays superblock, page 1 is the directory.
        pages_[0] = std::make_unique<Page>(pageSize_);
        pages_[1] = std::make_unique<Page>(pageSize_);
        page::init(*pages_[1]->io, page::PageType::Leaf, 0);
        next_ = 2;
    }

    std::size_t pageSize() const override { return pageSize_; }

    page::PageIO &page(PageId pid, bool) override
    {
        auto it = pages_.find(pid);
        if (it == pages_.end())
            faspPanic("access to unallocated page %u", pid);
        return *it->second->io;
    }

    Result<PageId> allocPage() override
    {
        PageId pid = next_++;
        pages_[pid] = std::make_unique<Page>(pageSize_);
        allocated_++;
        return pid;
    }

    void freePage(PageId pid) override
    {
        pages_.erase(pid);
        freed_++;
    }

    void deferReclaim(PageId pid, const page::RecordRef &ref) override
    {
        page::reclaimExtent(page(pid, true), ref);
    }

    PageId directoryPid() const override { return 1; }

    std::uint16_t maxLeafSlots() const override { return leafCap_; }

    std::size_t livePages() const { return pages_.size(); }
    std::uint64_t allocated() const { return allocated_; }
    std::uint64_t freed() const { return freed_; }

  private:
    struct Page
    {
        explicit Page(std::size_t size)
            : bytes(size, 0),
              io(std::make_unique<page::BufferPageIO>(bytes.data(),
                                                      size))
        {}

        std::vector<std::uint8_t> bytes;
        std::unique_ptr<page::BufferPageIO> io;
    };

    std::size_t pageSize_;
    std::uint16_t leafCap_;
    std::unordered_map<PageId, std::unique_ptr<Page>> pages_;
    PageId next_;
    std::uint64_t allocated_ = 0;
    std::uint64_t freed_ = 0;
};

std::vector<std::uint8_t>
value(std::uint64_t seed, std::size_t len)
{
    std::vector<std::uint8_t> out(len);
    Rng rng(seed);
    rng.fillBytes(out.data(), out.size());
    return out;
}

class BTreeTest : public ::testing::Test
{
  protected:
    BTreeTest() : io_(4096) {}

    BTree makeTree(TreeId id = 7)
    {
        auto tree = BTree::create(io_, id);
        EXPECT_TRUE(tree.isOk());
        return *tree;
    }

    MemTxPageIO io_;
};

TEST_F(BTreeTest, CreateOpenDuplicate)
{
    auto created = BTree::create(io_, 3);
    ASSERT_TRUE(created.isOk());
    EXPECT_TRUE(BTree::open(io_, 3).isOk());
    EXPECT_EQ(BTree::create(io_, 3).status().code(),
              StatusCode::AlreadyExists);
    EXPECT_EQ(BTree::open(io_, 99).status().code(),
              StatusCode::NotFound);
}

TEST_F(BTreeTest, InsertGetRoundTrip)
{
    BTree tree = makeTree();
    auto v = value(1, 32);
    ASSERT_TRUE(
        tree.insert(io_, 42, std::span<const std::uint8_t>(v)).isOk());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(tree.get(io_, 42, out).isOk());
    EXPECT_EQ(out, v);
    EXPECT_EQ(tree.get(io_, 43, out).code(), StatusCode::NotFound);
}

TEST_F(BTreeTest, DuplicateInsertRejected)
{
    BTree tree = makeTree();
    auto v = value(1, 8);
    ASSERT_TRUE(
        tree.insert(io_, 1, std::span<const std::uint8_t>(v)).isOk());
    EXPECT_EQ(
        tree.insert(io_, 1, std::span<const std::uint8_t>(v)).code(),
        StatusCode::AlreadyExists);
}

TEST_F(BTreeTest, ManyInsertsForceSplits)
{
    BTree tree = makeTree();
    Rng rng(11);
    std::map<std::uint64_t, std::uint8_t> model;
    for (int i = 0; i < 3000; ++i) {
        std::uint64_t key = rng.next();
        if (model.count(key))
            continue;
        auto v = value(key, 24);
        ASSERT_TRUE(
            tree.insert(io_, key, std::span<const std::uint8_t>(v))
                .isOk());
        model[key] = 1;
    }
    auto stats = tree.stats(io_);
    ASSERT_TRUE(stats.isOk());
    EXPECT_EQ(stats->records, model.size());
    EXPECT_GT(stats->leafPages, 1u) << "splits must have happened";
    EXPECT_GE(stats->depth, 2u);
    EXPECT_TRUE(tree.checkIntegrity(io_).isOk());

    // Every key is still reachable.
    std::vector<std::uint8_t> out;
    for (const auto &[key, _] : model)
        EXPECT_TRUE(tree.get(io_, key, out).isOk()) << key;
}

TEST_F(BTreeTest, SequentialInsertAscending)
{
    BTree tree = makeTree();
    for (std::uint64_t key = 1; key <= 2000; ++key) {
        auto v = value(key, 16);
        Status status =
            tree.insert(io_, key, std::span<const std::uint8_t>(v));
        ASSERT_TRUE(status.isOk())
            << "key " << key << ": " << status.toString();
    }
    EXPECT_TRUE(tree.checkIntegrity(io_).isOk());
    auto n = tree.count(io_);
    ASSERT_TRUE(n.isOk());
    EXPECT_EQ(*n, 2000u);
}

TEST_F(BTreeTest, SequentialInsertDescending)
{
    BTree tree = makeTree();
    for (std::uint64_t key = 2000; key >= 1; --key) {
        auto v = value(key, 16);
        ASSERT_TRUE(
            tree.insert(io_, key, std::span<const std::uint8_t>(v))
                .isOk());
    }
    EXPECT_TRUE(tree.checkIntegrity(io_).isOk());
    auto n = tree.count(io_);
    ASSERT_TRUE(n.isOk());
    EXPECT_EQ(*n, 2000u);
}

TEST_F(BTreeTest, UpdateChangesValueAndSize)
{
    BTree tree = makeTree();
    auto v1 = value(1, 16);
    ASSERT_TRUE(
        tree.insert(io_, 5, std::span<const std::uint8_t>(v1)).isOk());
    auto v2 = value(2, 200); // grows
    ASSERT_TRUE(
        tree.update(io_, 5, std::span<const std::uint8_t>(v2)).isOk());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(tree.get(io_, 5, out).isOk());
    EXPECT_EQ(out, v2);
    auto v3 = value(3, 4); // shrinks
    ASSERT_TRUE(
        tree.update(io_, 5, std::span<const std::uint8_t>(v3)).isOk());
    ASSERT_TRUE(tree.get(io_, 5, out).isOk());
    EXPECT_EQ(out, v3);
    EXPECT_EQ(
        tree.update(io_, 6, std::span<const std::uint8_t>(v3)).code(),
        StatusCode::NotFound);
}

TEST_F(BTreeTest, EraseRemoves)
{
    BTree tree = makeTree();
    for (std::uint64_t key = 1; key <= 100; ++key) {
        auto v = value(key, 16);
        ASSERT_TRUE(
            tree.insert(io_, key, std::span<const std::uint8_t>(v))
                .isOk());
    }
    for (std::uint64_t key = 2; key <= 100; key += 2)
        ASSERT_TRUE(tree.erase(io_, key).isOk());
    EXPECT_EQ(tree.erase(io_, 2).code(), StatusCode::NotFound);
    auto n = tree.count(io_);
    ASSERT_TRUE(n.isOk());
    EXPECT_EQ(*n, 50u);
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(tree.get(io_, 1, out).isOk());
    EXPECT_EQ(tree.get(io_, 2, out).code(), StatusCode::NotFound);
    EXPECT_TRUE(tree.checkIntegrity(io_).isOk());
}

TEST_F(BTreeTest, OverflowValuesRoundTrip)
{
    BTree tree = makeTree();
    // Far above maxInlineValue(4096) == 1024: spans multiple pages.
    auto big = value(9, 10000);
    ASSERT_TRUE(
        tree.insert(io_, 1, std::span<const std::uint8_t>(big)).isOk());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(tree.get(io_, 1, out).isOk());
    EXPECT_EQ(out, big);

    auto stats = tree.stats(io_);
    ASSERT_TRUE(stats.isOk());
    EXPECT_GE(stats->overflowPages, 3u);
    EXPECT_TRUE(tree.checkIntegrity(io_).isOk());
}

TEST_F(BTreeTest, OverflowChainFreedOnUpdateAndErase)
{
    BTree tree = makeTree();
    auto big = value(9, 9000);
    ASSERT_TRUE(
        tree.insert(io_, 1, std::span<const std::uint8_t>(big)).isOk());
    std::uint64_t freed_before = io_.freed();
    auto small = value(10, 8);
    ASSERT_TRUE(
        tree.update(io_, 1, std::span<const std::uint8_t>(small))
            .isOk());
    EXPECT_GT(io_.freed(), freed_before)
        << "old overflow chain must be freed";

    ASSERT_TRUE(
        tree.update(io_, 1, std::span<const std::uint8_t>(big)).isOk());
    freed_before = io_.freed();
    ASSERT_TRUE(tree.erase(io_, 1).isOk());
    EXPECT_GT(io_.freed(), freed_before);
}

TEST_F(BTreeTest, ScanRangeInOrder)
{
    BTree tree = makeTree();
    for (std::uint64_t key = 10; key <= 1000; key += 10) {
        auto v = value(key, 8);
        ASSERT_TRUE(
            tree.insert(io_, key, std::span<const std::uint8_t>(v))
                .isOk());
    }
    std::vector<std::uint64_t> seen;
    ASSERT_TRUE(tree.scan(io_, 95, 305,
                          [&](std::uint64_t k,
                              std::span<const std::uint8_t>) {
                              seen.push_back(k);
                              return true;
                          })
                    .isOk());
    std::vector<std::uint64_t> expect;
    for (std::uint64_t k = 100; k <= 300; k += 10)
        expect.push_back(k);
    EXPECT_EQ(seen, expect);
}

TEST_F(BTreeTest, ScanEarlyStop)
{
    BTree tree = makeTree();
    for (std::uint64_t key = 1; key <= 100; ++key) {
        auto v = value(key, 8);
        ASSERT_TRUE(
            tree.insert(io_, key, std::span<const std::uint8_t>(v))
                .isOk());
    }
    int visits = 0;
    ASSERT_TRUE(tree.scan(io_, 1, 100,
                          [&](std::uint64_t,
                              std::span<const std::uint8_t>) {
                              return ++visits < 5;
                          })
                    .isOk());
    EXPECT_EQ(visits, 5);
}

TEST_F(BTreeTest, LowerBoundKey)
{
    BTree tree = makeTree();
    for (std::uint64_t key : {10u, 20u, 30u}) {
        auto v = value(key, 8);
        ASSERT_TRUE(
            tree.insert(io_, key, std::span<const std::uint8_t>(v))
                .isOk());
    }
    auto lb = tree.lowerBoundKey(io_, 15);
    ASSERT_TRUE(lb.isOk());
    EXPECT_EQ(*lb, 20u);
    lb = tree.lowerBoundKey(io_, 20);
    ASSERT_TRUE(lb.isOk());
    EXPECT_EQ(*lb, 20u);
    EXPECT_EQ(tree.lowerBoundKey(io_, 31).status().code(),
              StatusCode::NotFound);
}

TEST_F(BTreeTest, DropFreesEverything)
{
    BTree tree = makeTree();
    for (std::uint64_t key = 1; key <= 500; ++key) {
        auto v = value(key, 64);
        ASSERT_TRUE(
            tree.insert(io_, key, std::span<const std::uint8_t>(v))
                .isOk());
    }
    auto big = value(1234, 9000);
    ASSERT_TRUE(tree.insert(io_, 100000,
                            std::span<const std::uint8_t>(big))
                    .isOk());
    ASSERT_TRUE(BTree::drop(io_, tree.id()).isOk());
    // Only the superblock stand-in and directory remain.
    EXPECT_EQ(io_.livePages(), 2u);
    EXPECT_EQ(BTree::open(io_, tree.id()).status().code(),
              StatusCode::NotFound);
}

TEST_F(BTreeTest, MultipleTreesAreIndependent)
{
    BTree a = makeTree(1);
    BTree b = makeTree(2);
    auto va = value(1, 8);
    auto vb = value(2, 8);
    ASSERT_TRUE(
        a.insert(io_, 5, std::span<const std::uint8_t>(va)).isOk());
    ASSERT_TRUE(
        b.insert(io_, 5, std::span<const std::uint8_t>(vb)).isOk());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(a.get(io_, 5, out).isOk());
    EXPECT_EQ(out, va);
    ASSERT_TRUE(b.get(io_, 5, out).isOk());
    EXPECT_EQ(out, vb);
}

// --- Property test: random workload vs std::map reference -------------------

struct FuzzParams
{
    std::uint64_t seed;
    std::uint16_t leafCap; // 0 = FASH-style, 26 = FAST-style
    std::size_t maxValue;
};

class BTreeFuzzTest : public ::testing::TestWithParam<FuzzParams>
{};

TEST_P(BTreeFuzzTest, MatchesReferenceModel)
{
    const FuzzParams &params = GetParam();
    MemTxPageIO io(4096, params.leafCap);
    auto tree_res = BTree::create(io, 1);
    ASSERT_TRUE(tree_res.isOk());
    BTree tree = *tree_res;

    Rng rng(params.seed);
    std::map<std::uint64_t, std::vector<std::uint8_t>> model;

    for (int step = 0; step < 4000; ++step) {
        std::uint64_t key = rng.nextBounded(800); // dense: collisions
        std::size_t len = rng.nextBounded(params.maxValue) + 1;
        auto v = value(rng.next(), len);
        std::uint64_t dice = rng.nextBounded(100);

        if (dice < 50) { // insert
            Status status =
                tree.insert(io, key, std::span<const std::uint8_t>(v));
            if (model.count(key)) {
                EXPECT_EQ(status.code(), StatusCode::AlreadyExists);
            } else {
                ASSERT_TRUE(status.isOk()) << status.toString();
                model[key] = v;
            }
        } else if (dice < 75) { // update
            Status status =
                tree.update(io, key, std::span<const std::uint8_t>(v));
            if (model.count(key)) {
                ASSERT_TRUE(status.isOk()) << status.toString();
                model[key] = v;
            } else {
                EXPECT_EQ(status.code(), StatusCode::NotFound);
            }
        } else if (dice < 90) { // erase
            Status status = tree.erase(io, key);
            if (model.count(key)) {
                ASSERT_TRUE(status.isOk()) << status.toString();
                model.erase(key);
            } else {
                EXPECT_EQ(status.code(), StatusCode::NotFound);
            }
        } else { // point lookup
            std::vector<std::uint8_t> out;
            Status status = tree.get(io, key, out);
            if (model.count(key)) {
                ASSERT_TRUE(status.isOk());
                EXPECT_EQ(out, model[key]);
            } else {
                EXPECT_EQ(status.code(), StatusCode::NotFound);
            }
        }

        if (step % 500 == 499) {
            ASSERT_TRUE(tree.checkIntegrity(io).isOk())
                << "step " << step;
        }
    }

    // Final: full contents match via scan.
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
        scanned;
    ASSERT_TRUE(tree.scan(io, 0, ~std::uint64_t{0},
                          [&](std::uint64_t k,
                              std::span<const std::uint8_t> v) {
                              scanned.emplace_back(
                                  k, std::vector<std::uint8_t>(
                                         v.begin(), v.end()));
                              return true;
                          })
                    .isOk());
    ASSERT_EQ(scanned.size(), model.size());
    auto it = model.begin();
    for (const auto &[k, v] : scanned) {
        EXPECT_EQ(k, it->first);
        EXPECT_EQ(v, it->second);
        ++it;
    }
    EXPECT_TRUE(tree.checkIntegrity(io).isOk());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BTreeFuzzTest,
    ::testing::Values(FuzzParams{1, 0, 64}, FuzzParams{2, 0, 300},
                      FuzzParams{3, 0, 2000}, FuzzParams{4, 26, 64},
                      FuzzParams{5, 26, 300}, FuzzParams{6, 26, 2000},
                      FuzzParams{7, 26, 5000}, FuzzParams{8, 0, 5000}),
    [](const ::testing::TestParamInfo<FuzzParams> &info) {
        return "seed" + std::to_string(info.param.seed) + "_cap" +
               std::to_string(info.param.leafCap) + "_val" +
               std::to_string(info.param.maxValue);
    });

} // namespace
} // namespace fasp::btree
