/**
 * @file
 * Tests for delete-side maintenance: empty leaves unlink and free,
 * empty internal ancestors collapse, the root shrinks when it loses
 * its last separator — and all of it stays failure-atomic.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <unordered_map>

#include "btree/btree.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/engine.h"
#include "pm/device.h"

namespace fasp::btree {
namespace {

/** Minimal in-memory TxPageIO with live-page accounting. */
class MemTxPageIO : public TxPageIO
{
  public:
    explicit MemTxPageIO(std::size_t page_size)
        : pageSize_(page_size)
    {
        pages_[0] = std::make_unique<Page>(pageSize_);
        pages_[1] = std::make_unique<Page>(pageSize_);
        page::init(*pages_[1]->io, page::PageType::Leaf, 0);
        next_ = 2;
    }

    std::size_t pageSize() const override { return pageSize_; }

    page::PageIO &page(PageId pid, bool) override
    {
        auto it = pages_.find(pid);
        if (it == pages_.end())
            faspPanic("access to unallocated page %u", pid);
        return *it->second->io;
    }

    Result<PageId> allocPage() override
    {
        PageId pid = next_++;
        pages_[pid] = std::make_unique<Page>(pageSize_);
        return pid;
    }

    void freePage(PageId pid) override { pages_.erase(pid); }

    void deferReclaim(PageId pid, const page::RecordRef &ref) override
    {
        page::reclaimExtent(page(pid, true), ref);
    }

    PageId directoryPid() const override { return 1; }

    std::size_t livePages() const { return pages_.size(); }

  private:
    struct Page
    {
        explicit Page(std::size_t size)
            : bytes(size, 0),
              io(std::make_unique<page::BufferPageIO>(bytes.data(),
                                                      size))
        {}
        std::vector<std::uint8_t> bytes;
        std::unique_ptr<page::BufferPageIO> io;
    };

    std::size_t pageSize_;
    std::unordered_map<PageId, std::unique_ptr<Page>> pages_;
    PageId next_;
};

std::vector<std::uint8_t>
value(std::uint64_t key)
{
    std::vector<std::uint8_t> out(40);
    Rng rng(key);
    rng.fillBytes(out.data(), out.size());
    return out;
}

TEST(PruneTest, DeletingEverythingFreesAllButTheRoot)
{
    MemTxPageIO io(4096);
    BTree tree = *BTree::create(io, 7);
    for (std::uint64_t key = 1; key <= 3000; ++key) {
        auto v = value(key);
        ASSERT_TRUE(
            tree.insert(io, key, std::span<const std::uint8_t>(v))
                .isOk());
    }
    std::size_t peak = io.livePages();
    EXPECT_GT(peak, 40u);

    for (std::uint64_t key = 1; key <= 3000; ++key)
        ASSERT_TRUE(tree.erase(io, key).isOk()) << key;

    // Everything pruned away: superblock stand-in, directory, and a
    // single (empty) root leaf remain.
    EXPECT_EQ(io.livePages(), 3u)
        << "all interior/leaf pages must be freed";
    auto n = tree.count(io);
    ASSERT_TRUE(n.isOk());
    EXPECT_EQ(*n, 0u);
    EXPECT_TRUE(tree.checkIntegrity(io).isOk());

    // And the tree is fully usable again.
    auto v = value(5);
    ASSERT_TRUE(
        tree.insert(io, 5, std::span<const std::uint8_t>(v)).isOk());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(tree.get(io, 5, out).isOk());
    EXPECT_EQ(out, v);
}

TEST(PruneTest, RootCollapsesWhenOnlyOneChildRemains)
{
    MemTxPageIO io(4096);
    BTree tree = *BTree::create(io, 7);
    for (std::uint64_t key = 1; key <= 500; ++key) {
        auto v = value(key);
        ASSERT_TRUE(
            tree.insert(io, key, std::span<const std::uint8_t>(v))
                .isOk());
    }
    auto stats_before = *tree.stats(io);
    ASSERT_GE(stats_before.depth, 2u);

    // Deleting the low half empties the left leaves one by one; once
    // only the rightmost subtree remains the root must collapse.
    for (std::uint64_t key = 1; key <= 450; ++key)
        ASSERT_TRUE(tree.erase(io, key).isOk());
    auto stats_after = *tree.stats(io);
    EXPECT_LT(stats_after.leafPages, stats_before.leafPages);
    EXPECT_TRUE(tree.checkIntegrity(io).isOk());

    std::vector<std::uint8_t> out;
    for (std::uint64_t key = 451; key <= 500; ++key)
        ASSERT_TRUE(tree.get(io, key, out).isOk()) << key;
}

TEST(PruneTest, InterleavedInsertEraseStaysCompact)
{
    MemTxPageIO io(4096);
    BTree tree = *BTree::create(io, 7);
    Rng rng(17);
    std::map<std::uint64_t, bool> model;
    std::size_t peak = 0;
    for (int round = 0; round < 6; ++round) {
        for (int i = 0; i < 800; ++i) {
            std::uint64_t key = rng.next() | 1;
            auto v = value(key);
            if (tree.insert(io, key,
                            std::span<const std::uint8_t>(v))
                    .isOk()) {
                model[key] = true;
            }
        }
        peak = std::max(peak, io.livePages());
        // Drain almost everything.
        std::size_t kept = 0;
        for (auto it = model.begin(); it != model.end();) {
            if (kept < 10) {
                ++kept;
                ++it;
                continue;
            }
            ASSERT_TRUE(tree.erase(io, it->first).isOk());
            it = model.erase(it);
        }
        ASSERT_TRUE(tree.checkIntegrity(io).isOk()) << round;
        EXPECT_LT(io.livePages(), peak / 2 + 8)
            << "pruning must reclaim drained subtrees (round "
            << round << ")";
    }
}

TEST(PruneTest, CrashDuringPruningDeleteIsAtomic)
{
    // A delete that empties a leaf mutates leaf + parent (+ possibly
    // the directory on a root collapse): a multi-page transaction.
    // Sweep a crash through every persistence event of such a delete
    // on FAST and verify all-or-nothing behaviour.
    for (std::uint64_t k = 0;; ++k) {
        pm::PmConfig pm_cfg;
        pm_cfg.size = 8u << 20;
        pm_cfg.mode = pm::PmMode::CacheSim;
        pm_cfg.crashPolicy = pm::CrashPolicy::RandomLines;
        pm_cfg.crashSeed = k * 31 + 5;
        pm::PmDevice device(pm_cfg);
        core::EngineConfig cfg;
        cfg.kind = core::EngineKind::Fast;
        cfg.format.logLen = 1u << 20;
        auto engine =
            std::move(*core::Engine::create(device, cfg, true));
        auto tree = *engine->createTree(1);

        // FAST leaves cap at 26 slots: 30 sequential keys make two
        // leaves; deleting the lower leaf's survivors one by one, the
        // final erase prunes it.
        std::vector<std::uint8_t> v(16, 0x2d);
        for (std::uint64_t key = 1; key <= 30; ++key) {
            ASSERT_TRUE(engine
                            ->insert(tree, key,
                                     std::span<const std::uint8_t>(v))
                            .isOk());
        }
        auto tx0 = engine->begin();
        auto root0 = *tree.rootPid(tx0->pageIO());
        page::PageIO &rv = tx0->pageIO().page(root0, false);
        ASSERT_GT(page::level(rv), 0) << "need a split for this test";
        PageId left_leaf = page::childPid(rv, 0);
        page::PageIO &lv = tx0->pageIO().page(left_leaf, false);
        std::uint16_t left_count = page::numRecords(lv);
        std::vector<std::uint64_t> left_keys;
        for (std::uint16_t i = 0; i < left_count; ++i)
            left_keys.push_back(page::recordKey(lv, i));
        tx0->rollback();

        // Empty the left leaf except one record (committed deletes).
        for (std::size_t i = 0; i + 1 < left_keys.size(); ++i)
            ASSERT_TRUE(engine->erase(tree, left_keys[i]).isOk());

        // The pruning delete, with a crash injected at event k.
        pm::PointCrashInjector injector(device.eventCount() + k);
        device.setCrashInjector(&injector);
        bool crashed = false;
        try {
            ASSERT_TRUE(
                engine->erase(tree, left_keys.back()).isOk());
        } catch (const pm::CrashException &) {
            crashed = true;
        }
        device.setCrashInjector(nullptr);
        if (!crashed)
            break;

        engine.reset();
        device.reviveAfterCrash();
        auto recovered =
            std::move(*core::Engine::create(device, cfg, false));
        auto tx = recovered->begin();
        BTree t(1);
        ASSERT_TRUE(t.checkIntegrity(tx->pageIO()).isOk())
            << "crash point " << k;
        auto gone = t.contains(tx->pageIO(), left_keys.back());
        ASSERT_TRUE(gone.isOk());
        // All-or-nothing: the key is either still there (rolled back)
        // or gone with the structure intact.
        auto n = t.count(tx->pageIO());
        ASSERT_TRUE(n.isOk());
        EXPECT_EQ(*n, *gone ? 30u - left_keys.size() + 1
                            : 30u - left_keys.size())
            << "crash point " << k;
        tx->rollback();
    }
}

} // namespace
} // namespace fasp::btree
