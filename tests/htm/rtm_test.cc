/**
 * @file
 * Unit tests for the RTM emulation: visibility, atomicity under crash,
 * abort injection, and the single-cache-line working-set restriction.
 */

#include <gtest/gtest.h>

#include "htm/rtm.h"
#include "pm/device.h"

namespace fasp::htm {
namespace {

using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

PmDevice
makeDevice(PmMode mode)
{
    PmConfig cfg;
    cfg.size = 1u << 16;
    cfg.mode = mode;
    return PmDevice(cfg);
}

TEST(RtmTest, CommitAppliesStagedWrites)
{
    auto dev = makeDevice(PmMode::Direct);
    Rtm rtm(dev, RtmConfig{});
    std::uint64_t value = 0xabcdef;
    bool committed = rtm.execute([&](RtmRegion &region) {
        region.write(0, &value, 8);
    });
    EXPECT_TRUE(committed);
    EXPECT_EQ(dev.readU64(0), 0xabcdefu);
    EXPECT_EQ(rtm.stats().commits, 1u);
}

TEST(RtmTest, ExplicitAbortRetriesThenCommits)
{
    auto dev = makeDevice(PmMode::Direct);
    Rtm rtm(dev, RtmConfig{});
    int attempts = 0;
    std::uint64_t value = 5;
    bool committed = rtm.execute([&](RtmRegion &region) {
        region.write(0, &value, 8);
        if (++attempts < 3)
            region.abort(); // XABORT twice
    });
    EXPECT_TRUE(committed);
    EXPECT_EQ(attempts, 3);
    EXPECT_EQ(rtm.stats().aborts, 2u);
    EXPECT_EQ(dev.readU64(0), 5u);
}

TEST(RtmTest, NothingAppliedBeforeCommit)
{
    auto dev = makeDevice(PmMode::Direct);
    Rtm rtm(dev, RtmConfig{});
    std::uint64_t value = 9;
    rtm.execute([&](RtmRegion &region) {
        region.write(0, &value, 8);
        // Inside the region the device must still see the old value:
        // RTM stores are invisible until XEND.
        EXPECT_EQ(dev.readU64(0), 0u);
    });
    EXPECT_EQ(dev.readU64(0), 9u);
}

TEST(RtmTest, FallbackAfterRetryBudget)
{
    auto dev = makeDevice(PmMode::Direct);
    RtmConfig cfg;
    cfg.maxRetries = 4;
    Rtm rtm(dev, cfg);
    std::uint64_t value = 1;
    bool committed = rtm.execute([&](RtmRegion &region) {
        region.write(0, &value, 8);
        region.abort(); // always aborts
    });
    EXPECT_FALSE(committed);
    EXPECT_EQ(rtm.stats().fallbacks, 1u);
    EXPECT_EQ(dev.readU64(0), 0u) << "fallback must leave PM untouched";
}

TEST(RtmTest, InjectedAbortsEventuallyCommit)
{
    auto dev = makeDevice(PmMode::Direct);
    RtmConfig cfg;
    cfg.abortProbability = 0.8;
    cfg.seed = 31;
    Rtm rtm(dev, cfg);
    std::uint64_t value = 77;
    bool committed = rtm.execute([&](RtmRegion &region) {
        region.write(8, &value, 8);
    });
    EXPECT_TRUE(committed);
    EXPECT_GE(rtm.stats().begins, 1u);
    EXPECT_EQ(dev.readU64(8), 77u);
}

TEST(RtmTest, CommittedLineIsStillVolatileUntilFlush)
{
    auto dev = makeDevice(PmMode::CacheSim);
    Rtm rtm(dev, RtmConfig{});
    std::uint64_t value = 0x42;
    rtm.execute([&](RtmRegion &region) {
        region.write(0, &value, 8);
    });
    // Visible...
    EXPECT_EQ(dev.readU64(0), 0x42u);
    // ...but not durable until the caller flushes (paper footnote 2:
    // RTM gives atomicity, clflush after XEND gives durability).
    std::uint64_t durable;
    dev.readDurable(0, &durable, 8);
    EXPECT_EQ(durable, 0u);
    dev.clflush(0);
    dev.readDurable(0, &durable, 8);
    EXPECT_EQ(durable, 0x42u);
}

TEST(RtmTest, CrashAfterCommitBeforeFlushLosesWholeUpdate)
{
    auto dev = makeDevice(PmMode::CacheSim);
    Rtm rtm(dev, RtmConfig{});
    // Pre-populate and flush an initial header-like line.
    std::uint8_t init[64];
    for (int i = 0; i < 64; ++i)
        init[i] = 0x11;
    dev.write(0, init, 64);
    dev.flushRange(0, 64);

    std::uint8_t updated[64];
    for (int i = 0; i < 64; ++i)
        updated[i] = 0x22;
    rtm.execute([&](RtmRegion &region) {
        region.write(0, updated, 64);
    });
    dev.crash();
    dev.reviveAfterCrash();
    // The line must be entirely old: no torn mix.
    std::uint8_t buf[64];
    dev.readDurable(0, buf, 64);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(buf[i], 0x11);
}

TEST(RtmTest, MultipleWritesWithinOneLineAllowed)
{
    auto dev = makeDevice(PmMode::Direct);
    Rtm rtm(dev, RtmConfig{});
    std::uint16_t a = 1, b = 2, c = 3;
    bool committed = rtm.execute([&](RtmRegion &region) {
        region.write(0, &a, 2);
        region.write(30, &b, 2);
        region.write(62, &c, 2);
    });
    EXPECT_TRUE(committed);
    EXPECT_EQ(dev.readU16(0), 1);
    EXPECT_EQ(dev.readU16(30), 2);
    EXPECT_EQ(dev.readU16(62), 3);
}

TEST(RtmSingleLineTest, CrossLineWriteSetPanics)
{
    auto dev = makeDevice(PmMode::Direct);
    Rtm rtm(dev, RtmConfig{});
    std::uint64_t value = 1;
    EXPECT_DEATH(
        rtm.execute([&](RtmRegion &region) {
            region.write(60, &value, 8); // straddles a line boundary
        }),
        "RTM write set");
}

TEST(RtmSingleLineTest, TwoLinesPanics)
{
    auto dev = makeDevice(PmMode::Direct);
    Rtm rtm(dev, RtmConfig{});
    std::uint64_t value = 1;
    EXPECT_DEATH(
        rtm.execute([&](RtmRegion &region) {
            region.write(0, &value, 8);
            region.write(64, &value, 8);
        }),
        "two cache lines");
}

TEST(RtmSingleLineTest, EnforcementCanBeDisabled)
{
    auto dev = makeDevice(PmMode::Direct);
    RtmConfig cfg;
    cfg.enforceSingleLine = false;
    Rtm rtm(dev, cfg);
    std::uint64_t value = 6;
    bool committed = rtm.execute([&](RtmRegion &region) {
        region.write(0, &value, 8);
        region.write(64, &value, 8);
    });
    EXPECT_TRUE(committed);
}

TEST(RtmCapacityTest, OverBudgetWriteSetFallsBackImmediately)
{
    auto dev = makeDevice(PmMode::Direct);
    RtmConfig cfg;
    cfg.enforceSingleLine = false;
    cfg.capacityLines = 2;
    Rtm rtm(dev, cfg);
    std::uint64_t value = 9;

    // Three distinct lines > budget of two: deterministic capacity
    // abort, no retries burned, and nothing reaches the device.
    bool committed = rtm.execute([&](RtmRegion &region) {
        region.write(0, &value, 8);
        region.write(64, &value, 8);
        region.write(128, &value, 8);
    });
    EXPECT_FALSE(committed);
    EXPECT_EQ(rtm.stats().begins, 1u);
    EXPECT_EQ(rtm.stats().abortsCapacity, 1u);
    EXPECT_EQ(rtm.stats().fallbacks, 1u);
    EXPECT_EQ(dev.readU64(0), 0u);
    EXPECT_EQ(dev.readU64(128), 0u);

    // At the budget is fine.
    committed = rtm.execute([&](RtmRegion &region) {
        region.write(0, &value, 8);
        region.write(64, &value, 8);
    });
    EXPECT_TRUE(committed);
    EXPECT_EQ(dev.readU64(64), 9u);
}

} // namespace
} // namespace fasp::htm
