/**
 * @file
 * End-to-end tests for fasp-mc (DESIGN.md §13): determinism of the
 * exploration (same seed ⇒ byte-identical traces), bounded-budget
 * detection of every seeded-bug fixture, deterministic replay of a
 * failing trace, and a zero-violation smoke pass over a real engine
 * scenario including crash forks.
 */

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mc/explorer.h"
#include "mc/scenarios.h"
#include "mc/trace.h"

namespace fasp::mc {
namespace {

namespace fs = std::filesystem;

std::string tempDir(const char *tag)
{
    fs::path p = fs::temp_directory_path() /
                 (std::string("fasp_mc_test_") + tag + "_" +
                  std::to_string(::getpid()));
    fs::remove_all(p);
    fs::create_directories(p);
    return p.string();
}

std::vector<std::uint8_t> slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

ExploreResult exploreScenario(const std::string &name,
                              const ExploreOptions &opt)
{
    auto scenario = makeScenario(name);
    if (!scenario)
        ADD_FAILURE() << "unknown scenario " << name;
    Explorer explorer(*scenario, opt);
    return explorer.explore();
}

TEST(FaspMcTest, RegistryListsAllScenarios)
{
    auto names = scenarioNames();
    ASSERT_GE(names.size(), 8u);
    for (const auto &n : names) {
        auto s = makeScenario(n);
        ASSERT_NE(s, nullptr) << n;
        EXPECT_STREQ(s->name(), n.c_str());
        EXPECT_GE(s->threadCount(), 1);
        EXPECT_LE(s->threadCount(), int(kMaxThreads));
    }
    EXPECT_EQ(makeScenario("no-such-scenario"), nullptr);
}

/** Same seed, same options ⇒ the two explorations must emit
 *  byte-identical trace files for every schedule. */
TEST(FaspMcTest, ExplorationIsDeterministic)
{
    std::string dirA = tempDir("det_a");
    std::string dirB = tempDir("det_b");

    ExploreOptions opt;
    opt.seed = 42;
    opt.maxSchedules = 40;
    opt.preemptionBound = 2;
    opt.crashEvery = 8;
    opt.traceEvery = 1;

    opt.traceDir = dirA;
    ExploreResult a = exploreScenario("same-page-insert", opt);
    opt.traceDir = dirB;
    ExploreResult b = exploreScenario("same-page-insert", opt);

    EXPECT_EQ(a.schedules, b.schedules);
    EXPECT_EQ(a.totalSteps, b.totalSteps);
    EXPECT_EQ(a.crashForks, b.crashForks);
    EXPECT_EQ(a.maxDepth, b.maxDepth);
    EXPECT_TRUE(a.failures.empty());
    EXPECT_TRUE(b.failures.empty());

    std::vector<fs::path> filesA;
    for (const auto &e : fs::directory_iterator(dirA))
        filesA.push_back(e.path());
    ASSERT_EQ(filesA.size(), a.schedules);
    for (const auto &pa : filesA) {
        fs::path pb = fs::path(dirB) / pa.filename();
        ASSERT_TRUE(fs::exists(pb)) << pb;
        EXPECT_EQ(slurp(pa), slurp(pb)) << pa.filename();
    }
    fs::remove_all(dirA);
    fs::remove_all(dirB);
}

/** The seeded lost-update race must be found within a small budget. */
TEST(FaspMcTest, CatchesLockElisionFixture)
{
    ExploreOptions opt;
    opt.maxSchedules = 512;
    opt.preemptionBound = 2;
    ExploreResult r = exploreScenario("bug-lock-elision", opt);
    ASSERT_FALSE(r.failures.empty());
    EXPECT_LE(r.failures[0].scheduleIndex, 512u);
    bool oracle = false;
    for (const auto &v : r.failures[0].violations)
        oracle |= v.kind == McViolation::Kind::Oracle;
    EXPECT_TRUE(oracle);
}

/** The unflushed-commit fixture is caught by the persistency checker
 *  on (nearly) the first schedule — no interleaving needed. */
TEST(FaspMcTest, CatchesMissingFlushFixture)
{
    ExploreOptions opt;
    opt.maxSchedules = 16;
    ExploreResult r = exploreScenario("bug-missing-flush", opt);
    ASSERT_FALSE(r.failures.empty());
    bool checker = false;
    for (const auto &v : r.failures[0].violations)
        checker |= v.kind == McViolation::Kind::Checker;
    EXPECT_TRUE(checker);
}

/** The ABBA cycle must trip the scheduler's deadlock detector. */
TEST(FaspMcTest, CatchesDeadlockFixture)
{
    ExploreOptions opt;
    opt.maxSchedules = 256;
    opt.preemptionBound = 2;
    ExploreResult r = exploreScenario("bug-deadlock", opt);
    ASSERT_FALSE(r.failures.empty());
    bool deadlock = false;
    for (const auto &v : r.failures[0].violations)
        deadlock |= v.kind == McViolation::Kind::Deadlock;
    EXPECT_TRUE(deadlock);
}

/** A failing schedule's trace must replay deterministically and
 *  reproduce the same violation kind. */
TEST(FaspMcTest, ReplayReproducesFailure)
{
    std::string dir = tempDir("replay");
    ExploreOptions opt;
    opt.maxSchedules = 512;
    opt.preemptionBound = 2;
    opt.traceDir = dir;

    auto scenario = makeScenario("bug-lock-elision");
    ASSERT_NE(scenario, nullptr);
    ExploreResult r = [&] {
        Explorer explorer(*scenario, opt);
        return explorer.explore();
    }();
    ASSERT_FALSE(r.failures.empty());
    ASSERT_FALSE(r.failures[0].tracePath.empty());

    auto trace = readTrace(r.failures[0].tracePath);
    ASSERT_TRUE(trace.isOk()) << trace.status().toString();
    EXPECT_EQ(trace->scenario, "bug-lock-elision");

    auto fresh = makeScenario(trace->scenario);
    ASSERT_NE(fresh, nullptr);
    Explorer replayer(*fresh, opt);
    RunResult run = replayer.replay(*trace);
    ASSERT_FALSE(run.violations.empty());
    bool diverged = false, oracle = false;
    for (const auto &v : run.violations) {
        diverged |= v.kind == McViolation::Kind::Diverged;
        oracle |= v.kind == McViolation::Kind::Oracle;
    }
    EXPECT_FALSE(diverged);
    EXPECT_TRUE(oracle);
    fs::remove_all(dir);
}

/** Real-engine scenario incl. crash forks: zero violations, and the
 *  bounded space must actually be exhausted at this size. */
TEST(FaspMcTest, EngineScenarioSmokeIsClean)
{
    ExploreOptions opt;
    opt.maxSchedules = 300;
    opt.preemptionBound = 2;
    opt.crashEvery = 8;
    ExploreResult r = exploreScenario("same-page-insert", opt);
    EXPECT_TRUE(r.failures.empty());
    EXPECT_TRUE(r.exhausted);
    EXPECT_GT(r.crashForks, 0u);
    EXPECT_GT(r.schedules, 10u);
}

/** The latch-free PCAS publish race: two writers flip one header word
 *  while crash forks land at every protocol fence (tag set, flush,
 *  tag clear); the raw-image oracle runs Pcas::recover() plus the tag
 *  strip and must never see a torn or flagged word. */
TEST(FaspMcTest, PcasHeaderFlipSmokeIsClean)
{
    ExploreOptions opt;
    opt.maxSchedules = 300;
    opt.preemptionBound = 2;
    opt.crashEvery = 4;
    ExploreResult r = exploreScenario("pcas-header-flip", opt);
    EXPECT_TRUE(r.failures.empty());
    EXPECT_GT(r.crashForks, 0u);
    EXPECT_GT(r.schedules, 10u);
}

/** The same scenario stays clean on the log-structured engines too. */
TEST(FaspMcTest, EngineScenarioCleanOnNvwal)
{
    ExploreOptions opt;
    opt.engine = core::EngineKind::Nvwal;
    opt.maxSchedules = 200;
    opt.preemptionBound = 2;
    opt.crashEvery = 8;
    ExploreResult r = exploreScenario("same-page-insert", opt);
    EXPECT_TRUE(r.failures.empty());
    EXPECT_TRUE(r.exhausted);
}

TEST(FaspMcTest, ParseEngineKindAcceptsAliases)
{
    core::EngineKind k{};
    EXPECT_TRUE(parseEngineKind("fast", k));
    EXPECT_EQ(k, core::EngineKind::Fast);
    EXPECT_TRUE(parseEngineKind("legacy-wal", k));
    EXPECT_EQ(k, core::EngineKind::LegacyWal);
    EXPECT_TRUE(parseEngineKind("NVWAL", k));
    EXPECT_EQ(k, core::EngineKind::Nvwal);
    EXPECT_FALSE(parseEngineKind("btrfs", k));
}

TEST(FaspMcTest, TraceRoundTrips)
{
    std::string dir = tempDir("roundtrip");
    TraceFile t;
    t.scenario = "same-page-insert";
    t.engine = "FAST";
    t.seed = 7;
    t.crashEvery = 4;
    t.crashPolicy = 2;
    t.scheduleIndex = 13;
    t.steps = {{0, 2, 0, 11}, {1, 14, 1, 22}, {0, 15, 0, 0}};
    std::string path = dir + "/t.fmc";
    ASSERT_TRUE(writeTrace(path, t).isOk());
    auto back = readTrace(path);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back->scenario, t.scenario);
    EXPECT_EQ(back->engine, t.engine);
    EXPECT_EQ(back->seed, t.seed);
    EXPECT_EQ(back->crashEvery, t.crashEvery);
    EXPECT_EQ(back->crashPolicy, t.crashPolicy);
    EXPECT_EQ(back->scheduleIndex, t.scheduleIndex);
    ASSERT_EQ(back->steps.size(), t.steps.size());
    for (std::size_t i = 0; i < t.steps.size(); ++i) {
        EXPECT_EQ(back->steps[i].chosen, t.steps[i].chosen);
        EXPECT_EQ(back->steps[i].op, t.steps[i].op);
        EXPECT_EQ(back->steps[i].flags, t.steps[i].flags);
        EXPECT_EQ(back->steps[i].token, t.steps[i].token);
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace fasp::mc
