/**
 * @file
 * Unit tests for the persistency-ordering checker: the per-line state
 * machine, the transaction write-set checks, scratch exemptions, crash
 * handling, and the interaction with CrashPolicy::TornLines (a fenced
 * line must never be reported at risk of tearing; an unfenced dirty
 * one must be).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pm/checker.h"
#include "pm/device.h"

namespace fasp::pm {
namespace {

using LineState = PersistencyChecker::LineState;

class CheckerTest : public ::testing::Test
{
  protected:
    CheckerTest() : device_(makeConfig())
    {
        device_.setChecker(&checker_);
    }

    ~CheckerTest() override { device_.setChecker(nullptr); }

    static PmConfig makeConfig()
    {
        PmConfig cfg;
        cfg.size = 1u << 20;
        cfg.mode = PmMode::CacheSim;
        return cfg;
    }

    void store(PmOffset off, std::uint8_t byte, std::size_t len = 8)
    {
        std::vector<std::uint8_t> buf(len, byte);
        device_.write(off, buf.data(), buf.size());
    }

    PmDevice device_;
    PersistencyChecker checker_;
};

TEST_F(CheckerTest, StoreFlushFenceReachesFenced)
{
    store(0, 0x11);
    EXPECT_EQ(checker_.lineState(0), LineState::Dirty);
    device_.clflush(0);
    EXPECT_EQ(checker_.lineState(0), LineState::Flushed);
    device_.sfence();
    EXPECT_EQ(checker_.lineState(0), LineState::Fenced);

    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
}

TEST_F(CheckerTest, SpanningStoreDirtiesEveryLine)
{
    store(60, 0x22, 72); // touches lines 0, 64 and 128
    EXPECT_EQ(checker_.lineState(0), LineState::Dirty);
    EXPECT_EQ(checker_.lineState(64), LineState::Dirty);
    EXPECT_EQ(checker_.lineState(128), LineState::Dirty);
    EXPECT_EQ(checker_.lineState(192), LineState::Clean);
}

TEST_F(CheckerTest, DirtyAtShutdownDetected)
{
    store(128, 0x33);
    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_EQ(checker_.report().count(ViolationKind::DirtyAtShutdown),
              1u);
    EXPECT_EQ(checker_.report().total(), 1u);
}

TEST_F(CheckerTest, FlushedButUnfencedAtShutdownDetected)
{
    store(128, 0x33);
    device_.clflush(128);
    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_EQ(checker_.report().count(ViolationKind::DirtyAtShutdown),
              1u);
}

TEST_F(CheckerTest, RedundantFlushOfFlushedLineDetected)
{
    store(0, 0x44);
    device_.clflush(0);
    device_.clflush(0); // nothing left to write back
    EXPECT_EQ(checker_.report().count(ViolationKind::RedundantFlush),
              1u);
}

TEST_F(CheckerTest, RedundantFlushOfCleanLineDetected)
{
    device_.clflush(256);
    EXPECT_EQ(checker_.report().count(ViolationKind::RedundantFlush),
              1u);
}

TEST_F(CheckerTest, RedundantFlushCanBeDisabled)
{
    PersistencyChecker::Config cfg;
    cfg.trackRedundantFlush = false;
    PersistencyChecker lax(cfg);
    device_.setChecker(&lax);
    device_.clflush(256);
    device_.setChecker(&checker_);
    EXPECT_TRUE(lax.report().empty());
}

TEST_F(CheckerTest, StoreInFlushFenceWindowDetected)
{
    store(0, 0x55);
    device_.clflush(0);
    store(0, 0x56); // lands between the flush and its fence
    device_.sfence();
    EXPECT_EQ(
        checker_.report().count(ViolationKind::StoreInFlushFenceWindow),
        1u);
}

TEST_F(CheckerTest, HelperFlushAfterTagClearIsNotRedundant)
{
    // A helper that saw a tagged word may reach its flush after the
    // owner already flushed AND cleared; the flush is redundant only
    // by timing. Lines that ever held a tag are exempt from V2.
    store(0, 0x45);
    device_.clflush(0);
    device_.sfence();
    checker_.onTagSet(0, device_.eventCount(), "pcas-test");
    checker_.onTagClear(0);
    device_.clflush(0); // the helper's late flush
    EXPECT_EQ(checker_.report().count(ViolationKind::RedundantFlush),
              0u);
}

TEST_F(CheckerTest, CasStoreInFlushFenceWindowIsProtocolLegal)
{
    // A pcas word store (publish or tag clear) may land in another
    // thread's flush->fence window: the word is atomic and its issuer
    // settles its own durability, so no V4 (DESIGN.md §14).
    std::uint64_t v = 0;
    std::memcpy(&v, "\x55\x55\x55\x55\x55\x55\x55\x55", 8);
    store(0, 0x55);
    device_.clflush(0);
    std::uint64_t expected = v;
    ASSERT_TRUE(device_.casU64(0, expected, 42));
    device_.sfence();
    EXPECT_EQ(
        checker_.report().count(ViolationKind::StoreInFlushFenceWindow),
        0u);

    // The line re-dirtied all the same; the CAS issuer still owes the
    // flush + fence before shutdown.
    device_.clflush(0);
    device_.sfence();
    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
}

TEST_F(CheckerTest, ReflushBeforeFenceClosesTheWindow)
{
    // Adjacent log frames share boundary cache lines: the second
    // frame's store re-dirties a flushed line, but its own flush
    // covers it again before the fence. Not a violation.
    store(0, 0x55);
    device_.clflush(0);
    store(0, 0x56);
    device_.clflush(0);
    device_.sfence();
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
    EXPECT_EQ(checker_.lineState(0), LineState::Fenced);
}

TEST_F(CheckerTest, UnflushedStoreAtCommitDetected)
{
    device_.txBegin();
    store(0, 0x66);
    device_.txCommitPoint();
    EXPECT_EQ(
        checker_.report().count(ViolationKind::UnflushedStoreAtCommit),
        1u);
}

TEST_F(CheckerTest, UnfencedFlushAtCommitDetected)
{
    device_.txBegin();
    store(0, 0x77);
    device_.clflush(0);
    device_.txCommitPoint(); // flush never ordered by a fence
    EXPECT_EQ(
        checker_.report().count(ViolationKind::UnfencedFlushAtCommit),
        1u);
}

TEST_F(CheckerTest, FencedWriteSetPassesCommitPoint)
{
    device_.txBegin();
    store(0, 0x88);
    store(64, 0x89);
    device_.flushRange(0, 128);
    device_.sfence();
    device_.txCommitPoint();
    store(4096, 0x8a); // the commit mark itself
    device_.clflush(4096);
    device_.sfence();
    device_.txEnd(true);
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
}

TEST_F(CheckerTest, CommittedTxEndRechecksWriteSet)
{
    device_.txBegin();
    store(0, 0x99);
    device_.txEnd(true);
    EXPECT_EQ(
        checker_.report().count(ViolationKind::UnflushedStoreAtCommit),
        1u);
}

TEST_F(CheckerTest, AbortedTxForgivesItsDirtyLines)
{
    device_.txBegin();
    store(0, 0xaa);
    device_.txEnd(false);
    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
}

TEST_F(CheckerTest, NestedTxBeginJoinsEnclosingTransaction)
{
    device_.txBegin();
    store(0, 0xab);
    device_.txBegin(); // join, must not drop line 0 from the set
    store(64, 0xac);
    device_.txCommitPoint();
    EXPECT_EQ(
        checker_.report().count(ViolationKind::UnflushedStoreAtCommit),
        2u);
}

TEST_F(CheckerTest, ScratchStoresAreExemptFromDurabilityChecks)
{
    std::uint8_t buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    device_.txBegin();
    device_.writeScratch(0, buf, sizeof(buf));
    device_.txCommitPoint();
    device_.txEnd(true);
    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
}

TEST_F(CheckerTest, NonScratchStoreUpgradesScratchLine)
{
    std::uint8_t buf[8] = {};
    device_.writeScratch(0, buf, sizeof(buf));
    store(0, 0xad); // real data on the same line
    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_EQ(checker_.report().count(ViolationKind::DirtyAtShutdown),
              1u);
}

TEST_F(CheckerTest, MarkScratchExemptsPendingStores)
{
    store(0, 0xae);
    store(64, 0xaf);
    device_.markScratch(0, 128);
    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
}

TEST_F(CheckerTest, ForgiveUnflushedClearsPendingState)
{
    store(0, 0xb0);
    device_.clflush(64); // redundant flushes are NOT forgiven
    checker_.forgiveUnflushed();
    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_EQ(checker_.report().count(ViolationKind::RedundantFlush),
              1u);
    EXPECT_EQ(checker_.report().count(ViolationKind::DirtyAtShutdown),
              0u);
}

TEST_F(CheckerTest, ViolationCarriesSiteAndTrace)
{
    {
        SiteScope site(device_, "checker-test-site");
        store(0, 0xb1);
    }
    checker_.checkCleanShutdown(device_.eventCount());
    ASSERT_EQ(checker_.report().violations().size(), 1u);
    const Violation &v = checker_.report().violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::DirtyAtShutdown);
    EXPECT_EQ(v.lineBase, 0u);
    ASSERT_GE(v.traceLen, 1u);
    ASSERT_NE(v.trace[0].site, nullptr);
    EXPECT_STREQ(v.trace[0].site, "checker-test-site");
    EXPECT_NE(checker_.report().toString().find("checker-test-site"),
              std::string::npos);
}

TEST_F(CheckerTest, ReportCapsStoredViolationsButKeepsCounting)
{
    for (PmOffset line = 0; line < (CheckerReport::kMaxStored + 10) * 64;
         line += 64) {
        device_.clflush(line); // all redundant
    }
    EXPECT_EQ(checker_.report().total(),
              CheckerReport::kMaxStored + 10);
    EXPECT_EQ(checker_.report().violations().size(),
              CheckerReport::kMaxStored);
    EXPECT_EQ(checker_.report().dropped(), 10u);
}

TEST_F(CheckerTest, CrashResetsStateAndSnapshotsAtRiskLines)
{
    store(0, 0xb2);                 // dirty: at risk
    store(64, 0xb3);
    device_.clflush(64);
    device_.sfence();               // fenced: safe
    device_.crash();

    EXPECT_TRUE(checker_.wasAtRiskAtCrash(0));
    EXPECT_FALSE(checker_.wasAtRiskAtCrash(64));
    EXPECT_FALSE(checker_.txActive());

    device_.reviveAfterCrash();
    EXPECT_EQ(checker_.lineState(0), LineState::Clean);
    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
}

// --- CrashPolicy::TornLines x checker ---------------------------------------
//
// The contract the checker enforces is exactly the one TornLines
// attacks: a FENCED line is durable in its entirety and must never be
// torn by a crash; a line still DIRTY at the crash is fair game.

TEST(CheckerTornLinesTest, FencedLineIsNeverTorn)
{
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        PmConfig cfg;
        cfg.size = 1u << 20;
        cfg.mode = PmMode::CacheSim;
        cfg.crashPolicy = CrashPolicy::TornLines;
        cfg.crashSeed = seed;
        PmDevice device(cfg);
        PersistencyChecker checker;
        device.setChecker(&checker);

        std::vector<std::uint8_t> fenced(kCacheLineSize, 0xfe);
        device.write(0, fenced.data(), fenced.size());
        device.clflush(0);
        device.sfence();

        std::vector<std::uint8_t> unfenced(kCacheLineSize, 0xdf);
        device.write(4096, unfenced.data(), unfenced.size());

        device.crash();
        EXPECT_FALSE(checker.wasAtRiskAtCrash(0))
            << "fenced line reported at risk (seed " << seed << ")";
        EXPECT_TRUE(checker.wasAtRiskAtCrash(4096))
            << "unfenced line not reported at risk (seed " << seed
            << ")";

        // The fenced line survives bit-exact under every seed.
        std::vector<std::uint8_t> out(kCacheLineSize);
        device.readDurable(0, out.data(), out.size());
        EXPECT_EQ(out, fenced) << "fenced line torn (seed " << seed
                               << ")";
        device.setChecker(nullptr);
    }
}

TEST(CheckerTornLinesTest, UnfencedLineCanTearAndIsFlaggedAtRisk)
{
    // Scan seeds until the adversary actually tears the unfenced line
    // (some words persist, some do not). The checker must have flagged
    // that line as at-risk — that is the coupling under test.
    bool saw_torn = false;
    for (std::uint64_t seed = 1; seed <= 64 && !saw_torn; ++seed) {
        PmConfig cfg;
        cfg.size = 1u << 20;
        cfg.mode = PmMode::CacheSim;
        cfg.crashPolicy = CrashPolicy::TornLines;
        cfg.crashSeed = seed;
        PmDevice device(cfg);
        PersistencyChecker checker;
        device.setChecker(&checker);

        std::vector<std::uint8_t> data(kCacheLineSize, 0xd7);
        device.write(4096, data.data(), data.size());
        device.crash();

        std::vector<std::uint8_t> out(kCacheLineSize);
        device.readDurable(4096, out.data(), out.size());
        bool any_new = false;
        bool any_old = false;
        for (std::size_t w = 0; w < kCacheLineSize; w += 8) {
            if (out[w] == 0xd7)
                any_new = true;
            else
                any_old = true;
        }
        if (any_new && any_old) {
            saw_torn = true;
            EXPECT_TRUE(checker.wasAtRiskAtCrash(4096))
                << "torn line was not flagged at-risk (seed " << seed
                << ")";
        }
        device.setChecker(nullptr);
    }
    EXPECT_TRUE(saw_torn)
        << "TornLines never tore an unfenced line across 64 seeds";
}

} // namespace
} // namespace fasp::pm
