/**
 * @file
 * Unit tests for the CLWB model (persist without eviction) and its
 * interaction with the read-latency accounting.
 */

#include <gtest/gtest.h>

#include "pm/device.h"

namespace fasp::pm {
namespace {

PmConfig
config(bool clwb, PmMode mode = PmMode::Direct)
{
    PmConfig cfg;
    cfg.size = 1u << 16;
    cfg.mode = mode;
    cfg.latency = LatencyModel::of(500, 500);
    cfg.useClwb = clwb;
    return cfg;
}

TEST(ClwbTest, ClflushEvictsClwbDoesNot)
{
    {
        PmDevice dev(config(/*clwb=*/false));
        dev.writeU64(4096, 7);
        dev.clflush(4096);
        std::uint64_t misses = dev.stats().readMisses;
        std::uint8_t buf[8];
        dev.read(4096, buf, 8);
        EXPECT_EQ(dev.stats().readMisses, misses + 1)
            << "CLFLUSH must evict: the next read misses";
    }
    {
        PmDevice dev(config(/*clwb=*/true));
        dev.writeU64(4096, 7);
        dev.clflush(4096); // modelled as CLWB
        std::uint64_t misses = dev.stats().readMisses;
        std::uint8_t buf[8];
        dev.read(4096, buf, 8);
        EXPECT_EQ(dev.stats().readMisses, misses)
            << "CLWB keeps the line cached: the next read hits";
    }
}

TEST(ClwbTest, SameWriteLatencyCharge)
{
    PmDevice flush_dev(config(false));
    PmDevice clwb_dev(config(true));
    flush_dev.writeU64(0, 1);
    clwb_dev.writeU64(0, 1);
    flush_dev.clflush(0);
    clwb_dev.clflush(0);
    EXPECT_EQ(flush_dev.stats().modelNs, clwb_dev.stats().modelNs)
        << "persisting costs the same either way";
    EXPECT_EQ(flush_dev.stats().clflushes, 1u);
    EXPECT_EQ(clwb_dev.stats().clflushes, 1u);
}

TEST(ClwbTest, DurabilityIdenticalInCacheSim)
{
    PmDevice dev(config(/*clwb=*/true, PmMode::CacheSim));
    dev.writeU64(0, 0x77);
    EXPECT_EQ(dev.durableData()[0], 0);
    dev.clflush(0);
    EXPECT_EQ(dev.durableData()[0], 0x77);
    EXPECT_EQ(dev.dirtyLineCount(), 0u)
        << "CLWB makes the line durable exactly like CLFLUSH";

    // Crash after CLWB: the written-back data survives.
    dev.writeU64(64, 0x88);
    dev.clflush(64);
    dev.writeU64(128, 0x99); // never written back
    dev.crash();
    dev.reviveAfterCrash();
    EXPECT_EQ(dev.readU64(64), 0x88u);
    EXPECT_EQ(dev.readU64(128), 0u);
}

} // namespace
} // namespace fasp::pm
