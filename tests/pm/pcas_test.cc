/**
 * @file
 * Unit tests for the persistent CAS layer (DESIGN.md §14): the
 * dirty-flag protocol of cas(), helping semantics of read(), the V6/V7
 * checker couplings, PMwCAS all-or-nothing behaviour under an
 * exhaustive TornLines crash-point sweep, descriptor recovery, and a
 * multi-threaded stress run (the TSan CI leg executes this binary).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "pm/checker.h"
#include "pm/crash.h"
#include "pm/device.h"
#include "pm/pcas.h"

namespace fasp::pm {
namespace {

constexpr PmOffset kDescOff = 1u << 16;
constexpr PmOffset kWordA = 0;
constexpr PmOffset kWordB = 64;
constexpr PmOffset kWordC = 128;

PmConfig
makeConfig()
{
    PmConfig cfg;
    cfg.size = 1u << 20;
    cfg.mode = PmMode::CacheSim;
    return cfg;
}

/** Write @p v at @p off and make it durably fenced, so TornLines can
 *  never tear the baseline value. */
void
initWord(PmDevice &device, PmOffset off, std::uint64_t v)
{
    device.writeU64(off, v);
    device.clflush(off);
    device.sfence();
}

class PcasTest : public ::testing::Test
{
  protected:
    PcasTest()
        : device_(makeConfig()), pcas_(device_, kDescOff, PcasConfig{})
    {
        device_.setChecker(&checker_);
    }

    ~PcasTest() override { device_.setChecker(nullptr); }

    PmDevice device_;
    PersistencyChecker checker_;
    Pcas pcas_;
};

TEST_F(PcasTest, CasPublishesDurablyAndIsCheckerClean)
{
    initWord(device_, kWordA, 7);
    ASSERT_EQ(pcas_.cas(kWordA, 7, 9), PcasResult::Ok);
    EXPECT_EQ(pcas_.read(kWordA), 9u);
    EXPECT_EQ(pcas_.stats().casCommits.load(), 1u);
    EXPECT_EQ(checker_.taggedWordCount(), 0u);

    // The committed value is already durable even though the tag clear
    // is lazy: pcasStrip of the durable image must read back 9.
    std::uint64_t durable = 0;
    device_.readDurable(kWordA, &durable, 8);
    EXPECT_EQ(pcasStrip(durable), 9u);

    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
}

TEST_F(PcasTest, CasWrongExpectedIsConflict)
{
    initWord(device_, kWordA, 7);
    EXPECT_EQ(pcas_.cas(kWordA, 8, 9), PcasResult::Conflict);
    EXPECT_EQ(pcas_.read(kWordA), 7u);
    EXPECT_EQ(pcas_.stats().casConflicts.load(), 1u);
}

TEST_F(PcasTest, CasInjectedFailuresExhaustRetryBudget)
{
    PcasConfig cfg;
    cfg.failProbability = 1.0;
    cfg.maxRetries = 3;
    pcas_.setConfig(cfg);

    initWord(device_, kWordA, 7);
    EXPECT_EQ(pcas_.cas(kWordA, 7, 9), PcasResult::Exhausted);
    EXPECT_EQ(pcas_.read(kWordA), 7u);
    EXPECT_EQ(pcas_.stats().casExhausted.load(), 1u);
    EXPECT_EQ(pcas_.stats().casInjected.load(), 3u);
}

TEST_F(PcasTest, ReadHelpsForeignTagToDurability)
{
    // Simulate another thread caught between publish and clear: the
    // word carries a dirty tag the checker knows about.
    initWord(device_, kWordA, 7);
    std::uint64_t expected = 7;
    device_.casU64(kWordA, expected, 9 | kPcasDirtyBit);
    checker_.onTagSet(kWordA, device_.eventCount(), "pcas-test");
    ASSERT_EQ(checker_.taggedWordCount(), 1u);

    // read() must flush + fence + clear, never return the raw tag.
    EXPECT_EQ(pcas_.read(kWordA), 9u);
    EXPECT_EQ(pcas_.stats().helps.load(), 1u);
    EXPECT_EQ(checker_.taggedWordCount(), 0u);

    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
}

TEST_F(PcasTest, PlainReadOfTaggedWordIsV6)
{
    initWord(device_, kWordA, 7);
    std::uint64_t expected = 7;
    device_.casU64(kWordA, expected, 9 | kPcasDirtyBit);
    checker_.onTagSet(kWordA, device_.eventCount(), "pcas-test");

    (void)device_.readU64(kWordA); // consumes the tag without helping
    EXPECT_EQ(checker_.report().count(ViolationKind::TaggedRead), 1u);
    checker_.onTagClear(kWordA);
}

TEST_F(PcasTest, UnclearedTagAtCleanShutdownIsV7)
{
    initWord(device_, kWordA, 7);
    std::uint64_t expected = 7;
    device_.casU64(kWordA, expected, 9 | kPcasDirtyBit);
    device_.clflush(kWordA);
    device_.sfence();
    checker_.onTagSet(kWordA, device_.eventCount(), "pcas-test");

    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_EQ(checker_.report().count(ViolationKind::UnclearedTag), 1u);
}

TEST_F(PcasTest, MwcasCommitsAllWordsAndIsCheckerClean)
{
    initWord(device_, kWordA, 1);
    initWord(device_, kWordB, 2);
    initWord(device_, kWordC, 3);
    Pcas::MwcasEntry entries[] = {
        {kWordC, 3, 33}, // deliberately unsorted
        {kWordA, 1, 11},
        {kWordB, 2, 22},
    };
    ASSERT_EQ(pcas_.mwcas(entries, 3), PcasResult::Ok);
    EXPECT_EQ(pcas_.read(kWordA), 11u);
    EXPECT_EQ(pcas_.read(kWordB), 22u);
    EXPECT_EQ(pcas_.read(kWordC), 33u);
    EXPECT_EQ(pcas_.stats().mwcasCommits.load(), 1u);

    checker_.checkCleanShutdown(device_.eventCount());
    EXPECT_TRUE(checker_.report().empty())
        << checker_.report().toString();
}

TEST_F(PcasTest, MwcasWrongExpectedChangesNothing)
{
    initWord(device_, kWordA, 1);
    initWord(device_, kWordB, 2);
    Pcas::MwcasEntry entries[] = {
        {kWordA, 1, 11},
        {kWordB, 99, 22}, // stale expectation
    };
    EXPECT_EQ(pcas_.mwcas(entries, 2), PcasResult::Conflict);
    EXPECT_EQ(pcas_.read(kWordA), 1u);
    EXPECT_EQ(pcas_.read(kWordB), 2u);
}

// --- TornLines crash-point sweeps -------------------------------------------
//
// Crash at every persistence event a cas()/mwcas() raises, under the
// adversarial TornLines image composer, and check the protocol's core
// promise: the durable image never exposes a state the recovery
// contract cannot resolve to "all old" or "all new".

TEST(PcasCrashSweepTest, CasIsAtomicAtEveryCrashPoint)
{
    constexpr std::uint64_t kOld = 7, kNew = 9;
    bool completed = false;
    for (std::uint64_t k = 0; k < 64 && !completed; ++k) {
        PmConfig cfg = makeConfig();
        cfg.crashPolicy = CrashPolicy::TornLines;
        cfg.crashSeed = 1000 + k;
        PmDevice device(cfg);
        Pcas pcas(device, kDescOff, PcasConfig{});
        initWord(device, kWordA, kOld);

        PointCrashInjector injector(device.eventCount() + k);
        device.setCrashInjector(&injector);
        try {
            ASSERT_EQ(pcas.cas(kWordA, kOld, kNew), PcasResult::Ok);
            completed = true; // sweep covered every event of one cas
        } catch (const CrashException &) {
            std::uint64_t durable = 0;
            device.readDurable(kWordA, &durable, 8);
            EXPECT_EQ(durable & kPmwcasDescBit, 0u)
                << "single-word cas leaked a descriptor bit (k=" << k
                << ")";
            std::uint64_t v = pcasStrip(durable);
            EXPECT_TRUE(v == kOld || v == kNew)
                << "torn cas value " << v << " at crash point " << k;
        }
        device.setCrashInjector(nullptr);
    }
    EXPECT_TRUE(completed)
        << "cas never ran to completion within the sweep bound";
}

TEST(PcasCrashSweepTest, MwcasIsAllOrNothingAtEveryCrashPoint)
{
    constexpr std::uint64_t kOld[3] = {1, 2, 3};
    constexpr std::uint64_t kNew[3] = {11, 22, 33};
    constexpr PmOffset kWords[3] = {kWordA, kWordB, kWordC};

    bool completed = false;
    bool sawForward = false;
    bool sawBack = false;
    for (std::uint64_t k = 0; k < 512 && !completed; ++k) {
        PmConfig cfg = makeConfig();
        cfg.crashPolicy = CrashPolicy::TornLines;
        cfg.crashSeed = 2000 + k;
        PmDevice device(cfg);
        auto pcas = std::make_unique<Pcas>(device, kDescOff,
                                           PcasConfig{});
        for (int i = 0; i < 3; ++i)
            initWord(device, kWords[i], kOld[i]);

        Pcas::MwcasEntry entries[] = {
            {kWords[0], kOld[0], kNew[0]},
            {kWords[1], kOld[1], kNew[1]},
            {kWords[2], kOld[2], kNew[2]},
        };
        PointCrashInjector injector(device.eventCount() + k);
        device.setCrashInjector(&injector);
        try {
            ASSERT_EQ(pcas->mwcas(entries, 3), PcasResult::Ok);
            completed = true;
        } catch (const CrashException &) {
            device.setCrashInjector(nullptr);
            device.reviveAfterCrash();

            // Post-crash: a fresh Pcas (the DRAM slot bitmap does not
            // survive) rolls the descriptor forward or back.
            pcas = std::make_unique<Pcas>(device, kDescOff,
                                          PcasConfig{});
            pcas->recover();
            sawForward |= pcas->stats().recoveredForward.load() > 0;
            sawBack |= pcas->stats().recoveredBack.load() > 0;

            bool allOld = true, allNew = true;
            std::uint64_t got[3];
            for (int i = 0; i < 3; ++i) {
                got[i] = pcas->read(kWords[i]);
                allOld &= got[i] == kOld[i];
                allNew &= got[i] == kNew[i];
            }
            EXPECT_TRUE(allOld || allNew)
                << "mixed mwcas state at crash point " << k << ": {"
                << got[0] << ", " << got[1] << ", " << got[2] << "}";

            // Every descriptor slot must be Free again: a follow-up
            // mwcas over the recovered state has to succeed.
            Pcas::MwcasEntry redo[] = {
                {kWords[0], got[0], 101},
                {kWords[1], got[1], 102},
            };
            EXPECT_EQ(pcas->mwcas(redo, 2), PcasResult::Ok)
                << "slot not reusable after recovery (k=" << k << ")";
        }
        device.setCrashInjector(nullptr);
    }
    EXPECT_TRUE(completed)
        << "mwcas never ran to completion within the sweep bound";
    EXPECT_TRUE(sawBack) << "sweep never exercised a roll-back";
    EXPECT_TRUE(sawForward) << "sweep never exercised a roll-forward";
}

// --- Concurrency stress (run under TSan by the tsan CI job) -----------------

TEST(PcasStressTest, ConcurrentCasCountsEveryIncrement)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kIncrements = 250;
    constexpr std::uint64_t kStep = 2;

    PmDevice device(makeConfig());
    PersistencyChecker::Config ccfg;
    ccfg.trackRedundantFlush = false; // helping races flush flushed lines
    PersistencyChecker checker(ccfg);
    device.setChecker(&checker);
    Pcas pcas(device, kDescOff, PcasConfig{});
    initWord(device, kWordA, 0);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kIncrements; ++i) {
                for (;;) {
                    std::uint64_t cur = pcas.read(kWordA);
                    if (pcas.cas(kWordA, cur, cur + kStep) ==
                        PcasResult::Ok)
                        break;
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(pcas.read(kWordA), kThreads * kIncrements * kStep);
    EXPECT_EQ(pcas.stats().casCommits.load(), kThreads * kIncrements);
    EXPECT_EQ(checker.taggedWordCount(), 0u);
    checker.checkCleanShutdown(device.eventCount());
    EXPECT_TRUE(checker.report().empty())
        << checker.report().toString();
    device.setChecker(nullptr);
}

TEST(PcasStressTest, ConcurrentMwcasKeepsWordsInLockstep)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kIncrements = 100;

    PmDevice device(makeConfig());
    Pcas pcas(device, kDescOff, PcasConfig{});
    initWord(device, kWordA, 0);
    initWord(device, kWordB, 0);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kIncrements; ++i) {
                for (;;) {
                    std::uint64_t a = pcas.read(kWordA);
                    std::uint64_t b = pcas.read(kWordB);
                    Pcas::MwcasEntry entries[] = {
                        {kWordA, a, a + 1},
                        {kWordB, b, b + 1},
                    };
                    if (pcas.mwcas(entries, 2) == PcasResult::Ok)
                        break;
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();

    // Both words advance together or not at all; the final state must
    // show exactly one increment per successful mwcas on each word.
    EXPECT_EQ(pcas.read(kWordA), kThreads * kIncrements);
    EXPECT_EQ(pcas.read(kWordB), kThreads * kIncrements);
    EXPECT_EQ(pcas.stats().mwcasCommits.load(),
              kThreads * kIncrements);
}

} // namespace
} // namespace fasp::pm
