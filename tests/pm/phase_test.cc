/**
 * @file
 * Unit tests for the phase tracker and its interaction with the device.
 */

#include <gtest/gtest.h>

#include "pm/device.h"
#include "pm/phase.h"

namespace fasp::pm {
namespace {

TEST(PhaseTrackerTest, StartsAtZero)
{
    PhaseTracker tracker;
    EXPECT_EQ(tracker.totalNs(Component::Search), 0u);
    EXPECT_EQ(tracker.grandTotalNs(), 0u);
    EXPECT_EQ(tracker.grandTotalFlushes(), 0u);
}

TEST(PhaseTrackerTest, ModelTimeAttributedToCurrentComponent)
{
    PhaseTracker tracker;
    {
        PhaseScope scope(&tracker, Component::LogFlush);
        tracker.addModelNs(500);
    }
    {
        PhaseScope scope(&tracker, Component::Checkpoint);
        tracker.addModelNs(200);
    }
    EXPECT_EQ(tracker.modelNs(Component::LogFlush), 500u);
    EXPECT_EQ(tracker.modelNs(Component::Checkpoint), 200u);
    EXPECT_EQ(tracker.modelNs(Component::Search), 0u);
}

TEST(PhaseTrackerTest, NestedScopesAttributeExclusively)
{
    PhaseTracker tracker;
    {
        PhaseScope outer(&tracker, Component::Search);
        tracker.addModelNs(100);
        {
            PhaseScope inner(&tracker, Component::FlushRecord);
            tracker.addModelNs(40);
        }
        tracker.addModelNs(1);
    }
    EXPECT_EQ(tracker.modelNs(Component::Search), 101u);
    EXPECT_EQ(tracker.modelNs(Component::FlushRecord), 40u);
}

TEST(PhaseTrackerTest, WallTimeAccumulates)
{
    PhaseTracker tracker;
    {
        PhaseScope scope(&tracker, Component::NvwalCompute);
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < 100000; ++i)
            sink = sink + i;
    }
    EXPECT_GT(tracker.wallNs(Component::NvwalCompute), 0u);
}

TEST(PhaseTrackerTest, ResetClears)
{
    PhaseTracker tracker;
    {
        PhaseScope scope(&tracker, Component::Search);
        tracker.addModelNs(5);
        tracker.countFlush();
    }
    tracker.reset();
    EXPECT_EQ(tracker.modelNs(Component::Search), 0u);
    EXPECT_EQ(tracker.flushCount(Component::Search), 0u);
}

TEST(PhaseTrackerTest, NullTrackerScopeIsNoop)
{
    PhaseScope scope(nullptr, Component::Search); // must not crash
}

TEST(PhaseDeviceTest, DeviceChargesIntoActiveComponent)
{
    PmConfig cfg;
    cfg.size = 4096;
    cfg.latency = LatencyModel::of(300, 700);
    PmDevice dev(cfg);
    PhaseTracker tracker;
    dev.setPhaseTracker(&tracker);

    {
        PhaseScope scope(&tracker, Component::FlushRecord);
        dev.writeU64(0, 1);
        dev.clflush(0);
    }
    {
        PhaseScope scope(&tracker, Component::LogFlush);
        dev.writeU64(64, 2);
        dev.clflush(64);
        dev.clflush(64);
    }
    EXPECT_EQ(tracker.modelNs(Component::FlushRecord), 700u);
    EXPECT_EQ(tracker.flushCount(Component::FlushRecord), 1u);
    EXPECT_EQ(tracker.modelNs(Component::LogFlush), 1400u);
    EXPECT_EQ(tracker.flushCount(Component::LogFlush), 2u);
    EXPECT_EQ(tracker.grandTotalFlushes(), 3u);
}

TEST(PhaseDeviceTest, ReadMissChargedToActiveComponent)
{
    PmConfig cfg;
    cfg.size = 1u << 16;
    cfg.latency = LatencyModel::of(620, 300); // penalty 500
    PmDevice dev(cfg);
    PhaseTracker tracker;
    dev.setPhaseTracker(&tracker);
    dev.invalidateTagCache();

    std::uint8_t buf[8];
    {
        PhaseScope scope(&tracker, Component::Search);
        dev.read(4096, buf, 8);
    }
    EXPECT_EQ(tracker.modelNs(Component::Search), 500u);
    EXPECT_EQ(tracker.readMissCount(Component::Search), 1u);
}

TEST(PhaseTrackerTest, ComponentNamesAreDistinct)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Component::NumComponents); ++i) {
        const char *name = componentName(static_cast<Component>(i));
        EXPECT_STRNE(name, "?");
    }
}

} // namespace
} // namespace fasp::pm
