/**
 * @file
 * Unit tests for the PM device: data path, cache simulation, crash
 * semantics, latency accounting, and crash injection.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pm/device.h"

namespace fasp::pm {
namespace {

/** Read the durable u64 at offset 0 (bypasses the simulated cache). */
std::uint64_t
loadFromDurable(PmDevice &dev)
{
    std::uint64_t v;
    dev.readDurable(0, &v, 8);
    return v;
}

PmConfig
smallConfig(PmMode mode)
{
    PmConfig cfg;
    cfg.size = 1u << 16;
    cfg.mode = mode;
    cfg.latency = LatencyModel::of(300, 300);
    return cfg;
}

TEST(PmDeviceDirectTest, WriteReadRoundTrip)
{
    PmDevice dev(smallConfig(PmMode::Direct));
    const char msg[] = "hello persistent world";
    dev.write(128, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    dev.read(128, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(PmDeviceDirectTest, TypedAccessors)
{
    PmDevice dev(smallConfig(PmMode::Direct));
    dev.writeU16(0, 0xbeef);
    dev.writeU32(8, 0xdeadbeefu);
    dev.writeU64(16, 0x0123456789abcdefull);
    EXPECT_EQ(dev.readU16(0), 0xbeef);
    EXPECT_EQ(dev.readU32(8), 0xdeadbeefu);
    EXPECT_EQ(dev.readU64(16), 0x0123456789abcdefull);
}

TEST(PmDeviceDirectTest, MemsetFills)
{
    PmDevice dev(smallConfig(PmMode::Direct));
    dev.memset(100, 0xab, 1000);
    std::vector<std::uint8_t> buf(1000);
    dev.read(100, buf.data(), buf.size());
    for (auto b : buf)
        EXPECT_EQ(b, 0xab);
}

TEST(PmDeviceDirectTest, DirectWritesAreImmediatelyDurable)
{
    PmDevice dev(smallConfig(PmMode::Direct));
    dev.writeU64(64, 42);
    EXPECT_EQ(dev.durableData()[64], 42);
}

TEST(PmDeviceCacheSimTest, StoresAreVolatileUntilFlushed)
{
    PmDevice dev(smallConfig(PmMode::CacheSim));
    dev.writeU64(64, 42);
    // Visible through the cache...
    EXPECT_EQ(dev.readU64(64), 42u);
    // ...but not durable yet.
    EXPECT_EQ(dev.durableData()[64], 0);
    EXPECT_EQ(dev.dirtyLineCount(), 1u);

    dev.clflush(64);
    EXPECT_EQ(dev.durableData()[64], 42);
    EXPECT_EQ(dev.dirtyLineCount(), 0u);
}

TEST(PmDeviceCacheSimTest, CrashDropsUnflushedLines)
{
    PmDevice dev(smallConfig(PmMode::CacheSim));
    dev.writeU64(0, 11);
    dev.clflush(0);
    dev.writeU64(128, 22); // never flushed
    dev.crash();
    EXPECT_TRUE(dev.crashed());

    dev.reviveAfterCrash();
    EXPECT_EQ(dev.readU64(0), 11u);
    EXPECT_EQ(dev.readU64(128), 0u);
}

TEST(PmDeviceCacheSimTest, FlushRangeCoversSpanningLines)
{
    PmDevice dev(smallConfig(PmMode::CacheSim));
    std::vector<std::uint8_t> data(200, 0x5a);
    dev.write(30, data.data(), data.size()); // spans 4 lines
    EXPECT_EQ(dev.dirtyLineCount(), 4u);
    dev.flushRange(30, 200);
    EXPECT_EQ(dev.dirtyLineCount(), 0u);
    for (std::size_t i = 0; i < 200; ++i)
        EXPECT_EQ(dev.durableData()[30 + i], 0x5a);
}

TEST(PmDeviceCacheSimTest, ReadSeesCacheOverDurable)
{
    PmDevice dev(smallConfig(PmMode::CacheSim));
    dev.writeU64(0, 1);
    dev.clflush(0);
    dev.writeU64(0, 2); // dirty again
    EXPECT_EQ(dev.readU64(0), 2u);
    EXPECT_EQ(loadFromDurable(dev), 1u);
}

TEST(PmDeviceCacheSimTest, PartialLineWritePreservesRest)
{
    PmDevice dev(smallConfig(PmMode::CacheSim));
    dev.writeU64(0, 0x1111111111111111ull);
    dev.clflush(0);
    dev.writeU16(2, 0x2222); // dirty the same line partially
    dev.clflush(0);
    std::uint64_t v;
    dev.readDurable(0, &v, 8);
    EXPECT_EQ(v, 0x1111111122221111ull);
}

TEST(PmDeviceStatsTest, CountersTrackOperations)
{
    PmDevice dev(smallConfig(PmMode::Direct));
    dev.writeU64(0, 1);
    dev.writeU64(8, 2);
    dev.clflush(0);
    dev.sfence();
    std::uint64_t v = dev.readU64(0);
    (void)v;
    EXPECT_EQ(dev.stats().stores, 2u);
    EXPECT_EQ(dev.stats().storeBytes, 16u);
    EXPECT_EQ(dev.stats().clflushes, 1u);
    EXPECT_EQ(dev.stats().fences, 1u);
    EXPECT_GE(dev.stats().loads, 1u);
}

TEST(PmDeviceStatsTest, FlushChargesWriteLatency)
{
    PmDevice dev(smallConfig(PmMode::Direct));
    std::uint64_t before = dev.stats().modelNs;
    dev.writeU64(0, 1);
    dev.clflush(0);
    EXPECT_EQ(dev.stats().modelNs - before, 300u);
}

TEST(PmDeviceStatsTest, ReadMissChargesPenaltyOncePerLine)
{
    auto cfg = smallConfig(PmMode::Direct);
    cfg.latency = LatencyModel::of(500, 500); // penalty = 500-120 = 380
    PmDevice dev(cfg);
    dev.invalidateTagCache();
    std::uint64_t base = dev.stats().modelNs;

    std::uint8_t buf[8];
    dev.read(4096, buf, 8); // miss
    EXPECT_EQ(dev.stats().modelNs - base, 380u);
    EXPECT_EQ(dev.stats().readMisses, 1u);

    dev.read(4100, buf, 8); // same line: hit
    EXPECT_EQ(dev.stats().modelNs - base, 380u);

    dev.read(4160, buf, 8); // next line: miss
    EXPECT_EQ(dev.stats().modelNs - base, 760u);
}

TEST(PmDeviceStatsTest, WriteAllocatePreventsReadMissCharge)
{
    PmDevice dev(smallConfig(PmMode::Direct));
    dev.invalidateTagCache();
    dev.writeU64(8192, 3); // installs the line
    std::uint64_t base = dev.stats().modelNs;
    std::uint8_t buf[8];
    dev.read(8192, buf, 8);
    EXPECT_EQ(dev.stats().modelNs, base);
}

TEST(PmDeviceStatsTest, ClflushEvictsLineFromReadCache)
{
    PmDevice dev(smallConfig(PmMode::Direct));
    dev.writeU64(4096, 9);
    dev.clflush(4096);
    std::uint64_t base = dev.stats().readMisses;
    std::uint8_t buf[8];
    dev.read(4096, buf, 8);
    EXPECT_EQ(dev.stats().readMisses, base + 1);
}

TEST(PmDeviceStatsTest, DramSpeedChargesNoReadPenalty)
{
    auto cfg = smallConfig(PmMode::Direct);
    cfg.latency = LatencyModel::dramSpeed();
    PmDevice dev(cfg);
    dev.invalidateTagCache();
    std::uint8_t buf[64];
    dev.read(0, buf, 64);
    EXPECT_EQ(dev.stats().modelNs, 0u);
}

TEST(PmDeviceCrashInjectTest, InjectedCrashThrowsAndDropsCache)
{
    PmDevice dev(smallConfig(PmMode::CacheSim));
    dev.writeU64(0, 7); // event 0
    PointCrashInjector injector(1);
    dev.setCrashInjector(&injector);
    EXPECT_THROW(dev.writeU64(64, 8), CrashException); // event 1
    EXPECT_TRUE(dev.crashed());
    dev.setCrashInjector(nullptr);
    dev.reviveAfterCrash();
    EXPECT_EQ(dev.readU64(0), 0u); // the unflushed store was dropped
}

TEST(PmDeviceCrashInjectTest, EventIndexCountsStoresFlushesFences)
{
    PmDevice dev(smallConfig(PmMode::CacheSim));
    dev.writeU64(0, 1);
    dev.clflush(0);
    dev.sfence();
    EXPECT_EQ(dev.eventCount(), 3u);
}

TEST(PmDeviceCrashPolicyTest, TornLinesPersistWordSubsets)
{
    auto cfg = smallConfig(PmMode::CacheSim);
    cfg.crashPolicy = CrashPolicy::TornLines;
    cfg.crashSeed = 12345;
    PmDevice dev(cfg);
    // Dirty a full line with a recognizable pattern.
    std::uint8_t line[64];
    std::memset(line, 0xff, sizeof(line));
    dev.write(0, line, sizeof(line));
    dev.crash();
    dev.reviveAfterCrash();
    // Some words persisted, some did not (seed chosen to mix). Count.
    int persisted = 0;
    for (int w = 0; w < 8; ++w) {
        std::uint64_t v;
        dev.readDurable(w * 8, &v, 8);
        if (v == ~0ull)
            ++persisted;
        else
            EXPECT_EQ(v, 0u) << "torn write must be word-granular";
    }
    EXPECT_GT(persisted, 0);
    EXPECT_LT(persisted, 8);
}

TEST(PmDeviceCrashPolicyTest, RandomLinesKeepWholeLines)
{
    auto cfg = smallConfig(PmMode::CacheSim);
    cfg.crashPolicy = CrashPolicy::RandomLines;
    cfg.crashSeed = 99;
    PmDevice dev(cfg);
    std::uint8_t line[64];
    std::memset(line, 0xee, sizeof(line));
    for (int l = 0; l < 16; ++l)
        dev.write(l * 64, line, sizeof(line));
    dev.crash();
    dev.reviveAfterCrash();
    // Every line is all-0xee or all-zero; never mixed.
    for (int l = 0; l < 16; ++l) {
        std::uint8_t buf[64];
        dev.readDurable(l * 64, buf, 64);
        bool all_set = true, all_clear = true;
        for (auto b : buf) {
            all_set &= b == 0xee;
            all_clear &= b == 0;
        }
        EXPECT_TRUE(all_set || all_clear) << "line " << l;
    }
}

} // namespace
} // namespace fasp::pm
