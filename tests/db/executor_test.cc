/**
 * @file
 * Focused executor tests: expression evaluation semantics, primary-key
 * range planning behaviour, type handling, catalog persistence, and
 * result rendering. Complements database_test.cc's end-to-end runs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "db/database.h"
#include "pm/device.h"

namespace fasp::db {
namespace {

using core::EngineConfig;
using core::EngineKind;
using pm::PmConfig;
using pm::PmDevice;

class ExecutorTest : public ::testing::Test
{
  protected:
    ExecutorTest()
    {
        PmConfig cfg;
        cfg.size = 32u << 20;
        device_ = std::make_unique<PmDevice>(cfg);
        EngineConfig engine_cfg;
        engine_cfg.kind = EngineKind::Fast;
        db_ = std::move(
            *Database::open(*device_, engine_cfg, /*format=*/true));
        exec("CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, "
             "b REAL, c TEXT)");
        exec("INSERT INTO t VALUES (1, 10, 1.5, 'one'), "
             "(2, 20, 2.5, 'two'), (3, 30, 3.5, 'three'), "
             "(4, 40, 4.5, 'four'), (5, 50, 5.5, 'five')");
    }

    ResultSet
    exec(const std::string &sql)
    {
        auto result = db_->exec(sql);
        EXPECT_TRUE(result.isOk())
            << sql << " -> " << result.status().toString();
        return result.isOk() ? std::move(*result) : ResultSet{};
    }

    std::unique_ptr<PmDevice> device_;
    std::unique_ptr<Database> db_;
};

TEST_F(ExecutorTest, ArithmeticInProjectedPredicates)
{
    auto rs = exec("SELECT id FROM t WHERE a + 10 = 30");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asInteger(), 2);

    rs = exec("SELECT id FROM t WHERE a * 2 > 60 AND a / 10 < 5");
    ASSERT_EQ(rs.rows.size(), 1u); // a=40 only
    EXPECT_EQ(rs.rows[0][0].asInteger(), 4);
}

TEST_F(ExecutorTest, IntRealCoercion)
{
    auto rs = exec("SELECT id FROM t WHERE b > 3");
    EXPECT_EQ(rs.rows.size(), 3u); // 3.5, 4.5, 5.5
    rs = exec("SELECT id FROM t WHERE b = 2.5");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asInteger(), 2);
    rs = exec("SELECT id FROM t WHERE a = 20.0");
    EXPECT_EQ(rs.rows.size(), 1u);
}

TEST_F(ExecutorTest, TextComparison)
{
    auto rs = exec("SELECT id FROM t WHERE c = 'three'");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asInteger(), 3);
    rs = exec("SELECT id FROM t WHERE c < 'four'"); // 'five' only
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asInteger(), 5);
}

TEST_F(ExecutorTest, LogicalOperators)
{
    auto rs = exec("SELECT id FROM t WHERE a = 10 OR a = 50");
    EXPECT_EQ(rs.rows.size(), 2u);
    rs = exec("SELECT id FROM t WHERE NOT (a = 10)");
    EXPECT_EQ(rs.rows.size(), 4u);
    rs = exec("SELECT id FROM t WHERE a > 10 AND NOT a = 30 AND "
              "(c = 'two' OR c = 'four')");
    EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(ExecutorTest, DivisionByZeroYieldsNull)
{
    // NULL is not truthy, so the row is filtered out, not an error.
    auto rs = exec("SELECT id FROM t WHERE a / 0 = 1");
    EXPECT_EQ(rs.rows.size(), 0u);
}

TEST_F(ExecutorTest, PkRangePlanningMatchesFullScanSemantics)
{
    // These exercise the KeyRange extractor: results must be identical
    // to predicate filtering even when the planner narrows the scan.
    auto rs = exec("SELECT id FROM t WHERE id = 3");
    ASSERT_EQ(rs.rows.size(), 1u);
    rs = exec("SELECT id FROM t WHERE 3 = id");
    ASSERT_EQ(rs.rows.size(), 1u);
    rs = exec("SELECT id FROM t WHERE id >= 2 AND id < 5");
    EXPECT_EQ(rs.rows.size(), 3u);
    rs = exec("SELECT id FROM t WHERE 2 <= id AND 5 > id");
    EXPECT_EQ(rs.rows.size(), 3u);
    rs = exec("SELECT id FROM t WHERE id = 2 AND id = 4");
    EXPECT_EQ(rs.rows.size(), 0u) << "contradictory point constraints";
    rs = exec("SELECT id FROM t WHERE id = -5");
    EXPECT_EQ(rs.rows.size(), 0u) << "negative rowids never match";
    rs = exec("SELECT id FROM t WHERE id > 3 OR id = 1");
    EXPECT_EQ(rs.rows.size(), 3u)
        << "disjunctions must not narrow the scan";
}

TEST_F(ExecutorTest, UpdateWithExpressionsOverOldValues)
{
    exec("UPDATE t SET a = a + 1, c = 'bumped' WHERE id >= 4");
    auto rs = exec("SELECT a, c FROM t WHERE id = 5");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asInteger(), 51);
    EXPECT_EQ(rs.rows[0][1].asText(), "bumped");
    rs = exec("SELECT a FROM t WHERE id = 3");
    EXPECT_EQ(rs.rows[0][0].asInteger(), 30);
}

TEST_F(ExecutorTest, DeleteAllThenTableIsEmpty)
{
    auto deleted = exec("DELETE FROM t");
    EXPECT_EQ(deleted.affected, 5u);
    auto rs = exec("SELECT * FROM t");
    EXPECT_EQ(rs.rows.size(), 0u);
}

TEST_F(ExecutorTest, NullHandling)
{
    exec("INSERT INTO t VALUES (6, NULL, NULL, NULL)");
    auto rs = exec("SELECT a FROM t WHERE id = 6");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_TRUE(rs.rows[0][0].isNull());
    // NULL = NULL evaluates truthy here? Our Value::compare treats
    // NULLs as equal, so the predicate matches row 6 only.
    rs = exec("SELECT id FROM t WHERE a = NULL");
    EXPECT_EQ(rs.rows.size(), 1u);
}

TEST_F(ExecutorTest, ResultSetRendering)
{
    auto rs = exec("SELECT id, c FROM t WHERE id <= 2");
    std::string text = rs.toString();
    EXPECT_NE(text.find("id"), std::string::npos);
    EXPECT_NE(text.find("'one'"), std::string::npos);
    EXPECT_NE(text.find("'two'"), std::string::npos);
    EXPECT_NE(text.find('\n'), std::string::npos);
}

TEST_F(ExecutorTest, CatalogSurvivesReopenWithManyTables)
{
    for (int i = 0; i < 20; ++i) {
        exec("CREATE TABLE extra_" + std::to_string(i) +
             " (id INTEGER PRIMARY KEY, v TEXT)");
        exec("INSERT INTO extra_" + std::to_string(i) + " VALUES (" +
             std::to_string(i) + ", 'payload')");
    }
    db_.reset();

    EngineConfig engine_cfg;
    engine_cfg.kind = EngineKind::Fast;
    db_ = std::move(
        *Database::open(*device_, engine_cfg, /*format=*/false));
    for (int i = 0; i < 20; ++i) {
        auto rs = exec("SELECT v FROM extra_" + std::to_string(i) +
                       " WHERE id = " + std::to_string(i));
        ASSERT_EQ(rs.rows.size(), 1u) << i;
        EXPECT_EQ(rs.rows[0][0].asText(), "payload");
    }
    // The original table is intact too.
    auto rs = exec("SELECT * FROM t");
    EXPECT_EQ(rs.rows.size(), 5u);
}

TEST_F(ExecutorTest, ImplicitRowidsContinueAfterDeleteOfMax)
{
    exec("CREATE TABLE log (msg TEXT)");
    exec("INSERT INTO log VALUES ('a')");
    exec("INSERT INTO log VALUES ('b')");
    exec("DELETE FROM log WHERE msg = 'b'");
    // max+1 allocation: the freed rowid may be reused (SQLite reuses
    // too without AUTOINCREMENT); either way inserts must succeed and
    // rows stay distinct.
    exec("INSERT INTO log VALUES ('c')");
    exec("INSERT INTO log VALUES ('d')");
    auto rs = exec("SELECT msg FROM log");
    EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(ExecutorTest, CountStar)
{
    auto rs = exec("SELECT COUNT(*) FROM t");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asInteger(), 5);
    EXPECT_EQ(rs.columns[0], "COUNT(*)");

    rs = exec("SELECT COUNT(*) FROM t WHERE a >= 30");
    EXPECT_EQ(rs.rows[0][0].asInteger(), 3);

    rs = exec("SELECT COUNT(*) FROM t WHERE id = 99");
    EXPECT_EQ(rs.rows[0][0].asInteger(), 0);
}

TEST_F(ExecutorTest, ExecScriptRunsAllStatements)
{
    auto rs = db_->execScript(
        "CREATE TABLE s (id INTEGER PRIMARY KEY, v TEXT);\n"
        "INSERT INTO s VALUES (1, 'semi;colon');\n"
        "INSERT INTO s VALUES (2, 'two');\n"
        "SELECT COUNT(*) FROM s;");
    ASSERT_TRUE(rs.isOk()) << rs.status().toString();
    ASSERT_EQ(rs->rows.size(), 1u);
    EXPECT_EQ(rs->rows[0][0].asInteger(), 2);

    // Quoted semicolons must not split statements.
    auto check = exec("SELECT v FROM s WHERE id = 1");
    EXPECT_EQ(check.rows[0][0].asText(), "semi;colon");

    // Errors stop the script.
    auto bad = db_->execScript(
        "INSERT INTO s VALUES (3, 'x'); BOGUS; "
        "INSERT INTO s VALUES (4, 'y');");
    EXPECT_FALSE(bad.isOk());
    auto n = exec("SELECT COUNT(*) FROM s");
    EXPECT_EQ(n.rows[0][0].asInteger(), 3)
        << "statements after the error must not run";
}

} // namespace
} // namespace fasp::db
