/**
 * @file
 * End-to-end SQL tests over the Database facade, parameterized across
 * all five storage engines, plus persistence and crash checks at the
 * SQL level.
 */

#include <gtest/gtest.h>

#include <memory>

#include "db/database.h"
#include "pm/device.h"

namespace fasp::db {
namespace {

using core::EngineConfig;
using core::EngineKind;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

class DatabaseTest : public ::testing::TestWithParam<EngineKind>
{
  protected:
    DatabaseTest()
    {
        PmConfig cfg;
        cfg.size = 32u << 20;
        cfg.mode = PmMode::Direct;
        device_ = std::make_unique<PmDevice>(cfg);
        config_.kind = GetParam();
        auto db = Database::open(*device_, config_, /*format=*/true);
        EXPECT_TRUE(db.isOk()) << db.status().toString();
        db_ = std::move(*db);
    }

    ResultSet
    mustExec(const std::string &sql)
    {
        auto result = db_->exec(sql);
        EXPECT_TRUE(result.isOk())
            << sql << " -> " << result.status().toString();
        if (!result.isOk())
            return {};
        return std::move(*result);
    }

    std::unique_ptr<PmDevice> device_;
    EngineConfig config_;
    std::unique_ptr<Database> db_;
};

TEST_P(DatabaseTest, CreateInsertSelect)
{
    mustExec("CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, "
             "age INTEGER)");
    mustExec("INSERT INTO users VALUES (1, 'alice', 30)");
    mustExec("INSERT INTO users VALUES (2, 'bob', 25), (3, 'eve', 41)");

    auto rs = mustExec("SELECT * FROM users");
    ASSERT_EQ(rs.rows.size(), 3u);
    EXPECT_EQ(rs.columns.size(), 3u);
    EXPECT_EQ(rs.rows[0][1].asText(), "alice");
    EXPECT_EQ(rs.rows[2][2].asInteger(), 41);
}

TEST_P(DatabaseTest, PointLookupByPrimaryKey)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    for (int i = 1; i <= 50; ++i) {
        mustExec("INSERT INTO t VALUES (" + std::to_string(i) +
                 ", 'row" + std::to_string(i) + "')");
    }
    auto rs = mustExec("SELECT v FROM t WHERE id = 37");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asText(), "row37");
}

TEST_P(DatabaseTest, RangeQueryAndPredicates)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    for (int i = 1; i <= 40; ++i) {
        mustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                 std::to_string(i * 10) + ")");
    }
    auto rs = mustExec(
        "SELECT id FROM t WHERE id BETWEEN 10 AND 20 AND v > 150");
    ASSERT_EQ(rs.rows.size(), 5u); // ids 16..20
    EXPECT_EQ(rs.rows[0][0].asInteger(), 16);
    EXPECT_EQ(rs.rows[4][0].asInteger(), 20);
}

TEST_P(DatabaseTest, UpdateAndDelete)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    for (int i = 1; i <= 10; ++i) {
        mustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", 0)");
    }
    auto updated = mustExec("UPDATE t SET v = v + 5 WHERE id <= 4");
    EXPECT_EQ(updated.affected, 4u);
    auto deleted = mustExec("DELETE FROM t WHERE id > 8");
    EXPECT_EQ(deleted.affected, 2u);

    auto rs = mustExec("SELECT * FROM t WHERE v = 5");
    EXPECT_EQ(rs.rows.size(), 4u);
    rs = mustExec("SELECT * FROM t");
    EXPECT_EQ(rs.rows.size(), 8u);
}

TEST_P(DatabaseTest, OrderByAndLimit)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    mustExec("INSERT INTO t VALUES (1, 30), (2, 10), (3, 20)");
    auto rs = mustExec("SELECT id FROM t ORDER BY v");
    ASSERT_EQ(rs.rows.size(), 3u);
    EXPECT_EQ(rs.rows[0][0].asInteger(), 2);
    EXPECT_EQ(rs.rows[2][0].asInteger(), 1);

    rs = mustExec("SELECT id FROM t ORDER BY v DESC LIMIT 1");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].asInteger(), 1);
}

TEST_P(DatabaseTest, ImplicitRowidTable)
{
    mustExec("CREATE TABLE log (msg TEXT)");
    mustExec("INSERT INTO log VALUES ('one')");
    mustExec("INSERT INTO log VALUES ('two')");
    auto rs = mustExec("SELECT * FROM log");
    ASSERT_EQ(rs.rows.size(), 2u);
    EXPECT_EQ(rs.rows[0][0].asText(), "one");
    EXPECT_EQ(rs.rows[1][0].asText(), "two");
}

TEST_P(DatabaseTest, ExplicitTransactionCommitAndRollback)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");

    mustExec("BEGIN");
    EXPECT_TRUE(db_->inTransaction());
    mustExec("INSERT INTO t VALUES (1, 'kept')");
    mustExec("INSERT INTO t VALUES (2, 'kept')");
    mustExec("COMMIT");
    EXPECT_FALSE(db_->inTransaction());

    mustExec("BEGIN");
    mustExec("INSERT INTO t VALUES (3, 'dropped')");
    mustExec("UPDATE t SET v = 'changed' WHERE id = 1");
    mustExec("ROLLBACK");

    auto rs = mustExec("SELECT * FROM t");
    ASSERT_EQ(rs.rows.size(), 2u);
    EXPECT_EQ(rs.rows[0][1].asText(), "kept");
}

TEST_P(DatabaseTest, ErrorsSurfaceCleanly)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    EXPECT_EQ(db_->exec("SELECT * FROM missing").status().code(),
              StatusCode::NotFound);
    EXPECT_EQ(db_->exec("CREATE TABLE t (x INTEGER)").status().code(),
              StatusCode::AlreadyExists);
    EXPECT_EQ(db_->exec("INSERT INTO t VALUES (1)").status().code(),
              StatusCode::InvalidArgument); // wrong arity
    mustExec("INSERT INTO t VALUES (1, 'a')");
    EXPECT_EQ(
        db_->exec("INSERT INTO t VALUES (1, 'dup')").status().code(),
        StatusCode::AlreadyExists);
    EXPECT_EQ(db_->exec("bogus sql").status().code(),
              StatusCode::ParseError);
    // The database is still usable.
    auto rs = mustExec("SELECT * FROM t");
    EXPECT_EQ(rs.rows.size(), 1u);
}

TEST_P(DatabaseTest, DropTable)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    mustExec("INSERT INTO t VALUES (1, 'x')");
    mustExec("DROP TABLE t");
    EXPECT_FALSE(db_->exec("SELECT * FROM t").isOk());
    // Recreating reuses the name.
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, w INTEGER)");
    auto rs = mustExec("SELECT * FROM t");
    EXPECT_EQ(rs.rows.size(), 0u);
}

TEST_P(DatabaseTest, PersistsAcrossReopen)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    mustExec("INSERT INTO t VALUES (1, 'persisted'), (2, 'also')");
    db_.reset(); // close

    auto reopened = Database::open(*device_, config_, /*format=*/false);
    ASSERT_TRUE(reopened.isOk()) << reopened.status().toString();
    auto rs = (*reopened)->exec("SELECT v FROM t WHERE id = 1");
    ASSERT_TRUE(rs.isOk());
    ASSERT_EQ(rs->rows.size(), 1u);
    EXPECT_EQ(rs->rows[0][0].asText(), "persisted");
}

TEST_P(DatabaseTest, ManyRowsThroughSql)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    for (int i = 1; i <= 400; ++i) {
        mustExec("INSERT INTO t VALUES (" + std::to_string(i) +
                 ", 'value-" + std::to_string(i) + "')");
    }
    auto rs = mustExec("SELECT * FROM t WHERE id > 390");
    EXPECT_EQ(rs.rows.size(), 10u);
    rs = mustExec("SELECT * FROM t");
    EXPECT_EQ(rs.rows.size(), 400u);
}

TEST_P(DatabaseTest, MultipleTables)
{
    mustExec("CREATE TABLE a (id INTEGER PRIMARY KEY, v TEXT)");
    mustExec("CREATE TABLE b (id INTEGER PRIMARY KEY, w INTEGER)");
    mustExec("INSERT INTO a VALUES (1, 'in-a')");
    mustExec("INSERT INTO b VALUES (1, 99)");
    auto rs = mustExec("SELECT * FROM a");
    EXPECT_EQ(rs.rows[0][1].asText(), "in-a");
    rs = mustExec("SELECT * FROM b");
    EXPECT_EQ(rs.rows[0][1].asInteger(), 99);
}

TEST_P(DatabaseTest, BlobAndRealColumns)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, score REAL, "
             "payload BLOB)");
    mustExec("INSERT INTO t VALUES (1, 2.5, x'deadbeef')");
    auto rs = mustExec("SELECT score, payload FROM t WHERE id = 1");
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(rs.rows[0][0].asReal(), 2.5);
    ASSERT_EQ(rs.rows[0][1].asBlob().size(), 4u);
    EXPECT_EQ(rs.rows[0][1].asBlob()[0], 0xde);
}

TEST_P(DatabaseTest, PrimaryKeyChangeViaUpdate)
{
    mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
    mustExec("INSERT INTO t VALUES (1, 'movable')");
    mustExec("UPDATE t SET id = 100 WHERE id = 1");
    auto rs = mustExec("SELECT * FROM t WHERE id = 100");
    ASSERT_EQ(rs.rows.size(), 1u);
    rs = mustExec("SELECT * FROM t WHERE id = 1");
    EXPECT_EQ(rs.rows.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, DatabaseTest,
    ::testing::Values(EngineKind::Fast, EngineKind::Fash,
                      EngineKind::Nvwal, EngineKind::LegacyWal,
                      EngineKind::Journal),
    [](const ::testing::TestParamInfo<EngineKind> &info) {
        return core::engineKindName(info.param);
    });

TEST(DatabaseCrashTest, SqlLevelCrashAtomicity)
{
    PmConfig pm_cfg;
    pm_cfg.size = 16u << 20;
    pm_cfg.mode = PmMode::CacheSim;
    PmDevice device(pm_cfg);
    EngineConfig config;
    config.kind = EngineKind::Fast;

    {
        auto db = Database::open(device, config, /*format=*/true);
        ASSERT_TRUE(db.isOk());
        ASSERT_TRUE((*db)->exec("CREATE TABLE t (id INTEGER PRIMARY "
                                "KEY, v TEXT)")
                        .isOk());
        ASSERT_TRUE(
            (*db)->exec("INSERT INTO t VALUES (1, 'committed')")
                .isOk());
        // An explicit transaction left open at "power failure".
        ASSERT_TRUE((*db)->exec("BEGIN").isOk());
        ASSERT_TRUE(
            (*db)->exec("INSERT INTO t VALUES (2, 'uncommitted')")
                .isOk());
        device.crash();
        device.reviveAfterCrash();
        // db destroyed without commit.
    }

    auto db = Database::open(device, config, /*format=*/false);
    ASSERT_TRUE(db.isOk()) << db.status().toString();
    auto rs = (*db)->exec("SELECT * FROM t");
    ASSERT_TRUE(rs.isOk());
    ASSERT_EQ(rs->rows.size(), 1u);
    EXPECT_EQ(rs->rows[0][1].asText(), "committed");
}

} // namespace
} // namespace fasp::db
