/**
 * @file
 * Unit tests for the SQL front end: values, row codec, tokenizer, and
 * parser (no storage engine involved).
 */

#include <gtest/gtest.h>

#include "db/parser.h"
#include "db/row_codec.h"
#include "db/tokenizer.h"
#include "db/value.h"

namespace fasp::db {
namespace {

// --- Value -------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors)
{
    EXPECT_TRUE(Value::null().isNull());
    EXPECT_EQ(Value::integer(42).asInteger(), 42);
    EXPECT_DOUBLE_EQ(Value::real(2.5).asReal(), 2.5);
    EXPECT_EQ(Value::text("hi").asText(), "hi");
    EXPECT_EQ(Value::blob({1, 2, 3}).asBlob().size(), 3u);
}

TEST(ValueTest, NumericCoercionInComparison)
{
    EXPECT_EQ(Value::integer(2).compare(Value::real(2.0)), 0);
    EXPECT_LT(Value::integer(2).compare(Value::real(2.5)), 0);
    EXPECT_GT(Value::real(3.5).compare(Value::integer(3)), 0);
}

TEST(ValueTest, CrossTypeOrdering)
{
    // SQLite ordering: NULL < numbers < TEXT < BLOB.
    EXPECT_LT(Value::null().compare(Value::integer(-100)), 0);
    EXPECT_LT(Value::integer(1000).compare(Value::text("a")), 0);
    EXPECT_LT(Value::text("zzz").compare(Value::blob({0})), 0);
}

TEST(ValueTest, Truthiness)
{
    EXPECT_TRUE(Value::integer(1).truthy());
    EXPECT_FALSE(Value::integer(0).truthy());
    EXPECT_TRUE(Value::real(0.1).truthy());
    EXPECT_FALSE(Value::null().truthy());
    EXPECT_FALSE(Value::text("x").truthy());
}

TEST(ValueTest, ToStringRendering)
{
    EXPECT_EQ(Value::null().toString(), "NULL");
    EXPECT_EQ(Value::integer(-5).toString(), "-5");
    EXPECT_EQ(Value::text("ab").toString(), "'ab'");
    EXPECT_EQ(Value::blob({0x0f, 0xf0}).toString(), "x'0ff0'");
}

// --- Row codec ---------------------------------------------------------------

TEST(RowCodecTest, RoundTripAllTypes)
{
    Row row;
    row.push_back(Value::null());
    row.push_back(Value::integer(-123456789));
    row.push_back(Value::real(3.14159));
    row.push_back(Value::text("hello world"));
    row.push_back(Value::blob({0, 1, 2, 255}));

    std::vector<std::uint8_t> bytes;
    encodeRow(row, bytes);
    Row decoded;
    ASSERT_TRUE(decodeRow(bytes, decoded).isOk());
    ASSERT_EQ(decoded.size(), row.size());
    for (std::size_t i = 0; i < row.size(); ++i)
        EXPECT_EQ(decoded[i].compare(row[i]), 0) << "column " << i;
}

TEST(RowCodecTest, EmptyRow)
{
    Row row;
    std::vector<std::uint8_t> bytes;
    encodeRow(row, bytes);
    Row decoded;
    ASSERT_TRUE(decodeRow(bytes, decoded).isOk());
    EXPECT_TRUE(decoded.empty());
}

TEST(RowCodecTest, TruncationDetected)
{
    Row row{Value::text("a long-ish text value")};
    std::vector<std::uint8_t> bytes;
    encodeRow(row, bytes);
    bytes.resize(bytes.size() - 3);
    Row decoded;
    EXPECT_FALSE(decodeRow(bytes, decoded).isOk());
}

// --- Tokenizer ---------------------------------------------------------------

TEST(TokenizerTest, KeywordsUppercasedIdentifiersKept)
{
    auto tokens = tokenize("select Foo from bar");
    ASSERT_TRUE(tokens.isOk());
    EXPECT_EQ((*tokens)[0].type, TokenType::Keyword);
    EXPECT_EQ((*tokens)[0].text, "SELECT");
    EXPECT_EQ((*tokens)[1].type, TokenType::Identifier);
    EXPECT_EQ((*tokens)[1].text, "Foo");
    EXPECT_EQ((*tokens)[3].text, "bar");
}

TEST(TokenizerTest, NumericLiterals)
{
    auto tokens = tokenize("42 -7 3.5 1e3");
    ASSERT_TRUE(tokens.isOk());
    EXPECT_EQ((*tokens)[0].intValue, 42);
    EXPECT_EQ((*tokens)[1].text, "-"); // unary minus handled in parser
    EXPECT_EQ((*tokens)[2].intValue, 7);
    EXPECT_DOUBLE_EQ((*tokens)[3].realValue, 3.5);
    EXPECT_DOUBLE_EQ((*tokens)[4].realValue, 1000.0);
}

TEST(TokenizerTest, StringsWithEscapedQuotes)
{
    auto tokens = tokenize("'it''s'");
    ASSERT_TRUE(tokens.isOk());
    EXPECT_EQ((*tokens)[0].type, TokenType::String);
    EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(TokenizerTest, BlobLiteral)
{
    auto tokens = tokenize("x'0aFF'");
    ASSERT_TRUE(tokens.isOk());
    EXPECT_EQ((*tokens)[0].type, TokenType::Blob);
    ASSERT_EQ((*tokens)[0].blobValue.size(), 2u);
    EXPECT_EQ((*tokens)[0].blobValue[0], 0x0a);
    EXPECT_EQ((*tokens)[0].blobValue[1], 0xff);
}

TEST(TokenizerTest, MultiCharOperators)
{
    auto tokens = tokenize("a != b <= c >= d <> e");
    ASSERT_TRUE(tokens.isOk());
    EXPECT_EQ((*tokens)[1].text, "!=");
    EXPECT_EQ((*tokens)[3].text, "<=");
    EXPECT_EQ((*tokens)[5].text, ">=");
    EXPECT_EQ((*tokens)[7].text, "!="); // <> normalizes to !=
}

TEST(TokenizerTest, CommentsSkipped)
{
    auto tokens = tokenize("select -- comment here\n 1");
    ASSERT_TRUE(tokens.isOk());
    EXPECT_EQ((*tokens)[0].text, "SELECT");
    EXPECT_EQ((*tokens)[1].intValue, 1);
}

TEST(TokenizerTest, ErrorsOnUnterminatedString)
{
    EXPECT_FALSE(tokenize("'oops").isOk());
    EXPECT_FALSE(tokenize("x'0a").isOk());
    EXPECT_FALSE(tokenize("x'0g'").isOk());
}

TEST(TokenizerTest, ErrorsOnBadCharacter)
{
    EXPECT_FALSE(tokenize("select @foo").isOk());
}

// --- Parser ------------------------------------------------------------------

TEST(ParserTest, CreateTable)
{
    auto stmt = parseStatement(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
        "score REAL, data BLOB);");
    ASSERT_TRUE(stmt.isOk()) << stmt.status().toString();
    ASSERT_EQ(stmt->kind, StmtKind::CreateTable);
    const auto &create = *stmt->createTable;
    EXPECT_EQ(create.table, "t");
    ASSERT_EQ(create.columns.size(), 4u);
    EXPECT_TRUE(create.columns[0].primaryKey);
    EXPECT_EQ(create.columns[1].type, ValueType::Text);
    EXPECT_EQ(create.columns[2].type, ValueType::Real);
    EXPECT_EQ(create.columns[3].type, ValueType::Blob);
}

TEST(ParserTest, InsertMultiRow)
{
    auto stmt = parseStatement(
        "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, x'00ff')");
    ASSERT_TRUE(stmt.isOk());
    ASSERT_EQ(stmt->kind, StmtKind::Insert);
    EXPECT_EQ(stmt->insert->rows.size(), 3u);
    EXPECT_EQ(stmt->insert->rows[0].size(), 2u);
}

TEST(ParserTest, SelectWithEverything)
{
    auto stmt = parseStatement(
        "SELECT id, name FROM t WHERE id >= 5 AND name != 'x' "
        "ORDER BY name DESC LIMIT 10");
    ASSERT_TRUE(stmt.isOk()) << stmt.status().toString();
    const auto &select = *stmt->select;
    EXPECT_EQ(select.columns.size(), 2u);
    ASSERT_NE(select.where, nullptr);
    EXPECT_EQ(select.where->op, Op::And);
    ASSERT_TRUE(select.orderBy.has_value());
    EXPECT_EQ(*select.orderBy, "name");
    EXPECT_TRUE(select.orderDesc);
    ASSERT_TRUE(select.limit.has_value());
    EXPECT_EQ(*select.limit, 10u);
}

TEST(ParserTest, SelectStar)
{
    auto stmt = parseStatement("SELECT * FROM t");
    ASSERT_TRUE(stmt.isOk());
    EXPECT_TRUE(stmt->select->columns.empty());
    EXPECT_EQ(stmt->select->where, nullptr);
}

TEST(ParserTest, UpdateMultipleAssignments)
{
    auto stmt = parseStatement(
        "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3");
    ASSERT_TRUE(stmt.isOk());
    EXPECT_EQ(stmt->update->assignments.size(), 2u);
    EXPECT_NE(stmt->update->where, nullptr);
}

TEST(ParserTest, DeleteWithWhere)
{
    auto stmt = parseStatement("DELETE FROM t WHERE id < 100");
    ASSERT_TRUE(stmt.isOk());
    EXPECT_EQ(stmt->kind, StmtKind::Delete);
    EXPECT_NE(stmt->del->where, nullptr);
}

TEST(ParserTest, TransactionControl)
{
    EXPECT_EQ(parseStatement("BEGIN")->kind, StmtKind::Begin);
    EXPECT_EQ(parseStatement("COMMIT;")->kind, StmtKind::Commit);
    EXPECT_EQ(parseStatement("ROLLBACK")->kind, StmtKind::Rollback);
}

TEST(ParserTest, BetweenDesugarsToRange)
{
    auto stmt =
        parseStatement("SELECT * FROM t WHERE id BETWEEN 3 AND 7");
    ASSERT_TRUE(stmt.isOk()) << stmt.status().toString();
    const Expr *where = stmt->select->where.get();
    ASSERT_NE(where, nullptr);
    EXPECT_EQ(where->op, Op::And);
    EXPECT_EQ(where->lhs->op, Op::Ge);
    EXPECT_EQ(where->rhs->op, Op::Le);
}

TEST(ParserTest, OperatorPrecedence)
{
    // 1 + 2 * 3 = 7 parses as 1 + (2*3); equality binds looser.
    auto stmt = parseStatement("SELECT * FROM t WHERE a = 1 + 2 * 3");
    ASSERT_TRUE(stmt.isOk());
    const Expr *where = stmt->select->where.get();
    EXPECT_EQ(where->op, Op::Eq);
    EXPECT_EQ(where->rhs->op, Op::Add);
    EXPECT_EQ(where->rhs->rhs->op, Op::Mul);
}

TEST(ParserTest, SyntaxErrorsReported)
{
    EXPECT_FALSE(parseStatement("SELECT FROM").isOk());
    EXPECT_FALSE(parseStatement("CREATE TABLE t ()").isOk());
    EXPECT_FALSE(parseStatement("INSERT INTO t (1)").isOk());
    EXPECT_FALSE(parseStatement("SELECT * FROM t WHERE").isOk());
    EXPECT_FALSE(parseStatement("SELECT * FROM t extra junk").isOk());
    EXPECT_FALSE(parseStatement("").isOk());
}

TEST(ParserTest, NegativeNumbersViaUnaryMinus)
{
    auto stmt = parseStatement("INSERT INTO t VALUES (-5)");
    ASSERT_TRUE(stmt.isOk());
    const Expr &expr = *stmt->insert->rows[0][0];
    EXPECT_EQ(expr.kind, ExprKind::Unary);
    EXPECT_EQ(expr.op, Op::Neg);
}

} // namespace
} // namespace fasp::db
