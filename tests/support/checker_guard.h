/**
 * @file
 * PmCheckerGuard: RAII wiring of the PersistencyChecker into a test.
 *
 * Attach one guard per PmDevice, declared AFTER the device member (or
 * below the device local) so it detaches before the device dies. While
 * alive, every store/clflush/sfence is state-machine-checked. On
 * destruction it runs the clean-shutdown sweep (unless the device
 * crashed and was never recovered) and fails the test if any violation
 * was recorded.
 */

#ifndef FASP_TESTS_SUPPORT_CHECKER_GUARD_H
#define FASP_TESTS_SUPPORT_CHECKER_GUARD_H

#include <gtest/gtest.h>

#include "pm/checker.h"
#include "pm/device.h"

namespace fasp::testsupport {

class PmCheckerGuard
{
  public:
    explicit PmCheckerGuard(pm::PmDevice &device) : device_(device)
    {
        device_.setChecker(&checker_);
    }

    ~PmCheckerGuard()
    {
        if (!device_.crashed())
            checker_.checkCleanShutdown(device_.eventCount());
        device_.setChecker(nullptr);
        EXPECT_TRUE(checker_.report().empty())
            << checker_.report().toString();
    }

    PmCheckerGuard(const PmCheckerGuard &) = delete;
    PmCheckerGuard &operator=(const PmCheckerGuard &) = delete;

    pm::PersistencyChecker &checker() { return checker_; }

    /** Declare deliberately abandoned in-flight writes harmless (tests
     *  that drop a half-built transaction without simulating a crash). */
    void forgiveUnflushed() { checker_.forgiveUnflushed(); }

  private:
    pm::PmDevice &device_;
    pm::PersistencyChecker checker_;
};

} // namespace fasp::testsupport

#endif // FASP_TESTS_SUPPORT_CHECKER_GUARD_H
