/**
 * @file
 * Unit tests for the NVWAL substrate: the persistent heap manager and
 * the differential log (diff computation, commit, fetch, checkpoint,
 * recovery with uncommitted-frame discard).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pager/pager.h"
#include "pm/device.h"
#include "support/checker_guard.h"
#include "wal/nv_heap.h"
#include "wal/nvwal_log.h"

namespace fasp::wal {
namespace {

using pager::Pager;
using pager::Superblock;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

PmConfig
cacheSimConfig()
{
    PmConfig cfg;
    cfg.size = 24u << 20;
    cfg.mode = PmMode::CacheSim;
    return cfg;
}

// --- NvHeap ------------------------------------------------------------------

class NvHeapTest : public ::testing::Test
{
  protected:
    NvHeapTest() : device_(cacheSimConfig())
    {
        region_.off = 4u << 20;
        region_.len = 2u << 20;
        heap_ = std::make_unique<NvHeap>(device_, region_);
        heap_->formatRegion();
    }

    PmDevice device_;
    // Declared after the device: destroyed first, sweeping for
    // unflushed lines while the device is still alive.
    testsupport::PmCheckerGuard guard_{device_};
    pager::Region region_;
    std::unique_ptr<NvHeap> heap_;
};

TEST_F(NvHeapTest, AllocWriteReadBack)
{
    auto off = heap_->pmalloc(100);
    ASSERT_TRUE(off.isOk());
    std::vector<std::uint8_t> data(100, 0x5c);
    device_.write(*off, data.data(), data.size());
    device_.flushRange(*off, data.size());
    device_.sfence();
    std::vector<std::uint8_t> out(100);
    device_.read(*off, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST_F(NvHeapTest, AllocationsDoNotOverlap)
{
    auto a = heap_->pmalloc(64);
    auto b = heap_->pmalloc(64);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_GE(*b, *a + 64 + NvHeap::kBlockHeaderBytes);
}

TEST_F(NvHeapTest, FreedBlockReusedForSameSizeClass)
{
    auto a = heap_->pmalloc(128);
    ASSERT_TRUE(a.isOk());
    heap_->pfree(*a);
    auto b = heap_->pmalloc(128);
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(*b, *a) << "exact size class must be recycled";
}

TEST_F(NvHeapTest, LiveBytesTracksAllocations)
{
    EXPECT_EQ(heap_->liveBytes(), 0u);
    auto a = heap_->pmalloc(100); // rounds to 112
    ASSERT_TRUE(a.isOk());
    EXPECT_EQ(heap_->liveBytes(), 112u);
    heap_->pfree(*a);
    EXPECT_EQ(heap_->liveBytes(), 0u);
}

TEST_F(NvHeapTest, AttachRebuildsStateAfterCrash)
{
    auto a = heap_->pmalloc(64);
    auto b = heap_->pmalloc(256);
    auto c = heap_->pmalloc(64);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    ASSERT_TRUE(c.isOk());
    heap_->pfree(*b);

    device_.crash();
    device_.reviveAfterCrash();

    NvHeap fresh(device_, region_);
    ASSERT_TRUE(fresh.attach().isOk());
    // Block headers were flushed at pmalloc/pfree time: both live
    // blocks survive, the freed one is reusable.
    std::vector<std::pair<PmOffset, std::uint32_t>> live;
    fresh.scanAllocated([&](PmOffset off, std::uint32_t size) {
        live.emplace_back(off, size);
    });
    ASSERT_EQ(live.size(), 2u);
    EXPECT_EQ(live[0].first, *a);
    EXPECT_EQ(live[1].first, *c);
    auto reused = fresh.pmalloc(256);
    ASSERT_TRUE(reused.isOk());
    EXPECT_EQ(*reused, *b);
}

TEST_F(NvHeapTest, ExhaustionReturnsLogFull)
{
    pager::Region tiny;
    tiny.off = 4u << 20;
    tiny.len = 4096;
    NvHeap heap(device_, tiny);
    heap.formatRegion();
    Status status = Status::ok();
    while (status.isOk())
        status = heap.pmalloc(512).status();
    EXPECT_EQ(status.code(), StatusCode::LogFull);
}

TEST_F(NvHeapTest, ResetForgetsEverything)
{
    auto a = heap_->pmalloc(64);
    ASSERT_TRUE(a.isOk());
    heap_->reset();
    EXPECT_EQ(heap_->liveBytes(), 0u);
    int live = 0;
    heap_->scanAllocated(
        [&](PmOffset, std::uint32_t) { ++live; });
    EXPECT_EQ(live, 0);
}

// --- NvwalLog ----------------------------------------------------------------

class NvwalLogTest : public ::testing::Test
{
  protected:
    NvwalLogTest() : device_(cacheSimConfig())
    {
        auto sb = Pager::format(device_, {});
        EXPECT_TRUE(sb.isOk());
        sb_ = *sb;
        log_ = std::make_unique<NvwalLog>(device_, sb_);
        log_->format();
    }

    /** A page image pair (clean base, modified copy). */
    struct PagePair
    {
        std::vector<std::uint8_t> clean;
        std::vector<std::uint8_t> data;
    };

    PagePair
    makePair(std::uint8_t base)
    {
        PagePair p;
        p.clean.assign(sb_.pageSize, base);
        p.data = p.clean;
        return p;
    }

    PmDevice device_;
    testsupport::PmCheckerGuard guard_{device_};
    Superblock sb_;
    std::unique_ptr<NvwalLog> log_;
};

TEST_F(NvwalLogTest, CommitThenFetchAppliesDiff)
{
    PageId pid = sb_.firstDataPid();
    // Base image in the database file.
    auto pair = makePair(0x00);
    device_.write(sb_.pageOffset(pid), pair.clean.data(),
                  pair.clean.size());
    device_.flushRange(sb_.pageOffset(pid), pair.clean.size());
    device_.sfence();

    // Modify two separate regions.
    std::memset(pair.data.data() + 100, 0xaa, 40);
    std::memset(pair.data.data() + 2000, 0xbb, 16);

    NvwalDirtyPage dirty{pid, pair.data.data(), pair.clean.data()};
    ASSERT_TRUE(
        log_->commitTx(1, std::span<const NvwalDirtyPage>(&dirty, 1))
            .isOk());

    std::vector<std::uint8_t> out;
    log_->fetchPage(pid, out);
    EXPECT_EQ(out, pair.data);
    EXPECT_EQ(log_->stats().commits, 1u);
    // Differential: far fewer bytes than the page.
    EXPECT_LT(log_->stats().frameBytes, 512u);
}

TEST_F(NvwalLogTest, SequentialCommitsStack)
{
    PageId pid = sb_.firstDataPid();
    auto pair = makePair(0x00);

    std::memset(pair.data.data() + 64, 0x11, 8);
    NvwalDirtyPage d1{pid, pair.data.data(), pair.clean.data()};
    ASSERT_TRUE(
        log_->commitTx(1, std::span<const NvwalDirtyPage>(&d1, 1))
            .isOk());
    pair.clean = pair.data;

    std::memset(pair.data.data() + 128, 0x22, 8);
    NvwalDirtyPage d2{pid, pair.data.data(), pair.clean.data()};
    ASSERT_TRUE(
        log_->commitTx(2, std::span<const NvwalDirtyPage>(&d2, 1))
            .isOk());

    std::vector<std::uint8_t> out;
    log_->fetchPage(pid, out);
    EXPECT_EQ(out[64], 0x11);
    EXPECT_EQ(out[128], 0x22);
}

TEST_F(NvwalLogTest, CheckpointWritesDatabaseImage)
{
    PageId pid = sb_.firstDataPid();
    auto pair = makePair(0x00);
    std::memset(pair.data.data() + 500, 0xcd, 100);
    NvwalDirtyPage dirty{pid, pair.data.data(), pair.clean.data()};
    ASSERT_TRUE(
        log_->commitTx(1, std::span<const NvwalDirtyPage>(&dirty, 1))
            .isOk());

    ASSERT_TRUE(log_->checkpoint().isOk());
    EXPECT_EQ(log_->indexedPages(), 0u);
    std::vector<std::uint8_t> db(sb_.pageSize);
    device_.readDurable(sb_.pageOffset(pid), db.data(), db.size());
    EXPECT_EQ(db, pair.data);
}

TEST_F(NvwalLogTest, RecoveryKeepsCommittedDiscardsUncommitted)
{
    PageId pid = sb_.firstDataPid();
    auto pair = makePair(0x00);
    std::memset(pair.data.data() + 300, 0xee, 24);
    NvwalDirtyPage dirty{pid, pair.data.data(), pair.clean.data()};
    ASSERT_TRUE(
        log_->commitTx(1, std::span<const NvwalDirtyPage>(&dirty, 1))
            .isOk());

    // Simulate a crash mid-commit of tx 2: a frame is allocated and
    // written but no commit frame follows; nothing was flushed.
    auto partial = log_->heap().pmalloc(64);
    ASSERT_TRUE(partial.isOk());
    device_.crash();
    device_.reviveAfterCrash();

    NvwalLog fresh(device_, sb_);
    ASSERT_TRUE(fresh.recover().isOk());
    std::vector<std::uint8_t> out;
    fresh.fetchPage(pid, out);
    EXPECT_EQ(out, pair.data) << "committed tx must survive";
    EXPECT_GT(fresh.stats().discardedFrames, 0u);
}

TEST_F(NvwalLogTest, MultiPageCommitAtomicInRecovery)
{
    PageId a = sb_.firstDataPid();
    PageId b = a + 1;
    auto pa = makePair(0x00);
    auto pb = makePair(0x00);
    std::memset(pa.data.data() + 10, 0x77, 8);
    std::memset(pb.data.data() + 20, 0x88, 8);
    std::vector<NvwalDirtyPage> pages{
        {a, pa.data.data(), pa.clean.data()},
        {b, pb.data.data(), pb.clean.data()},
    };
    ASSERT_TRUE(
        log_->commitTx(5, std::span<const NvwalDirtyPage>(pages))
            .isOk());
    device_.crash();
    device_.reviveAfterCrash();

    NvwalLog fresh(device_, sb_);
    ASSERT_TRUE(fresh.recover().isOk());
    std::vector<std::uint8_t> out;
    fresh.fetchPage(a, out);
    EXPECT_EQ(out[10], 0x77);
    fresh.fetchPage(b, out);
    EXPECT_EQ(out[20], 0x88);
}

TEST_F(NvwalLogTest, NeedsCheckpointAtFillThreshold)
{
    EXPECT_FALSE(log_->needsCheckpoint());
    PageId pid = sb_.firstDataPid();
    auto pair = makePair(0x00);
    // Large diffs to fill the heap: rewrite the whole page each time.
    int commits = 0;
    while (!log_->needsCheckpoint() && commits < 100000) {
        pair.data.assign(sb_.pageSize,
                         static_cast<std::uint8_t>(commits + 1));
        NvwalDirtyPage dirty{pid, pair.data.data(),
                             pair.clean.data()};
        ASSERT_TRUE(log_->commitTx(
                            commits + 1,
                            std::span<const NvwalDirtyPage>(&dirty, 1))
                        .isOk());
        pair.clean = pair.data;
        ++commits;
    }
    EXPECT_TRUE(log_->needsCheckpoint());
    EXPECT_GT(commits, 10);
}

} // namespace
} // namespace fasp::wal
