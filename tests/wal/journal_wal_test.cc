/**
 * @file
 * Unit tests for the legacy baselines: rollback journal (Figure 1a)
 * and page-granularity WAL (Figure 1b).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/byte_io.h"
#include "common/crc32.h"
#include "pager/pager.h"
#include "pm/device.h"
#include "support/checker_guard.h"
#include "wal/journal.h"
#include "wal/legacy_wal.h"

namespace fasp::wal {
namespace {

using pager::Pager;
using pager::Superblock;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

class BaselineWalTest : public ::testing::Test
{
  protected:
    BaselineWalTest()
    {
        PmConfig cfg;
        cfg.size = 24u << 20;
        cfg.mode = PmMode::CacheSim;
        device_ = std::make_unique<PmDevice>(cfg);
        guard_ = std::make_unique<testsupport::PmCheckerGuard>(*device_);
        auto sb = Pager::format(*device_, {});
        EXPECT_TRUE(sb.isOk());
        sb_ = *sb;
    }

    void
    writeDbPage(PageId pid, std::uint8_t fill)
    {
        std::vector<std::uint8_t> page(sb_.pageSize, fill);
        device_->write(sb_.pageOffset(pid), page.data(), page.size());
        device_->flushRange(sb_.pageOffset(pid), page.size());
        device_->sfence();
    }

    std::uint8_t
    durableByte(PageId pid, std::size_t off)
    {
        std::uint8_t b;
        device_->readDurable(sb_.pageOffset(pid) + off, &b, 1);
        return b;
    }

    std::unique_ptr<PmDevice> device_;
    Superblock sb_;
    // Destroyed first: sweeps for unflushed lines while the device is
    // still alive.
    std::unique_ptr<testsupport::PmCheckerGuard> guard_;
};

// --- RollbackJournal ---------------------------------------------------------

TEST_F(BaselineWalTest, JournalCommitCycle)
{
    RollbackJournal journal(*device_, sb_);
    journal.format();
    PageId pid = sb_.firstDataPid();
    writeDbPage(pid, 0x10);

    // Transaction: journal the original, seal, overwrite, invalidate.
    journal.begin();
    ASSERT_TRUE(journal.journalPage(pid).isOk());
    ASSERT_TRUE(journal.seal().isOk());
    writeDbPage(pid, 0x20);
    journal.invalidate();

    auto rolled = journal.recover();
    ASSERT_TRUE(rolled.isOk());
    EXPECT_FALSE(*rolled) << "invalidated journal must not roll back";
    EXPECT_EQ(durableByte(pid, 100), 0x20);
}

TEST_F(BaselineWalTest, SealedJournalRollsBackOnRecovery)
{
    RollbackJournal journal(*device_, sb_);
    journal.format();
    PageId pid = sb_.firstDataPid();
    writeDbPage(pid, 0x10);

    journal.begin();
    ASSERT_TRUE(journal.journalPage(pid).isOk());
    ASSERT_TRUE(journal.seal().isOk());
    // Crash mid-database-overwrite: page half new.
    writeDbPage(pid, 0x20);
    device_->crash();
    device_->reviveAfterCrash();

    RollbackJournal fresh(*device_, sb_);
    auto rolled = fresh.recover();
    ASSERT_TRUE(rolled.isOk());
    EXPECT_TRUE(*rolled);
    EXPECT_EQ(durableByte(pid, 100), 0x10)
        << "the original page content must be restored";
    EXPECT_EQ(fresh.stats().rollbacks, 1u);
}

TEST_F(BaselineWalTest, UnsealedJournalIgnored)
{
    RollbackJournal journal(*device_, sb_);
    journal.format();
    PageId pid = sb_.firstDataPid();
    writeDbPage(pid, 0x10);

    journal.begin();
    ASSERT_TRUE(journal.journalPage(pid).isOk());
    // Crash before seal: the db was never touched.
    device_->crash();
    device_->reviveAfterCrash();

    RollbackJournal fresh(*device_, sb_);
    auto rolled = fresh.recover();
    ASSERT_TRUE(rolled.isOk());
    EXPECT_FALSE(*rolled);
    EXPECT_EQ(durableByte(pid, 100), 0x10);
}

TEST_F(BaselineWalTest, JournalMultiPageRollback)
{
    RollbackJournal journal(*device_, sb_);
    journal.format();
    PageId a = sb_.firstDataPid();
    PageId b = a + 1;
    writeDbPage(a, 0x01);
    writeDbPage(b, 0x02);

    journal.begin();
    ASSERT_TRUE(journal.journalPage(a).isOk());
    ASSERT_TRUE(journal.journalPage(b).isOk());
    ASSERT_TRUE(journal.seal().isOk());
    writeDbPage(a, 0x11);
    writeDbPage(b, 0x12);
    device_->crash();
    device_->reviveAfterCrash();

    RollbackJournal fresh(*device_, sb_);
    auto rolled = fresh.recover();
    ASSERT_TRUE(rolled.isOk());
    EXPECT_TRUE(*rolled);
    EXPECT_EQ(durableByte(a, 0), 0x01);
    EXPECT_EQ(durableByte(b, 0), 0x02);
}

TEST_F(BaselineWalTest, JournalWriteAmplificationCounted)
{
    RollbackJournal journal(*device_, sb_);
    journal.format();
    PageId pid = sb_.firstDataPid();
    writeDbPage(pid, 0x10);
    journal.begin();
    ASSERT_TRUE(journal.journalPage(pid).isOk());
    // A full page plus the entry header lands in the journal.
    EXPECT_GE(journal.stats().journalBytes, sb_.pageSize);
    // The journal entry is abandoned before seal() would fence it:
    // declare it harmless for the shutdown sweep.
    guard_->forgiveUnflushed();
}

// --- LegacyWal ---------------------------------------------------------------

TEST_F(BaselineWalTest, WalCommitAndFetch)
{
    LegacyWal wal(*device_, sb_);
    wal.format();
    PageId pid = sb_.firstDataPid();
    writeDbPage(pid, 0x10);

    std::vector<std::uint8_t> page(sb_.pageSize, 0x20);
    WalDirtyPage dirty{pid, page.data()};
    ASSERT_TRUE(
        wal.commitTx(1, std::span<const WalDirtyPage>(&dirty, 1))
            .isOk());

    // The database image is unchanged; reads overlay the WAL frame.
    EXPECT_EQ(durableByte(pid, 0), 0x10);
    std::vector<std::uint8_t> out;
    wal.fetchPage(pid, out);
    EXPECT_EQ(out, page);
}

TEST_F(BaselineWalTest, WalRecoveryDiscardsUncommittedTail)
{
    LegacyWal wal(*device_, sb_);
    wal.format();
    PageId pid = sb_.firstDataPid();
    writeDbPage(pid, 0x10);

    std::vector<std::uint8_t> v1(sb_.pageSize, 0x21);
    WalDirtyPage d1{pid, v1.data()};
    ASSERT_TRUE(wal.commitTx(1, std::span<const WalDirtyPage>(&d1, 1))
                    .isOk());

    // Append a second frame without a commit mark, then crash. The
    // frame bytes were flushed, but recovery must still reject it
    // because no commit frame follows.
    std::vector<std::uint8_t> v2(sb_.pageSize, 0x22);
    std::uint8_t head[32] = {};
    storeU32(head, 1);
    storeU32(head + 4, pid);
    storeU64(head + 8, 2);
    storeU64(head + 16, wal.epoch()); // current epoch: CRC-valid frame
    storeU32(head + 24, 99);
    std::uint32_t crc = crc32c(head, 28);
    crc = crc32c(v2.data(), v2.size(), crc);
    storeU32(head + 28, crc);
    PmOffset tail = sb_.logOff + 64 + (32 + sb_.pageSize) + 32;
    device_->write(tail, head, 32);
    device_->write(tail + 32, v2.data(), v2.size());
    device_->flushRange(tail, 32 + v2.size());
    device_->crash();
    device_->reviveAfterCrash();

    LegacyWal fresh(*device_, sb_);
    ASSERT_TRUE(fresh.recover().isOk());
    std::vector<std::uint8_t> out;
    fresh.fetchPage(pid, out);
    EXPECT_EQ(out, v1) << "only the committed frame may be visible";
}

TEST_F(BaselineWalTest, WalCheckpointAppliesAndTruncates)
{
    LegacyWal wal(*device_, sb_);
    wal.format();
    PageId pid = sb_.firstDataPid();
    writeDbPage(pid, 0x10);
    std::vector<std::uint8_t> page(sb_.pageSize, 0x33);
    WalDirtyPage dirty{pid, page.data()};
    ASSERT_TRUE(
        wal.commitTx(1, std::span<const WalDirtyPage>(&dirty, 1))
            .isOk());
    std::uint64_t used = wal.bytesUsed();
    EXPECT_GT(used, sb_.pageSize);

    ASSERT_TRUE(wal.checkpoint().isOk());
    EXPECT_EQ(wal.bytesUsed(), 0u);
    EXPECT_EQ(durableByte(pid, 0), 0x33);
}

TEST_F(BaselineWalTest, WalFullPageAmplification)
{
    LegacyWal wal(*device_, sb_);
    wal.format();
    PageId pid = sb_.firstDataPid();
    std::vector<std::uint8_t> page(sb_.pageSize, 0x44);
    // Change ONE byte semantically; legacy WAL still logs a whole page.
    WalDirtyPage dirty{pid, page.data()};
    ASSERT_TRUE(
        wal.commitTx(1, std::span<const WalDirtyPage>(&dirty, 1))
            .isOk());
    EXPECT_GE(wal.stats().frameBytes, sb_.pageSize)
        << "page-granularity logging amplifies writes";
}

TEST_F(BaselineWalTest, WalRecoveryAfterCleanCommits)
{
    {
        LegacyWal wal(*device_, sb_);
        wal.format();
        PageId pid = sb_.firstDataPid();
        std::vector<std::uint8_t> page(sb_.pageSize, 0x55);
        WalDirtyPage dirty{pid, page.data()};
        ASSERT_TRUE(
            wal.commitTx(1, std::span<const WalDirtyPage>(&dirty, 1))
                .isOk());
    }
    device_->crash();
    device_->reviveAfterCrash();
    LegacyWal fresh(*device_, sb_);
    ASSERT_TRUE(fresh.recover().isOk());
    std::vector<std::uint8_t> out;
    fresh.fetchPage(sb_.firstDataPid(), out);
    EXPECT_EQ(out[0], 0x55);
}

} // namespace
} // namespace fasp::wal
