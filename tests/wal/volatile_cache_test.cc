/**
 * @file
 * Unit tests for the volatile buffer cache used by the baselines.
 */

#include <gtest/gtest.h>

#include <vector>

#include "wal/volatile_cache.h"

namespace fasp::wal {
namespace {

class VolatileCacheTest : public ::testing::Test
{
  protected:
    VolatileCacheTest()
        : cache_(256, 4,
                 [this](PageId pid, std::vector<std::uint8_t> &out) {
                     fetches_++;
                     out.assign(256, static_cast<std::uint8_t>(pid));
                 })
    {}

    VolatileCache cache_;
    int fetches_ = 0;
};

TEST_F(VolatileCacheTest, MissFetchesHitDoesNot)
{
    CachedPage &page = cache_.get(7);
    EXPECT_EQ(page.data[0], 7);
    EXPECT_EQ(fetches_, 1);
    cache_.get(7);
    EXPECT_EQ(fetches_, 1);
    EXPECT_EQ(cache_.hits(), 1u);
    EXPECT_EQ(cache_.misses(), 1u);
}

TEST_F(VolatileCacheTest, CommitPromotesCleanSnapshot)
{
    CachedPage &page = cache_.get(1);
    cache_.markDirty(1);
    page.data[10] = 0xff;
    EXPECT_NE(page.data, page.clean);
    cache_.commitPage(1);
    EXPECT_EQ(page.data, page.clean);
    EXPECT_FALSE(page.dirty);
}

TEST_F(VolatileCacheTest, RollbackRestoresClean)
{
    CachedPage &page = cache_.get(1);
    cache_.markDirty(1);
    page.data[10] = 0xff;
    cache_.rollbackPage(1);
    EXPECT_EQ(page.data[10], 1);
    EXPECT_FALSE(page.dirty);
}

TEST_F(VolatileCacheTest, EvictsLruCleanPage)
{
    for (PageId pid = 1; pid <= 4; ++pid)
        cache_.get(pid);
    EXPECT_EQ(cache_.size(), 4u);
    cache_.get(2); // touch: 1 is now LRU
    cache_.get(5); // evicts 1
    EXPECT_EQ(cache_.size(), 4u);
    EXPECT_EQ(cache_.find(1), nullptr);
    EXPECT_NE(cache_.find(2), nullptr);
}

TEST_F(VolatileCacheTest, DirtyPagesPinAgainstEviction)
{
    for (PageId pid = 1; pid <= 4; ++pid) {
        cache_.get(pid);
        cache_.markDirty(pid);
    }
    cache_.get(5); // nothing evictable: cache grows
    EXPECT_EQ(cache_.size(), 5u);
    for (PageId pid = 1; pid <= 4; ++pid)
        EXPECT_NE(cache_.find(pid), nullptr);
}

TEST_F(VolatileCacheTest, PinnedPagesSurviveEviction)
{
    for (PageId pid = 1; pid <= 4; ++pid) {
        cache_.get(pid);
        cache_.pin(pid);
    }
    cache_.get(9);
    for (PageId pid = 1; pid <= 4; ++pid)
        EXPECT_NE(cache_.find(pid), nullptr);
    cache_.unpinAll();
    // With pins released, eviction works again: each further miss
    // evicts one clean page, so the size stays bounded.
    std::size_t size_before = cache_.size();
    cache_.get(10);
    cache_.get(11);
    EXPECT_EQ(cache_.size(), size_before);
}

TEST_F(VolatileCacheTest, DirtyPagesSortedDeterministically)
{
    cache_.get(3);
    cache_.get(1);
    cache_.get(2);
    cache_.markDirty(3);
    cache_.markDirty(1);
    auto dirty = cache_.dirtyPages();
    ASSERT_EQ(dirty.size(), 2u);
    EXPECT_EQ(dirty[0], 1u);
    EXPECT_EQ(dirty[1], 3u);
}

TEST_F(VolatileCacheTest, InstallFreshZeroed)
{
    CachedPage &page = cache_.installFresh(42);
    EXPECT_EQ(page.data.size(), 256u);
    for (auto b : page.data)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(fetches_, 0);
}

TEST_F(VolatileCacheTest, ClearDropsEverything)
{
    cache_.get(1);
    cache_.get(2);
    cache_.clear();
    EXPECT_EQ(cache_.size(), 0u);
}

} // namespace
} // namespace fasp::wal
