/**
 * @file
 * Unit tests for the slot-header log: append/commit/checkpoint cycle,
 * recovery with and without a commit mark, torn-tail handling, and
 * idempotent replay.
 */

#include <gtest/gtest.h>

#include <vector>

#include "pager/pager.h"
#include "pm/device.h"
#include "support/checker_guard.h"
#include "wal/slot_header_log.h"

namespace fasp::wal {
namespace {

using pager::Pager;
using pager::Superblock;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

class SlotHeaderLogTest : public ::testing::Test
{
  protected:
    SlotHeaderLogTest()
    {
        PmConfig cfg;
        cfg.size = 24u << 20;
        cfg.mode = PmMode::CacheSim;
        device_ = std::make_unique<PmDevice>(cfg);
        guard_ = std::make_unique<testsupport::PmCheckerGuard>(*device_);
        auto sb = Pager::format(*device_, {});
        EXPECT_TRUE(sb.isOk());
        sb_ = *sb;
        log_ = std::make_unique<SlotHeaderLog>(*device_, sb_);
    }

    std::vector<std::uint8_t>
    header(std::uint8_t fill, std::size_t len = 20)
    {
        return std::vector<std::uint8_t>(len, fill);
    }

    /** Durable header bytes of page @p pid. */
    std::vector<std::uint8_t>
    durableHeader(PageId pid, std::size_t len)
    {
        std::vector<std::uint8_t> out(len);
        device_->readDurable(sb_.pageOffset(pid), out.data(), len);
        return out;
    }

    std::unique_ptr<PmDevice> device_;
    Superblock sb_;
    std::unique_ptr<SlotHeaderLog> log_;
    // Destroyed first: sweeps for unflushed lines while the device is
    // still alive.
    std::unique_ptr<testsupport::PmCheckerGuard> guard_;
};

TEST_F(SlotHeaderLogTest, CommitAndCheckpointAppliesHeaders)
{
    PageId pid = sb_.firstDataPid();
    auto h = header(0xaa);
    log_->begin();
    ASSERT_TRUE(log_->appendPageHeader(
                        pid, std::span<const std::uint8_t>(h))
                    .isOk());
    ASSERT_TRUE(log_->commit(1).isOk());
    ASSERT_TRUE(log_->checkpointAndTruncate().isOk());
    EXPECT_EQ(durableHeader(pid, h.size()), h);
    EXPECT_EQ(log_->stats().commits, 1u);
    EXPECT_EQ(log_->stats().headersCheckpointed, 1u);
}

TEST_F(SlotHeaderLogTest, UncommittedEntriesDiscardedOnRecovery)
{
    PageId pid = sb_.firstDataPid();
    auto h = header(0xbb);
    log_->begin();
    ASSERT_TRUE(log_->appendPageHeader(
                        pid, std::span<const std::uint8_t>(h))
                    .isOk());
    // Entries flushed but NO commit mark: simulate the crash window.
    device_->crash();
    device_->reviveAfterCrash();

    SlotHeaderLog fresh(*device_, sb_);
    auto result = fresh.recover();
    ASSERT_TRUE(result.isOk());
    EXPECT_FALSE(result->replayed);
    // The page was never touched (paper §4.4: recovery is trivial).
    auto durable = durableHeader(pid, h.size());
    EXPECT_NE(durable, h);
}

TEST_F(SlotHeaderLogTest, CommittedButNotCheckpointedReplays)
{
    PageId pid = sb_.firstDataPid();
    auto h = header(0xcc);
    log_->begin();
    ASSERT_TRUE(log_->appendPageHeader(
                        pid, std::span<const std::uint8_t>(h))
                    .isOk());
    ASSERT_TRUE(log_->commit(2).isOk());
    // Crash before checkpoint: the commit mark is durable.
    device_->crash();
    device_->reviveAfterCrash();

    SlotHeaderLog fresh(*device_, sb_);
    auto result = fresh.recover();
    ASSERT_TRUE(result.isOk());
    EXPECT_TRUE(result->replayed);
    ASSERT_EQ(result->touchedPages.size(), 1u);
    EXPECT_EQ(result->touchedPages[0], pid);
    EXPECT_EQ(durableHeader(pid, h.size()), h);
}

TEST_F(SlotHeaderLogTest, RecoveryIsIdempotent)
{
    PageId pid = sb_.firstDataPid();
    auto h = header(0xdd);
    log_->begin();
    ASSERT_TRUE(log_->appendPageHeader(
                        pid, std::span<const std::uint8_t>(h))
                    .isOk());
    ASSERT_TRUE(log_->commit(3).isOk());
    device_->crash();
    device_->reviveAfterCrash();

    // First recovery replays and truncates; the second finds an empty
    // log and does nothing.
    SlotHeaderLog first(*device_, sb_);
    ASSERT_TRUE(first.recover().isOk());
    SlotHeaderLog second(*device_, sb_);
    auto result = second.recover();
    ASSERT_TRUE(result.isOk());
    EXPECT_FALSE(result->replayed);
    EXPECT_EQ(durableHeader(pid, h.size()), h);
}

TEST_F(SlotHeaderLogTest, AllocFreeDeltasApplyToBitmap)
{
    PageId target = sb_.firstDataPid() + 5;
    log_->begin();
    ASSERT_TRUE(log_->appendPageAlloc(target).isOk());
    ASSERT_TRUE(log_->commit(4).isOk());
    ASSERT_TRUE(log_->checkpointAndTruncate().isOk());

    std::vector<std::uint8_t> bitmap;
    Pager::loadBitmap(*device_, sb_, bitmap);
    pager::VectorBitmapIO io(bitmap);
    pager::PageAllocator alloc(io, sb_);
    EXPECT_TRUE(alloc.isAllocated(target));

    log_->begin();
    ASSERT_TRUE(log_->appendPageFree(target).isOk());
    ASSERT_TRUE(log_->commit(5).isOk());
    ASSERT_TRUE(log_->checkpointAndTruncate().isOk());
    Pager::loadBitmap(*device_, sb_, bitmap);
    EXPECT_FALSE(alloc.isAllocated(target));
}

TEST_F(SlotHeaderLogTest, MultiplePagesOneCommit)
{
    PageId a = sb_.firstDataPid();
    PageId b = a + 1;
    auto ha = header(0x11, 30);
    auto hb = header(0x22, 50);
    log_->begin();
    ASSERT_TRUE(
        log_->appendPageHeader(a, std::span<const std::uint8_t>(ha))
            .isOk());
    ASSERT_TRUE(
        log_->appendPageHeader(b, std::span<const std::uint8_t>(hb))
            .isOk());
    ASSERT_TRUE(log_->appendPageAlloc(b).isOk());
    ASSERT_TRUE(log_->commit(6).isOk());
    ASSERT_TRUE(log_->checkpointAndTruncate().isOk());
    EXPECT_EQ(durableHeader(a, ha.size()), ha);
    EXPECT_EQ(durableHeader(b, hb.size()), hb);
}

TEST_F(SlotHeaderLogTest, TornCommitMarkIsRejected)
{
    // With the TornLines policy the commit mark may persist partially;
    // the CRC must catch it and recovery must discard the tx.
    PmConfig cfg;
    cfg.size = 24u << 20;
    cfg.mode = PmMode::CacheSim;
    cfg.crashPolicy = pm::CrashPolicy::TornLines;
    cfg.crashSeed = 4242;
    PmDevice device(cfg);
    testsupport::PmCheckerGuard guard(device);
    auto sb = Pager::format(device, {});
    ASSERT_TRUE(sb.isOk());

    SlotHeaderLog log(device, *sb);
    PageId pid = sb->firstDataPid();
    std::vector<std::uint8_t> h(24, 0xee);
    log.begin();
    ASSERT_TRUE(
        log.appendPageHeader(pid, std::span<const std::uint8_t>(h))
            .isOk());
    // Write entries and the commit mark but crash before any flush:
    // torn persistence of arbitrary words.
    // The header entry occupies 4 + 6 + 24 bytes; forge a commit mark
    // right after it whose CRC field (zeros) cannot match.
    std::uint8_t fake_commit[16] = {4, 0, 12, 0};
    device.write(sb->logOff + 64 + 4 + 6 + h.size(), fake_commit, 16);
    device.crash();
    device.reviveAfterCrash();

    SlotHeaderLog fresh(device, *sb);
    auto result = fresh.recover();
    ASSERT_TRUE(result.isOk());
    EXPECT_FALSE(result->replayed);
}

TEST_F(SlotHeaderLogTest, LogFullReported)
{
    log_->begin();
    std::vector<std::uint8_t> big(sb_.pageSize / 2, 0x33);
    Status status = Status::ok();
    int appended = 0;
    while (status.isOk()) {
        status = log_->appendPageHeader(
            sb_.firstDataPid(), std::span<const std::uint8_t>(big));
        ++appended;
    }
    EXPECT_EQ(status.code(), StatusCode::LogFull);
    EXPECT_GT(appended, 2);
    // The full log is abandoned mid-transaction, never committed:
    // declare the stranded entries harmless for the shutdown sweep.
    guard_->forgiveUnflushed();
}

TEST_F(SlotHeaderLogTest, EmptyCommitIsHarmless)
{
    log_->begin();
    ASSERT_TRUE(log_->commit(9).isOk());
    ASSERT_TRUE(log_->checkpointAndTruncate().isOk());
    SlotHeaderLog fresh(*device_, sb_);
    auto result = fresh.recover();
    ASSERT_TRUE(result.isOk());
    EXPECT_FALSE(result->replayed);
}

} // namespace
} // namespace fasp::wal
