/**
 * @file
 * ctest entry points for the crash/recover/verify soak (tools/fasp-soak,
 * DESIGN.md §16). Short smoke-budget runs per engine, the churn mix,
 * and the seeded must-fail: with a flush silently dropped every few
 * calls, the model oracle / fsck / forensics layers MUST report
 * divergence within the three smoke rounds — proving the soak can
 * actually see the bug class it exists for.
 */

#include <gtest/gtest.h>

#include "soak.h"

namespace fasp::soak {
namespace {

SoakOptions
smokeOptions(core::EngineKind kind)
{
    SoakOptions opt;
    opt.kind = kind;
    opt.rounds = 3;
    opt.opsPerRound = 120;
    opt.preload = 120;
    opt.seed = 1;
    opt.verbose = false;
    return opt;
}

class SoakSmoke : public ::testing::TestWithParam<core::EngineKind>
{};

TEST_P(SoakSmoke, ThreeRoundsClean)
{
    SoakResult result = runSoak(smokeOptions(GetParam()));
    EXPECT_EQ(result.roundsRun, 3u);
    EXPECT_EQ(result.violations, 0u)
        << (result.violationMessages.empty()
                ? std::string("(no message)")
                : result.violationMessages.front());
    EXPECT_EQ(result.checkerViolations, 0u);
    EXPECT_GT(result.opsCommitted, 0u);
    EXPECT_GT(result.fsckPagesChecked, 0u);
}

TEST_P(SoakSmoke, ChurnMixClean)
{
    SoakOptions opt = smokeOptions(GetParam());
    opt.mix = "churn";
    SoakResult result = runSoak(opt);
    EXPECT_EQ(result.roundsRun, 3u);
    EXPECT_EQ(result.violations, 0u)
        << (result.violationMessages.empty()
                ? std::string("(no message)")
                : result.violationMessages.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, SoakSmoke,
    ::testing::Values(core::EngineKind::Fast, core::EngineKind::Fash,
                      core::EngineKind::Nvwal,
                      core::EngineKind::LegacyWal,
                      core::EngineKind::Journal),
    [](const ::testing::TestParamInfo<core::EngineKind> &info) {
        return core::engineKindName(info.param);
    });

/** The oracle must catch a silently-dropped flush: the device claims
 *  the line persisted (events, checker, and stats all see the flush)
 *  but discards the write-back, so only end-to-end verification can
 *  notice. If this test ever passes with violations == 0, the soak has
 *  gone blind. */
TEST(SoakMustFail, DroppedFlushIsCaught)
{
    for (core::EngineKind kind :
         {core::EngineKind::Fast, core::EngineKind::Journal}) {
        SoakOptions opt = smokeOptions(kind);
        opt.dropFlushEvery = 9;
        SoakResult result = runSoak(opt);
        EXPECT_GT(result.violations, 0u)
            << core::engineKindName(kind)
            << ": soak failed to detect dropped flushes";
        EXPECT_LE(result.roundsRun, 3u);
    }
}

} // namespace
} // namespace fasp::soak
