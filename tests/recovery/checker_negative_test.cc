/**
 * @file
 * Negative harness for the persistency checker: a deliberately buggy
 * toy engine whose commit protocol can elide individual ordering steps.
 * Each elision must trip exactly the corresponding detector — this is
 * the proof that the checker would catch the same bug if it crept into
 * a real engine's commit path.
 *
 * The toy engine mimics the shape every real engine here shares: write
 * a payload, flush it, fence, commit point, write a commit mark, flush
 * and fence that too, end the transaction.
 */

#include <gtest/gtest.h>

#include <gtest/gtest-spi.h>

#include <vector>

#include "pm/checker.h"
#include "pm/device.h"
#include "support/checker_guard.h"

namespace fasp::pm {
namespace {

enum class Bug {
    None,             // correct protocol, zero violations
    SkipPayloadFlush, // payload never flushed -> UnflushedStoreAtCommit
    SkipPayloadFence, // flushed but never fenced -> UnfencedFlushAtCommit
    DoubleFlush,      // flushes an already-flushed line -> RedundantFlush
    StoreAfterFlush,  // re-dirties a flushed line, no re-flush
                      //   -> StoreInFlushFenceWindow
    LeakDirtyLine,    // extra store outside the protocol, never flushed
                      //   -> DirtyAtShutdown
};

constexpr PmOffset kPayloadOff = 0;
constexpr std::size_t kPayloadLen = 2 * kCacheLineSize;
constexpr PmOffset kCommitMarkOff = 4096;
constexpr PmOffset kLeakOff = 8192;

/** One commit of the toy engine, with one protocol step elided. */
void
runToyCommit(PmDevice &device, Bug bug)
{
    SiteScope site(device, "toy-commit");
    device.txBegin();

    std::vector<std::uint8_t> payload(kPayloadLen, 0x5a);
    device.write(kPayloadOff, payload.data(), payload.size());

    if (bug == Bug::LeakDirtyLine)
        device.writeU64(kLeakOff, 0xdeadbeef);

    if (bug != Bug::SkipPayloadFlush) {
        device.flushRange(kPayloadOff, kPayloadLen);
        if (bug == Bug::DoubleFlush)
            device.clflush(kPayloadOff);
        if (bug == Bug::StoreAfterFlush)
            device.writeU64(kPayloadOff, 0x1111); // inside the window
        if (bug != Bug::SkipPayloadFence)
            device.sfence();
    } else {
        device.sfence(); // fence with nothing flushed
    }

    device.txCommitPoint();

    device.writeU64(kCommitMarkOff, 1);
    device.clflush(kCommitMarkOff);
    device.sfence();
    device.txEnd(/*committed=*/true);
}

class CheckerNegativeTest : public ::testing::Test
{
  protected:
    CheckerNegativeTest() : device_(makeConfig())
    {
        device_.setChecker(&checker_);
    }

    ~CheckerNegativeTest() override { device_.setChecker(nullptr); }

    static PmConfig makeConfig()
    {
        PmConfig cfg;
        cfg.size = 1u << 20;
        cfg.mode = PmMode::CacheSim;
        return cfg;
    }

    /** Run one toy commit plus the clean-shutdown sweep and return the
     *  violation counts the checker accumulated. */
    const CheckerReport &run(Bug bug)
    {
        runToyCommit(device_, bug);
        checker_.checkCleanShutdown(device_.eventCount());
        return checker_.report();
    }

    PmDevice device_;
    PersistencyChecker checker_;
};

TEST_F(CheckerNegativeTest, CorrectProtocolIsViolationFree)
{
    const CheckerReport &report = run(Bug::None);
    EXPECT_TRUE(report.empty()) << report.toString();
}

TEST_F(CheckerNegativeTest, SkippedPayloadFlushFiresV1)
{
    const CheckerReport &report = run(Bug::SkipPayloadFlush);
    EXPECT_EQ(report.count(ViolationKind::UnflushedStoreAtCommit), 2u)
        << report.toString(); // one per payload line
    // The dirty payload also surfaces at shutdown; no other kinds.
    EXPECT_EQ(report.count(ViolationKind::RedundantFlush), 0u);
    EXPECT_EQ(report.count(ViolationKind::UnfencedFlushAtCommit), 0u);
    EXPECT_EQ(report.count(ViolationKind::StoreInFlushFenceWindow), 0u);
}

TEST_F(CheckerNegativeTest, SkippedPayloadFenceFiresV3)
{
    const CheckerReport &report = run(Bug::SkipPayloadFence);
    EXPECT_EQ(report.count(ViolationKind::UnfencedFlushAtCommit), 2u)
        << report.toString();
    EXPECT_EQ(report.count(ViolationKind::UnflushedStoreAtCommit), 0u);
    EXPECT_EQ(report.count(ViolationKind::StoreInFlushFenceWindow), 0u);
}

TEST_F(CheckerNegativeTest, DoubleFlushFiresV2)
{
    const CheckerReport &report = run(Bug::DoubleFlush);
    EXPECT_EQ(report.count(ViolationKind::RedundantFlush), 1u)
        << report.toString();
    EXPECT_EQ(report.total(), 1u) << report.toString();
}

TEST_F(CheckerNegativeTest, StoreAfterFlushFiresV4)
{
    const CheckerReport &report = run(Bug::StoreAfterFlush);
    EXPECT_EQ(report.count(ViolationKind::StoreInFlushFenceWindow), 1u)
        << report.toString();
    // The re-dirtied line is then unflushed at the commit point too.
    EXPECT_EQ(report.count(ViolationKind::UnflushedStoreAtCommit), 1u)
        << report.toString();
}

TEST_F(CheckerNegativeTest, LeakedDirtyLineFiresV5)
{
    const CheckerReport &report = run(Bug::LeakDirtyLine);
    // Caught twice: it is in the transaction's write set at the commit
    // point, and still dirty at shutdown.
    EXPECT_EQ(report.count(ViolationKind::DirtyAtShutdown), 1u)
        << report.toString();
    EXPECT_EQ(report.count(ViolationKind::UnflushedStoreAtCommit), 1u)
        << report.toString();
}

TEST_F(CheckerNegativeTest, EveryDetectorNamesItsSite)
{
    const CheckerReport &report = run(Bug::SkipPayloadFlush);
    ASSERT_FALSE(report.violations().empty());
    for (const Violation &v : report.violations()) {
        // The shutdown sweep runs outside any site scope; everything
        // detected inside the commit protocol must carry its tag.
        if (v.kind == ViolationKind::DirtyAtShutdown)
            continue;
        ASSERT_NE(v.site, nullptr) << v.toString();
        EXPECT_STREQ(v.site, "toy-commit") << v.toString();
    }
}

// The guard used across the real suites must promote a violation to a
// test failure. gtest-spi lets us assert that the failure fires without
// failing this test.
TEST(CheckerGuardTest, GuardTurnsViolationsIntoTestFailures)
{
    EXPECT_NONFATAL_FAILURE(
        {
            PmConfig cfg;
            cfg.size = 1u << 20;
            cfg.mode = PmMode::CacheSim;
            PmDevice device(cfg);
            testsupport::PmCheckerGuard guard(device);
            device.writeU64(0, 0x42); // never flushed
        },
        "dirty-at-shutdown");
}

TEST(CheckerGuardTest, GuardIsSilentOnCleanProtocol)
{
    PmConfig cfg;
    cfg.size = 1u << 20;
    cfg.mode = PmMode::CacheSim;
    PmDevice device(cfg);
    testsupport::PmCheckerGuard guard(device);
    runToyCommit(device, Bug::None);
}

} // namespace
} // namespace fasp::pm
