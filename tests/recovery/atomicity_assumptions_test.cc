/**
 * @file
 * Tests pinning down the paper's atomicity assumptions (Sections 1 and
 * 3.2):
 *
 *  - FAST's *RTM* in-place commit requires failure-atomic cache-line
 *    writes: under a torn-line (8-byte-atomic-only) adversary, a
 *    single in-place header commit CAN leave an inconsistent durable
 *    page. We demonstrate the assumption's necessity by finding such a
 *    tear, then show that FASH — which the paper offers precisely
 *    "when the atomic write granularity for PM is smaller than the
 *    cache line size" — survives the identical adversary at every
 *    crash point (covered exhaustively in crash_sweep_test.cc; spot-
 *    checked here for the same scenario).
 *
 *  - FAST's default *PCAS* in-place commit (DESIGN.md §14) only ever
 *    publishes through 8-byte CASes, so it needs no line atomicity:
 *    the same torn-line adversary must never tear it.
 */

#include <gtest/gtest.h>

#include <memory>

#include "btree/btree.h"
#include "core/engine.h"
#include "core/fasp_page_io.h"
#include "page/slotted_page.h"
#include "pm/device.h"
#include "support/checker_guard.h"

namespace fasp::core {
namespace {

using btree::BTree;
using pm::CrashPolicy;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

/**
 * Run one FAST single-record insert with a crash at event @p k under
 * @p policy and @p seed; return the recovered root page's integrity.
 */
Status
crashOneInsert(CrashPolicy policy, InPlaceCommitVia via,
               std::uint64_t seed, std::uint64_t k, bool *crashed)
{
    PmConfig pm_cfg;
    pm_cfg.size = 8u << 20;
    pm_cfg.mode = PmMode::CacheSim;
    pm_cfg.crashPolicy = policy;
    pm_cfg.crashSeed = seed;
    PmDevice device(pm_cfg);
    testsupport::PmCheckerGuard guard(device);
    EngineConfig cfg;
    cfg.kind = EngineKind::Fast;
    cfg.inPlaceCommitVia = via;
    cfg.format.logLen = 1u << 20;
    auto engine = std::move(*Engine::create(device, cfg, true));
    auto tree = *engine->createTree(1);

    std::vector<std::uint8_t> value(48, 0x6a);
    for (std::uint64_t key = 1; key <= 10; ++key) {
        EXPECT_TRUE(engine
                        ->insert(tree, key,
                                 std::span<const std::uint8_t>(value))
                        .isOk());
    }

    pm::PointCrashInjector injector(device.eventCount() + k);
    device.setCrashInjector(&injector);
    *crashed = false;
    try {
        (void)engine->insert(tree, 999,
                             std::span<const std::uint8_t>(value));
    } catch (const pm::CrashException &) {
        *crashed = true;
    }
    device.setCrashInjector(nullptr);
    if (!*crashed)
        return Status::ok();

    engine.reset();
    device.reviveAfterCrash();
    auto recovered = std::move(*Engine::create(device, cfg, false));
    auto tx = recovered->begin();
    BTree t(1);
    Status integrity = t.checkIntegrity(tx->pageIO());
    tx->rollback();
    return integrity;
}

TEST(AtomicityAssumptionTest, FastRtmNeedsCacheLineAtomicity)
{
    // Under whole-line crash persistence FAST-RTM must ALWAYS recover
    // consistent (this mirrors a slice of the exhaustive sweep)...
    for (std::uint64_t k = 0;; ++k) {
        bool crashed = false;
        Status integrity =
            crashOneInsert(CrashPolicy::RandomLines,
                           InPlaceCommitVia::Rtm, 1234 + k, k,
                           &crashed);
        if (!crashed)
            break;
        ASSERT_TRUE(integrity.isOk()) << "line-atomic crash point "
                                      << k << ": "
                                      << integrity.toString();
    }

    // ...but under TORN lines (8-byte atomic units only) the RTM
    // header publish can tear: search for a demonstration. The paper
    // states the assumption explicitly ("we assume that the underlying
    // hardware supports failure atomicity at cache line granularity");
    // finding a violation under the weaker model shows the assumption
    // is load-bearing, not decorative.
    bool found_tear = false;
    for (std::uint64_t seed = 1; seed <= 40 && !found_tear; ++seed) {
        for (std::uint64_t k = 0; k < 40; ++k) {
            bool crashed = false;
            Status integrity =
                crashOneInsert(CrashPolicy::TornLines,
                               InPlaceCommitVia::Rtm, seed, k,
                               &crashed);
            if (!crashed)
                break;
            if (!integrity.isOk()) {
                found_tear = true;
                break;
            }
        }
    }
    EXPECT_TRUE(found_tear)
        << "expected at least one torn RTM in-place header under the "
           "8-byte-atomicity adversary; if this starts passing, the "
           "RTM commit has become line-tear tolerant and the PCAS "
           "path's reason to be the default should be re-documented";
}

TEST(AtomicityAssumptionTest, FastPcasSurvivesTornLines)
{
    // The default PCAS in-place commit publishes only 8-byte words, so
    // the identical torn-line adversary (same seeds and crash points
    // that tear the RTM path above) must never produce an inconsistent
    // page — word atomicity is all the protocol assumes.
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        for (std::uint64_t k = 0; k < 40; ++k) {
            bool crashed = false;
            Status integrity =
                crashOneInsert(CrashPolicy::TornLines,
                               InPlaceCommitVia::Pcas, seed, k,
                               &crashed);
            if (!crashed)
                break;
            ASSERT_TRUE(integrity.isOk())
                << "PCAS torn-line crash seed " << seed << " point "
                << k << ": " << integrity.toString();
        }
    }
}

TEST(AtomicityAssumptionTest, FashSurvivesTornLinesHere)
{
    // The same scenario with FASH: its commit mark is CRC-protected
    // and headers are only ever published by checkpointing AFTER the
    // mark is durable, so 8-byte atomicity suffices (paper §1: "we
    // also evaluate our logging approach that can be used ... when
    // the atomic write granularity for PM is smaller than the cache
    // line size").
    for (std::uint64_t k = 0;; ++k) {
        PmConfig pm_cfg;
        pm_cfg.size = 8u << 20;
        pm_cfg.mode = PmMode::CacheSim;
        pm_cfg.crashPolicy = CrashPolicy::TornLines;
        pm_cfg.crashSeed = 777 + k;
        PmDevice device(pm_cfg);
        testsupport::PmCheckerGuard guard(device);
        EngineConfig cfg;
        cfg.kind = EngineKind::Fash;
        cfg.format.logLen = 1u << 20;
        auto engine = std::move(*Engine::create(device, cfg, true));
        auto tree = *engine->createTree(1);
        std::vector<std::uint8_t> value(48, 0x6a);
        for (std::uint64_t key = 1; key <= 10; ++key) {
            ASSERT_TRUE(
                engine
                    ->insert(tree, key,
                             std::span<const std::uint8_t>(value))
                    .isOk());
        }

        pm::PointCrashInjector injector(device.eventCount() + k);
        device.setCrashInjector(&injector);
        bool crashed = false;
        try {
            (void)engine->insert(
                tree, 999, std::span<const std::uint8_t>(value));
        } catch (const pm::CrashException &) {
            crashed = true;
        }
        device.setCrashInjector(nullptr);
        if (!crashed)
            break;

        engine.reset();
        device.reviveAfterCrash();
        auto recovered = std::move(*Engine::create(device, cfg,
                                                   false));
        auto tx = recovered->begin();
        BTree t(1);
        Status integrity = t.checkIntegrity(tx->pageIO());
        ASSERT_TRUE(integrity.isOk())
            << "FASH torn-line crash point " << k << ": "
            << integrity.toString();
        auto n = t.count(tx->pageIO());
        ASSERT_TRUE(n.isOk());
        EXPECT_GE(*n, 10u) << "committed records lost at " << k;
        tx->rollback();
    }
}

} // namespace
} // namespace fasp::core
