/**
 * @file
 * Exhaustive crash-injection property tests (paper Section 4.4).
 *
 * For every engine and crash policy, a deterministic workload runs
 * with a crash injected at persistence event k, for EVERY k in the
 * crash window. After each crash the database is re-opened (running
 * the engine's recovery) and checked for:
 *
 *   1. durability  — every transaction that reported commit success
 *                    before the crash is fully present;
 *   2. atomicity   — the single in-flight operation is all-or-nothing
 *                    (for the multi-record transaction: all 5 keys or
 *                    none);
 *   3. consistency — full B-tree structural integrity.
 *
 * Crash policies (see pm::CrashPolicy): DropAll is a clean power cut;
 * RandomLines persists an arbitrary subset of dirty lines (modelling
 * uncontrolled cache eviction before the failure); TornLines persists
 * arbitrary 8-byte words (PM whose atomic unit is 8 bytes). FAST's
 * in-place commit explicitly assumes cache-line write atomicity
 * (paper Section 3.2), so FAST is exercised under the line-granular
 * policies while FASH — which the paper offers exactly for
 * sub-cache-line atomic units — is additionally run under TornLines.
 *
 * The ForcedFallback cases pin FAST to its slot-header-log fallback
 * (both the PCAS and RTM in-place paths are given a one-attempt retry
 * budget with certain injected failure, paper §3.2 footnote 1), so
 * the sweep walks every crash point of the
 * multi-page logged commit — including the CoW-defragmentation and
 * leaf-split window ops — under adversarial partial-line persistence.
 * The logged path never relies on line atomicity, so it must survive
 * TornLines too, unlike the in-place commit.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.h"
#include "core/engine.h"
#include "forensics.h"
#include "obs/flight_recorder.h"
#include "pm/device.h"
#include "support/checker_guard.h"

namespace fasp::core {
namespace {

using btree::BTree;
using pm::CrashPolicy;
using pm::PmConfig;
using pm::PmDevice;
using pm::PmMode;

std::vector<std::uint8_t>
value(std::uint64_t seed, std::size_t len = 48)
{
    std::vector<std::uint8_t> out(len);
    Rng rng(seed * 2654435761u + 17);
    rng.fillBytes(out.data(), out.size());
    return out;
}

std::span<const std::uint8_t>
asSpan(const std::vector<std::uint8_t> &v)
{
    return std::span<const std::uint8_t>(v);
}

/** Reference model of committed database contents. */
using Model = std::map<std::uint64_t, std::vector<std::uint8_t>>;

/**
 * One operation of the crash-window workload: how to run it and what
 * outcomes are legal if it was in flight when the crash hit.
 */
struct WindowOp
{
    enum Kind {
        MultiInsert,
        Update,
        Erase,
        SingleInsert,
        FatUpdate //!< update that grows the value well past its extent
    } kind;
    std::uint64_t key; //!< base key

    static constexpr std::size_t kFatLen = 400;

    Status
    run(Engine &engine, BTree &tree) const
    {
        switch (kind) {
          case MultiInsert: {
            auto tx = engine.begin();
            for (std::uint64_t i = 0; i < 5; ++i) {
                auto v = value(key + i);
                Status status =
                    tree.insert(tx->pageIO(), key + i, asSpan(v));
                if (!status.isOk()) {
                    tx->rollback();
                    return status;
                }
            }
            return tx->commit();
          }
          case Update:
            return engine.update(tree, key, asSpan(value(key + 7000)));
          case Erase:
            return engine.erase(tree, key);
          case SingleInsert:
            return engine.insert(tree, key, asSpan(value(key)));
          case FatUpdate:
            return engine.update(tree, key,
                                 asSpan(value(key + 9000, kFatLen)));
        }
        return statusInvalid("bad op");
    }

    /** Fold a completed op into the committed model. */
    void
    apply(Model &model) const
    {
        switch (kind) {
          case MultiInsert:
            for (std::uint64_t i = 0; i < 5; ++i)
                model[key + i] = value(key + i);
            break;
          case Update:
            model[key] = value(key + 7000);
            break;
          case Erase:
            model.erase(key);
            break;
          case SingleInsert:
            model[key] = value(key);
            break;
          case FatUpdate:
            model[key] = value(key + 9000, kFatLen);
            break;
        }
    }

    /**
     * Check the all-or-nothing property for this op when it was in
     * flight: the database must equal either the before-model or the
     * after-model, with no third state.
     */
    void
    checkInFlight(Engine &engine, BTree &tree, const Model &before,
                  std::uint64_t event) const
    {
        Model after = before;
        apply(after);

        // Decide which world we are in by probing one affected key.
        std::vector<std::uint8_t> out;
        Status probe = engine.get(tree, key, out);
        const Model *expect = nullptr;
        auto before_it = before.find(key);
        auto after_it = after.find(key);
        if (probe.isOk()) {
            if (after_it != after.end() && out == after_it->second)
                expect = &after;
            if (!expect && before_it != before.end() &&
                out == before_it->second)
                expect = &before;
            ASSERT_NE(expect, nullptr)
                << "key " << key << " has a third-state value at event "
                << event;
        } else {
            if (after_it == after.end())
                expect = &after;
            else if (before_it == before.end())
                expect = &before;
            ASSERT_NE(expect, nullptr)
                << "key " << key << " missing in both worlds at event "
                << event;
        }
        verifyModel(engine, tree, *expect, event);
    }

    static void
    verifyModel(Engine &engine, BTree &tree, const Model &model,
                std::uint64_t event)
    {
        auto tx = engine.begin();
        Status integrity = tree.checkIntegrity(tx->pageIO());
        ASSERT_TRUE(integrity.isOk())
            << "integrity violated at event " << event << ": "
            << integrity.toString();
        std::size_t scanned = 0;
        ASSERT_TRUE(
            tree.scan(tx->pageIO(), 0, ~std::uint64_t{0},
                      [&](std::uint64_t k,
                          std::span<const std::uint8_t> v) {
                          auto it = model.find(k);
                          EXPECT_NE(it, model.end())
                              << "phantom key " << k << " at event "
                              << event;
                          if (it != model.end()) {
                              EXPECT_TRUE(std::equal(
                                  v.begin(), v.end(),
                                  it->second.begin(),
                                  it->second.end()))
                                  << "value mismatch for " << k
                                  << " at event " << event;
                          }
                          ++scanned;
                          return true;
                      })
                .isOk());
        EXPECT_EQ(scanned, model.size())
            << "lost keys at event " << event;
        tx->rollback();
    }
};

// Local helper: fail the test but keep the sweep moving.
#define ASSERT_TRUE_OR_RETURN(expr)                                        \
    if (!(expr).isOk()) {                                                  \
        ADD_FAILURE() << (expr).status().toString();                       \
        return true;                                                       \
    }

struct SweepCase
{
    EngineKind kind;
    CrashPolicy policy;
    /** Force FAST's RTM to abort every attempt so each commit takes
     *  the slot-header-log fallback path. */
    bool forceFallback = false;
    /** Swap the default window for the delete/defrag-pressure one
     *  (erase + grown-value churn forcing CoW defragmentation). */
    bool deletePressure = false;
};

class CrashSweepTest : public ::testing::TestWithParam<SweepCase>
{
  protected:
    static constexpr std::size_t kSeedKeys = 60;

    // The sweep runs with the persistent flight recorder ON: its
    // appends go through the same crash-injected, checker-guarded
    // device as real data, and the forensics assertion below requires
    // the timeline to survive every crash point.
    void SetUp() override { obs::FlightRecorder::setEnabled(true); }
    void TearDown() override { obs::FlightRecorder::setEnabled(false); }

    /**
     * The tentpole acceptance check: from the durable image ALONE
     * (before recovery has run), fasp-forensics must identify the
     * operation the crash interrupted.
     *
     * Three outcomes are legal at a crash point:
     *   - an unresolved OpBegin names exactly the in-flight txid;
     *   - no OpBegin for that txid is durable — the crash landed
     *     inside the OpBegin append itself, before which no op
     *     persistence can have happened (append is store+flush+fence);
     *   - the txid's CommitPoint record is durable — the crash landed
     *     after the transaction was already committed.
     */
    void
    assertForensics(const pm::PmDevice &device,
                    std::uint64_t expected_txid, std::uint64_t k) const
    {
        forensics::CrashReport report = forensics::analyzeImage(
            device.durableData(), device.size());
        ASSERT_TRUE(report.sb.present && report.sb.crcOk)
            << "superblock undecodable at event " << k;
        ASSERT_TRUE(report.timeline.headerOk)
            << "flight-recorder header undecodable at event " << k;

        if (report.inflight.found) {
            EXPECT_EQ(report.inflight.txid, expected_txid)
                << "forensics misidentified the in-flight op at event "
                << k;
            return;
        }
        bool begin_durable = false;
        for (const obs::FlightRecord &rec : report.timeline.records) {
            if (rec.type == obs::FlightEventType::OpBegin &&
                rec.txid == expected_txid) {
                begin_durable = true;
            }
        }
        if (begin_durable) {
            EXPECT_EQ(report.inflight.lastCommittedTxid, expected_txid)
                << "tx " << expected_txid
                << " began and neither committed nor stayed open at "
                << "event " << k;
        }
    }

    /** Optional CI hook: dump every Nth crash image so the
     *  fasp-forensics CLI can be run over real artifacts
     *  (FASP_CRASH_SWEEP_DUMP_DIR + FASP_CRASH_SWEEP_DUMP_EVERY). */
    void
    maybeDumpImage(const pm::PmDevice &device, std::uint64_t k) const
    {
        const char *dir = std::getenv("FASP_CRASH_SWEEP_DUMP_DIR");
        if (dir == nullptr)
            return;
        std::uint64_t every = 50;
        if (const char *n = std::getenv("FASP_CRASH_SWEEP_DUMP_EVERY"))
            every = std::strtoull(n, nullptr, 10);
        if (every == 0 || k % every != 0)
            return;
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string name = info->name(); // "TestName/ParamName"
        for (char &c : name) {
            if (c == '/')
                c = '_';
        }
        std::string path = std::string(dir) + "/" + name + "_k" +
                           std::to_string(k) + ".img";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(device.durableData()),
                  static_cast<std::streamsize>(device.size()));
    }

    EngineConfig
    engineConfig() const
    {
        EngineConfig cfg;
        cfg.kind = GetParam().kind;
        cfg.format.logLen = 1u << 20;
        cfg.volatileCachePages = 512;
        if (GetParam().forceFallback) {
            cfg.rtm.abortProbability = 1.0;
            cfg.rtmRetriesBeforeFallback = 1;
            cfg.pcas.failProbability = 1.0;
            cfg.pcas.maxRetries = 1;
        }
        return cfg;
    }

    std::unique_ptr<PmDevice>
    makeDevice(std::uint64_t crash_seed) const
    {
        PmConfig cfg;
        cfg.size = 6u << 20;
        cfg.mode = PmMode::CacheSim;
        cfg.crashPolicy = GetParam().policy;
        cfg.crashSeed = crash_seed;
        return std::make_unique<PmDevice>(cfg);
    }

    static std::vector<WindowOp>
    windowOps()
    {
        // Chosen to exercise every commit path: an in-place-eligible
        // single insert, a multi-page transaction, an update, a
        // delete, and inserts that force a leaf split (the seed fills
        // leaves close to their capacity).
        return {
            {WindowOp::SingleInsert, 500},
            {WindowOp::MultiInsert, 1000},
            {WindowOp::Update, 5},
            {WindowOp::Erase, 6},
            {WindowOp::SingleInsert, 501}, // fills the leaf exactly
            {WindowOp::SingleInsert, 502}, // forces CoW defrag
            {WindowOp::SingleInsert, 503}, // forces a split
        };
    }

    static std::vector<WindowOp>
    deletePressureOps()
    {
        // Delete/reinsert-larger churn (ISSUE satellite, mirrors the
        // soak's DeleteDefragStream at every-crash-point granularity).
        // Each FatUpdate appends a grown copy of the record and frees
        // the old extent as an interior hole, so the leaf's contiguous
        // gap drains while fragmented free space accumulates: within a
        // few ops checkFit answers NeedsDefrag and a commit carries a
        // full CoW defragmentation (§4.3) inside the crash window. All
        // churn keys sit in the high end of the seed range so they
        // share the rightmost — fullest — leaf: FAST's 26-slot leaf
        // cap (kMaxInPlaceSlots) means only a leaf of large records
        // (the 120-byte delete-pressure seed) can ever be space-tight
        // enough to fragment.
        return {
            {WindowOp::Erase, 58},      {WindowOp::Erase, 56},
            {WindowOp::Erase, 54},      {WindowOp::FatUpdate, 60},
            {WindowOp::FatUpdate, 59},  {WindowOp::FatUpdate, 57},
            {WindowOp::FatUpdate, 55},  {WindowOp::FatUpdate, 53},
            {WindowOp::FatUpdate, 52},  {WindowOp::FatUpdate, 51},
            {WindowOp::SingleInsert, 58}, // reinsert into churned leaf
            {WindowOp::Erase, 55},      {WindowOp::FatUpdate, 50},
        };
    }

    /** Scan the durable flight-recorder timeline for a Defrag record —
     *  the delete-pressure window must actually have taken the CoW
     *  defragmentation path, or the sweep is not covering it. */
    static bool
    sawDefrag(const pm::PmDevice &device)
    {
        forensics::CrashReport report = forensics::analyzeImage(
            device.durableData(), device.size());
        if (!report.timeline.headerOk)
            return false;
        for (const obs::FlightRecord &rec : report.timeline.records) {
            if (rec.type == obs::FlightEventType::Defrag)
                return true;
        }
        return false;
    }

    /**
     * Run the whole workload with a crash injected @p k events after
     * the window starts.
     * @return true if the run finished with no crash (sweep is done).
     */
    bool
    runOnce(std::uint64_t k)
    {
        auto device = makeDevice(/*crash_seed=*/k * 7919 + 13);
        // Every store/flush/fence of the whole run — format, workload,
        // crash, recovery, verification — is ordering-checked. Declared
        // after the device and before the engines so its destructor
        // sweeps for unflushed lines once the engines are gone.
        testsupport::PmCheckerGuard guard(*device);
        auto engine_res =
            Engine::create(*device, engineConfig(), /*format=*/true);
        if (!engine_res.isOk()) {
            ADD_FAILURE() << engine_res.status().toString();
            return true;
        }
        std::unique_ptr<Engine> engine = std::move(*engine_res);

        auto tree_res = engine->createTree(1);
        if (!tree_res.isOk()) {
            ADD_FAILURE() << tree_res.status().toString();
            return true;
        }
        BTree tree = *tree_res;

        Model model;
        // The delete-pressure seed uses 120-byte values so a slot-cap
        // bounded FAST leaf is near space capacity, not just slot
        // capacity — a precondition for fragmentation to force defrag.
        std::size_t seed_len = GetParam().deletePressure ? 120 : 48;
        for (std::uint64_t key = 1; key <= kSeedKeys; ++key) {
            auto v = value(key, seed_len);
            Status status = engine->insert(tree, key, asSpan(v));
            if (!status.isOk()) {
                ADD_FAILURE() << status.toString();
                return true;
            }
            model[key] = v;
        }
        if (GetParam().forceFallback) {
            // The knob must actually detour the in-place-eligible seed
            // commits through the log, or the sweep proves nothing.
            EXPECT_GT(engine->stats().rtmFallbacks.load() +
                          engine->stats().pcasFallbacks.load(),
                      0u);
            EXPECT_EQ(engine->stats().inPlaceCommits.load(), 0u);
        }

        // Arm the injector relative to the current event count.
        pm::PointCrashInjector injector(device->eventCount() + k);
        device->setCrashInjector(&injector);

        auto ops = GetParam().deletePressure ? deletePressureOps()
                                             : windowOps();
        std::optional<std::size_t> inflight;
        bool crashed = false;
        std::uint64_t expected_txid = 0;
        std::size_t op_index = 0;
        try {
            for (; op_index < ops.size(); ++op_index) {
                Status status = ops[op_index].run(*engine, tree);
                if (!status.isOk()) {
                    ADD_FAILURE() << "op " << op_index << " failed: "
                                  << status.toString();
                    return true;
                }
                ops[op_index].apply(model);
            }
        } catch (const pm::CrashException &) {
            crashed = true;
            inflight = op_index;
            // Txids are allocated 1:1 with begins, so the in-flight
            // transaction's id is the begin count at the crash.
            expected_txid = engine->stats().txBegun.load();
        }
        device->setCrashInjector(nullptr);
        if (!crashed) {
            if (GetParam().deletePressure) {
                EXPECT_TRUE(sawDefrag(*device))
                    << "delete-pressure window never defragmented";
            }
            return true; // k is beyond the window: sweep complete
        }

        // Destroy the crashed engine (must not touch the device) and,
        // BEFORE recovery mutates anything, run the offline forensics
        // over the durable image exactly as the CLI would see it.
        engine.reset();
        assertForensics(*device, expected_txid, k);
        maybeDumpImage(*device, k);
        device->reviveAfterCrash();
        auto recovered =
            Engine::create(*device, engineConfig(), /*format=*/false);
        ASSERT_TRUE_OR_RETURN(recovered);
        std::unique_ptr<Engine> engine2 = std::move(*recovered);
        auto tree2_res = BTreeHandleFor(*engine2);
        ASSERT_TRUE_OR_RETURN(tree2_res);
        BTree tree2 = *tree2_res;

        if (inflight) {
            ops[*inflight].checkInFlight(*engine2, tree2, model, k);
        } else {
            WindowOp::verifyModel(*engine2, tree2, model, k);
        }
        return false;
    }

  private:
    static Result<BTree>
    BTreeHandleFor(Engine &engine)
    {
        auto tx = engine.begin();
        auto tree = BTree::open(tx->pageIO(), 1);
        tx->rollback();
        return tree;
    }
};

TEST_P(CrashSweepTest, EveryCrashPointRecoversConsistently)
{
    std::uint64_t k = 0;
    for (;; ++k) {
        if (runOnce(k))
            break;
        if (HasFatalFailure() || k > 200000) {
            ADD_FAILURE() << "sweep aborted at k=" << k;
            break;
        }
    }
    RecordProperty("crash_points", static_cast<int>(k));
    EXPECT_GT(k, 50u) << "window too small to be meaningful";
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CrashSweepTest,
    ::testing::Values(
        SweepCase{EngineKind::Fast, CrashPolicy::DropAll},
        SweepCase{EngineKind::Fast, CrashPolicy::RandomLines},
        SweepCase{EngineKind::Fast, CrashPolicy::DropAll, true},
        SweepCase{EngineKind::Fast, CrashPolicy::RandomLines, true},
        SweepCase{EngineKind::Fast, CrashPolicy::TornLines, true},
        SweepCase{EngineKind::Fash, CrashPolicy::DropAll},
        SweepCase{EngineKind::Fash, CrashPolicy::RandomLines},
        SweepCase{EngineKind::Fash, CrashPolicy::TornLines},
        SweepCase{EngineKind::Nvwal, CrashPolicy::DropAll},
        SweepCase{EngineKind::Nvwal, CrashPolicy::RandomLines},
        SweepCase{EngineKind::Nvwal, CrashPolicy::TornLines},
        SweepCase{EngineKind::LegacyWal, CrashPolicy::DropAll},
        SweepCase{EngineKind::LegacyWal, CrashPolicy::RandomLines},
        SweepCase{EngineKind::Journal, CrashPolicy::DropAll},
        SweepCase{EngineKind::Journal, CrashPolicy::RandomLines},
        // Delete/defrag-pressure windows (same legality rules: FAST's
        // in-place commit assumes line atomicity, so TornLines only
        // with the forced log fallback; FASH tolerates TornLines).
        SweepCase{EngineKind::Fast, CrashPolicy::DropAll, false, true},
        SweepCase{EngineKind::Fast, CrashPolicy::TornLines, true, true},
        SweepCase{EngineKind::Fash, CrashPolicy::TornLines, false,
                  true}),
    [](const ::testing::TestParamInfo<SweepCase> &info) {
        std::string policy;
        switch (info.param.policy) {
          case CrashPolicy::DropAll: policy = "DropAll"; break;
          case CrashPolicy::RandomLines: policy = "RandomLines"; break;
          case CrashPolicy::TornLines: policy = "TornLines"; break;
        }
        return std::string(engineKindName(info.param.kind)) + "_" +
               policy +
               (info.param.forceFallback ? "_ForcedFallback" : "") +
               (info.param.deletePressure ? "_DeletePressure" : "");
    });

} // namespace
} // namespace fasp::core
