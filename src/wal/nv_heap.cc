#include "wal/nv_heap.h"

#include "common/logging.h"
#include "pm/device.h"

namespace fasp::wal {

NvHeap::NvHeap(pm::PmDevice &device, const pager::Region &region)
    : device_(device), region_(region), bumpOff_(firstBlockOff())
{
    FASP_ASSERT(region_.len >= 4096);
}

void
NvHeap::writeBlockHeader(PmOffset block_off, std::uint32_t state,
                         std::uint32_t size, bool flush)
{
    std::uint8_t header[kBlockHeaderBytes] = {};
    storeU32(header, state);
    storeU32(header + 4, size);
    // fasp-analyze: allow(v1s) -- flush=false callers take over
    // durability (formatRegion covers this header with its own
    // flushRange); flush=true flushes right below.
    device_.write(block_off, header, kBlockHeaderBytes);
    if (flush) {
        // Persisting allocator metadata: the heap-management cost.
        device_.flushRange(block_off, kBlockHeaderBytes);
        device_.sfence();
    }
}

void
NvHeap::formatRegion()
{
    pm::SiteScope site(device_, "NvHeap::formatRegion");
    device_.writeU64(region_.off, kHeapMagic);
    writeBlockHeader(firstBlockOff(), kStateEnd, 0, /*flush=*/false);
    device_.flushRange(region_.off, 16 + kBlockHeaderBytes);
    device_.sfence();
    bumpOff_ = firstBlockOff();
    freeLists_.clear();
    liveBytes_ = 0;
}

Status
NvHeap::attach()
{
    if (device_.readU64(region_.off) != kHeapMagic)
        return statusCorruption("NvHeap: bad magic");
    freeLists_.clear();
    liveBytes_ = 0;
    stats_.scans++;

    PmOffset cursor = firstBlockOff();
    while (cursor + kBlockHeaderBytes <= region_.end()) {
        std::uint32_t state = device_.readU32(cursor);
        std::uint32_t size = device_.readU32(cursor + 4);
        if (state == kStateEnd)
            break;
        if ((state != kStateAllocated && state != kStateFree) ||
            cursor + kBlockHeaderBytes + size > region_.end()) {
            // A torn trailing header: treat as end of heap. Anything
            // beyond it was never committed anywhere.
            break;
        }
        if (state == kStateFree)
            freeLists_[size].push_back(cursor);
        else
            liveBytes_ += size;
        cursor += kBlockHeaderBytes + size;
    }
    bumpOff_ = cursor;
    return Status::ok();
}

Result<PmOffset>
NvHeap::pmalloc(std::uint32_t size)
{
    pm::SiteScope site(device_, "NvHeap::pmalloc");
    std::uint32_t rounded = roundSize(size);
    stats_.allocs++;
    stats_.bytesAllocated += rounded;

    // Exact-size-class reuse first (WAL frames repeat sizes heavily).
    auto it = freeLists_.lower_bound(rounded);
    if (it != freeLists_.end() && !it->second.empty() &&
        it->first == rounded) {
        PmOffset block = it->second.back();
        it->second.pop_back();
        writeBlockHeader(block, kStateAllocated, rounded,
                         /*flush=*/true);
        liveBytes_ += rounded;
        return block + kBlockHeaderBytes;
    }

    // Bump allocation.
    PmOffset block = bumpOff_;
    PmOffset next = block + kBlockHeaderBytes + rounded;
    if (next + kBlockHeaderBytes > region_.end())
        return Status(StatusCode::LogFull, "NvHeap exhausted");

    // Order matters: terminate the heap *after* the new block before
    // publishing the new block itself, so a crash can never expose an
    // unterminated scan.
    writeBlockHeader(next, kStateEnd, 0, /*flush=*/true);
    writeBlockHeader(block, kStateAllocated, rounded, /*flush=*/true);
    bumpOff_ = next;
    liveBytes_ += rounded;
    return block + kBlockHeaderBytes;
}

void
NvHeap::pfree(PmOffset payload_off)
{
    pm::SiteScope site(device_, "NvHeap::pfree");
    PmOffset block = payload_off - kBlockHeaderBytes;
    std::uint32_t state = device_.readU32(block);
    std::uint32_t size = device_.readU32(block + 4);
    FASP_ASSERT(state == kStateAllocated);
    stats_.frees++;
    writeBlockHeader(block, kStateFree, size, /*flush=*/true);
    freeLists_[size].push_back(block);
    liveBytes_ -= size;
}

void
NvHeap::reset()
{
    formatRegion();
}

void
NvHeap::scanAllocated(
    const std::function<void(PmOffset, std::uint32_t)> &fn)
{
    PmOffset cursor = firstBlockOff();
    while (cursor + kBlockHeaderBytes <= region_.end()) {
        std::uint32_t state = device_.readU32(cursor);
        std::uint32_t size = device_.readU32(cursor + 4);
        if (state == kStateEnd)
            break;
        if ((state != kStateAllocated && state != kStateFree) ||
            cursor + kBlockHeaderBytes + size > region_.end()) {
            break;
        }
        if (state == kStateAllocated)
            fn(cursor + kBlockHeaderBytes, size);
        cursor += kBlockHeaderBytes + size;
    }
}

double
NvHeap::fillRatio() const
{
    return static_cast<double>(bumpOff_ - region_.off) /
           static_cast<double>(region_.len);
}

} // namespace fasp::wal
