#include "wal/journal.h"

#include <chrono>
#include <vector>

#include "common/byte_io.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "pm/device.h"

namespace fasp::wal {

RollbackJournal::RollbackJournal(pm::PmDevice &device,
                                 const pager::Superblock &sb)
    : device_(device), sb_(sb), region_(sb.logRegion())
{}

PmOffset
RollbackJournal::entryOff(std::uint32_t index) const
{
    return region_.off + 64 +
           static_cast<PmOffset>(index) * (8 + sb_.pageSize);
}

void
RollbackJournal::format()
{
    pm::SiteScope site(device_, "RollbackJournal::format");
    std::uint8_t header[16] = {};
    storeU32(header, kMagic);
    device_.write(region_.off, header, sizeof(header));
    device_.flushRange(region_.off, sizeof(header));
    device_.sfence();
    count_ = 0;
    runningCrc_ = 0;
}

void
RollbackJournal::begin()
{
    device_.txBegin();
    count_ = 0;
    runningCrc_ = 0;
}

Status
RollbackJournal::journalPage(PageId pid)
{
    pm::SiteScope site(device_, "RollbackJournal::journalPage");
    PmOffset off = entryOff(count_);
    if (off + 8 + sb_.pageSize > region_.end())
        return Status(StatusCode::LogFull, "journal full");

    // Copy the *original* durable page.
    std::vector<std::uint8_t> page(sb_.pageSize);
    device_.read(sb_.pageOffset(pid), page.data(), page.size());

    std::uint8_t entry_head[8] = {};
    storeU32(entry_head, pid);
    device_.write(off, entry_head, 8);
    device_.write(off + 8, page.data(), page.size());
    device_.flushRange(off, 8 + page.size());

    runningCrc_ = crc32c(entry_head, 8, runningCrc_);
    runningCrc_ = crc32c(page.data(), page.size(), runningCrc_);
    count_++;
    stats_.pagesJournaled++;
    stats_.journalBytes += 8 + page.size();
    return Status::ok();
}

Status
RollbackJournal::seal()
{
    pm::SiteScope site(device_, "RollbackJournal::seal");
    std::uint8_t header[16] = {};
    storeU32(header, kMagic);
    storeU32(header + 4, count_);
    storeU32(header + 8, runningCrc_);
    device_.sfence(); // entries before header
    // Every journalled entry must be fenced before the sealed header
    // makes the journal eligible for rollback.
    device_.txCommitPoint();
    device_.write(region_.off, header, sizeof(header));
    device_.flushRange(region_.off, sizeof(header));
    device_.sfence();
    return Status::ok();
}

void
RollbackJournal::invalidate()
{
    pm::SiteScope site(device_, "RollbackJournal::invalidate");
    std::uint8_t header[16] = {};
    storeU32(header, kMagic);
    // The in-place database overwrites must be fenced before the
    // journal is emptied — afterwards there is nothing to roll back.
    device_.txCommitPoint();
    device_.write(region_.off, header, sizeof(header));
    device_.flushRange(region_.off, sizeof(header));
    device_.sfence();
    device_.txEnd(/*committed=*/true);
    count_ = 0;
    runningCrc_ = 0;
    stats_.commits++;
}

Result<bool>
RollbackJournal::recover(RecoveryBreakdown *breakdown)
{
    pm::SiteScope site(device_, "RollbackJournal::recover");
    RecoveryBreakdown local;
    RecoveryBreakdown &bd = breakdown != nullptr ? *breakdown : local;
    auto ns_since = [](std::chrono::steady_clock::time_point t0) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0).count());
    };
    auto scan_started = std::chrono::steady_clock::now();

    std::uint8_t header[16];
    device_.read(region_.off, header, sizeof(header));
    if (loadU32(header) != kMagic) {
        format();
        bd.scanNs += ns_since(scan_started);
        return false;
    }
    std::uint32_t count = loadU32(header + 4);
    if (count == 0) {
        bd.scanNs += ns_since(scan_started);
        return false;
    }

    // Validate every entry against the sealed CRC.
    std::uint32_t crc = 0;
    std::vector<std::uint8_t> entry(8 + sb_.pageSize);
    for (std::uint32_t i = 0; i < count; ++i) {
        PmOffset off = entryOff(i);
        if (off + entry.size() > region_.end()) {
            // Header lies: treat as unsealed (torn mid-seal).
            bd.scanNs += ns_since(scan_started);
            auto repair_started = std::chrono::steady_clock::now();
            invalidate();
            stats_.commits--; // invalidate() counts a commit; undo
            bd.tornRecords = 1;
            bd.repairNs += ns_since(repair_started);
            return false;
        }
        device_.read(off, entry.data(), entry.size());
        crc = crc32c(entry.data(), entry.size(), crc);
        bd.pagesScanned++;
    }
    if (crc != loadU32(header + 8)) {
        bd.scanNs += ns_since(scan_started);
        auto repair_started = std::chrono::steady_clock::now();
        invalidate();
        stats_.commits--;
        bd.tornRecords = 1;
        bd.repairNs += ns_since(repair_started);
        return false;
    }
    bd.scanNs += ns_since(scan_started);

    // Sealed journal: roll the original pages back.
    auto replay_started = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < count; ++i) {
        PmOffset off = entryOff(i);
        device_.read(off, entry.data(), entry.size());
        PageId pid = loadU32(entry.data());
        PmOffset page_off = sb_.pageOffset(pid);
        device_.write(page_off, entry.data() + 8, sb_.pageSize);
        device_.flushRange(page_off, sb_.pageSize);
        bd.recordsReplayed++;
    }
    device_.sfence();
    bd.replayNs += ns_since(replay_started);

    auto discard_started = std::chrono::steady_clock::now();
    invalidate();
    stats_.commits--;
    stats_.rollbacks++;
    bd.discardNs += ns_since(discard_started);
    return true;
}

} // namespace fasp::wal
