/**
 * @file
 * NvwalLog: the NVWAL baseline (Kim et al., ASPLOS 2016) as described
 * and measured by the paper (Sections 2.2 and 5).
 *
 * NVWAL keeps the buffer cache in DRAM and, at commit time:
 *   1. computes *differential logs* — word-granularity diffs of each
 *      dirty page against its clean snapshot (Figure 8 "NVWAL
 *      Computation");
 *   2. allocates WAL frames from a user-level persistent heap
 *      (Figure 8 "Heap Management");
 *   3. stores and flushes the frames plus a commit frame (Figure 8
 *      "Log Flush");
 *   4. updates a volatile WAL index mapping pages to their frames
 *      (part of Figure 8 "Misc" — "considerable time is spent
 *      constructing indexes for WAL frames").
 * Checkpointing is lazy: frames are applied to the database image only
 * when the heap fills (excluded from per-query time, as in the paper).
 *
 * Frame payload format (inside an NvHeap block):
 *   u32 kind (1 = data, 2 = commit)
 *   u64 txid
 *   u32 pid          (data frames)
 *   u32 seq          global sequence number
 *   u16 nranges, u16 reserved
 *   {u16 off, u16 len} x nranges
 *   diff bytes (concatenated)
 *   u32 crc          over everything above
 */

#ifndef FASP_WAL_NVWAL_LOG_H
#define FASP_WAL_NVWAL_LOG_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "pager/superblock.h"
#include "wal/nv_heap.h"
#include "wal/recovery_stats.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::wal {

/** A dirty page handed to commitTx. */
struct NvwalDirtyPage
{
    PageId pid;
    const std::uint8_t *data;  //!< working copy (page-size bytes)
    const std::uint8_t *clean; //!< snapshot to diff against
};

/** Counters for Figures 8/9 and the write-amplification table. */
struct NvwalStats
{
    std::uint64_t commits = 0;
    std::uint64_t frames = 0;
    std::uint64_t frameBytes = 0;   //!< frame bytes written to PM
    std::uint64_t diffBytes = 0;    //!< payload diff bytes logged
    std::uint64_t checkpoints = 0;
    std::uint64_t recoveredTxns = 0;
    std::uint64_t discardedFrames = 0;

    void reset() { *this = NvwalStats{}; }
};

/**
 * NVWAL log manager. Owns the persistent heap inside the superblock's
 * log region and the volatile WAL index.
 */
class NvwalLog
{
  public:
    NvwalLog(pm::PmDevice &device, const pager::Superblock &sb);

    /** Format the heap (fresh database). */
    void format();

    /** Attach after restart/crash: scan the heap, rebuild the WAL
     *  index from committed frames, discard uncommitted ones.
     *  @p breakdown (optional) receives per-phase timings/counters. */
    Status recover(RecoveryBreakdown *breakdown = nullptr);

    /**
     * Commit @p pages under @p txid: diff, allocate, store, flush,
     * commit mark, index (see file comment for phase attribution).
     */
    Status commitTx(TxId txid, std::span<const NvwalDirtyPage> pages);

    /**
     * Materialize the current committed state of @p pid into @p out:
     * the database image overlaid with this page's committed frames in
     * sequence order. Used on buffer-cache misses and at checkpoint.
     */
    void fetchPage(PageId pid, std::vector<std::uint8_t> &out);

    /** Heap pressure check (drives lazy checkpointing). */
    bool needsCheckpoint() const;

    /**
     * Lazy checkpoint: apply every indexed page to the database image,
     * flush, then reset the heap and index.
     */
    Status checkpoint();

    NvwalStats &stats() { return stats_; }
    NvHeap &heap() { return heap_; }

    /** Number of pages with committed frames in the index. */
    std::size_t indexedPages() const { return index_.size(); }

    /** Highest txid seen by the last recover() scan; the engine
     *  resumes its transaction counter above this so stale uncommitted
     *  frames can never collide with a fresh commit mark. */
    TxId lastTxid() const { return lastTxid_; }

  private:
    static constexpr std::uint32_t kKindData = 1;
    static constexpr std::uint32_t kKindCommit = 2;

    struct FrameLoc
    {
        std::uint32_t seq;
        PmOffset off;       //!< heap payload offset
        std::uint32_t size; //!< payload size
    };

    /** Word-granularity diff; adjacent ranges closer than 16 bytes are
     *  merged (fewer, larger ranges — as NVWAL does). */
    static void computeDiff(const std::uint8_t *data,
                            const std::uint8_t *clean, std::size_t len,
                            std::vector<std::pair<std::uint16_t,
                                                  std::uint16_t>> &out);

    /** Apply one committed frame at @p off onto @p page. */
    bool applyFrame(PmOffset off, std::uint32_t size,
                    std::vector<std::uint8_t> &page);

    pm::PmDevice &device_;
    pager::Superblock sb_;
    NvHeap heap_;
    std::uint32_t nextSeq_ = 1;
    TxId lastTxid_ = 0;
    std::unordered_map<PageId, std::vector<FrameLoc>> index_;
    NvwalStats stats_;
};

} // namespace fasp::wal

#endif // FASP_WAL_NVWAL_LOG_H
