#include "wal/slot_header_log.h"

#include <algorithm>
#include <chrono>

#include "common/crc32.h"
#include "common/logging.h"
#include "pager/pager.h"
#include "pm/device.h"

namespace fasp::wal {

namespace {
/** Log-header magic ("FSHLOG01"). */
constexpr std::uint64_t kLogMagic = 0x4653484c4f473031ull;
} // namespace

SlotHeaderLog::SlotHeaderLog(pm::PmDevice &device,
                             const pager::Superblock &sb)
    : device_(device), sb_(sb), region_(sb.logRegion()),
      writeOff_(entryStart()), runningCrc_(0)
{
    FASP_ASSERT(region_.len >= 4096);
}

void
SlotHeaderLog::writeLogHeader()
{
    pm::SiteScope site(device_, "SlotHeaderLog::writeLogHeader");
    std::uint8_t header[20];
    storeU64(header, kLogMagic);
    storeU64(header + 8, epoch_);
    storeU32(header + 16, crc32c(header, 16));
    device_.write(region_.off, header, sizeof(header));
    device_.flushRange(region_.off, sizeof(header));
    device_.sfence();
}

void
SlotHeaderLog::ensureAttached()
{
    if (epoch_ != 0)
        return;
    std::uint8_t header[20];
    device_.read(region_.off, header, sizeof(header));
    if (loadU64(header) == kLogMagic &&
        loadU32(header + 16) == crc32c(header, 16)) {
        epoch_ = loadU64(header + 8);
        return;
    }
    // Fresh (or pre-epoch) log: initialize.
    epoch_ = 1;
    writeLogHeader();
}

void
SlotHeaderLog::begin()
{
    ensureAttached();
    device_.txBegin();
    writeOff_ = entryStart();
    runningCrc_ = 0;
    pending_.clear();
}

Status
SlotHeaderLog::appendRaw(EntryType type,
                         std::span<const std::uint8_t> body)
{
    std::size_t entry_len = 4 + body.size();
    if (writeOff_ + entry_len + kCommitEntryBytes > region_.end())
        return Status(StatusCode::LogFull, "slot-header log full");

    std::uint8_t head[4];
    storeU16(head, type);
    storeU16(head + 2, static_cast<std::uint16_t>(body.size()));
    device_.write(writeOff_, head, 4);
    if (!body.empty())
        device_.write(writeOff_ + 4, body.data(), body.size());

    runningCrc_ = crc32c(head, 4, runningCrc_);
    if (!body.empty())
        runningCrc_ = crc32c(body.data(), body.size(), runningCrc_);

    writeOff_ += entry_len;
    stats_.entryBytes += entry_len;
    return Status::ok();
}

Status
SlotHeaderLog::appendPageHeader(PageId pid,
                                std::span<const std::uint8_t> header)
{
    FASP_ASSERT(header.size() >= 12 && header.size() <= sb_.pageSize);
    std::vector<std::uint8_t> body(6 + header.size());
    storeU32(body.data(), pid);
    storeU16(body.data() + 4,
             static_cast<std::uint16_t>(header.size()));
    std::copy(header.begin(), header.end(), body.begin() + 6);
    FASP_RETURN_IF_ERROR(
        appendRaw(kPageHeader, std::span<const std::uint8_t>(body)));

    PendingEntry entry;
    entry.type = kPageHeader;
    entry.pid = pid;
    entry.header.assign(header.begin(), header.end());
    pending_.push_back(std::move(entry));
    stats_.headersLogged++;
    return Status::ok();
}

Status
SlotHeaderLog::appendPageAlloc(PageId pid)
{
    std::uint8_t body[4];
    storeU32(body, pid);
    FASP_RETURN_IF_ERROR(
        appendRaw(kPageAlloc, std::span<const std::uint8_t>(body, 4)));
    pending_.push_back(PendingEntry{kPageAlloc, pid, {}});
    return Status::ok();
}

Status
SlotHeaderLog::appendPageFree(PageId pid)
{
    std::uint8_t body[4];
    storeU32(body, pid);
    FASP_RETURN_IF_ERROR(
        appendRaw(kPageFree, std::span<const std::uint8_t>(body, 4)));
    pending_.push_back(PendingEntry{kPageFree, pid, {}});
    return Status::ok();
}

Status
SlotHeaderLog::commit(TxId txid)
{
    pm::SiteScope site(device_, "SlotHeaderLog::commit");

    // (1) Flush every entry line; ordering among them is free.
    device_.flushRange(entryStart(), writeOff_ - entryStart());
    device_.sfence();

    // Everything the transaction logged (and the pages it pre-flushed)
    // must be ordered before the commit mark below.
    device_.txCommitPoint();

    // (2) The commit mark: only after it is durable is the transaction
    // committed (paper §4.4). It embeds the current epoch so a stale
    // mark from before the last truncation can never be replayed.
    std::uint8_t body[20];
    storeU64(body, txid);
    storeU64(body + 8, epoch_);
    storeU32(body + 16, runningCrc_);
    PmOffset commit_off = writeOff_;
    FASP_RETURN_IF_ERROR(
        appendRaw(kCommit, std::span<const std::uint8_t>(body, 20)));
    device_.flushRange(commit_off, writeOff_ - commit_off);
    device_.sfence();

    stats_.commits++;
    return Status::ok();
}

void
SlotHeaderLog::applyEntry(const PendingEntry &entry,
                          std::vector<std::uint32_t> &bitmap_bytes)
{
    switch (entry.type) {
      case kPageHeader: {
        PmOffset page_off = sb_.pageOffset(entry.pid);
        device_.write(page_off, entry.header.data(),
                      entry.header.size());
        device_.flushRange(page_off, entry.header.size());
        stats_.headersCheckpointed++;
        break;
      }
      case kPageAlloc:
      case kPageFree: {
        pager::BitmapSlot slot = pager::bitmapSlot(entry.pid);
        PmOffset byte_off =
            pager::Pager::bitmapByteOffset(sb_, slot.byteIndex);
        std::uint8_t byte = 0;
        device_.read(byte_off, &byte, 1);
        if (entry.type == kPageAlloc)
            byte = static_cast<std::uint8_t>(byte | slot.mask);
        else
            byte = static_cast<std::uint8_t>(byte & ~slot.mask);
        device_.write(byte_off, &byte, 1);
        bitmap_bytes.push_back(slot.byteIndex);
        break;
      }
      default:
        faspPanic("applyEntry: unexpected entry type %d", entry.type);
    }
}

Status
SlotHeaderLog::checkpointAndTruncate()
{
    pm::SiteScope site(device_, "SlotHeaderLog::checkpointAndTruncate");
    std::vector<std::uint32_t> bitmap_bytes;
    for (const PendingEntry &entry : pending_)
        applyEntry(entry, bitmap_bytes);

    // Flush touched bitmap lines (deduplicated by line).
    std::sort(bitmap_bytes.begin(), bitmap_bytes.end());
    PmOffset last_line = ~PmOffset{0};
    for (std::uint32_t index : bitmap_bytes) {
        PmOffset off = pager::Pager::bitmapByteOffset(sb_, index);
        PmOffset line = cacheLineBase(off);
        if (line != last_line) {
            device_.clflush(off);
            last_line = line;
        }
    }
    device_.sfence();

    truncate();
    device_.txEnd(/*committed=*/true);
    pending_.clear();
    begin();
    return Status::ok();
}

void
SlotHeaderLog::truncate()
{
    // The durable epoch bump IS the truncation: any commit mark still
    // in the log now carries a stale epoch and can never replay. No
    // End marker is needed (recovery's scan stops at the stale commit
    // mark or at malformed bytes), which saves a flush + fence on
    // every single commit's eager checkpoint.
    epoch_++;
    writeLogHeader();
}

Result<SlotHeaderRecovery>
SlotHeaderLog::recover(RecoveryBreakdown *breakdown)
{
    pm::SiteScope site(device_, "SlotHeaderLog::recover");
    RecoveryBreakdown local;
    RecoveryBreakdown &bd = breakdown != nullptr ? *breakdown : local;
    auto ns_since = [](std::chrono::steady_clock::time_point t0) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0).count());
    };
    auto scan_started = std::chrono::steady_clock::now();

    ensureAttached();
    SlotHeaderRecovery result;
    PmOffset cursor = entryStart();
    std::uint32_t crc = 0;
    std::vector<PendingEntry> batch;

    auto read_u16 = [&](PmOffset off) { return device_.readU16(off); };

    while (cursor + 4 <= region_.end()) {
        std::uint16_t type = read_u16(cursor);
        std::uint16_t len = read_u16(cursor + 2);
        if (type == kEnd)
            break;
        if (type > kCommit || cursor + 4 + len > region_.end())
            break; // garbage tail
        bd.pagesScanned++;

        std::vector<std::uint8_t> body(len);
        if (len > 0)
            device_.read(cursor + 4, body.data(), len);

        if (type == kCommit) {
            if (len != 20)
                break;
            std::uint64_t logged_epoch = loadU64(body.data() + 8);
            std::uint32_t logged_crc = loadU32(body.data() + 16);
            if (logged_epoch != epoch_)
                break; // stale mark from before the last truncation
            if (logged_crc != crc)
                break; // torn commit mark: not committed
            // Replay this committed batch (idempotent).
            bd.scanNs += ns_since(scan_started);
            pending_ = std::move(batch);
            bd.recordsReplayed = pending_.size();
            for (const PendingEntry &entry : pending_) {
                if (entry.type == kPageHeader)
                    result.touchedPages.push_back(entry.pid);
            }
            auto replay_started = std::chrono::steady_clock::now();
            FASP_RETURN_IF_ERROR(checkpointAndTruncate());
            bd.replayNs += ns_since(replay_started);
            result.replayed = true;
            stats_.recoveredTxns++;
            // Eager checkpointing means one tx per log; stop here.
            return result;
        }

        // Accumulate the entry into the running CRC and the batch.
        std::uint8_t head[4];
        storeU16(head, type);
        storeU16(head + 2, len);
        crc = crc32c(head, 4, crc);
        if (len > 0)
            crc = crc32c(body.data(), len, crc);

        // A malformed entry is a torn uncommitted tail (only whole,
        // CRC-validated transactions ever count): stop scanning. The
        // commit-mark CRC covers the raw bytes, so a torn entry can
        // never pair with a valid commit mark.
        PendingEntry entry;
        entry.type = static_cast<EntryType>(type);
        bool malformed = false;
        switch (type) {
          case kPageHeader: {
            if (len < 6) {
                malformed = true;
                break;
            }
            entry.pid = loadU32(body.data());
            std::uint16_t hlen = loadU16(body.data() + 4);
            if (hlen + 6u != len || entry.pid >= sb_.pageCount) {
                malformed = true;
                break;
            }
            entry.header.assign(body.begin() + 6, body.end());
            break;
          }
          case kPageAlloc:
          case kPageFree:
            if (len != 4) {
                malformed = true;
                break;
            }
            entry.pid = loadU32(body.data());
            if (entry.pid >= sb_.pageCount)
                malformed = true;
            break;
        }
        if (malformed)
            break;
        batch.push_back(std::move(entry));
        cursor += 4 + len;
    }

    // No valid commit mark: discard everything (paper §4.4 — the
    // original pages were never altered, so recovery is trivial).
    bd.scanNs += ns_since(scan_started);
    auto discard_started = std::chrono::steady_clock::now();
    if (!batch.empty()) {
        stats_.discardedTxns++;
        bd.recordsDiscarded = batch.size();
    }
    truncate();
    begin();
    bd.discardNs += ns_since(discard_started);
    return result;
}

} // namespace fasp::wal
