#include "wal/nvwal_log.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "pm/device.h"
#include "pm/phase.h"

namespace fasp::wal {

using pm::Component;
using pm::PhaseScope;

NvwalLog::NvwalLog(pm::PmDevice &device, const pager::Superblock &sb)
    : device_(device), sb_(sb), heap_(device, sb.logRegion())
{}

void
NvwalLog::format()
{
    heap_.formatRegion();
    index_.clear();
    nextSeq_ = 1;
}

void
NvwalLog::computeDiff(
    const std::uint8_t *data, const std::uint8_t *clean, std::size_t len,
    std::vector<std::pair<std::uint16_t, std::uint16_t>> &out)
{
    out.clear();
    constexpr std::size_t kWord = 8;
    constexpr std::size_t kMergeGap = 16;
    std::size_t range_start = len; // sentinel: no open range
    std::size_t range_end = 0;

    for (std::size_t off = 0; off < len; off += kWord) {
        std::size_t n = std::min(kWord, len - off);
        bool differs = std::memcmp(data + off, clean + off, n) != 0;
        if (!differs)
            continue;
        if (range_start != len && off <= range_end + kMergeGap) {
            range_end = off + n;
        } else {
            if (range_start != len) {
                out.emplace_back(
                    static_cast<std::uint16_t>(range_start),
                    static_cast<std::uint16_t>(range_end -
                                               range_start));
            }
            range_start = off;
            range_end = off + n;
        }
    }
    if (range_start != len) {
        out.emplace_back(
            static_cast<std::uint16_t>(range_start),
            static_cast<std::uint16_t>(range_end - range_start));
    }
}

Status
NvwalLog::commitTx(TxId txid, std::span<const NvwalDirtyPage> pages)
{
    pm::SiteScope site(device_, "NvwalLog::commitTx");
    device_.txBegin();
    pm::PhaseTracker *tracker = device_.phaseTracker();
    struct FramePlan
    {
        PageId pid;
        std::vector<std::pair<std::uint16_t, std::uint16_t>> ranges;
        std::vector<std::uint8_t> bytes; // serialized frame
        PmOffset off = 0;
        std::uint32_t seq = 0;
    };
    std::vector<FramePlan> plans;
    plans.reserve(pages.size());

    // (1) Differential-log computation (Figure 8 "NVWAL Computation").
    {
        PhaseScope scope(tracker, Component::NvwalCompute);
        for (const NvwalDirtyPage &page : pages) {
            FramePlan plan;
            plan.pid = page.pid;
            computeDiff(page.data, page.clean, sb_.pageSize,
                        plan.ranges);
            if (plan.ranges.empty())
                continue;
            plan.seq = nextSeq_++;

            std::size_t data_bytes = 0;
            for (const auto &[off, rlen] : plan.ranges)
                data_bytes += rlen;

            std::size_t frame_bytes =
                24 + 4 * plan.ranges.size() + data_bytes + 4;
            plan.bytes.resize(frame_bytes);
            std::uint8_t *p = plan.bytes.data();
            storeU32(p, kKindData);
            storeU64(p + 4, txid);
            storeU32(p + 12, plan.pid);
            storeU32(p + 16, plan.seq);
            storeU16(p + 20,
                     static_cast<std::uint16_t>(plan.ranges.size()));
            storeU16(p + 22, 0);
            std::size_t cursor = 24;
            for (const auto &[off, rlen] : plan.ranges) {
                storeU16(p + cursor, off);
                storeU16(p + cursor + 2, rlen);
                cursor += 4;
            }
            for (const auto &[off, rlen] : plan.ranges) {
                std::memcpy(p + cursor, page.data + off, rlen);
                cursor += rlen;
            }
            storeU32(p + cursor, crc32c(p, cursor));
            stats_.diffBytes += data_bytes;
            plans.push_back(std::move(plan));
        }
    }

    // (2) Persistent-heap allocation (Figure 8 "Heap Management").
    {
        PhaseScope scope(tracker, Component::HeapMgmt);
        for (FramePlan &plan : plans) {
            auto off = heap_.pmalloc(
                static_cast<std::uint32_t>(plan.bytes.size()));
            if (!off.isOk())
                return off.status();
            plan.off = *off;
        }
    }

    // (3) Store + flush the frames, fence, then the commit frame
    // (Figure 8 "Log Flush").
    {
        PhaseScope scope(tracker, Component::LogFlush);
        for (const FramePlan &plan : plans) {
            device_.write(plan.off, plan.bytes.data(),
                          plan.bytes.size());
            device_.flushRange(plan.off, plan.bytes.size());
            stats_.frames++;
            stats_.frameBytes += plan.bytes.size();
        }
        device_.sfence();

        std::uint8_t commit[24];
        storeU32(commit, kKindCommit);
        storeU64(commit + 4, txid);
        storeU32(commit + 12, 0);
        storeU32(commit + 16, nextSeq_++);
        storeU32(commit + 20, crc32c(commit, 20));
        PmOffset commit_off;
        {
            PhaseScope heap_scope(tracker, Component::HeapMgmt);
            auto res = heap_.pmalloc(sizeof(commit));
            if (!res.isOk())
                return res.status();
            commit_off = *res;
        }
        // Every data frame (and the commit frame's heap headers) must
        // be fenced before the commit frame itself is stored.
        device_.txCommitPoint();
        device_.write(commit_off, commit, sizeof(commit));
        device_.flushRange(commit_off, sizeof(commit));
        device_.sfence();
        stats_.frameBytes += sizeof(commit);
    }

    // (4) Volatile WAL-index construction (Figure 8 "Misc").
    {
        PhaseScope scope(tracker, Component::WalIndex);
        for (const FramePlan &plan : plans) {
            index_[plan.pid].push_back(FrameLoc{
                plan.seq, plan.off,
                static_cast<std::uint32_t>(plan.bytes.size())});
        }
    }

    device_.txEnd(/*committed=*/true);
    stats_.commits++;
    return Status::ok();
}

bool
NvwalLog::applyFrame(PmOffset off, std::uint32_t size,
                     std::vector<std::uint8_t> &page)
{
    if (size < 28)
        return false;
    std::vector<std::uint8_t> frame(size);
    device_.read(off, frame.data(), size);
    std::uint16_t nranges = loadU16(frame.data() + 20);
    std::size_t cursor = 24 + 4 * static_cast<std::size_t>(nranges);
    if (cursor + 4 > size)
        return false;
    std::size_t data_cursor = cursor;
    // Data bytes follow the range table; ranges are applied in order.
    for (std::uint16_t i = 0; i < nranges; ++i) {
        std::uint16_t roff = loadU16(frame.data() + 24 + 4 * i);
        std::uint16_t rlen = loadU16(frame.data() + 24 + 4 * i + 2);
        if (roff + rlen > page.size() || data_cursor + rlen > size)
            return false;
        std::memcpy(page.data() + roff, frame.data() + data_cursor,
                    rlen);
        data_cursor += rlen;
    }
    return true;
}

void
NvwalLog::fetchPage(PageId pid, std::vector<std::uint8_t> &out)
{
    out.resize(sb_.pageSize);
    device_.read(sb_.pageOffset(pid), out.data(), out.size());
    auto it = index_.find(pid);
    if (it == index_.end())
        return;
    for (const FrameLoc &loc : it->second)
        applyFrame(loc.off, loc.size, out);
}

bool
NvwalLog::needsCheckpoint() const
{
    return heap_.fillRatio() > 0.75;
}

Status
NvwalLog::checkpoint()
{
    pm::SiteScope site(device_, "NvwalLog::checkpoint");
    pm::PhaseTracker *tracker = device_.phaseTracker();
    PhaseScope scope(tracker, Component::Checkpoint);

    std::vector<PageId> pids;
    pids.reserve(index_.size());
    for (const auto &[pid, frames] : index_)
        pids.push_back(pid);
    std::sort(pids.begin(), pids.end());

    std::vector<std::uint8_t> page;
    for (PageId pid : pids) {
        fetchPage(pid, page);
        PmOffset off = sb_.pageOffset(pid);
        device_.write(off, page.data(), page.size());
        device_.flushRange(off, page.size());
    }
    device_.sfence();

    // Database image is current: the whole WAL can go.
    heap_.reset();
    index_.clear();
    stats_.checkpoints++;
    return Status::ok();
}

Status
NvwalLog::recover(RecoveryBreakdown *breakdown)
{
    pm::SiteScope site(device_, "NvwalLog::recover");
    RecoveryBreakdown local;
    RecoveryBreakdown &bd = breakdown != nullptr ? *breakdown : local;
    auto ns_since = [](std::chrono::steady_clock::time_point t0) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0).count());
    };
    auto scan_started = std::chrono::steady_clock::now();

    index_.clear();
    FASP_RETURN_IF_ERROR(heap_.attach());

    struct RawFrame
    {
        TxId txid;
        PageId pid;
        std::uint32_t seq;
        PmOffset off;
        std::uint32_t size;
        bool commit;
    };
    std::vector<RawFrame> frames;
    std::vector<PmOffset> bad_frames;

    heap_.scanAllocated([&](PmOffset off, std::uint32_t size) {
        bd.pagesScanned++;
        std::vector<std::uint8_t> buf(size);
        device_.read(off, buf.data(), size);
        if (size < 24) {
            bad_frames.push_back(off);
            return;
        }
        std::uint32_t kind = loadU32(buf.data());
        // Heap blocks are size-rounded, so recompute the logical frame
        // length from the frame's own header before checking the CRC.
        std::size_t crc_at;
        if (kind == kKindCommit) {
            crc_at = 20;
        } else if (kind == kKindData) {
            std::uint16_t nranges = loadU16(buf.data() + 20);
            std::size_t cursor = 24 + 4 * static_cast<std::size_t>(
                nranges);
            if (cursor + 4 > size) {
                bad_frames.push_back(off);
                return;
            }
            std::size_t data_bytes = 0;
            for (std::uint16_t i = 0; i < nranges; ++i)
                data_bytes += loadU16(buf.data() + 24 + 4 * i + 2);
            crc_at = cursor + data_bytes;
            if (crc_at + 4 > size) {
                bad_frames.push_back(off);
                return;
            }
        } else {
            bad_frames.push_back(off);
            return;
        }
        if (loadU32(buf.data() + crc_at) !=
            crc32c(buf.data(), crc_at)) {
            bad_frames.push_back(off);
            return;
        }
        RawFrame raw;
        raw.txid = loadU64(buf.data() + 4);
        raw.pid = loadU32(buf.data() + 12);
        raw.seq = loadU32(buf.data() + 16);
        raw.off = off;
        raw.size = size;
        raw.commit = kind == kKindCommit;
        frames.push_back(raw);
    });

    // Committed txids are those with a valid commit frame.
    std::unordered_map<TxId, bool> committed;
    std::uint32_t max_seq = 0;
    lastTxid_ = 0;
    for (const RawFrame &raw : frames) {
        if (raw.commit)
            committed[raw.txid] = true;
        max_seq = std::max(max_seq, raw.seq);
        lastTxid_ = std::max(lastTxid_, raw.txid);
    }
    nextSeq_ = max_seq + 1;
    bd.scanNs += ns_since(scan_started);

    auto replay_started = std::chrono::steady_clock::now();
    std::vector<RawFrame> keep;
    std::vector<PmOffset> drop;
    for (const RawFrame &raw : frames) {
        if (raw.commit)
            continue;
        if (committed.count(raw.txid)) {
            keep.push_back(raw);
            stats_.recoveredTxns++; // counted per surviving frame
        } else {
            drop.push_back(raw.off);
        }
    }

    std::sort(keep.begin(), keep.end(),
              [](const RawFrame &a, const RawFrame &b) {
                  return a.seq < b.seq;
              });
    for (const RawFrame &raw : keep)
        index_[raw.pid].push_back(FrameLoc{raw.seq, raw.off, raw.size});
    bd.recordsReplayed = keep.size();
    bd.replayNs += ns_since(replay_started);

    auto discard_started = std::chrono::steady_clock::now();
    for (PmOffset off : drop) {
        heap_.pfree(off);
        stats_.discardedFrames++;
    }
    bd.recordsDiscarded = drop.size();
    bd.discardNs += ns_since(discard_started);

    // Torn-record repair: a frame whose CRC or framing failed was torn
    // mid-append; releasing its heap block removes it for good.
    auto repair_started = std::chrono::steady_clock::now();
    for (PmOffset off : bad_frames) {
        heap_.pfree(off);
        stats_.discardedFrames++;
    }
    bd.tornRecords = bad_frames.size();
    bd.repairNs += ns_since(repair_started);
    return Status::ok();
}

} // namespace fasp::wal
