/**
 * @file
 * LegacyWal: page-granularity write-ahead logging (paper Figure 1b /
 * Section 2.1), i.e. SQLite's WAL mode with the log placed in PM.
 *
 * At commit, each dirty page is appended to the log as a *full page*
 * frame, followed by a commit frame. The database image is only
 * updated by (lazy) checkpointing. Readers overlay the newest
 * committed frame of a page over the database image.
 *
 * Compared with NVWAL this lacks differential logging — the ablation
 * that isolates how much of NVWAL's win comes from logging less data.
 *
 * Frame format: [u32 kind][u32 pid][u64 txid][u64 epoch][u32 seq]
 *               [u32 crc][page bytes (data frames only)]
 * kind: 0 = end-of-log, 1 = data, 2 = commit. The epoch (durably
 * stored in the log header and bumped on every truncation) prevents
 * stale already-checkpointed frames from being replayed after a crash
 * lands mid-append over the truncation marker.
 */

#ifndef FASP_WAL_LEGACY_WAL_H
#define FASP_WAL_LEGACY_WAL_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "pager/superblock.h"
#include "wal/recovery_stats.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::wal {

/** A dirty page handed to LegacyWal::commitTx. */
struct WalDirtyPage
{
    PageId pid;
    const std::uint8_t *data; //!< full page image
};

/** Counters. */
struct LegacyWalStats
{
    std::uint64_t commits = 0;
    std::uint64_t frames = 0;
    std::uint64_t frameBytes = 0;
    std::uint64_t checkpoints = 0;

    void reset() { *this = LegacyWalStats{}; }
};

class LegacyWal
{
  public:
    LegacyWal(pm::PmDevice &device, const pager::Superblock &sb);

    /** Initialize an empty log. */
    void format();

    /** Rebuild the frame index after restart/crash: committed frames
     *  are indexed, an uncommitted tail is ignored. @p breakdown
     *  (optional) receives per-phase timings/counters. */
    Status recover(RecoveryBreakdown *breakdown = nullptr);

    /** Append full-page frames + commit frame; flush; index. */
    Status commitTx(TxId txid, std::span<const WalDirtyPage> pages);

    /** Newest committed state of @p pid (database image + overlay). */
    void fetchPage(PageId pid, std::vector<std::uint8_t> &out);

    bool needsCheckpoint() const;

    /** Apply the newest frame of every page to the database image,
     *  flush, and truncate the log. */
    Status checkpoint();

    LegacyWalStats &stats() { return stats_; }

    /** Bytes of log space consumed since the last checkpoint. */
    std::uint64_t bytesUsed() const { return writeOff_ - logStart(); }

    /** Current truncation epoch (tests). */
    std::uint64_t epoch() const { return epoch_; }

    /** Highest committed txid seen by the last recover() scan; the
     *  engine resumes its transaction counter above this so txids
     *  never collide across restarts. */
    TxId lastTxid() const { return lastTxid_; }

  private:
    static constexpr std::uint32_t kKindEnd = 0;
    static constexpr std::uint32_t kKindData = 1;
    static constexpr std::uint32_t kKindCommit = 2;
    static constexpr std::size_t kFrameHeaderBytes = 32;

    PmOffset logStart() const { return region_.off + 64; }
    std::size_t dataFrameBytes() const
    {
        return kFrameHeaderBytes + sb_.pageSize;
    }

    void truncate();
    void ensureAttached();
    void writeLogHeader();

    pm::PmDevice &device_;
    pager::Superblock sb_;
    pager::Region region_;
    PmOffset writeOff_;
    std::uint64_t epoch_ = 0; //!< 0 = not yet attached
    TxId lastTxid_ = 0;
    std::uint32_t nextSeq_ = 1;

    /** pid -> device offset of its newest committed data frame. */
    std::unordered_map<PageId, PmOffset> index_;
    LegacyWalStats stats_;
};

} // namespace fasp::wal

#endif // FASP_WAL_LEGACY_WAL_H
