#include "wal/volatile_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace fasp::wal {

VolatileCache::VolatileCache(std::size_t page_size,
                             std::size_t capacity_pages, Fetcher fetcher)
    : pageSize_(page_size), capacity_(capacity_pages),
      fetcher_(std::move(fetcher))
{
    FASP_ASSERT(capacity_ > 0);
}

CachedPage &
VolatileCache::get(PageId pid)
{
    auto it = pages_.find(pid);
    if (it != pages_.end()) {
        hits_++;
        it->second.lruTick = ++tick_;
        return it->second;
    }
    misses_++;
    maybeEvict();
    CachedPage &page = pages_[pid];
    page.data.resize(pageSize_);
    fetcher_(pid, page.data);
    page.clean = page.data;
    page.lruTick = ++tick_;
    return page;
}

CachedPage *
VolatileCache::find(PageId pid)
{
    auto it = pages_.find(pid);
    if (it == pages_.end())
        return nullptr;
    it->second.lruTick = ++tick_;
    return &it->second;
}

CachedPage &
VolatileCache::installFresh(PageId pid)
{
    maybeEvict();
    CachedPage &page = pages_[pid];
    page.data.assign(pageSize_, 0);
    page.clean.assign(pageSize_, 0);
    page.lruTick = ++tick_;
    return page;
}

void
VolatileCache::markDirty(PageId pid)
{
    auto it = pages_.find(pid);
    FASP_ASSERT(it != pages_.end());
    it->second.dirty = true;
}

void
VolatileCache::pin(PageId pid)
{
    auto it = pages_.find(pid);
    FASP_ASSERT(it != pages_.end());
    it->second.pinned = true;
}

void
VolatileCache::unpinAll()
{
    for (auto &[pid, page] : pages_)
        page.pinned = false;
}

std::vector<PageId>
VolatileCache::dirtyPages() const
{
    std::vector<PageId> out;
    for (const auto &[pid, page] : pages_) {
        if (page.dirty)
            out.push_back(pid);
    }
    std::sort(out.begin(), out.end());
    return out;
}

void
VolatileCache::commitPage(PageId pid)
{
    auto it = pages_.find(pid);
    FASP_ASSERT(it != pages_.end());
    it->second.clean = it->second.data;
    it->second.dirty = false;
}

void
VolatileCache::rollbackPage(PageId pid)
{
    auto it = pages_.find(pid);
    FASP_ASSERT(it != pages_.end());
    it->second.data = it->second.clean;
    it->second.dirty = false;
}

void
VolatileCache::drop(PageId pid)
{
    pages_.erase(pid);
}

void
VolatileCache::clear()
{
    pages_.clear();
}

void
VolatileCache::maybeEvict()
{
    if (pages_.size() < capacity_)
        return;
    // Evict the least-recently-used clean unpinned page.
    PageId victim = kInvalidPageId;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (const auto &[pid, page] : pages_) {
        if (!page.dirty && !page.pinned && page.lruTick < oldest) {
            oldest = page.lruTick;
            victim = pid;
        }
    }
    if (victim != kInvalidPageId)
        pages_.erase(victim);
}

} // namespace fasp::wal
