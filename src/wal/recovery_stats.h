/**
 * @file
 * RecoveryBreakdown: per-phase accounting of one crash-recovery pass,
 * filled by each log manager's recover() and folded by the engine
 * layer into the obs::RecoveryLedger (DESIGN.md §12).
 *
 * The four phases follow the shape every recovery here shares:
 *   scan        walk the durable log/heap/ring and validate framing
 *   replay      apply surviving committed records to the image
 *   discard     drop uncommitted or stale records
 *   torn repair rebuild state damaged mid-write (free-list rebuild,
 *               flight-recorder slot zeroing, journal invalidation)
 */

#ifndef FASP_WAL_RECOVERY_STATS_H
#define FASP_WAL_RECOVERY_STATS_H

#include <cstdint>

namespace fasp::wal {

struct RecoveryBreakdown
{
    std::uint64_t scanNs = 0;
    std::uint64_t replayNs = 0;
    std::uint64_t discardNs = 0;
    std::uint64_t repairNs = 0;

    std::uint64_t pagesScanned = 0;     //!< pages / frames / slots read
    std::uint64_t recordsReplayed = 0;  //!< committed records applied
    std::uint64_t recordsDiscarded = 0; //!< uncommitted/stale dropped
    std::uint64_t tornRecords = 0;      //!< CRC-invalid records repaired

    std::uint64_t totalNs() const
    {
        return scanNs + replayNs + discardNs + repairNs;
    }
};

} // namespace fasp::wal

#endif // FASP_WAL_RECOVERY_STATS_H
