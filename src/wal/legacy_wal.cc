#include "wal/legacy_wal.h"

#include <algorithm>
#include <chrono>

#include "common/byte_io.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "pm/device.h"

namespace fasp::wal {

namespace {
/** Log-header magic ("LWALLOG1"). */
constexpr std::uint64_t kWalMagic = 0x4c57414c4c4f4731ull;
} // namespace

LegacyWal::LegacyWal(pm::PmDevice &device, const pager::Superblock &sb)
    : device_(device), sb_(sb), region_(sb.logRegion()),
      writeOff_(logStart())
{}

void
LegacyWal::writeLogHeader()
{
    pm::SiteScope site(device_, "LegacyWal::writeLogHeader");
    std::uint8_t header[20];
    storeU64(header, kWalMagic);
    storeU64(header + 8, epoch_);
    storeU32(header + 16, crc32c(header, 16));
    device_.write(region_.off, header, sizeof(header));
    device_.flushRange(region_.off, sizeof(header));
    device_.sfence();
}

void
LegacyWal::ensureAttached()
{
    if (epoch_ != 0)
        return;
    std::uint8_t header[20];
    device_.read(region_.off, header, sizeof(header));
    if (loadU64(header) == kWalMagic &&
        loadU32(header + 16) == crc32c(header, 16)) {
        epoch_ = loadU64(header + 8);
        return;
    }
    epoch_ = 1;
    writeLogHeader();
}

void
LegacyWal::format()
{
    epoch_ = 1;
    writeLogHeader();
    truncate();
}

void
LegacyWal::truncate()
{
    pm::SiteScope site(device_, "LegacyWal::truncate");
    ensureAttached();
    // Epoch bump first: stale frames can no longer be replayed even if
    // the End marker write is later overwritten and torn.
    epoch_++;
    writeLogHeader();
    std::uint8_t head[kFrameHeaderBytes] = {};
    device_.write(logStart(), head, sizeof(head));
    device_.flushRange(logStart(), sizeof(head));
    device_.sfence();
    writeOff_ = logStart();
    index_.clear();
}

Status
LegacyWal::commitTx(TxId txid, std::span<const WalDirtyPage> pages)
{
    pm::SiteScope site(device_, "LegacyWal::commitTx");
    ensureAttached();
    device_.txBegin();
    // Frames for every dirty page...
    std::vector<std::pair<PageId, PmOffset>> appended;
    for (const WalDirtyPage &page : pages) {
        if (writeOff_ + dataFrameBytes() + kFrameHeaderBytes >
            region_.end()) {
            return Status(StatusCode::LogFull, "legacy WAL full");
        }
        std::uint8_t head[kFrameHeaderBytes] = {};
        storeU32(head, kKindData);
        storeU32(head + 4, page.pid);
        storeU64(head + 8, txid);
        storeU64(head + 16, epoch_);
        storeU32(head + 24, nextSeq_++);
        std::uint32_t crc = crc32c(head, 28);
        crc = crc32c(page.data, sb_.pageSize, crc);
        storeU32(head + 28, crc);
        device_.write(writeOff_, head, sizeof(head));
        device_.write(writeOff_ + kFrameHeaderBytes, page.data,
                      sb_.pageSize);
        device_.flushRange(writeOff_, dataFrameBytes());
        appended.emplace_back(page.pid, writeOff_);
        writeOff_ += dataFrameBytes();
        stats_.frames++;
        stats_.frameBytes += dataFrameBytes();
    }
    device_.sfence();

    // Every data frame must be fenced before the commit frame makes
    // the transaction visible to recovery.
    device_.txCommitPoint();

    // ...then the commit frame.
    std::uint8_t commit[kFrameHeaderBytes] = {};
    storeU32(commit, kKindCommit);
    storeU64(commit + 8, txid);
    storeU64(commit + 16, epoch_);
    storeU32(commit + 24, nextSeq_++);
    storeU32(commit + 28, crc32c(commit, 28));
    device_.write(writeOff_, commit, sizeof(commit));
    device_.flushRange(writeOff_, sizeof(commit));
    device_.sfence();
    writeOff_ += kFrameHeaderBytes;
    stats_.frameBytes += kFrameHeaderBytes;

    device_.txEnd(/*committed=*/true);
    for (const auto &[pid, off] : appended)
        index_[pid] = off;
    stats_.commits++;
    return Status::ok();
}

void
LegacyWal::fetchPage(PageId pid, std::vector<std::uint8_t> &out)
{
    out.resize(sb_.pageSize);
    auto it = index_.find(pid);
    if (it != index_.end()) {
        device_.read(it->second + kFrameHeaderBytes, out.data(),
                     out.size());
        return;
    }
    device_.read(sb_.pageOffset(pid), out.data(), out.size());
}

bool
LegacyWal::needsCheckpoint() const
{
    return static_cast<double>(bytesUsed()) >
           0.75 * static_cast<double>(region_.len - 64);
}

Status
LegacyWal::checkpoint()
{
    pm::SiteScope site(device_, "LegacyWal::checkpoint");
    std::vector<PageId> pids;
    pids.reserve(index_.size());
    for (const auto &[pid, off] : index_)
        pids.push_back(pid);
    std::sort(pids.begin(), pids.end());

    std::vector<std::uint8_t> page;
    for (PageId pid : pids) {
        fetchPage(pid, page);
        PmOffset off = sb_.pageOffset(pid);
        device_.write(off, page.data(), page.size());
        device_.flushRange(off, page.size());
    }
    device_.sfence();
    truncate();
    stats_.checkpoints++;
    return Status::ok();
}

Status
LegacyWal::recover(RecoveryBreakdown *breakdown)
{
    pm::SiteScope site(device_, "LegacyWal::recover");
    RecoveryBreakdown local;
    RecoveryBreakdown &bd = breakdown != nullptr ? *breakdown : local;
    auto ns_since = [](std::chrono::steady_clock::time_point t0) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0).count());
    };
    auto scan_started = std::chrono::steady_clock::now();
    ensureAttached();
    index_.clear();
    lastTxid_ = 0;
    struct RawFrame
    {
        PageId pid;
        TxId txid;
        std::uint32_t seq;
        PmOffset off;
    };
    std::vector<RawFrame> frames;
    std::unordered_map<TxId, bool> committed;

    PmOffset cursor = logStart();
    std::uint32_t max_seq = 0;
    std::vector<std::uint8_t> page(sb_.pageSize);
    while (cursor + kFrameHeaderBytes <= region_.end()) {
        std::uint8_t head[kFrameHeaderBytes];
        device_.read(cursor, head, sizeof(head));
        std::uint32_t kind = loadU32(head);
        if (kind == kKindEnd)
            break;
        if (kind != kKindData && kind != kKindCommit)
            break;
        if (loadU64(head + 16) != epoch_)
            break; // stale frame from before the last truncation

        std::uint32_t crc = crc32c(head, 28);
        if (kind == kKindData) {
            if (cursor + dataFrameBytes() > region_.end())
                break;
            device_.read(cursor + kFrameHeaderBytes, page.data(),
                         page.size());
            crc = crc32c(page.data(), page.size(), crc);
        }
        if (crc != loadU32(head + 28)) {
            bd.tornRecords++;
            break; // torn tail
        }
        bd.pagesScanned++;

        RawFrame raw;
        raw.pid = loadU32(head + 4);
        raw.txid = loadU64(head + 8);
        raw.seq = loadU32(head + 24);
        raw.off = cursor;
        max_seq = std::max(max_seq, raw.seq);
        lastTxid_ = std::max(lastTxid_, raw.txid);

        if (kind == kKindCommit) {
            committed[raw.txid] = true;
            cursor += kFrameHeaderBytes;
        } else {
            frames.push_back(raw);
            cursor += dataFrameBytes();
        }
    }
    writeOff_ = cursor;
    nextSeq_ = max_seq + 1;
    bd.scanNs += ns_since(scan_started);

    auto replay_started = std::chrono::steady_clock::now();
    std::sort(frames.begin(), frames.end(),
              [](const RawFrame &a, const RawFrame &b) {
                  return a.seq < b.seq;
              });
    for (const RawFrame &raw : frames) {
        if (committed.count(raw.txid)) {
            index_[raw.pid] = raw.off;
            bd.recordsReplayed++;
        } else {
            bd.recordsDiscarded++;
        }
    }
    bd.replayNs += ns_since(replay_started);
    return Status::ok();
}

} // namespace fasp::wal
