/**
 * @file
 * VolatileCache: the DRAM buffer cache used by the baseline engines
 * (NVWAL, rollback journal, legacy WAL).
 *
 * The paper's key observation is that this cache forces redundant
 * copies: every transaction updates a volatile copy first and persists
 * it again at commit. The FAST/FASH engines do not use this class at
 * all — their buffer cache *is* persistent memory.
 *
 * Each cached page keeps two images: `data` (the working copy the
 * transaction mutates) and `clean` (a snapshot as of the last commit),
 * which NVWAL's differential logging diffs against and which rollback
 * restores.
 */

#ifndef FASP_WAL_VOLATILE_CACHE_H
#define FASP_WAL_VOLATILE_CACHE_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace fasp::wal {

/** One cached page: working copy + clean snapshot. */
struct CachedPage
{
    std::vector<std::uint8_t> data;  //!< working copy (tx mutations)
    std::vector<std::uint8_t> clean; //!< snapshot at last commit
    bool dirty = false;
    bool pinned = false;             //!< referenced by the live tx
    std::uint64_t lruTick = 0;
};

/**
 * LRU page cache with a miss-fetch callback.
 */
class VolatileCache
{
  public:
    /** Fills a page buffer from durable state on a cache miss. */
    using Fetcher =
        std::function<void(PageId, std::vector<std::uint8_t> &)>;

    /**
     * @param page_size page size in bytes
     * @param capacity_pages eviction threshold (clean pages only are
     *        evicted; dirty pages pin themselves until commit)
     * @param fetcher durable-state reader for misses
     */
    VolatileCache(std::size_t page_size, std::size_t capacity_pages,
                  Fetcher fetcher);

    /** Get (fetching on miss) the cached page for @p pid. */
    CachedPage &get(PageId pid);

    /** Get without fetching; nullptr if absent. */
    CachedPage *find(PageId pid);

    /** Create a zeroed cache entry for a freshly allocated page (no
     *  durable base image to fetch). */
    CachedPage &installFresh(PageId pid);

    /** Mark @p pid dirty (pins it until commitPage/rollbackPage). */
    void markDirty(PageId pid);

    /** Pin @p pid for the duration of the running transaction so the
     *  PageIO views handed to the B-tree stay valid. */
    void pin(PageId pid);

    /** Release every pin (transaction end). */
    void unpinAll();

    /** All currently dirty page ids (sorted, deterministic). */
    std::vector<PageId> dirtyPages() const;

    /** Promote the working copy to the clean snapshot; clears dirty. */
    void commitPage(PageId pid);

    /** Restore the working copy from the clean snapshot. */
    void rollbackPage(PageId pid);

    /** Drop a page from the cache entirely. */
    void drop(PageId pid);

    /** Drop everything (crash simulation: DRAM contents vanish). */
    void clear();

    std::size_t size() const { return pages_.size(); }
    std::size_t pageSize() const { return pageSize_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    void maybeEvict();

    std::size_t pageSize_;
    std::size_t capacity_;
    Fetcher fetcher_;
    std::unordered_map<PageId, CachedPage> pages_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace fasp::wal

#endif // FASP_WAL_VOLATILE_CACHE_H
