/**
 * @file
 * NvHeap: a user-level persistent heap manager, as NVWAL employs to
 * place WAL frames in PM (the paper's Figure 8 "Heap Management" cost
 * component; compare NV-Heaps / NVMalloc / HEAPO).
 *
 * Blocks carry persistent headers so the allocated set can be rebuilt
 * after a crash by a linear scan. Allocation persists the block header
 * (one store + clflush + fence) before handing out the payload — the
 * metadata-durability cost the paper attributes to NVWAL and that the
 * FAST/FASH engines avoid entirely ("FAST does not need a separate heap
 * manager because everything is non-volatile").
 *
 * Layout: [u64 heap magic][block]... where each block is
 *   u32 state (allocated / free / end-of-heap)
 *   u32 payload size
 *   u64 reserved
 *   payload (16-byte aligned)
 */

#ifndef FASP_WAL_NV_HEAP_H
#define FASP_WAL_NV_HEAP_H

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "pager/superblock.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::wal {

/** Allocation counters. */
struct NvHeapStats
{
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t bytesAllocated = 0; //!< cumulative payload bytes
    std::uint64_t scans = 0;          //!< recovery scans performed

    void reset() { *this = NvHeapStats{}; }
};

/**
 * Persistent heap over one device region.
 */
class NvHeap
{
  public:
    static constexpr std::uint32_t kStateEnd = 0;
    static constexpr std::uint32_t kStateAllocated = 0xa110ca7e;
    static constexpr std::uint32_t kStateFree = 0xf4eeb10c;
    static constexpr std::size_t kBlockHeaderBytes = 16;

    NvHeap(pm::PmDevice &device, const pager::Region &region);

    /** Initialize an empty heap (writes magic + end marker). */
    void formatRegion();

    /** Attach to an existing heap, rebuilding the volatile free lists
     *  and bump pointer by scanning block headers. */
    Status attach();

    /**
     * Allocate @p size payload bytes. Persists the block header before
     * returning (this is the HeapMgmt cost).
     * @return device offset of the payload.
     */
    Result<PmOffset> pmalloc(std::uint32_t size);

    /** Free the block whose payload starts at @p payload_off. */
    void pfree(PmOffset payload_off);

    /** Drop every block (post-checkpoint truncation). */
    void reset();

    /** Invoke @p fn for every allocated block (payload off, size).
     *  Used by WAL recovery to find surviving frames. */
    void scanAllocated(
        const std::function<void(PmOffset, std::uint32_t)> &fn);

    /** Payload bytes currently allocated (live). */
    std::uint64_t liveBytes() const { return liveBytes_; }

    /** Fraction of the region consumed by the bump pointer. */
    double fillRatio() const;

    NvHeapStats &stats() { return stats_; }

  private:
    static constexpr std::uint64_t kHeapMagic = 0x4e56484541503031ull;

    /** Align payload sizes to keep headers naturally aligned. */
    static std::uint32_t roundSize(std::uint32_t size)
    {
        return (size + 15u) & ~15u;
    }

    PmOffset firstBlockOff() const { return region_.off + 16; }

    void writeBlockHeader(PmOffset block_off, std::uint32_t state,
                          std::uint32_t size, bool flush);

    pm::PmDevice &device_;
    pager::Region region_;
    PmOffset bumpOff_;      //!< next unused block offset
    std::uint64_t liveBytes_ = 0;

    /** size-class -> block offsets (volatile; rebuilt on attach). */
    std::map<std::uint32_t, std::vector<PmOffset>> freeLists_;

    NvHeapStats stats_;
};

} // namespace fasp::wal

#endif // FASP_WAL_NV_HEAP_H
