/**
 * @file
 * RollbackJournal: the traditional journaling baseline (paper Figure
 * 1a / Section 2.1).
 *
 * Before a transaction overwrites database pages in place, the
 * *original* content of every page it will touch is copied to the
 * journal ("write() to journal"), the journal header is sealed and
 * flushed ("fsync() for journal"), the dirty volatile copies overwrite
 * the database pages ("write() to database" + "fsync() for DB"), and
 * finally the journal is invalidated. A crash with a sealed journal
 * rolls the originals back; the commit point is journal invalidation.
 *
 * This doubles the persistent writes at the database layer — the
 * write-amplification the paper's motivation cites.
 *
 * Layout (inside the superblock's log region):
 *   +0  u32 magic, u32 pageCount, u32 crc, u32 reserved
 *   +64 entries: {u32 pid, u32 reserved, page bytes} x pageCount
 */

#ifndef FASP_WAL_JOURNAL_H
#define FASP_WAL_JOURNAL_H

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "pager/superblock.h"
#include "wal/recovery_stats.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::wal {

/** Counters for the write-amplification table. */
struct JournalStats
{
    std::uint64_t commits = 0;
    std::uint64_t pagesJournaled = 0;
    std::uint64_t journalBytes = 0;
    std::uint64_t rollbacks = 0;

    void reset() { *this = JournalStats{}; }
};

class RollbackJournal
{
  public:
    RollbackJournal(pm::PmDevice &device, const pager::Superblock &sb);

    /** Initialize an empty (invalid) journal. */
    void format();

    /** Begin collecting pages for one transaction. */
    void begin();

    /** Copy the current durable content of @p pid into the journal and
     *  flush it (must precede any in-place overwrite of that page). */
    Status journalPage(PageId pid);

    /** Seal the journal: write header {count, crc}, flush, fence. Only
     *  after this may the caller overwrite database pages. */
    Status seal();

    /** Invalidate the journal (the commit point). */
    void invalidate();

    /**
     * Post-crash recovery: a sealed, CRC-valid journal is rolled back
     * into the database image; anything else is discarded.
     * @p breakdown (optional) receives per-phase timings/counters.
     * @return true if a rollback was performed.
     */
    Result<bool> recover(RecoveryBreakdown *breakdown = nullptr);

    JournalStats &stats() { return stats_; }

  private:
    static constexpr std::uint32_t kMagic = 0x4a524e4cu; // "JRNL"

    PmOffset entryOff(std::uint32_t index) const;

    pm::PmDevice &device_;
    pager::Superblock sb_;
    pager::Region region_;
    std::uint32_t count_ = 0;
    std::uint32_t runningCrc_ = 0;
    JournalStats stats_;
};

} // namespace fasp::wal

#endif // FASP_WAL_JOURNAL_H
