/**
 * @file
 * SlotHeaderLog: the paper's failure-atomic slot-header redo log
 * (Sections 3.3, 4.1, 4.4).
 *
 * For a transaction that dirties multiple pages, the records themselves
 * are written in-place into page free space (harmless before commit);
 * only the *new slot headers* — tiny, header-sized metadata — are
 * written to this log, followed by a CRC-protected commit mark. Once
 * the mark is durable the transaction is committed; the headers are
 * then eagerly checkpointed into their pages and the log is truncated,
 * so readers never need to consult the log.
 *
 * The log also carries page-allocation deltas (alloc/free page ids) so
 * that allocator-bitmap updates commit atomically with the headers;
 * bitmap bit updates are idempotent, which makes checkpoint replay
 * after a crash safe.
 *
 * Log format (within the superblock's log region):
 *   region+0   : 64-byte reserved header area
 *   region+64  : entries, each [u16 type][u16 len][body]
 *       type 0 End        len 0
 *       type 1 PageHeader body = u32 pid, u16 headerLen, bytes
 *       type 2 PageAlloc  body = u32 pid
 *       type 3 PageFree   body = u32 pid
 *       type 4 Commit     body = u64 txid, u64 epoch, u32 crc
 * The CRC covers every entry byte of the transaction before the commit
 * entry, so a torn or unfinished tail is always detected and discarded
 * (paper §4.4: entries are meaningless without a valid commit mark).
 */

#ifndef FASP_WAL_SLOT_HEADER_LOG_H
#define FASP_WAL_SLOT_HEADER_LOG_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "pager/superblock.h"
#include "wal/recovery_stats.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::wal {

/** Counters for the write-amplification table and Figure 8. */
struct SlotHeaderLogStats
{
    std::uint64_t commits = 0;           //!< committed transactions
    std::uint64_t entryBytes = 0;        //!< entry bytes appended
    std::uint64_t headersLogged = 0;     //!< PageHeader entries
    std::uint64_t headersCheckpointed = 0;
    std::uint64_t recoveredTxns = 0;     //!< replayed at recovery
    std::uint64_t discardedTxns = 0;     //!< uncommitted tails dropped

    void reset() { *this = SlotHeaderLogStats{}; }
};

/** Outcome of a post-crash recovery scan. */
struct SlotHeaderRecovery
{
    bool replayed = false;              //!< a committed tx was applied
    std::vector<PageId> touchedPages;   //!< pages whose headers were
                                        //!< replayed (free lists need a
                                        //!< lazy rebuild)
};

/**
 * The slot-header redo log. One instance per FAST/FASH engine.
 *
 * A durable *epoch* counter in the log header guards against stale-
 * transaction resurrection: truncation bumps the epoch, every commit
 * mark embeds the epoch it was written under, and recovery only
 * replays a commit mark from the current epoch. Without this, a crash
 * that partially persists a fresh append over the truncation marker
 * can expose the previous (already checkpointed) transaction's bytes
 * — whose CRC is self-consistent — and replay it, rolling back every
 * in-place commit that happened since.
 */
class SlotHeaderLog
{
  public:
    SlotHeaderLog(pm::PmDevice &device, const pager::Superblock &sb);

    /** Current truncation epoch (tests). */
    std::uint64_t epoch() const { return epoch_; }

    /** Start assembling a transaction (resets the volatile cursor; the
     *  log itself is always empty here thanks to eager checkpointing). */
    void begin();

    /**
     * Append the new slot header of @p pid. @p header is the full
     * commit unit: fixed header + record offset array.
     * Stores only — no flushes (those happen in commit()).
     */
    Status appendPageHeader(PageId pid,
                            std::span<const std::uint8_t> header);

    /** Append a page-allocation delta. */
    Status appendPageAlloc(PageId pid);

    /** Append a page-free delta. */
    Status appendPageFree(PageId pid);

    /** Number of entries appended since begin(). */
    std::size_t pendingEntries() const { return pending_.size(); }

    /**
     * Make the transaction durable: flush all appended entry lines,
     * fence, append the commit mark, flush it, fence (paper §3.3: entry
     * order is free as long as everything precedes the commit mark).
     */
    Status commit(TxId txid);

    /**
     * Eager checkpoint (paper Figure 5): copy each logged slot header
     * into its page, apply allocator-bitmap deltas, flush, fence, then
     * truncate the log so other transactions never consult it.
     */
    Status checkpointAndTruncate();

    /**
     * Post-crash recovery (paper §4.4): scan the log; a transaction
     * with a valid commit mark is replayed (checkpoint is idempotent),
     * anything else is discarded; the log is truncated either way.
     * @p breakdown (optional) receives per-phase timings/counters.
     */
    Result<SlotHeaderRecovery> recover(
        RecoveryBreakdown *breakdown = nullptr);

    SlotHeaderLogStats &stats() { return stats_; }
    const SlotHeaderLogStats &stats() const { return stats_; }

    /** Bytes of log space a header entry for @p header_len consumes. */
    static std::size_t pageHeaderEntryBytes(std::size_t header_len)
    {
        return 4 + 6 + header_len;
    }

    /** Size of the commit-mark entry. */
    static constexpr std::size_t kCommitEntryBytes = 4 + 20;

  private:
    enum EntryType : std::uint16_t {
        kEnd = 0,
        kPageHeader = 1,
        kPageAlloc = 2,
        kPageFree = 3,
        kCommit = 4,
    };

    /** Volatile copy of an appended entry, kept so checkpoint does not
     *  have to re-parse PM. */
    struct PendingEntry
    {
        EntryType type;
        PageId pid;
        std::vector<std::uint8_t> header; // kPageHeader only
    };

    PmOffset entryStart() const { return region_.off + 64; }

    Status appendRaw(EntryType type,
                     std::span<const std::uint8_t> body);

    /** Apply one logged entry durably (write + flush). */
    void applyEntry(const PendingEntry &entry,
                    std::vector<std::uint32_t> &bitmap_bytes_touched);

    /** Bump the epoch and write the End marker; both durable. */
    void truncate();

    /** Read (or initialize) the durable log header / epoch. */
    void ensureAttached();

    /** Persist the log header {magic, epoch}. */
    void writeLogHeader();

    pm::PmDevice &device_;
    pager::Superblock sb_;
    pager::Region region_;

    PmOffset writeOff_;       //!< next free byte in the log
    std::uint64_t epoch_ = 0; //!< 0 = not yet attached
    std::uint32_t runningCrc_;
    std::vector<PendingEntry> pending_;
    SlotHeaderLogStats stats_;
};

} // namespace fasp::wal

#endif // FASP_WAL_SLOT_HEADER_LOG_H
