/**
 * @file
 * Pager: database-file layout and page-allocation policy.
 *
 * Device layout (page size P, page count N):
 *
 *   page 0                 superblock
 *   pages 1..B             page-allocation bitmap (1 bit per page)
 *   page B+1               tree directory (slotted; tree-id -> root pid)
 *   pages B+2..N-1         data pages (B-tree / overflow)
 *   [N*P, N*P + logLen)    engine log region (slot-header log, NVWAL
 *                          heap+WAL, rollback journal, ...)
 *   [frOff, frOff + frLen) persistent flight-recorder ring (obs/
 *                          flight_recorder.h, DESIGN.md §12)
 *
 * Bitmap persistence is engine-specific (it must be transactional), so
 * the allocator here operates through a BitmapIO abstraction: the PM
 * engines back it with a volatile mirror whose updates are carried in
 * the slot-header log; the buffered engines back it with cached copies
 * of the bitmap pages that their WAL/journal mechanisms persist.
 */

#ifndef FASP_PAGER_PAGER_H
#define FASP_PAGER_PAGER_H

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "pager/superblock.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::pager {

/** Byte-granularity accessor over the allocation bitmap. @p index is a
 *  global byte index across all bitmap pages. */
class BitmapIO
{
  public:
    virtual ~BitmapIO() = default;
    virtual std::uint8_t readByte(std::uint32_t index) const = 0;
    virtual void writeByte(std::uint32_t index, std::uint8_t value) = 0;
};

/** BitmapIO over a plain in-memory vector (the PM engines' volatile
 *  mirror; also used by tests). */
class VectorBitmapIO : public BitmapIO
{
  public:
    explicit VectorBitmapIO(std::vector<std::uint8_t> &bytes)
        : bytes_(bytes)
    {}

    std::uint8_t readByte(std::uint32_t index) const override
    {
        return bytes_[index];
    }

    void writeByte(std::uint32_t index, std::uint8_t value) override
    {
        bytes_[index] = value;
    }

  private:
    std::vector<std::uint8_t> &bytes_;
};

/**
 * First-fit page allocator over a BitmapIO. Stateless besides a scan
 * hint; every engine instantiates one over its own bitmap backing.
 */
class PageAllocator
{
  public:
    PageAllocator(BitmapIO &io, const Superblock &sb)
        : io_(io), pageCount_(sb.pageCount), hint_(sb.firstDataPid())
    {}

    /** Allocate the lowest free page at or above the scan hint. */
    Result<PageId> allocate();

    /** Mark @p pid free. */
    void free(PageId pid);

    /** Mark @p pid allocated (recovery replay; idempotent). */
    void markAllocated(PageId pid);

    bool isAllocated(PageId pid) const;

    /** Number of allocated pages (linear scan; stats/tests). */
    std::uint32_t allocatedCount() const;

  private:
    BitmapIO &io_;
    std::uint32_t pageCount_;
    PageId hint_;
};

/** Byte index / bit mask of @p pid inside the bitmap. */
struct BitmapSlot
{
    std::uint32_t byteIndex;
    std::uint8_t mask;
};

BitmapSlot bitmapSlot(PageId pid);

/**
 * Format / open helpers for the on-device layout.
 */
class Pager
{
  public:
    /** Formatting parameters. */
    struct FormatParams
    {
        std::uint32_t pageSize = kDefaultPageSize;
        std::uint64_t logLen = 8u << 20; //!< engine log region bytes

        /** Flight-recorder region bytes at the end of the device
         *  (DESIGN.md §12). 0 disables the persistent recorder. */
        std::uint64_t frLen = 64u << 10;
    };

    /**
     * Initialize @p device: write the superblock, zero the bitmap, mark
     * the meta pages allocated, initialize an empty directory page, and
     * format the flight-recorder ring. Sizes the page area to fill
     * everything before the log + flight-recorder regions.
     */
    static Result<Superblock> format(pm::PmDevice &device,
                                     const FormatParams &params);

    /** Read and validate the superblock of a formatted device. */
    static Result<Superblock> open(pm::PmDevice &device);

    /** Load the durable bitmap into @p out (engine open/recovery). */
    static void loadBitmap(pm::PmDevice &device, const Superblock &sb,
                           std::vector<std::uint8_t> &out);

    /** Device offset of bitmap byte @p index. */
    static PmOffset bitmapByteOffset(const Superblock &sb,
                                     std::uint32_t index);
};

} // namespace fasp::pager

#endif // FASP_PAGER_PAGER_H
