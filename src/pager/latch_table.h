/**
 * @file
 * LatchTable: striped per-page reader/writer latches for the engines'
 * concurrency control.
 *
 * The table maps a PageId onto one of a fixed power-of-two number of
 * stripes (slots); each slot is a single atomic word acting as a
 * reader/writer latch (state > 0: that many readers; state == -1: one
 * exclusive holder; 0: free). The hot path is one CAS with a short
 * bounded spin — no mutex, no global lock, and no allocation, so many
 * clients latching distinct pages never serialize on anything shared
 * beyond the cache line holding their slot.
 *
 * Acquisition never blocks indefinitely: after the spin budget the
 * attempt fails and the *caller* aborts its transaction and retries
 * from scratch (throwing LatchConflict). With try-acquire there is no
 * hold-and-wait on a latch, so latch deadlock is impossible by
 * construction; the cost is wasted work under heavy conflict, which
 * the engines surface as a conflict-retry counter.
 *
 * Striping means distinct pages may collide on one slot. That is safe
 * (strictly coarser exclusion) but callers tracking their held latches
 * must key by slot, not page, or a same-slot collision inside one
 * transaction would self-deadlock: use slotFor() and the slot-based
 * acquire/release API.
 */

#ifndef FASP_PAGER_LATCH_TABLE_H
#define FASP_PAGER_LATCH_TABLE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "common/types.h"

namespace fasp {

/**
 * Thrown by the engines when a latch attempt exhausts its spin budget.
 * The transaction in flight must be rolled back and retried; the
 * multi-threaded driver counts these as conflict retries.
 */
class LatchConflict : public std::runtime_error
{
  public:
    explicit LatchConflict(PageId pid)
        : std::runtime_error("page latch conflict"), pid_(pid)
    {}

    PageId page() const { return pid_; }

  private:
    PageId pid_;
};

/** Aggregate latch-traffic counters (relaxed; read after joining). */
struct LatchStats
{
    std::uint64_t sharedAcquires = 0;
    std::uint64_t exclusiveAcquires = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t conflicts = 0; //!< failed acquires (spin exhausted)
};

class LatchTable
{
  public:
    /** @p stripes is rounded up to a power of two (default 1024 slots
     *  ≈ 16 KiB: small enough to stay cache-resident, wide enough that
     *  random collisions are rare at 16 clients). */
    explicit LatchTable(std::size_t stripes = 1024);

    LatchTable(const LatchTable &) = delete;
    LatchTable &operator=(const LatchTable &) = delete;

    std::size_t stripes() const { return mask_ + 1; }

    /** Slot index a page hashes to; the unit of exclusion callers must
     *  track. */
    std::size_t slotFor(PageId pid) const
    {
        // Fibonacci hash: consecutive pids (the common allocation
        // pattern) spread across distinct slots.
        return (static_cast<std::uint64_t>(pid) * 0x9e3779b97f4a7c15ull
                >> 32) & mask_;
    }

    /** Try to take @p slot shared; false once the spin budget runs out
     *  (a writer holds it). */
    bool tryAcquireShared(std::size_t slot);

    /** Try to take @p slot exclusive; false once the spin budget runs
     *  out. */
    bool tryAcquireExclusive(std::size_t slot);

    /** Atomically upgrade shared→exclusive, succeeding only if the
     *  caller is the sole reader (1 → -1). No spin: failure means a
     *  concurrent reader exists and waiting for it could deadlock with
     *  another upgrader, so the caller must conflict-abort. On failure
     *  the caller still holds its shared latch. */
    bool tryUpgrade(std::size_t slot);

    void releaseShared(std::size_t slot);
    void releaseExclusive(std::size_t slot);

    /** Exclusive→shared (never fails; used after a structure-modifying
     *  operation finishes its writes but keeps reading). */
    void downgrade(std::size_t slot);

    LatchStats statsSnapshot() const;

  private:
    /** One RW latch, padded to a cache line so hot slots don't false-
     *  share. state: 0 free, N>0 readers, -1 exclusive. */
    struct alignas(64) Slot
    {
        std::atomic<std::int32_t> state{0};
    };

    std::unique_ptr<Slot[]> slots_;
    std::size_t mask_;

    struct alignas(64) Counters
    {
        std::atomic<std::uint64_t> sharedAcquires{0};
        std::atomic<std::uint64_t> exclusiveAcquires{0};
        std::atomic<std::uint64_t> upgrades{0};
        std::atomic<std::uint64_t> conflicts{0};
    };
    mutable Counters counters_;
};

} // namespace fasp

#endif // FASP_PAGER_LATCH_TABLE_H
