// fasp-lint: allow-file(raw-std-sync) -- PageLatch IS the intercepted
// wrapper; its state word and stats counters are the implementation.
/**
 * @file
 * PageLatch + LatchTable: striped per-page reader/writer latches for
 * the engines' concurrency control.
 *
 * Each latch (PageLatch) is a single atomic word acting as a
 * reader/writer capability (state > 0: that many readers; state == -1:
 * one exclusive holder; 0: free). The hot path is one CAS with a short
 * bounded spin — no mutex, no global lock, and no allocation, so many
 * clients latching distinct pages never serialize on anything shared
 * beyond the cache line holding their latch.
 *
 * Acquisition never blocks indefinitely: after the spin budget the
 * attempt fails and the *caller* aborts its transaction and retries
 * from scratch (throwing LatchConflict). With try-acquire there is no
 * hold-and-wait on a latch, so latch deadlock is impossible by
 * construction; the cost is wasted work under heavy conflict, which
 * the engines surface as a conflict-retry counter.
 *
 * The table maps a PageId onto one of a fixed power-of-two number of
 * latches ("slots"). Striping means distinct pages may collide on one
 * latch. That is safe (strictly coarser exclusion) but callers tracking
 * their held latches must key by slot, not page, or a same-slot
 * collision inside one transaction would self-deadlock: use slotFor()
 * and the slot-based acquire/release API.
 *
 * Static analysis (DESIGN.md §10): PageLatch is a Clang CAPABILITY, so
 * scoped uses go through the RAII SharedPageLatchGuard /
 * ExclusivePageLatchGuard and are checked at compile time under
 * -Wthread-safety. The engines' strict-2PL latch *sets* — acquired page
 * by page, held across calls, released at commit — are beyond the
 * intraprocedural analysis; the slot-keyed LatchTable API they use is
 * therefore explicitly opted out (NO_THREAD_SAFETY_ANALYSIS) and that
 * discipline is checked dynamically instead (TSan + the concurrent
 * stress suite).
 */

#ifndef FASP_PAGER_LATCH_TABLE_H
#define FASP_PAGER_LATCH_TABLE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace fasp {

/**
 * Thrown by the engines when a latch attempt exhausts its spin budget.
 * The transaction in flight must be rolled back and retried; the
 * multi-threaded driver counts these as conflict retries.
 */
class LatchConflict : public std::runtime_error
{
  public:
    explicit LatchConflict(PageId pid)
        : std::runtime_error("page latch conflict"), pid_(pid)
    {}

    PageId page() const { return pid_; }

  private:
    PageId pid_;
};

/**
 * One reader/writer page latch; see file comment. Padded to a cache
 * line so hot latches don't false-share.
 *
 * All acquire paths are bounded (CAS + spin budget) and return false
 * instead of blocking, making the latch layer deadlock-free; the
 * TRY_ACQUIRE annotations let -Wthread-safety verify scoped users
 * (the RAII guards below) release what they took.
 */
class alignas(64) CAPABILITY("latch") PageLatch
{
  public:
    PageLatch() = default;
    PageLatch(const PageLatch &) = delete;
    PageLatch &operator=(const PageLatch &) = delete;

    /** Try to take the latch shared; false once the spin budget runs
     *  out (a writer holds it). If @p spins is non-null it receives the
     *  number of failed CAS iterations before the outcome (0 = took the
     *  latch first try), which is how the span profiler distinguishes a
     *  contended acquire worth timing from the uncontended fast path. */
    bool tryAcquireShared(std::uint32_t *spins = nullptr)
        TRY_ACQUIRE_SHARED(true);

    /** Try to take the latch exclusive; false once the spin budget
     *  runs out. @p spins as in tryAcquireShared(). */
    bool tryAcquireExclusive(std::uint32_t *spins = nullptr)
        TRY_ACQUIRE(true);

    /** Atomically upgrade shared→exclusive, succeeding only if the
     *  caller is the sole reader (1 → -1). No spin: failure means a
     *  concurrent reader exists and waiting for it could deadlock with
     *  another upgrader, so the caller must conflict-abort. On failure
     *  the caller still holds its shared latch.
     *
     *  A conditional shared→exclusive transition has no precise
     *  capability annotation; upgrade sites live inside the engines'
     *  dynamically-checked latch sets. */
    bool tryUpgrade() NO_THREAD_SAFETY_ANALYSIS;

    void releaseShared() RELEASE_SHARED()
    {
        state_.fetch_sub(1, std::memory_order_release);
        if (mc::SchedulerHook *h = mc::activeHook())
            h->onRelease(mc::HookOp::LatchReleaseShared, this);
    }

    void releaseExclusive() RELEASE()
    {
        state_.store(0, std::memory_order_release);
        if (mc::SchedulerHook *h = mc::activeHook())
            h->onRelease(mc::HookOp::LatchReleaseExclusive, this);
    }

    /** Exclusive→shared (never fails; used after a structure-modifying
     *  operation finishes its writes but keeps reading). Like
     *  tryUpgrade(), the transition is outside the static model. */
    void downgrade() NO_THREAD_SAFETY_ANALYSIS
    {
        state_.store(1, std::memory_order_release);
        // Waiting readers may proceed once exclusivity drops.
        if (mc::SchedulerHook *h = mc::activeHook())
            h->onRelease(mc::HookOp::LatchDowngrade, this);
    }

  private:
    std::atomic<std::int32_t> state_{0};
};

/** Conflict-abort exit of the guard constructors. [[noreturn]] so the
 *  thread-safety analysis prunes the not-acquired branch. */
[[noreturn]] inline void
throwLatchConflict(PageId pid)
{
    throw LatchConflict(pid);
}

/** RAII shared hold of a PageLatch: acquire-or-throw in the
 *  constructor, release in the destructor. The scoped counterpart to
 *  the engines' slot-keyed 2PL sets; -Wthread-safety checks its uses. */
class SCOPED_CAPABILITY SharedPageLatchGuard
{
  public:
    /** @throws LatchConflict (tagged with @p pid) if the spin budget
     *  runs out. */
    SharedPageLatchGuard(PageLatch &latch, PageId pid)
        ACQUIRE_SHARED(latch)
        : latch_(latch)
    {
        if (!latch_.tryAcquireShared())
            throwLatchConflict(pid);
    }

    ~SharedPageLatchGuard() RELEASE() { latch_.releaseShared(); }

    SharedPageLatchGuard(const SharedPageLatchGuard &) = delete;
    SharedPageLatchGuard &operator=(const SharedPageLatchGuard &) =
        delete;

  private:
    PageLatch &latch_;
};

/** RAII exclusive hold of a PageLatch; see SharedPageLatchGuard. */
class SCOPED_CAPABILITY ExclusivePageLatchGuard
{
  public:
    ExclusivePageLatchGuard(PageLatch &latch, PageId pid)
        ACQUIRE(latch)
        : latch_(latch)
    {
        if (!latch_.tryAcquireExclusive())
            throwLatchConflict(pid);
    }

    ~ExclusivePageLatchGuard() RELEASE() { latch_.releaseExclusive(); }

    ExclusivePageLatchGuard(const ExclusivePageLatchGuard &) = delete;
    ExclusivePageLatchGuard &operator=(
        const ExclusivePageLatchGuard &) = delete;

  private:
    PageLatch &latch_;
};

/** Aggregate latch-traffic counters (relaxed; read after joining). */
struct LatchStats
{
    std::uint64_t sharedAcquires = 0;
    std::uint64_t exclusiveAcquires = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t conflicts = 0; //!< failed acquires (spin exhausted)
};

/**
 * The striped table of PageLatches. The slot-keyed methods mirror
 * PageLatch's API and additionally maintain the traffic counters; they
 * are what the engines' cross-function 2PL sets use, so they carry the
 * documented NO_THREAD_SAFETY_ANALYSIS opt-out (see file comment).
 */
class LatchTable
{
  public:
    /** @p stripes is rounded up to a power of two (default 1024 slots
     *  ≈ 64 KiB of padded latches: small enough to stay cache-resident,
     *  wide enough that random collisions are rare at 16 clients). */
    explicit LatchTable(std::size_t stripes = 1024);

    LatchTable(const LatchTable &) = delete;
    LatchTable &operator=(const LatchTable &) = delete;

    std::size_t stripes() const { return mask_ + 1; }

    /** Slot index a page hashes to; the unit of exclusion callers must
     *  track. */
    std::size_t slotFor(PageId pid) const
    {
        // Fibonacci hash: consecutive pids (the common allocation
        // pattern) spread across distinct slots.
        return (static_cast<std::uint64_t>(pid) * 0x9e3779b97f4a7c15ull
                >> 32) & mask_;
    }

    /** The latch behind @p slot, for scoped (guard-based) use. */
    PageLatch &latch(std::size_t slot) { return slots_[slot]; }

    bool tryAcquireShared(std::size_t slot) NO_THREAD_SAFETY_ANALYSIS;
    bool tryAcquireExclusive(std::size_t slot)
        NO_THREAD_SAFETY_ANALYSIS;
    bool tryUpgrade(std::size_t slot) NO_THREAD_SAFETY_ANALYSIS;
    void releaseShared(std::size_t slot) NO_THREAD_SAFETY_ANALYSIS;
    void releaseExclusive(std::size_t slot) NO_THREAD_SAFETY_ANALYSIS;
    void downgrade(std::size_t slot) NO_THREAD_SAFETY_ANALYSIS;

    LatchStats statsSnapshot() const;

  private:
    std::unique_ptr<PageLatch[]> slots_;
    std::size_t mask_;

    struct alignas(64) Counters
    {
        std::atomic<std::uint64_t> sharedAcquires{0};
        std::atomic<std::uint64_t> exclusiveAcquires{0};
        std::atomic<std::uint64_t> upgrades{0};
        std::atomic<std::uint64_t> conflicts{0};
    };
    mutable Counters counters_;
};

} // namespace fasp

#endif // FASP_PAGER_LATCH_TABLE_H
