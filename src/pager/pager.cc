#include "pager/pager.h"

#include <vector>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "page/page_io.h"
#include "page/slotted_page.h"
#include "pm/device.h"
#include "pm/pcas.h"

namespace fasp::pager {

static_assert(Superblock::kPcasRegionBytes ==
                  pm::Pcas::kDescRegionBytes,
              "superblock's positional descriptor region must match "
              "the pcas layer's");

BitmapSlot
bitmapSlot(PageId pid)
{
    BitmapSlot slot;
    slot.byteIndex = pid / 8;
    slot.mask = static_cast<std::uint8_t>(1u << (pid % 8));
    return slot;
}

Result<PageId>
PageAllocator::allocate()
{
    // First-fit scan from the hint, wrapping once.
    for (int pass = 0; pass < 2; ++pass) {
        PageId start = pass == 0 ? hint_ : 0;
        for (PageId pid = start; pid < pageCount_; ++pid) {
            BitmapSlot slot = bitmapSlot(pid);
            std::uint8_t byte = io_.readByte(slot.byteIndex);
            if ((byte & slot.mask) == 0) {
                io_.writeByte(slot.byteIndex,
                              static_cast<std::uint8_t>(byte |
                                                        slot.mask));
                hint_ = pid + 1;
                if (obs::enabled()) {
                    static obs::Counter &c = obs::MetricsRegistry::
                        global().counter("pager.page_allocs");
                    c.inc();
                    obs::Tracer::global().record(obs::TraceOp::PageAlloc,
                                                 nullptr, pid);
                }
                return pid;
            }
            // Skip whole free-less bytes quickly.
            if (byte == 0xff && pid % 8 == 0)
                pid += 7;
        }
        if (pass == 0 && hint_ == 0)
            break;
    }
    return Status(StatusCode::NoSpace, "page allocator exhausted");
}

void
PageAllocator::free(PageId pid)
{
    FASP_ASSERT(pid < pageCount_);
    BitmapSlot slot = bitmapSlot(pid);
    std::uint8_t byte = io_.readByte(slot.byteIndex);
    io_.writeByte(slot.byteIndex,
                  static_cast<std::uint8_t>(byte & ~slot.mask));
    if (pid < hint_)
        hint_ = pid;
    if (obs::enabled()) {
        static obs::Counter &c =
            obs::MetricsRegistry::global().counter("pager.page_frees");
        c.inc();
        obs::Tracer::global().record(obs::TraceOp::PageFree, nullptr,
                                     pid);
    }
}

void
PageAllocator::markAllocated(PageId pid)
{
    FASP_ASSERT(pid < pageCount_);
    BitmapSlot slot = bitmapSlot(pid);
    std::uint8_t byte = io_.readByte(slot.byteIndex);
    io_.writeByte(slot.byteIndex,
                  static_cast<std::uint8_t>(byte | slot.mask));
}

bool
PageAllocator::isAllocated(PageId pid) const
{
    BitmapSlot slot = bitmapSlot(pid);
    return (io_.readByte(slot.byteIndex) & slot.mask) != 0;
}

std::uint32_t
PageAllocator::allocatedCount() const
{
    std::uint32_t count = 0;
    for (PageId pid = 0; pid < pageCount_; ++pid)
        count += isAllocated(pid) ? 1 : 0;
    return count;
}

Result<Superblock>
Pager::format(pm::PmDevice &device, const FormatParams &params)
{
    pm::SiteScope site(device, "Pager::format");
    const std::uint32_t psize = params.pageSize;
    if (psize < 256 || psize > 32768 || (psize & (psize - 1)) != 0) {
        return statusInvalid(
            "page size must be a power of two in [256, 32768] "
            "(page offsets are 16-bit)");
    }
    if (device.size() <= params.logLen + params.frLen + 4 * psize +
                             Superblock::kPcasRegionBytes)
        return statusInvalid("device too small for layout");

    std::uint64_t page_area =
        device.size() - params.logLen - params.frLen;
    auto page_count = static_cast<std::uint32_t>(page_area / psize);

    // Bitmap sizing: 1 bit per page, rounded up to whole pages.
    std::uint32_t bitmap_bytes = (page_count + 7) / 8;
    std::uint32_t bitmap_pages = (bitmap_bytes + psize - 1) / psize;

    Superblock sb;
    sb.pageSize = psize;
    sb.pageCount = page_count;
    sb.bitmapPages = bitmap_pages;
    sb.directoryPid = 1 + bitmap_pages;
    sb.logOff = static_cast<std::uint64_t>(page_count) * psize;
    sb.logLen = params.logLen;
    sb.frOff = sb.logOff + sb.logLen;
    sb.frLen = params.frLen;

    // Zero the meta pages (bitmap starts all-free; PMwCAS descriptor
    // slots start Free).
    device.memset(0, 0,
                  static_cast<std::size_t>(sb.firstDataPid()) * psize);

    // Mark superblock, bitmap pages, directory, and the PMwCAS
    // descriptor pages allocated.
    std::vector<std::uint8_t> bitmap(bitmap_bytes, 0);
    VectorBitmapIO bitmap_io(bitmap);
    for (PageId pid = 0; pid < sb.firstDataPid(); ++pid) {
        BitmapSlot slot = bitmapSlot(pid);
        bitmap_io.writeByte(
            slot.byteIndex,
            static_cast<std::uint8_t>(bitmap_io.readByte(slot.byteIndex) |
                                      slot.mask));
    }
    // fasp-analyze: allow(v1s) -- inside the flushRange(0,
    // firstDataPid()*psize) extent below; the analyzer cannot relate
    // pageOffset(pid) arithmetic to that extent.
    device.write(sb.pageOffset(1), bitmap.data(), bitmap.size());

    // Empty directory page: a slotted leaf mapping tree ids to roots.
    std::vector<std::uint8_t> dir_page(psize, 0);
    page::BufferPageIO dir_io(dir_page.data(), psize);
    page::init(dir_io, page::PageType::Leaf, 0);
    // fasp-analyze: allow(v1s) -- same extent argument as the bitmap
    // page write above (directoryPid < firstDataPid by construction).
    device.write(sb.pageOffset(sb.directoryPid), dir_page.data(), psize);

    // Zero the log region header area so engines see a clean log.
    device.memset(sb.logOff, 0,
                  std::min<std::uint64_t>(sb.logLen, psize));

    // Flush from offset 0: page 0 was zeroed by the memset above, and
    // its lines beyond the superblock would otherwise stay dirty.
    device.flushRange(0, static_cast<std::size_t>(sb.firstDataPid()) *
                             psize);
    device.flushRange(sb.logOff,
                      std::min<std::uint64_t>(sb.logLen, psize));
    device.sfence();

    // Flight-recorder ring: header + zeroed slots, so later opens and
    // offline forensics always find a decodable ring.
    if (sb.frLen != 0)
        obs::FlightRecorder::formatRegion(device, sb.frOff, sb.frLen);

    sb.writeTo(device); // flushes and fences itself
    return sb;
}

Result<Superblock>
Pager::open(pm::PmDevice &device)
{
    return Superblock::readFrom(device);
}

void
Pager::loadBitmap(pm::PmDevice &device, const Superblock &sb,
                  std::vector<std::uint8_t> &out)
{
    std::uint32_t bitmap_bytes = (sb.pageCount + 7) / 8;
    out.resize(bitmap_bytes);
    device.read(sb.pageOffset(1), out.data(), bitmap_bytes);
}

PmOffset
Pager::bitmapByteOffset(const Superblock &sb, std::uint32_t index)
{
    return sb.pageOffset(1) + index;
}

} // namespace fasp::pager
