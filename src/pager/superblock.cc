#include "pager/superblock.h"

#include <array>

#include "common/byte_io.h"
#include "common/crc32.h"
#include "pm/device.h"

namespace fasp::pager {

void
Superblock::writeTo(pm::PmDevice &device) const
{
    pm::SiteScope site(device, "Superblock::writeTo");
    std::array<std::uint8_t, kEncodedBytes> buf{};
    storeU64(buf.data() + 0, kMagic);
    storeU32(buf.data() + 8, kVersion);
    storeU32(buf.data() + 12, pageSize);
    storeU32(buf.data() + 16, pageCount);
    storeU32(buf.data() + 20, bitmapPages);
    storeU32(buf.data() + 24, directoryPid);
    storeU64(buf.data() + 28, logOff);
    storeU64(buf.data() + 36, logLen);
    storeU64(buf.data() + 44, frOff);
    storeU64(buf.data() + 52, frLen);
    storeU32(buf.data() + 60, crc32c(buf.data(), 60));
    device.write(0, buf.data(), buf.size());
    device.flushRange(0, buf.size());
    device.sfence();
}

Result<Superblock>
Superblock::readFrom(pm::PmDevice &device)
{
    std::array<std::uint8_t, kEncodedBytes> buf{};
    device.read(0, buf.data(), buf.size());

    if (loadU64(buf.data()) != kMagic)
        return Status(StatusCode::Corruption, "superblock magic mismatch");
    if (loadU32(buf.data() + 8) != kVersion)
        return Status(StatusCode::Corruption, "superblock version");
    if (loadU32(buf.data() + 60) != crc32c(buf.data(), 60))
        return Status(StatusCode::Corruption, "superblock CRC mismatch");

    Superblock sb;
    sb.pageSize = loadU32(buf.data() + 12);
    sb.pageCount = loadU32(buf.data() + 16);
    sb.bitmapPages = loadU32(buf.data() + 20);
    sb.directoryPid = loadU32(buf.data() + 24);
    sb.logOff = loadU64(buf.data() + 28);
    sb.logLen = loadU64(buf.data() + 36);
    sb.frOff = loadU64(buf.data() + 44);
    sb.frLen = loadU64(buf.data() + 52);

    if (sb.pageSize < 256 || sb.pageCount == 0 ||
        sb.logOff + sb.logLen > device.size() ||
        sb.frOff + sb.frLen > device.size() ||
        static_cast<std::uint64_t>(sb.pageCount) * sb.pageSize >
            device.size()) {
        return Status(StatusCode::Corruption, "superblock bounds");
    }
    return sb;
}

} // namespace fasp::pager
