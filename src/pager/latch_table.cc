#include "pager/latch_table.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "obs/span.h"

namespace fasp {

namespace {

/** CAS attempts before an acquire gives up and reports a conflict.
 *  Large enough to ride out another client's in-memory critical
 *  section; far too small to wait for one blocked on modelled PM
 *  latency, which is the case the conflict-abort path exists for. */
constexpr int kSpinBudget = 4096;

/** Back off politely once the first few spins fail. */
void
relax(int attempt)
{
    if (attempt >= 64 && attempt % 64 == 0)
        std::this_thread::yield();
}

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

// --- PageLatch ---------------------------------------------------------------

bool
PageLatch::tryAcquireShared(std::uint32_t *spins)
{
    if (mc::SchedulerHook *h = mc::activeHook()) {
        // Model-check path: spinning is pointless while every other
        // thread is descheduled, so attempt one CAS per grant and park
        // on failure. onBlocked == false means the scheduler chose to
        // deliver the bounded-wait conflict outcome (the production
        // spin-budget exhaustion) instead of waiting for the release.
        h->atPoint(mc::HookOp::LatchAcquireShared, this, 1);
        for (;;) {
            std::int32_t cur = state_.load(std::memory_order_relaxed);
            if (cur >= 0 &&
                state_.compare_exchange_strong(
                    cur, cur + 1, std::memory_order_acquire,
                    std::memory_order_relaxed)) {
                return true;
            }
            if (!h->onBlocked(mc::HookOp::LatchAcquireShared, this))
                return false;
        }
    }
    for (int i = 0; i < kSpinBudget; ++i) {
        std::int32_t cur = state_.load(std::memory_order_relaxed);
        if (cur >= 0 &&
            state_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
            if (spins)
                *spins = static_cast<std::uint32_t>(i);
            return true;
        }
        relax(i);
    }
    if (spins)
        *spins = kSpinBudget;
    return false;
}

bool
PageLatch::tryAcquireExclusive(std::uint32_t *spins)
{
    if (mc::SchedulerHook *h = mc::activeHook()) {
        h->atPoint(mc::HookOp::LatchAcquireExclusive, this, 1);
        for (;;) {
            std::int32_t cur = 0;
            if (state_.compare_exchange_strong(
                    cur, -1, std::memory_order_acquire,
                    std::memory_order_relaxed)) {
                return true;
            }
            if (!h->onBlocked(mc::HookOp::LatchAcquireExclusive, this))
                return false;
        }
    }
    for (int i = 0; i < kSpinBudget; ++i) {
        std::int32_t cur = 0;
        if (state_.compare_exchange_weak(cur, -1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
            if (spins)
                *spins = static_cast<std::uint32_t>(i);
            return true;
        }
        relax(i);
    }
    if (spins)
        *spins = kSpinBudget;
    return false;
}

bool
PageLatch::tryUpgrade()
{
    // Upgrade never waits, under the model checker or in production:
    // failure means a concurrent reader exists and the caller must
    // conflict-abort (see header). One point, one CAS.
    if (mc::SchedulerHook *h = mc::activeHook())
        h->atPoint(mc::HookOp::LatchUpgrade, this, 1);
    std::int32_t sole = 1;
    return state_.compare_exchange_strong(sole, -1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
}

// --- LatchTable --------------------------------------------------------------

LatchTable::LatchTable(std::size_t stripes)
{
    std::size_t n = roundUpPow2(stripes < 2 ? 2 : stripes);
    slots_ = std::make_unique<PageLatch[]>(n);
    mask_ = n - 1;
}

bool
LatchTable::tryAcquireShared(std::size_t slot)
{
    bool ok;
    if (obs::enabled()) {
        // Wait-cycles hook: time the acquire, but report it only when
        // it actually spun or failed — the uncontended first-try CAS
        // is not a wait, and single-threaded runs stay silent.
        std::uint32_t spins = 0;
        std::uint64_t t0 = nowNs();
        ok = slots_[slot].tryAcquireShared(&spins);
        if (spins != 0 || !ok)
            obs::spanLatchWait(slot, nowNs() - t0, !ok);
    } else {
        ok = slots_[slot].tryAcquireShared();
    }
    if (ok) {
        counters_.sharedAcquires.fetch_add(1,
                                           std::memory_order_relaxed);
        if (obs::enabled()) {
            static obs::Counter &c = obs::MetricsRegistry::global()
                .counter("pager.latch.shared_acquires");
            c.inc();
        }
        return true;
    }
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
        static obs::Counter &c = obs::MetricsRegistry::global()
            .counter("pager.latch.conflicts");
        c.inc();
    }
    return false;
}

bool
LatchTable::tryAcquireExclusive(std::size_t slot)
{
    bool ok;
    if (obs::enabled()) {
        std::uint32_t spins = 0;
        std::uint64_t t0 = nowNs();
        ok = slots_[slot].tryAcquireExclusive(&spins);
        if (spins != 0 || !ok)
            obs::spanLatchWait(slot, nowNs() - t0, !ok);
    } else {
        ok = slots_[slot].tryAcquireExclusive();
    }
    if (ok) {
        counters_.exclusiveAcquires.fetch_add(
            1, std::memory_order_relaxed);
        if (obs::enabled()) {
            static obs::Counter &c = obs::MetricsRegistry::global()
                .counter("pager.latch.exclusive_acquires");
            c.inc();
        }
        return true;
    }
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
        static obs::Counter &c = obs::MetricsRegistry::global()
            .counter("pager.latch.conflicts");
        c.inc();
    }
    return false;
}

bool
LatchTable::tryUpgrade(std::size_t slot)
{
    bool ok;
    if (obs::enabled()) {
        // Upgrade never spins: a failure is an immediate conflict, so
        // only the failing path reports (wait ≈ one CAS).
        std::uint64_t t0 = nowNs();
        ok = slots_[slot].tryUpgrade();
        if (!ok)
            obs::spanLatchWait(slot, nowNs() - t0, true);
    } else {
        ok = slots_[slot].tryUpgrade();
    }
    if (ok) {
        counters_.upgrades.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) {
            static obs::Counter &c = obs::MetricsRegistry::global()
                .counter("pager.latch.upgrades");
            c.inc();
        }
        return true;
    }
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
        static obs::Counter &c = obs::MetricsRegistry::global()
            .counter("pager.latch.conflicts");
        c.inc();
    }
    return false;
}

void
LatchTable::releaseShared(std::size_t slot)
{
    slots_[slot].releaseShared();
}

void
LatchTable::releaseExclusive(std::size_t slot)
{
    slots_[slot].releaseExclusive();
}

void
LatchTable::downgrade(std::size_t slot)
{
    slots_[slot].downgrade();
}

LatchStats
LatchTable::statsSnapshot() const
{
    LatchStats out;
    out.sharedAcquires =
        counters_.sharedAcquires.load(std::memory_order_relaxed);
    out.exclusiveAcquires =
        counters_.exclusiveAcquires.load(std::memory_order_relaxed);
    out.upgrades = counters_.upgrades.load(std::memory_order_relaxed);
    out.conflicts = counters_.conflicts.load(std::memory_order_relaxed);
    return out;
}

} // namespace fasp
