/**
 * @file
 * Superblock: page 0 of every fasp database. Written once at format
 * time and validated (magic + CRC) on every open, including recovery.
 */

#ifndef FASP_PAGER_SUPERBLOCK_H
#define FASP_PAGER_SUPERBLOCK_H

#include <cstdint>

#include "common/status.h"
#include "common/types.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::pager {

/** A contiguous byte region of the PM device. */
struct Region
{
    PmOffset off = 0;
    std::uint64_t len = 0;

    PmOffset end() const { return off + len; }
    bool contains(PmOffset o, std::uint64_t l) const
    {
        return o >= off && o + l <= end();
    }
};

/** Decoded superblock contents. */
struct Superblock
{
    static constexpr std::uint64_t kMagic = 0x4641535044423031ull;

    /** v3: pages [directoryPid+1, firstDataPid) hold the PMwCAS
     *  descriptor region (DESIGN.md §14). The encoding is unchanged —
     *  the region is positional — so the bump only fences off v2
     *  images whose first data page sat where descriptors now live. */
    static constexpr std::uint32_t kVersion = 3;

    /** Serialized footprint in bytes (fits one cache line exactly). */
    static constexpr std::size_t kEncodedBytes = 64;

    /** Bytes reserved for PMwCAS descriptors (= pm::Pcas::
     *  kDescRegionBytes; static_asserted in pager.cc to avoid the
     *  include here). */
    static constexpr std::uint64_t kPcasRegionBytes = 4096;

    std::uint32_t pageSize = 0;
    std::uint32_t pageCount = 0;
    std::uint32_t bitmapPages = 0;   //!< pages 1..bitmapPages hold bits
    PageId directoryPid = 0;         //!< tree-id -> root-pid directory
    std::uint64_t logOff = 0;        //!< engine log region offset
    std::uint64_t logLen = 0;        //!< engine log region length
    std::uint64_t frOff = 0;         //!< flight-recorder region offset
    std::uint64_t frLen = 0;         //!< flight-recorder region length
                                     //!< (0 = no recorder region)

    /** Pages the PMwCAS descriptor region occupies (>= 1; more than
     *  one only below 4 KiB pages). */
    std::uint32_t pcasPages() const
    {
        return static_cast<std::uint32_t>(
            (kPcasRegionBytes + pageSize - 1) / pageSize);
    }

    /** First page of the PMwCAS descriptor region. */
    PageId pcasPid() const { return directoryPid + 1; }

    /** Device offset of the PMwCAS descriptor region. */
    PmOffset pcasRegionOff() const { return pageOffset(pcasPid()); }

    /** First page id available for data (after meta pages). */
    PageId firstDataPid() const
    {
        return directoryPid + 1 + pcasPages();
    }

    Region logRegion() const { return Region{logOff, logLen}; }

    Region flightRecorderRegion() const { return Region{frOff, frLen}; }

    /** Device offset of page @p pid. */
    PmOffset pageOffset(PageId pid) const
    {
        return static_cast<PmOffset>(pid) * pageSize;
    }

    /** Serialize (with CRC) at device offset 0 and flush. */
    void writeTo(pm::PmDevice &device) const;

    /** Deserialize from device offset 0, validating magic/CRC/bounds. */
    static Result<Superblock> readFrom(pm::PmDevice &device);
};

} // namespace fasp::pager

#endif // FASP_PAGER_SUPERBLOCK_H
