/**
 * @file
 * Software emulation of Intel Restricted Transactional Memory (RTM).
 *
 * The paper uses RTM (XBEGIN / XEND / XABORT) for exactly one purpose:
 * making the update of a slot header that fits in one cache line
 * failure-atomic. Stores inside an RTM region stay invisible (in the
 * write-combining store buffer) until XEND; restricting the write set to
 * a single cache line means the header either persists whole (after the
 * subsequent clflush) or not at all.
 *
 * This emulation preserves that contract: writes made through an
 * RtmRegion are staged in a volatile buffer and applied to the PM device
 * only when the region commits. A crash that fires during the region or
 * before the post-region clflush therefore loses the whole update —
 * exactly the hardware behaviour the paper relies on.
 *
 * Aborts are injected probabilistically to exercise the fallback paths
 * the paper describes (retry until success, or fall back to slot-header
 * logging after repeated aborts).
 */

#ifndef FASP_HTM_RTM_H
#define FASP_HTM_RTM_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::htm {

/** Abort/retry policy of the emulated RTM. */
struct RtmConfig
{
    /** Probability that any single attempt aborts (injected). Real RTM
     *  aborts on conflicts, interrupts, and capacity; the emulation
     *  rolls a die instead. */
    double abortProbability = 0.0;

    /** Attempts before execute() gives up and reports fallback. The
     *  paper's default handler retries until success; a finite value
     *  models the alternative fallback-to-logging handler. */
    unsigned maxRetries = 1u << 20;

    /** Panic if a region's write set spans more than one cache line
     *  (the paper restricts the RTM working set to one line because PM
     *  cannot persist two lines atomically). */
    bool enforceSingleLine = true;

    /** Seed for the abort-injection RNG. */
    std::uint64_t seed = 7;
};

/** Counters describing RTM behaviour (ablation Table C). */
struct RtmStats
{
    std::uint64_t begins = 0;    //!< attempts started
    std::uint64_t commits = 0;   //!< attempts that committed
    std::uint64_t aborts = 0;    //!< attempts that aborted
    std::uint64_t fallbacks = 0; //!< execute() calls that gave up

    void reset() { *this = RtmStats{}; }
};

/**
 * Staging area handed to the transactional body. Writes are buffered and
 * only reach the device if the region commits.
 */
class RtmRegion
{
  public:
    /** Stage a store of @p len bytes at device offset @p off. */
    void write(PmOffset off, const void *src, std::size_t len);

    /** Explicitly abort this attempt (XABORT). */
    void abort() { explicitAbort_ = true; }

  private:
    friend class Rtm;

    struct StagedWrite
    {
        PmOffset off;
        std::vector<std::uint8_t> bytes;
    };

    std::vector<StagedWrite> writes_;
    bool explicitAbort_ = false;
};

/**
 * RTM execution engine bound to one PM device.
 */
class Rtm
{
  public:
    Rtm(pm::PmDevice &device, const RtmConfig &config);

    /**
     * Run @p body transactionally. The body stages writes through the
     * region; on commit they are applied to the device as ordinary
     * (volatile) stores, which the caller must then clflush + sfence to
     * make durable.
     *
     * @return true if an attempt committed; false if the retry budget
     *         was exhausted (caller falls back to slot-header logging).
     */
    bool execute(const std::function<void(RtmRegion &)> &body);

    RtmStats &stats() { return stats_; }
    const RtmStats &stats() const { return stats_; }

    const RtmConfig &config() const { return config_; }

    /** Replace the abort policy (used by the abort-injection bench). */
    void setConfig(const RtmConfig &config);

  private:
    void apply(const RtmRegion &region);
    void checkWriteSet(const RtmRegion &region) const;

    pm::PmDevice &device_;
    RtmConfig config_;
    Rng rng_;
    RtmStats stats_;
};

} // namespace fasp::htm

#endif // FASP_HTM_RTM_H
