// fasp-lint: allow-file(raw-std-sync) -- the RTM emulation shim IS the
// intercepted wrapper; its internals must not recurse into the hooks.
/**
 * @file
 * Software emulation of Intel Restricted Transactional Memory (RTM).
 *
 * The paper uses RTM (XBEGIN / XEND / XABORT) for two purposes at once:
 * making the update of a slot header that fits in one cache line
 * failure-atomic, and serializing concurrent clients touching the same
 * header — RTM is FAST's concurrency control. Stores inside an RTM
 * region stay invisible (in the write-combining store buffer) until
 * XEND; restricting the write set to a single cache line means the
 * header either persists whole (after the subsequent clflush) or not at
 * all.
 *
 * This emulation preserves both contracts: writes made through an
 * RtmRegion are staged in a volatile buffer and applied to the PM
 * device only when the region commits, and the apply step acquires
 * per-cache-line locks from a shared table so two regions whose write
 * sets overlap conflict — one commits, the other takes a *contention
 * abort* and re-executes, exactly like real RTM's cache-coherence
 * conflict detection (just with coarser, commit-time granularity).
 *
 * Aborts therefore come in four flavours, counted separately for the
 * ablation table: explicit (XABORT), injected (the probabilistic model
 * of interrupts/sharing-induced aborts), contention (another thread
 * held a write-set line), and capacity (write set exceeded the
 * configured line budget — real RTM aborts when the write set falls
 * out of L1).
 */

#ifndef FASP_HTM_RTM_H
#define FASP_HTM_RTM_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::htm {

/** Abort/retry policy of the emulated RTM. */
struct RtmConfig
{
    /** Probability that any single attempt aborts (injected). Models
     *  the abort sources the emulation cannot observe: interrupts,
     *  false sharing, TLB misses. */
    double abortProbability = 0.0;

    /** Attempts before execute() gives up and reports fallback. The
     *  paper's default handler retries until success; a finite value
     *  models the alternative fallback-to-logging handler. */
    unsigned maxRetries = 1u << 20;

    /** Panic if a region's write set spans more than one cache line
     *  (the paper restricts the RTM working set to one line because PM
     *  cannot persist two lines atomically). */
    bool enforceSingleLine = true;

    /** Maximum distinct cache lines a write set may touch before the
     *  attempt takes a capacity abort (0 = unlimited). Capacity aborts
     *  are deterministic — retrying cannot help — so execute() falls
     *  back immediately rather than burning the retry budget, matching
     *  the _XABORT_CAPACITY handling real fallback handlers use. Only
     *  meaningful with enforceSingleLine off. */
    std::size_t capacityLines = 0;

    /** Seed for the abort-injection RNG. */
    std::uint64_t seed = 7;
};

/**
 * Counters describing RTM behaviour (ablation Table C). Relaxed
 * atomics: concurrent clients of one engine update them tear-free;
 * copies snapshot field-by-field.
 */
struct RtmStats
{
    std::atomic<std::uint64_t> begins{0};    //!< attempts started
    std::atomic<std::uint64_t> commits{0};   //!< attempts that committed
    std::atomic<std::uint64_t> aborts{0};    //!< attempts that aborted
    std::atomic<std::uint64_t> fallbacks{0}; //!< execute() calls that
                                             //!< gave up

    // Abort breakdown (sums to `aborts`).
    std::atomic<std::uint64_t> abortsExplicit{0};   //!< XABORT
    std::atomic<std::uint64_t> abortsInjected{0};   //!< modelled
    std::atomic<std::uint64_t> abortsContention{0}; //!< write-set line
                                                    //!< held by another
                                                    //!< thread
    std::atomic<std::uint64_t> abortsCapacity{0};   //!< write set over
                                                    //!< capacityLines

    RtmStats() = default;
    RtmStats(const RtmStats &other) { copyFrom(other); }

    RtmStats &operator=(const RtmStats &other)
    {
        copyFrom(other);
        return *this;
    }

    void reset() { *this = RtmStats{}; }

  private:
    void copyFrom(const RtmStats &other)
    {
        begins = other.begins.load(std::memory_order_relaxed);
        commits = other.commits.load(std::memory_order_relaxed);
        aborts = other.aborts.load(std::memory_order_relaxed);
        fallbacks = other.fallbacks.load(std::memory_order_relaxed);
        abortsExplicit =
            other.abortsExplicit.load(std::memory_order_relaxed);
        abortsInjected =
            other.abortsInjected.load(std::memory_order_relaxed);
        abortsContention =
            other.abortsContention.load(std::memory_order_relaxed);
        abortsCapacity =
            other.abortsCapacity.load(std::memory_order_relaxed);
    }
};

/**
 * Staging area handed to the transactional body. Writes are buffered and
 * only reach the device if the region commits.
 */
class RtmRegion
{
  public:
    /** Stage a store of @p len bytes at device offset @p off. */
    void write(PmOffset off, const void *src, std::size_t len);

    /** Explicitly abort this attempt (XABORT). */
    void abort() { explicitAbort_ = true; }

  private:
    friend class Rtm;

    struct StagedWrite
    {
        PmOffset off;
        std::vector<std::uint8_t> bytes;
    };

    std::vector<StagedWrite> writes_;
    bool explicitAbort_ = false;
};

/**
 * RTM execution engine bound to one PM device. execute() is safe to
 * call from many threads at once; setConfig()/reset of stats are
 * quiescent-only.
 */
class Rtm
{
  public:
    Rtm(pm::PmDevice &device, const RtmConfig &config);

    /**
     * Run @p body transactionally. The body stages writes through the
     * region; on commit they are applied to the device as ordinary
     * (volatile) stores, which the caller must then clflush + sfence to
     * make durable. The apply is atomic with respect to other execute()
     * calls whose write sets overlap (per-line commit locks).
     *
     * The body may run several times (once per attempt) and must be
     * idempotent up to its staged writes.
     *
     * @return true if an attempt committed; false if the retry budget
     *         was exhausted or a capacity abort fired (caller falls
     *         back to slot-header logging).
     */
    bool execute(const std::function<void(RtmRegion &)> &body);

    RtmStats &stats() { return stats_; }
    const RtmStats &stats() const { return stats_; }

    const RtmConfig &config() const { return config_; }

    /** Replace the abort policy (used by the abort-injection bench;
     *  quiescent only). */
    void setConfig(const RtmConfig &config);

  private:
    /** Outcome of one commit attempt's lock acquisition. */
    enum class ApplyResult : std::uint8_t { Committed, Contention };

    /** Outcome of one full attempt (body + checks + apply). */
    enum class Outcome : std::uint8_t {
        Committed,
        FallbackCapacity, //!< deterministic capacity abort: give up now
        AbortExplicit,
        AbortInjected,
        AbortContention,
    };

    Outcome attemptOnce(const std::function<void(RtmRegion &)> &body);
    ApplyResult tryApply(const RtmRegion &region);
    void checkWriteSet(const RtmRegion &region) const;
    bool rollInjectedAbort();

    /** Distinct sorted commit-lock slots of a region's write set. */
    std::vector<std::size_t> lockSlots(const RtmRegion &region) const;

    pm::PmDevice &device_;
    RtmConfig config_;
    Mutex rngMu_;
    Rng rng_ GUARDED_BY(rngMu_); //!< abort-injection RNG: shared by
                                 //!< every concurrently executing
                                 //!< attempt
    RtmStats stats_;

    /** Commit-time line locks: hashed per cache line, CAS-acquired in
     *  sorted order during apply. 2048 single-byte slots keep the
     *  table in a few cache lines; hash collisions just coarsen
     *  conflict detection (false aborts, never missed ones). */
    static constexpr std::size_t kLineLockSlots = 2048;
    std::vector<std::atomic<std::uint8_t>> lineLocks_;
};

} // namespace fasp::htm

#endif // FASP_HTM_RTM_H
