#include "htm/rtm.h"

#include "common/logging.h"
#include "pm/device.h"

namespace fasp::htm {

void
RtmRegion::write(PmOffset off, const void *src, std::size_t len)
{
    StagedWrite staged;
    staged.off = off;
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    staged.bytes.assign(bytes, bytes + len);
    writes_.push_back(std::move(staged));
}

Rtm::Rtm(pm::PmDevice &device, const RtmConfig &config)
    : device_(device), config_(config), rng_(config.seed)
{}

void
Rtm::setConfig(const RtmConfig &config)
{
    config_ = config;
    rng_ = Rng(config.seed);
}

void
Rtm::checkWriteSet(const RtmRegion &region) const
{
    if (!config_.enforceSingleLine)
        return;
    bool have_line = false;
    PmOffset line = 0;
    for (const auto &staged : region.writes_) {
        if (staged.bytes.empty())
            continue;
        PmOffset first = cacheLineBase(staged.off);
        PmOffset last =
            cacheLineBase(staged.off + staged.bytes.size() - 1);
        if (first != last) {
            faspPanic("RTM write set spans multiple cache lines "
                      "(off=%llu len=%zu)",
                      static_cast<unsigned long long>(staged.off),
                      staged.bytes.size());
        }
        if (!have_line) {
            line = first;
            have_line = true;
        } else if (line != first) {
            faspPanic("RTM write set touches two cache lines "
                      "(%llu and %llu)",
                      static_cast<unsigned long long>(line),
                      static_cast<unsigned long long>(first));
        }
    }
}

void
Rtm::apply(const RtmRegion &region)
{
    // XEND: the staged stores become visible. They remain volatile (in
    // the simulated CPU cache) until the caller flushes them, and since
    // the write set is one line they can never be torn by a crash.
    for (const auto &staged : region.writes_)
        device_.write(staged.off, staged.bytes.data(),
                      staged.bytes.size());
}

bool
Rtm::execute(const std::function<void(RtmRegion &)> &body)
{
    for (unsigned attempt = 0; attempt <= config_.maxRetries; ++attempt) {
        stats_.begins++;
        RtmRegion region;
        body(region);
        checkWriteSet(region);

        bool injected_abort = config_.abortProbability > 0.0 &&
                              rng_.nextBool(config_.abortProbability);
        if (region.explicitAbort_ || injected_abort) {
            stats_.aborts++;
            continue;
        }
        apply(region);
        stats_.commits++;
        return true;
    }
    stats_.fallbacks++;
    return false;
}

} // namespace fasp::htm
