#include "htm/rtm.h"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pm/device.h"

namespace fasp::htm {

namespace {

/** Abort-class counter + trace event (metrics-enabled runs only). */
void
observeAbort(const char *abortClass)
{
    if (!obs::enabled())
        return;
    obs::MetricsRegistry::global()
        .counter(std::string("htm.aborts.") + abortClass).inc();
    obs::Tracer::global().record(obs::TraceOp::RtmAbort, nullptr, 0,
                                 abortClass);
}

} // namespace

void
RtmRegion::write(PmOffset off, const void *src, std::size_t len)
{
    StagedWrite staged;
    staged.off = off;
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    staged.bytes.assign(bytes, bytes + len);
    writes_.push_back(std::move(staged));
}

Rtm::Rtm(pm::PmDevice &device, const RtmConfig &config)
    : device_(device), config_(config), rng_(config.seed),
      lineLocks_(kLineLockSlots)
{}

void
Rtm::setConfig(const RtmConfig &config)
{
    // Quiescent-only by contract, but reseeding under the RNG mutex
    // costs nothing and keeps the guard discipline uniform.
    config_ = config;
    MutexLock lk(&rngMu_);
    rng_ = Rng(config.seed);
}

void
Rtm::checkWriteSet(const RtmRegion &region) const
{
    if (!config_.enforceSingleLine)
        return;
    bool have_line = false;
    PmOffset line = 0;
    for (const auto &staged : region.writes_) {
        if (staged.bytes.empty())
            continue;
        PmOffset first = cacheLineBase(staged.off);
        PmOffset last =
            cacheLineBase(staged.off + staged.bytes.size() - 1);
        if (first != last) {
            faspPanic("RTM write set spans multiple cache lines "
                      "(off=%llu len=%zu)",
                      static_cast<unsigned long long>(staged.off),
                      staged.bytes.size());
        }
        if (!have_line) {
            line = first;
            have_line = true;
        } else if (line != first) {
            faspPanic("RTM write set touches two cache lines "
                      "(%llu and %llu)",
                      static_cast<unsigned long long>(line),
                      static_cast<unsigned long long>(first));
        }
    }
}

bool
Rtm::rollInjectedAbort()
{
    if (config_.abortProbability <= 0.0)
        return false;
    MutexLock lk(&rngMu_);
    return rng_.nextBool(config_.abortProbability);
}

std::vector<std::size_t>
Rtm::lockSlots(const RtmRegion &region) const
{
    std::vector<std::size_t> slots;
    for (const auto &staged : region.writes_) {
        if (staged.bytes.empty())
            continue;
        for (PmOffset base = cacheLineBase(staged.off);
             base < staged.off + staged.bytes.size();
             base += kCacheLineSize) {
            slots.push_back((base / kCacheLineSize) *
                            0x9e3779b97f4a7c15ull % kLineLockSlots);
        }
    }
    // Sorted + deduped: locks are taken in a global order, so two
    // overlapping commits cannot deadlock.
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    return slots;
}

Rtm::ApplyResult
Rtm::tryApply(const RtmRegion &region)
{
    std::vector<std::size_t> slots = lockSlots(region);
    std::size_t held = 0;
    for (; held < slots.size(); ++held) {
        std::uint8_t expected = 0;
        if (!lineLocks_[slots[held]].compare_exchange_strong(
                expected, 1, std::memory_order_acquire,
                std::memory_order_relaxed)) {
            // Another thread is committing to this line right now:
            // the hardware would have aborted us the moment its store
            // invalidated our read/write set.
            for (std::size_t i = 0; i < held; ++i)
                lineLocks_[slots[i]].store(0, std::memory_order_release);
            return ApplyResult::Contention;
        }
    }
    // XEND: the staged stores become visible. They remain volatile (in
    // the simulated CPU cache) until the caller flushes them, and since
    // the write set is one line they can never be torn by a crash.
    for (const auto &staged : region.writes_)
        device_.write(staged.off, staged.bytes.data(),
                      staged.bytes.size());
    for (std::size_t slot : slots)
        lineLocks_[slot].store(0, std::memory_order_release);
    return ApplyResult::Committed;
}

Rtm::Outcome
Rtm::attemptOnce(const std::function<void(RtmRegion &)> &body)
{
    stats_.begins.fetch_add(1, std::memory_order_relaxed);
    RtmRegion region;
    body(region);
    checkWriteSet(region);

    if (config_.capacityLines > 0) {
        std::unordered_set<PmOffset> lines;
        for (const auto &staged : region.writes_) {
            for (PmOffset base = cacheLineBase(staged.off);
                 base < staged.off + staged.bytes.size();
                 base += kCacheLineSize) {
                lines.insert(base);
            }
        }
        if (lines.size() > config_.capacityLines) {
            stats_.aborts.fetch_add(1, std::memory_order_relaxed);
            stats_.abortsCapacity.fetch_add(
                1, std::memory_order_relaxed);
            observeAbort("capacity");
            return Outcome::FallbackCapacity;
        }
    }

    if (region.explicitAbort_) {
        stats_.aborts.fetch_add(1, std::memory_order_relaxed);
        stats_.abortsExplicit.fetch_add(1, std::memory_order_relaxed);
        observeAbort("explicit");
        return Outcome::AbortExplicit;
    }
    if (rollInjectedAbort()) {
        stats_.aborts.fetch_add(1, std::memory_order_relaxed);
        stats_.abortsInjected.fetch_add(1, std::memory_order_relaxed);
        observeAbort("injected");
        return Outcome::AbortInjected;
    }
    if (tryApply(region) == ApplyResult::Contention) {
        stats_.aborts.fetch_add(1, std::memory_order_relaxed);
        stats_.abortsContention.fetch_add(
            1, std::memory_order_relaxed);
        observeAbort("contention");
        return Outcome::AbortContention;
    }
    stats_.commits.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
        static obs::Counter &c =
            obs::MetricsRegistry::global().counter("htm.commits");
        c.inc();
    }
    return Outcome::Committed;
}

bool
Rtm::execute(const std::function<void(RtmRegion &)> &body)
{
    mc::SchedulerHook *h = mc::activeHook();
    for (unsigned attempt = 0; attempt <= config_.maxRetries; ++attempt) {
        if (h)
            h->atPoint(mc::HookOp::RtmBegin, this, 1);
        Outcome out;
        {
            // Under fasp-mc the whole attempt executes atomically: on
            // real RTM no other thread can observe an intermediate
            // state of a transaction (stores are invisible until
            // XEND), so interleavings inside the region are
            // unobservable and exploring them would only blow up the
            // schedule space. Contention aborts are therefore not
            // exercised under the model checker (the TSan stress suite
            // covers them); injected/explicit/capacity aborts are.
            mc::HookDepthGuard hook_depth;
            out = attemptOnce(body);
        }
        switch (out) {
          case Outcome::Committed:
            if (h)
                h->atPoint(mc::HookOp::RtmCommit, this, 1);
            return true;
          case Outcome::FallbackCapacity:
            // Deterministic: the write set won't shrink on retry.
            stats_.fallbacks.fetch_add(1, std::memory_order_relaxed);
            return false;
          case Outcome::AbortContention:
            // Brief pause so the winning committer can finish before we
            // re-execute the body against the updated line.
            std::this_thread::yield();
            [[fallthrough]];
          case Outcome::AbortExplicit:
          case Outcome::AbortInjected:
            if (h)
                h->atPoint(mc::HookOp::RtmAbort, this, 1);
            continue;
        }
    }
    stats_.fallbacks.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
        static obs::Counter &c =
            obs::MetricsRegistry::global().counter("htm.fallbacks");
        c.inc();
    }
    return false;
}

} // namespace fasp::htm
