// fasp-lint: allow-file(raw-std-sync) -- lock-free operation-trace ring;
// records scheduling, never participates in it.
/**
 * @file
 * Per-operation tracing: each recording thread owns a lock-free
 * single-writer ring buffer of fixed-size TraceEvents; a global
 * sequence number lets a reader merge the rings back into one ordered
 * timeline. Overflow overwrites the oldest events in the writer's own
 * ring (and counts them at overwrite time, with a monotonic drop
 * counter), so a hot thread can never block or allocate on the record
 * path.
 *
 * Thread safety: record() is safe from any thread (each thread writes
 * only its own ring; ring registration takes the Tracer mutex once per
 * thread). collect()/snapshot() may run concurrently with writers: the
 * slots are arrays of relaxed atomic words, and the reader re-checks
 * the head after copying so an entry overwritten mid-read is discarded
 * rather than returned torn. A quiescent collect (after joining the
 * writers) still sees exactly the retained events.
 */

#ifndef FASP_OBS_TRACE_H
#define FASP_OBS_TRACE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"

namespace fasp::obs {

/** What kind of operation a trace event records. */
enum class TraceOp : std::uint8_t {
    TxCommit,      //!< transaction committed (in-place or logged)
    TxFallback,    //!< FAST in-place commit fell back to logging
    TxAbort,       //!< transaction rolled back
    LatchConflict, //!< page-latch conflict aborted a transaction
    RtmAbort,      //!< one RTM attempt aborted (detail = abort class)
    PageAlloc,     //!< pager allocated a page
    PageFree,      //!< pager freed a page
    Recovery,      //!< engine ran its recovery pass
    BenchPhase,    //!< bench driver marker (detail = phase name)
};

const char *traceOpName(TraceOp op);

/**
 * One traced operation. Label fields point at string literals (engine
 * names, abort-class names); the ring stores the pointers, so only
 * static strings may be passed.
 */
struct TraceEvent
{
    std::uint64_t seq = 0;       //!< global order across all rings
    TraceOp op = TraceOp::TxCommit;
    const char *engine = nullptr;//!< engine name, or nullptr
    const char *detail = nullptr;//!< op-specific label, or nullptr
    std::uint64_t pageId = 0;    //!< page involved, or 0
    std::uint64_t modelNs = 0;   //!< modelled PM latency of the op
    std::uint64_t durationNs = 0;//!< wall duration, or 0 if untimed
};

/**
 * Fixed-capacity single-writer ring. The owning thread records; any
 * thread may read counters or snapshot concurrently (entries caught
 * mid-overwrite are discarded, never returned torn).
 */
class TraceRing
{
  public:
    /** @p capacity is rounded up to a power of two (min 8). */
    explicit TraceRing(std::size_t capacity);

    /** Append @p ev, overwriting the oldest event when full. Only the
     *  owning thread may call this. */
    void record(const TraceEvent &ev);

    std::size_t capacity() const { return slots_.size(); }

    /** Events ever recorded into this ring. */
    std::uint64_t recorded() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /** Events overwritten by wraparound. Monotonic, counted at
     *  overwrite time (before the head moves), so a reader racing a
     *  wrapping writer can over- but never under-count the loss. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_acquire);
    }

    /** Retained events, oldest first. Safe concurrently with the
     *  writer; entries overwritten mid-copy are discarded. */
    std::vector<TraceEvent> snapshot() const;

    /** Forget all events. Quiescent-only. */
    void reset()
    {
        head_.store(0, std::memory_order_relaxed);
        dropped_.store(0, std::memory_order_relaxed);
    }

  private:
    // One event packed into relaxed atomic words so a concurrent
    // snapshot() is race-free under TSan; word 0 packs (seq << 8 | op).
    static constexpr std::size_t kWordsPerSlot = 6;

    struct Slot
    {
        std::array<std::atomic<std::uint64_t>, kWordsPerSlot> words{};
    };

    static std::uint64_t packSeqOp(std::uint64_t seq, TraceOp op)
    {
        return (seq << 8) | static_cast<std::uint64_t>(op);
    }

    std::vector<Slot> slots_;
    std::size_t mask_;
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/** Per-ring occupancy/drop summary (exported by obs/export.cc so a
 *  hot thread overflowing its ring is visible, not silent). */
struct TraceRingStats
{
    std::size_t ring = 0;       //!< ring index (registration order)
    std::size_t capacity = 0;
    std::uint64_t recorded = 0; //!< events ever recorded
    std::uint64_t dropped = 0;  //!< events lost to wraparound
    std::uint64_t retained = 0; //!< events currently held
};

/**
 * Process-wide trace sink: hands each recording thread its own
 * TraceRing on first use and merges them for export. Rings are never
 * deallocated while the Tracer lives, so the per-thread cached pointer
 * stays valid even after the thread exits (its ring just goes idle).
 */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultRingCapacity = 4096;

    explicit Tracer(std::size_t ringCapacity = kDefaultRingCapacity);

    /** Process-wide tracer the wiring records into. */
    static Tracer &global();

    /** Record one event into the calling thread's ring, stamping the
     *  global sequence number. */
    void record(TraceOp op, const char *engine = nullptr,
                std::uint64_t pageId = 0, const char *detail = nullptr,
                std::uint64_t modelNs = 0, std::uint64_t durationNs = 0);

    /** Next sequence number to be issued (events recorded so far carry
     *  seq < currentSeq()). The span profiler brackets a transaction's
     *  trace window with this. */
    std::uint64_t currentSeq() const
    {
        return seq_.load(std::memory_order_relaxed);
    }

    /** Retained events of the *calling thread's* ring whose sequence
     *  numbers fall in [seqLo, seqHi), oldest first. Lock-free reads of
     *  the thread's own ring — safe on the hot path (outlier capture). */
    std::vector<TraceEvent> threadEventsInWindow(std::uint64_t seqLo,
                                                 std::uint64_t seqHi)
        EXCLUDES(mu_);

    /** All retained events from every ring, merged by sequence number.
     *  Safe concurrently with writers (see TraceRing::snapshot). */
    std::vector<TraceEvent> collect() const EXCLUDES(mu_);

    /** Events ever recorded, across all rings. */
    std::uint64_t totalRecorded() const EXCLUDES(mu_);

    /** Events lost to ring wraparound, across all rings. */
    std::uint64_t totalDropped() const EXCLUDES(mu_);

    /** Number of thread rings created so far. */
    std::size_t ringCount() const EXCLUDES(mu_);

    /** Per-ring capacity/recorded/dropped/retained, in registration
     *  order. */
    std::vector<TraceRingStats> ringStats() const EXCLUDES(mu_);

    /** Forget all events in every ring. Quiescent-only. */
    void reset() EXCLUDES(mu_);

  private:
    TraceRing &threadRing() EXCLUDES(mu_);

    const std::size_t ringCapacity_;
    const std::uint64_t id_; //!< distinguishes tracers in thread memos
    std::atomic<std::uint64_t> seq_{0};
    mutable Mutex mu_;
    std::deque<std::unique_ptr<TraceRing>> rings_ GUARDED_BY(mu_);
};

} // namespace fasp::obs

#endif // FASP_OBS_TRACE_H
