// fasp-lint: allow-file(raw-std-sync) -- lock-free metrics registry:
// monotonic counters only, never synchronization of engine state.
#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace fasp::obs {

namespace {

std::atomic<bool> g_enabled{false};

/** Site tag billed when a PM event fires outside any SiteScope. */
constexpr const char *kUntaggedSite = "(untagged)";

/** Site tag billed once the slot table is full. */
constexpr const char *kOverflowSite = "(overflow)";

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

// --- Histogram ---------------------------------------------------------

std::size_t
Histogram::bucketIndex(std::uint64_t v)
{
    if (v == 0)
        return 0;
    return std::min<std::size_t>(std::bit_width(v), kBuckets - 1);
}

std::uint64_t
Histogram::bucketUpperEdge(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

void
Histogram::record(std::uint64_t v)
{
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v &&
           !max_.compare_exchange_weak(prev, v,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::quantile(double q) const
{
    std::uint64_t total = count();
    if (total == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the requested quantile, 1-based.
    auto rank = static_cast<std::uint64_t>(q * double(total - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += bucketCount(i);
        if (seen >= rank) {
            if (i == kBuckets - 1)
                return max();
            return bucketUpperEdge(i);
        }
    }
    return max();
}

void
Histogram::merge(const Histogram &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i) {
        std::uint64_t n = other.bucketCount(i);
        if (n)
            buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    std::uint64_t omax = other.max();
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < omax &&
           !max_.compare_exchange_weak(prev, omax,
                                       std::memory_order_relaxed)) {
    }
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

// --- MetricsRegistry ---------------------------------------------------

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    MutexLock lk(&mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string(name),
                               std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    MutexLock lk(&mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::string(name),
                             std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    MutexLock lk(&mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string(name),
                                 std::make_unique<Histogram>()).first;
    }
    return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters() const
{
    MutexLock lk(&mu_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, c->value());
    return out;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::gauges() const
{
    MutexLock lk(&mu_);
    std::vector<std::pair<std::string, std::int64_t>> out;
    out.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        out.emplace_back(name, g->value());
    return out;
}

HistogramSnapshot
snapshotHistogram(const Histogram &h)
{
    HistogramSnapshot snap;
    snap.count = h.count();
    snap.sum = h.sum();
    snap.max = h.max();
    snap.p50 = h.p50();
    snap.p95 = h.p95();
    snap.p99 = h.p99();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        std::uint64_t n = h.bucketCount(i);
        std::uint64_t edge = (i == Histogram::kBuckets - 1)
            ? snap.max : Histogram::bucketUpperEdge(i);
        if (n)
            snap.buckets.emplace_back(edge, n);
    }
    return snap;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histograms() const
{
    MutexLock lk(&mu_);
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    out.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_)
        out.emplace_back(name, snapshotHistogram(*h));
    return out;
}

void
MetricsRegistry::reset()
{
    MutexLock lk(&mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

// --- PmAttribution -----------------------------------------------------

PmCellSnapshot
PmAttribution::snapshotCell(const Cell &cell)
{
    PmCellSnapshot snap;
    snap.stores = cell.stores.load(std::memory_order_relaxed);
    snap.storeBytes = cell.storeBytes.load(std::memory_order_relaxed);
    snap.flushes = cell.flushes.load(std::memory_order_relaxed);
    snap.fences = cell.fences.load(std::memory_order_relaxed);
    snap.modelNs = cell.modelNs.load(std::memory_order_relaxed);
    return snap;
}

PmAttribution::Cell &
PmAttribution::siteCell(const char *site)
{
    if (site == nullptr)
        site = kUntaggedSite;

    // One-entry per-thread memo: commit paths hammer one site tag at a
    // time, so the common case skips the scan entirely.
    struct Memo
    {
        const PmAttribution *owner = nullptr;
        const char *site = nullptr;
        Cell *cell = nullptr;
    };
    thread_local Memo memo;
    if (memo.owner == this && memo.site == site)
        return *memo.cell;

    for (auto &slot : sites_) {
        const char *cur = slot.name.load(std::memory_order_acquire);
        if (cur == nullptr) {
            // Claim the empty slot; on a lost race, fall through to
            // re-examine whatever the winner installed.
            if (slot.name.compare_exchange_strong(
                    cur, site, std::memory_order_acq_rel)) {
                cur = site;
            }
        }
        // Pointer compare first (tags are literals); content compare
        // catches identical literals with distinct addresses.
        if (cur == site || std::strcmp(cur, site) == 0) {
            memo = Memo{this, site, &slot.cell};
            return slot.cell;
        }
    }
    return overflow_;
}

void
PmAttribution::onPmStore(const char *site, pm::Component phase,
                         std::size_t bytes)
{
    Cell &pc = phaseCell(phase);
    pc.stores.fetch_add(1, std::memory_order_relaxed);
    pc.storeBytes.fetch_add(bytes, std::memory_order_relaxed);
    Cell &sc = siteCell(site);
    sc.stores.fetch_add(1, std::memory_order_relaxed);
    sc.storeBytes.fetch_add(bytes, std::memory_order_relaxed);
}

void
PmAttribution::onPmFlush(const char *site, pm::Component phase)
{
    phaseCell(phase).flushes.fetch_add(1, std::memory_order_relaxed);
    siteCell(site).flushes.fetch_add(1, std::memory_order_relaxed);
}

void
PmAttribution::onPmFence(const char *site, pm::Component phase)
{
    phaseCell(phase).fences.fetch_add(1, std::memory_order_relaxed);
    siteCell(site).fences.fetch_add(1, std::memory_order_relaxed);
}

void
PmAttribution::onPmModelNs(const char *site, pm::Component phase,
                           std::uint64_t ns)
{
    phaseCell(phase).modelNs.fetch_add(ns, std::memory_order_relaxed);
    siteCell(site).modelNs.fetch_add(ns, std::memory_order_relaxed);
}

PmCellSnapshot
PmAttribution::phase(pm::Component comp) const
{
    return snapshotCell(phases_[static_cast<std::size_t>(comp)]);
}

std::vector<std::pair<std::string, PmCellSnapshot>>
PmAttribution::sites() const
{
    std::vector<std::pair<std::string, PmCellSnapshot>> out;
    for (const auto &slot : sites_) {
        const char *name = slot.name.load(std::memory_order_acquire);
        if (name == nullptr)
            break;
        out.emplace_back(name, snapshotCell(slot.cell));
    }
    PmCellSnapshot ovf = snapshotCell(overflow_);
    if (!ovf.empty())
        out.emplace_back(kOverflowSite, ovf);
    return out;
}

void
PmAttribution::reset()
{
    auto zero = [](Cell &c) {
        c.stores.store(0, std::memory_order_relaxed);
        c.storeBytes.store(0, std::memory_order_relaxed);
        c.flushes.store(0, std::memory_order_relaxed);
        c.fences.store(0, std::memory_order_relaxed);
        c.modelNs.store(0, std::memory_order_relaxed);
    };
    for (auto &c : phases_)
        zero(c);
    for (auto &slot : sites_)
        zero(slot.cell);
    zero(overflow_);
}

// --- PhaseLedger -------------------------------------------------------

PhaseLedger &
PhaseLedger::global()
{
    static PhaseLedger ledger;
    return ledger;
}

void
PhaseLedger::fold(std::string_view engine, const PmAttribution &attr)
{
    MutexLock lk(&mu_);
    Entry *entry = nullptr;
    for (auto &e : entries_) {
        if (e.engine == engine) {
            entry = &e;
            break;
        }
    }
    if (entry == nullptr) {
        entries_.emplace_back();
        entry = &entries_.back();
        entry->engine = std::string(engine);
    }
    for (std::size_t i = 0; i < PmAttribution::kNumPhases; ++i) {
        entry->phases[i] +=
            attr.phase(static_cast<pm::Component>(i));
    }
    for (const auto &[site, cell] : attr.sites()) {
        auto it = std::find_if(
            entry->sites.begin(), entry->sites.end(),
            [&](const auto &p) { return p.first == site; });
        if (it == entry->sites.end())
            entry->sites.emplace_back(site, cell);
        else
            it->second += cell;
    }
}

std::vector<PhaseLedger::Entry>
PhaseLedger::entries() const
{
    MutexLock lk(&mu_);
    return entries_;
}

void
PhaseLedger::reset()
{
    MutexLock lk(&mu_);
    entries_.clear();
}

// --- RecoveryLedger ----------------------------------------------------

const char *
recoveryPhaseName(RecoveryPhase phase)
{
    switch (phase) {
      case RecoveryPhase::Scan: return "scan";
      case RecoveryPhase::Replay: return "replay";
      case RecoveryPhase::Discard: return "discard";
      case RecoveryPhase::TornRepair: return "torn-repair";
    }
    return "?";
}

RecoveryLedger &
RecoveryLedger::global()
{
    static RecoveryLedger ledger;
    return ledger;
}

void
RecoveryLedger::record(std::string_view engine, const Sample &sample)
{
    MutexLock lk(&mu_);
    Entry *entry = nullptr;
    for (auto &e : entries_) {
        if (e->engine == engine) {
            entry = e.get();
            break;
        }
    }
    if (entry == nullptr) {
        entries_.push_back(std::make_unique<Entry>());
        entry = entries_.back().get();
        entry->engine = std::string(engine);
    }
    entry->recoveries++;
    entry->pagesScanned += sample.pagesScanned;
    entry->recordsReplayed += sample.recordsReplayed;
    entry->recordsDiscarded += sample.recordsDiscarded;
    entry->tornRecords += sample.tornRecords;
    for (std::size_t i = 0; i < kNumRecoveryPhases; ++i)
        entry->phaseNs[i].record(sample.phaseNs[i]);
}

std::vector<RecoveryLedger::EntrySnapshot>
RecoveryLedger::entries() const
{
    MutexLock lk(&mu_);
    std::vector<EntrySnapshot> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_) {
        EntrySnapshot snap;
        snap.engine = e->engine;
        snap.recoveries = e->recoveries;
        snap.pagesScanned = e->pagesScanned;
        snap.recordsReplayed = e->recordsReplayed;
        snap.recordsDiscarded = e->recordsDiscarded;
        snap.tornRecords = e->tornRecords;
        for (std::size_t i = 0; i < kNumRecoveryPhases; ++i)
            snap.phases[i] = snapshotHistogram(e->phaseNs[i]);
        out.push_back(std::move(snap));
    }
    return out;
}

void
RecoveryLedger::reset()
{
    MutexLock lk(&mu_);
    entries_.clear();
}

} // namespace fasp::obs
