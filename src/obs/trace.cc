// fasp-lint: allow-file(raw-std-sync) -- lock-free operation-trace ring;
// records scheduling, never participates in it.
#include "obs/trace.h"

#include <algorithm>

namespace fasp::obs {

const char *
traceOpName(TraceOp op)
{
    switch (op) {
      case TraceOp::TxCommit: return "tx-commit";
      case TraceOp::TxFallback: return "tx-fallback";
      case TraceOp::TxAbort: return "tx-abort";
      case TraceOp::LatchConflict: return "latch-conflict";
      case TraceOp::RtmAbort: return "rtm-abort";
      case TraceOp::PageAlloc: return "page-alloc";
      case TraceOp::PageFree: return "page-free";
      case TraceOp::Recovery: return "recovery";
      case TraceOp::BenchPhase: return "bench-phase";
    }
    return "?";
}

// --- TraceRing ---------------------------------------------------------

namespace {

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 8;
    while (p < v)
        p <<= 1;
    return p;
}

// Word 0 of a slot mid-overwrite. A real word 0 packs (seq << 8 | op)
// with op < 16, so all-ones cannot collide until seq wraps 56 bits.
constexpr std::uint64_t kSlotBusy = ~std::uint64_t{0};

} // namespace

TraceRing::TraceRing(std::size_t capacity)
    : slots_(roundUpPow2(capacity)), mask_(slots_.size() - 1)
{
}

void
TraceRing::record(const TraceEvent &ev)
{
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    Slot &slot = slots_[head & mask_];
    // Count the drop before the slot is clobbered so a reader racing a
    // wrapping writer never under-counts the loss.
    if (head >= capacity())
        dropped_.fetch_add(1, std::memory_order_release);
    // Seqlock-lite: mark the slot busy, write the payload with release
    // stores (so the busy mark is ordered before every payload word a
    // reader can observe), then publish the new (seq|op) word. A
    // concurrent snapshot() re-reads word 0 after copying and discards
    // the entry if it changed.
    slot.words[0].store(kSlotBusy, std::memory_order_relaxed);
    slot.words[1].store(reinterpret_cast<std::uintptr_t>(ev.engine),
                        std::memory_order_release);
    slot.words[2].store(reinterpret_cast<std::uintptr_t>(ev.detail),
                        std::memory_order_release);
    slot.words[3].store(ev.pageId, std::memory_order_release);
    slot.words[4].store(ev.modelNs, std::memory_order_release);
    slot.words[5].store(ev.durationNs, std::memory_order_release);
    slot.words[0].store(packSeqOp(ev.seq, ev.op),
                        std::memory_order_release);
    head_.store(head + 1, std::memory_order_release);
}

std::vector<TraceEvent>
TraceRing::snapshot() const
{
    std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t retained = std::min<std::uint64_t>(head, capacity());
    std::vector<TraceEvent> out;
    out.reserve(retained);
    for (std::uint64_t i = head - retained; i < head; ++i) {
        const Slot &slot = slots_[i & mask_];
        std::uint64_t w0 = slot.words[0].load(std::memory_order_acquire);
        if (w0 == kSlotBusy)
            continue;
        TraceEvent ev;
        ev.engine = reinterpret_cast<const char *>(
            slot.words[1].load(std::memory_order_acquire));
        ev.detail = reinterpret_cast<const char *>(
            slot.words[2].load(std::memory_order_acquire));
        ev.pageId = slot.words[3].load(std::memory_order_acquire);
        ev.modelNs = slot.words[4].load(std::memory_order_acquire);
        ev.durationNs = slot.words[5].load(std::memory_order_acquire);
        // Torn-read check: if the slot was overwritten while we copied
        // it, word 0 changed (seq is monotonic per ring, so ABA cannot
        // occur) and the entry is discarded rather than returned torn.
        if (slot.words[0].load(std::memory_order_acquire) != w0)
            continue;
        ev.seq = w0 >> 8;
        ev.op = static_cast<TraceOp>(w0 & 0xff);
        out.push_back(ev);
    }
    return out;
}

// --- Tracer ------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_tracerIds{0};

} // namespace

Tracer::Tracer(std::size_t ringCapacity)
    : ringCapacity_(ringCapacity),
      id_(g_tracerIds.fetch_add(1, std::memory_order_relaxed))
{
}

Tracer &
Tracer::global()
{
    // Leaked so recording threads may outlive static destruction.
    static Tracer *tracer = new Tracer();
    return *tracer;
}

TraceRing &
Tracer::threadRing()
{
    // Memo keyed by tracer id, not address: tests build short-lived
    // Tracers and an address could be reused.
    struct Memo
    {
        std::uint64_t tracerId = ~std::uint64_t{0};
        TraceRing *ring = nullptr;
    };
    thread_local std::vector<Memo> memos;
    for (const Memo &m : memos) {
        if (m.tracerId == id_)
            return *m.ring;
    }
    TraceRing *ring;
    {
        MutexLock lk(&mu_);
        rings_.push_back(std::make_unique<TraceRing>(ringCapacity_));
        ring = rings_.back().get();
    }
    memos.push_back(Memo{id_, ring});
    return *ring;
}

void
Tracer::record(TraceOp op, const char *engine, std::uint64_t pageId,
               const char *detail, std::uint64_t modelNs,
               std::uint64_t durationNs)
{
    TraceEvent ev;
    ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    ev.op = op;
    ev.engine = engine;
    ev.detail = detail;
    ev.pageId = pageId;
    ev.modelNs = modelNs;
    ev.durationNs = durationNs;
    threadRing().record(ev);
}

std::vector<TraceEvent>
Tracer::threadEventsInWindow(std::uint64_t seqLo, std::uint64_t seqHi)
{
    std::vector<TraceEvent> events = threadRing().snapshot();
    std::vector<TraceEvent> out;
    for (const TraceEvent &ev : events) {
        if (ev.seq >= seqLo && ev.seq < seqHi)
            out.push_back(ev);
    }
    return out;
}

std::vector<TraceEvent>
Tracer::collect() const
{
    std::vector<TraceEvent> out;
    {
        MutexLock lk(&mu_);
        for (const auto &ring : rings_) {
            auto events = ring->snapshot();
            out.insert(out.end(), events.begin(), events.end());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.seq < b.seq;
              });
    return out;
}

std::uint64_t
Tracer::totalRecorded() const
{
    MutexLock lk(&mu_);
    std::uint64_t n = 0;
    for (const auto &ring : rings_)
        n += ring->recorded();
    return n;
}

std::uint64_t
Tracer::totalDropped() const
{
    MutexLock lk(&mu_);
    std::uint64_t n = 0;
    for (const auto &ring : rings_)
        n += ring->dropped();
    return n;
}

std::size_t
Tracer::ringCount() const
{
    MutexLock lk(&mu_);
    return rings_.size();
}

std::vector<TraceRingStats>
Tracer::ringStats() const
{
    MutexLock lk(&mu_);
    std::vector<TraceRingStats> out;
    out.reserve(rings_.size());
    for (std::size_t i = 0; i < rings_.size(); ++i) {
        const TraceRing &ring = *rings_[i];
        TraceRingStats stats;
        stats.ring = i;
        stats.capacity = ring.capacity();
        stats.recorded = ring.recorded();
        stats.dropped = ring.dropped();
        // recorded is read before dropped, so a racing writer can only
        // shrink the difference; clamp keeps the estimate conservative.
        stats.retained = stats.recorded >= stats.dropped
                             ? stats.recorded - stats.dropped
                             : 0;
        out.push_back(stats);
    }
    return out;
}

void
Tracer::reset()
{
    MutexLock lk(&mu_);
    for (auto &ring : rings_)
        ring->reset();
}

} // namespace fasp::obs
