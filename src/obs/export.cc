#include "obs/export.h"

#include <cctype>
#include <cstdio>
#include <fstream>

namespace fasp::obs {

namespace {

/** Append @p s as a JSON string literal (quoted, escaped). */
void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendU64(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
}

void
appendCellJson(std::string &out, const PmCellSnapshot &cell)
{
    out += "{\"stores\": ";
    appendU64(out, cell.stores);
    out += ", \"store_bytes\": ";
    appendU64(out, cell.storeBytes);
    out += ", \"flushes\": ";
    appendU64(out, cell.flushes);
    out += ", \"fences\": ";
    appendU64(out, cell.fences);
    out += ", \"model_ns\": ";
    appendU64(out, cell.modelNs);
    out += "}";
}

/** Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*. */
std::string
promName(std::string_view name)
{
    std::string out = "fasp_";
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_')
            out += c;
        else
            out += '_';
    }
    return out;
}

/** Prometheus label values only need backslash/quote/newline escaping. */
std::string
promLabel(std::string_view s)
{
    std::string out;
    for (char c : s) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

std::string
exportJson(const std::string &benchName,
           const MetricsRegistry &registry, const PhaseLedger &ledger,
           const RecoveryLedger &recovery, const Tracer &tracer,
           std::size_t maxTraceEvents)
{
    std::string out;
    out += "{\n  \"bench\": ";
    appendJsonString(out, benchName);
    out += ",\n  \"schema_version\": 3";

    out += ",\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : registry.counters()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, name);
        out += ": ";
        appendU64(out, value);
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : registry.gauges()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, name);
        out += ": ";
        out += std::to_string(value);
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"histograms\": {";
    first = true;
    for (const auto &[name, snap] : registry.histograms()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, name);
        out += ": {\"count\": ";
        appendU64(out, snap.count);
        out += ", \"sum\": ";
        appendU64(out, snap.sum);
        out += ", \"max\": ";
        appendU64(out, snap.max);
        out += ", \"p50\": ";
        appendU64(out, snap.p50);
        out += ", \"p95\": ";
        appendU64(out, snap.p95);
        out += ", \"p99\": ";
        appendU64(out, snap.p99);
        out += ", \"buckets\": [";
        bool bfirst = true;
        for (const auto &[edge, count] : snap.buckets) {
            if (!bfirst)
                out += ", ";
            bfirst = false;
            out += "[";
            appendU64(out, edge);
            out += ", ";
            appendU64(out, count);
            out += "]";
        }
        out += "]}";
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"pm_phases\": {";
    auto entries = ledger.entries();
    first = true;
    for (const auto &entry : entries) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, entry.engine);
        out += ": {";
        bool pfirst = true;
        for (std::size_t i = 0; i < PmAttribution::kNumPhases; ++i) {
            const PmCellSnapshot &cell = entry.phases[i];
            if (cell.empty())
                continue;
            out += pfirst ? "\n" : ",\n";
            pfirst = false;
            out += "      ";
            appendJsonString(
                out, pm::componentName(static_cast<pm::Component>(i)));
            out += ": ";
            appendCellJson(out, cell);
        }
        out += pfirst ? "}" : "\n    }";
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"pm_sites\": {";
    first = true;
    for (const auto &entry : entries) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, entry.engine);
        out += ": {";
        bool sfirst = true;
        for (const auto &[site, cell] : entry.sites) {
            out += sfirst ? "\n" : ",\n";
            sfirst = false;
            out += "      ";
            appendJsonString(out, site);
            out += ": ";
            appendCellJson(out, cell);
        }
        out += sfirst ? "}" : "\n    }";
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"recovery\": {";
    first = true;
    for (const auto &rentry : recovery.entries()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, rentry.engine);
        out += ": {\"recoveries\": ";
        appendU64(out, rentry.recoveries);
        out += ", \"pages_scanned\": ";
        appendU64(out, rentry.pagesScanned);
        out += ", \"records_replayed\": ";
        appendU64(out, rentry.recordsReplayed);
        out += ", \"records_discarded\": ";
        appendU64(out, rentry.recordsDiscarded);
        out += ", \"torn_records\": ";
        appendU64(out, rentry.tornRecords);
        out += ", \"phases\": {";
        for (std::size_t i = 0; i < kNumRecoveryPhases; ++i) {
            const HistogramSnapshot &snap = rentry.phases[i];
            out += i == 0 ? "\n" : ",\n";
            out += "      ";
            appendJsonString(
                out, recoveryPhaseName(static_cast<RecoveryPhase>(i)));
            out += ": {\"count\": ";
            appendU64(out, snap.count);
            out += ", \"sum\": ";
            appendU64(out, snap.sum);
            out += ", \"p50\": ";
            appendU64(out, snap.p50);
            out += ", \"p95\": ";
            appendU64(out, snap.p95);
            out += "}";
        }
        out += "\n    }}";
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"trace\": {\"recorded\": ";
    appendU64(out, tracer.totalRecorded());
    out += ", \"dropped\": ";
    appendU64(out, tracer.totalDropped());
    out += ", \"rings\": ";
    appendU64(out, tracer.ringCount());
    out += ", \"ring_stats\": [";
    {
        auto rings = tracer.ringStats();
        for (std::size_t i = 0; i < rings.size(); ++i) {
            const TraceRingStats &rs = rings[i];
            out += i == 0 ? "\n" : ",\n";
            out += "    {\"ring\": ";
            appendU64(out, rs.ring);
            out += ", \"capacity\": ";
            appendU64(out, rs.capacity);
            out += ", \"recorded\": ";
            appendU64(out, rs.recorded);
            out += ", \"dropped\": ";
            appendU64(out, rs.dropped);
            out += ", \"retained\": ";
            appendU64(out, rs.retained);
            out += "}";
        }
        if (!rings.empty())
            out += "\n  ";
    }
    out += "], \"events\": [";
    if (maxTraceEvents > 0) {
        auto events = tracer.collect();
        std::size_t start = events.size() > maxTraceEvents
            ? events.size() - maxTraceEvents : 0;
        for (std::size_t i = start; i < events.size(); ++i) {
            const TraceEvent &ev = events[i];
            out += (i == start) ? "\n" : ",\n";
            out += "    {\"seq\": ";
            appendU64(out, ev.seq);
            out += ", \"op\": ";
            appendJsonString(out, traceOpName(ev.op));
            out += ", \"engine\": ";
            if (ev.engine)
                appendJsonString(out, ev.engine);
            else
                out += "null";
            out += ", \"detail\": ";
            if (ev.detail)
                appendJsonString(out, ev.detail);
            else
                out += "null";
            out += ", \"page\": ";
            appendU64(out, ev.pageId);
            out += ", \"model_ns\": ";
            appendU64(out, ev.modelNs);
            out += ", \"duration_ns\": ";
            appendU64(out, ev.durationNs);
            out += "}";
        }
        if (start < events.size())
            out += "\n  ";
    }
    out += "]}\n";
    out += "}\n";
    return out;
}

std::string
exportPrometheus(const std::string &benchName,
                 const MetricsRegistry &registry,
                 const PhaseLedger &ledger,
                 const RecoveryLedger &recovery, const Tracer &tracer)
{
    std::string out;
    out += "# fasp metrics export, bench=\"" + promLabel(benchName)
        + "\"\n";

    for (const auto &[name, value] : registry.counters()) {
        std::string n = promName(name);
        out += "# TYPE " + n + " counter\n";
        out += n + " " + std::to_string(value) + "\n";
    }

    for (const auto &[name, value] : registry.gauges()) {
        std::string n = promName(name);
        out += "# TYPE " + n + " gauge\n";
        out += n + " " + std::to_string(value) + "\n";
    }

    for (const auto &[name, snap] : registry.histograms()) {
        std::string n = promName(name);
        out += "# TYPE " + n + " summary\n";
        out += n + "{quantile=\"0.5\"} " + std::to_string(snap.p50)
            + "\n";
        out += n + "{quantile=\"0.95\"} " + std::to_string(snap.p95)
            + "\n";
        out += n + "{quantile=\"0.99\"} " + std::to_string(snap.p99)
            + "\n";
        out += n + "_sum " + std::to_string(snap.sum) + "\n";
        out += n + "_count " + std::to_string(snap.count) + "\n";
        out += n + "_max " + std::to_string(snap.max) + "\n";
    }

    auto emitCell = [&out](const std::string &prefix,
                           const std::string &labels,
                           const PmCellSnapshot &cell) {
        out += prefix + "_stores{" + labels + "} "
            + std::to_string(cell.stores) + "\n";
        out += prefix + "_store_bytes{" + labels + "} "
            + std::to_string(cell.storeBytes) + "\n";
        out += prefix + "_flushes{" + labels + "} "
            + std::to_string(cell.flushes) + "\n";
        out += prefix + "_fences{" + labels + "} "
            + std::to_string(cell.fences) + "\n";
        out += prefix + "_model_ns{" + labels + "} "
            + std::to_string(cell.modelNs) + "\n";
    };

    out += "# TYPE fasp_pm_phase_flushes counter\n";
    for (const auto &entry : ledger.entries()) {
        for (std::size_t i = 0; i < PmAttribution::kNumPhases; ++i) {
            const PmCellSnapshot &cell = entry.phases[i];
            if (cell.empty())
                continue;
            std::string labels = "engine=\"" + promLabel(entry.engine)
                + "\",phase=\""
                + promLabel(pm::componentName(
                      static_cast<pm::Component>(i)))
                + "\"";
            emitCell("fasp_pm_phase", labels, cell);
        }
        for (const auto &[site, cell] : entry.sites) {
            std::string labels = "engine=\"" + promLabel(entry.engine)
                + "\",site=\"" + promLabel(site) + "\"";
            emitCell("fasp_pm_site", labels, cell);
        }
    }

    auto rentries = recovery.entries();
    if (!rentries.empty()) {
        out += "# TYPE fasp_recovery_runs counter\n";
        for (const auto &rentry : rentries) {
            std::string eng =
                "engine=\"" + promLabel(rentry.engine) + "\"";
            out += "fasp_recovery_runs{" + eng + "} "
                + std::to_string(rentry.recoveries) + "\n";
            out += "fasp_recovery_pages_scanned{" + eng + "} "
                + std::to_string(rentry.pagesScanned) + "\n";
            out += "fasp_recovery_records_replayed{" + eng + "} "
                + std::to_string(rentry.recordsReplayed) + "\n";
            out += "fasp_recovery_records_discarded{" + eng + "} "
                + std::to_string(rentry.recordsDiscarded) + "\n";
            out += "fasp_recovery_torn_records{" + eng + "} "
                + std::to_string(rentry.tornRecords) + "\n";
            for (std::size_t i = 0; i < kNumRecoveryPhases; ++i) {
                const HistogramSnapshot &snap = rentry.phases[i];
                std::string labels = eng + ",phase=\""
                    + promLabel(recoveryPhaseName(
                          static_cast<RecoveryPhase>(i)))
                    + "\"";
                out += "fasp_recovery_phase_ns_sum{" + labels + "} "
                    + std::to_string(snap.sum) + "\n";
                out += "fasp_recovery_phase_ns_count{" + labels + "} "
                    + std::to_string(snap.count) + "\n";
                out += "fasp_recovery_phase_ns{" + labels
                    + ",quantile=\"0.5\"} " + std::to_string(snap.p50)
                    + "\n";
                out += "fasp_recovery_phase_ns{" + labels
                    + ",quantile=\"0.95\"} " + std::to_string(snap.p95)
                    + "\n";
            }
        }
    }

    out += "# TYPE fasp_trace_recorded counter\n";
    out += "fasp_trace_recorded " +
        std::to_string(tracer.totalRecorded()) + "\n";
    out += "fasp_trace_dropped " +
        std::to_string(tracer.totalDropped()) + "\n";
    out += "fasp_trace_rings " + std::to_string(tracer.ringCount())
        + "\n";
    for (const TraceRingStats &rs : tracer.ringStats()) {
        std::string labels =
            "ring=\"" + std::to_string(rs.ring) + "\"";
        out += "fasp_trace_ring_capacity{" + labels + "} "
            + std::to_string(rs.capacity) + "\n";
        out += "fasp_trace_ring_recorded{" + labels + "} "
            + std::to_string(rs.recorded) + "\n";
        out += "fasp_trace_ring_dropped{" + labels + "} "
            + std::to_string(rs.dropped) + "\n";
        out += "fasp_trace_ring_retained{" + labels + "} "
            + std::to_string(rs.retained) + "\n";
    }
    return out;
}

std::string
exportChromeTrace(const Tracer &tracer)
{
    // chrome://tracing "complete" (ph:"X") events. The trace rings do
    // not record wall timestamps, so events are laid out end-to-end
    // along the global sequence order: each event starts where the
    // previous one on its track ended. Durations are real (wall ns
    // when timed, else modelled PM ns, else 1us so the slice is
    // visible).
    std::string out = "{\"traceEvents\": [";
    auto events = tracer.collect();
    std::uint64_t cursorUs = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &ev = events[i];
        std::uint64_t durNs =
            ev.durationNs != 0 ? ev.durationNs : ev.modelNs;
        std::uint64_t durUs = durNs / 1000;
        if (durUs == 0)
            durUs = 1;
        out += i == 0 ? "\n" : ",\n";
        out += "  {\"name\": ";
        appendJsonString(out, traceOpName(ev.op));
        out += ", \"cat\": ";
        appendJsonString(out, ev.engine != nullptr ? ev.engine
                                                   : "fasp");
        out += ", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": ";
        appendU64(out, cursorUs);
        out += ", \"dur\": ";
        appendU64(out, durUs);
        out += ", \"args\": {\"seq\": ";
        appendU64(out, ev.seq);
        out += ", \"page\": ";
        appendU64(out, ev.pageId);
        out += ", \"model_ns\": ";
        appendU64(out, ev.modelNs);
        out += ", \"duration_ns\": ";
        appendU64(out, ev.durationNs);
        if (ev.detail != nullptr) {
            out += ", \"detail\": ";
            appendJsonString(out, ev.detail);
        }
        out += "}}";
        cursorUs += durUs;
    }
    if (!events.empty())
        out += "\n";
    out += "]}\n";
    return out;
}

bool
writeMetricsFile(const std::string &path, const std::string &benchName)
{
    std::string body;
    bool prom = path.size() >= 5 &&
        path.compare(path.size() - 5, 5, ".prom") == 0;
    if (prom) {
        body = exportPrometheus(benchName, MetricsRegistry::global(),
                                PhaseLedger::global(),
                                RecoveryLedger::global(),
                                Tracer::global());
    } else {
        body = exportJson(benchName, MetricsRegistry::global(),
                          PhaseLedger::global(),
                          RecoveryLedger::global(), Tracer::global());
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "metrics: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << body;
    out.close();
    return out.good();
}

bool
writeTraceFile(const std::string &path)
{
    std::string body = exportChromeTrace(Tracer::global());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "trace: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << body;
    out.close();
    return out.good();
}

} // namespace fasp::obs
