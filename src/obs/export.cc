#include "obs/export.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace fasp::obs {

namespace {

/** Append @p s as a JSON string literal (quoted, escaped). */
void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendU64(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
}

void
appendCellJson(std::string &out, const PmCellSnapshot &cell)
{
    out += "{\"stores\": ";
    appendU64(out, cell.stores);
    out += ", \"store_bytes\": ";
    appendU64(out, cell.storeBytes);
    out += ", \"flushes\": ";
    appendU64(out, cell.flushes);
    out += ", \"fences\": ";
    appendU64(out, cell.fences);
    out += ", \"model_ns\": ";
    appendU64(out, cell.modelNs);
    out += "}";
}

/** Append a histogram snapshot as a flat JSON object (no buckets). */
void
appendHistJson(std::string &out, const HistogramSnapshot &snap)
{
    out += "{\"count\": ";
    appendU64(out, snap.count);
    out += ", \"sum\": ";
    appendU64(out, snap.sum);
    out += ", \"max\": ";
    appendU64(out, snap.max);
    out += ", \"p50\": ";
    appendU64(out, snap.p50);
    out += ", \"p95\": ";
    appendU64(out, snap.p95);
    out += ", \"p99\": ";
    appendU64(out, snap.p99);
    out += "}";
}

/** Append a span's per-component wall-ns map (non-zero phases only;
 *  index 0 renders under componentName(None) as the untagged rest). */
void
appendPhaseNsJson(std::string &out,
                  const std::array<std::uint64_t, kSpanComponents> &ns,
                  const char *indent)
{
    out += "{";
    bool first = true;
    for (std::size_t i = 0; i < kSpanComponents; ++i) {
        if (ns[i] == 0)
            continue;
        out += first ? "\n" : ",\n";
        first = false;
        out += indent;
        appendJsonString(
            out, pm::componentName(static_cast<pm::Component>(i)));
        out += ": ";
        appendU64(out, ns[i]);
    }
    if (!first) {
        out += "\n";
        out.append(indent, std::strlen(indent) - 2);
    }
    out += "}";
}

/** Append one trace event as a JSON object (shared by the trace tail
 *  and the outliers' event slices). */
void
appendTraceEventJson(std::string &out, const TraceEvent &ev)
{
    out += "{\"seq\": ";
    appendU64(out, ev.seq);
    out += ", \"op\": ";
    appendJsonString(out, traceOpName(ev.op));
    out += ", \"engine\": ";
    if (ev.engine)
        appendJsonString(out, ev.engine);
    else
        out += "null";
    out += ", \"detail\": ";
    if (ev.detail)
        appendJsonString(out, ev.detail);
    else
        out += "null";
    out += ", \"page\": ";
    appendU64(out, ev.pageId);
    out += ", \"model_ns\": ";
    appendU64(out, ev.modelNs);
    out += ", \"duration_ns\": ";
    appendU64(out, ev.durationNs);
    out += "}";
}

/** Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*. */
std::string
promName(std::string_view name)
{
    std::string out = "fasp_";
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_')
            out += c;
        else
            out += '_';
    }
    return out;
}

/** Prometheus label values only need backslash/quote/newline escaping. */
std::string
promLabel(std::string_view s)
{
    std::string out;
    for (char c : s) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

std::string
exportJson(const std::string &benchName,
           const MetricsRegistry &registry, const PhaseLedger &ledger,
           const RecoveryLedger &recovery, const Tracer &tracer,
           std::size_t maxTraceEvents, const SpanProfiler *spans)
{
    std::string out;
    out += "{\n  \"bench\": ";
    appendJsonString(out, benchName);
    out += ",\n  \"schema_version\": 4";

    out += ",\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : registry.counters()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, name);
        out += ": ";
        appendU64(out, value);
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : registry.gauges()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, name);
        out += ": ";
        out += std::to_string(value);
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"histograms\": {";
    first = true;
    for (const auto &[name, snap] : registry.histograms()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, name);
        out += ": {\"count\": ";
        appendU64(out, snap.count);
        out += ", \"sum\": ";
        appendU64(out, snap.sum);
        out += ", \"max\": ";
        appendU64(out, snap.max);
        out += ", \"p50\": ";
        appendU64(out, snap.p50);
        out += ", \"p95\": ";
        appendU64(out, snap.p95);
        out += ", \"p99\": ";
        appendU64(out, snap.p99);
        out += ", \"buckets\": [";
        bool bfirst = true;
        for (const auto &[edge, count] : snap.buckets) {
            if (!bfirst)
                out += ", ";
            bfirst = false;
            out += "[";
            appendU64(out, edge);
            out += ", ";
            appendU64(out, count);
            out += "]";
        }
        out += "]}";
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"pm_phases\": {";
    auto entries = ledger.entries();
    first = true;
    for (const auto &entry : entries) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, entry.engine);
        out += ": {";
        bool pfirst = true;
        for (std::size_t i = 0; i < PmAttribution::kNumPhases; ++i) {
            const PmCellSnapshot &cell = entry.phases[i];
            if (cell.empty())
                continue;
            out += pfirst ? "\n" : ",\n";
            pfirst = false;
            out += "      ";
            appendJsonString(
                out, pm::componentName(static_cast<pm::Component>(i)));
            out += ": ";
            appendCellJson(out, cell);
        }
        out += pfirst ? "}" : "\n    }";
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"pm_sites\": {";
    first = true;
    for (const auto &entry : entries) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, entry.engine);
        out += ": {";
        bool sfirst = true;
        for (const auto &[site, cell] : entry.sites) {
            out += sfirst ? "\n" : ",\n";
            sfirst = false;
            out += "      ";
            appendJsonString(out, site);
            out += ": ";
            appendCellJson(out, cell);
        }
        out += sfirst ? "}" : "\n    }";
    }
    out += first ? "}" : "\n  }";

    out += ",\n  \"recovery\": {";
    first = true;
    for (const auto &rentry : recovery.entries()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    ";
        appendJsonString(out, rentry.engine);
        out += ": {\"recoveries\": ";
        appendU64(out, rentry.recoveries);
        out += ", \"pages_scanned\": ";
        appendU64(out, rentry.pagesScanned);
        out += ", \"records_replayed\": ";
        appendU64(out, rentry.recordsReplayed);
        out += ", \"records_discarded\": ";
        appendU64(out, rentry.recordsDiscarded);
        out += ", \"torn_records\": ";
        appendU64(out, rentry.tornRecords);
        out += ", \"phases\": {";
        for (std::size_t i = 0; i < kNumRecoveryPhases; ++i) {
            const HistogramSnapshot &snap = rentry.phases[i];
            out += i == 0 ? "\n" : ",\n";
            out += "      ";
            appendJsonString(
                out, recoveryPhaseName(static_cast<RecoveryPhase>(i)));
            out += ": {\"count\": ";
            appendU64(out, snap.count);
            out += ", \"sum\": ";
            appendU64(out, snap.sum);
            out += ", \"p50\": ";
            appendU64(out, snap.p50);
            out += ", \"p95\": ";
            appendU64(out, snap.p95);
            out += "}";
        }
        out += "\n    }}";
    }
    out += first ? "}" : "\n  }";

    // Span-profiler sections (schema v4). Always present; a null
    // profiler (or a metrics-off run) just renders them empty.
    out += ",\n  \"spans\": {\"recorded\": ";
    appendU64(out, spans != nullptr ? spans->spansRecorded() : 0);
    out += ", \"ring_stats\": [";
    if (spans != nullptr) {
        auto srings = spans->ringStats();
        for (std::size_t i = 0; i < srings.size(); ++i) {
            const SpanRingStats &rs = srings[i];
            out += i == 0 ? "\n" : ",\n";
            out += "    {\"ring\": ";
            appendU64(out, rs.ring);
            out += ", \"capacity\": ";
            appendU64(out, rs.capacity);
            out += ", \"recorded\": ";
            appendU64(out, rs.recorded);
            out += ", \"dropped\": ";
            appendU64(out, rs.dropped);
            out += "}";
        }
        if (!srings.empty())
            out += "\n  ";
    }
    out += "], \"engines\": {";
    first = true;
    if (spans != nullptr) {
        for (const EngineSpanSummary &es : spans->engineSummaries()) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    ";
            appendJsonString(out,
                             es.engine != nullptr ? es.engine : "?");
            out += ": {\"spans\": ";
            appendU64(out, es.spans);
            out += ", \"commits\": ";
            appendU64(out, es.commits);
            out += ", \"aborts\": ";
            appendU64(out, es.aborts);
            out += ",\n      \"wall_ns\": ";
            appendHistJson(out, es.wallNs);
            out += ",\n      \"phase_ns\": ";
            appendPhaseNsJson(out, es.phaseNs, "        ");
            out += ",\n      \"latch_waits\": ";
            appendU64(out, es.latchWaits);
            out += ", \"latch_wait_ns\": ";
            appendU64(out, es.latchWaitNs);
            out += ", \"latch_conflicts\": ";
            appendU64(out, es.latchConflicts);
            out += ",\n      \"pcas_attempts\": ";
            appendU64(out, es.pcasAttempts);
            out += ", \"pcas_retries\": ";
            appendU64(out, es.pcasRetries);
            out += ", \"pcas_helps\": ";
            appendU64(out, es.pcasHelps);
            out += ",\n      \"flushes\": ";
            appendU64(out, es.flushes);
            out += ", \"fences\": ";
            appendU64(out, es.fences);
            out += ", \"model_ns\": ";
            appendU64(out, es.modelNs);
            out += ", \"wal_appends\": ";
            appendU64(out, es.walAppends);
            out += ",\n      \"splits\": ";
            appendU64(out, es.splits);
            out += ", \"defrags\": ";
            appendU64(out, es.defrags);
            out += ", \"page_accesses\": ";
            appendU64(out, es.pageAccesses);
            out += ", \"page_dirty\": ";
            appendU64(out, es.pageDirty);
            out += "}";
        }
    }
    out += first ? "}}" : "\n  }}";

    out += ",\n  \"latch_contention\": {\"total_waits\": ";
    appendU64(out, spans != nullptr ? spans->totalLatchWaits() : 0);
    out += ", \"total_conflicts\": ";
    appendU64(out,
              spans != nullptr ? spans->totalLatchConflicts() : 0);
    out += ", \"contended_slots\": ";
    appendU64(out, spans != nullptr ? spans->contendedSlotCount() : 0);
    out += ", \"slots\": [";
    if (spans != nullptr) {
        auto slots = spans->latchContention();
        for (std::size_t i = 0; i < slots.size(); ++i) {
            const LatchSlotSummary &ls = slots[i];
            out += i == 0 ? "\n" : ",\n";
            out += "    {\"slot\": ";
            appendU64(out, ls.slot);
            out += ", \"waits\": ";
            appendU64(out, ls.waits);
            out += ", \"conflicts\": ";
            appendU64(out, ls.conflicts);
            out += ", \"wait_ns\": ";
            appendU64(out, ls.waitNs);
            out += ", \"hist\": ";
            appendHistJson(out, ls.hist);
            out += "}";
        }
        if (!slots.empty())
            out += "\n  ";
    }
    out += "]}";

    out += ",\n  \"page_heat\": {\"tracked\": ";
    PageHeatSnapshot heat;
    if (spans != nullptr)
        heat = spans->pageHeat();
    appendU64(out, heat.tracked);
    out += ", \"overflow\": ";
    appendU64(out, heat.overflow);
    out += ", \"decays\": ";
    appendU64(out, heat.decays);
    out += ", \"top\": [";
    for (std::size_t i = 0; i < heat.top.size(); ++i) {
        const PageHeatEntry &pe = heat.top[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"page\": ";
        appendU64(out, pe.page);
        out += ", \"accesses\": ";
        appendU64(out, pe.accesses);
        out += ", \"dirty\": ";
        appendU64(out, pe.dirty);
        out += ", \"conflicts\": ";
        appendU64(out, pe.conflicts);
        out += "}";
    }
    if (!heat.top.empty())
        out += "\n  ";
    out += "]}";

    out += ",\n  \"outliers\": [";
    if (spans != nullptr) {
        auto outl = spans->outliers();
        for (std::size_t i = 0; i < outl.size(); ++i) {
            const TxSpan &sp = outl[i].span;
            out += i == 0 ? "\n" : ",\n";
            out += "    {\"engine\": ";
            appendJsonString(out,
                             sp.engine != nullptr ? sp.engine : "?");
            out += ", \"tx_id\": ";
            appendU64(out, sp.txId);
            out += ", \"committed\": ";
            out += sp.committed ? "true" : "false";
            out += ", \"commit_path\": ";
            if (sp.commitPath != nullptr)
                appendJsonString(out, sp.commitPath);
            else
                out += "null";
            out += ",\n     \"wall_ns\": ";
            appendU64(out, sp.wallNs);
            out += ", \"model_ns\": ";
            appendU64(out, sp.modelNs);
            out += ", \"begin_ns\": ";
            appendU64(out, sp.beginNs);
            out += ",\n     \"phase_ns\": ";
            appendPhaseNsJson(out, sp.phaseNs, "       ");
            out += ",\n     \"latch_waits\": ";
            appendU64(out, sp.latchWaits);
            out += ", \"latch_wait_ns\": ";
            appendU64(out, sp.latchWaitNs);
            out += ", \"latch_conflicts\": ";
            appendU64(out, sp.latchConflicts);
            out += ", \"hot_latch_slot\": ";
            appendU64(out, sp.hotLatchSlot);
            out += ", \"hot_latch_wait_ns\": ";
            appendU64(out, sp.hotLatchWaitNs);
            out += ",\n     \"pcas_attempts\": ";
            appendU64(out, sp.pcasAttempts);
            out += ", \"pcas_retries\": ";
            appendU64(out, sp.pcasRetries);
            out += ", \"pcas_helps\": ";
            appendU64(out, sp.pcasHelps);
            out += ", \"flushes\": ";
            appendU64(out, sp.flushes);
            out += ", \"fences\": ";
            appendU64(out, sp.fences);
            out += ", \"wal_appends\": ";
            appendU64(out, sp.walAppends);
            out += ",\n     \"splits\": ";
            appendU64(out, sp.splits);
            out += ", \"defrags\": ";
            appendU64(out, sp.defrags);
            out += ", \"page_accesses\": ";
            appendU64(out, sp.pageAccesses);
            out += ", \"page_dirty\": ";
            appendU64(out, sp.pageDirty);
            out += ", \"seq_lo\": ";
            appendU64(out, sp.seqLo);
            out += ", \"seq_hi\": ";
            appendU64(out, sp.seqHi);
            out += ",\n     \"events\": [";
            const auto &evs = outl[i].events;
            for (std::size_t j = 0; j < evs.size(); ++j) {
                out += j == 0 ? "\n      " : ",\n      ";
                appendTraceEventJson(out, evs[j]);
            }
            if (!evs.empty())
                out += "\n     ";
            out += "]}";
        }
        if (!outl.empty())
            out += "\n  ";
    }
    out += "]";

    out += ",\n  \"trace\": {\"recorded\": ";
    appendU64(out, tracer.totalRecorded());
    out += ", \"dropped\": ";
    appendU64(out, tracer.totalDropped());
    out += ", \"rings\": ";
    appendU64(out, tracer.ringCount());
    out += ", \"ring_stats\": [";
    {
        auto rings = tracer.ringStats();
        for (std::size_t i = 0; i < rings.size(); ++i) {
            const TraceRingStats &rs = rings[i];
            out += i == 0 ? "\n" : ",\n";
            out += "    {\"ring\": ";
            appendU64(out, rs.ring);
            out += ", \"capacity\": ";
            appendU64(out, rs.capacity);
            out += ", \"recorded\": ";
            appendU64(out, rs.recorded);
            out += ", \"dropped\": ";
            appendU64(out, rs.dropped);
            out += ", \"retained\": ";
            appendU64(out, rs.retained);
            out += "}";
        }
        if (!rings.empty())
            out += "\n  ";
    }
    out += "], \"events\": [";
    if (maxTraceEvents > 0) {
        auto events = tracer.collect();
        std::size_t start = events.size() > maxTraceEvents
            ? events.size() - maxTraceEvents : 0;
        for (std::size_t i = start; i < events.size(); ++i) {
            out += (i == start) ? "\n    " : ",\n    ";
            appendTraceEventJson(out, events[i]);
        }
        if (start < events.size())
            out += "\n  ";
    }
    out += "]}\n";
    out += "}\n";
    return out;
}

std::string
exportPrometheus(const std::string &benchName,
                 const MetricsRegistry &registry,
                 const PhaseLedger &ledger,
                 const RecoveryLedger &recovery, const Tracer &tracer,
                 const SpanProfiler *spans)
{
    std::string out;
    out += "# fasp metrics export, bench=\"" + promLabel(benchName)
        + "\"\n";

    for (const auto &[name, value] : registry.counters()) {
        std::string n = promName(name);
        out += "# TYPE " + n + " counter\n";
        out += n + " " + std::to_string(value) + "\n";
    }

    for (const auto &[name, value] : registry.gauges()) {
        std::string n = promName(name);
        out += "# TYPE " + n + " gauge\n";
        out += n + " " + std::to_string(value) + "\n";
    }

    for (const auto &[name, snap] : registry.histograms()) {
        std::string n = promName(name);
        out += "# TYPE " + n + " summary\n";
        out += n + "{quantile=\"0.5\"} " + std::to_string(snap.p50)
            + "\n";
        out += n + "{quantile=\"0.95\"} " + std::to_string(snap.p95)
            + "\n";
        out += n + "{quantile=\"0.99\"} " + std::to_string(snap.p99)
            + "\n";
        out += n + "_sum " + std::to_string(snap.sum) + "\n";
        out += n + "_count " + std::to_string(snap.count) + "\n";
        out += n + "_max " + std::to_string(snap.max) + "\n";
    }

    auto emitCell = [&out](const std::string &prefix,
                           const std::string &labels,
                           const PmCellSnapshot &cell) {
        out += prefix + "_stores{" + labels + "} "
            + std::to_string(cell.stores) + "\n";
        out += prefix + "_store_bytes{" + labels + "} "
            + std::to_string(cell.storeBytes) + "\n";
        out += prefix + "_flushes{" + labels + "} "
            + std::to_string(cell.flushes) + "\n";
        out += prefix + "_fences{" + labels + "} "
            + std::to_string(cell.fences) + "\n";
        out += prefix + "_model_ns{" + labels + "} "
            + std::to_string(cell.modelNs) + "\n";
    };

    out += "# TYPE fasp_pm_phase_flushes counter\n";
    for (const auto &entry : ledger.entries()) {
        for (std::size_t i = 0; i < PmAttribution::kNumPhases; ++i) {
            const PmCellSnapshot &cell = entry.phases[i];
            if (cell.empty())
                continue;
            std::string labels = "engine=\"" + promLabel(entry.engine)
                + "\",phase=\""
                + promLabel(pm::componentName(
                      static_cast<pm::Component>(i)))
                + "\"";
            emitCell("fasp_pm_phase", labels, cell);
        }
        for (const auto &[site, cell] : entry.sites) {
            std::string labels = "engine=\"" + promLabel(entry.engine)
                + "\",site=\"" + promLabel(site) + "\"";
            emitCell("fasp_pm_site", labels, cell);
        }
    }

    auto rentries = recovery.entries();
    if (!rentries.empty()) {
        out += "# TYPE fasp_recovery_runs counter\n";
        for (const auto &rentry : rentries) {
            std::string eng =
                "engine=\"" + promLabel(rentry.engine) + "\"";
            out += "fasp_recovery_runs{" + eng + "} "
                + std::to_string(rentry.recoveries) + "\n";
            out += "fasp_recovery_pages_scanned{" + eng + "} "
                + std::to_string(rentry.pagesScanned) + "\n";
            out += "fasp_recovery_records_replayed{" + eng + "} "
                + std::to_string(rentry.recordsReplayed) + "\n";
            out += "fasp_recovery_records_discarded{" + eng + "} "
                + std::to_string(rentry.recordsDiscarded) + "\n";
            out += "fasp_recovery_torn_records{" + eng + "} "
                + std::to_string(rentry.tornRecords) + "\n";
            for (std::size_t i = 0; i < kNumRecoveryPhases; ++i) {
                const HistogramSnapshot &snap = rentry.phases[i];
                std::string labels = eng + ",phase=\""
                    + promLabel(recoveryPhaseName(
                          static_cast<RecoveryPhase>(i)))
                    + "\"";
                out += "fasp_recovery_phase_ns_sum{" + labels + "} "
                    + std::to_string(snap.sum) + "\n";
                out += "fasp_recovery_phase_ns_count{" + labels + "} "
                    + std::to_string(snap.count) + "\n";
                out += "fasp_recovery_phase_ns{" + labels
                    + ",quantile=\"0.5\"} " + std::to_string(snap.p50)
                    + "\n";
                out += "fasp_recovery_phase_ns{" + labels
                    + ",quantile=\"0.95\"} " + std::to_string(snap.p95)
                    + "\n";
            }
        }
    }

    if (spans != nullptr) {
        // Span profiler: bounded series only — per-engine summaries
        // (≤ 5 engines), the top contended latch slots (≤ 16), and
        // the heat sketch's top pages (≤ 16). Unbounded data (full
        // slot table, outlier timelines) stays JSON-only.
        auto summaries = spans->engineSummaries();
        if (!summaries.empty()) {
            out += "# TYPE fasp_span_total counter\n";
            for (const EngineSpanSummary &es : summaries) {
                std::string eng = "engine=\""
                    + promLabel(es.engine != nullptr ? es.engine : "?")
                    + "\"";
                out += "fasp_span_total{" + eng + "} "
                    + std::to_string(es.spans) + "\n";
                out += "fasp_span_commits{" + eng + "} "
                    + std::to_string(es.commits) + "\n";
                out += "fasp_span_aborts{" + eng + "} "
                    + std::to_string(es.aborts) + "\n";
                out += "fasp_span_wall_ns{" + eng
                    + ",quantile=\"0.5\"} "
                    + std::to_string(es.wallNs.p50) + "\n";
                out += "fasp_span_wall_ns{" + eng
                    + ",quantile=\"0.95\"} "
                    + std::to_string(es.wallNs.p95) + "\n";
                out += "fasp_span_wall_ns{" + eng
                    + ",quantile=\"0.99\"} "
                    + std::to_string(es.wallNs.p99) + "\n";
                out += "fasp_span_wall_ns_sum{" + eng + "} "
                    + std::to_string(es.wallNs.sum) + "\n";
                out += "fasp_span_wall_ns_count{" + eng + "} "
                    + std::to_string(es.wallNs.count) + "\n";
                out += "fasp_span_wall_ns_max{" + eng + "} "
                    + std::to_string(es.wallNs.max) + "\n";
                for (std::size_t i = 0; i < kSpanComponents; ++i) {
                    if (es.phaseNs[i] == 0)
                        continue;
                    out += "fasp_span_phase_ns{" + eng + ",phase=\""
                        + promLabel(pm::componentName(
                              static_cast<pm::Component>(i)))
                        + "\"} " + std::to_string(es.phaseNs[i])
                        + "\n";
                }
                out += "fasp_span_latch_wait_ns{" + eng + "} "
                    + std::to_string(es.latchWaitNs) + "\n";
                out += "fasp_span_pcas_retries{" + eng + "} "
                    + std::to_string(es.pcasRetries) + "\n";
                out += "fasp_span_wal_appends{" + eng + "} "
                    + std::to_string(es.walAppends) + "\n";
                out += "fasp_span_splits{" + eng + "} "
                    + std::to_string(es.splits) + "\n";
                out += "fasp_span_defrags{" + eng + "} "
                    + std::to_string(es.defrags) + "\n";
            }
        }
        out += "# TYPE fasp_latch_wait_total counter\n";
        out += "fasp_latch_wait_total "
            + std::to_string(spans->totalLatchWaits()) + "\n";
        out += "fasp_latch_conflict_total "
            + std::to_string(spans->totalLatchConflicts()) + "\n";
        out += "fasp_latch_contended_slots "
            + std::to_string(spans->contendedSlotCount()) + "\n";
        for (const LatchSlotSummary &ls : spans->latchContention()) {
            std::string labels =
                "slot=\"" + std::to_string(ls.slot) + "\"";
            out += "fasp_latch_slot_waits{" + labels + "} "
                + std::to_string(ls.waits) + "\n";
            out += "fasp_latch_slot_conflicts{" + labels + "} "
                + std::to_string(ls.conflicts) + "\n";
            out += "fasp_latch_slot_wait_ns_sum{" + labels + "} "
                + std::to_string(ls.waitNs) + "\n";
            out += "fasp_latch_slot_wait_ns{" + labels
                + ",quantile=\"0.95\"} "
                + std::to_string(ls.hist.p95) + "\n";
            out += "fasp_latch_slot_wait_ns{" + labels
                + ",quantile=\"0.99\"} "
                + std::to_string(ls.hist.p99) + "\n";
        }
        PageHeatSnapshot heat = spans->pageHeat(16);
        out += "# TYPE fasp_page_hot_accesses counter\n";
        out += "fasp_page_hot_tracked "
            + std::to_string(heat.tracked) + "\n";
        out += "fasp_page_hot_overflow "
            + std::to_string(heat.overflow) + "\n";
        out += "fasp_page_hot_decays "
            + std::to_string(heat.decays) + "\n";
        for (const PageHeatEntry &pe : heat.top) {
            std::string labels =
                "page=\"" + std::to_string(pe.page) + "\"";
            out += "fasp_page_hot_accesses{" + labels + "} "
                + std::to_string(pe.accesses) + "\n";
            out += "fasp_page_hot_dirty{" + labels + "} "
                + std::to_string(pe.dirty) + "\n";
            out += "fasp_page_hot_conflicts{" + labels + "} "
                + std::to_string(pe.conflicts) + "\n";
        }
    }

    out += "# TYPE fasp_trace_recorded counter\n";
    out += "fasp_trace_recorded " +
        std::to_string(tracer.totalRecorded()) + "\n";
    out += "fasp_trace_dropped " +
        std::to_string(tracer.totalDropped()) + "\n";
    out += "fasp_trace_rings " + std::to_string(tracer.ringCount())
        + "\n";
    for (const TraceRingStats &rs : tracer.ringStats()) {
        std::string labels =
            "ring=\"" + std::to_string(rs.ring) + "\"";
        out += "fasp_trace_ring_capacity{" + labels + "} "
            + std::to_string(rs.capacity) + "\n";
        out += "fasp_trace_ring_recorded{" + labels + "} "
            + std::to_string(rs.recorded) + "\n";
        out += "fasp_trace_ring_dropped{" + labels + "} "
            + std::to_string(rs.dropped) + "\n";
        out += "fasp_trace_ring_retained{" + labels + "} "
            + std::to_string(rs.retained) + "\n";
    }
    return out;
}

std::string
exportChromeTrace(const Tracer &tracer)
{
    // chrome://tracing "complete" (ph:"X") events. The trace rings do
    // not record wall timestamps, so events are laid out end-to-end
    // along the global sequence order: each event starts where the
    // previous one on its track ended. Durations are real (wall ns
    // when timed, else modelled PM ns, else 1us so the slice is
    // visible).
    std::string out = "{\"traceEvents\": [";
    auto events = tracer.collect();
    std::uint64_t cursorUs = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &ev = events[i];
        std::uint64_t durNs =
            ev.durationNs != 0 ? ev.durationNs : ev.modelNs;
        std::uint64_t durUs = durNs / 1000;
        if (durUs == 0)
            durUs = 1;
        out += i == 0 ? "\n" : ",\n";
        out += "  {\"name\": ";
        appendJsonString(out, traceOpName(ev.op));
        out += ", \"cat\": ";
        appendJsonString(out, ev.engine != nullptr ? ev.engine
                                                   : "fasp");
        out += ", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": ";
        appendU64(out, cursorUs);
        out += ", \"dur\": ";
        appendU64(out, durUs);
        out += ", \"args\": {\"seq\": ";
        appendU64(out, ev.seq);
        out += ", \"page\": ";
        appendU64(out, ev.pageId);
        out += ", \"model_ns\": ";
        appendU64(out, ev.modelNs);
        out += ", \"duration_ns\": ";
        appendU64(out, ev.durationNs);
        if (ev.detail != nullptr) {
            out += ", \"detail\": ";
            appendJsonString(out, ev.detail);
        }
        out += "}}";
        cursorUs += durUs;
    }
    if (!events.empty())
        out += "\n";
    out += "]}\n";
    return out;
}

bool
writeMetricsFile(const std::string &path, const std::string &benchName)
{
    std::string body;
    bool prom = path.size() >= 5 &&
        path.compare(path.size() - 5, 5, ".prom") == 0;
    if (prom) {
        body = exportPrometheus(benchName, MetricsRegistry::global(),
                                PhaseLedger::global(),
                                RecoveryLedger::global(),
                                Tracer::global(),
                                &SpanProfiler::global());
    } else {
        body = exportJson(benchName, MetricsRegistry::global(),
                          PhaseLedger::global(),
                          RecoveryLedger::global(), Tracer::global(),
                          /*maxTraceEvents=*/256,
                          &SpanProfiler::global());
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "metrics: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << body;
    out.close();
    return out.good();
}

bool
writeTraceFile(const std::string &path)
{
    std::string body = exportChromeTrace(Tracer::global());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "trace: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << body;
    out.close();
    return out.good();
}

} // namespace fasp::obs
