// fasp-lint: allow-file(raw-std-sync) -- lock-free PM flight recorder;
// must stay wait-free on the store path, invisible to fasp-mc by design.
/**
 * @file
 * FlightRecorder: a persistent, CRC32-framed ring of fixed-size event
 * records living inside the PM image (its own superblock region), so
 * the last moments before a crash can be reconstructed from the
 * durable image alone (DESIGN.md §12).
 *
 * Unlike the DRAM TraceRing (obs/trace.h), every record here goes
 * through the same PmDevice store/flush/fence primitives as real data:
 * the recorder is itself failure-atomic under TornLines and fully
 * visible to the PersistencyChecker.
 *
 * Region layout (all offsets relative to the region start):
 *   +0   header (one cache line):
 *          u64 magic  "FASPFREC"
 *          u32 version (1)
 *          u32 recordBytes (64)
 *          u32 capacity (power of two)
 *          u32 crc32c of the previous 20 bytes
 *   +64  capacity * 64-byte record slots
 *
 * Record framing (64 bytes = one cache line, so a slot never straddles
 * persistence-line boundaries):
 *   u64 seq       monotonic, 1-based; 0 marks a never-written slot
 *   u8  type      FlightEventType
 *   u8  engine    core::EngineKind + 1 (0 = unknown)
 *   u16 flags
 *   u32 pageId
 *   u64 txid
 *   u64 aux       event-specific payload (counts, phase ns, ...)
 *   u64 modelNs   modelled PM ns charged to the thread so far
 *   20B reserved  zero
 *   u32 crc32c    over the first 60 bytes
 *
 * Record seq determines the slot: (seq - 1) % capacity. There is no
 * durable head pointer to keep failure-atomic — attach() rebuilds the
 * cursor by scanning for the highest CRC-valid seq, and a record torn
 * mid-append is detected by its CRC and skipped (never misparsed).
 *
 * Appends are wait-free across threads (one fetch_add on the sequence
 * counter; distinct slots are distinct cache lines). Each append is
 * store + flushRange + sfence, so by the time append() returns the
 * record is durable and a surrounding PersistencyChecker transaction
 * write set sees the line FENCED well before its commit point.
 *
 * The recorder-off fast path is a single relaxed atomic load and a
 * branch: see enabled().
 */

#ifndef FASP_OBS_FLIGHT_RECORDER_H
#define FASP_OBS_FLIGHT_RECORDER_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::obs {

/** What a flight-recorder record describes. */
enum class FlightEventType : std::uint8_t {
    Invalid = 0,
    OpBegin = 1,       //!< transaction began
    CommitPoint = 2,   //!< transaction passed its durable commit point
    Abort = 3,         //!< transaction rolled back
    Fallback = 4,      //!< FAST in-place commit fell back to logging
    PageSplit = 5,     //!< page allocated for a split / tree growth
    Defrag = 6,        //!< copy-on-write page defragmentation
    RecoveryBegin = 7, //!< crash recovery started
    RecoveryEnd = 8,   //!< crash recovery finished
};

/** Printable name ("op-begin", "commit-point", ...). */
const char *flightEventTypeName(FlightEventType type);

/** One decoded flight-recorder record. */
struct FlightRecord
{
    std::uint64_t seq = 0;
    FlightEventType type = FlightEventType::Invalid;
    std::uint8_t engine = 0; //!< core::EngineKind + 1, 0 = unknown
    std::uint16_t flags = 0;
    PageId pageId = 0;
    std::uint64_t txid = 0;
    std::uint64_t aux = 0;
    std::uint64_t modelNs = 0;
};

/** Result of an attach() scan. */
struct FlightAttachStats
{
    std::uint64_t validRecords = 0; //!< CRC-valid slots found
    std::uint64_t tornRecords = 0;  //!< non-empty slots with bad CRC
    std::uint64_t maxSeq = 0;       //!< highest valid sequence number
};

/**
 * Persistent flight recorder over one device region. One instance per
 * open engine; construction is cheap, attach()/formatRegion() do the
 * region I/O.
 */
class FlightRecorder
{
  public:
    static constexpr std::uint64_t kMagic = 0x4641535046524543ull;
    static constexpr std::uint32_t kFormatVersion = 1;
    static constexpr std::size_t kHeaderBytes = 64;
    static constexpr std::size_t kRecordBytes = 64;

    /**
     * Global recorder gate, analogous to obs::enabled() but
     * independent of it: crash tests want the recorder without the
     * metrics plumbing and benches want metrics without paying for
     * persistent recording. Quiescent-only toggle.
     */
    static bool enabled()
    {
        return gEnabled.load(std::memory_order_relaxed);
    }

    static void setEnabled(bool on)
    {
        gEnabled.store(on, std::memory_order_relaxed);
    }

    FlightRecorder(pm::PmDevice &device, PmOffset off, std::uint64_t len);

    /** Record capacity the region supports (0 = region too small). */
    std::uint32_t capacity() const { return capacity_; }

    /**
     * Initialize the region: write the header and zero every slot
     * (flushed + fenced). Called by Pager::format for every fresh
     * image so any later open — or an offline forensics pass — finds a
     * decodable ring.
     */
    static void formatRegion(pm::PmDevice &device, PmOffset off,
                             std::uint64_t len);

    /**
     * Attach to a (possibly crashed) image: validate the header, scan
     * every slot for the highest CRC-valid sequence number, zero any
     * torn slots (the recorder's torn-record repair), and resume the
     * sequence counter past the survivors.
     */
    Result<FlightAttachStats> attach();

    /** Append one durable record (store + flush + fence). */
    void append(FlightEventType type, std::uint8_t engine,
                std::uint64_t txid, PageId pageId, std::uint64_t aux);

    /** Records appended through this instance (tests). */
    std::uint64_t appended() const
    {
        return nextSeq_.load(std::memory_order_relaxed) - firstSeq_;
    }

    // --- Offline decode helpers (shared with tools/fasp-forensics) ---

    /** Decode one 64-byte slot. Returns false for a never-written
     *  (all-zero) slot; *torn is set when the slot is non-empty but
     *  fails its CRC (the record must then be ignored). */
    static bool decodeSlot(const std::uint8_t *slot, FlightRecord &out,
                           bool *torn);

    /** Decode a raw region image into seq-ordered records.
     *  @p tornSlots (optional) receives the torn slot indices. */
    static std::vector<FlightRecord> decodeRegion(
        const std::uint8_t *region, std::uint64_t len,
        std::vector<std::uint32_t> *tornSlots = nullptr);

  private:
    static std::atomic<bool> gEnabled;

    PmOffset slotOffset(std::uint64_t seq) const
    {
        return off_ + kHeaderBytes +
               ((seq - 1) & (capacity_ - 1)) * kRecordBytes;
    }

    static void encodeRecord(std::uint8_t *buf, const FlightRecord &rec);

    pm::PmDevice &device_;
    PmOffset off_;
    std::uint64_t len_;
    std::uint32_t capacity_ = 0;
    std::uint64_t firstSeq_ = 1;
    std::atomic<std::uint64_t> nextSeq_{1};
};

} // namespace fasp::obs

#endif // FASP_OBS_FLIGHT_RECORDER_H
