// fasp-lint: allow-file(raw-std-sync) -- the span ring and the heat
// sketch are lock-free recording structures on the engines' hot paths;
// like obs/trace.h they record scheduling, never participate in it.
/**
 * @file
 * Per-transaction span profiler (DESIGN.md §17).
 *
 * Every transaction — on all five engines — records one fixed-size
 * TxSpan: begin/commit wall ns partitioned into pm::Component
 * sub-phases (settled by a PhaseScope hook), plus latch-acquire wait
 * per LatchTable slot, PCAS attempt/retry/help deltas, clflush/sfence
 * counts, modelled PM ns, WAL appends, and split/defrag counts. Spans
 * land in a per-thread lock-free span ring and fold into:
 *
 *  - a contention profiler: per-latch-slot wait histograms plus
 *    aggregate wait/conflict counters (which latch is hot, and how
 *    long acquirers spin on it);
 *  - a page-hotness heatmap: a top-K decayed sketch of per-page
 *    access/dirty/conflict counts, O(K) memory however many pages the
 *    database grows;
 *  - a p99 outlier capture: a small reservoir of the slowest spans per
 *    engine, each carrying its full sub-phase timeline and the slice
 *    of the recording thread's TraceRing events that fell inside the
 *    span's sequence window.
 *
 * Everything exports through obs/export.cc (JSON sections `spans`,
 * `latch_contention`, `page_heat`, `outliers`; Prometheus
 * `fasp_span_*` / `fasp_latch_*` / `fasp_page_hot_*`) and renders via
 * tools/fasp-profile.
 *
 * Off cost: every hot-path entry point starts with the same relaxed
 * obs::enabled() load the counters use and returns immediately when
 * metrics are off; the profiler, its rings, and the pm-layer phase
 * hook are only ever materialised after the first enabled spanBegin().
 *
 * Thread safety: the span free functions touch only thread-local state
 * plus lock-free/atomic profiler structures; recording is safe from
 * any number of threads. Snapshot accessors are safe concurrently with
 * recording (they read atomics), except collectRecentSpans()/reset(),
 * which are quiescent-only like Tracer::reset().
 */

#ifndef FASP_OBS_SPAN_H
#define FASP_OBS_SPAN_H

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pm/phase.h"

namespace fasp::obs {

/** Sub-phase buckets per span: one per pm::Component (index 0 = the
 *  untagged remainder, so the buckets always sum to the wall time). */
inline constexpr std::size_t kSpanComponents =
    static_cast<std::size_t>(pm::Component::NumComponents);

/** Latch slots the contention profiler tracks; must cover
 *  LatchTable's stripe count (asserted where the hook is wired). */
inline constexpr std::size_t kSpanLatchSlots = 1024;

/** Cells in the page-hotness sketch (the K of top-K). */
inline constexpr std::size_t kPageHeatSlots = 128;

/** Slowest spans kept per engine by the outlier reservoir. */
inline constexpr std::size_t kOutliersPerEngine = 8;

/** Trace events carried by one outlier (the tail of the window — the
 *  commit path is where outliers are made). */
inline constexpr std::size_t kOutlierEvents = 16;

/** Spans retained per thread ring before wraparound. */
inline constexpr std::size_t kSpanRingCapacity = 256;

/** Engine-code slots (recorderEngineCode() is EngineKind + 1 ≤ 5). */
inline constexpr std::size_t kSpanEngineSlots = 8;

/**
 * One profiled transaction. Fixed size; label pointers are string
 * literals (engine names, commit-path names), like TraceEvent.
 */
struct TxSpan
{
    std::uint64_t txId = 0;
    const char *engine = nullptr;   //!< engine name literal
    std::uint8_t engineCode = 0;    //!< recorderEngineCode(), 1-based
    bool committed = false;
    const char *commitPath = nullptr; //!< "in-place"/"logged"/... or null

    std::uint64_t beginNs = 0;      //!< steady-clock ns at begin
    std::uint64_t wallNs = 0;       //!< begin → end wall ns
    std::uint64_t modelNs = 0;      //!< modelled PM ns charged in-span

    /** Wall ns per pm::Component, settled at every PhaseScope
     *  boundary; sums to wallNs (index 0 holds untagged time). */
    std::array<std::uint64_t, kSpanComponents> phaseNs{};

    std::uint32_t latchWaits = 0;     //!< acquires that spun or failed
    std::uint32_t latchConflicts = 0; //!< acquires that failed outright
    std::uint64_t latchWaitNs = 0;    //!< total ns spent waiting
    std::uint32_t hotLatchSlot = 0;   //!< slot of the longest wait
    std::uint64_t hotLatchWaitNs = 0; //!< that longest wait, ns

    std::uint32_t pcasAttempts = 0;
    std::uint32_t pcasRetries = 0;
    std::uint32_t pcasHelps = 0;

    std::uint32_t flushes = 0;  //!< clflushes issued in-span
    std::uint32_t fences = 0;   //!< sfences issued in-span
    std::uint32_t walAppends = 0; //!< LogFlush scopes entered in-span

    std::uint32_t splits = 0;
    std::uint32_t defrags = 0;
    std::uint32_t pageAccesses = 0;
    std::uint32_t pageDirty = 0;

    std::uint64_t seqLo = 0; //!< Tracer seq window [seqLo, seqHi)
    std::uint64_t seqHi = 0;
};

// --- Hot-path recording API -------------------------------------------

/** Open a span for the calling thread's transaction. No-op (one
 *  relaxed load) unless obs::enabled(). */
void spanBegin(const char *engine, std::uint8_t engineCode,
               std::uint64_t txId);

/** Close the calling thread's span (if one is open): settle the final
 *  sub-phase, compute the device/PCAS deltas, push the span into the
 *  thread ring, fold the aggregates, and consider outlier capture. */
void spanEnd(bool committed, const char *commitPath);

/** A latch acquire on @p slot spun (@p waitNs > 0) or failed
 *  (@p conflict). Feeds the per-slot wait histogram and, if a span is
 *  open, its latch fields. Called by LatchTable only when enabled. */
void spanLatchWait(std::size_t slot, std::uint64_t waitNs,
                   bool conflict);

/** A page was handed to the transaction (@p dirty: for writing).
 *  Feeds the heat sketch and the open span's counters. */
void spanPageAccess(std::uint64_t pageId, bool dirty);

/** A latch conflict aborted work on @p pageId (page-level conflict
 *  attribution for the heat sketch; slot-level lives in
 *  spanLatchWait). */
void spanPageConflict(std::uint64_t pageId);

/** The open span triggered a leaf/page split (new page allocation). */
void spanSplit();

/** The open span triggered an on-demand page defragmentation. */
void spanDefrag();

// --- Snapshot types (export side) -------------------------------------

/** Aggregate of every span recorded for one engine. */
struct EngineSpanSummary
{
    const char *engine = nullptr;
    std::uint64_t spans = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    HistogramSnapshot wallNs;
    std::array<std::uint64_t, kSpanComponents> phaseNs{};
    std::uint64_t latchWaits = 0;
    std::uint64_t latchWaitNs = 0;
    std::uint64_t latchConflicts = 0;
    std::uint64_t pcasAttempts = 0;
    std::uint64_t pcasRetries = 0;
    std::uint64_t pcasHelps = 0;
    std::uint64_t flushes = 0;
    std::uint64_t fences = 0;
    std::uint64_t modelNs = 0;
    std::uint64_t walAppends = 0;
    std::uint64_t splits = 0;
    std::uint64_t defrags = 0;
    std::uint64_t pageAccesses = 0;
    std::uint64_t pageDirty = 0;
};

/** Wait profile of one contended latch slot. */
struct LatchSlotSummary
{
    std::size_t slot = 0;
    std::uint64_t waits = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t waitNs = 0;
    HistogramSnapshot hist; //!< wait-ns distribution
};

/** One page of the hotness sketch. */
struct PageHeatEntry
{
    std::uint64_t page = 0;
    std::uint64_t accesses = 0;
    std::uint64_t dirty = 0;
    std::uint64_t conflicts = 0;
};

/** Heat-sketch snapshot: the top pages plus loss accounting. */
struct PageHeatSnapshot
{
    std::vector<PageHeatEntry> top; //!< accesses desc, page asc on tie
    std::uint64_t tracked = 0;      //!< live cells
    std::uint64_t overflow = 0;     //!< accesses the full sketch missed
    std::uint64_t decays = 0;       //!< halving passes applied
};

/** One captured outlier: the span plus its trace-event slice. */
struct SpanOutlier
{
    TxSpan span;
    std::vector<TraceEvent> events;
};

/** Per-ring occupancy of the span rings (mirrors TraceRingStats). */
struct SpanRingStats
{
    std::size_t ring = 0;
    std::size_t capacity = 0;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
};

// --- The profiler ------------------------------------------------------

/**
 * Process-wide sink for spans; see the file comment. A fresh instance
 * may also be constructed directly (tests, the export demo) and fed
 * through recordSpan()/recordLatchWait()/recordPageAccess() for
 * deterministic fixtures.
 */
class SpanProfiler
{
  public:
    SpanProfiler();

    /** The profiler the hot-path free functions record into. Lazily
     *  constructed (and the pm phase hook lazily installed) on first
     *  use, i.e. never in a metrics-off run. */
    static SpanProfiler &global();

    // -- Recording (hot-path free functions + deterministic fixtures) --

    /** Fold one finished span: thread ring, engine aggregates, outlier
     *  reservoir. @p events is the span's trace slice, consulted only
     *  if the span is an outlier candidate. */
    void recordSpan(const TxSpan &span,
                    const std::vector<TraceEvent> &events);

    /** Lock-free pre-check: could @p span enter its engine's outlier
     *  reservoir? spanEnd() fetches the (comparatively expensive)
     *  trace slice only when this passes; false negatives never occur,
     *  false positives merely cost one ring snapshot. */
    bool outlierCandidate(const TxSpan &span) const;

    /** Fold one latch wait into the contention profile. */
    void recordLatchWait(std::size_t slot, std::uint64_t waitNs,
                         bool conflict);

    /** Fold one page access into the heat sketch. */
    void recordPageAccess(std::uint64_t pageId, bool dirty);

    /** Fold one page-level conflict into the heat sketch. */
    void recordPageConflict(std::uint64_t pageId);

    // -- Snapshots (export side) --

    /** Engines with at least one span, in engine-code order. */
    std::vector<EngineSpanSummary> engineSummaries() const;

    /** Contended slots (waits > 0), by total wait ns descending (slot
     *  ascending on ties), at most @p maxSlots. */
    std::vector<LatchSlotSummary>
    latchContention(std::size_t maxSlots = 16) const;

    std::uint64_t totalLatchWaits() const;
    std::uint64_t totalLatchConflicts() const;
    std::uint64_t contendedSlotCount() const;

    /** Merged wait-ns distribution across every latch slot — the
     *  per-point "latch-p95(ns)" column the bench tables print. */
    HistogramSnapshot latchWaitHist() const;

    /** Zero the contention profile only (slot aggregates and
     *  histograms), leaving spans / heat / outliers untouched, so a
     *  bench can scope the latch columns to one perf point.
     *  Quiescent-only, like reset(). */
    void resetLatchContention();

    /** Top-@p k sketch entries plus loss accounting. */
    PageHeatSnapshot pageHeat(std::size_t k = 32) const;

    /** Every captured outlier, engine-code order then wall ns
     *  descending. Safe concurrently with recording. */
    std::vector<SpanOutlier> outliers() const EXCLUDES(mu_);

    /** Spans recorded across all rings / threads. */
    std::uint64_t spansRecorded() const EXCLUDES(mu_);

    /** Per-ring occupancy, registration order. */
    std::vector<SpanRingStats> ringStats() const EXCLUDES(mu_);

    /** Retained spans of every thread ring, begin-ns order.
     *  Quiescent-only (plain-struct rings; join writers first). */
    std::vector<TxSpan> collectRecentSpans(std::size_t max = 64) const
        EXCLUDES(mu_);

    /** Forget everything. Quiescent-only. */
    void reset() EXCLUDES(mu_);

  private:
    /** Single-writer per-thread ring of finished spans. record() is
     *  the owning thread's; stats reads are atomic; snapshot of the
     *  payload is quiescent-only (spans are plain structs). */
    struct SpanRing
    {
        std::array<TxSpan, kSpanRingCapacity> slots{};
        std::atomic<std::uint64_t> head{0};
        std::atomic<std::uint64_t> dropped{0};

        void record(const TxSpan &span);
    };

    /** Per-engine atomic aggregates. */
    struct EngineAgg
    {
        std::atomic<const char *> engine{nullptr};
        std::atomic<std::uint64_t> spans{0};
        std::atomic<std::uint64_t> commits{0};
        std::atomic<std::uint64_t> aborts{0};
        Histogram wallNs;
        std::array<std::atomic<std::uint64_t>, kSpanComponents>
            phaseNs{};
        std::atomic<std::uint64_t> latchWaits{0};
        std::atomic<std::uint64_t> latchWaitNs{0};
        std::atomic<std::uint64_t> latchConflicts{0};
        std::atomic<std::uint64_t> pcasAttempts{0};
        std::atomic<std::uint64_t> pcasRetries{0};
        std::atomic<std::uint64_t> pcasHelps{0};
        std::atomic<std::uint64_t> flushes{0};
        std::atomic<std::uint64_t> fences{0};
        std::atomic<std::uint64_t> modelNs{0};
        std::atomic<std::uint64_t> walAppends{0};
        std::atomic<std::uint64_t> splits{0};
        std::atomic<std::uint64_t> defrags{0};
        std::atomic<std::uint64_t> pageAccesses{0};
        std::atomic<std::uint64_t> pageDirty{0};
    };

    /** One latch slot's contention profile. */
    struct LatchSlotAgg
    {
        std::atomic<std::uint64_t> waits{0};
        std::atomic<std::uint64_t> conflicts{0};
        std::atomic<std::uint64_t> waitNs{0};
    };

    /** Open-addressed top-K decayed sketch cell. key = pageId + 1
     *  (0 = empty); claimed by CAS, counts relaxed. */
    struct HeatCell
    {
        std::atomic<std::uint64_t> key{0};
        std::atomic<std::uint64_t> accesses{0};
        std::atomic<std::uint64_t> dirty{0};
        std::atomic<std::uint64_t> conflicts{0};
    };

    /** Outlier reservoir of one engine. floor is the smallest kept
     *  wall ns once full (0 before) — the lock-free cheap-reject. */
    struct Reservoir
    {
        std::atomic<std::uint64_t> floor{0};
        std::vector<SpanOutlier> entries; // guarded by mu_
    };

    SpanRing &threadRing() EXCLUDES(mu_);
    HeatCell *findHeatCell(std::uint64_t pageId);
    void maybeDecayHeat();
    void considerOutlier(const TxSpan &span,
                         const std::vector<TraceEvent> &events)
        EXCLUDES(mu_);

    const std::uint64_t id_; //!< distinguishes profilers in memos
    std::array<EngineAgg, kSpanEngineSlots> engines_;
    std::unique_ptr<LatchSlotAgg[]> latchAggs_;   //!< kSpanLatchSlots
    std::unique_ptr<Histogram[]> latchHists_;     //!< kSpanLatchSlots
    std::array<HeatCell, kPageHeatSlots> heat_;
    std::atomic<std::uint64_t> heatTicks_{0};
    std::atomic<std::uint64_t> heatOverflow_{0};
    std::atomic<std::uint64_t> heatDecays_{0};

    mutable Mutex mu_;
    std::deque<std::unique_ptr<SpanRing>> rings_ GUARDED_BY(mu_);
    std::array<Reservoir, kSpanEngineSlots> reservoirs_;
};

} // namespace fasp::obs

#endif // FASP_OBS_SPAN_H
