// fasp-lint: allow-file(raw-std-sync) -- lock-free metrics registry:
// monotonic counters only, never synchronization of engine state.
/**
 * @file
 * Observability metrics: named counters, gauges, and latency
 * histograms, plus the PM-event attribution that reproduces the
 * paper's Fig-8 per-phase flush/fence/cycle breakdown at runtime
 * (DESIGN.md §11).
 *
 * Cost model: everything here is relaxed atomics; the wiring in the
 * engines additionally guards every record call with obs::enabled()
 * (one relaxed atomic-bool load), so a build that never passes
 * --metrics pays a predicted-not-taken branch per instrumented
 * operation — the ≤2 % disabled-overhead budget of ISSUE 4.
 *
 * Thread safety: Counter / Gauge / Histogram / PmAttribution are safe
 * to record from any number of threads. MetricsRegistry name lookup
 * takes a Mutex — hot paths cache the returned reference (stable
 * address for the registry's lifetime) in a function-local static.
 * Snapshot/export reads are racy-but-atomic: each cell is read with a
 * relaxed load, so a snapshot taken while writers run is a consistent
 * set of individually-torn-free values, not a point-in-time cut.
 */

#ifndef FASP_OBS_METRICS_H
#define FASP_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "pm/device.h"
#include "pm/phase.h"

namespace fasp::obs {

/** Global observability switch. Off by default; BenchArgs::parse turns
 *  it on when --metrics=PATH is given. Read it on every hot-path
 *  record site so the disabled build costs one relaxed load. */
bool enabled();

/** Flip the global switch (quiescent only: before threads start). */
void setEnabled(bool on);

/** Monotonic event counter. */
class Counter
{
  public:
    void inc() { add(1); }

    void add(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (signed: deltas allowed). */
class Gauge
{
  public:
    void set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void add(std::int64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket latency histogram with power-of-two bucket edges.
 * Bucket 0 holds the value 0; bucket i (i ≥ 1) holds values in
 * [2^(i-1), 2^i - 1]; the last bucket additionally absorbs everything
 * larger. Percentiles report the upper edge of the bucket containing
 * the requested rank (the recorded maximum for the last bucket), so
 * they over-estimate by at most 2x — plenty for p50/p95/p99 spotting
 * of latency regressions, and recording stays two relaxed RMWs plus a
 * CAS-free max update.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 40;

    void record(std::uint64_t v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    std::uint64_t max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    std::uint64_t bucketCount(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Value at quantile @p q in [0, 1] (upper bucket edge; the
     *  recorded maximum for the overflow bucket). 0 when empty. */
    std::uint64_t quantile(double q) const;

    std::uint64_t p50() const { return quantile(0.50); }
    std::uint64_t p95() const { return quantile(0.95); }
    std::uint64_t p99() const { return quantile(0.99); }

    /** Fold @p other into this histogram (racy-but-atomic reads of
     *  @p other; see file comment). */
    void merge(const Histogram &other);

    void reset();

    /** Bucket index that @p v lands in. */
    static std::size_t bucketIndex(std::uint64_t v);

    /** Inclusive upper edge of bucket @p i. */
    static std::uint64_t bucketUpperEdge(std::size_t i);

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/** Point-in-time histogram summary used by the exporters. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    /** (inclusive upper edge, count) for every non-empty bucket. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/**
 * Name → metric registry. Lookup is Mutex-guarded; returned references
 * are stable for the registry's lifetime (metrics are never removed),
 * so hot paths bind once:
 *
 *     static obs::Counter &c =
 *         obs::MetricsRegistry::global().counter("core.tx.commits");
 *     if (obs::enabled()) c.inc();
 */
class MetricsRegistry
{
  public:
    /** Process-wide registry the wiring and exporters use. */
    static MetricsRegistry &global();

    Counter &counter(std::string_view name) EXCLUDES(mu_);
    Gauge &gauge(std::string_view name) EXCLUDES(mu_);
    Histogram &histogram(std::string_view name) EXCLUDES(mu_);

    /** Sorted (name, value) view of every counter. */
    std::vector<std::pair<std::string, std::uint64_t>>
    counters() const EXCLUDES(mu_);

    /** Sorted (name, value) view of every gauge. */
    std::vector<std::pair<std::string, std::int64_t>>
    gauges() const EXCLUDES(mu_);

    /** Sorted (name, snapshot) view of every histogram. */
    std::vector<std::pair<std::string, HistogramSnapshot>>
    histograms() const EXCLUDES(mu_);

    /** Zero every registered metric (names stay registered). */
    void reset() EXCLUDES(mu_);

  private:
    mutable Mutex mu_;
    // unique_ptr storage gives metrics stable addresses across rehash.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_ GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
        gauges_ GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_ GUARDED_BY(mu_);
};

/** One attribution cell's snapshot (per phase or per site). */
struct PmCellSnapshot
{
    std::uint64_t stores = 0;
    std::uint64_t storeBytes = 0;
    std::uint64_t flushes = 0;
    std::uint64_t fences = 0;
    std::uint64_t modelNs = 0;

    bool empty() const
    {
        return stores == 0 && flushes == 0 && fences == 0 &&
               modelNs == 0;
    }

    PmCellSnapshot &operator+=(const PmCellSnapshot &o)
    {
        stores += o.stores;
        storeBytes += o.storeBytes;
        flushes += o.flushes;
        fences += o.fences;
        modelNs += o.modelNs;
        return *this;
    }
};

/**
 * PmEventObserver that bills every PM store/flush/fence/model-latency
 * charge to (a) the issuing thread's execution phase (the PhaseScope
 * Component — the paper's Fig-8 axis) and (b) its SiteScope code-site
 * tag. Phase cells are a fixed array; site cells live in a fixed-size
 * lock-free slot table keyed by tag pointer with a content-equality
 * fallback (tags are string literals, but identical literals may have
 * distinct addresses across TUs). Beyond kMaxSites distinct tags,
 * events fold into the "(overflow)" slot rather than being dropped.
 */
class PmAttribution final : public pm::PmEventObserver
{
  public:
    static constexpr std::size_t kNumPhases =
        static_cast<std::size_t>(pm::Component::NumComponents);
    static constexpr std::size_t kMaxSites = 128;

    void onPmStore(const char *site, pm::Component phase,
                   std::size_t bytes) override;
    void onPmFlush(const char *site, pm::Component phase) override;
    void onPmFence(const char *site, pm::Component phase) override;
    void onPmModelNs(const char *site, pm::Component phase,
                     std::uint64_t ns) override;

    PmCellSnapshot phase(pm::Component comp) const;

    /** (site tag, snapshot) for every registered site, registration
     *  order. */
    std::vector<std::pair<std::string, PmCellSnapshot>> sites() const;

    void reset();

  private:
    struct Cell
    {
        std::atomic<std::uint64_t> stores{0};
        std::atomic<std::uint64_t> storeBytes{0};
        std::atomic<std::uint64_t> flushes{0};
        std::atomic<std::uint64_t> fences{0};
        std::atomic<std::uint64_t> modelNs{0};
    };

    struct SiteSlot
    {
        std::atomic<const char *> name{nullptr};
        Cell cell;
    };

    static PmCellSnapshot snapshotCell(const Cell &cell);

    Cell &phaseCell(pm::Component comp)
    {
        return phases_[static_cast<std::size_t>(comp)];
    }

    Cell &siteCell(const char *site);

    std::array<Cell, kNumPhases> phases_;
    std::array<SiteSlot, kMaxSites> sites_;
    Cell overflow_;
};

/**
 * Per-engine fold of PmAttribution snapshots. Benches run one engine
 * at a time with a fresh PmAttribution attached to the device; at the
 * end of each run the runner folds that attribution here under the
 * engine's name, and the exporters emit the per-engine × per-phase
 * breakdown (the runtime Fig 8). Folding the same engine twice
 * accumulates — a bench sweeping latencies sums across the sweep.
 */
class PhaseLedger
{
  public:
    struct Entry
    {
        std::string engine;
        std::array<PmCellSnapshot, PmAttribution::kNumPhases> phases{};
        std::vector<std::pair<std::string, PmCellSnapshot>> sites;
    };

    static PhaseLedger &global();

    void fold(std::string_view engine, const PmAttribution &attr)
        EXCLUDES(mu_);

    std::vector<Entry> entries() const EXCLUDES(mu_);

    void reset() EXCLUDES(mu_);

  private:
    mutable Mutex mu_;
    std::vector<Entry> entries_ GUARDED_BY(mu_);
};

/** Phases of an instrumented crash-recovery pass (DESIGN.md §12). */
enum class RecoveryPhase : std::uint8_t {
    Scan = 0,
    Replay = 1,
    Discard = 2,
    TornRepair = 3,
};

constexpr std::size_t kNumRecoveryPhases = 4;

/** Printable phase name ("scan", "replay", ...). */
const char *recoveryPhaseName(RecoveryPhase phase);

/**
 * Per-engine recovery accounting: one sample per recover() pass, split
 * into the four recovery phases plus scan/replay/discard counters.
 * Unlike the hot-path metrics this ledger is NOT gated on
 * obs::enabled() — recovery is cold, and tools (fig12's recovery
 * bench, the exporters' `recovery` section) want the numbers even when
 * --metrics was not passed.
 */
class RecoveryLedger
{
  public:
    /** One recover() pass, as reported by the engine layer. */
    struct Sample
    {
        std::array<std::uint64_t, kNumRecoveryPhases> phaseNs{};
        std::uint64_t pagesScanned = 0;
        std::uint64_t recordsReplayed = 0;
        std::uint64_t recordsDiscarded = 0;
        std::uint64_t tornRecords = 0;
    };

    /** Exporter-facing view of one engine's accumulated recoveries. */
    struct EntrySnapshot
    {
        std::string engine;
        std::uint64_t recoveries = 0;
        std::uint64_t pagesScanned = 0;
        std::uint64_t recordsReplayed = 0;
        std::uint64_t recordsDiscarded = 0;
        std::uint64_t tornRecords = 0;
        std::array<HistogramSnapshot, kNumRecoveryPhases> phases{};
    };

    static RecoveryLedger &global();

    void record(std::string_view engine, const Sample &sample)
        EXCLUDES(mu_);

    std::vector<EntrySnapshot> entries() const EXCLUDES(mu_);

    void reset() EXCLUDES(mu_);

  private:
    struct Entry
    {
        std::string engine;
        std::uint64_t recoveries = 0;
        std::uint64_t pagesScanned = 0;
        std::uint64_t recordsReplayed = 0;
        std::uint64_t recordsDiscarded = 0;
        std::uint64_t tornRecords = 0;
        std::array<Histogram, kNumRecoveryPhases> phaseNs{};
    };

    mutable Mutex mu_;
    // unique_ptr storage: Histogram holds atomics (not movable).
    std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
};

/** Point-in-time summary of one Histogram (shared snapshot helper). */
HistogramSnapshot snapshotHistogram(const Histogram &h);

} // namespace fasp::obs

#endif // FASP_OBS_METRICS_H
