/**
 * @file
 * Exporters for the obs layer: JSON (machine-diffable, consumed by
 * tools/metrics_check, tools/fasp-profile, and the golden-file ctest)
 * and Prometheus text exposition (scrape-ready). Both render the same
 * data: the metrics registry, the per-engine PM phase/site attribution
 * ledger, the trace-ring summary plus a bounded tail of events (JSON
 * only), and the span profiler's per-engine summaries, latch
 * contention profile, page-hotness sketch, and captured p99 outliers.
 */

#ifndef FASP_OBS_EXPORT_H
#define FASP_OBS_EXPORT_H

#include <string>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace fasp::obs {

/** Render everything as a JSON document (schema_version 4: adds the
 *  span-profiler sections `spans`, `latch_contention`, `page_heat`,
 *  and `outliers`; v3 added the `core.pcas.*` abort-class counters
 *  billed by the PCAS commit path; v2 added the `recovery` section and
 *  per-ring `ring_stats`). @p maxTraceEvents bounds the embedded trace
 *  tail (0 = omit events, keep the summary). @p spans may be null: the
 *  four profiler sections are still emitted, empty, so consumers can
 *  rely on their presence. */
std::string exportJson(const std::string &benchName,
                       const MetricsRegistry &registry,
                       const PhaseLedger &ledger,
                       const RecoveryLedger &recovery,
                       const Tracer &tracer,
                       std::size_t maxTraceEvents = 256,
                       const SpanProfiler *spans = nullptr);

/** Render everything as Prometheus text exposition format. @p spans as
 *  in exportJson(): null renders no fasp_span_* / fasp_latch_* /
 *  fasp_page_hot_* series. */
std::string exportPrometheus(const std::string &benchName,
                             const MetricsRegistry &registry,
                             const PhaseLedger &ledger,
                             const RecoveryLedger &recovery,
                             const Tracer &tracer,
                             const SpanProfiler *spans = nullptr);

/** Render the trace rings as a chrome://tracing / Perfetto JSON
 *  document ("traceEvents" array of complete events; the global
 *  sequence number stands in for the timeline, since events record
 *  durations, not wall timestamps). */
std::string exportChromeTrace(const Tracer &tracer);

/**
 * Write the global registry/ledger/tracer to @p path: Prometheus text
 * when the path ends in ".prom", JSON otherwise. Returns false (after
 * logging) when the file cannot be written. This is what the benches'
 * --metrics=PATH flag calls.
 */
bool writeMetricsFile(const std::string &path,
                      const std::string &benchName);

/** Write the global tracer as chrome://tracing JSON to @p path (the
 *  benches' --trace=PATH flag). Returns false after logging on
 *  failure. */
bool writeTraceFile(const std::string &path);

} // namespace fasp::obs

#endif // FASP_OBS_EXPORT_H
