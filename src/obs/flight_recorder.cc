// fasp-lint: allow-file(raw-std-sync) -- lock-free PM flight recorder;
// must stay wait-free on the store path, invisible to fasp-mc by design.
#include "obs/flight_recorder.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/byte_io.h"
#include "common/crc32.h"
#include "pm/device.h"

namespace fasp::obs {

std::atomic<bool> FlightRecorder::gEnabled{false};

const char *
flightEventTypeName(FlightEventType type)
{
    switch (type) {
      case FlightEventType::Invalid: return "invalid";
      case FlightEventType::OpBegin: return "op-begin";
      case FlightEventType::CommitPoint: return "commit-point";
      case FlightEventType::Abort: return "abort";
      case FlightEventType::Fallback: return "fallback";
      case FlightEventType::PageSplit: return "page-split";
      case FlightEventType::Defrag: return "defrag";
      case FlightEventType::RecoveryBegin: return "recovery-begin";
      case FlightEventType::RecoveryEnd: return "recovery-end";
    }
    return "?";
}

namespace {

/** Largest power of two <= v (v >= 1). */
std::uint32_t
floorPow2(std::uint64_t v)
{
    std::uint32_t p = 1;
    while ((static_cast<std::uint64_t>(p) << 1) <= v)
        p <<= 1;
    return p;
}

std::uint32_t
regionCapacity(std::uint64_t len)
{
    if (len < FlightRecorder::kHeaderBytes +
                  8 * FlightRecorder::kRecordBytes)
        return 0;
    std::uint64_t slots = (len - FlightRecorder::kHeaderBytes) /
                          FlightRecorder::kRecordBytes;
    return floorPow2(slots);
}

} // namespace

FlightRecorder::FlightRecorder(pm::PmDevice &device, PmOffset off,
                               std::uint64_t len)
    : device_(device), off_(off), len_(len),
      capacity_(regionCapacity(len))
{}

void
FlightRecorder::formatRegion(pm::PmDevice &device, PmOffset off,
                             std::uint64_t len)
{
    std::uint32_t capacity = regionCapacity(len);
    if (capacity == 0)
        return;
    pm::SiteScope site(device, "FlightRecorder::format");

    std::array<std::uint8_t, kHeaderBytes> header{};
    storeU64(header.data() + 0, kMagic);
    storeU32(header.data() + 8, kFormatVersion);
    storeU32(header.data() + 12,
             static_cast<std::uint32_t>(kRecordBytes));
    storeU32(header.data() + 16, capacity);
    storeU32(header.data() + 20, crc32c(header.data(), 20));
    device.write(off, header.data(), header.size());

    std::array<std::uint8_t, 4096> zeros{};
    std::uint64_t body = static_cast<std::uint64_t>(capacity) *
                         kRecordBytes;
    for (std::uint64_t done = 0; done < body;) {
        std::uint64_t n = std::min<std::uint64_t>(zeros.size(),
                                                  body - done);
        device.write(off + kHeaderBytes + done, zeros.data(), n);
        done += n;
    }
    device.flushRange(off, kHeaderBytes + body);
    device.sfence();
}

Result<FlightAttachStats>
FlightRecorder::attach()
{
    if (capacity_ == 0)
        return Status(StatusCode::InvalidArgument,
                      "flight-recorder region too small");
    std::array<std::uint8_t, kHeaderBytes> header{};
    device_.read(off_, header.data(), header.size());
    if (loadU64(header.data()) != kMagic)
        return Status(StatusCode::Corruption,
                      "flight-recorder magic mismatch");
    if (loadU32(header.data() + 20) != crc32c(header.data(), 20))
        return Status(StatusCode::Corruption,
                      "flight-recorder header CRC mismatch");
    if (loadU32(header.data() + 8) != kFormatVersion ||
        loadU32(header.data() + 12) != kRecordBytes)
        return Status(StatusCode::Corruption,
                      "flight-recorder header version");
    std::uint32_t capacity = loadU32(header.data() + 16);
    if (capacity == 0 || (capacity & (capacity - 1)) != 0 ||
        capacity > regionCapacity(len_)) {
        return Status(StatusCode::Corruption,
                      "flight-recorder capacity");
    }
    capacity_ = capacity;

    FlightAttachStats stats;
    std::vector<std::uint32_t> torn;
    std::array<std::uint8_t, kRecordBytes> slot{};
    for (std::uint32_t i = 0; i < capacity_; ++i) {
        device_.read(off_ + kHeaderBytes +
                         static_cast<std::uint64_t>(i) * kRecordBytes,
                     slot.data(), slot.size());
        FlightRecord rec;
        bool is_torn = false;
        if (decodeSlot(slot.data(), rec, &is_torn)) {
            stats.validRecords++;
            stats.maxSeq = std::max(stats.maxSeq, rec.seq);
        } else if (is_torn) {
            torn.push_back(i);
        }
    }

    // Torn-record repair: zero every slot that failed its CRC so the
    // next scan (or an offline forensics pass over the repaired image)
    // sees an unambiguous ring again.
    if (!torn.empty()) {
        pm::SiteScope site(device_, "FlightRecorder::repair");
        std::array<std::uint8_t, kRecordBytes> zeros{};
        for (std::uint32_t i : torn) {
            PmOffset o = off_ + kHeaderBytes +
                         static_cast<std::uint64_t>(i) * kRecordBytes;
            device_.write(o, zeros.data(), zeros.size());
            device_.flushRange(o, kRecordBytes);
        }
        device_.sfence();
    }
    stats.tornRecords = torn.size();

    firstSeq_ = stats.maxSeq + 1;
    nextSeq_.store(firstSeq_, std::memory_order_relaxed);
    return stats;
}

void
FlightRecorder::encodeRecord(std::uint8_t *buf, const FlightRecord &rec)
{
    std::memset(buf, 0, kRecordBytes);
    storeU64(buf + 0, rec.seq);
    buf[8] = static_cast<std::uint8_t>(rec.type);
    buf[9] = rec.engine;
    storeU16(buf + 10, rec.flags);
    storeU32(buf + 12, rec.pageId);
    storeU64(buf + 16, rec.txid);
    storeU64(buf + 24, rec.aux);
    storeU64(buf + 32, rec.modelNs);
    storeU32(buf + 60, crc32c(buf, 60));
}

void
FlightRecorder::append(FlightEventType type, std::uint8_t engine,
                       std::uint64_t txid, PageId pageId,
                       std::uint64_t aux)
{
    // A crashed device accepts no writes; the abort records emitted by
    // transaction destructors while a simulated crash unwinds must be
    // dropped (a real power cut drops them with the rest of the cache).
    if (capacity_ == 0 || device_.crashed())
        return;
    FlightRecord rec;
    rec.seq = nextSeq_.fetch_add(1, std::memory_order_relaxed);
    rec.type = type;
    rec.engine = engine;
    rec.pageId = pageId;
    rec.txid = txid;
    rec.aux = aux;
    rec.modelNs = pm::PmDevice::threadModelNs();

    std::array<std::uint8_t, kRecordBytes> buf;
    encodeRecord(buf.data(), rec);

    // One store + one flush + one fence: the record is durable before
    // append() returns, so a surrounding checker transaction sees this
    // line FENCED by its commit point.
    pm::SiteScope site(device_, "FlightRecorder::append");
    PmOffset o = slotOffset(rec.seq);
    device_.write(o, buf.data(), buf.size());
    device_.flushRange(o, kRecordBytes);
    device_.sfence();
}

bool
FlightRecorder::decodeSlot(const std::uint8_t *slot, FlightRecord &out,
                           bool *torn)
{
    if (torn)
        *torn = false;
    bool all_zero = true;
    for (std::size_t i = 0; i < kRecordBytes; ++i) {
        if (slot[i] != 0) {
            all_zero = false;
            break;
        }
    }
    if (all_zero)
        return false; // never written
    if (loadU32(slot + 60) != crc32c(slot, 60) ||
        loadU64(slot + 0) == 0) {
        if (torn)
            *torn = true;
        return false;
    }
    out.seq = loadU64(slot + 0);
    out.type = static_cast<FlightEventType>(slot[8]);
    out.engine = slot[9];
    out.flags = loadU16(slot + 10);
    out.pageId = loadU32(slot + 12);
    out.txid = loadU64(slot + 16);
    out.aux = loadU64(slot + 24);
    out.modelNs = loadU64(slot + 32);
    return true;
}

std::vector<FlightRecord>
FlightRecorder::decodeRegion(const std::uint8_t *region,
                             std::uint64_t len,
                             std::vector<std::uint32_t> *tornSlots)
{
    std::vector<FlightRecord> records;
    if (len < kHeaderBytes)
        return records;
    if (loadU64(region) != kMagic ||
        loadU32(region + 20) != crc32c(region, 20)) {
        return records;
    }
    std::uint32_t capacity = loadU32(region + 16);
    std::uint64_t body = static_cast<std::uint64_t>(capacity) *
                         kRecordBytes;
    if (capacity == 0 || kHeaderBytes + body > len)
        return records;

    for (std::uint32_t i = 0; i < capacity; ++i) {
        const std::uint8_t *slot =
            region + kHeaderBytes +
            static_cast<std::uint64_t>(i) * kRecordBytes;
        FlightRecord rec;
        bool torn = false;
        if (decodeSlot(slot, rec, &torn)) {
            records.push_back(rec);
        } else if (torn && tornSlots) {
            tornSlots->push_back(i);
        }
    }
    std::sort(records.begin(), records.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  return a.seq < b.seq;
              });
    return records;
}

} // namespace fasp::obs
