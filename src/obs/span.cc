// fasp-lint: allow-file(raw-std-sync) -- lock-free span ring, latch
// aggregates, and heat sketch; records scheduling, never participates
// in it.
#include "obs/span.h"

#include <algorithm>
#include <chrono>

#include "pm/device.h"
#include "pm/pcas.h"

namespace fasp::obs {

namespace {

/** Linear probes before the heat sketch gives up on a page. */
constexpr std::size_t kHeatProbes = 8;

/** Accesses between sketch decay passes (counts halve, so a page must
 *  keep earning its cell to stay hot; cells decayed to zero free up). */
constexpr std::uint64_t kHeatDecayPeriod = 1u << 16;

std::uint64_t
steadyNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** The calling thread's in-flight span, plus the begin-side counter
 *  baselines the end-side deltas subtract. */
struct ActiveSpan
{
    bool active = false;
    std::size_t curComp = 0;
    std::uint64_t t0 = 0;
    std::uint64_t markNs = 0;
    std::uint64_t model0 = 0;
    std::uint64_t flush0 = 0;
    std::uint64_t fence0 = 0;
    pm::PcasThreadCounters pcas0;
    TxSpan span;
};

thread_local ActiveSpan t_span;

/** PhaseScope boundary: settle elapsed wall into the outgoing
 *  component's bucket, so the buckets partition [begin, end] exactly
 *  and their sum equals the span's wall time by construction. */
void
phaseHook(pm::Component newTop, bool entered)
{
    ActiveSpan &s = t_span;
    if (!s.active)
        return;
    std::uint64_t now = steadyNs();
    s.span.phaseNs[s.curComp] += now - s.markNs;
    s.markNs = now;
    s.curComp = static_cast<std::size_t>(newTop);
    if (entered && newTop == pm::Component::LogFlush)
        ++s.span.walAppends;
}

std::atomic<std::uint64_t> g_profilerIds{0};

} // namespace

// --- Hot-path free functions -------------------------------------------

void
spanBegin(const char *engine, std::uint8_t engineCode,
          std::uint64_t txId)
{
    if (!enabled())
        return;
    SpanProfiler::global(); // materialise profiler + phase hook
    ActiveSpan &s = t_span;
    s = ActiveSpan{};
    s.active = true;
    s.span.txId = txId;
    s.span.engine = engine;
    s.span.engineCode = engineCode;
    std::uint64_t now = steadyNs();
    s.t0 = now;
    s.markNs = now;
    s.span.beginNs = now;
    // A transaction may begin inside an enclosing PhaseScope (e.g. the
    // SQL front end); bill its time to that component, not untagged.
    s.curComp = static_cast<std::size_t>(pm::currentThreadComponent());
    s.model0 = pm::PmDevice::threadPersistModelNs();
    s.flush0 = pm::PmDevice::threadFlushCount();
    s.fence0 = pm::PmDevice::threadFenceCount();
    s.pcas0 = pm::pcasThreadCounters();
    s.span.seqLo = Tracer::global().currentSeq();
}

void
spanEnd(bool committed, const char *commitPath)
{
    ActiveSpan &s = t_span;
    if (!s.active)
        return;
    s.active = false;
    std::uint64_t now = steadyNs();
    s.span.phaseNs[s.curComp] += now - s.markNs;
    s.span.wallNs = now - s.t0;
    s.span.committed = committed;
    s.span.commitPath = commitPath;
    s.span.modelNs =
        pm::PmDevice::threadPersistModelNs() - s.model0;
    s.span.flushes = static_cast<std::uint32_t>(
        pm::PmDevice::threadFlushCount() - s.flush0);
    s.span.fences = static_cast<std::uint32_t>(
        pm::PmDevice::threadFenceCount() - s.fence0);
    const pm::PcasThreadCounters &pc = pm::pcasThreadCounters();
    s.span.pcasAttempts =
        static_cast<std::uint32_t>(pc.attempts - s.pcas0.attempts);
    s.span.pcasRetries =
        static_cast<std::uint32_t>(pc.retries - s.pcas0.retries);
    s.span.pcasHelps =
        static_cast<std::uint32_t>(pc.helps - s.pcas0.helps);
    s.span.seqHi = Tracer::global().currentSeq();

    SpanProfiler &prof = SpanProfiler::global();
    // The trace slice costs a ring snapshot; fetch it only for spans
    // that can actually enter the reservoir.
    std::vector<TraceEvent> events;
    if (prof.outlierCandidate(s.span)) {
        events = Tracer::global().threadEventsInWindow(s.span.seqLo,
                                                       s.span.seqHi);
    }
    prof.recordSpan(s.span, events);
}

void
spanLatchWait(std::size_t slot, std::uint64_t waitNs, bool conflict)
{
    if (!enabled())
        return;
    SpanProfiler::global().recordLatchWait(slot, waitNs, conflict);
    ActiveSpan &s = t_span;
    if (!s.active)
        return;
    ++s.span.latchWaits;
    if (conflict)
        ++s.span.latchConflicts;
    s.span.latchWaitNs += waitNs;
    if (waitNs > s.span.hotLatchWaitNs) {
        s.span.hotLatchWaitNs = waitNs;
        s.span.hotLatchSlot = static_cast<std::uint32_t>(slot);
    }
}

void
spanPageAccess(std::uint64_t pageId, bool dirty)
{
    if (!enabled())
        return;
    SpanProfiler::global().recordPageAccess(pageId, dirty);
    ActiveSpan &s = t_span;
    if (!s.active)
        return;
    ++s.span.pageAccesses;
    if (dirty)
        ++s.span.pageDirty;
}

void
spanPageConflict(std::uint64_t pageId)
{
    if (!enabled())
        return;
    SpanProfiler::global().recordPageConflict(pageId);
}

void
spanSplit()
{
    if (!enabled())
        return;
    if (t_span.active)
        ++t_span.span.splits;
}

void
spanDefrag()
{
    if (!enabled())
        return;
    if (t_span.active)
        ++t_span.span.defrags;
}

// --- SpanProfiler ------------------------------------------------------

SpanProfiler::SpanProfiler()
    : id_(g_profilerIds.fetch_add(1, std::memory_order_relaxed)),
      latchAggs_(std::make_unique<LatchSlotAgg[]>(kSpanLatchSlots)),
      latchHists_(std::make_unique<Histogram[]>(kSpanLatchSlots))
{
}

SpanProfiler &
SpanProfiler::global()
{
    // Leaked so recording threads may outlive static destruction; the
    // pm phase hook is installed alongside, so a metrics-off run never
    // pays for either.
    static SpanProfiler *profiler = [] {
        auto *p = new SpanProfiler();
        pm::detail::setPhaseHook(&phaseHook);
        return p;
    }();
    return *profiler;
}

void
SpanProfiler::SpanRing::record(const TxSpan &span)
{
    std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h >= slots.size())
        dropped.fetch_add(1, std::memory_order_release);
    slots[h % kSpanRingCapacity] = span;
    head.store(h + 1, std::memory_order_release);
}

SpanProfiler::SpanRing &
SpanProfiler::threadRing()
{
    struct Memo
    {
        std::uint64_t profilerId = ~std::uint64_t{0};
        SpanRing *ring = nullptr;
    };
    thread_local std::vector<Memo> memos;
    for (const Memo &m : memos) {
        if (m.profilerId == id_)
            return *m.ring;
    }
    SpanRing *ring;
    {
        MutexLock lk(&mu_);
        rings_.push_back(std::make_unique<SpanRing>());
        ring = rings_.back().get();
    }
    memos.push_back(Memo{id_, ring});
    return *ring;
}

void
SpanProfiler::recordSpan(const TxSpan &span,
                         const std::vector<TraceEvent> &events)
{
    threadRing().record(span);

    std::size_t idx = span.engineCode < kSpanEngineSlots
                          ? span.engineCode
                          : 0;
    EngineAgg &agg = engines_[idx];
    agg.engine.store(span.engine, std::memory_order_relaxed);
    agg.spans.fetch_add(1, std::memory_order_relaxed);
    if (span.committed)
        agg.commits.fetch_add(1, std::memory_order_relaxed);
    else
        agg.aborts.fetch_add(1, std::memory_order_relaxed);
    agg.wallNs.record(span.wallNs);
    for (std::size_t i = 0; i < kSpanComponents; ++i) {
        if (span.phaseNs[i] != 0) {
            agg.phaseNs[i].fetch_add(span.phaseNs[i],
                                     std::memory_order_relaxed);
        }
    }
    agg.latchWaits.fetch_add(span.latchWaits,
                             std::memory_order_relaxed);
    agg.latchWaitNs.fetch_add(span.latchWaitNs,
                              std::memory_order_relaxed);
    agg.latchConflicts.fetch_add(span.latchConflicts,
                                 std::memory_order_relaxed);
    agg.pcasAttempts.fetch_add(span.pcasAttempts,
                               std::memory_order_relaxed);
    agg.pcasRetries.fetch_add(span.pcasRetries,
                              std::memory_order_relaxed);
    agg.pcasHelps.fetch_add(span.pcasHelps,
                            std::memory_order_relaxed);
    agg.flushes.fetch_add(span.flushes, std::memory_order_relaxed);
    agg.fences.fetch_add(span.fences, std::memory_order_relaxed);
    agg.modelNs.fetch_add(span.modelNs, std::memory_order_relaxed);
    agg.walAppends.fetch_add(span.walAppends,
                             std::memory_order_relaxed);
    agg.splits.fetch_add(span.splits, std::memory_order_relaxed);
    agg.defrags.fetch_add(span.defrags, std::memory_order_relaxed);
    agg.pageAccesses.fetch_add(span.pageAccesses,
                               std::memory_order_relaxed);
    agg.pageDirty.fetch_add(span.pageDirty,
                            std::memory_order_relaxed);

    considerOutlier(span, events);
}

bool
SpanProfiler::outlierCandidate(const TxSpan &span) const
{
    std::size_t idx = span.engineCode < kSpanEngineSlots
                          ? span.engineCode
                          : 0;
    // floor is 0 until the reservoir fills, so early spans always pass.
    return span.wallNs >
           reservoirs_[idx].floor.load(std::memory_order_relaxed);
}

void
SpanProfiler::considerOutlier(const TxSpan &span,
                              const std::vector<TraceEvent> &events)
{
    std::size_t idx = span.engineCode < kSpanEngineSlots
                          ? span.engineCode
                          : 0;
    Reservoir &res = reservoirs_[idx];
    if (span.wallNs <= res.floor.load(std::memory_order_relaxed))
        return;

    SpanOutlier entry;
    entry.span = span;
    entry.events = events;
    if (entry.events.size() > kOutlierEvents) {
        // Keep the tail of the window: the commit path is where
        // outliers are made.
        entry.events.erase(entry.events.begin(),
                           entry.events.end() - kOutlierEvents);
    }

    MutexLock lk(&mu_);
    if (res.entries.size() >= kOutliersPerEngine) {
        auto mn = std::min_element(
            res.entries.begin(), res.entries.end(),
            [](const SpanOutlier &a, const SpanOutlier &b) {
                return a.span.wallNs < b.span.wallNs;
            });
        if (span.wallNs <= mn->span.wallNs)
            return;
        *mn = std::move(entry);
    } else {
        res.entries.push_back(std::move(entry));
    }
    if (res.entries.size() >= kOutliersPerEngine) {
        auto mn = std::min_element(
            res.entries.begin(), res.entries.end(),
            [](const SpanOutlier &a, const SpanOutlier &b) {
                return a.span.wallNs < b.span.wallNs;
            });
        res.floor.store(mn->span.wallNs, std::memory_order_relaxed);
    }
}

void
SpanProfiler::recordLatchWait(std::size_t slot, std::uint64_t waitNs,
                              bool conflict)
{
    if (slot >= kSpanLatchSlots)
        slot = kSpanLatchSlots - 1;
    LatchSlotAgg &agg = latchAggs_[slot];
    agg.waits.fetch_add(1, std::memory_order_relaxed);
    if (conflict)
        agg.conflicts.fetch_add(1, std::memory_order_relaxed);
    agg.waitNs.fetch_add(waitNs, std::memory_order_relaxed);
    latchHists_[slot].record(waitNs);
}

SpanProfiler::HeatCell *
SpanProfiler::findHeatCell(std::uint64_t pageId)
{
    std::uint64_t key = pageId + 1; // 0 marks an empty cell
    std::uint64_t h = (key * 0x9e3779b97f4a7c15ull) >> 32;
    for (std::size_t p = 0; p < kHeatProbes; ++p) {
        HeatCell &cell = heat_[(h + p) % kPageHeatSlots];
        std::uint64_t k = cell.key.load(std::memory_order_relaxed);
        if (k == key)
            return &cell;
        if (k == 0) {
            if (cell.key.compare_exchange_strong(
                    k, key, std::memory_order_acq_rel,
                    std::memory_order_relaxed)) {
                return &cell;
            }
            if (k == key) // lost the claim to ourselves-by-proxy
                return &cell;
        }
    }
    return nullptr;
}

void
SpanProfiler::maybeDecayHeat()
{
    std::uint64_t t =
        heatTicks_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (t % kHeatDecayPeriod != 0)
        return;
    heatDecays_.fetch_add(1, std::memory_order_relaxed);
    // Halve every cell; cells decayed to zero are freed for new pages.
    // Racing bumps may be lost — tolerable, it is a sketch, and the
    // loss is bounded by one period's worth of counts per cell.
    for (HeatCell &cell : heat_) {
        if (cell.key.load(std::memory_order_relaxed) == 0)
            continue;
        std::uint64_t a =
            cell.accesses.load(std::memory_order_relaxed) >> 1;
        cell.accesses.store(a, std::memory_order_relaxed);
        cell.dirty.store(
            cell.dirty.load(std::memory_order_relaxed) >> 1,
            std::memory_order_relaxed);
        cell.conflicts.store(
            cell.conflicts.load(std::memory_order_relaxed) >> 1,
            std::memory_order_relaxed);
        if (a == 0)
            cell.key.store(0, std::memory_order_relaxed);
    }
}

void
SpanProfiler::recordPageAccess(std::uint64_t pageId, bool dirty)
{
    if (HeatCell *cell = findHeatCell(pageId)) {
        cell->accesses.fetch_add(1, std::memory_order_relaxed);
        if (dirty)
            cell->dirty.fetch_add(1, std::memory_order_relaxed);
    } else {
        heatOverflow_.fetch_add(1, std::memory_order_relaxed);
    }
    maybeDecayHeat();
}

void
SpanProfiler::recordPageConflict(std::uint64_t pageId)
{
    if (HeatCell *cell = findHeatCell(pageId))
        cell->conflicts.fetch_add(1, std::memory_order_relaxed);
    else
        heatOverflow_.fetch_add(1, std::memory_order_relaxed);
}

// --- Snapshots ---------------------------------------------------------

std::vector<EngineSpanSummary>
SpanProfiler::engineSummaries() const
{
    std::vector<EngineSpanSummary> out;
    for (const EngineAgg &agg : engines_) {
        std::uint64_t n = agg.spans.load(std::memory_order_relaxed);
        if (n == 0)
            continue;
        EngineSpanSummary s;
        s.engine = agg.engine.load(std::memory_order_relaxed);
        s.spans = n;
        s.commits = agg.commits.load(std::memory_order_relaxed);
        s.aborts = agg.aborts.load(std::memory_order_relaxed);
        s.wallNs = snapshotHistogram(agg.wallNs);
        for (std::size_t i = 0; i < kSpanComponents; ++i) {
            s.phaseNs[i] =
                agg.phaseNs[i].load(std::memory_order_relaxed);
        }
        s.latchWaits =
            agg.latchWaits.load(std::memory_order_relaxed);
        s.latchWaitNs =
            agg.latchWaitNs.load(std::memory_order_relaxed);
        s.latchConflicts =
            agg.latchConflicts.load(std::memory_order_relaxed);
        s.pcasAttempts =
            agg.pcasAttempts.load(std::memory_order_relaxed);
        s.pcasRetries =
            agg.pcasRetries.load(std::memory_order_relaxed);
        s.pcasHelps = agg.pcasHelps.load(std::memory_order_relaxed);
        s.flushes = agg.flushes.load(std::memory_order_relaxed);
        s.fences = agg.fences.load(std::memory_order_relaxed);
        s.modelNs = agg.modelNs.load(std::memory_order_relaxed);
        s.walAppends =
            agg.walAppends.load(std::memory_order_relaxed);
        s.splits = agg.splits.load(std::memory_order_relaxed);
        s.defrags = agg.defrags.load(std::memory_order_relaxed);
        s.pageAccesses =
            agg.pageAccesses.load(std::memory_order_relaxed);
        s.pageDirty = agg.pageDirty.load(std::memory_order_relaxed);
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<LatchSlotSummary>
SpanProfiler::latchContention(std::size_t maxSlots) const
{
    std::vector<LatchSlotSummary> out;
    for (std::size_t slot = 0; slot < kSpanLatchSlots; ++slot) {
        const LatchSlotAgg &agg = latchAggs_[slot];
        std::uint64_t waits =
            agg.waits.load(std::memory_order_relaxed);
        if (waits == 0)
            continue;
        LatchSlotSummary s;
        s.slot = slot;
        s.waits = waits;
        s.conflicts = agg.conflicts.load(std::memory_order_relaxed);
        s.waitNs = agg.waitNs.load(std::memory_order_relaxed);
        s.hist = snapshotHistogram(latchHists_[slot]);
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const LatchSlotSummary &a, const LatchSlotSummary &b) {
                  if (a.waitNs != b.waitNs)
                      return a.waitNs > b.waitNs;
                  return a.slot < b.slot;
              });
    if (out.size() > maxSlots)
        out.resize(maxSlots);
    return out;
}

std::uint64_t
SpanProfiler::totalLatchWaits() const
{
    std::uint64_t n = 0;
    for (std::size_t slot = 0; slot < kSpanLatchSlots; ++slot)
        n += latchAggs_[slot].waits.load(std::memory_order_relaxed);
    return n;
}

std::uint64_t
SpanProfiler::totalLatchConflicts() const
{
    std::uint64_t n = 0;
    for (std::size_t slot = 0; slot < kSpanLatchSlots; ++slot) {
        n += latchAggs_[slot].conflicts.load(
            std::memory_order_relaxed);
    }
    return n;
}

std::uint64_t
SpanProfiler::contendedSlotCount() const
{
    std::uint64_t n = 0;
    for (std::size_t slot = 0; slot < kSpanLatchSlots; ++slot) {
        if (latchAggs_[slot].waits.load(std::memory_order_relaxed) >
            0) {
            ++n;
        }
    }
    return n;
}

HistogramSnapshot
SpanProfiler::latchWaitHist() const
{
    Histogram merged;
    for (std::size_t slot = 0; slot < kSpanLatchSlots; ++slot)
        merged.merge(latchHists_[slot]);
    return snapshotHistogram(merged);
}

void
SpanProfiler::resetLatchContention()
{
    for (std::size_t slot = 0; slot < kSpanLatchSlots; ++slot) {
        latchAggs_[slot].waits.store(0, std::memory_order_relaxed);
        latchAggs_[slot].conflicts.store(0,
                                         std::memory_order_relaxed);
        latchAggs_[slot].waitNs.store(0, std::memory_order_relaxed);
        latchHists_[slot].reset();
    }
}

PageHeatSnapshot
SpanProfiler::pageHeat(std::size_t k) const
{
    PageHeatSnapshot out;
    for (const HeatCell &cell : heat_) {
        std::uint64_t key = cell.key.load(std::memory_order_relaxed);
        if (key == 0)
            continue;
        PageHeatEntry e;
        e.page = key - 1;
        e.accesses = cell.accesses.load(std::memory_order_relaxed);
        e.dirty = cell.dirty.load(std::memory_order_relaxed);
        e.conflicts = cell.conflicts.load(std::memory_order_relaxed);
        out.top.push_back(e);
    }
    out.tracked = out.top.size();
    std::sort(out.top.begin(), out.top.end(),
              [](const PageHeatEntry &a, const PageHeatEntry &b) {
                  if (a.accesses != b.accesses)
                      return a.accesses > b.accesses;
                  return a.page < b.page;
              });
    if (out.top.size() > k)
        out.top.resize(k);
    out.overflow = heatOverflow_.load(std::memory_order_relaxed);
    out.decays = heatDecays_.load(std::memory_order_relaxed);
    return out;
}

std::vector<SpanOutlier>
SpanProfiler::outliers() const
{
    std::vector<SpanOutlier> out;
    MutexLock lk(&mu_);
    for (const Reservoir &res : reservoirs_) {
        std::vector<SpanOutlier> engine(res.entries);
        std::sort(engine.begin(), engine.end(),
                  [](const SpanOutlier &a, const SpanOutlier &b) {
                      return a.span.wallNs > b.span.wallNs;
                  });
        for (auto &e : engine)
            out.push_back(std::move(e));
    }
    return out;
}

std::uint64_t
SpanProfiler::spansRecorded() const
{
    MutexLock lk(&mu_);
    std::uint64_t n = 0;
    for (const auto &ring : rings_)
        n += ring->head.load(std::memory_order_acquire);
    return n;
}

std::vector<SpanRingStats>
SpanProfiler::ringStats() const
{
    MutexLock lk(&mu_);
    std::vector<SpanRingStats> out;
    out.reserve(rings_.size());
    for (std::size_t i = 0; i < rings_.size(); ++i) {
        const SpanRing &ring = *rings_[i];
        SpanRingStats stats;
        stats.ring = i;
        stats.capacity = kSpanRingCapacity;
        stats.recorded = ring.head.load(std::memory_order_acquire);
        stats.dropped =
            ring.dropped.load(std::memory_order_acquire);
        out.push_back(stats);
    }
    return out;
}

std::vector<TxSpan>
SpanProfiler::collectRecentSpans(std::size_t max) const
{
    std::vector<TxSpan> out;
    {
        MutexLock lk(&mu_);
        for (const auto &ring : rings_) {
            std::uint64_t head =
                ring->head.load(std::memory_order_acquire);
            std::uint64_t retained =
                std::min<std::uint64_t>(head, kSpanRingCapacity);
            for (std::uint64_t i = head - retained; i < head; ++i)
                out.push_back(ring->slots[i % kSpanRingCapacity]);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TxSpan &a, const TxSpan &b) {
                  return a.beginNs < b.beginNs;
              });
    if (out.size() > max)
        out.erase(out.begin(), out.end() - max);
    return out;
}

void
SpanProfiler::reset()
{
    MutexLock lk(&mu_);
    for (auto &ring : rings_) {
        ring->head.store(0, std::memory_order_relaxed);
        ring->dropped.store(0, std::memory_order_relaxed);
    }
    for (EngineAgg &agg : engines_) {
        agg.engine.store(nullptr, std::memory_order_relaxed);
        agg.spans.store(0, std::memory_order_relaxed);
        agg.commits.store(0, std::memory_order_relaxed);
        agg.aborts.store(0, std::memory_order_relaxed);
        agg.wallNs.reset();
        for (auto &p : agg.phaseNs)
            p.store(0, std::memory_order_relaxed);
        agg.latchWaits.store(0, std::memory_order_relaxed);
        agg.latchWaitNs.store(0, std::memory_order_relaxed);
        agg.latchConflicts.store(0, std::memory_order_relaxed);
        agg.pcasAttempts.store(0, std::memory_order_relaxed);
        agg.pcasRetries.store(0, std::memory_order_relaxed);
        agg.pcasHelps.store(0, std::memory_order_relaxed);
        agg.flushes.store(0, std::memory_order_relaxed);
        agg.fences.store(0, std::memory_order_relaxed);
        agg.modelNs.store(0, std::memory_order_relaxed);
        agg.walAppends.store(0, std::memory_order_relaxed);
        agg.splits.store(0, std::memory_order_relaxed);
        agg.defrags.store(0, std::memory_order_relaxed);
        agg.pageAccesses.store(0, std::memory_order_relaxed);
        agg.pageDirty.store(0, std::memory_order_relaxed);
    }
    for (std::size_t slot = 0; slot < kSpanLatchSlots; ++slot) {
        latchAggs_[slot].waits.store(0, std::memory_order_relaxed);
        latchAggs_[slot].conflicts.store(0,
                                         std::memory_order_relaxed);
        latchAggs_[slot].waitNs.store(0, std::memory_order_relaxed);
        latchHists_[slot].reset();
    }
    for (HeatCell &cell : heat_) {
        cell.key.store(0, std::memory_order_relaxed);
        cell.accesses.store(0, std::memory_order_relaxed);
        cell.dirty.store(0, std::memory_order_relaxed);
        cell.conflicts.store(0, std::memory_order_relaxed);
    }
    heatTicks_.store(0, std::memory_order_relaxed);
    heatOverflow_.store(0, std::memory_order_relaxed);
    heatDecays_.store(0, std::memory_order_relaxed);
    for (Reservoir &res : reservoirs_) {
        res.entries.clear();
        res.floor.store(0, std::memory_order_relaxed);
    }
}

} // namespace fasp::obs
