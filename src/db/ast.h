/**
 * @file
 * Abstract syntax tree for the fasp SQL subset.
 */

#ifndef FASP_DB_AST_H
#define FASP_DB_AST_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/value.h"

namespace fasp::db {

// --- Expressions -----------------------------------------------------------

/** Expression node kinds. */
enum class ExprKind : std::uint8_t {
    Literal,   //!< constant Value
    ColumnRef, //!< column name
    Unary,     //!< NOT x, -x
    Binary,    //!< comparisons, AND/OR, arithmetic
};

/** Binary / unary operators. */
enum class Op : std::uint8_t {
    Eq, Ne, Lt, Le, Gt, Ge,
    And, Or, Not,
    Add, Sub, Mul, Div,
    Neg,
};

/** Expression tree node. */
struct Expr
{
    ExprKind kind = ExprKind::Literal;
    Value literal;                 //!< Literal
    std::string column;            //!< ColumnRef
    Op op = Op::Eq;                //!< Unary / Binary
    std::unique_ptr<Expr> lhs;
    std::unique_ptr<Expr> rhs;     //!< Binary only

    static std::unique_ptr<Expr> makeLiteral(Value v);
    static std::unique_ptr<Expr> makeColumn(std::string name);
    static std::unique_ptr<Expr> makeUnary(Op op,
                                           std::unique_ptr<Expr> x);
    static std::unique_ptr<Expr> makeBinary(Op op,
                                            std::unique_ptr<Expr> l,
                                            std::unique_ptr<Expr> r);
};

// --- Statements --------------------------------------------------------------

/** Column definition in CREATE TABLE. */
struct ColumnDef
{
    std::string name;
    ValueType type = ValueType::Integer;
    bool primaryKey = false;
};

struct CreateTableStmt
{
    std::string table;
    std::vector<ColumnDef> columns;
};

struct DropTableStmt
{
    std::string table;
};

struct InsertStmt
{
    std::string table;
    /** One expression list per row (multi-row VALUES supported). */
    std::vector<std::vector<std::unique_ptr<Expr>>> rows;
};

struct SelectStmt
{
    std::string table;
    bool countStar = false;           //!< SELECT COUNT(*)
    std::vector<std::string> columns; //!< empty = *
    std::unique_ptr<Expr> where;      //!< may be null
    std::optional<std::string> orderBy;
    bool orderDesc = false;
    std::optional<std::uint64_t> limit;
};

struct UpdateStmt
{
    std::string table;
    std::vector<std::pair<std::string, std::unique_ptr<Expr>>>
        assignments;
    std::unique_ptr<Expr> where;
};

struct DeleteStmt
{
    std::string table;
    std::unique_ptr<Expr> where;
};

/** Statement kinds. */
enum class StmtKind : std::uint8_t {
    CreateTable,
    DropTable,
    Insert,
    Select,
    Update,
    Delete,
    Begin,
    Commit,
    Rollback,
};

/** One parsed statement (tagged union via optionals). */
struct Statement
{
    StmtKind kind;
    std::optional<CreateTableStmt> createTable;
    std::optional<DropTableStmt> dropTable;
    std::optional<InsertStmt> insert;
    std::optional<SelectStmt> select;
    std::optional<UpdateStmt> update;
    std::optional<DeleteStmt> del;
};

} // namespace fasp::db

#endif // FASP_DB_AST_H
