/**
 * @file
 * Database: the SQLite-like facade tying SQL to a storage engine.
 *
 * This is the layer the paper's Figures 11-12 measure: full query
 * response time including SQL parsing and execution, not just pager /
 * B-tree time. Statements outside an explicit BEGIN...COMMIT run in
 * their own auto-commit transaction (SQLite semantics — and the
 * single-insert auto-commit transaction is exactly the mobile workload
 * FAST's in-place commit optimizes).
 */

#ifndef FASP_DB_DATABASE_H
#define FASP_DB_DATABASE_H

#include <memory>
#include <string>

#include "core/engine.h"
#include "db/catalog.h"
#include "db/executor.h"

namespace fasp::db {

/**
 * One open database over a storage engine.
 */
class Database
{
  public:
    /**
     * Open a database on @p device.
     * @param format true = format fresh (and create the catalog);
     *        false = open existing (crash recovery runs).
     */
    static Result<std::unique_ptr<Database>>
    open(pm::PmDevice &device, const core::EngineConfig &config,
         bool format);

    /** Execute one SQL statement. */
    Result<ResultSet> exec(const std::string &sql);

    /**
     * Execute a ';'-separated script (quotes respected); stops at the
     * first error. Returns the LAST statement's result set.
     */
    Result<ResultSet> execScript(const std::string &script);

    /** True while inside an explicit BEGIN...COMMIT block. */
    bool inTransaction() const { return current_ != nullptr; }

    core::Engine &engine() { return *engine_; }
    Catalog &catalog() { return catalog_; }

  private:
    Database(std::unique_ptr<core::Engine> engine)
        : engine_(std::move(engine)), catalog_(*engine_),
          executor_(*engine_, catalog_)
    {}

    std::unique_ptr<core::Engine> engine_;
    Catalog catalog_;
    Executor executor_;
    std::unique_ptr<core::Transaction> current_;
};

} // namespace fasp::db

#endif // FASP_DB_DATABASE_H
