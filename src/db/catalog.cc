#include "db/catalog.h"

#include <algorithm>

#include "db/row_codec.h"

namespace fasp::db {

using btree::BTree;

int
TableSchema::columnIndex(const std::string &column_name) const
{
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i].name == column_name)
            return static_cast<int>(i);
    }
    return -1;
}

namespace {

/** Schema <-> catalog record payload via the row codec. */
void
encodeSchema(const TableSchema &schema, std::vector<std::uint8_t> &out)
{
    Row row;
    row.push_back(Value::text(schema.name));
    row.push_back(Value::integer(schema.pkColumn));
    row.push_back(
        Value::integer(static_cast<std::int64_t>(schema.columns.size())));
    for (const ColumnDef &col : schema.columns) {
        row.push_back(Value::text(col.name));
        row.push_back(
            Value::integer(static_cast<std::int64_t>(col.type)));
    }
    encodeRow(row, out);
}

Status
decodeSchema(TreeId tree_id, const std::vector<std::uint8_t> &bytes,
             TableSchema &schema)
{
    Row row;
    FASP_RETURN_IF_ERROR(decodeRow(bytes, row));
    if (row.size() < 3)
        return statusCorruption("catalog record too short");
    schema.name = row[0].asText();
    schema.treeId = tree_id;
    schema.pkColumn = static_cast<int>(row[1].asInteger());
    auto ncols = static_cast<std::size_t>(row[2].asInteger());
    if (row.size() != 3 + 2 * ncols)
        return statusCorruption("catalog record column mismatch");
    schema.columns.clear();
    for (std::size_t i = 0; i < ncols; ++i) {
        ColumnDef col;
        col.name = row[3 + 2 * i].asText();
        col.type = static_cast<ValueType>(row[4 + 2 * i].asInteger());
        col.primaryKey =
            schema.pkColumn == static_cast<int>(i);
        schema.columns.push_back(std::move(col));
    }
    return Status::ok();
}

} // namespace

Status
Catalog::initFresh()
{
    auto tree = engine_.createTree(kCatalogTree);
    if (!tree.isOk())
        return tree.status();
    loaded_ = false;
    return Status::ok();
}

Status
Catalog::loadAll(core::Transaction &tx)
{
    if (loaded_)
        return Status::ok();
    cache_.clear();
    auto catalog = BTree::open(tx.pageIO(), kCatalogTree);
    if (!catalog.isOk())
        return catalog.status();

    Status decode_status;
    Status status = catalog->scan(
        tx.pageIO(), 0, ~std::uint64_t{0},
        [&](std::uint64_t tree_id, std::span<const std::uint8_t> bytes) {
            TableSchema schema;
            std::vector<std::uint8_t> copy(bytes.begin(), bytes.end());
            decode_status = decodeSchema(
                static_cast<TreeId>(tree_id), copy, schema);
            if (!decode_status.isOk())
                return false;
            cache_[schema.name] = std::move(schema);
            return true;
        });
    FASP_RETURN_IF_ERROR(status);
    FASP_RETURN_IF_ERROR(decode_status);
    loaded_ = true;
    return Status::ok();
}

Result<TableSchema>
Catalog::get(core::Transaction &tx, const std::string &table)
{
    FASP_RETURN_IF_ERROR(loadAll(tx));
    auto it = cache_.find(table);
    if (it == cache_.end())
        return statusNotFound("no such table: " + table);
    return it->second;
}

Result<TableSchema>
Catalog::create(core::Transaction &tx, const CreateTableStmt &stmt)
{
    FASP_RETURN_IF_ERROR(loadAll(tx));
    if (cache_.count(stmt.table))
        return statusAlreadyExists("table exists: " + stmt.table);
    if (stmt.columns.empty())
        return statusInvalid("table needs at least one column");

    TableSchema schema;
    schema.name = stmt.table;
    schema.columns = stmt.columns;
    schema.pkColumn = -1;
    for (std::size_t i = 0; i < stmt.columns.size(); ++i) {
        if (!stmt.columns[i].primaryKey)
            continue;
        if (schema.pkColumn >= 0)
            return statusInvalid("multiple PRIMARY KEY columns");
        if (stmt.columns[i].type != ValueType::Integer)
            return statusInvalid("PRIMARY KEY must be INTEGER");
        schema.pkColumn = static_cast<int>(i);
    }

    // Allocate the next tree id above every existing table.
    TreeId next = kFirstTableTree;
    for (const auto &[name, cached] : cache_)
        next = std::max(next, cached.treeId + 1);
    schema.treeId = next;

    auto tree = BTree::create(tx.pageIO(), schema.treeId);
    if (!tree.isOk())
        return tree.status();

    auto catalog = BTree::open(tx.pageIO(), kCatalogTree);
    if (!catalog.isOk())
        return catalog.status();
    std::vector<std::uint8_t> payload;
    encodeSchema(schema, payload);
    FASP_RETURN_IF_ERROR(catalog->insert(
        tx.pageIO(), schema.treeId,
        std::span<const std::uint8_t>(payload)));

    cache_[schema.name] = schema;
    return schema;
}

Status
Catalog::drop(core::Transaction &tx, const std::string &table)
{
    FASP_ASSIGN_OR_RETURN(TableSchema schema, get(tx, table));
    FASP_RETURN_IF_ERROR(BTree::drop(tx.pageIO(), schema.treeId));
    auto catalog = BTree::open(tx.pageIO(), kCatalogTree);
    if (!catalog.isOk())
        return catalog.status();
    FASP_RETURN_IF_ERROR(catalog->erase(tx.pageIO(), schema.treeId));
    cache_.erase(table);
    return Status::ok();
}

Result<std::vector<std::string>>
Catalog::tables(core::Transaction &tx)
{
    FASP_RETURN_IF_ERROR(loadAll(tx));
    std::vector<std::string> names;
    names.reserve(cache_.size());
    for (const auto &[name, schema] : cache_)
        names.push_back(name);
    return names;
}

} // namespace fasp::db
