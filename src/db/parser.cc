#include "db/parser.h"

#include <functional>

#include "db/tokenizer.h"

namespace fasp::db {

namespace {

/**
 * Token-stream cursor with the usual peek/expect helpers. Parse errors
 * are returned as ParseError Status values.
 */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : tokens_(std::move(tokens))
    {}

    Result<Statement> parse()
    {
        FASP_ASSIGN_OR_RETURN(auto stmt, parseInner());
        acceptSymbol(";");
        if (peek().type != TokenType::End)
            return err("trailing input after statement");
        return stmt;
    }

  private:
    Result<Statement> parseInner();

    const Token &peek() const { return tokens_[pos_]; }

    const Token &advance() { return tokens_[pos_++]; }

    bool atKeyword(const char *kw) const
    {
        return peek().type == TokenType::Keyword && peek().text == kw;
    }

    bool atSymbol(const char *sym) const
    {
        return peek().type == TokenType::Symbol && peek().text == sym;
    }

    bool acceptKeyword(const char *kw)
    {
        if (!atKeyword(kw))
            return false;
        advance();
        return true;
    }

    bool acceptSymbol(const char *sym)
    {
        if (!atSymbol(sym))
            return false;
        advance();
        return true;
    }

    Status expectKeyword(const char *kw)
    {
        if (!acceptKeyword(kw))
            return err(std::string("expected ") + kw);
        return Status::ok();
    }

    Status expectSymbol(const char *sym)
    {
        if (!acceptSymbol(sym))
            return err(std::string("expected '") + sym + "'");
        return Status::ok();
    }

    Result<std::string> expectIdentifier()
    {
        if (peek().type != TokenType::Identifier)
            return err("expected identifier");
        return advance().text;
    }

    Status err(const std::string &message) const
    {
        return statusParseError(message + " near offset " +
                                std::to_string(peek().position));
    }

    Result<Statement> parseCreateTable();
    Result<Statement> parseDropTable();
    Result<Statement> parseInsert();
    Result<Statement> parseSelect();
    Result<Statement> parseUpdate();
    Result<Statement> parseDelete();

    /** Expression grammar (precedence climbing):
     *  or := and (OR and)*
     *  and := not (AND not)*
     *  not := NOT not | cmp
     *  cmp := add ((= != < <= > >=) add | BETWEEN add AND add)?
     *  add := mul ((+|-) mul)*
     *  mul := unary ((*|/) unary)*
     *  unary := - unary | primary
     *  primary := literal | column | ( or ) */
    Result<std::unique_ptr<Expr>> parseExpr() { return parseOr(); }
    Result<std::unique_ptr<Expr>> parseOr();
    Result<std::unique_ptr<Expr>> parseAnd();
    Result<std::unique_ptr<Expr>> parseNot();
    Result<std::unique_ptr<Expr>> parseCmp();
    Result<std::unique_ptr<Expr>> parseAdd();
    Result<std::unique_ptr<Expr>> parseMul();
    Result<std::unique_ptr<Expr>> parseUnary();
    Result<std::unique_ptr<Expr>> parsePrimary();

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

Result<Statement>
Parser::parseInner()
{
    Statement out;
    if (acceptKeyword("CREATE"))
        return parseCreateTable();
    if (acceptKeyword("DROP"))
        return parseDropTable();
    if (acceptKeyword("INSERT"))
        return parseInsert();
    if (acceptKeyword("SELECT"))
        return parseSelect();
    if (acceptKeyword("UPDATE"))
        return parseUpdate();
    if (acceptKeyword("DELETE"))
        return parseDelete();
    if (acceptKeyword("BEGIN")) {
        out.kind = StmtKind::Begin;
        return out;
    }
    if (acceptKeyword("COMMIT")) {
        out.kind = StmtKind::Commit;
        return out;
    }
    if (acceptKeyword("ROLLBACK")) {
        out.kind = StmtKind::Rollback;
        return out;
    }
    return err("expected a statement");
}

Result<Statement>
Parser::parseCreateTable()
{
    FASP_RETURN_IF_ERROR(expectKeyword("TABLE"));
    CreateTableStmt stmt;
    FASP_ASSIGN_OR_RETURN(stmt.table, expectIdentifier());
    FASP_RETURN_IF_ERROR(expectSymbol("("));

    do {
        ColumnDef col;
        FASP_ASSIGN_OR_RETURN(col.name, expectIdentifier());
        if (acceptKeyword("INTEGER"))
            col.type = ValueType::Integer;
        else if (acceptKeyword("REAL"))
            col.type = ValueType::Real;
        else if (acceptKeyword("TEXT"))
            col.type = ValueType::Text;
        else if (acceptKeyword("BLOB"))
            col.type = ValueType::Blob;
        else
            return err("expected column type");
        if (acceptKeyword("PRIMARY")) {
            FASP_RETURN_IF_ERROR(expectKeyword("KEY"));
            col.primaryKey = true;
        }
        stmt.columns.push_back(std::move(col));
    } while (acceptSymbol(","));

    FASP_RETURN_IF_ERROR(expectSymbol(")"));
    Statement out;
    out.kind = StmtKind::CreateTable;
    out.createTable = std::move(stmt);
    return out;
}

Result<Statement>
Parser::parseDropTable()
{
    FASP_RETURN_IF_ERROR(expectKeyword("TABLE"));
    DropTableStmt stmt;
    FASP_ASSIGN_OR_RETURN(stmt.table, expectIdentifier());
    Statement out;
    out.kind = StmtKind::DropTable;
    out.dropTable = std::move(stmt);
    return out;
}

Result<Statement>
Parser::parseInsert()
{
    FASP_RETURN_IF_ERROR(expectKeyword("INTO"));
    InsertStmt stmt;
    FASP_ASSIGN_OR_RETURN(stmt.table, expectIdentifier());
    FASP_RETURN_IF_ERROR(expectKeyword("VALUES"));

    do {
        FASP_RETURN_IF_ERROR(expectSymbol("("));
        std::vector<std::unique_ptr<Expr>> row;
        do {
            FASP_ASSIGN_OR_RETURN(auto expr, parseExpr());
            row.push_back(std::move(expr));
        } while (acceptSymbol(","));
        FASP_RETURN_IF_ERROR(expectSymbol(")"));
        stmt.rows.push_back(std::move(row));
    } while (acceptSymbol(","));

    Statement out;
    out.kind = StmtKind::Insert;
    out.insert = std::move(stmt);
    return out;
}

Result<Statement>
Parser::parseSelect()
{
    SelectStmt stmt;
    if (acceptKeyword("COUNT")) {
        FASP_RETURN_IF_ERROR(expectSymbol("("));
        FASP_RETURN_IF_ERROR(expectSymbol("*"));
        FASP_RETURN_IF_ERROR(expectSymbol(")"));
        stmt.countStar = true;
    } else if (!acceptSymbol("*")) {
        do {
            FASP_ASSIGN_OR_RETURN(auto name, expectIdentifier());
            stmt.columns.push_back(std::move(name));
        } while (acceptSymbol(","));
    }
    FASP_RETURN_IF_ERROR(expectKeyword("FROM"));
    FASP_ASSIGN_OR_RETURN(stmt.table, expectIdentifier());
    if (acceptKeyword("WHERE")) {
        FASP_ASSIGN_OR_RETURN(stmt.where, parseExpr());
    }
    if (acceptKeyword("ORDER")) {
        FASP_RETURN_IF_ERROR(expectKeyword("BY"));
        FASP_ASSIGN_OR_RETURN(auto name, expectIdentifier());
        stmt.orderBy = std::move(name);
        if (acceptKeyword("DESC"))
            stmt.orderDesc = true;
        else
            acceptKeyword("ASC");
    }
    if (acceptKeyword("LIMIT")) {
        if (peek().type != TokenType::Integer)
            return err("expected integer after LIMIT");
        stmt.limit = static_cast<std::uint64_t>(advance().intValue);
    }
    Statement out;
    out.kind = StmtKind::Select;
    out.select = std::move(stmt);
    return out;
}

Result<Statement>
Parser::parseUpdate()
{
    UpdateStmt stmt;
    FASP_ASSIGN_OR_RETURN(stmt.table, expectIdentifier());
    FASP_RETURN_IF_ERROR(expectKeyword("SET"));
    do {
        FASP_ASSIGN_OR_RETURN(auto name, expectIdentifier());
        FASP_RETURN_IF_ERROR(expectSymbol("="));
        FASP_ASSIGN_OR_RETURN(auto expr, parseExpr());
        stmt.assignments.emplace_back(std::move(name),
                                      std::move(expr));
    } while (acceptSymbol(","));
    if (acceptKeyword("WHERE")) {
        FASP_ASSIGN_OR_RETURN(stmt.where, parseExpr());
    }
    Statement out;
    out.kind = StmtKind::Update;
    out.update = std::move(stmt);
    return out;
}

Result<Statement>
Parser::parseDelete()
{
    FASP_RETURN_IF_ERROR(expectKeyword("FROM"));
    DeleteStmt stmt;
    FASP_ASSIGN_OR_RETURN(stmt.table, expectIdentifier());
    if (acceptKeyword("WHERE")) {
        FASP_ASSIGN_OR_RETURN(stmt.where, parseExpr());
    }
    Statement out;
    out.kind = StmtKind::Delete;
    out.del = std::move(stmt);
    return out;
}

Result<std::unique_ptr<Expr>>
Parser::parseOr()
{
    FASP_ASSIGN_OR_RETURN(auto lhs, parseAnd());
    while (acceptKeyword("OR")) {
        FASP_ASSIGN_OR_RETURN(auto rhs, parseAnd());
        lhs = Expr::makeBinary(Op::Or, std::move(lhs), std::move(rhs));
    }
    return lhs;
}

Result<std::unique_ptr<Expr>>
Parser::parseAnd()
{
    FASP_ASSIGN_OR_RETURN(auto lhs, parseNot());
    while (acceptKeyword("AND")) {
        FASP_ASSIGN_OR_RETURN(auto rhs, parseNot());
        lhs = Expr::makeBinary(Op::And, std::move(lhs), std::move(rhs));
    }
    return lhs;
}

Result<std::unique_ptr<Expr>>
Parser::parseNot()
{
    if (acceptKeyword("NOT")) {
        FASP_ASSIGN_OR_RETURN(auto inner, parseNot());
        return Expr::makeUnary(Op::Not, std::move(inner));
    }
    return parseCmp();
}

Result<std::unique_ptr<Expr>>
Parser::parseCmp()
{
    FASP_ASSIGN_OR_RETURN(auto lhs, parseAdd());
    struct OpMap
    {
        const char *sym;
        Op op;
    };
    static const OpMap kOps[] = {
        {"=", Op::Eq},  {"!=", Op::Ne}, {"<=", Op::Le},
        {">=", Op::Ge}, {"<", Op::Lt},  {">", Op::Gt},
    };
    for (const OpMap &entry : kOps) {
        if (acceptSymbol(entry.sym)) {
            FASP_ASSIGN_OR_RETURN(auto rhs, parseAdd());
            return Expr::makeBinary(entry.op, std::move(lhs),
                                    std::move(rhs));
        }
    }
    if (acceptKeyword("BETWEEN")) {
        // x BETWEEN a AND b  ->  x >= a AND x <= b. The column
        // expression is shared structurally by deep-copying via a
        // second parse of... simpler: build both sides referencing
        // clones of lhs.
        FASP_ASSIGN_OR_RETURN(auto lo, parseAdd());
        FASP_RETURN_IF_ERROR(expectKeyword("AND"));
        FASP_ASSIGN_OR_RETURN(auto hi, parseAdd());

        // Clone the lhs column/literal (BETWEEN limited to simple
        // operands for clone simplicity).
        std::function<std::unique_ptr<Expr>(const Expr &)> clone =
            [&](const Expr &e) -> std::unique_ptr<Expr> {
            auto out = std::make_unique<Expr>();
            out->kind = e.kind;
            out->literal = e.literal;
            out->column = e.column;
            out->op = e.op;
            if (e.lhs)
                out->lhs = clone(*e.lhs);
            if (e.rhs)
                out->rhs = clone(*e.rhs);
            return out;
        };
        auto lhs2 = clone(*lhs);
        auto ge = Expr::makeBinary(Op::Ge, std::move(lhs),
                                   std::move(lo));
        auto le = Expr::makeBinary(Op::Le, std::move(lhs2),
                                   std::move(hi));
        return Expr::makeBinary(Op::And, std::move(ge), std::move(le));
    }
    return lhs;
}

Result<std::unique_ptr<Expr>>
Parser::parseAdd()
{
    FASP_ASSIGN_OR_RETURN(auto lhs, parseMul());
    while (true) {
        if (acceptSymbol("+")) {
            FASP_ASSIGN_OR_RETURN(auto rhs, parseMul());
            lhs = Expr::makeBinary(Op::Add, std::move(lhs),
                                   std::move(rhs));
        } else if (acceptSymbol("-")) {
            FASP_ASSIGN_OR_RETURN(auto rhs, parseMul());
            lhs = Expr::makeBinary(Op::Sub, std::move(lhs),
                                   std::move(rhs));
        } else {
            return lhs;
        }
    }
}

Result<std::unique_ptr<Expr>>
Parser::parseMul()
{
    FASP_ASSIGN_OR_RETURN(auto lhs, parseUnary());
    while (true) {
        if (acceptSymbol("*")) {
            FASP_ASSIGN_OR_RETURN(auto rhs, parseUnary());
            lhs = Expr::makeBinary(Op::Mul, std::move(lhs),
                                   std::move(rhs));
        } else if (acceptSymbol("/")) {
            FASP_ASSIGN_OR_RETURN(auto rhs, parseUnary());
            lhs = Expr::makeBinary(Op::Div, std::move(lhs),
                                   std::move(rhs));
        } else {
            return lhs;
        }
    }
}

Result<std::unique_ptr<Expr>>
Parser::parseUnary()
{
    if (acceptSymbol("-")) {
        FASP_ASSIGN_OR_RETURN(auto inner, parseUnary());
        return Expr::makeUnary(Op::Neg, std::move(inner));
    }
    return parsePrimary();
}

Result<std::unique_ptr<Expr>>
Parser::parsePrimary()
{
    const Token &token = peek();
    switch (token.type) {
      case TokenType::Integer:
        advance();
        return Expr::makeLiteral(Value::integer(token.intValue));
      case TokenType::Real:
        advance();
        return Expr::makeLiteral(Value::real(token.realValue));
      case TokenType::String:
        advance();
        return Expr::makeLiteral(Value::text(token.text));
      case TokenType::Blob:
        advance();
        return Expr::makeLiteral(Value::blob(token.blobValue));
      case TokenType::Identifier:
        advance();
        return Expr::makeColumn(token.text);
      case TokenType::Keyword:
        if (token.text == "NULL") {
            advance();
            return Expr::makeLiteral(Value::null());
        }
        break;
      case TokenType::Symbol:
        if (token.text == "(") {
            advance();
            FASP_ASSIGN_OR_RETURN(auto inner, parseExpr());
            FASP_RETURN_IF_ERROR(expectSymbol(")"));
            return inner;
        }
        break;
      default:
        break;
    }
    return err("expected expression");
}

} // namespace

Result<Statement>
parseStatement(const std::string &sql)
{
    FASP_ASSIGN_OR_RETURN(auto tokens, tokenize(sql));
    Parser parser(std::move(tokens));
    FASP_ASSIGN_OR_RETURN(auto stmt, parser.parse());
    return stmt;
}

} // namespace fasp::db
