#include "db/ast.h"

namespace fasp::db {

std::unique_ptr<Expr>
Expr::makeLiteral(Value v)
{
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::Literal;
    expr->literal = std::move(v);
    return expr;
}

std::unique_ptr<Expr>
Expr::makeColumn(std::string name)
{
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::ColumnRef;
    expr->column = std::move(name);
    return expr;
}

std::unique_ptr<Expr>
Expr::makeUnary(Op op, std::unique_ptr<Expr> x)
{
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::Unary;
    expr->op = op;
    expr->lhs = std::move(x);
    return expr;
}

std::unique_ptr<Expr>
Expr::makeBinary(Op op, std::unique_ptr<Expr> l, std::unique_ptr<Expr> r)
{
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::Binary;
    expr->op = op;
    expr->lhs = std::move(l);
    expr->rhs = std::move(r);
    return expr;
}

} // namespace fasp::db
