/**
 * @file
 * SQL value type: the dynamic datatype flowing through the SQL layer
 * (SQLite's NULL / INTEGER / REAL / TEXT / BLOB model).
 */

#ifndef FASP_DB_VALUE_H
#define FASP_DB_VALUE_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace fasp::db {

/** SQL datatype tags (also the serialized type bytes). */
enum class ValueType : std::uint8_t {
    Null = 0,
    Integer = 1,
    Real = 2,
    Text = 3,
    Blob = 4,
};

const char *valueTypeName(ValueType type);

/**
 * One SQL value.
 */
class Value
{
  public:
    /** NULL. */
    Value() : data_(std::monostate{}) {}

    static Value null() { return Value(); }

    static Value integer(std::int64_t v)
    {
        Value out;
        out.data_ = v;
        return out;
    }

    static Value real(double v)
    {
        Value out;
        out.data_ = v;
        return out;
    }

    static Value text(std::string v)
    {
        Value out;
        out.data_ = std::move(v);
        return out;
    }

    static Value blob(std::vector<std::uint8_t> v)
    {
        Value out;
        out.data_ = std::move(v);
        return out;
    }

    ValueType type() const
    {
        return static_cast<ValueType>(data_.index());
    }

    bool isNull() const { return type() == ValueType::Null; }

    /** Integer content; 0 for non-integers (check type() first). */
    std::int64_t asInteger() const;

    /** Numeric content with int->real coercion. */
    double asReal() const;

    const std::string &asText() const;
    const std::vector<std::uint8_t> &asBlob() const;

    /** SQL-style three-way comparison with numeric coercion across
     *  Integer/Real. Cross-type order: Null < numbers < Text < Blob
     *  (SQLite's ordering). */
    int compare(const Value &other) const;

    bool operator==(const Value &other) const
    {
        return compare(other) == 0;
    }

    /** Truthiness for WHERE: non-zero numeric; NULL and others false. */
    bool truthy() const;

    /** Render for result display ("NULL", 42, 3.5, 'abc', x'0ff0'). */
    std::string toString() const;

  private:
    std::variant<std::monostate, std::int64_t, double, std::string,
                 std::vector<std::uint8_t>>
        data_;
};

} // namespace fasp::db

#endif // FASP_DB_VALUE_H
