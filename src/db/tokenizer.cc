#include "db/tokenizer.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>

namespace fasp::db {

namespace {

const std::array<const char *, 32> kKeywords = {
    "CREATE", "TABLE",  "DROP",   "INSERT", "INTO",   "VALUES",
    "SELECT", "FROM",   "WHERE",  "UPDATE", "SET",    "DELETE",
    "BEGIN",  "COMMIT", "ROLLBACK", "AND",  "OR",     "NOT",
    "NULL",   "INTEGER", "REAL",  "TEXT",   "BLOB",   "PRIMARY",
    "KEY",    "ORDER",  "BY",     "ASC",    "DESC",   "LIMIT",
    "BETWEEN", "COUNT",
};

bool
isKeyword(const std::string &upper)
{
    return std::find_if(kKeywords.begin(), kKeywords.end(),
                        [&](const char *kw) { return upper == kw; }) !=
           kKeywords.end();
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

Result<std::vector<Token>>
tokenize(const std::string &sql)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    const std::size_t n = sql.size();

    auto error = [&](const std::string &message) {
        return statusParseError(message + " at offset " +
                                std::to_string(i));
    };

    while (i < n) {
        char c = sql[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // -- comment to end of line.
        if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
            while (i < n && sql[i] != '\n')
                ++i;
            continue;
        }

        Token token;
        token.position = i;

        // Blob literal x'....'
        if ((c == 'x' || c == 'X') && i + 1 < n && sql[i + 1] == '\'') {
            i += 2;
            token.type = TokenType::Blob;
            while (i + 1 < n && sql[i] != '\'') {
                int hi = hexDigit(sql[i]);
                int lo = hexDigit(sql[i + 1]);
                if (hi < 0 || lo < 0)
                    return error("bad hex digit in blob literal");
                token.blobValue.push_back(
                    static_cast<std::uint8_t>(hi * 16 + lo));
                i += 2;
            }
            if (i >= n || sql[i] != '\'')
                return error("unterminated blob literal");
            ++i;
            tokens.push_back(std::move(token));
            continue;
        }

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = i;
            while (i < n &&
                   (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                    sql[i] == '_')) {
                ++i;
            }
            std::string word = sql.substr(start, i - start);
            std::string upper = word;
            std::transform(upper.begin(), upper.end(), upper.begin(),
                           [](unsigned char ch) {
                               return std::toupper(ch);
                           });
            if (isKeyword(upper)) {
                token.type = TokenType::Keyword;
                token.text = upper;
            } else {
                token.type = TokenType::Identifier;
                token.text = word;
            }
            tokens.push_back(std::move(token));
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
            std::size_t start = i;
            bool is_real = false;
            while (i < n &&
                   (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                    sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
                    ((sql[i] == '+' || sql[i] == '-') && i > start &&
                     (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
                if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E')
                    is_real = true;
                ++i;
            }
            std::string num = sql.substr(start, i - start);
            token.text = num;
            if (is_real) {
                token.type = TokenType::Real;
                token.realValue = std::strtod(num.c_str(), nullptr);
            } else {
                token.type = TokenType::Integer;
                token.intValue = std::strtoll(num.c_str(), nullptr, 10);
            }
            tokens.push_back(std::move(token));
            continue;
        }

        if (c == '\'') {
            ++i;
            token.type = TokenType::String;
            while (i < n) {
                if (sql[i] == '\'') {
                    if (i + 1 < n && sql[i + 1] == '\'') {
                        token.text += '\''; // escaped quote
                        i += 2;
                        continue;
                    }
                    break;
                }
                token.text += sql[i++];
            }
            if (i >= n || sql[i] != '\'')
                return error("unterminated string literal");
            ++i;
            tokens.push_back(std::move(token));
            continue;
        }

        // Multi-char symbols first.
        auto symbol = [&](const std::string &text) {
            token.type = TokenType::Symbol;
            token.text = text;
            i += text.size();
            tokens.push_back(token);
        };
        if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
            symbol("!=");
            continue;
        }
        if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
            symbol("!=");
            i = token.position + 2;
            continue;
        }
        if (c == '<' && i + 1 < n && sql[i + 1] == '=') {
            symbol("<=");
            continue;
        }
        if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
            symbol(">=");
            continue;
        }
        if (std::string("(),;=<>*+-/").find(c) != std::string::npos) {
            symbol(std::string(1, c));
            continue;
        }
        return error(std::string("unexpected character '") + c + "'");
    }

    Token end;
    end.type = TokenType::End;
    end.position = n;
    tokens.push_back(end);
    return tokens;
}

} // namespace fasp::db
