#include "db/row_codec.h"

#include <cstring>

#include "common/byte_io.h"

namespace fasp::db {

void
encodeRow(const Row &row, std::vector<std::uint8_t> &out)
{
    out.clear();
    out.resize(2);
    storeU16(out.data(), static_cast<std::uint16_t>(row.size()));

    auto append = [&](const void *src, std::size_t len) {
        const auto *bytes = static_cast<const std::uint8_t *>(src);
        out.insert(out.end(), bytes, bytes + len);
    };

    for (const Value &value : row) {
        out.push_back(static_cast<std::uint8_t>(value.type()));
        switch (value.type()) {
          case ValueType::Null:
            break;
          case ValueType::Integer: {
            std::uint8_t buf[8];
            storeU64(buf,
                     static_cast<std::uint64_t>(value.asInteger()));
            append(buf, 8);
            break;
          }
          case ValueType::Real: {
            double d = value.asReal();
            std::uint64_t bits;
            std::memcpy(&bits, &d, 8);
            std::uint8_t buf[8];
            storeU64(buf, bits);
            append(buf, 8);
            break;
          }
          case ValueType::Text: {
            const std::string &text = value.asText();
            std::uint8_t buf[4];
            storeU32(buf, static_cast<std::uint32_t>(text.size()));
            append(buf, 4);
            append(text.data(), text.size());
            break;
          }
          case ValueType::Blob: {
            const auto &blob = value.asBlob();
            std::uint8_t buf[4];
            storeU32(buf, static_cast<std::uint32_t>(blob.size()));
            append(buf, 4);
            append(blob.data(), blob.size());
            break;
          }
        }
    }
}

Status
decodeRow(const std::vector<std::uint8_t> &bytes, Row &row)
{
    row.clear();
    if (bytes.size() < 2)
        return statusCorruption("row too short");
    std::uint16_t ncols = loadU16(bytes.data());
    std::size_t cursor = 2;
    row.reserve(ncols);

    auto need = [&](std::size_t n) {
        return cursor + n <= bytes.size();
    };

    for (std::uint16_t i = 0; i < ncols; ++i) {
        if (!need(1))
            return statusCorruption("row truncated at type tag");
        auto type = static_cast<ValueType>(bytes[cursor++]);
        switch (type) {
          case ValueType::Null:
            row.push_back(Value::null());
            break;
          case ValueType::Integer: {
            if (!need(8))
                return statusCorruption("row truncated at integer");
            row.push_back(Value::integer(static_cast<std::int64_t>(
                loadU64(bytes.data() + cursor))));
            cursor += 8;
            break;
          }
          case ValueType::Real: {
            if (!need(8))
                return statusCorruption("row truncated at real");
            std::uint64_t bits = loadU64(bytes.data() + cursor);
            double d;
            std::memcpy(&d, &bits, 8);
            row.push_back(Value::real(d));
            cursor += 8;
            break;
          }
          case ValueType::Text: {
            if (!need(4))
                return statusCorruption("row truncated at text len");
            std::uint32_t len = loadU32(bytes.data() + cursor);
            cursor += 4;
            if (!need(len))
                return statusCorruption("row truncated at text");
            row.push_back(Value::text(std::string(
                reinterpret_cast<const char *>(bytes.data() + cursor),
                len)));
            cursor += len;
            break;
          }
          case ValueType::Blob: {
            if (!need(4))
                return statusCorruption("row truncated at blob len");
            std::uint32_t len = loadU32(bytes.data() + cursor);
            cursor += 4;
            if (!need(len))
                return statusCorruption("row truncated at blob");
            row.push_back(Value::blob(std::vector<std::uint8_t>(
                bytes.begin() + cursor, bytes.begin() + cursor + len)));
            cursor += len;
            break;
          }
          default:
            return statusCorruption("unknown value type tag");
        }
    }
    return Status::ok();
}

} // namespace fasp::db
