#include "db/database.h"

#include "db/parser.h"
#include "pm/device.h"
#include "pm/phase.h"

namespace fasp::db {

Result<std::unique_ptr<Database>>
Database::open(pm::PmDevice &device, const core::EngineConfig &config,
               bool format)
{
    auto engine = core::Engine::create(device, config, format);
    if (!engine.isOk())
        return engine.status();
    std::unique_ptr<Database> db(new Database(std::move(*engine)));
    if (format)
        FASP_RETURN_IF_ERROR(db->catalog_.initFresh());
    return db;
}

Result<ResultSet>
Database::execScript(const std::string &script)
{
    ResultSet last;
    std::size_t start = 0;
    bool in_string = false;
    for (std::size_t i = 0; i <= script.size(); ++i) {
        bool at_end = i == script.size();
        if (!at_end && script[i] == '\'')
            in_string = !in_string;
        if (!at_end && (script[i] != ';' || in_string))
            continue;
        std::string stmt = script.substr(start, i - start);
        start = i + 1;
        // Skip empty / whitespace-only fragments.
        if (stmt.find_first_not_of(" \t\r\n") == std::string::npos)
            continue;
        auto result = exec(stmt);
        if (!result.isOk())
            return result.status();
        last = std::move(*result);
    }
    return last;
}

Result<ResultSet>
Database::exec(const std::string &sql)
{
    // SQL front-end time: parsing (Figures 11-12 measure the full
    // query path including this fixed software overhead).
    pm::PhaseTracker *tracker = engine_->device().phaseTracker();
    Statement stmt{};
    {
        pm::PhaseScope phase(tracker, pm::Component::SqlFrontend);
        auto parsed = parseStatement(sql);
        if (!parsed.isOk())
            return parsed.status();
        stmt = std::move(*parsed);
    }

    switch (stmt.kind) {
      case StmtKind::Begin:
        if (current_)
            return statusInvalid("already in a transaction");
        current_ = engine_->begin();
        return ResultSet{};

      case StmtKind::Commit: {
        if (!current_)
            return statusInvalid("no transaction to commit");
        Status status = current_->commit();
        current_.reset();
        if (!status.isOk()) {
            catalog_.invalidate();
            return status;
        }
        return ResultSet{};
      }

      case StmtKind::Rollback:
        if (!current_)
            return statusInvalid("no transaction to roll back");
        current_->rollback();
        current_.reset();
        catalog_.invalidate(); // DDL inside the tx may have been undone
        return ResultSet{};

      default:
        break;
    }

    if (current_) {
        // Inside an explicit transaction: execute and leave the commit
        // to the user. Errors do not auto-rollback (SQLite keeps the
        // transaction open too).
        return executor_.execute(*current_, stmt);
    }

    // Auto-commit statement: its own transaction.
    auto tx = engine_->begin();
    auto result = executor_.execute(*tx, stmt);
    if (!result.isOk()) {
        tx->rollback();
        catalog_.invalidate();
        return result;
    }
    Status status = tx->commit();
    if (!status.isOk()) {
        catalog_.invalidate();
        return status;
    }
    return result;
}

} // namespace fasp::db
