/**
 * @file
 * Recursive-descent parser for the fasp SQL subset:
 *
 *   CREATE TABLE t (c INTEGER PRIMARY KEY, d TEXT, ...)
 *   DROP TABLE t
 *   INSERT INTO t VALUES (...), (...)
 *   SELECT [* | cols] FROM t [WHERE e] [ORDER BY c [ASC|DESC]]
 *          [LIMIT n]
 *   UPDATE t SET c = e [, ...] [WHERE e]
 *   DELETE FROM t [WHERE e]
 *   BEGIN / COMMIT / ROLLBACK
 *
 * Expressions: literals, column refs, comparison operators, BETWEEN,
 * AND/OR/NOT, + - * /, parentheses.
 */

#ifndef FASP_DB_PARSER_H
#define FASP_DB_PARSER_H

#include <string>

#include "common/status.h"
#include "db/ast.h"

namespace fasp::db {

/** Parse one SQL statement (a trailing ';' is allowed). */
Result<Statement> parseStatement(const std::string &sql);

} // namespace fasp::db

#endif // FASP_DB_PARSER_H
