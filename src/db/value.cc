#include "db/value.h"

#include <cinttypes>
#include <cstdio>

#include "common/logging.h"

namespace fasp::db {

const char *
valueTypeName(ValueType type)
{
    switch (type) {
      case ValueType::Null: return "NULL";
      case ValueType::Integer: return "INTEGER";
      case ValueType::Real: return "REAL";
      case ValueType::Text: return "TEXT";
      case ValueType::Blob: return "BLOB";
    }
    return "?";
}

std::int64_t
Value::asInteger() const
{
    if (type() == ValueType::Integer)
        return std::get<std::int64_t>(data_);
    if (type() == ValueType::Real)
        return static_cast<std::int64_t>(std::get<double>(data_));
    return 0;
}

double
Value::asReal() const
{
    if (type() == ValueType::Real)
        return std::get<double>(data_);
    if (type() == ValueType::Integer)
        return static_cast<double>(std::get<std::int64_t>(data_));
    return 0.0;
}

const std::string &
Value::asText() const
{
    static const std::string empty;
    if (type() == ValueType::Text)
        return std::get<std::string>(data_);
    return empty;
}

const std::vector<std::uint8_t> &
Value::asBlob() const
{
    static const std::vector<std::uint8_t> empty;
    if (type() == ValueType::Blob)
        return std::get<std::vector<std::uint8_t>>(data_);
    return empty;
}

namespace {

/** Cross-type rank per SQLite: NULL < numeric < TEXT < BLOB. */
int
typeRank(ValueType type)
{
    switch (type) {
      case ValueType::Null: return 0;
      case ValueType::Integer:
      case ValueType::Real: return 1;
      case ValueType::Text: return 2;
      case ValueType::Blob: return 3;
    }
    return 4;
}

template <typename T>
int
threeWay(const T &a, const T &b)
{
    if (a < b)
        return -1;
    if (b < a)
        return 1;
    return 0;
}

} // namespace

int
Value::compare(const Value &other) const
{
    int rank_a = typeRank(type());
    int rank_b = typeRank(other.type());
    if (rank_a != rank_b)
        return rank_a < rank_b ? -1 : 1;

    switch (type()) {
      case ValueType::Null:
        return 0;
      case ValueType::Integer:
      case ValueType::Real:
        if (type() == ValueType::Integer &&
            other.type() == ValueType::Integer) {
            return threeWay(asInteger(), other.asInteger());
        }
        return threeWay(asReal(), other.asReal());
      case ValueType::Text:
        return threeWay(asText(), other.asText());
      case ValueType::Blob:
        return threeWay(asBlob(), other.asBlob());
    }
    return 0;
}

bool
Value::truthy() const
{
    switch (type()) {
      case ValueType::Integer: return asInteger() != 0;
      case ValueType::Real: return asReal() != 0.0;
      default: return false;
    }
}

std::string
Value::toString() const
{
    switch (type()) {
      case ValueType::Null:
        return "NULL";
      case ValueType::Integer: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64, asInteger());
        return buf;
      }
      case ValueType::Real: {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.12g", asReal());
        return buf;
      }
      case ValueType::Text:
        return "'" + asText() + "'";
      case ValueType::Blob: {
        std::string out = "x'";
        for (std::uint8_t b : asBlob()) {
            char hex[3];
            std::snprintf(hex, sizeof(hex), "%02x", b);
            out += hex;
        }
        out += "'";
        return out;
      }
    }
    return "?";
}

} // namespace fasp::db
