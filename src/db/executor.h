/**
 * @file
 * Executor: runs parsed statements against the storage engine.
 *
 * The planner is deliberately SQLite-simple: point lookups and range
 * scans on the rowid / INTEGER PRIMARY KEY (extracted from conjunctive
 * WHERE terms), full scans with predicate filtering otherwise.
 */

#ifndef FASP_DB_EXECUTOR_H
#define FASP_DB_EXECUTOR_H

#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "db/ast.h"
#include "db/catalog.h"
#include "db/row_codec.h"

namespace fasp::db {

/** Result of one statement. */
struct ResultSet
{
    std::vector<std::string> columns;
    std::vector<Row> rows;
    std::uint64_t affected = 0; //!< rows written/deleted (DML)

    /** Render as an aligned ASCII table (examples / debugging). */
    std::string toString() const;
};

/**
 * Statement executor bound to an engine and its catalog.
 */
class Executor
{
  public:
    Executor(core::Engine &engine, Catalog &catalog)
        : engine_(engine), catalog_(catalog)
    {}

    /** Execute @p stmt inside @p tx (Begin/Commit/Rollback are the
     *  Database facade's job and are rejected here). */
    Result<ResultSet> execute(core::Transaction &tx,
                              const Statement &stmt);

  private:
    /** Rowid bounds extracted from a WHERE clause. */
    struct KeyRange
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = ~std::uint64_t{0};
        bool impossible = false; //!< e.g. pk = 3 AND pk = 5
    };

    Result<ResultSet> executeCreate(core::Transaction &tx,
                                    const CreateTableStmt &stmt);
    Result<ResultSet> executeDrop(core::Transaction &tx,
                                  const DropTableStmt &stmt);
    Result<ResultSet> executeInsert(core::Transaction &tx,
                                    const InsertStmt &stmt);
    Result<ResultSet> executeSelect(core::Transaction &tx,
                                    const SelectStmt &stmt);
    Result<ResultSet> executeUpdate(core::Transaction &tx,
                                    const UpdateStmt &stmt);
    Result<ResultSet> executeDelete(core::Transaction &tx,
                                    const DeleteStmt &stmt);

    /** Evaluate @p expr against @p row (may be null for INSERT). */
    Result<Value> eval(const Expr &expr, const TableSchema *schema,
                       const Row *row);

    /** Narrow the scan using pk comparisons in conjunctive terms. */
    static KeyRange extractKeyRange(const Expr *where,
                                    const TableSchema &schema);

    /** Collect (rowid, row) pairs matching @p where. */
    Status collectMatches(
        core::Transaction &tx, const TableSchema &schema,
        const Expr *where,
        std::vector<std::pair<std::uint64_t, Row>> &out);

    /** Rowid for a new row: pk column value or max+1. */
    Result<std::uint64_t> rowidForInsert(core::Transaction &tx,
                                         btree::BTree &tree,
                                         const TableSchema &schema,
                                         const Row &row);

    core::Engine &engine_;
    Catalog &catalog_;
};

} // namespace fasp::db

#endif // FASP_DB_EXECUTOR_H
