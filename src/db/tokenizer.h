/**
 * @file
 * SQL tokenizer for the fasp SQL subset.
 */

#ifndef FASP_DB_TOKENIZER_H
#define FASP_DB_TOKENIZER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fasp::db {

/** Lexical token categories. */
enum class TokenType : std::uint8_t {
    Keyword,    //!< case-insensitive SQL keyword (uppercased text)
    Identifier, //!< table / column name
    Integer,    //!< integer literal
    Real,       //!< floating literal
    String,     //!< 'quoted' text literal (unescaped content)
    Blob,       //!< x'hex' literal (decoded bytes in blobValue)
    Symbol,     //!< punctuation / operator: ( ) , ; = != < <= > >= * + - /
    End,        //!< end of input
};

/** One token. */
struct Token
{
    TokenType type = TokenType::End;
    std::string text;                     //!< raw (keywords uppercased)
    std::int64_t intValue = 0;
    double realValue = 0.0;
    std::vector<std::uint8_t> blobValue;
    std::size_t position = 0;             //!< byte offset for errors
};

/**
 * Tokenize @p sql. Keywords are recognized from a fixed list and
 * uppercased; anything else alphanumeric is an Identifier.
 * @return the token list ending with an End token, or ParseError.
 */
Result<std::vector<Token>> tokenize(const std::string &sql);

} // namespace fasp::db

#endif // FASP_DB_TOKENIZER_H
