/**
 * @file
 * Row serialization: a row (vector of Values) to/from the byte payload
 * stored in a B-tree leaf record.
 *
 * Format: [u16 ncols] then per column
 *   [u8 type][payload]: Integer = 8 bytes LE; Real = 8-byte IEEE bits;
 *   Text/Blob = u32 length + bytes; Null = nothing.
 */

#ifndef FASP_DB_ROW_CODEC_H
#define FASP_DB_ROW_CODEC_H

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "db/value.h"

namespace fasp::db {

using Row = std::vector<Value>;

/** Serialize @p row into @p out (replaced). */
void encodeRow(const Row &row, std::vector<std::uint8_t> &out);

/** Deserialize @p bytes into @p row; Corruption on malformed input. */
Status decodeRow(const std::vector<std::uint8_t> &bytes, Row &row);

} // namespace fasp::db

#endif // FASP_DB_ROW_CODEC_H
