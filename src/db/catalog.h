/**
 * @file
 * Catalog: table schemas stored durably in a dedicated catalog B-tree
 * (tree id 1), the way SQLite stores schemas in sqlite_master.
 *
 * Catalog records are keyed by the table's tree id and hold the
 * serialized schema (encoded with the ordinary row codec), so schema
 * changes are transactional exactly like data changes.
 */

#ifndef FASP_DB_CATALOG_H
#define FASP_DB_CATALOG_H

#include <map>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/status.h"
#include "core/engine.h"
#include "db/ast.h"

namespace fasp::db {

/** A table's schema as stored in the catalog. */
struct TableSchema
{
    std::string name;
    TreeId treeId = 0;
    std::vector<ColumnDef> columns;
    int pkColumn = -1; //!< INTEGER PRIMARY KEY column index; -1 = rowid

    /** Index of @p column_name, or -1. */
    int columnIndex(const std::string &column_name) const;
};

/**
 * Schema manager over one engine. Caches schemas in memory; the cache
 * is rebuilt lazily after invalidation (DDL or recovery).
 */
class Catalog
{
  public:
    static constexpr TreeId kCatalogTree = 1;
    static constexpr TreeId kFirstTableTree = 2;

    explicit Catalog(core::Engine &engine) : engine_(engine) {}

    /** Create the catalog tree on a freshly formatted database. */
    Status initFresh();

    /** Look up a table; NotFound if absent. */
    Result<TableSchema> get(core::Transaction &tx,
                            const std::string &table);

    /** Create @p stmt's table: allocate a tree id, create the B-tree,
     *  persist the schema. AlreadyExists on duplicates. */
    Result<TableSchema> create(core::Transaction &tx,
                               const CreateTableStmt &stmt);

    /** Drop a table: delete its B-tree and catalog record. */
    Status drop(core::Transaction &tx, const std::string &table);

    /** List all table names (sorted). */
    Result<std::vector<std::string>> tables(core::Transaction &tx);

    /** Drop the in-memory schema cache (after rollback/recovery). */
    void invalidate() { loaded_ = false; }

  private:
    Status loadAll(core::Transaction &tx);

    core::Engine &engine_;
    std::map<std::string, TableSchema> cache_;
    bool loaded_ = false;
};

} // namespace fasp::db

#endif // FASP_DB_CATALOG_H
