#include "db/executor.h"

#include <algorithm>

#include "btree/btree.h"

namespace fasp::db {

using btree::BTree;

std::string
ResultSet::toString() const
{
    // Render every cell first to compute column widths.
    std::vector<std::vector<std::string>> cells;
    cells.reserve(rows.size());
    for (const Row &row : rows) {
        std::vector<std::string> line;
        line.reserve(row.size());
        for (const Value &value : row)
            line.push_back(value.toString());
        cells.push_back(std::move(line));
    }
    std::vector<std::size_t> widths(columns.size(), 0);
    for (std::size_t c = 0; c < columns.size(); ++c)
        widths[c] = columns[c].size();
    for (const auto &line : cells) {
        for (std::size_t c = 0; c < line.size() && c < widths.size();
             ++c) {
            widths[c] = std::max(widths[c], line[c].size());
        }
    }

    std::string out;
    auto emit_row = [&](const std::vector<std::string> &line) {
        for (std::size_t c = 0; c < line.size(); ++c) {
            out += line[c];
            if (c + 1 < line.size()) {
                out.append(widths[c] >= line[c].size()
                               ? widths[c] - line[c].size() + 2
                               : 2,
                           ' ');
            }
        }
        out += '\n';
    };
    if (!columns.empty()) {
        emit_row(columns);
        std::vector<std::string> rule;
        for (std::size_t w : widths)
            rule.push_back(std::string(w, '-'));
        emit_row(rule);
    }
    for (const auto &line : cells)
        emit_row(line);
    return out;
}

Result<ResultSet>
Executor::execute(core::Transaction &tx, const Statement &stmt)
{
    switch (stmt.kind) {
      case StmtKind::CreateTable:
        return executeCreate(tx, *stmt.createTable);
      case StmtKind::DropTable:
        return executeDrop(tx, *stmt.dropTable);
      case StmtKind::Insert:
        return executeInsert(tx, *stmt.insert);
      case StmtKind::Select:
        return executeSelect(tx, *stmt.select);
      case StmtKind::Update:
        return executeUpdate(tx, *stmt.update);
      case StmtKind::Delete:
        return executeDelete(tx, *stmt.del);
      case StmtKind::Begin:
      case StmtKind::Commit:
      case StmtKind::Rollback:
        return statusInvalid("transaction control handled by Database");
    }
    return statusInvalid("unknown statement kind");
}

Result<ResultSet>
Executor::executeCreate(core::Transaction &tx,
                        const CreateTableStmt &stmt)
{
    auto schema = catalog_.create(tx, stmt);
    if (!schema.isOk())
        return schema.status();
    return ResultSet{};
}

Result<ResultSet>
Executor::executeDrop(core::Transaction &tx, const DropTableStmt &stmt)
{
    FASP_RETURN_IF_ERROR(catalog_.drop(tx, stmt.table));
    return ResultSet{};
}

Result<Value>
Executor::eval(const Expr &expr, const TableSchema *schema,
               const Row *row)
{
    switch (expr.kind) {
      case ExprKind::Literal:
        return expr.literal;

      case ExprKind::ColumnRef: {
        if (!schema || !row)
            return statusInvalid("column reference outside a row "
                                 "context: " +
                                 expr.column);
        int index = schema->columnIndex(expr.column);
        if (index < 0)
            return statusInvalid("no such column: " + expr.column);
        if (static_cast<std::size_t>(index) >= row->size())
            return statusCorruption("row narrower than schema");
        return (*row)[index];
      }

      case ExprKind::Unary: {
        FASP_ASSIGN_OR_RETURN(Value inner,
                              eval(*expr.lhs, schema, row));
        if (expr.op == Op::Not)
            return Value::integer(inner.truthy() ? 0 : 1);
        if (expr.op == Op::Neg) {
            if (inner.type() == ValueType::Integer)
                return Value::integer(-inner.asInteger());
            return Value::real(-inner.asReal());
        }
        return statusInvalid("bad unary operator");
      }

      case ExprKind::Binary: {
        // Short-circuit logic operators.
        if (expr.op == Op::And || expr.op == Op::Or) {
            FASP_ASSIGN_OR_RETURN(Value lhs,
                                  eval(*expr.lhs, schema, row));
            bool lt = lhs.truthy();
            if (expr.op == Op::And && !lt)
                return Value::integer(0);
            if (expr.op == Op::Or && lt)
                return Value::integer(1);
            FASP_ASSIGN_OR_RETURN(Value rhs,
                                  eval(*expr.rhs, schema, row));
            return Value::integer(rhs.truthy() ? 1 : 0);
        }

        FASP_ASSIGN_OR_RETURN(Value lhs, eval(*expr.lhs, schema, row));
        FASP_ASSIGN_OR_RETURN(Value rhs, eval(*expr.rhs, schema, row));

        switch (expr.op) {
          case Op::Eq:
            return Value::integer(lhs.compare(rhs) == 0 ? 1 : 0);
          case Op::Ne:
            return Value::integer(lhs.compare(rhs) != 0 ? 1 : 0);
          case Op::Lt:
            return Value::integer(lhs.compare(rhs) < 0 ? 1 : 0);
          case Op::Le:
            return Value::integer(lhs.compare(rhs) <= 0 ? 1 : 0);
          case Op::Gt:
            return Value::integer(lhs.compare(rhs) > 0 ? 1 : 0);
          case Op::Ge:
            return Value::integer(lhs.compare(rhs) >= 0 ? 1 : 0);
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
          case Op::Div: {
            bool both_int = lhs.type() == ValueType::Integer &&
                            rhs.type() == ValueType::Integer;
            if (both_int) {
                std::int64_t a = lhs.asInteger();
                std::int64_t b = rhs.asInteger();
                switch (expr.op) {
                  case Op::Add: return Value::integer(a + b);
                  case Op::Sub: return Value::integer(a - b);
                  case Op::Mul: return Value::integer(a * b);
                  case Op::Div:
                    if (b == 0)
                        return Value::null();
                    return Value::integer(a / b);
                  default: break;
                }
            }
            double a = lhs.asReal();
            double b = rhs.asReal();
            switch (expr.op) {
              case Op::Add: return Value::real(a + b);
              case Op::Sub: return Value::real(a - b);
              case Op::Mul: return Value::real(a * b);
              case Op::Div:
                if (b == 0.0)
                    return Value::null();
                return Value::real(a / b);
              default: break;
            }
            break;
          }
          default:
            break;
        }
        return statusInvalid("bad binary operator");
      }
    }
    return statusInvalid("bad expression");
}

Executor::KeyRange
Executor::extractKeyRange(const Expr *where, const TableSchema &schema)
{
    KeyRange range;
    if (!where || schema.pkColumn < 0)
        return range;
    const std::string &pk = schema.columns[schema.pkColumn].name;

    // Walk conjunctive terms only: AND nodes and pk-vs-literal leaves.
    std::vector<const Expr *> stack{where};
    while (!stack.empty()) {
        const Expr *expr = stack.back();
        stack.pop_back();
        if (expr->kind != ExprKind::Binary)
            continue;
        if (expr->op == Op::And) {
            stack.push_back(expr->lhs.get());
            stack.push_back(expr->rhs.get());
            continue;
        }
        // pk <op> literal (or literal <op> pk).
        const Expr *col = nullptr;
        const Expr *lit = nullptr;
        bool flipped = false;
        if (expr->lhs->kind == ExprKind::ColumnRef &&
            expr->rhs->kind == ExprKind::Literal) {
            col = expr->lhs.get();
            lit = expr->rhs.get();
        } else if (expr->rhs->kind == ExprKind::ColumnRef &&
                   expr->lhs->kind == ExprKind::Literal) {
            col = expr->rhs.get();
            lit = expr->lhs.get();
            flipped = true;
        } else {
            continue;
        }
        if (col->column != pk ||
            lit->literal.type() != ValueType::Integer) {
            continue;
        }
        std::int64_t raw = lit->literal.asInteger();
        if (raw < 0) {
            // Negative rowids never match (rowids are unsigned here).
            range.impossible = true;
            continue;
        }
        auto key = static_cast<std::uint64_t>(raw);

        Op op = expr->op;
        if (flipped) {
            switch (op) {
              case Op::Lt: op = Op::Gt; break;
              case Op::Le: op = Op::Ge; break;
              case Op::Gt: op = Op::Lt; break;
              case Op::Ge: op = Op::Le; break;
              default: break;
            }
        }
        switch (op) {
          case Op::Eq:
            range.lo = std::max(range.lo, key);
            range.hi = std::min(range.hi, key);
            break;
          case Op::Le:
            range.hi = std::min(range.hi, key);
            break;
          case Op::Lt:
            range.hi = std::min(range.hi,
                                key == 0 ? 0 : key - 1);
            if (key == 0)
                range.impossible = true;
            break;
          case Op::Ge:
            range.lo = std::max(range.lo, key);
            break;
          case Op::Gt:
            if (key == ~std::uint64_t{0})
                range.impossible = true;
            else
                range.lo = std::max(range.lo, key + 1);
            break;
          default:
            break;
        }
    }
    if (range.lo > range.hi)
        range.impossible = true;
    return range;
}

Status
Executor::collectMatches(
    core::Transaction &tx, const TableSchema &schema, const Expr *where,
    std::vector<std::pair<std::uint64_t, Row>> &out)
{
    auto tree = BTree::open(tx.pageIO(), schema.treeId);
    if (!tree.isOk())
        return tree.status();

    KeyRange range = extractKeyRange(where, schema);
    if (range.impossible)
        return Status::ok();

    Status inner;
    Status status = tree->scan(
        tx.pageIO(), range.lo, range.hi,
        [&](std::uint64_t rowid, std::span<const std::uint8_t> bytes) {
            Row row;
            std::vector<std::uint8_t> copy(bytes.begin(), bytes.end());
            inner = decodeRow(copy, row);
            if (!inner.isOk())
                return false;
            if (where) {
                auto verdict = eval(*where, &schema, &row);
                if (!verdict.isOk()) {
                    inner = verdict.status();
                    return false;
                }
                if (!verdict->truthy())
                    return true;
            }
            out.emplace_back(rowid, std::move(row));
            return true;
        });
    FASP_RETURN_IF_ERROR(status);
    return inner;
}

Result<std::uint64_t>
Executor::rowidForInsert(core::Transaction &tx, btree::BTree &tree,
                         const TableSchema &schema, const Row &row)
{
    if (schema.pkColumn >= 0) {
        const Value &pk =
            row[static_cast<std::size_t>(schema.pkColumn)];
        if (pk.type() != ValueType::Integer)
            return statusInvalid("PRIMARY KEY must be an integer");
        std::int64_t raw = pk.asInteger();
        if (raw < 0)
            return statusInvalid("negative rowids unsupported");
        return static_cast<std::uint64_t>(raw);
    }
    // Implicit rowid: max + 1 (SQLite's default allocation).
    auto max = tree.maxKey(tx.pageIO());
    if (!max.isOk()) {
        if (max.status().code() == StatusCode::NotFound)
            return std::uint64_t{1};
        return max.status();
    }
    return *max + 1;
}

Result<ResultSet>
Executor::executeInsert(core::Transaction &tx, const InsertStmt &stmt)
{
    FASP_ASSIGN_OR_RETURN(TableSchema schema,
                          catalog_.get(tx, stmt.table));
    auto tree = BTree::open(tx.pageIO(), schema.treeId);
    if (!tree.isOk())
        return tree.status();

    ResultSet result;
    std::vector<std::uint8_t> payload;
    for (const auto &exprs : stmt.rows) {
        if (exprs.size() != schema.columns.size()) {
            return statusInvalid(
                "INSERT value count does not match column count");
        }
        Row row;
        row.reserve(exprs.size());
        for (const auto &expr : exprs) {
            FASP_ASSIGN_OR_RETURN(Value value,
                                  eval(*expr, nullptr, nullptr));
            row.push_back(std::move(value));
        }
        FASP_ASSIGN_OR_RETURN(
            std::uint64_t rowid,
            rowidForInsert(tx, *tree, schema, row));
        encodeRow(row, payload);
        FASP_RETURN_IF_ERROR(tree->insert(
            tx.pageIO(), rowid,
            std::span<const std::uint8_t>(payload)));
        result.affected++;
    }
    return result;
}

Result<ResultSet>
Executor::executeSelect(core::Transaction &tx, const SelectStmt &stmt)
{
    FASP_ASSIGN_OR_RETURN(TableSchema schema,
                          catalog_.get(tx, stmt.table));

    if (stmt.countStar) {
        std::vector<std::pair<std::uint64_t, Row>> matches;
        FASP_RETURN_IF_ERROR(
            collectMatches(tx, schema, stmt.where.get(), matches));
        ResultSet result;
        result.columns = {"COUNT(*)"};
        result.rows.push_back(Row{Value::integer(
            static_cast<std::int64_t>(matches.size()))});
        return result;
    }

    // Resolve projection.
    std::vector<int> projection;
    ResultSet result;
    if (stmt.columns.empty()) {
        for (std::size_t i = 0; i < schema.columns.size(); ++i) {
            projection.push_back(static_cast<int>(i));
            result.columns.push_back(schema.columns[i].name);
        }
    } else {
        for (const std::string &name : stmt.columns) {
            int index = schema.columnIndex(name);
            if (index < 0)
                return statusInvalid("no such column: " + name);
            projection.push_back(index);
            result.columns.push_back(name);
        }
    }

    std::vector<std::pair<std::uint64_t, Row>> matches;
    FASP_RETURN_IF_ERROR(
        collectMatches(tx, schema, stmt.where.get(), matches));

    if (stmt.orderBy) {
        int order_col = schema.columnIndex(*stmt.orderBy);
        if (order_col < 0)
            return statusInvalid("no such column: " + *stmt.orderBy);
        std::stable_sort(
            matches.begin(), matches.end(),
            [&](const auto &a, const auto &b) {
                int cmp = a.second[order_col].compare(
                    b.second[order_col]);
                return stmt.orderDesc ? cmp > 0 : cmp < 0;
            });
    }

    std::uint64_t limit =
        stmt.limit ? *stmt.limit : ~std::uint64_t{0};
    for (const auto &[rowid, row] : matches) {
        if (result.rows.size() >= limit)
            break;
        Row projected;
        projected.reserve(projection.size());
        for (int index : projection)
            projected.push_back(row[index]);
        result.rows.push_back(std::move(projected));
    }
    return result;
}

Result<ResultSet>
Executor::executeUpdate(core::Transaction &tx, const UpdateStmt &stmt)
{
    FASP_ASSIGN_OR_RETURN(TableSchema schema,
                          catalog_.get(tx, stmt.table));
    auto tree = BTree::open(tx.pageIO(), schema.treeId);
    if (!tree.isOk())
        return tree.status();

    // Resolve assignment targets once.
    std::vector<int> targets;
    for (const auto &[name, expr] : stmt.assignments) {
        int index = schema.columnIndex(name);
        if (index < 0)
            return statusInvalid("no such column: " + name);
        targets.push_back(index);
    }

    std::vector<std::pair<std::uint64_t, Row>> matches;
    FASP_RETURN_IF_ERROR(
        collectMatches(tx, schema, stmt.where.get(), matches));

    ResultSet result;
    std::vector<std::uint8_t> payload;
    for (auto &[rowid, row] : matches) {
        Row updated = row;
        for (std::size_t i = 0; i < targets.size(); ++i) {
            FASP_ASSIGN_OR_RETURN(
                Value value,
                eval(*stmt.assignments[i].second, &schema, &row));
            updated[targets[i]] = std::move(value);
        }
        // A changed INTEGER PRIMARY KEY moves the row.
        std::uint64_t new_rowid = rowid;
        if (schema.pkColumn >= 0) {
            const Value &pk = updated[schema.pkColumn];
            if (pk.type() != ValueType::Integer ||
                pk.asInteger() < 0) {
                return statusInvalid("invalid PRIMARY KEY value");
            }
            new_rowid = static_cast<std::uint64_t>(pk.asInteger());
        }
        encodeRow(updated, payload);
        if (new_rowid == rowid) {
            FASP_RETURN_IF_ERROR(tree->update(
                tx.pageIO(), rowid,
                std::span<const std::uint8_t>(payload)));
        } else {
            FASP_RETURN_IF_ERROR(tree->insert(
                tx.pageIO(), new_rowid,
                std::span<const std::uint8_t>(payload)));
            FASP_RETURN_IF_ERROR(tree->erase(tx.pageIO(), rowid));
        }
        result.affected++;
    }
    return result;
}

Result<ResultSet>
Executor::executeDelete(core::Transaction &tx, const DeleteStmt &stmt)
{
    FASP_ASSIGN_OR_RETURN(TableSchema schema,
                          catalog_.get(tx, stmt.table));
    auto tree = BTree::open(tx.pageIO(), schema.treeId);
    if (!tree.isOk())
        return tree.status();

    std::vector<std::pair<std::uint64_t, Row>> matches;
    FASP_RETURN_IF_ERROR(
        collectMatches(tx, schema, stmt.where.get(), matches));

    ResultSet result;
    for (const auto &[rowid, row] : matches) {
        FASP_RETURN_IF_ERROR(tree->erase(tx.pageIO(), rowid));
        result.affected++;
    }
    return result;
}

} // namespace fasp::db
