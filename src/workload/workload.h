/**
 * @file
 * Workload generators reproducing the paper's experimental setups:
 * randomly-keyed single-record INSERT transactions (Section 5's main
 * workload), record-size sweeps (Figure 9), multi-record transactions
 * (Figure 10), and Mobibench-style mobile op mixes (Figures 11-12).
 */

#ifndef FASP_WORKLOAD_WORKLOAD_H
#define FASP_WORKLOAD_WORKLOAD_H

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fasp::workload {

/** Key-sequence shapes. */
enum class KeyPattern : std::uint8_t {
    Sequential,    //!< 1, 2, 3, ... (append-heavy; B-tree right edge)
    UniformRandom, //!< uniform 64-bit keys (the paper's default)
    Zipfian,       //!< skewed over a fixed population
};

/**
 * Deterministic key stream. UniformRandom keys are effectively unique
 * (64-bit space); Zipfian draws ranks over [1, population].
 */
class KeyStream
{
  public:
    KeyStream(KeyPattern pattern, std::uint64_t seed,
              std::uint64_t population = 1u << 20);

    std::uint64_t next();

  private:
    KeyPattern pattern_;
    Rng rng_;
    std::uint64_t counter_ = 0;
    ZipfGenerator zipf_;
};

/** Record-size distributions (Figure 9 sweeps the fixed size). */
class ValueGen
{
  public:
    /** Fixed @p size bytes per value. */
    static ValueGen fixed(std::size_t size, std::uint64_t seed = 11);

    /** Uniform size in [lo, hi]. */
    static ValueGen uniform(std::size_t lo, std::size_t hi,
                            std::uint64_t seed = 11);

    /** Produce the next value into @p out. */
    void next(std::vector<std::uint8_t> &out);

    std::size_t maxSize() const { return hi_; }

  private:
    ValueGen(std::size_t lo, std::size_t hi, std::uint64_t seed)
        : lo_(lo), hi_(hi), rng_(seed)
    {}

    std::size_t lo_;
    std::size_t hi_;
    Rng rng_;
};

/** Operation types of the mixed (Mobibench-style) workload. */
enum class OpType : std::uint8_t { Insert, Update, Delete, Lookup };

/** One generated operation. */
struct Op
{
    OpType type;
    std::uint64_t key;
};

/**
 * Mixed-operation generator that tracks the live key set so updates,
 * deletes, and lookups always target existing keys (as Mobibench's
 * SQLite workloads do).
 */
class MixedWorkload
{
  public:
    /** Percentages must sum to <= 100; the remainder are lookups. */
    struct Mix
    {
        unsigned insertPct = 50;
        unsigned updatePct = 20;
        unsigned deletePct = 10;
    };

    MixedWorkload(Mix mix, std::uint64_t seed);

    /** Generate the next operation (inserts when the table is empty). */
    Op next();

    std::size_t liveKeys() const { return live_.size(); }

  private:
    std::uint64_t freshKey();

    Mix mix_;
    Rng rng_;
    std::vector<std::uint64_t> live_;
};

} // namespace fasp::workload

#endif // FASP_WORKLOAD_WORKLOAD_H
