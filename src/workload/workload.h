/**
 * @file
 * Workload generators reproducing the paper's experimental setups:
 * randomly-keyed single-record INSERT transactions (Section 5's main
 * workload), record-size sweeps (Figure 9), multi-record transactions
 * (Figure 10), Mobibench-style mobile op mixes (Figures 11-12), and
 * YCSB A-F mixes with Zipfian/latest-key skew for the soak harness.
 */

#ifndef FASP_WORKLOAD_WORKLOAD_H
#define FASP_WORKLOAD_WORKLOAD_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"

namespace fasp::workload {

/** Key-sequence shapes. */
enum class KeyPattern : std::uint8_t {
    Sequential,    //!< 1, 2, 3, ... (append-heavy; B-tree right edge)
    UniformRandom, //!< uniform 64-bit keys (the paper's default)
    Zipfian,       //!< skewed; hottest ranks map to the oldest keys
    Latest,        //!< skewed; hottest ranks map to the newest keys
};

/**
 * Deterministic key stream.
 *
 * UniformRandom keys are effectively unique (64-bit space). The skewed
 * patterns (Zipfian, Latest) draw a rank and map it onto the *inserted*
 * key set reported via noteInserted(), so reads target keys that exist;
 * without any noteInserted() calls they degrade to ranks over
 * [1, population] (the pre-PR-9 behavior, kept for synthetic tests).
 */
class KeyStream
{
  public:
    KeyStream(KeyPattern pattern, std::uint64_t seed,
              std::uint64_t population = 1u << 20);

    std::uint64_t next();

    /**
     * Record that @p key is now present in the table. Skewed draws then
     * pick among the noted keys: Zipfian favors the earliest-noted keys,
     * Latest the most recently noted.
     */
    void noteInserted(std::uint64_t key);

    std::size_t insertedCount() const { return inserted_.size(); }

  private:
    std::uint64_t skewedRank();

    KeyPattern pattern_;
    Rng rng_;
    std::uint64_t counter_ = 0;
    ZipfGenerator zipf_;
    std::vector<std::uint64_t> inserted_;
    // Zipf generator sized to the live population; rebuilt geometrically
    // as inserted_ grows (zeta() is O(n), so rebuild only on doubling).
    std::optional<ZipfGenerator> liveZipf_;
};

/** Record-size distributions (Figure 9 sweeps the fixed size). */
class ValueGen
{
  public:
    /** Fixed @p size bytes per value. */
    static ValueGen fixed(std::size_t size, std::uint64_t seed = 11);

    /** Uniform size in [lo, hi]. */
    static ValueGen uniform(std::size_t lo, std::size_t hi,
                            std::uint64_t seed = 11);

    /** Produce the next value into @p out. */
    void next(std::vector<std::uint8_t> &out);

    std::size_t maxSize() const { return hi_; }

  private:
    ValueGen(std::size_t lo, std::size_t hi, std::uint64_t seed)
        : lo_(lo), hi_(hi), rng_(seed)
    {}

    std::size_t lo_;
    std::size_t hi_;
    Rng rng_;
};

/** Operation types of the mixed (Mobibench-style) workload. */
enum class OpType : std::uint8_t { Insert, Update, Delete, Lookup };

/** One generated operation. */
struct Op
{
    OpType type;
    std::uint64_t key;
};

/**
 * Mixed-operation generator that tracks the live key set so updates,
 * deletes, and lookups always target existing keys (as Mobibench's
 * SQLite workloads do).
 */
class MixedWorkload
{
  public:
    /** Percentages must sum to <= 100; the remainder are lookups. */
    struct Mix
    {
        unsigned insertPct = 50;
        unsigned updatePct = 20;
        unsigned deletePct = 10;
    };

    MixedWorkload(Mix mix, std::uint64_t seed);

    /** Generate the next operation (inserts when the table is empty). */
    Op next();

    std::size_t liveKeys() const { return live_.size(); }

  private:
    std::uint64_t freshKey();

    Mix mix_;
    Rng rng_;
    std::vector<std::uint64_t> live_;
};

/** YCSB core operation types. */
enum class YcsbOp : std::uint8_t {
    Read,            //!< point lookup
    Update,          //!< overwrite an existing record
    Insert,          //!< add a new record
    Scan,            //!< range scan of scanLen records from key
    ReadModifyWrite, //!< read then overwrite the same record
};

const char *ycsbOpName(YcsbOp op);

/** One generated YCSB operation. */
struct YcsbOpSpec
{
    YcsbOp type;
    std::uint64_t key;
    std::uint32_t scanLen = 0; //!< records to scan (Scan only)
};

/** Op-ratio + distribution description of one YCSB mix. */
struct YcsbMix
{
    char name;               //!< 'A'..'F'
    unsigned readPct;        //!< percentages sum to 100
    unsigned updatePct;
    unsigned insertPct;
    unsigned scanPct;
    unsigned rmwPct;
    KeyPattern pattern;      //!< distribution of existing-key picks
    std::uint32_t maxScanLen = 100;
};

/** The standard YCSB core mixes; @p name in "ABCDEF". */
YcsbMix ycsbMix(char name);

/** How logical record indices map onto B-tree keys. */
enum class KeyOrder : std::uint8_t {
    Hashed,     //!< indices scrambled across the keyspace (YCSB default)
    Sequential, //!< index i -> key i+1; with Zipfian skew the hot ranks
                //!< share adjacent keys, concentrating traffic on a few
                //!< leaf pages (the skewed-hot-page mode)
};

/**
 * YCSB A-F operation generator.
 *
 * Records are addressed by a logical index; keyOfIndex() maps indices
 * to B-tree keys (hashed or sequential). Existing-key picks (reads,
 * updates, scans, RMW) draw a rank from the mix's distribution and map
 * it onto [0, insertedCount), so they never target absent keys.
 * Multiple clients partition one keyspace via indexOffset/indexStride.
 */
class YcsbWorkload
{
  public:
    struct Options
    {
        YcsbMix mix;
        std::uint64_t seed = 1;
        std::uint64_t preload = 1000;       //!< records loaded up front
        KeyOrder order = KeyOrder::Hashed;
        std::uint64_t indexOffset = 0;      //!< this client's first index
        std::uint64_t indexStride = 1;      //!< step between its indices
    };

    explicit YcsbWorkload(Options opt);

    /** Key for logical record index @p i (positive, non-zero). */
    std::uint64_t keyOfIndex(std::uint64_t i) const;

    /** Number of records assumed present (preload + inserts issued). */
    std::uint64_t insertedCount() const { return inserted_; }

    std::uint64_t preloadCount() const { return opt_.preload; }

    const YcsbMix &mix() const { return opt_.mix; }

    /** Generate the next operation. */
    YcsbOpSpec next();

  private:
    std::uint64_t drawExistingIndex();

    Options opt_;
    Rng rng_;
    std::uint64_t inserted_;
    ZipfGenerator zipf_;
    std::uint64_t zipfCap_;
};

/**
 * Delete-heavy churn stream that forces repeated slotted-page defrags:
 * a small fixed key span is deleted and re-inserted with alternating
 * record sizes, so freed extents rarely fit the next insert and the
 * page must compact (the paper's Section 4.3 defrag path).
 */
class DeleteDefragStream
{
  public:
    struct Step
    {
        OpType type;           //!< Insert, Delete, or Update
        std::uint64_t key;
        std::size_t valueSize; //!< for Insert/Update
    };

    DeleteDefragStream(std::uint64_t seed, std::uint64_t keySpan = 48,
                       std::size_t valueMin = 16, std::size_t valueMax = 120,
                       std::uint64_t keyBase = 1);

    Step next();

    std::size_t liveCount() const { return liveCount_; }
    std::uint64_t keyBase() const { return keyBase_; }
    std::uint64_t keySpan() const { return span_; }

  private:
    Rng rng_;
    std::uint64_t span_;
    std::size_t valueMin_;
    std::size_t valueMax_;
    std::uint64_t keyBase_;
    std::vector<bool> present_;
    std::size_t liveCount_ = 0;
    std::uint64_t step_ = 0;
};

} // namespace fasp::workload

#endif // FASP_WORKLOAD_WORKLOAD_H
