#include "workload/workload.h"

#include "common/logging.h"

namespace fasp::workload {

KeyStream::KeyStream(KeyPattern pattern, std::uint64_t seed,
                     std::uint64_t population)
    : pattern_(pattern), rng_(seed), zipf_(population, 0.99)
{}

std::uint64_t
KeyStream::next()
{
    switch (pattern_) {
      case KeyPattern::Sequential:
        return ++counter_;
      case KeyPattern::UniformRandom:
        // Avoid 0 so tests can use it as a sentinel.
        return rng_.next() | 1;
      case KeyPattern::Zipfian:
        return zipf_.next(rng_) + 1;
    }
    faspPanic("bad key pattern");
}

ValueGen
ValueGen::fixed(std::size_t size, std::uint64_t seed)
{
    return ValueGen(size, size, seed);
}

ValueGen
ValueGen::uniform(std::size_t lo, std::size_t hi, std::uint64_t seed)
{
    FASP_ASSERT(lo <= hi);
    return ValueGen(lo, hi, seed);
}

void
ValueGen::next(std::vector<std::uint8_t> &out)
{
    std::size_t size =
        lo_ == hi_ ? lo_ : rng_.nextInRange(lo_, hi_);
    out.resize(size);
    rng_.fillBytes(out.data(), out.size());
}

MixedWorkload::MixedWorkload(Mix mix, std::uint64_t seed)
    : mix_(mix), rng_(seed)
{
    FASP_ASSERT(mix.insertPct + mix.updatePct + mix.deletePct <= 100);
}

std::uint64_t
MixedWorkload::freshKey()
{
    // Keep keys within the positive int64 range so they survive a
    // round trip through SQL integer literals.
    return (rng_.next() >> 1) | 1;
}

Op
MixedWorkload::next()
{
    std::uint64_t dice = rng_.nextBounded(100);
    if (live_.empty() || dice < mix_.insertPct) {
        std::uint64_t key = freshKey();
        live_.push_back(key);
        return Op{OpType::Insert, key};
    }
    std::size_t pick = rng_.nextBounded(live_.size());
    if (dice < mix_.insertPct + mix_.updatePct)
        return Op{OpType::Update, live_[pick]};
    if (dice < mix_.insertPct + mix_.updatePct + mix_.deletePct) {
        std::uint64_t key = live_[pick];
        live_[pick] = live_.back();
        live_.pop_back();
        return Op{OpType::Delete, key};
    }
    return Op{OpType::Lookup, live_[pick]};
}

} // namespace fasp::workload
