#include "workload/workload.h"

#include <algorithm>

#include "common/logging.h"

namespace fasp::workload {

KeyStream::KeyStream(KeyPattern pattern, std::uint64_t seed,
                     std::uint64_t population)
    : pattern_(pattern), rng_(seed), zipf_(population, 0.99)
{}

std::uint64_t
KeyStream::next()
{
    switch (pattern_) {
      case KeyPattern::Sequential:
        return ++counter_;
      case KeyPattern::UniformRandom:
        // Avoid 0 so tests can use it as a sentinel.
        return rng_.next() | 1;
      case KeyPattern::Zipfian:
        if (!inserted_.empty())
            return inserted_[skewedRank()];
        return zipf_.next(rng_) + 1;
      case KeyPattern::Latest:
        if (!inserted_.empty())
            return inserted_[inserted_.size() - 1 - skewedRank()];
        return zipf_.next(rng_) + 1;
    }
    faspPanic("bad key pattern");
}

void
KeyStream::noteInserted(std::uint64_t key)
{
    inserted_.push_back(key);
}

std::uint64_t
KeyStream::skewedRank()
{
    std::size_t n = inserted_.size();
    if (!liveZipf_ || liveZipf_->itemCount() < n)
        liveZipf_.emplace(std::max<std::uint64_t>(n * 2, 16), 0.99);
    // The generator covers up to 2n items; rejection-sample ranks that
    // fall beyond the live population (rare: low ranks dominate).
    std::uint64_t rank;
    do {
        rank = liveZipf_->next(rng_);
    } while (rank >= n);
    return rank;
}

ValueGen
ValueGen::fixed(std::size_t size, std::uint64_t seed)
{
    return ValueGen(size, size, seed);
}

ValueGen
ValueGen::uniform(std::size_t lo, std::size_t hi, std::uint64_t seed)
{
    FASP_ASSERT(lo <= hi);
    return ValueGen(lo, hi, seed);
}

void
ValueGen::next(std::vector<std::uint8_t> &out)
{
    std::size_t size =
        lo_ == hi_ ? lo_ : rng_.nextInRange(lo_, hi_);
    out.resize(size);
    rng_.fillBytes(out.data(), out.size());
}

MixedWorkload::MixedWorkload(Mix mix, std::uint64_t seed)
    : mix_(mix), rng_(seed)
{
    FASP_ASSERT(mix.insertPct + mix.updatePct + mix.deletePct <= 100);
}

std::uint64_t
MixedWorkload::freshKey()
{
    // Keep keys within the positive int64 range so they survive a
    // round trip through SQL integer literals.
    return (rng_.next() >> 1) | 1;
}

Op
MixedWorkload::next()
{
    std::uint64_t dice = rng_.nextBounded(100);
    if (live_.empty() || dice < mix_.insertPct) {
        std::uint64_t key = freshKey();
        live_.push_back(key);
        return Op{OpType::Insert, key};
    }
    std::size_t pick = rng_.nextBounded(live_.size());
    if (dice < mix_.insertPct + mix_.updatePct)
        return Op{OpType::Update, live_[pick]};
    if (dice < mix_.insertPct + mix_.updatePct + mix_.deletePct) {
        std::uint64_t key = live_[pick];
        live_[pick] = live_.back();
        live_.pop_back();
        return Op{OpType::Delete, key};
    }
    return Op{OpType::Lookup, live_[pick]};
}

const char *
ycsbOpName(YcsbOp op)
{
    switch (op) {
      case YcsbOp::Read: return "read";
      case YcsbOp::Update: return "update";
      case YcsbOp::Insert: return "insert";
      case YcsbOp::Scan: return "scan";
      case YcsbOp::ReadModifyWrite: return "rmw";
    }
    faspPanic("bad ycsb op");
}

YcsbMix
ycsbMix(char name)
{
    switch (name) {
      case 'A': case 'a': // update heavy
        return YcsbMix{'A', 50, 50, 0, 0, 0, KeyPattern::Zipfian};
      case 'B': case 'b': // read mostly
        return YcsbMix{'B', 95, 5, 0, 0, 0, KeyPattern::Zipfian};
      case 'C': case 'c': // read only
        return YcsbMix{'C', 100, 0, 0, 0, 0, KeyPattern::Zipfian};
      case 'D': case 'd': // read latest
        return YcsbMix{'D', 95, 0, 5, 0, 0, KeyPattern::Latest};
      case 'E': case 'e': // short ranges
        return YcsbMix{'E', 0, 0, 5, 95, 0, KeyPattern::Zipfian};
      case 'F': case 'f': // read-modify-write
        return YcsbMix{'F', 50, 0, 0, 0, 50, KeyPattern::Zipfian};
      default:
        faspPanic("unknown YCSB mix (expected A-F)");
    }
}

YcsbWorkload::YcsbWorkload(Options opt)
    : opt_(opt), rng_(opt.seed), inserted_(opt.preload),
      zipf_(std::max<std::uint64_t>(opt.preload * 2, 16), 0.99),
      zipfCap_(zipf_.itemCount())
{
    FASP_ASSERT(opt.mix.readPct + opt.mix.updatePct + opt.mix.insertPct +
                    opt.mix.scanPct + opt.mix.rmwPct ==
                100);
    FASP_ASSERT(opt.mix.pattern != KeyPattern::Sequential);
    FASP_ASSERT(opt.indexStride >= 1);
}

std::uint64_t
YcsbWorkload::keyOfIndex(std::uint64_t i) const
{
    std::uint64_t idx = opt_.indexOffset + i * opt_.indexStride;
    if (opt_.order == KeyOrder::Sequential)
        return idx + 1;
    // SplitMix64 finalizer: a bijection on 64-bit words, scrambling
    // record indices across the keyspace. Shift into positive int64
    // range (SQL literals) and avoid the 0 sentinel.
    std::uint64_t z = idx + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    return (z >> 1) | 1;
}

std::uint64_t
YcsbWorkload::drawExistingIndex()
{
    FASP_ASSERT(inserted_ > 0);
    if (opt_.mix.pattern == KeyPattern::UniformRandom)
        return rng_.nextBounded(inserted_);
    if (zipfCap_ < inserted_) {
        zipfCap_ = inserted_ * 2;
        zipf_ = ZipfGenerator(zipfCap_, 0.99);
    }
    std::uint64_t rank;
    do {
        rank = zipf_.next(rng_);
    } while (rank >= inserted_);
    // Zipfian: hot ranks hit the oldest records (with KeyOrder::Sequential
    // these are adjacent low keys -> a few hot leaves). Latest: hot ranks
    // hit the newest records, as in YCSB D.
    if (opt_.mix.pattern == KeyPattern::Latest)
        return inserted_ - 1 - rank;
    return rank;
}

YcsbOpSpec
YcsbWorkload::next()
{
    const YcsbMix &m = opt_.mix;
    std::uint64_t dice = rng_.nextBounded(100);
    if (inserted_ == 0 || (dice >= m.readPct + m.updatePct &&
                           dice < m.readPct + m.updatePct + m.insertPct)) {
        std::uint64_t key = keyOfIndex(inserted_++);
        return YcsbOpSpec{YcsbOp::Insert, key, 0};
    }
    std::uint64_t key = keyOfIndex(drawExistingIndex());
    if (dice < m.readPct)
        return YcsbOpSpec{YcsbOp::Read, key, 0};
    if (dice < m.readPct + m.updatePct)
        return YcsbOpSpec{YcsbOp::Update, key, 0};
    if (dice < m.readPct + m.updatePct + m.insertPct + m.scanPct) {
        std::uint32_t len =
            1 + static_cast<std::uint32_t>(rng_.nextBounded(m.maxScanLen));
        return YcsbOpSpec{YcsbOp::Scan, key, len};
    }
    return YcsbOpSpec{YcsbOp::ReadModifyWrite, key, 0};
}

DeleteDefragStream::DeleteDefragStream(std::uint64_t seed,
                                       std::uint64_t keySpan,
                                       std::size_t valueMin,
                                       std::size_t valueMax,
                                       std::uint64_t keyBase)
    : rng_(seed), span_(keySpan), valueMin_(valueMin), valueMax_(valueMax),
      keyBase_(keyBase), present_(keySpan, false)
{
    FASP_ASSERT(keySpan > 0 && valueMin <= valueMax);
}

DeleteDefragStream::Step
DeleteDefragStream::next()
{
    ++step_;
    // Alternate small and large records so freed extents rarely fit the
    // next insert in place and the page must compact.
    std::size_t size = (step_ & 1)
        ? valueMin_ + rng_.nextBounded(valueMin_ + 1)
        : valueMax_ - rng_.nextBounded(valueMin_ + 1);
    if (size > valueMax_)
        size = valueMax_;

    std::uint64_t slot = rng_.nextBounded(span_);
    std::uint64_t dice = rng_.nextBounded(100);
    if (liveCount_ > 0 && dice < 45) {
        // Delete-heavy: find a present slot (linear probe keeps this
        // deterministic for a given seed).
        while (!present_[slot])
            slot = (slot + 1) % span_;
        present_[slot] = false;
        --liveCount_;
        return Step{OpType::Delete, keyBase_ + slot, 0};
    }
    if (liveCount_ == span_ || (liveCount_ > 0 && dice < 60)) {
        while (!present_[slot])
            slot = (slot + 1) % span_;
        return Step{OpType::Update, keyBase_ + slot, size};
    }
    while (present_[slot])
        slot = (slot + 1) % span_;
    present_[slot] = true;
    ++liveCount_;
    return Step{OpType::Insert, keyBase_ + slot, size};
}

} // namespace fasp::workload
