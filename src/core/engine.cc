#include "core/engine.h"

#include <chrono>

#include "common/logging.h"
#include "core/buffered_engine.h"
#include "core/fasp_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pm/device.h"

namespace fasp::core {

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Fast: return "FAST";
      case EngineKind::Fash: return "FASH";
      case EngineKind::Nvwal: return "NVWAL";
      case EngineKind::LegacyWal: return "WAL";
      case EngineKind::Journal: return "JOURNAL";
    }
    return "?";
}

Result<std::unique_ptr<Engine>>
Engine::create(pm::PmDevice &device, const EngineConfig &cfg,
               bool format)
{
    pager::Superblock sb;
    if (format) {
        auto formatted = pager::Pager::format(device, cfg.format);
        if (!formatted.isOk())
            return formatted.status();
        sb = *formatted;
    } else {
        auto opened = pager::Pager::open(device);
        if (!opened.isOk())
            return opened.status();
        sb = *opened;
    }

    std::unique_ptr<Engine> engine;
    switch (cfg.kind) {
      case EngineKind::Fast:
      case EngineKind::Fash:
        engine = std::make_unique<FaspEngine>(device, cfg, sb);
        break;
      case EngineKind::Nvwal:
        engine = std::make_unique<NvwalEngine>(device, cfg, sb);
        break;
      case EngineKind::LegacyWal:
        engine = std::make_unique<LegacyWalEngine>(device, cfg, sb);
        break;
      case EngineKind::Journal:
        engine = std::make_unique<JournalEngine>(device, cfg, sb);
        break;
    }
    FASP_ASSERT(engine != nullptr);

    // Persistent flight recorder (DESIGN.md §12): only when the image
    // carries a recorder region large enough for a ring AND the global
    // gate is on — transactions null-check the pointer per event, so
    // the recorder-off path costs one load and a branch.
    if (sb.frLen != 0 && obs::FlightRecorder::enabled()) {
        auto fr = std::make_unique<obs::FlightRecorder>(
            device, sb.frOff, sb.frLen);
        if (fr->capacity() != 0)
            engine->flightRecorder_ = std::move(fr);
    }

    if (format) {
        // Pager::format just initialized the ring; the sequence
        // counter starts at 1, no attach scan needed.
        Status status = engine->initFresh();
        if (!status.isOk())
            return status;
        return engine;
    }

    auto ns_since = [](std::chrono::steady_clock::time_point t0) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0).count());
    };

    // Re-attach the recorder before recovery runs: the attach scan
    // repairs torn ring slots (part of the torn-record-repair phase)
    // and the RecoveryBegin/End markers bracket the pass in the
    // persistent timeline.
    wal::RecoveryBreakdown breakdown;
    obs::FlightRecorder *fr = engine->flightRecorder_.get();
    if (fr != nullptr) {
        auto attach_started = std::chrono::steady_clock::now();
        auto attached = fr->attach();
        if (attached.isOk()) {
            breakdown.tornRecords += attached->tornRecords;
        } else {
            // Undecodable ring (e.g. an image formatted with the
            // recorder disabled): run without it.
            engine->flightRecorder_.reset();
            fr = nullptr;
        }
        breakdown.repairNs += ns_since(attach_started);
        if (fr != nullptr) {
            fr->append(obs::FlightEventType::RecoveryBegin,
                       engine->recorderEngineCode(), 0, 0, 0);
        }
    }

    auto started = std::chrono::steady_clock::now();
    Status status = engine->recover(breakdown);
    if (!status.isOk())
        return status;
    std::uint64_t elapsed = ns_since(started);
    if (fr != nullptr) {
        fr->append(obs::FlightEventType::RecoveryEnd,
                   engine->recorderEngineCode(), 0, 0, elapsed);
    }

    // Recovery is cold and fig12's recovery bench wants the numbers
    // without --metrics, so the ledger fold is unconditional.
    obs::RecoveryLedger::Sample sample;
    sample.phaseNs = {breakdown.scanNs, breakdown.replayNs,
                      breakdown.discardNs, breakdown.repairNs};
    sample.pagesScanned = breakdown.pagesScanned;
    sample.recordsReplayed = breakdown.recordsReplayed;
    sample.recordsDiscarded = breakdown.recordsDiscarded;
    sample.tornRecords = breakdown.tornRecords;
    obs::RecoveryLedger::global().record(engineKindName(cfg.kind),
                                         sample);

    if (obs::enabled()) {
        obs::MetricsRegistry::global()
            .counter("core.recoveries").inc();
        obs::MetricsRegistry::global()
            .histogram("core.recovery_ns")
            .record(elapsed);
        obs::Tracer::global().record(
            obs::TraceOp::Recovery, engineKindName(cfg.kind), 0,
            nullptr, 0, elapsed);
    }
    return engine;
}

Result<btree::BTree>
Engine::createTree(TreeId id)
{
    auto tx = begin();
    auto tree = btree::BTree::create(tx->pageIO(), id);
    if (!tree.isOk()) {
        tx->rollback();
        return tree;
    }
    Status status = tx->commit();
    if (!status.isOk())
        return status;
    return tree;
}

Status
Engine::insert(btree::BTree &tree, std::uint64_t key,
               std::span<const std::uint8_t> value)
{
    auto tx = begin();
    Status status = tree.insert(tx->pageIO(), key, value);
    if (!status.isOk()) {
        tx->rollback();
        return status;
    }
    return tx->commit();
}

Status
Engine::update(btree::BTree &tree, std::uint64_t key,
               std::span<const std::uint8_t> value)
{
    auto tx = begin();
    Status status = tree.update(tx->pageIO(), key, value);
    if (!status.isOk()) {
        tx->rollback();
        return status;
    }
    return tx->commit();
}

Status
Engine::erase(btree::BTree &tree, std::uint64_t key)
{
    auto tx = begin();
    Status status = tree.erase(tx->pageIO(), key);
    if (!status.isOk()) {
        tx->rollback();
        return status;
    }
    return tx->commit();
}

Status
Engine::get(btree::BTree &tree, std::uint64_t key,
            std::vector<std::uint8_t> &value)
{
    auto tx = begin();
    Status status = tree.get(tx->pageIO(), key, value);
    tx->rollback();
    return status;
}

Status
Engine::scan(btree::BTree &tree, std::uint64_t lo, std::uint64_t hi,
             const std::function<bool(std::uint64_t,
                                      std::span<const std::uint8_t>)> &fn)
{
    auto tx = begin();
    Status status = tree.scan(tx->pageIO(), lo, hi, fn);
    tx->rollback();
    return status;
}

} // namespace fasp::core
