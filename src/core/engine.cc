#include "core/engine.h"

#include <chrono>

#include "common/logging.h"
#include "core/buffered_engine.h"
#include "core/fasp_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pm/device.h"

namespace fasp::core {

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Fast: return "FAST";
      case EngineKind::Fash: return "FASH";
      case EngineKind::Nvwal: return "NVWAL";
      case EngineKind::LegacyWal: return "WAL";
      case EngineKind::Journal: return "JOURNAL";
    }
    return "?";
}

Result<std::unique_ptr<Engine>>
Engine::create(pm::PmDevice &device, const EngineConfig &cfg,
               bool format)
{
    pager::Superblock sb;
    if (format) {
        auto formatted = pager::Pager::format(device, cfg.format);
        if (!formatted.isOk())
            return formatted.status();
        sb = *formatted;
    } else {
        auto opened = pager::Pager::open(device);
        if (!opened.isOk())
            return opened.status();
        sb = *opened;
    }

    std::unique_ptr<Engine> engine;
    switch (cfg.kind) {
      case EngineKind::Fast:
      case EngineKind::Fash:
        engine = std::make_unique<FaspEngine>(device, cfg, sb);
        break;
      case EngineKind::Nvwal:
        engine = std::make_unique<NvwalEngine>(device, cfg, sb);
        break;
      case EngineKind::LegacyWal:
        engine = std::make_unique<LegacyWalEngine>(device, cfg, sb);
        break;
      case EngineKind::Journal:
        engine = std::make_unique<JournalEngine>(device, cfg, sb);
        break;
    }
    FASP_ASSERT(engine != nullptr);

    if (format) {
        Status status = engine->initFresh();
        if (!status.isOk())
            return status;
        return engine;
    }

    auto started = std::chrono::steady_clock::now();
    Status status = engine->recover();
    if (!status.isOk())
        return status;
    if (obs::enabled()) {
        auto elapsed =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - started).count();
        obs::MetricsRegistry::global()
            .counter("core.recoveries").inc();
        obs::MetricsRegistry::global()
            .histogram("core.recovery_ns")
            .record(static_cast<std::uint64_t>(elapsed));
        obs::Tracer::global().record(
            obs::TraceOp::Recovery, engineKindName(cfg.kind), 0,
            nullptr, 0, static_cast<std::uint64_t>(elapsed));
    }
    return engine;
}

Result<btree::BTree>
Engine::createTree(TreeId id)
{
    auto tx = begin();
    auto tree = btree::BTree::create(tx->pageIO(), id);
    if (!tree.isOk()) {
        tx->rollback();
        return tree;
    }
    Status status = tx->commit();
    if (!status.isOk())
        return status;
    return tree;
}

Status
Engine::insert(btree::BTree &tree, std::uint64_t key,
               std::span<const std::uint8_t> value)
{
    auto tx = begin();
    Status status = tree.insert(tx->pageIO(), key, value);
    if (!status.isOk()) {
        tx->rollback();
        return status;
    }
    return tx->commit();
}

Status
Engine::update(btree::BTree &tree, std::uint64_t key,
               std::span<const std::uint8_t> value)
{
    auto tx = begin();
    Status status = tree.update(tx->pageIO(), key, value);
    if (!status.isOk()) {
        tx->rollback();
        return status;
    }
    return tx->commit();
}

Status
Engine::erase(btree::BTree &tree, std::uint64_t key)
{
    auto tx = begin();
    Status status = tree.erase(tx->pageIO(), key);
    if (!status.isOk()) {
        tx->rollback();
        return status;
    }
    return tx->commit();
}

Status
Engine::get(btree::BTree &tree, std::uint64_t key,
            std::vector<std::uint8_t> &value)
{
    auto tx = begin();
    Status status = tree.get(tx->pageIO(), key, value);
    tx->rollback();
    return status;
}

} // namespace fasp::core
