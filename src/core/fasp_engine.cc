#include "core/fasp_engine.h"

#include <algorithm>
#include <array>
#include <chrono>

#include "common/byte_io.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "page/slotted_page.h"
#include "pm/device.h"

namespace fasp::core {

using pm::Component;
using pm::PhaseScope;

namespace {

/** Trace one transaction outcome with its modelled-PM-latency delta. */
void
observeTx(obs::TraceOp op, const char *engine, std::uint64_t modelNs0,
          const char *detail = nullptr)
{
    obs::Tracer::global().record(
        op, engine, 0, detail,
        pm::PmDevice::threadModelNs() - modelNs0);
}

} // namespace

// --- FaspEngine --------------------------------------------------------------

FaspEngine::FaspEngine(pm::PmDevice &device, const EngineConfig &cfg,
                       const pager::Superblock &sb)
    : Engine(device, cfg, sb), log_(device, sb), rtm_(device, cfg.rtm),
      pcas_(device, sb.pcasRegionOff(), cfg.pcas),
      commitViaPcas_(cfg.kind == EngineKind::Fast &&
                     cfg.inPlaceCommitVia == InPlaceCommitVia::Pcas &&
                     sb.pageSize <= pm::kPcasMaxPageSize),
      bitmapIO_(bitmap_), allocator_(bitmapIO_, sb)
{
    FASP_ASSERT(cfg.kind == EngineKind::Fast ||
                cfg.kind == EngineKind::Fash);
    // Bound RTM retries so FAST can fall back to slot-header logging
    // (paper §3.2 footnote 1).
    htm::RtmConfig rtm_cfg = cfg.rtm;
    rtm_cfg.maxRetries = cfg.rtmRetriesBeforeFallback;
    rtm_.setConfig(rtm_cfg);
    pager::Pager::loadBitmap(device_, sb_, bitmap_);
}

Status
FaspEngine::initFresh()
{
    // Quiescent (no transactions yet), but the guard discipline is
    // uniform: bitmap state is only ever touched under allocMutex_.
    MutexLock lk(&allocMutex_);
    pager::Pager::loadBitmap(device_, sb_, bitmap_);
    return Status::ok();
}

Status
FaspEngine::recover(wal::RecoveryBreakdown &breakdown)
{
    PhaseScope phase(device_.phaseTracker(), Component::Recovery);
    // Recovery is quiescent by contract; hold the log mutex anyway so
    // every log_ access in the program is provably under it.
    MutexLock logLock(&logMutex_);

    // (0) Resolve in-flight PMwCAS descriptors first (roll forward /
    // back), so log replay and free-list rebuild below never read a
    // header word holding a descriptor pointer (DESIGN.md §14).
    auto pcas_started = std::chrono::steady_clock::now();
    pcas_.recover();
    breakdown.repairNs += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - pcas_started)
            .count());

    auto result = log_.recover(&breakdown);
    if (!result.isOk())
        return result.status();

    // Replayed headers invalidate the affected pages' intra-page free
    // lists (scratch writes may have been lost); rebuild them lazily
    // now rather than on first touch (paper §4.3). This is repair of
    // potentially-torn volatile-by-contract state, so it bills to the
    // torn-record-repair phase.
    auto repair_started = std::chrono::steady_clock::now();
    for (PageId pid : result->touchedPages) {
        FaspPageIO io(device_, sb_.pageOffset(pid), sb_.pageSize,
                      /*write_through=*/true);
        if (page::pageType(io) == page::PageType::Leaf ||
            page::pageType(io) == page::PageType::Internal) {
            page::rebuildFreeList(io);
        }
    }

    // The bitmap is only current after replay.
    MutexLock allocLock(&allocMutex_);
    pager::Pager::loadBitmap(device_, sb_, bitmap_);

    // A crash between a PCAS publish and its lazily persisted clear
    // leaves flag bits in durable header words; strip them now that
    // the bitmap says which pages are live.
    sweepHeaderTags();
    breakdown.repairNs += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - repair_started)
            .count());
    return Status::ok();
}

std::uint64_t
FaspEngine::sweepHeaderTags()
{
    pm::SiteScope site(device_, "FaspEngine::sweepHeaderTags");
    std::uint64_t swept = 0;
    for (PageId pid = sb_.directoryPid; pid < sb_.pageCount; ++pid) {
        // Only the directory and allocated data pages can carry tags;
        // the PMwCAS descriptor pages in between are never targets.
        if (pid > sb_.directoryPid && pid < sb_.firstDataPid())
            continue;
        if (pid > sb_.directoryPid && !allocator_.isAllocated(pid))
            continue;
        // Tags live only in the first line: the PCAS commit's CAS set
        // is bounded by the one-cache-line shadow header.
        PmOffset off = sb_.pageOffset(pid);
        std::array<std::uint8_t, kCacheLineSize> line{};
        device_.read(off, line.data(), line.size());
        // Only slotted pages take PCAS publishes; overflow/meta pages
        // hold raw bytes whose top bits are data, not protocol flags.
        // The type nibble (bytes 4-5 of word 0) is readable even when
        // word 0 is tagged — the flags occupy bits 62/63 only.
        auto type = static_cast<page::PageType>(
            loadU16(line.data() + page::kOffFlags) & 0x0f);
        if (type != page::PageType::Leaf &&
            type != page::PageType::Internal)
            continue;
        // Bound the strip to the slot-header extent: only those words
        // are ever in a PCAS set. Past headerBytes(nrec) the line may
        // hold record content on a full page (FASH leaves and internal
        // pages do not reserve the whole first line the way FAST
        // leaves do), where bits 62/63 are payload. nrec is readable
        // even from a tagged word 0 — the flags sit in byte 7 — and a
        // tagged word 0 already carries the committed new value.
        std::uint16_t nrec =
            loadU16(line.data() + page::kOffNumRecords);
        std::size_t header_words =
            std::min<std::size_t>(
                page::headerBytes(nrec) + 7, kCacheLineSize) /
            8;
        bool dirty = false;
        for (std::size_t w = 0; w < header_words; ++w) {
            std::uint64_t v = loadU64(line.data() + w * 8);
            if ((v & pm::kPcasFlagMask) == 0)
                continue;
            // A descriptor pointer cannot survive Pcas::recover();
            // anything left is a dirty-tagged value, which being in
            // the durable image is by definition durable — strip.
            // fasp-analyze: allow(v1s) -- every store sets `dirty`,
            // and the dirty branch below always clflushes the line;
            // the analyzer cannot correlate the flag with the store.
            device_.writeU64(off + w * 8, pm::pcasStrip(v));
            dirty = true;
            ++swept;
        }
        if (dirty)
            device_.clflush(off);
    }
    if (swept > 0)
        device_.sfence();
    return swept;
}

std::unique_ptr<Transaction>
FaspEngine::begin()
{
    stats_.txBegun++;
    return std::make_unique<FaspTransaction>(*this, nextTxId());
}

// --- FaspTransaction ---------------------------------------------------------

FaspTransaction::FaspTransaction(FaspEngine &engine, TxId id)
    : Transaction(id), engine_(engine)
{
    engine_.device_.txBegin();
    // The op-begin record is durable before any of this transaction's
    // own persistence, so post-crash forensics can always name the
    // in-flight operation (or prove there was none).
    if (auto *fr = engine_.recorder()) {
        fr->append(obs::FlightEventType::OpBegin,
                   engine_.recorderEngineCode(), id, 0, 0);
    }
    obs::spanBegin(engineKindName(engine_.config_.kind),
                   engine_.recorderEngineCode(), id);
}

FaspTransaction::~FaspTransaction()
{
    if (!finished_)
        rollback();
}

std::size_t
FaspTransaction::pageSize() const
{
    return engine_.sb_.pageSize;
}

PageId
FaspTransaction::directoryPid() const
{
    return engine_.sb_.directoryPid;
}

pm::PhaseTracker *
FaspTransaction::tracker() const
{
    return engine_.device_.phaseTracker();
}

std::uint16_t
FaspTransaction::maxLeafSlots() const
{
    // FAST: leaf slot headers must fit one cache line (paper §4.2).
    return engine_.config_.kind == EngineKind::Fast
               ? page::kMaxInPlaceSlots
               : 0;
}

void
FaspTransaction::latchPage(PageId pid, bool exclusive)
{
    LatchTable &lt = engine_.latches_;
    std::size_t slot = lt.slotFor(pid);
    auto it = latches_.find(slot);
    if (it == latches_.end()) {
        bool ok = exclusive ? lt.tryAcquireExclusive(slot)
                            : lt.tryAcquireShared(slot);
        if (!ok) {
            engine_.stats_.latchConflicts.fetch_add(
                1, std::memory_order_relaxed);
            if (obs::enabled()) {
                static obs::Counter &c = obs::MetricsRegistry::global()
                    .counter("core.tx.latch_conflicts");
                c.inc();
                obs::Tracer::global().record(
                    obs::TraceOp::LatchConflict,
                    engineKindName(engine_.config_.kind), pid);
                obs::spanPageConflict(pid);
            }
            throw LatchConflict(pid);
        }
        latches_.emplace(slot, exclusive ? LatchMode::Exclusive
                                         : LatchMode::Shared);
    } else if (exclusive && it->second == LatchMode::Shared) {
        // Upgrade is sole-reader-only: failure means waiting could
        // deadlock against another upgrader, so conflict-abort.
        if (!lt.tryUpgrade(slot)) {
            engine_.stats_.latchConflicts.fetch_add(
                1, std::memory_order_relaxed);
            if (obs::enabled()) {
                static obs::Counter &c = obs::MetricsRegistry::global()
                    .counter("core.tx.latch_conflicts");
                c.inc();
                obs::Tracer::global().record(
                    obs::TraceOp::LatchConflict,
                    engineKindName(engine_.config_.kind), pid);
                obs::spanPageConflict(pid);
            }
            throw LatchConflict(pid);
        }
        it->second = LatchMode::Exclusive;
    }
}

void
FaspTransaction::releaseLatches()
{
    LatchTable &lt = engine_.latches_;
    for (const auto &[slot, mode] : latches_) {
        if (mode == LatchMode::Exclusive)
            lt.releaseExclusive(slot);
        else
            lt.releaseShared(slot);
    }
    latches_.clear();
}

FaspTransaction::PageState &
FaspTransaction::state(PageId pid)
{
    auto it = pages_.find(pid);
    if (it == pages_.end()) {
        PageState st;
        st.io = std::make_unique<FaspPageIO>(
            engine_.device_, engine_.sb_.pageOffset(pid),
            engine_.sb_.pageSize, /*write_through=*/false);
        it = pages_.emplace(pid, std::move(st)).first;
    }
    return it->second;
}

page::PageIO &
FaspTransaction::page(PageId pid, bool for_write)
{
    latchPage(pid, for_write);
    obs::spanPageAccess(pid, for_write);
    PageState &st = state(pid);
    if (for_write && !st.fresh && !st.io->hasShadow())
        st.io->materializeShadow();
    return *st.io;
}

Result<PageId>
FaspTransaction::allocPage()
{
    PageId pid;
    {
        MutexLock lk(&engine_.allocMutex_);
        auto allocated = engine_.allocator_.allocate();
        if (!allocated.isOk())
            return allocated;
        pid = *allocated;
    }
    try {
        // The page is ours alone, but its latch *slot* may be held by
        // a transaction latching a colliding page.
        latchPage(pid, /*exclusive=*/true);
    } catch (const LatchConflict &) {
        MutexLock lk(&engine_.allocMutex_);
        engine_.allocator_.free(pid);
        throw;
    }
    PageState st;
    st.io = std::make_unique<FaspPageIO>(
        engine_.device_, engine_.sb_.pageOffset(pid),
        engine_.sb_.pageSize, /*write_through=*/true);
    st.fresh = true;
    pages_[pid] = std::move(st);
    allocs_.push_back(pid);
    // A page allocated while defragmenting is the copy target;
    // anything else is tree growth (a split or a new root/leaf).
    bool defrag = pm::currentThreadComponent() == pm::Component::Defrag;
    if (auto *fr = engine_.recorder()) {
        fr->append(defrag ? obs::FlightEventType::Defrag
                          : obs::FlightEventType::PageSplit,
                   engine_.recorderEngineCode(), id_, pid, 0);
    }
    if (defrag)
        obs::spanDefrag();
    else
        obs::spanSplit();
    return pid;
}

void
FaspTransaction::freePage(PageId pid)
{
    latchPage(pid, /*exclusive=*/true);
    auto it = std::find(allocs_.begin(), allocs_.end(), pid);
    if (it != allocs_.end()) {
        // Allocated and freed within this transaction: it was never
        // reachable, so it can return to the allocator immediately.
        allocs_.erase(it);
        MutexLock lk(&engine_.allocMutex_);
        engine_.allocator_.free(pid);
    } else {
        // Freeing a live page: it must stay unavailable until commit,
        // or an intra-transaction reuse would overwrite its pre-commit
        // (recovery) image in place.
        frees_.push_back(pid);
    }
    // Whatever this transaction stored into the page is now dead data:
    // it will never be flushed, by design.
    engine_.device_.markScratch(engine_.sb_.pageOffset(pid),
                                engine_.sb_.pageSize);
    pages_.erase(pid);
}

void
FaspTransaction::deferReclaim(PageId pid, const page::RecordRef &ref)
{
    latchPage(pid, /*exclusive=*/true);
    state(pid).reclaims.push_back(ref);
}

void
FaspTransaction::applyReclaims()
{
    for (auto &[pid, st] : pages_) {
        if (st.reclaims.empty())
            continue;
        for (const page::RecordRef &ref : st.reclaims)
            page::reclaimExtent(*st.io, ref);
        st.reclaims.clear();
    }
}

void
FaspTransaction::rollback()
{
    if (finished_)
        return;
    // In-place content writes landed in durable free space and are
    // simply forgotten; shadow headers never reached PM.
    if (!allocs_.empty()) {
        MutexLock lk(&engine_.allocMutex_);
        for (PageId pid : allocs_)
            engine_.allocator_.free(pid);
    }
    pages_.clear();
    allocs_.clear();
    frees_.clear();
    finished_ = true;
    // Close the checker's write set before dropping exclusion, so no
    // foreign store can land in it mid-check.
    engine_.device_.txEnd(/*committed=*/false);
    if (auto *fr = engine_.recorder()) {
        fr->append(obs::FlightEventType::Abort,
                   engine_.recorderEngineCode(), id_, 0, 0);
    }
    releaseLatches();
    engine_.stats_.txRolledBack++;
    if (obs::enabled()) {
        static obs::Counter &c =
            obs::MetricsRegistry::global().counter("core.tx.rollbacks");
        c.inc();
        obs::Tracer::global().record(
            obs::TraceOp::TxAbort, engineKindName(engine_.config_.kind));
    }
    obs::spanEnd(/*committed=*/false, nullptr);
}

Status
FaspTransaction::commitInPlace(PageState &st)
{
    pm::SiteScope site(engine_.device_, "FaspTransaction::commitInPlace");
    pm::PhaseTracker *trk = tracker();
    // (i) Persist the in-place record writes (Figure 7). With PCAS the
    // header bytes beyond the old durable extent ride along: they are
    // invisible until the commit word publishes the new record count,
    // so they persist like record content, shrinking the CAS set to
    // the words whose *visible* bytes change.
    {
        PhaseScope phase(trk, Component::FlushRecord);
        bool flushed = false;
        if (st.io->contentDirty()) {
            st.io->flushDirtyRanges();
            flushed = true;
        }
        if (engine_.commitViaPcas_) {
            auto header = st.io->shadowBytes();
            std::size_t old_extent = st.io->baseBytes().size();
            if (header.size() > old_extent) {
                engine_.device_.write(st.io->pageOff() + old_extent,
                                      header.data() + old_extent,
                                      header.size() - old_extent);
                engine_.device_.flushRange(st.io->pageOff() +
                                               old_extent,
                                           header.size() - old_extent);
                flushed = true;
            }
        }
        if (flushed)
            engine_.device_.sfence();
    }
    // (ii) The in-place commit mark (paper §3.2 / DESIGN.md §14).
    Status published = engine_.commitViaPcas_ ? commitInPlacePcas(st)
                                              : commitInPlaceRtm(st);
    if (!published.isOk())
        return published;
    {
        PhaseScope phase(trk, Component::CommitMisc);
        applyReclaims();
    }
    engine_.stats_.inPlaceCommits++;
    return Status::ok();
}

Status
FaspTransaction::commitInPlaceRtm(PageState &st)
{
    // One RTM transaction publishes the new slot header, one clflush
    // makes it durable (paper §3.2). Correct only under the paper's
    // cache-line write-back atomicity assumption — see
    // tests/recovery/atomicity_assumptions_test.cc.
    PhaseScope phase(tracker(), Component::Atomic64BWrite);
    // The record writes above must be fenced before the header
    // publish makes them reachable.
    engine_.device_.txCommitPoint();
    auto header = st.io->shadowBytes();
    FASP_ASSERT(header.size() <= kCacheLineSize);
    bool committed =
        engine_.rtm_.execute([&](htm::RtmRegion &region) {
            region.write(st.io->pageOff(), header.data(),
                         header.size());
        });
    if (!committed) {
        engine_.stats_.rtmFallbacks++;
        return Status(StatusCode::TxConflict, "rtm fallback");
    }
    engine_.device_.clflush(st.io->pageOff());
    engine_.device_.sfence();
    return Status::ok();
}

Status
FaspTransaction::commitInPlacePcas(PageState &st)
{
    // Publish the header's visible diff through persistent CAS: one
    // word via Pcas::cas (one flush + one fence, like the RTM path,
    // but word-atomic — no line-tear exposure and no shared line-lock
    // table), several words via the bounded PMwCAS (DESIGN.md §14).
    PhaseScope phase(tracker(), Component::Atomic64BWrite);
    engine_.device_.txCommitPoint();

    auto header = st.io->shadowBytes();
    auto base = st.io->baseBytes();
    FASP_ASSERT(header.size() <= kCacheLineSize);
    const PmOffset page_off = st.io->pageOff();

    // Visible bytes: covered by both the old durable extent (readers
    // guard on the old record count until the CAS lands) and the new
    // header (bytes past it are dead under the new count — keep old).
    std::size_t visible = std::min(base.size(), header.size());
    std::array<pm::Pcas::MwcasEntry, pm::Pcas::kMaxMwcasWords> entries;
    std::size_t count = 0;
    for (std::size_t w = 0; w * 8 < visible; ++w) {
        PmOffset word_off = page_off + w * 8;
        std::uint64_t cur = engine_.device_.readU64(word_off);
        std::uint64_t desired = cur;
        auto *bytes = reinterpret_cast<std::uint8_t *>(&desired);
        std::size_t end = std::min(visible, w * 8 + 8);
        for (std::size_t b = w * 8; b < end; ++b)
            bytes[b - w * 8] = header[b];
        if (desired != cur) {
            FASP_ASSERT(count < pm::Pcas::kMaxMwcasWords);
            entries[count++] =
                pm::Pcas::MwcasEntry{word_off, cur, desired};
        }
    }

    pm::PcasResult result = pm::PcasResult::Ok;
    if (count == 1) {
        result = engine_.pcas_.cas(entries[0].off, entries[0].oldVal,
                                   entries[0].newVal);
    } else if (count > 1) {
        result = engine_.pcas_.mwcas(entries.data(), count);
    }
    // count == 0: the visible header is byte-identical (the change
    // lives entirely in the pre-flushed tail) — trivially committed.
    if (result != pm::PcasResult::Ok) {
        engine_.stats_.pcasFallbacks++;
        if (obs::enabled()) {
            static obs::Counter &fb = obs::MetricsRegistry::global()
                                          .counter("core.pcas.fallbacks");
            fb.inc();
            static obs::Counter &cf = obs::MetricsRegistry::global()
                                          .counter("core.pcas.conflicts");
            static obs::Counter &ex = obs::MetricsRegistry::global()
                                          .counter("core.pcas.exhausted");
            (result == pm::PcasResult::Exhausted ? ex : cf).inc();
        }
        return Status(StatusCode::TxConflict,
                      result == pm::PcasResult::Exhausted
                          ? "pcas retries exhausted"
                          : "pcas conflict");
    }
    if (obs::enabled()) {
        static obs::Counter &ok = obs::MetricsRegistry::global()
                                      .counter("core.pcas.commits");
        ok.inc();
        static obs::Counter &mw = obs::MetricsRegistry::global()
                                      .counter("core.pcas.mwcas_commits");
        if (count > 1)
            mw.inc();
    }
    return Status::ok();
}

Status
FaspTransaction::commitLogged()
{
    pm::SiteScope site(engine_.device_, "FaspTransaction::commitLogged");
    pm::PhaseTracker *trk = tracker();

    // The slot-header log (cursor, frames, truncation) is one shared
    // region: logged commits serialize on it. Held through txEnd so a
    // later commit reusing truncated offsets cannot dirty lines still
    // in this transaction's checked write set.
    MutexLock logLock(&engine_.logMutex_);

    // (1) Flush in-place record writes; order among them is free as
    // long as they all precede the commit mark (paper §3.3).
    {
        PhaseScope phase(trk, Component::FlushRecord);
        bool flushed = false;
        for (auto &[pid, st] : pages_) {
            if (st.io->contentDirty()) {
                st.io->flushDirtyRanges();
                flushed = true;
            }
        }
        if (flushed)
            engine_.device_.sfence();
    }

    // (2) Copy the updated slot headers into the slot-header log
    // (stores only; Figure 7 "update slot header").
    {
        PhaseScope phase(trk, Component::UpdateSlotHeader);
        engine_.log_.begin();
        for (auto &[pid, st] : pages_) {
            if (!st.fresh && st.io->headerDirty()) {
                FASP_RETURN_IF_ERROR(engine_.log_.appendPageHeader(
                    pid, st.io->shadowBytes()));
            }
        }
        for (PageId pid : allocs_)
            FASP_RETURN_IF_ERROR(engine_.log_.appendPageAlloc(pid));
        for (PageId pid : frees_)
            FASP_RETURN_IF_ERROR(engine_.log_.appendPageFree(pid));
    }

    // (3) Flush the log and write the commit mark (Figure 8
    // "Log Flush").
    {
        PhaseScope phase(trk, Component::LogFlush);
        FASP_RETURN_IF_ERROR(engine_.log_.commit(id_));
    }

    // (4) Eager checkpoint + truncate (Figure 8 "Checkpointing").
    {
        PhaseScope phase(trk, Component::Checkpoint);
        FASP_RETURN_IF_ERROR(engine_.log_.checkpointAndTruncate());
    }

    // (5) Post-commit bookkeeping.
    {
        PhaseScope phase(trk, Component::CommitMisc);
        applyReclaims();
        if (!frees_.empty()) {
            MutexLock lk(&engine_.allocMutex_);
            for (PageId pid : frees_)
                engine_.allocator_.free(pid);
        }
    }
    engine_.stats_.logCommits++;
    engine_.device_.txEnd(/*committed=*/true);
    return Status::ok();
}

Status
FaspTransaction::commit()
{
    FASP_ASSERT(!finished_);
    const char *engine_name = engineKindName(engine_.config_.kind);
    std::uint64_t model_ns0 =
        obs::enabled() ? pm::PmDevice::threadModelNs() : 0;

    // Classify the transaction (paper §4.2: FAST checks whether the
    // transaction modified multiple pages, overflowed, or defragged).
    PageState *modified = nullptr;
    std::size_t modified_count = 0;
    for (auto &[pid, st] : pages_) {
        if (st.fresh || st.io->headerDirty() || st.io->contentDirty()) {
            modified = &st;
            modified_count++;
        }
    }

    Status status = Status::ok();
    bool logged = false;
    const char *commit_path = "read-only";
    if (modified_count == 0 && allocs_.empty() && frees_.empty()) {
        // Read-only transaction: nothing to persist.
    } else if (engine_.config_.kind == EngineKind::Fast &&
               modified_count == 1 && allocs_.empty() &&
               frees_.empty() && !modified->fresh &&
               modified->io->headerDirty() &&
               modified->io->shadowBytes().size() <= kCacheLineSize) {
        status = commitInPlace(*modified);
        commit_path = "in-place";
        if (status.code() == StatusCode::TxConflict) {
            // RTM kept aborting: fall back to slot-header logging
            // (paper §3.2 footnote 1).
            if (auto *fr = engine_.recorder()) {
                fr->append(obs::FlightEventType::Fallback,
                           engine_.recorderEngineCode(), id_, 0, 0);
            }
            if (obs::enabled()) {
                static obs::Counter &c = obs::MetricsRegistry::global()
                    .counter("core.tx.inplace_fallbacks");
                c.inc();
                observeTx(obs::TraceOp::TxFallback, engine_name,
                          model_ns0);
            }
            status = commitLogged();
            logged = status.isOk();
            commit_path = "logged";
        }
    } else {
        status = commitLogged();
        logged = status.isOk();
        commit_path = "logged";
    }

    if (!status.isOk())
        return status;
    pages_.clear();
    allocs_.clear();
    frees_.clear();
    finished_ = true;
    // The logged path already ran txEnd under the log mutex; the other
    // paths run it here, still under this transaction's page latches.
    if (!logged)
        engine_.device_.txEnd(/*committed=*/true);
    if (auto *fr = engine_.recorder()) {
        // aux encodes the commit path: 0 read-only, 1 in-place,
        // 2 slot-header-logged.
        std::uint64_t path_code = logged ? 2 : 0;
        if (!logged && commit_path[0] == 'i')
            path_code = 1;
        fr->append(obs::FlightEventType::CommitPoint,
                   engine_.recorderEngineCode(), id_, 0, path_code);
    }
    engine_.stats_.txCommitted++;
    releaseLatches();
    if (obs::enabled()) {
        static obs::Counter &c =
            obs::MetricsRegistry::global().counter("core.tx.commits");
        c.inc();
        observeTx(obs::TraceOp::TxCommit, engine_name, model_ns0,
                  commit_path);
    }
    obs::spanEnd(/*committed=*/true, commit_path);
    return Status::ok();
}

} // namespace fasp::core
