#include "core/buffered_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "page/slotted_page.h"
#include "pm/device.h"

namespace fasp::core {

using pm::Component;
using pm::PhaseScope;

// --- BufferedEngine ----------------------------------------------------------

BufferedEngine::BufferedEngine(pm::PmDevice &device,
                               const EngineConfig &cfg,
                               const pager::Superblock &sb)
    : Engine(device, cfg, sb),
      cache_(sb.pageSize, cfg.volatileCachePages,
             [this](PageId pid, std::vector<std::uint8_t> &out) {
                 fetchDurable(pid, out);
             }),
      bitmapIO_(*this), allocator_(bitmapIO_, sb)
{}

std::unique_ptr<Transaction>
BufferedEngine::begin()
{
    stats_.txBegun++;
    return std::make_unique<BufferedTransaction>(*this, nextTxId());
}

std::uint8_t
BufferedEngine::CachedBitmapIO::readByte(std::uint32_t index) const
{
    engine_.txMutex_.assertHeld(); // allocator runs inside the tx
    PageId pid = 1 + index / engine_.sb_.pageSize;
    std::uint32_t off = index % engine_.sb_.pageSize;
    return engine_.cache_.get(pid).data[off];
}

void
BufferedEngine::CachedBitmapIO::writeByte(std::uint32_t index,
                                          std::uint8_t value)
{
    engine_.txMutex_.assertHeld(); // allocator runs inside the tx
    PageId pid = 1 + index / engine_.sb_.pageSize;
    std::uint32_t off = index % engine_.sb_.pageSize;
    engine_.cache_.get(pid).data[off] = value;
    engine_.cache_.markDirty(pid);
}

// --- BufferedTransaction -----------------------------------------------------

BufferedTransaction::BufferedTransaction(BufferedEngine &engine, TxId id)
    : Transaction(id), engine_(engine), txLock_(engine.txMutex_)
{
    engine_.device_.txBegin();
    // The op-begin record is durable before any of this transaction's
    // own persistence, so post-crash forensics can always name the
    // in-flight operation (or prove there was none).
    if (auto *fr = engine_.recorder()) {
        fr->append(obs::FlightEventType::OpBegin,
                   engine_.recorderEngineCode(), id, 0, 0);
    }
    obs::spanBegin(engineKindName(engine_.config_.kind),
                   engine_.recorderEngineCode(), id);
}

BufferedTransaction::~BufferedTransaction()
{
    if (!finished_)
        rollback();
}

std::size_t
BufferedTransaction::pageSize() const
{
    return engine_.sb_.pageSize;
}

PageId
BufferedTransaction::directoryPid() const
{
    return engine_.sb_.directoryPid;
}

pm::PhaseTracker *
BufferedTransaction::tracker() const
{
    return engine_.device_.phaseTracker();
}

page::PageIO &
BufferedTransaction::page(PageId pid, bool for_write)
{
    engine_.txMutex_.assertHeld(); // taken by the constructor
    obs::spanPageAccess(pid, for_write);
    wal::CachedPage &cached = engine_.cache_.get(pid);
    engine_.cache_.pin(pid);
    if (for_write)
        engine_.cache_.markDirty(pid);
    auto it = views_.find(pid);
    if (it == views_.end()) {
        it = views_
                 .emplace(pid, std::make_unique<page::BufferPageIO>(
                                   cached.data.data(),
                                   cached.data.size()))
                 .first;
    }
    return *it->second;
}

Result<PageId>
BufferedTransaction::allocPage()
{
    engine_.txMutex_.assertHeld(); // taken by the constructor
    auto pid = engine_.allocator_.allocate();
    if (!pid.isOk())
        return pid;
    // Materialize and pin the (stale) base image; the caller formats
    // it. Stale record bytes are unreachable once the header is
    // rewritten, exactly as in SQLite.
    engine_.cache_.get(*pid);
    engine_.cache_.pin(*pid);
    engine_.cache_.markDirty(*pid);
    allocs_.push_back(*pid);
    // A page allocated while defragmenting is the copy target;
    // anything else is tree growth (a split or a new root/leaf).
    bool defrag = pm::currentThreadComponent() == pm::Component::Defrag;
    if (auto *fr = engine_.recorder()) {
        fr->append(defrag ? obs::FlightEventType::Defrag
                          : obs::FlightEventType::PageSplit,
                   engine_.recorderEngineCode(), id_, *pid, 0);
    }
    if (defrag)
        obs::spanDefrag();
    else
        obs::spanSplit();
    return pid;
}

void
BufferedTransaction::freePage(PageId pid)
{
    engine_.txMutex_.assertHeld(); // taken by the constructor
    auto it = std::find(allocs_.begin(), allocs_.end(), pid);
    if (it != allocs_.end()) {
        // Allocated and freed within this transaction: never became
        // reachable, so it may be recycled immediately.
        allocs_.erase(it);
        engine_.allocator_.free(pid);
        engine_.cache_.rollbackPage(pid); // discard scribbles
    } else {
        // A live page must stay unavailable until commit: releasing
        // its id now would let this same transaction recycle it as a
        // fresh page, and the freed-page cleanup at commit would then
        // wipe the reincarnation's contents.
        frees_.push_back(pid);
    }
    views_.erase(pid);
}

void
BufferedTransaction::deferReclaim(PageId pid, const page::RecordRef &ref)
{
    // Volatile copies may reclaim immediately: commit persists the
    // result, rollback restores the clean snapshot.
    page::PageIO &view = page(pid, /*for_write=*/true);
    page::reclaimExtent(view, ref);
}

void
BufferedTransaction::rollback()
{
    if (finished_)
        return;
    engine_.txMutex_.assertHeld(); // taken by the constructor
    for (PageId pid : engine_.cache_.dirtyPages())
        engine_.cache_.rollbackPage(pid);
    engine_.cache_.unpinAll();
    views_.clear();
    allocs_.clear();
    frees_.clear();
    finished_ = true;
    engine_.device_.txEnd(/*committed=*/false);
    if (auto *fr = engine_.recorder()) {
        fr->append(obs::FlightEventType::Abort,
                   engine_.recorderEngineCode(), id_, 0, 0);
    }
    engine_.stats_.txRolledBack++;
    if (obs::enabled()) {
        static obs::Counter &c =
            obs::MetricsRegistry::global().counter("core.tx.rollbacks");
        c.inc();
        obs::Tracer::global().record(
            obs::TraceOp::TxAbort,
            engineKindName(engine_.config_.kind));
    }
    obs::spanEnd(/*committed=*/false, nullptr);
    // fasp-lint: allow(bare-mutex-lock) -- early release of the RAII
    // transaction lock; the unique_lock destructor stays the backstop.
    txLock_.unlock();
}

Status
BufferedTransaction::commit()
{
    FASP_ASSERT(!finished_);
    engine_.txMutex_.assertHeld(); // taken by the constructor
    std::uint64_t model_ns0 =
        obs::enabled() ? pm::PmDevice::threadModelNs() : 0;

    // Deferred frees: release the allocator bits now (cached bitmap
    // pages join the dirty set) and restore the freed pages' contents
    // to their clean snapshots so they drop out of the dirty set.
    for (PageId pid : frees_) {
        engine_.allocator_.free(pid);
        if (engine_.cache_.find(pid))
            engine_.cache_.rollbackPage(pid);
    }

    std::vector<PageId> dirty = engine_.cache_.dirtyPages();
    if (!dirty.empty()) {
        Status status = engine_.persistCommit(id_, dirty);
        if (!status.isOk())
            return status;
        PhaseScope phase(tracker(), Component::CommitMisc);
        for (PageId pid : dirty)
            engine_.cache_.commitPage(pid);
    }
    for (PageId pid : frees_)
        engine_.cache_.drop(pid);
    engine_.cache_.unpinAll();
    views_.clear();
    allocs_.clear();
    frees_.clear();
    finished_ = true;
    engine_.device_.txEnd(/*committed=*/true);
    if (auto *fr = engine_.recorder()) {
        // aux = 2: the buffered baselines always commit through their
        // log/journal (mirrors FaspTransaction's path encoding).
        std::uint64_t path_code = dirty.empty() ? 0 : 2;
        fr->append(obs::FlightEventType::CommitPoint,
                   engine_.recorderEngineCode(), id_, 0, path_code);
    }
    engine_.stats_.txCommitted++;
    engine_.stats_.logCommits++;
    if (obs::enabled()) {
        static obs::Counter &c =
            obs::MetricsRegistry::global().counter("core.tx.commits");
        c.inc();
        obs::Tracer::global().record(
            obs::TraceOp::TxCommit,
            engineKindName(engine_.config_.kind), 0, "logged",
            pm::PmDevice::threadModelNs() - model_ns0);
    }
    obs::spanEnd(/*committed=*/true, dirty.empty() ? "read-only"
                                                   : "logged");
    // fasp-lint: allow(bare-mutex-lock) -- early release of the RAII
    // transaction lock; the unique_lock destructor stays the backstop.
    txLock_.unlock();
    return Status::ok();
}

// --- NvwalEngine -------------------------------------------------------------

NvwalEngine::NvwalEngine(pm::PmDevice &device, const EngineConfig &cfg,
                         const pager::Superblock &sb)
    : BufferedEngine(device, cfg, sb), nvwal_(device, sb)
{}

Status
NvwalEngine::initFresh()
{
    nvwal_.format();
    return Status::ok();
}

Status
NvwalEngine::recover(wal::RecoveryBreakdown &breakdown)
{
    PhaseScope phase(device_.phaseTracker(), Component::Recovery);
    MutexLock lk(&txMutex_); // quiescent, but keeps the guard provable
    cache_.clear();
    FASP_RETURN_IF_ERROR(nvwal_.recover(&breakdown));
    // Resume txids above anything in the surviving WAL so a stale
    // uncommitted frame can never pair with a fresh commit mark.
    txCounter_ = std::max(txCounter_.load(), nvwal_.lastTxid());
    return Status::ok();
}

void
NvwalEngine::fetchDurable(PageId pid, std::vector<std::uint8_t> &out)
{
    nvwal_.fetchPage(pid, out);
}

Status
NvwalEngine::persistCommit(TxId txid, const std::vector<PageId> &dirty)
{
    std::vector<wal::NvwalDirtyPage> pages;
    pages.reserve(dirty.size());
    for (PageId pid : dirty) {
        wal::CachedPage *cached = cache_.find(pid);
        FASP_ASSERT(cached != nullptr);
        pages.push_back(wal::NvwalDirtyPage{pid, cached->data.data(),
                                            cached->clean.data()});
    }
    FASP_RETURN_IF_ERROR(nvwal_.commitTx(
        txid, std::span<const wal::NvwalDirtyPage>(pages)));

    // Lazy checkpointing (outside the per-query commit path in the
    // paper's measurements, but it must still happen).
    if (config_.autoCheckpoint && nvwal_.needsCheckpoint())
        return nvwal_.checkpoint();
    return Status::ok();
}

// --- JournalEngine -----------------------------------------------------------

JournalEngine::JournalEngine(pm::PmDevice &device,
                             const EngineConfig &cfg,
                             const pager::Superblock &sb)
    : BufferedEngine(device, cfg, sb), journal_(device, sb)
{}

Status
JournalEngine::initFresh()
{
    journal_.format();
    return Status::ok();
}

Status
JournalEngine::recover(wal::RecoveryBreakdown &breakdown)
{
    PhaseScope phase(device_.phaseTracker(), Component::Recovery);
    MutexLock lk(&txMutex_); // quiescent, but keeps the guard provable
    cache_.clear();
    auto rolled_back = journal_.recover(&breakdown);
    if (!rolled_back.isOk())
        return rolled_back.status();
    return Status::ok();
}

void
JournalEngine::fetchDurable(PageId pid, std::vector<std::uint8_t> &out)
{
    out.resize(sb_.pageSize);
    device_.read(sb_.pageOffset(pid), out.data(), out.size());
}

Status
JournalEngine::persistCommit(TxId txid, const std::vector<PageId> &dirty)
{
    (void)txid;
    // Figure 1a: journal the originals, seal ("fsync for journal"),
    // overwrite the database in place, then invalidate the journal.
    {
        PhaseScope phase(device_.phaseTracker(), Component::LogFlush);
        journal_.begin();
        for (PageId pid : dirty)
            FASP_RETURN_IF_ERROR(journal_.journalPage(pid));
        FASP_RETURN_IF_ERROR(journal_.seal());
    }
    {
        PhaseScope phase(device_.phaseTracker(), Component::Checkpoint);
        pm::SiteScope site(device_, "JournalEngine::persistCommit");
        for (PageId pid : dirty) {
            wal::CachedPage *cached = cache_.find(pid);
            FASP_ASSERT(cached != nullptr);
            PmOffset off = sb_.pageOffset(pid);
            device_.write(off, cached->data.data(),
                          cached->data.size());
            device_.flushRange(off, cached->data.size());
        }
        device_.sfence();
    }
    {
        PhaseScope phase(device_.phaseTracker(), Component::LogFlush);
        journal_.invalidate();
    }
    return Status::ok();
}

// --- LegacyWalEngine ---------------------------------------------------------

LegacyWalEngine::LegacyWalEngine(pm::PmDevice &device,
                                 const EngineConfig &cfg,
                                 const pager::Superblock &sb)
    : BufferedEngine(device, cfg, sb), wal_(device, sb)
{}

Status
LegacyWalEngine::initFresh()
{
    wal_.format();
    return Status::ok();
}

Status
LegacyWalEngine::recover(wal::RecoveryBreakdown &breakdown)
{
    PhaseScope phase(device_.phaseTracker(), Component::Recovery);
    MutexLock lk(&txMutex_); // quiescent, but keeps the guard provable
    cache_.clear();
    FASP_RETURN_IF_ERROR(wal_.recover(&breakdown));
    txCounter_ = std::max(txCounter_.load(), wal_.lastTxid());
    return Status::ok();
}

void
LegacyWalEngine::fetchDurable(PageId pid, std::vector<std::uint8_t> &out)
{
    wal_.fetchPage(pid, out);
}

Status
LegacyWalEngine::persistCommit(TxId txid,
                               const std::vector<PageId> &dirty)
{
    {
        PhaseScope phase(device_.phaseTracker(), Component::LogFlush);
        std::vector<wal::WalDirtyPage> pages;
        pages.reserve(dirty.size());
        for (PageId pid : dirty) {
            wal::CachedPage *cached = cache_.find(pid);
            FASP_ASSERT(cached != nullptr);
            pages.push_back(
                wal::WalDirtyPage{pid, cached->data.data()});
        }
        FASP_RETURN_IF_ERROR(wal_.commitTx(
            txid, std::span<const wal::WalDirtyPage>(pages)));
    }
    if (config_.autoCheckpoint && wal_.needsCheckpoint()) {
        PhaseScope phase(device_.phaseTracker(), Component::Checkpoint);
        return wal_.checkpoint();
    }
    return Status::ok();
}

} // namespace fasp::core
