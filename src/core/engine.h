// fasp-lint: allow-file(raw-std-sync) -- EngineStats monotonic counters
// and the tx-id allocator; nothing here blocks or guards shared state.
/**
 * @file
 * Engine: the top-level storage-engine interface uniting the paper's
 * schemes and baselines under one API.
 *
 *   FAST      — failure-atomic slotted paging with in-place commit via
 *               HTM for single-page transactions, slot-header logging
 *               otherwise (paper §4.2).
 *   FASH      — slot-header logging for every transaction (§4.1); no
 *               HTM requirement, headers may exceed a cache line.
 *   NVWAL     — DRAM buffer cache + differential logging in PM through
 *               a persistent heap (the paper's main baseline).
 *   LegacyWal — page-granularity WAL in PM (Figure 1b).
 *   Journal   — rollback journal + in-place database writes (Figure 1a).
 *
 * All engines share the same device layout (superblock / bitmap /
 * directory / data pages / log region) and the same B-tree, so every
 * measured difference comes from the commit protocol — as in the
 * paper, where all schemes live inside the same SQLite.
 */

#ifndef FASP_CORE_ENGINE_H
#define FASP_CORE_ENGINE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "btree/btree.h"
#include "btree/tx_page_io.h"
#include "common/status.h"
#include "common/types.h"
#include "htm/rtm.h"
#include "obs/flight_recorder.h"
#include "pager/pager.h"
#include "pm/pcas.h"
#include "wal/recovery_stats.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::core {

/** Which commit protocol an Engine implements. */
enum class EngineKind : std::uint8_t {
    Fast,
    Fash,
    Nvwal,
    LegacyWal,
    Journal,
};

/** Printable name ("FAST", "FASH", "NVWAL", ...). */
const char *engineKindName(EngineKind kind);

/** How FAST publishes a single-page commit's new slot header. */
enum class InPlaceCommitVia : std::uint8_t {
    /** Persistent CAS / bounded PMwCAS (DESIGN.md §14): word-granular
     *  publication, torn-line tolerant, no HTM requirement, and no
     *  shared line-lock table — concurrent commits to different pages
     *  never serialize on each other. */
    Pcas,
    /** The paper's HTM path: a single-cache-line RTM region publishes
     *  the header, one clflush makes it durable. Relies on the
     *  cache-line write-back being atomic (paper §3.2). */
    Rtm,
};

/** Engine construction parameters. */
struct EngineConfig
{
    EngineKind kind = EngineKind::Fast;

    /** Buffer-cache capacity in pages (buffered engines only). */
    std::size_t volatileCachePages = 4096;

    /** RTM behaviour (FAST only). */
    htm::RtmConfig rtm;

    /** After this many consecutive RTM aborts FAST falls back to
     *  slot-header logging for the commit (paper §3.2 footnote). */
    unsigned rtmRetriesBeforeFallback = 64;

    /** FAST's in-place publication primitive. Defaults to PCAS; the
     *  RTM path is kept for the ablation benches and for page sizes
     *  above pm::kPcasMaxPageSize, where the PMwCAS descriptor bit
     *  could alias a real slot offset. */
    InPlaceCommitVia inPlaceCommitVia = InPlaceCommitVia::Pcas;

    /** PCAS failure-injection / retry policy (FAST + PCAS only). */
    pm::PcasConfig pcas;

    /** Run the lazy checkpoint automatically when the log fills
     *  (NVWAL / LegacyWal). */
    bool autoCheckpoint = true;

    /** Formatting parameters (used when format = true). */
    pager::Pager::FormatParams format;
};

/** Per-engine operation counters. Relaxed atomics so concurrent
 *  transactions update them tear-free; copies snapshot per field. */
struct EngineStats
{
    std::atomic<std::uint64_t> txBegun{0};
    std::atomic<std::uint64_t> txCommitted{0};
    std::atomic<std::uint64_t> txRolledBack{0};
    std::atomic<std::uint64_t> inPlaceCommits{0}; //!< FAST fast path
    std::atomic<std::uint64_t> logCommits{0};     //!< slot-header-log
                                                  //!< commits
    std::atomic<std::uint64_t> rtmFallbacks{0};   //!< FAST HTM gave up
    std::atomic<std::uint64_t> pcasFallbacks{0};  //!< FAST PCAS gave up
    std::atomic<std::uint64_t> latchConflicts{0}; //!< transactions
                                                  //!< aborted by a
                                                  //!< latch conflict

    EngineStats() = default;
    EngineStats(const EngineStats &other) { copyFrom(other); }

    EngineStats &operator=(const EngineStats &other)
    {
        copyFrom(other);
        return *this;
    }

    void reset() { *this = EngineStats{}; }

  private:
    void copyFrom(const EngineStats &other)
    {
        txBegun = other.txBegun.load(std::memory_order_relaxed);
        txCommitted = other.txCommitted.load(std::memory_order_relaxed);
        txRolledBack =
            other.txRolledBack.load(std::memory_order_relaxed);
        inPlaceCommits =
            other.inPlaceCommits.load(std::memory_order_relaxed);
        logCommits = other.logCommits.load(std::memory_order_relaxed);
        rtmFallbacks =
            other.rtmFallbacks.load(std::memory_order_relaxed);
        pcasFallbacks =
            other.pcasFallbacks.load(std::memory_order_relaxed);
        latchConflicts =
            other.latchConflicts.load(std::memory_order_relaxed);
    }
};

/**
 * One transaction. Also acts as the TxPageIO provider for the B-tree,
 * so callers do:
 *
 *   auto tx = engine->begin();
 *   tree.insert(tx->pageIO(), key, value);
 *   tx->commit();
 */
class Transaction
{
  public:
    virtual ~Transaction() = default;

    /** Page-access provider for B-tree operations. */
    virtual btree::TxPageIO &pageIO() = 0;

    /**
     * Make every change durable and atomic per the engine's protocol.
     * After commit() the transaction is finished.
     */
    virtual Status commit() = 0;

    /** Discard every change. */
    virtual void rollback() = 0;

    TxId id() const { return id_; }
    bool finished() const { return finished_; }

  protected:
    explicit Transaction(TxId id) : id_(id) {}

    TxId id_;
    bool finished_ = false;
};

/**
 * Storage engine over one PM device.
 *
 * Thread safety: begin() and the convenience single-operation
 * transactions may be called from many threads at once. The FAST/FASH
 * engines run truly concurrent transactions under per-page latches and
 * abort with LatchConflict when two clients collide (callers retry);
 * the buffered baselines serialize whole transactions on an internal
 * mutex, reproducing SQLite's single-writer behaviour. create(),
 * recover, and stats reset are quiescent-only.
 *
 * The lock/capability model — which mutex guards which state, the
 * latch → log-mutex ordering, and where the static analysis hands off
 * to TSan — is catalogued in DESIGN.md §10; the concrete annotations
 * live on the derived engines (common/thread_annotations.h). The base
 * class itself needs no capability: its mutable state (stats_,
 * txCounter_) is all relaxed atomics.
 */
class Engine
{
  public:
    /**
     * Create an engine. With @p format the device is formatted fresh;
     * otherwise the existing database is opened and crash recovery
     * runs before the engine is returned.
     */
    static Result<std::unique_ptr<Engine>> create(pm::PmDevice &device,
                                                  const EngineConfig &cfg,
                                                  bool format);

    virtual ~Engine() = default;

    virtual EngineKind kind() const = 0;

    /** Start a transaction. Each thread drives its own transaction;
     *  a single Transaction object is not itself thread-safe. */
    virtual std::unique_ptr<Transaction> begin() = 0;

    // --- Convenience single-operation transactions -----------------------
    // (the Android pattern the paper optimizes: one insert per txn)

    /** Create a B-tree in its own transaction. */
    Result<btree::BTree> createTree(TreeId id);

    /** Single-insert transaction. */
    Status insert(btree::BTree &tree, std::uint64_t key,
                  std::span<const std::uint8_t> value);

    /** Single-update transaction. */
    Status update(btree::BTree &tree, std::uint64_t key,
                  std::span<const std::uint8_t> value);

    /** Single-delete transaction. */
    Status erase(btree::BTree &tree, std::uint64_t key);

    /** Read-only lookup (runs inside a transaction, rolled back). */
    Status get(btree::BTree &tree, std::uint64_t key,
               std::vector<std::uint8_t> &value);

    /**
     * Read-only range scan over [lo, hi] (runs inside a transaction,
     * rolled back). @p fn returns false to stop early; the callback's
     * value span is only valid during the call.
     */
    Status scan(btree::BTree &tree, std::uint64_t lo, std::uint64_t hi,
                const std::function<bool(std::uint64_t,
                                         std::span<const std::uint8_t>)> &fn);

    const pager::Superblock &superblock() const { return sb_; }
    pm::PmDevice &device() { return device_; }

    EngineStats &stats() { return stats_; }
    const EngineStats &stats() const { return stats_; }

    /** The persistent flight recorder, or nullptr when the image has
     *  no recorder region or FlightRecorder::enabled() was off at
     *  create() time. */
    obs::FlightRecorder *flightRecorder()
    {
        return flightRecorder_.get();
    }

  protected:
    Engine(pm::PmDevice &device, const EngineConfig &cfg,
           const pager::Superblock &sb)
        : device_(device), config_(cfg), sb_(sb)
    {}

    /** Fresh-database initialization; runs after format. */
    virtual Status initFresh() = 0;

    /** Post-crash recovery; runs before create() returns. Fills
     *  @p breakdown with the per-phase timings/counters of the pass
     *  (scan / log replay / log discard / torn-record repair), which
     *  create() folds into obs::RecoveryLedger. */
    virtual Status recover(wal::RecoveryBreakdown &breakdown) = 0;

    TxId nextTxId()
    {
        return txCounter_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /** Flight recorder, or nullptr (transactions null-check per
     *  event: the recorder-off path is one load and a branch). */
    obs::FlightRecorder *recorder() const
    {
        return flightRecorder_.get();
    }

    /** Engine code stored in flight records (EngineKind + 1; 0 is
     *  reserved for "unknown"). */
    std::uint8_t recorderEngineCode() const
    {
        return static_cast<std::uint8_t>(config_.kind) + 1;
    }

    pm::PmDevice &device_;
    EngineConfig config_;
    pager::Superblock sb_;
    EngineStats stats_;
    std::atomic<TxId> txCounter_{0};
    std::unique_ptr<obs::FlightRecorder> flightRecorder_;
};

} // namespace fasp::core

#endif // FASP_CORE_ENGINE_H
