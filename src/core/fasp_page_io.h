/**
 * @file
 * FaspPageIO: the PageIO backing used by the FAST and FASH engines.
 *
 * This class embodies the paper's central mechanism:
 *
 *  - Content writes go *in place* to PM. They land in page free space,
 *    which is "perishable scratch space" (paper §4.4) until the slot
 *    header commits, so a crash at any point cannot corrupt the page.
 *    Each write's byte range is tracked so commit can clflush exactly
 *    the dirty record bytes (Figure 7 "clflush(record)").
 *
 *  - Header writes are redirected to a volatile *shadow header* — the
 *    transaction-private image of the fixed header + record offset
 *    array. The shadow is published at commit time either by the FAST
 *    in-place RTM commit (shadow <= one cache line) or through the
 *    slot-header log.
 *
 *  - Scratch writes (intra-page free list) go straight to PM with no
 *    tracking or flushing: they never need failure atomicity (§4.3).
 *
 * Freshly allocated pages are write-through: they are unreachable
 * until the committing transaction publishes a pointer to them, so
 * even their headers can be written directly (paper §4.4: a crash
 * simply garbage-collects the orphan sibling).
 */

#ifndef FASP_CORE_FASP_PAGE_IO_H
#define FASP_CORE_FASP_PAGE_IO_H

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"
#include "page/page_io.h"

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::core {

/** See file comment. */
class FaspPageIO : public page::PageIO
{
  public:
    /**
     * @param write_through fresh page: all writes go straight to PM
     *        (still range-tracked so commit flushes them).
     */
    FaspPageIO(pm::PmDevice &device, PmOffset page_off,
               std::size_t page_size, bool write_through);

    std::size_t pageSize() const override { return pageSize_; }

    void readHeader(std::uint16_t off, void *dst,
                    std::size_t len) const override;
    void writeHeader(std::uint16_t off, const void *src,
                     std::size_t len) override;
    void readContent(std::uint16_t off, void *dst,
                     std::size_t len) const override;
    void writeContent(std::uint16_t off, const void *src,
                      std::size_t len) override;
    void readScratch(std::uint16_t off, void *dst,
                     std::size_t len) const override;
    void writeScratch(std::uint16_t off, const void *src,
                      std::size_t len) override;

    /** Durable slot-header extent: content writes below this would
     *  tear the committed header on a crash (see PageIO doc). */
    std::uint16_t contentFloor() const override
    {
        return durableHeaderEnd_;
    }

    // --- Shadow management (engine side) ---------------------------------

    /** Copy the page's current durable header into the shadow. */
    void materializeShadow();

    bool hasShadow() const { return !shadow_.empty(); }

    /** True once any header write hit the shadow. */
    bool headerDirty() const { return headerDirty_; }

    /** The new slot header to publish at commit. */
    std::span<const std::uint8_t> shadowBytes() const
    {
        return std::span<const std::uint8_t>(shadow_);
    }

    /** The pristine durable header captured when the shadow was
     *  materialized (length = the durable header extent at that time).
     *  The PCAS commit diffs this against shadowBytes() to find the
     *  visible words its CAS set must cover. */
    std::span<const std::uint8_t> baseBytes() const
    {
        return std::span<const std::uint8_t>(base_);
    }

    /** True if any tracked (content / write-through) write happened. */
    bool contentDirty() const { return !dirtyRanges_.empty(); }

    bool writeThrough() const { return writeThrough_; }

    PmOffset pageOff() const { return pageOff_; }

    /**
     * clflush every tracked dirty byte range (coalesced by cache
     * line). Returns the number of flushes issued.
     */
    std::size_t flushDirtyRanges();

  private:
    void track(std::uint16_t off, std::size_t len);

    pm::PmDevice &device_;
    PmOffset pageOff_;
    std::size_t pageSize_;
    bool writeThrough_;
    bool headerDirty_ = false;

    /** End of the page's durable slot header, captured when the
     *  shadow is materialized (0 for write-through pages). */
    std::uint16_t durableHeaderEnd_ = 0;

    /** Shadow header: fixed header + offset array; empty until
     *  materialized. Always sized to the current header extent. */
    std::vector<std::uint8_t> shadow_;

    /** Copy of the shadow as materialized (the old durable header). */
    std::vector<std::uint8_t> base_;

    /** Page-relative dirty byte ranges awaiting clflush at commit. */
    std::vector<std::pair<std::uint16_t, std::uint16_t>> dirtyRanges_;
};

} // namespace fasp::core

#endif // FASP_CORE_FASP_PAGE_IO_H
