/**
 * @file
 * BufferedEngine: common machinery for the baselines that keep a DRAM
 * buffer cache in front of PM — NVWAL, the rollback journal, and
 * page-granularity legacy WAL.
 *
 * Transactions mutate volatile page copies; commit() persists them via
 * the engine-specific protocol (differential WAL frames / journal +
 * in-place overwrite / full-page WAL frames). The allocator bitmap is
 * read and written through cached copies of the bitmap pages, so
 * allocation commits and rolls back with the rest of the transaction
 * for free.
 *
 * Concurrency: the buffer cache tracks one global dirty set, so these
 * baselines serialize whole transactions on an engine mutex held from
 * begin() to commit()/rollback() — reproducing SQLite's single-writer
 * model, which is also what the paper measured. Multi-client
 * throughput for them is therefore flat by design; the latch-based
 * FAST/FASH engines are the ones expected to scale.
 */

#ifndef FASP_CORE_BUFFERED_ENGINE_H
#define FASP_CORE_BUFFERED_ENGINE_H

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/engine.h"
#include "wal/journal.h"
#include "wal/legacy_wal.h"
#include "wal/nvwal_log.h"
#include "wal/volatile_cache.h"

namespace fasp::core {

class BufferedEngine;

/** Transaction over volatile page copies; see file comment. */
class BufferedTransaction : public Transaction, public btree::TxPageIO
{
  public:
    BufferedTransaction(BufferedEngine &engine, TxId id);
    ~BufferedTransaction() override;

    btree::TxPageIO &pageIO() override { return *this; }
    Status commit() override;
    void rollback() override;

    // --- TxPageIO ---------------------------------------------------------
    std::size_t pageSize() const override;
    page::PageIO &page(PageId pid, bool for_write) override;
    Result<PageId> allocPage() override;
    void freePage(PageId pid) override;
    void deferReclaim(PageId pid, const page::RecordRef &ref) override;
    PageId directoryPid() const override;
    pm::PhaseTracker *tracker() const override;
    pm::Component mutationComponent() const override
    {
        // Updating the DRAM copy: Figure 7 "volatile buffer caching".
        return pm::Component::VolatileCopy;
    }

  private:
    BufferedEngine &engine_;

    /** Whole-transaction serialization (see file comment); taken in
     *  the constructor, dropped when commit()/rollback() finishes.
     *  A lock handed from constructor to commit() is beyond the
     *  intraprocedural -Wthread-safety analysis: the methods that rely
     *  on it re-assert the capability via Mutex::assertHeld()
     *  (DESIGN.md §10). */
    std::unique_lock<Mutex> txLock_;

    std::unordered_map<PageId, std::unique_ptr<page::BufferPageIO>>
        views_;
    std::vector<PageId> allocs_;
    std::vector<PageId> frees_;
};

/** Abstract base; see file comment. */
class BufferedEngine : public Engine
{
  public:
    BufferedEngine(pm::PmDevice &device, const EngineConfig &cfg,
                   const pager::Superblock &sb);

    std::unique_ptr<Transaction> begin() override;

    /** Quiescent inspection only (tests/benches between runs) — a
     *  contract the intraprocedural analysis cannot see. */
    wal::VolatileCache &cache() NO_THREAD_SAFETY_ANALYSIS
    {
        return cache_;
    }

  protected:
    friend class BufferedTransaction;

    /** Read the newest committed image of @p pid from durable state.
     *  Reached through the cache's miss callback while the calling
     *  transaction holds txMutex_ (or during quiescent recovery), so
     *  implementations touch only engine-local durable structures —
     *  never cache_ — and need no capability of their own. */
    virtual void fetchDurable(PageId pid,
                              std::vector<std::uint8_t> &out) = 0;

    /** Engine-specific durable commit of the dirty page set. Called
     *  from BufferedTransaction::commit() under the whole-transaction
     *  mutex. */
    virtual Status persistCommit(TxId txid,
                                 const std::vector<PageId> &dirty)
        REQUIRES(txMutex_) = 0;

    /** BitmapIO over cached copies of the bitmap pages. Reached only
     *  from allocator calls made inside a transaction (txMutex_ held;
     *  re-asserted in the implementations). */
    class CachedBitmapIO : public pager::BitmapIO
    {
      public:
        explicit CachedBitmapIO(BufferedEngine &engine)
            : engine_(engine)
        {}

        std::uint8_t readByte(std::uint32_t index) const override;
        void writeByte(std::uint32_t index, std::uint8_t value) override;

      private:
        BufferedEngine &engine_;
    };

    Mutex txMutex_; //!< serializes whole transactions (begin() to
                    //!< commit()/rollback())
    wal::VolatileCache cache_ GUARDED_BY(txMutex_);
    CachedBitmapIO bitmapIO_;
    pager::PageAllocator allocator_ GUARDED_BY(txMutex_);
};

/** NVWAL: differential logging through a persistent heap (paper §2.2). */
class NvwalEngine : public BufferedEngine
{
  public:
    NvwalEngine(pm::PmDevice &device, const EngineConfig &cfg,
                const pager::Superblock &sb);

    EngineKind kind() const override { return EngineKind::Nvwal; }
    Status initFresh() override;
    Status recover(wal::RecoveryBreakdown &breakdown) override;

    wal::NvwalLog &walLog() { return nvwal_; }

  protected:
    void fetchDurable(PageId pid,
                      std::vector<std::uint8_t> &out) override;
    Status persistCommit(TxId txid,
                         const std::vector<PageId> &dirty) override
        REQUIRES(txMutex_);

  private:
    wal::NvwalLog nvwal_;
};

/** Rollback-journal engine (paper Figure 1a). */
class JournalEngine : public BufferedEngine
{
  public:
    JournalEngine(pm::PmDevice &device, const EngineConfig &cfg,
                  const pager::Superblock &sb);

    EngineKind kind() const override { return EngineKind::Journal; }
    Status initFresh() override;
    Status recover(wal::RecoveryBreakdown &breakdown) override;

    wal::RollbackJournal &journal() { return journal_; }

  protected:
    void fetchDurable(PageId pid,
                      std::vector<std::uint8_t> &out) override;
    Status persistCommit(TxId txid,
                         const std::vector<PageId> &dirty) override
        REQUIRES(txMutex_);

  private:
    wal::RollbackJournal journal_;
};

/** Page-granularity WAL engine (paper Figure 1b). */
class LegacyWalEngine : public BufferedEngine
{
  public:
    LegacyWalEngine(pm::PmDevice &device, const EngineConfig &cfg,
                    const pager::Superblock &sb);

    EngineKind kind() const override { return EngineKind::LegacyWal; }
    Status initFresh() override;
    Status recover(wal::RecoveryBreakdown &breakdown) override;

    wal::LegacyWal &walLog() { return wal_; }

  protected:
    void fetchDurable(PageId pid,
                      std::vector<std::uint8_t> &out) override;
    Status persistCommit(TxId txid,
                         const std::vector<PageId> &dirty) override
        REQUIRES(txMutex_);

  private:
    wal::LegacyWal wal_;
};

} // namespace fasp::core

#endif // FASP_CORE_BUFFERED_ENGINE_H
