#include "core/fasp_page_io.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "page/slotted_page.h"
#include "pm/device.h"

namespace fasp::core {

FaspPageIO::FaspPageIO(pm::PmDevice &device, PmOffset page_off,
                       std::size_t page_size, bool write_through)
    : device_(device), pageOff_(page_off), pageSize_(page_size),
      writeThrough_(write_through)
{}

void
FaspPageIO::track(std::uint16_t off, std::size_t len)
{
    if (len == 0)
        return;
    // Extend the previous range when writes are adjacent (the common
    // record-append pattern), else start a new one.
    if (!dirtyRanges_.empty()) {
        auto &[last_off, last_len] = dirtyRanges_.back();
        if (off >= last_off && off <= last_off + last_len) {
            std::uint16_t end = static_cast<std::uint16_t>(
                std::max<std::size_t>(last_off + last_len, off + len));
            last_len = static_cast<std::uint16_t>(end - last_off);
            return;
        }
    }
    dirtyRanges_.emplace_back(off, static_cast<std::uint16_t>(len));
}

void
FaspPageIO::materializeShadow()
{
    if (!shadow_.empty())
        return;
    std::uint16_t nrec = device_.readU16(pageOff_ + page::kOffNumRecords);
    std::size_t bytes = page::headerBytes(nrec);
    shadow_.resize(bytes);
    device_.read(pageOff_, shadow_.data(), bytes);
    durableHeaderEnd_ = static_cast<std::uint16_t>(bytes);
    base_ = shadow_;
}

void
FaspPageIO::readHeader(std::uint16_t off, void *dst,
                       std::size_t len) const
{
    if (!shadow_.empty()) {
        FASP_ASSERT(off + len <= shadow_.size());
        std::memcpy(dst, shadow_.data() + off, len);
        return;
    }
    device_.read(pageOff_ + off, dst, len);
}

void
FaspPageIO::writeHeader(std::uint16_t off, const void *src,
                        std::size_t len)
{
    if (writeThrough_) {
        device_.write(pageOff_ + off, src, len);
        track(off, len);
        return;
    }
    FASP_ASSERT(!shadow_.empty() &&
                "header write before shadow materialization");
    if (off + len > shadow_.size())
        shadow_.resize(off + len, 0);
    std::memcpy(shadow_.data() + off, src, len);
    headerDirty_ = true;
    // Keep the shadow trimmed to the current header extent so the
    // commit unit (and FAST's one-line check) is exact.
    if (off == page::kOffNumRecords && len >= 2) {
        std::uint16_t nrec = loadU16(shadow_.data());
        std::size_t bytes = page::headerBytes(nrec);
        if (bytes < shadow_.size())
            shadow_.resize(bytes);
    }
}

void
FaspPageIO::readContent(std::uint16_t off, void *dst,
                        std::size_t len) const
{
    device_.read(pageOff_ + off, dst, len);
}

void
FaspPageIO::writeContent(std::uint16_t off, const void *src,
                         std::size_t len)
{
    device_.write(pageOff_ + off, src, len);
    track(off, len);
}

void
FaspPageIO::readScratch(std::uint16_t off, void *dst,
                        std::size_t len) const
{
    device_.read(pageOff_ + off, dst, len);
}

void
FaspPageIO::writeScratch(std::uint16_t off, const void *src,
                         std::size_t len)
{
    // Free-list maintenance: stores without flushes; a crash may lose
    // them, which the lazy rebuild tolerates (paper §4.3). The scratch
    // write tells the persistency checker not to demand durability.
    device_.writeScratch(pageOff_ + off, src, len);
}

std::size_t
FaspPageIO::flushDirtyRanges()
{
    if (dirtyRanges_.empty())
        return 0;
    // Coalesce by cache line so overlapping ranges flush once.
    std::vector<PmOffset> lines;
    for (const auto &[off, len] : dirtyRanges_) {
        PmOffset start = cacheLineBase(pageOff_ + off);
        PmOffset end = pageOff_ + off + len;
        for (PmOffset line = start; line < end; line += kCacheLineSize)
            lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    for (PmOffset line : lines)
        device_.clflush(line);
    dirtyRanges_.clear();
    return lines.size();
}

} // namespace fasp::core
