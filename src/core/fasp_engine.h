/**
 * @file
 * FaspEngine: the paper's failure-atomic slotted-paging engines.
 *
 * Runs in two modes (paper Section 4):
 *   FASH — every commit goes through the slot-header log.
 *   FAST — a transaction that modified exactly one page, allocated and
 *          freed nothing, and whose new slot header fits a cache line
 *          commits *in place*: one RTM transaction publishes the new
 *          header, one clflush makes it durable. Everything else falls
 *          back to slot-header logging, as does FAST itself when RTM
 *          exhausts its retry budget.
 *
 * There is no DRAM buffer cache: the database pages in PM *are* the
 * buffer cache (the paper's PM-only buffer caching).
 */

#ifndef FASP_CORE_FASP_ENGINE_H
#define FASP_CORE_FASP_ENGINE_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/fasp_page_io.h"
#include "htm/rtm.h"
#include "wal/slot_header_log.h"

namespace fasp::core {

class FaspEngine;

/** Transaction for FAST/FASH; see file comment. */
class FaspTransaction : public Transaction, public btree::TxPageIO
{
  public:
    FaspTransaction(FaspEngine &engine, TxId id);
    ~FaspTransaction() override;

    btree::TxPageIO &pageIO() override { return *this; }
    Status commit() override;
    void rollback() override;

    // --- TxPageIO ---------------------------------------------------------
    std::size_t pageSize() const override;
    page::PageIO &page(PageId pid, bool for_write) override;
    Result<PageId> allocPage() override;
    void freePage(PageId pid) override;
    void deferReclaim(PageId pid, const page::RecordRef &ref) override;
    PageId directoryPid() const override;
    pm::PhaseTracker *tracker() const override;
    pm::Component mutationComponent() const override
    {
        return pm::Component::InPlaceInsert;
    }
    std::uint16_t maxLeafSlots() const override;

  private:
    struct PageState
    {
        std::unique_ptr<FaspPageIO> io;
        bool fresh = false;
        std::vector<page::RecordRef> reclaims;
    };

    PageState &state(PageId pid);
    Status commitInPlace(PageState &st);
    Status commitLogged();
    void applyReclaims();

    FaspEngine &engine_;
    std::unordered_map<PageId, PageState> pages_;
    std::vector<PageId> allocs_;
    std::vector<PageId> frees_;
};

/** See file comment. */
class FaspEngine : public Engine
{
  public:
    FaspEngine(pm::PmDevice &device, const EngineConfig &cfg,
               const pager::Superblock &sb);

    EngineKind kind() const override { return config_.kind; }
    std::unique_ptr<Transaction> begin() override;
    Status recover() override;

    Status initFresh() override;

    wal::SlotHeaderLog &log() { return log_; }
    htm::Rtm &rtm() { return rtm_; }

  private:
    friend class FaspTransaction;

    wal::SlotHeaderLog log_;
    htm::Rtm rtm_;

    /** Volatile mirror of the allocation bitmap (durable updates ride
     *  the slot-header log). */
    std::vector<std::uint8_t> bitmap_;
    pager::VectorBitmapIO bitmapIO_;
    pager::PageAllocator allocator_;
};

} // namespace fasp::core

#endif // FASP_CORE_FASP_ENGINE_H
