/**
 * @file
 * FaspEngine: the paper's failure-atomic slotted-paging engines.
 *
 * Runs in two modes (paper Section 4):
 *   FASH — every commit goes through the slot-header log.
 *   FAST — a transaction that modified exactly one page, allocated and
 *          freed nothing, and whose new slot header fits a cache line
 *          commits *in place*: one RTM transaction publishes the new
 *          header, one clflush makes it durable. Everything else falls
 *          back to slot-header logging, as does FAST itself when RTM
 *          exhausts its retry budget.
 *
 * There is no DRAM buffer cache: the database pages in PM *are* the
 * buffer cache (the paper's PM-only buffer caching).
 *
 * Concurrency (DESIGN.md §9): transactions follow strict two-phase
 * latching over the engine's striped per-page latch table — shared on
 * first read, upgraded or taken exclusive on first write, all held to
 * commit/rollback. Latches are acquired with a bounded spin only;
 * exhaustion throws LatchConflict, which rolls the transaction back so
 * the caller can retry — no hold-and-wait, hence no latch deadlock.
 * The in-place commit publishes its header via RTM while still holding
 * the page latch; logged commits additionally serialize on the engine
 * log mutex, since the slot-header log region (and its truncation) is
 * shared. Allocator bitmap updates take a dedicated mutex, always
 * nested inside the log mutex when both are held.
 */

#ifndef FASP_CORE_FASP_ENGINE_H
#define FASP_CORE_FASP_ENGINE_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/engine.h"
#include "core/fasp_page_io.h"
#include "htm/rtm.h"
#include "pager/latch_table.h"
#include "pm/pcas.h"
#include "wal/slot_header_log.h"

namespace fasp::core {

class FaspEngine;

/** Transaction for FAST/FASH; see file comment. */
class FaspTransaction : public Transaction, public btree::TxPageIO
{
  public:
    FaspTransaction(FaspEngine &engine, TxId id);
    ~FaspTransaction() override;

    btree::TxPageIO &pageIO() override { return *this; }
    Status commit() override;
    void rollback() override;

    // --- TxPageIO ---------------------------------------------------------
    std::size_t pageSize() const override;
    page::PageIO &page(PageId pid, bool for_write) override;
    Result<PageId> allocPage() override;
    void freePage(PageId pid) override;
    void deferReclaim(PageId pid, const page::RecordRef &ref) override;
    PageId directoryPid() const override;
    pm::PhaseTracker *tracker() const override;
    pm::Component mutationComponent() const override
    {
        return pm::Component::InPlaceInsert;
    }
    std::uint16_t maxLeafSlots() const override;

  private:
    struct PageState
    {
        std::unique_ptr<FaspPageIO> io;
        bool fresh = false;
        std::vector<page::RecordRef> reclaims;
    };

    enum class LatchMode : std::uint8_t { Shared, Exclusive };

    PageState &state(PageId pid);
    Status commitInPlace(PageState &st);
    Status commitInPlacePcas(PageState &st);
    Status commitInPlaceRtm(PageState &st);
    Status commitLogged();
    void applyReclaims();

    /** Acquire (or upgrade) the latch slot covering @p pid; throws
     *  LatchConflict when contended past the spin budget. Latches are
     *  tracked per *slot* so same-slot collisions inside one
     *  transaction cannot self-deadlock.
     *
     *  The strict-2PL latch set is acquired page by page, held across
     *  calls, and released at commit/rollback — a dynamic protocol the
     *  intraprocedural -Wthread-safety analysis cannot follow (hence
     *  the opt-out); TSan and the concurrent stress suite check it
     *  instead (DESIGN.md §10). */
    void latchPage(PageId pid, bool exclusive)
        NO_THREAD_SAFETY_ANALYSIS;
    void releaseLatches() NO_THREAD_SAFETY_ANALYSIS;

    FaspEngine &engine_;
    std::unordered_map<PageId, PageState> pages_;
    std::vector<PageId> allocs_;
    std::vector<PageId> frees_;
    std::unordered_map<std::size_t, LatchMode> latches_;
};

/** See file comment. */
class FaspEngine : public Engine
{
  public:
    FaspEngine(pm::PmDevice &device, const EngineConfig &cfg,
               const pager::Superblock &sb);

    EngineKind kind() const override { return config_.kind; }
    std::unique_ptr<Transaction> begin() override;
    Status recover(wal::RecoveryBreakdown &breakdown) override;

    Status initFresh() override;

    /** Quiescent inspection only (tests; no concurrent transactions) —
     *  a contract the intraprocedural analysis cannot see. */
    wal::SlotHeaderLog &log() NO_THREAD_SAFETY_ANALYSIS
    {
        return log_;
    }
    htm::Rtm &rtm() { return rtm_; }
    pm::Pcas &pcas() { return pcas_; }
    LatchTable &latches() { return latches_; }

    /** True when single-page commits publish via PCAS (config says so
     *  and the page size keeps header words flag-free). */
    bool commitViaPcas() const { return commitViaPcas_; }

  private:
    friend class FaspTransaction;

    /** Recovery pass over allocated pages stripping PCAS flag bits
     *  left in durable header words by a crash between the tagged
     *  publish and the (lazily persisted) tag clear. Returns the
     *  number of words swept. Quiescent-only; requires allocMutex_
     *  because it walks the freshly loaded bitmap. */
    std::uint64_t sweepHeaderTags() REQUIRES(allocMutex_);

    /** Serializes logged commits: the slot-header log region (cursor,
     *  frames, truncation) is one shared structure. Held across the
     *  whole commitLogged() including the checker's txEnd, so a later
     *  transaction reusing truncated log offsets cannot dirty lines
     *  still in this transaction's checked write set. */
    Mutex logMutex_;

    /** Guards the volatile bitmap mirror + allocator cursor. Nested
     *  inside logMutex_ when both are held, never the reverse. */
    Mutex allocMutex_ ACQUIRED_AFTER(logMutex_);

    wal::SlotHeaderLog log_ GUARDED_BY(logMutex_);
    htm::Rtm rtm_;
    pm::Pcas pcas_;
    bool commitViaPcas_;
    LatchTable latches_;

    /** Volatile mirror of the allocation bitmap (durable updates ride
     *  the slot-header log). */
    std::vector<std::uint8_t> bitmap_ GUARDED_BY(allocMutex_);
    pager::VectorBitmapIO bitmapIO_ GUARDED_BY(allocMutex_);
    pager::PageAllocator allocator_ GUARDED_BY(allocMutex_);
};

} // namespace fasp::core

#endif // FASP_CORE_FASP_ENGINE_H
