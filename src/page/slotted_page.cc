#include "page/slotted_page.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace fasp::page {

namespace {

/** Debug builds re-check the cheap fsck tier after every mutation;
 *  release builds compile the hook away (it is on every insert/update
 *  path). */
#ifndef NDEBUG
void
debugFsck(const PageIO &io)
{
    Status s = slottedFsck(io);
    if (!s.isOk())
        faspPanic("slottedFsck after mutation: %s",
                  s.toString().c_str());
}
#else
inline void
debugFsck(const PageIO &)
{}
#endif

/** Page-relative offset of the scratch freeHead field. */
std::uint16_t
freeHeadOff(const PageIO &io)
{
    return static_cast<std::uint16_t>(io.pageSize() - kScratchBytes);
}

/** Page-relative offset of the scratch freeTotal field. */
std::uint16_t
freeTotalOff(const PageIO &io)
{
    return static_cast<std::uint16_t>(io.pageSize() - kScratchBytes + 2);
}

/** End (exclusive) of the record content area. */
std::uint16_t
contentEnd(const PageIO &io)
{
    return static_cast<std::uint16_t>(io.pageSize() - kScratchBytes);
}

std::uint16_t
freeHead(const PageIO &io)
{
    return io.readScratchU16(freeHeadOff(io));
}

void
setFreeHead(PageIO &io, std::uint16_t off)
{
    io.writeScratchU16(freeHeadOff(io), off);
}

void
setFragFree(PageIO &io, std::uint16_t total)
{
    io.writeScratchU16(freeTotalOff(io), total);
}

/** Slot-array byte offset of slot @p slot. */
std::uint16_t
slotPos(std::uint16_t slot)
{
    return static_cast<std::uint16_t>(kSlotArrayOff + 2 * slot);
}

/**
 * Allocation footprint of a payload: record framing rounded up to
 * 2-byte alignment. Keeping every allocation even keeps the free gap
 * even, so the gap can never strand at 1 byte — too small for a slot
 * entry but nonzero — a state that forces needless copy-on-write
 * defragmentation cycles.
 */
std::uint16_t
allocFootprint(std::size_t payload_len)
{
    return static_cast<std::uint16_t>(
        (kRecordHeaderBytes + payload_len + 1) & ~std::size_t{1});
}

/**
 * Live record extents (off, footprint), sorted by offset. Footprints
 * are the padded allocation size (allocFootprint), not the raw record
 * size: the pad byte belongs to the record's allocation — reclaimExtent
 * frees it and the allocator handed it out — so free-list maintenance
 * must never treat it as free while the record lives. (A rebuild that
 * counted pad bytes as gaps produced free blocks overlapping live
 * records by one byte; a later free-list header write through such a
 * block corrupted the record's length prefix.)
 */
std::vector<std::pair<std::uint16_t, std::uint16_t>>
recordExtents(const PageIO &io)
{
    std::uint16_t nrec = numRecords(io);
    std::vector<std::pair<std::uint16_t, std::uint16_t>> extents;
    extents.reserve(nrec);
    for (std::uint16_t i = 0; i < nrec; ++i) {
        RecordRef ref = record(io, i);
        extents.emplace_back(ref.off, allocFootprint(ref.payloadLen));
    }
    std::sort(extents.begin(), extents.end());
    return extents;
}

/**
 * Pop a free block of at least @p need bytes (first fit, allocating
 * from the block's tail so the list links stay in place). Returns 0 if
 * no block fits. Rebuilds the list and retries once if the chain is
 * found inconsistent (§4.3 lazy repair).
 */
std::uint16_t
popFreeBlock(PageIO &io, std::uint16_t need)
{
    for (int pass = 0; pass < 2; ++pass) {
        std::uint16_t prev = 0;
        std::uint16_t cur = freeHead(io);
        std::size_t steps = 0;
        const std::uint16_t end = contentEnd(io);
        bool bad = false;
        while (cur != 0) {
            if (cur < kSlotArrayOff || cur + kMinFreeBlock > end ||
                ++steps > io.pageSize() / kMinFreeBlock) {
                bad = true;
                break;
            }
            std::uint16_t size = io.readScratchU16(cur);
            std::uint16_t next = io.readScratchU16(cur + 2);
            if (size < kMinFreeBlock || cur + size > end) {
                bad = true;
                break;
            }
            if (size >= need) {
                std::uint16_t total = fragFree(io);
                std::uint16_t taken;
                std::uint16_t result;
                if (size - need >= kMinFreeBlock) {
                    // Allocate from the tail; shrink the block in place.
                    io.writeScratchU16(
                        cur, static_cast<std::uint16_t>(size - need));
                    result = static_cast<std::uint16_t>(cur + size -
                                                        need);
                    taken = need;
                } else {
                    // Take the whole block (<=3 slack bytes leak until
                    // the next copy-on-write defragmentation).
                    if (prev == 0)
                        setFreeHead(io, next);
                    else
                        io.writeScratchU16(prev + 2, next);
                    result = cur;
                    taken = size;
                }
                setFragFree(io, static_cast<std::uint16_t>(
                    total >= taken ? total - taken : 0));
                return result;
            }
            prev = cur;
            cur = next;
        }
        if (!bad)
            return 0;
        rebuildFreeList(io);
    }
    return 0;
}

/** Largest free block on the list (0 if empty/inconsistent). */
std::uint16_t
largestFreeBlock(const PageIO &io)
{
    std::uint16_t best = 0;
    std::uint16_t cur = freeHead(io);
    std::size_t steps = 0;
    const std::uint16_t end = contentEnd(io);
    while (cur != 0) {
        if (cur < kSlotArrayOff || cur + kMinFreeBlock > end ||
            ++steps > io.pageSize() / kMinFreeBlock) {
            return 0;
        }
        std::uint16_t size = io.readScratchU16(cur);
        if (size < kMinFreeBlock || cur + size > end)
            return 0;
        best = std::max(best, size);
        cur = io.readScratchU16(cur + 2);
    }
    return best;
}

/**
 * Sum of the contiguous run of free blocks starting exactly at
 * contentStart. These blocks border the gap and can be absorbed back
 * into it (contentStart is a header field, so raising it commits
 * atomically with the transaction). Without this reclamation
 * contentStart only ever sinks and pages drift into gap exhaustion,
 * forcing needless copy-on-write defragmentation.
 */
std::uint16_t
absorbableRun(const PageIO &io)
{
    std::uint16_t cs = contentStart(io);
    const std::uint16_t end = contentEnd(io);
    std::vector<std::pair<std::uint16_t, std::uint16_t>> blocks;
    std::uint16_t cur = freeHead(io);
    std::size_t steps = 0;
    while (cur != 0) {
        if (cur < kSlotArrayOff || cur + kMinFreeBlock > end ||
            ++steps > io.pageSize() / kMinFreeBlock) {
            return 0; // inconsistent chain; repaired lazily elsewhere
        }
        std::uint16_t size = io.readScratchU16(cur);
        if (size < kMinFreeBlock || cur + size > end)
            return 0;
        blocks.emplace_back(cur, size);
        cur = io.readScratchU16(cur + 2);
    }
    std::sort(blocks.begin(), blocks.end());
    std::uint16_t run = 0;
    for (const auto &[off, size] : blocks) {
        if (off != cs + run)
            break;
        run = static_cast<std::uint16_t>(run + size);
    }
    return run;
}

/**
 * Absorb the free-block run bordering the gap into the gap: unlink
 * each block whose offset equals contentStart and raise contentStart
 * past it. Returns the new contentStart.
 */
std::uint16_t
absorbGapAdjacentBlocks(PageIO &io)
{
    std::uint16_t cs = contentStart(io);
    const std::uint16_t end = contentEnd(io);
    bool progress = true;
    while (progress) {
        progress = false;
        std::uint16_t prev = 0;
        std::uint16_t cur = freeHead(io);
        std::size_t steps = 0;
        while (cur != 0) {
            if (cur < kSlotArrayOff || cur + kMinFreeBlock > end ||
                ++steps > io.pageSize() / kMinFreeBlock) {
                return cs; // inconsistent; leave for lazy repair
            }
            std::uint16_t size = io.readScratchU16(cur);
            std::uint16_t next = io.readScratchU16(cur + 2);
            if (size < kMinFreeBlock || cur + size > end)
                return cs;
            if (cur == cs) {
                if (prev == 0)
                    setFreeHead(io, next);
                else
                    io.writeScratchU16(prev + 2, next);
                std::uint16_t total = fragFree(io);
                setFragFree(io, static_cast<std::uint16_t>(
                    total >= size ? total - size : 0));
                cs = static_cast<std::uint16_t>(cs + size);
                io.writeHeaderU16(kOffContentStart, cs);
                progress = true;
                break; // rescan for the next adjacent block
            }
            prev = cur;
            cur = next;
        }
    }
    return cs;
}

/**
 * Allocate @p need content bytes: from the gap first (cheap, shrinks
 * contentStart via a header write), then from the free list,
 * reclaiming gap-adjacent free blocks when the gap alone is short.
 * @p slot_reserve bytes of gap are kept back for slot-array growth.
 * Returns 0 on failure.
 */
std::uint16_t
allocateSpace(PageIO &io, std::uint16_t need, std::uint16_t slot_reserve)
{
    std::uint16_t nrec = numRecords(io);
    std::uint16_t reserved = reservedSlots(io);
    // Within the reserved slot region, slot growth is free.
    if (nrec < reserved)
        slot_reserve = 0;
    std::uint16_t cs = contentStart(io);
    std::uint16_t slot_end =
        std::max({headerBytes(std::max(nrec, reserved)),
                  io.contentFloor()});
    FASP_ASSERT(cs >= headerBytes(nrec));
    std::uint16_t gap =
        cs >= slot_end ? static_cast<std::uint16_t>(cs - slot_end) : 0;

    if (gap < need + slot_reserve) {
        cs = absorbGapAdjacentBlocks(io);
        gap = cs >= slot_end
                  ? static_cast<std::uint16_t>(cs - slot_end)
                  : 0;
    }
    if (gap >= need + slot_reserve) {
        std::uint16_t off = static_cast<std::uint16_t>(cs - need);
        io.writeHeaderU16(kOffContentStart, off);
        return off;
    }
    if (gap < slot_reserve)
        return 0;
    return popFreeBlock(io, need);
}

} // namespace

// --- Field accessors -----------------------------------------------------

std::uint16_t
numRecords(const PageIO &io)
{
    return io.readHeaderU16(kOffNumRecords);
}

std::uint16_t
contentStart(const PageIO &io)
{
    return io.readHeaderU16(kOffContentStart);
}

PageType
pageType(const PageIO &io)
{
    return static_cast<PageType>(io.readHeaderU16(kOffFlags) & 0x0f);
}

std::uint16_t
reservedSlots(const PageIO &io)
{
    return static_cast<std::uint16_t>(io.readHeaderU16(kOffFlags) >> 4);
}

std::uint16_t
level(const PageIO &io)
{
    return io.readHeaderU16(kOffLevel);
}

std::uint32_t
aux(const PageIO &io)
{
    return io.readHeaderU32(kOffAux);
}

void
setAux(PageIO &io, std::uint32_t value)
{
    io.writeHeaderU32(kOffAux, value);
}

std::uint16_t
slotOffset(const PageIO &io, std::uint16_t slot)
{
    return io.readHeaderU16(slotPos(slot));
}

// --- Initialization ------------------------------------------------------

void
init(PageIO &io, PageType type, std::uint16_t lvl,
     std::uint32_t aux_value, std::uint16_t reserved_slots)
{
    FASP_ASSERT(reserved_slots < (1u << 12));
    io.writeHeaderU16(kOffNumRecords, 0);
    io.writeHeaderU16(kOffContentStart, contentEnd(io));
    io.writeHeaderU16(kOffFlags, static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(type) |
        static_cast<std::uint16_t>(reserved_slots << 4)));
    io.writeHeaderU16(kOffLevel, lvl);
    io.writeHeaderU32(kOffAux, aux_value);
    setFreeHead(io, 0);
    setFragFree(io, 0);
}

// --- Record access -------------------------------------------------------

RecordRef
record(const PageIO &io, std::uint16_t slot)
{
    FASP_ASSERT(slot < numRecords(io));
    RecordRef ref;
    ref.off = slotOffset(io, slot);
    ref.payloadLen = io.readContentU16(ref.off);
    return ref;
}

std::uint64_t
recordKey(const PageIO &io, std::uint16_t slot)
{
    RecordRef ref = record(io, slot);
    return io.readContentU64(ref.off + kRecordHeaderBytes);
}

void
readPayload(const PageIO &io, std::uint16_t slot,
            std::vector<std::uint8_t> &out)
{
    RecordRef ref = record(io, slot);
    out.resize(ref.payloadLen);
    io.readContent(ref.off + kRecordHeaderBytes, out.data(),
                   ref.payloadLen);
}

PageId
childPid(const PageIO &io, std::uint16_t slot)
{
    RecordRef ref = record(io, slot);
    FASP_ASSERT(ref.payloadLen >= 12);
    return io.readContentU32(ref.off + kRecordHeaderBytes + 8);
}

// --- Search --------------------------------------------------------------

SearchResult
lowerBound(const PageIO &io, std::uint64_t key)
{
    std::uint16_t lo = 0;
    std::uint16_t hi = numRecords(io);
    while (lo < hi) {
        std::uint16_t mid = static_cast<std::uint16_t>((lo + hi) / 2);
        if (recordKey(io, mid) < key)
            lo = static_cast<std::uint16_t>(mid + 1);
        else
            hi = mid;
    }
    SearchResult res;
    res.slot = lo;
    res.found = lo < numRecords(io) && recordKey(io, lo) == key;
    return res;
}

// --- Space accounting ----------------------------------------------------

std::uint16_t
freeGap(const PageIO &io)
{
    std::uint16_t cs = contentStart(io);
    std::uint16_t slot_end = headerBytes(numRecords(io));
    return cs >= slot_end ? static_cast<std::uint16_t>(cs - slot_end) : 0;
}

std::uint16_t
fragFree(const PageIO &io)
{
    return io.readScratchU16(freeTotalOff(io));
}

FitResult
checkFit(const PageIO &io, std::uint16_t payload_len, bool needs_new_slot)
{
    std::uint16_t need = allocFootprint(payload_len);
    std::uint16_t nrec = numRecords(io);
    std::uint16_t reserved = reservedSlots(io);
    std::uint16_t slot_extra =
        needs_new_slot && nrec >= reserved ? 2 : 0;
    std::uint16_t cs = contentStart(io);
    std::uint16_t slot_end =
        std::max({headerBytes(std::max(nrec, reserved)),
                  io.contentFloor()});
    std::uint16_t gap =
        cs >= slot_end ? static_cast<std::uint16_t>(cs - slot_end) : 0;

    if (gap >= need + slot_extra)
        return FitResult::Fits;
    // The gap can be extended by absorbing adjacent free blocks.
    if (static_cast<std::size_t>(gap) + absorbableRun(io) >=
        static_cast<std::size_t>(need) + slot_extra) {
        return FitResult::Fits;
    }
    if (gap >= slot_extra && largestFreeBlock(io) >= need)
        return FitResult::Fits;

    // Not placeable in this layout. Decide between copy-on-write
    // defragmentation and a split by asking whether a *compacted* copy
    // of the live records plus the new one would fit a fresh page:
    // this correctly counts fragmented blocks, alignment leaks, AND
    // the space pinned by pre-commit immutability (deferred reclaims,
    // the durable-header floor) — all of which CoW recovers. This is
    // the paper's same-transaction copy-on-write rule (§4.3).
    std::size_t live = 0;
    for (std::uint16_t i = 0; i < nrec; ++i)
        live += allocFootprint(record(io, i).payloadLen);
    std::size_t compact_total =
        headerBytes(std::max<std::uint16_t>(
            static_cast<std::uint16_t>(nrec +
                                       (needs_new_slot ? 1 : 0)),
            reserved)) +
        live + need;
    if (compact_total <= io.pageSize() - kScratchBytes)
        return FitResult::NeedsDefrag;
    return FitResult::NeedsSplit;
}

// --- Mutations -----------------------------------------------------------

Status
insertRecord(PageIO &io, std::uint64_t key,
             std::span<const std::uint8_t> payload)
{
    FASP_ASSERT(payload.size() >= 8);
    std::uint16_t need = allocFootprint(payload.size());
    std::uint16_t off = allocateSpace(io, need, 2);
    if (off == 0) {
        // Debug-only hook; reading the env is benign even if a
        // setenv raced it (worst case: one lost diagnostic line).
        if (getenv("FASP_DEBUG_ALLOC")) { // NOLINT(concurrency-mt-unsafe)
            fprintf(stderr,
                    "alloc fail: need=%u nrec=%u reserved=%u cs=%u "
                    "floor=%u frag=%u head=%u\n",
                    need, numRecords(io), reservedSlots(io),
                    contentStart(io), io.contentFloor(), fragFree(io),
                    io.readScratchU16(static_cast<std::uint16_t>(
                        io.pageSize() - kScratchBytes)));
        }
        return statusPageFull("insertRecord: no space");
    }

    // (i) the record goes into free space: harmless before commit.
    io.writeContentU16(off, static_cast<std::uint16_t>(payload.size()));
    io.writeContent(off + kRecordHeaderBytes, payload.data(),
                    payload.size());

    // (ii) slot-header update: shift the tail of the offset array right
    // and splice in the new offset. For the PM engines this lands in
    // the volatile shadow and is only published at commit.
    std::uint16_t nrec = numRecords(io);
    SearchResult pos = lowerBound(io, key);
    if (pos.found)
        return statusAlreadyExists("insertRecord: duplicate key");
    std::uint16_t tail =
        static_cast<std::uint16_t>(nrec - pos.slot);
    if (tail > 0) {
        std::vector<std::uint8_t> buf(2 * tail);
        io.readHeader(slotPos(pos.slot), buf.data(), buf.size());
        io.writeHeader(slotPos(pos.slot + 1), buf.data(), buf.size());
    }
    io.writeHeaderU16(slotPos(pos.slot), off);
    io.writeHeaderU16(kOffNumRecords,
                      static_cast<std::uint16_t>(nrec + 1));
    debugFsck(io);
    return Status::ok();
}

Status
updateRecord(PageIO &io, std::uint16_t slot,
             std::span<const std::uint8_t> payload, RecordRef *old_ref)
{
    FASP_ASSERT(slot < numRecords(io));
    RecordRef old = record(io, slot);
    if (old_ref)
        *old_ref = old;

    std::uint16_t need = allocFootprint(payload.size());
    std::uint16_t off = allocateSpace(io, need, 0);
    if (off == 0)
        return statusPageFull("updateRecord: no space");

    io.writeContentU16(off, static_cast<std::uint16_t>(payload.size()));
    io.writeContent(off + kRecordHeaderBytes, payload.data(),
                    payload.size());
    // Atomically redirect the slot; the old record stays intact for
    // recovery until the engine reclaims it post-commit.
    io.writeHeaderU16(slotPos(slot), off);
    debugFsck(io);
    return Status::ok();
}

Status
eraseRecord(PageIO &io, std::uint16_t slot, RecordRef *old_ref)
{
    std::uint16_t nrec = numRecords(io);
    FASP_ASSERT(slot < nrec);
    RecordRef old = record(io, slot);
    if (old_ref)
        *old_ref = old;

    std::uint16_t tail = static_cast<std::uint16_t>(nrec - slot - 1);
    if (tail > 0) {
        std::vector<std::uint8_t> buf(2 * tail);
        io.readHeader(slotPos(slot + 1), buf.data(), buf.size());
        io.writeHeader(slotPos(slot), buf.data(), buf.size());
    }
    io.writeHeaderU16(kOffNumRecords,
                      static_cast<std::uint16_t>(nrec - 1));
    debugFsck(io);
    return Status::ok();
}

Status
dropLowerSlots(PageIO &io, std::uint16_t count,
               std::vector<RecordRef> *dropped)
{
    std::uint16_t nrec = numRecords(io);
    FASP_ASSERT(count <= nrec);
    if (dropped) {
        for (std::uint16_t i = 0; i < count; ++i)
            dropped->push_back(record(io, i));
    }
    std::uint16_t tail = static_cast<std::uint16_t>(nrec - count);
    if (tail > 0) {
        std::vector<std::uint8_t> buf(2 * tail);
        io.readHeader(slotPos(count), buf.data(), buf.size());
        io.writeHeader(slotPos(0), buf.data(), buf.size());
    }
    io.writeHeaderU16(kOffNumRecords, tail);
    debugFsck(io);
    return Status::ok();
}

void
reclaimExtent(PageIO &io, const RecordRef &ref)
{
    // Free the full (alignment-padded) allocation footprint.
    std::uint16_t size = allocFootprint(ref.payloadLen);
    if (size < kMinFreeBlock)
        return; // too small to track; recovered by the next CoW defrag
    io.writeScratchU16(ref.off, size);
    io.writeScratchU16(ref.off + 2, freeHead(io));
    setFreeHead(io, ref.off);
    setFragFree(io, static_cast<std::uint16_t>(fragFree(io) + size));
}

Status
defragmentInto(const PageIO &src, PageIO &dst)
{
    FASP_ASSERT(src.pageSize() == dst.pageSize());
    std::uint16_t nrec = numRecords(src);
    std::size_t live = 0;
    for (std::uint16_t i = 0; i < nrec; ++i)
        live += allocFootprint(record(src, i).payloadLen);
    // Preserve a fixed (FAST) reservation; otherwise re-reserve
    // adaptively for the page's current occupancy plus headroom,
    // clamped so the live records still fit.
    std::uint16_t reserve = clampReserve(
        src.pageSize(),
        std::max<std::uint16_t>(
            reservedSlots(src),
            static_cast<std::uint16_t>(nrec + nrec / 2 + 4)),
        live, nrec);
    init(dst, pageType(src), level(src), aux(src), reserve);
    std::vector<std::uint8_t> payload;
    for (std::uint16_t i = 0; i < nrec; ++i) {
        std::uint64_t key = recordKey(src, i);
        readPayload(src, i, payload);
        Status status = insertRecord(
            dst, key, std::span<const std::uint8_t>(payload));
        FASP_RETURN_IF_ERROR(status);
    }
    return Status::ok();
}

// --- Free-list maintenance -----------------------------------------------

bool
freeListConsistent(const PageIO &io)
{
    auto extents = recordExtents(io);
    const std::uint16_t end = contentEnd(io);
    std::uint16_t cur = freeHead(io);
    std::size_t sum = 0;
    std::size_t steps = 0;
    while (cur != 0) {
        if (cur < kSlotArrayOff || cur + kMinFreeBlock > end ||
            ++steps > io.pageSize() / kMinFreeBlock) {
            return false;
        }
        std::uint16_t size = io.readScratchU16(cur);
        if (size < kMinFreeBlock || cur + size > end)
            return false;
        // Overlap with any live record?
        for (const auto &[roff, rlen] : extents) {
            if (cur < roff + rlen && roff < cur + size)
                return false;
        }
        sum += size;
        cur = io.readScratchU16(cur + 2);
    }
    return sum == fragFree(io);
}

void
rebuildFreeList(PageIO &io)
{
    auto extents = recordExtents(io);
    const std::uint16_t end = contentEnd(io);
    std::uint16_t cursor = contentStart(io);
    std::uint16_t head = 0;
    std::uint16_t prev = 0;
    std::size_t total = 0;

    auto emit_gap = [&](std::uint16_t gap_off, std::uint16_t gap_len) {
        if (gap_len < kMinFreeBlock)
            return; // leaked until CoW defragmentation
        io.writeScratchU16(gap_off, gap_len);
        io.writeScratchU16(gap_off + 2, 0);
        if (prev == 0)
            head = gap_off;
        else
            io.writeScratchU16(prev + 2, gap_off);
        prev = gap_off;
        total += gap_len;
    };

    for (const auto &[roff, rlen] : extents) {
        if (roff > cursor)
            emit_gap(cursor, static_cast<std::uint16_t>(roff - cursor));
        cursor = std::max<std::uint16_t>(
            cursor, static_cast<std::uint16_t>(roff + rlen));
    }
    if (end > cursor)
        emit_gap(cursor, static_cast<std::uint16_t>(end - cursor));

    setFreeHead(io, head);
    setFragFree(io, static_cast<std::uint16_t>(total));
}

// --- Integrity -----------------------------------------------------------

Status
checkIntegrity(const PageIO &io)
{
    const std::size_t psize = io.pageSize();
    const std::uint16_t end = contentEnd(io);
    std::uint16_t nrec = numRecords(io);
    std::uint16_t cs = contentStart(io);

    if (headerBytes(std::max(nrec, reservedSlots(io))) > cs)
        return statusCorruption("slot array overlaps content area");
    if (cs > end)
        return statusCorruption("contentStart beyond content area");
    if (psize < kSlotArrayOff + kScratchBytes)
        return statusCorruption("page too small");

    std::vector<std::pair<std::uint16_t, std::uint16_t>> extents;
    std::uint64_t prev_key = 0;
    for (std::uint16_t i = 0; i < nrec; ++i) {
        std::uint16_t off = slotOffset(io, i);
        if (off < cs || off + kRecordHeaderBytes > end)
            return statusCorruption("record offset out of range");
        std::uint16_t len = io.readContentU16(off);
        if (off + kRecordHeaderBytes + len > end)
            return statusCorruption("record extends past content area");
        if (len < 8)
            return statusCorruption("record payload shorter than key");
        std::uint64_t key = io.readContentU64(off + kRecordHeaderBytes);
        if (i > 0 && key <= prev_key)
            return statusCorruption("slot keys not strictly ascending");
        prev_key = key;
        extents.emplace_back(
            off,
            static_cast<std::uint16_t>(kRecordHeaderBytes + len));
    }
    std::sort(extents.begin(), extents.end());
    for (std::size_t i = 1; i < extents.size(); ++i) {
        if (extents[i - 1].first + extents[i - 1].second >
            extents[i].first) {
            return statusCorruption("record extents overlap");
        }
    }
    return Status::ok();
}

Status
slottedFsck(const PageIO &io, bool trust_scratch)
{
    const std::size_t psize = io.pageSize();
    if (psize < kSlotArrayOff + kScratchBytes)
        return statusCorruption("fsck: page too small");

    PageType type = pageType(io);
    if (type != PageType::Leaf && type != PageType::Internal &&
        type != PageType::Overflow && type != PageType::Meta) {
        return statusCorruption("fsck: invalid page type");
    }

    const std::uint16_t end = contentEnd(io);
    const std::uint16_t nrec = numRecords(io);
    const std::uint16_t cs = contentStart(io);
    if (headerBytes(std::max(nrec, reservedSlots(io))) > cs)
        return statusCorruption("fsck: slot array overlaps content");
    if (cs > end)
        return statusCorruption("fsck: contentStart beyond content end");

    // Per-slot extent bounds, one pass, no sorting or key reads — the
    // key order and pairwise-overlap checks are the expensive tier.
    for (std::uint16_t i = 0; i < nrec; ++i) {
        std::uint16_t off = slotOffset(io, i);
        if (off < cs || off + kRecordHeaderBytes > end)
            return statusCorruption("fsck: slot offset out of range");
        std::uint16_t len = io.readContentU16(off);
        if (len < 8 || off + kRecordHeaderBytes + len > end)
            return statusCorruption("fsck: record extent out of range");
    }

    if (trust_scratch) {
        // Bounded free-list walk with the fragFree sum cross-checked.
        std::uint16_t cur = freeHead(io);
        std::size_t steps = 0;
        std::size_t sum = 0;
        while (cur != 0) {
            if (cur < kSlotArrayOff || cur + kMinFreeBlock > end ||
                ++steps > psize / kMinFreeBlock) {
                return statusCorruption("fsck: free-list walk escaped");
            }
            std::uint16_t size = io.readScratchU16(cur);
            if (size < kMinFreeBlock || cur + size > end)
                return statusCorruption("fsck: free block out of range");
            sum += size;
            cur = io.readScratchU16(cur + 2);
        }
        if (sum != fragFree(io))
            return statusCorruption(
                "fsck: fragFree disagrees with free list");
    }

#ifdef FASP_EXPENSIVE_CHECKS
    Status full = checkIntegrity(io);
    if (!full.isOk())
        return full;
    if (trust_scratch && !freeListConsistent(io))
        return statusCorruption("fsck: free block overlaps a record");
#endif
    return Status::ok();
}

} // namespace fasp::page
