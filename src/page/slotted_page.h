/**
 * @file
 * The slotted-page structure (paper Figure 2) and its failure-aware
 * mutation operations (paper Sections 3.2-3.3, 4.3).
 *
 * On-page layout (page size P):
 *
 *   0x00 u16 nrec           number of records
 *   0x02 u16 contentStart   first used byte of the record content area
 *   0x04 u16 flags          PageType in the low 4 bits
 *   0x06 u16 level          B-tree level (0 = leaf)
 *   0x08 u32 aux            internal: rightmost child; leaf: right
 *                           sibling (kInvalidPageId = none)
 *   0x0c      record offset array: u16 per slot, sorted by key
 *   ...       free gap (grows/shrinks at both ends)
 *   ...       record content area, grows DOWN from P-8
 *   P-8  u16 freeHead       offset of first intra-page free block (0 =
 *                           empty); scratch, never failure-atomic
 *   P-6  u16 freeTotal      total bytes on the free list; scratch
 *   P-4  u32 (reserved)
 *
 * A record at offset o is [u16 payloadLen][payload]. Leaf payloads are
 * [u64 key][value bytes]; internal payloads are [u64 key][u32 childPid].
 * A free block at offset o is [u16 size][u16 next] (size includes the
 * 4-byte block header).
 *
 * The slot header proper — the failure-atomicity unit — is the fixed
 * header plus the record offset array: headerBytes(nrec) bytes. A leaf
 * whose header fits in one cache line (nrec <= kMaxInPlaceSlots) is
 * eligible for the FAST in-place commit.
 */

#ifndef FASP_PAGE_SLOTTED_PAGE_H
#define FASP_PAGE_SLOTTED_PAGE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "page/page_io.h"

namespace fasp::page {

/** Role of a page within the database file. */
enum class PageType : std::uint8_t {
    Invalid = 0,
    Leaf,     //!< B-tree leaf: slotted, records = (key, value)
    Internal, //!< B-tree internal: slotted, records = (key, childPid)
    Overflow, //!< raw continuation page for large values
    Meta,     //!< raw page (superblock, allocator bitmap, ...)
};

/** Fixed-header field offsets. */
inline constexpr std::uint16_t kOffNumRecords = 0x00;
inline constexpr std::uint16_t kOffContentStart = 0x02;
inline constexpr std::uint16_t kOffFlags = 0x04;
inline constexpr std::uint16_t kOffLevel = 0x06;
inline constexpr std::uint16_t kOffAux = 0x08;

/** First slot-array byte. */
inline constexpr std::uint16_t kSlotArrayOff = 0x0c;

/** Scratch footer size (free-list head/total + reserved). */
inline constexpr std::uint16_t kScratchBytes = 8;

/** Minimum allocatable unit: a free block needs [u16 size][u16 next]. */
inline constexpr std::uint16_t kMinFreeBlock = 4;

/** Per-record framing overhead ([u16 payloadLen]). */
inline constexpr std::uint16_t kRecordHeaderBytes = 2;

/** Max slots for which the whole slot header fits one cache line:
 *  (64 - 12) / 2 = 26 (the paper's 8-byte fixed header gives 28). */
inline constexpr std::uint16_t kMaxInPlaceSlots =
    (kCacheLineSize - kSlotArrayOff) / 2;

/** Size in bytes of the slot header (commit unit) for @p nrec records. */
constexpr std::uint16_t
headerBytes(std::uint16_t nrec)
{
    return kSlotArrayOff + 2 * nrec;
}

/**
 * Clamp a desired slot reservation so @p live_bytes of records still
 * fit beside the reserved slot region on a @p page_size page (never
 * below @p nrec, which is known to fit).
 */
constexpr std::uint16_t
clampReserve(std::size_t page_size, std::uint16_t desired,
             std::size_t live_bytes, std::uint16_t nrec)
{
    std::size_t budget = page_size - kScratchBytes - kSlotArrayOff;
    std::size_t cap =
        live_bytes < budget ? (budget - live_bytes) / 2 : 0;
    std::uint16_t clamped =
        desired < cap ? desired : static_cast<std::uint16_t>(cap);
    return clamped > nrec ? clamped : nrec;
}

// --- Field accessors -----------------------------------------------------

std::uint16_t numRecords(const PageIO &io);
std::uint16_t contentStart(const PageIO &io);
PageType pageType(const PageIO &io);

/** Reserved slot-array capacity (flags bits 4..15). FAST leaves
 *  reserve kMaxInPlaceSlots so the slot header occupies a fixed
 *  cache-line region and slot growth never competes with record
 *  space (paper §4.2: the leaf slot header is one cache line). */
std::uint16_t reservedSlots(const PageIO &io);
std::uint16_t level(const PageIO &io);
std::uint32_t aux(const PageIO &io);
void setAux(PageIO &io, std::uint32_t value);

/** Record offset stored in slot @p slot (0-based, key-sorted). */
std::uint16_t slotOffset(const PageIO &io, std::uint16_t slot);

// --- Initialization ------------------------------------------------------

/** Format @p io as an empty slotted page of @p type at @p level,
 *  optionally pre-reserving @p reserved_slots slot entries. */
void init(PageIO &io, PageType type, std::uint16_t level,
          std::uint32_t aux_value = kInvalidPageId,
          std::uint16_t reserved_slots = 0);

// --- Record access -------------------------------------------------------

/** Location of slot @p slot's record. Payload is at off+2. */
struct RecordRef
{
    std::uint16_t off;        //!< record start (length prefix)
    std::uint16_t payloadLen; //!< payload bytes
};

RecordRef record(const PageIO &io, std::uint16_t slot);

/** Key (first 8 payload bytes) of slot @p slot. */
std::uint64_t recordKey(const PageIO &io, std::uint16_t slot);

/** Copy slot @p slot's payload into @p out (resized to fit). */
void readPayload(const PageIO &io, std::uint16_t slot,
                 std::vector<std::uint8_t> &out);

/** Child page id of internal-page slot @p slot (payload bytes 8..11). */
PageId childPid(const PageIO &io, std::uint16_t slot);

// --- Search --------------------------------------------------------------

/** Binary-search result over the sorted slot array. */
struct SearchResult
{
    std::uint16_t slot; //!< match, or insertion position if !found
    bool found;
};

/** First slot with key >= @p key. */
SearchResult lowerBound(const PageIO &io, std::uint64_t key);

// --- Space accounting ----------------------------------------------------

/** Bytes in the contiguous gap between slot array and content area. */
std::uint16_t freeGap(const PageIO &io);

/** Bytes on the intra-page free list (scratch freeTotal). */
std::uint16_t fragFree(const PageIO &io);

/** Outcome of a fit check for a prospective insertion/update. */
enum class FitResult {
    Fits,        //!< allocatable now (gap or a single free block)
    NeedsDefrag, //!< total free space suffices but is fragmented (§4.3)
    NeedsSplit,  //!< page genuinely full
};

/**
 * Can a record with @p payload_len payload bytes be placed here?
 * @param needs_new_slot true for insert (grows slot array), false for
 *        an in-place update that reuses the existing slot.
 */
FitResult checkFit(const PageIO &io, std::uint16_t payload_len,
                   bool needs_new_slot = true);

// --- Mutations -----------------------------------------------------------

/**
 * Insert (@p key, @p payload) keeping slots sorted. The caller must have
 * established checkFit() == Fits. Duplicate keys are the caller's
 * responsibility (the B-tree rejects them).
 *
 * Content bytes are written through writeContent (in-place into free
 * space for the PM engines); the slot-array shift and nrec bump go
 * through writeHeader (into the shadow for the PM engines).
 */
Status insertRecord(PageIO &io, std::uint64_t key,
                    std::span<const std::uint8_t> payload);

/**
 * Replace slot @p slot's payload with @p payload *without overwriting
 * the old record* (paper §3.2 "Updating a record"): the new record goes
 * into free space and only the slot's offset changes. The old extent is
 * NOT freed here — the engine reclaims it after commit (reclaimExtent).
 *
 * @param[out] old_ref the replaced record's extent, for deferred free.
 */
Status updateRecord(PageIO &io, std::uint16_t slot,
                    std::span<const std::uint8_t> payload,
                    RecordRef *old_ref);

/**
 * Delete slot @p slot by removing its offset from the slot array (paper
 * §3.2 "Deleting a record"). The record extent is NOT freed here; see
 * updateRecord.
 *
 * @param[out] old_ref the deleted record's extent.
 */
Status eraseRecord(PageIO &io, std::uint16_t slot, RecordRef *old_ref);

/**
 * Remove the first @p count slots (the records migrating to a new left
 * sibling during a split, paper Figure 4): the slot array shifts down
 * and nrec shrinks, but the record bytes stay untouched — they are the
 * recovery image until the transaction commits.
 *
 * @param[out] dropped extents of the removed records, for deferred
 *             reclamation after commit.
 */
Status dropLowerSlots(PageIO &io, std::uint16_t count,
                      std::vector<RecordRef> *dropped);

/**
 * Post-commit reclamation: push the extent [ref.off,
 * ref.off + 2 + ref.payloadLen) onto the intra-page free list. Scratch
 * only — crash-inconsistency here is tolerated and lazily repaired.
 */
void reclaimExtent(PageIO &io, const RecordRef &ref);

/**
 * Copy all live records of @p src into freshly-initialized @p dst in
 * slot order, compacting free space (the paper's copy-on-write
 * defragmentation, §4.3). @p dst must be an empty page of the same size.
 */
Status defragmentInto(const PageIO &src, PageIO &dst);

// --- Free-list maintenance (§4.3) ----------------------------------------

/**
 * Verify the intra-page free list: chain well-formed, blocks inside the
 * content area, no overlap with live records, freeTotal matches.
 */
bool freeListConsistent(const PageIO &io);

/**
 * Rebuild the free list from the record offset array (the paper's lazy
 * repair after a crash dropped scratch writes): every maximal gap in
 * the content area not covered by a live record becomes a free block.
 */
void rebuildFreeList(PageIO &io);

// --- Integrity -----------------------------------------------------------

/**
 * Structural invariants: header fields in range, slots sorted strictly
 * by key, record extents inside the content area and non-overlapping.
 * @return Ok or Corruption with a description.
 */
Status checkIntegrity(const PageIO &io);

/**
 * Two-tier Stasis-style fsck (DESIGN.md §13). The always-on cheap tier
 * is O(records) with no allocation — header bounds, per-slot extent
 * bounds, and (when @p trust_scratch) a bounded free-list walk with the
 * fragFree sum cross-checked — so the model checker can afford it after
 * every schedule and mutations can assert it in debug builds.
 * Configuring with -DFASP_EXPENSIVE_CHECKS=ON compiles in the expensive
 * tier as well: the full checkIntegrity() pass (strict key order,
 * pairwise extent overlap) plus free-block/record overlap validation.
 *
 * Pass @p trust_scratch = false for pages recovered from a crash
 * image whose free list may not have been rebuilt yet: scratch state
 * is best-effort by contract there, and popFreeBlock() repairs it
 * lazily, so staleness is not corruption.
 */
Status slottedFsck(const PageIO &io, bool trust_scratch = true);

} // namespace fasp::page

#endif // FASP_PAGE_SLOTTED_PAGE_H
