/**
 * @file
 * PageIO: the byte-level access abstraction under the slotted-page code.
 *
 * The slotted-page algorithms (insert / update / delete / split support /
 * defragmentation) are written once against this interface. Engines back
 * it differently:
 *
 *  - FAST / FASH: content writes go in-place to PM (they land in free
 *    space, so they are harmless before commit) while header writes are
 *    redirected to a volatile *shadow header* that is only published at
 *    commit time — by an RTM in-place commit or through the slot-header
 *    log. This is the paper's core idea.
 *
 *  - NVWAL / legacy WAL / rollback journal: every write goes to a
 *    volatile buffer-cache copy of the page; commit persists it via
 *    differential WAL frames / page-granularity logs.
 *
 * The page is split into three regions with different atomicity needs:
 *   header  [0, headerBytes)          — commit mark; failure-atomic
 *   content [headerBytes, size-8)     — free-space writes; pre-commit OK
 *   scratch [size-8, size)            — intra-page free list; never
 *                                       atomic, rebuilt lazily (§4.3)
 */

#ifndef FASP_PAGE_PAGE_IO_H
#define FASP_PAGE_PAGE_IO_H

#include <cstdint>
#include <vector>

#include "common/byte_io.h"
#include "common/types.h"

namespace fasp::page {

/** Byte-level page accessor; see file comment. */
class PageIO
{
  public:
    virtual ~PageIO() = default;

    /** Page size in bytes. */
    virtual std::size_t pageSize() const = 0;

    /**
     * Lowest content offset a pre-commit in-place write may use. The
     * PM engines return the end of the page's DURABLE slot header:
     * when an uncommitted split or delete shrinks the shadow header,
     * the vacated slot-array bytes are still live in the durable
     * header and must not be overwritten before commit (the hazard the
     * paper resolves with same-transaction copy-on-write, §4.3).
     * Volatile-copy engines may return 0.
     */
    virtual std::uint16_t contentFloor() const { return 0; }

    /** Read @p len header bytes at page-relative @p off. */
    virtual void readHeader(std::uint16_t off, void *dst,
                            std::size_t len) const = 0;

    /** Write @p len header bytes at @p off (may go to a shadow). */
    virtual void writeHeader(std::uint16_t off, const void *src,
                             std::size_t len) = 0;

    /** Read @p len content bytes at @p off. */
    virtual void readContent(std::uint16_t off, void *dst,
                             std::size_t len) const = 0;

    /** Write @p len content bytes at @p off (in-place into free space
     *  for the PM engines). */
    virtual void writeContent(std::uint16_t off, const void *src,
                              std::size_t len) = 0;

    /** Read @p len scratch bytes at @p off (off is page-relative). */
    virtual void readScratch(std::uint16_t off, void *dst,
                             std::size_t len) const = 0;

    /** Write @p len scratch bytes at @p off; never failure-atomic. */
    virtual void writeScratch(std::uint16_t off, const void *src,
                              std::size_t len) = 0;

    // --- typed helpers ---------------------------------------------------

    std::uint16_t readHeaderU16(std::uint16_t off) const
    {
        std::uint8_t buf[2];
        readHeader(off, buf, 2);
        return loadU16(buf);
    }

    std::uint32_t readHeaderU32(std::uint16_t off) const
    {
        std::uint8_t buf[4];
        readHeader(off, buf, 4);
        return loadU32(buf);
    }

    void writeHeaderU16(std::uint16_t off, std::uint16_t v)
    {
        std::uint8_t buf[2];
        storeU16(buf, v);
        writeHeader(off, buf, 2);
    }

    void writeHeaderU32(std::uint16_t off, std::uint32_t v)
    {
        std::uint8_t buf[4];
        storeU32(buf, v);
        writeHeader(off, buf, 4);
    }

    std::uint16_t readContentU16(std::uint16_t off) const
    {
        std::uint8_t buf[2];
        readContent(off, buf, 2);
        return loadU16(buf);
    }

    std::uint32_t readContentU32(std::uint16_t off) const
    {
        std::uint8_t buf[4];
        readContent(off, buf, 4);
        return loadU32(buf);
    }

    std::uint64_t readContentU64(std::uint16_t off) const
    {
        std::uint8_t buf[8];
        readContent(off, buf, 8);
        return loadU64(buf);
    }

    void writeContentU16(std::uint16_t off, std::uint16_t v)
    {
        std::uint8_t buf[2];
        storeU16(buf, v);
        writeContent(off, buf, 2);
    }

    std::uint16_t readScratchU16(std::uint16_t off) const
    {
        std::uint8_t buf[2];
        readScratch(off, buf, 2);
        return loadU16(buf);
    }

    void writeScratchU16(std::uint16_t off, std::uint16_t v)
    {
        std::uint8_t buf[2];
        storeU16(buf, v);
        writeScratch(off, buf, 2);
    }
};

/**
 * PageIO over a plain in-memory buffer. Backs the unit tests and the
 * volatile buffer-cache copies used by NVWAL / journal / legacy WAL.
 */
class BufferPageIO : public PageIO
{
  public:
    /** Wrap @p buf of @p size bytes; the buffer must outlive this. */
    BufferPageIO(std::uint8_t *buf, std::size_t size)
        : buf_(buf), size_(size)
    {}

    std::size_t pageSize() const override { return size_; }

    void readHeader(std::uint16_t off, void *dst,
                    std::size_t len) const override
    {
        copyOut(off, dst, len);
    }

    void writeHeader(std::uint16_t off, const void *src,
                     std::size_t len) override
    {
        copyIn(off, src, len);
    }

    void readContent(std::uint16_t off, void *dst,
                     std::size_t len) const override
    {
        copyOut(off, dst, len);
    }

    void writeContent(std::uint16_t off, const void *src,
                      std::size_t len) override
    {
        copyIn(off, src, len);
    }

    void readScratch(std::uint16_t off, void *dst,
                     std::size_t len) const override
    {
        copyOut(off, dst, len);
    }

    void writeScratch(std::uint16_t off, const void *src,
                      std::size_t len) override
    {
        copyIn(off, src, len);
    }

  private:
    void copyOut(std::uint16_t off, void *dst, std::size_t len) const;
    void copyIn(std::uint16_t off, const void *src, std::size_t len);

    std::uint8_t *buf_;
    std::size_t size_;
};

} // namespace fasp::page

#endif // FASP_PAGE_PAGE_IO_H
