#include "page/page_io.h"

#include <cstring>

#include "common/logging.h"

namespace fasp::page {

void
BufferPageIO::copyOut(std::uint16_t off, void *dst, std::size_t len) const
{
    FASP_ASSERT(off + len <= size_);
    std::memcpy(dst, buf_ + off, len);
}

void
BufferPageIO::copyIn(std::uint16_t off, const void *src, std::size_t len)
{
    FASP_ASSERT(off + len <= size_);
    std::memcpy(buf_ + off, src, len);
}

} // namespace fasp::page
