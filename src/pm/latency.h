/**
 * @file
 * Persistent-memory latency model.
 *
 * Mirrors the paper's Quartz-based emulation rules (Section 5):
 *  - PM write latency is charged once per clflush instruction (store
 *    instructions are free: the CPU cache hides them);
 *  - PM read latency is charged per cache-line miss through a simulated
 *    CPU-side cache (Quartz charges per LLC miss epoch);
 *  - DRAM accesses cost only real wall time.
 *
 * Latencies are charged into a deterministic model-time accumulator
 * instead of busy-wait spinning, so figures are reproducible.
 */

#ifndef FASP_PM_LATENCY_H
#define FASP_PM_LATENCY_H

#include <cstdint>

namespace fasp::pm {

/** Latency parameters in nanoseconds. */
struct LatencyModel
{
    /** Local DRAM access latency (the paper's testbed measures 120 ns). */
    std::uint64_t dramReadNs = 120;

    /** PM read latency charged per simulated-cache miss. */
    std::uint64_t pmReadNs = 300;

    /** PM write latency charged per clflush. */
    std::uint64_t pmWriteNs = 300;

    /** Cost of a memory fence (not charged by the paper; default 0). */
    std::uint64_t fenceNs = 0;

    /** Extra PM read cost over DRAM, charged on a miss. */
    std::uint64_t readPenaltyNs() const
    {
        return pmReadNs > dramReadNs ? pmReadNs - dramReadNs : 0;
    }

    /** Model with read/write latency @p read / @p write ns. */
    static LatencyModel of(std::uint64_t read, std::uint64_t write)
    {
        LatencyModel m;
        m.pmReadNs = read;
        m.pmWriteNs = write;
        return m;
    }

    /** DRAM-speed PM (the paper's 120/120 baseline point). */
    static LatencyModel dramSpeed() { return of(120, 120); }
};

} // namespace fasp::pm

#endif // FASP_PM_LATENCY_H
