#include "pm/pcas.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <thread>

#include "pm/checker.h"
#include "pm/device.h"

namespace fasp::pm {

namespace {

/** Distinct cache-line bases of @p count sorted word offsets, flushed
 *  once each. Fence once after — never inside — the loop. */
template <typename OffOf>
void
flushWordLines(PmDevice &device, std::size_t count, OffOf offOf)
{
    PmOffset lastLine = ~PmOffset{0};
    for (std::size_t i = 0; i < count; ++i) {
        PmOffset line = offOf(i) & ~PmOffset{kCacheLineSize - 1};
        if (line != lastLine) {
            device.clflush(line);
            lastLine = line;
        }
    }
}

/** Calling thread's monotonic PCAS counters (see pcasThreadCounters). */
thread_local PcasThreadCounters t_pcasCounters;

} // namespace

const PcasThreadCounters &
pcasThreadCounters()
{
    return t_pcasCounters;
}

Pcas::Pcas(PmDevice &device, PmOffset descRegionOff,
           const PcasConfig &config)
    : device_(device), descOff_(descRegionOff), config_(config),
      rng_(config.seed)
{
    assert(descRegionOff % 8 == 0);
}

PmOffset
Pcas::slotOff(std::size_t slot) const
{
    return descOff_ + slot * kDescSlotBytes;
}

PmOffset
Pcas::entryOff(std::size_t slot, std::size_t i) const
{
    return slotOff(slot) + 16 + i * 24;
}

std::uint64_t
Pcas::descPtr(std::size_t slot)
{
    return kPmwcasDescBit | static_cast<std::uint64_t>(slot);
}

void
Pcas::setConfig(const PcasConfig &config)
{
    config_ = config;
    MutexLock lk(&rngMu_);
    rng_ = Rng(config.seed);
}

bool
Pcas::rollInjectedFail()
{
    if (config_.failProbability <= 0.0)
        return false;
    MutexLock lk(&rngMu_);
    return rng_.nextBool(config_.failProbability);
}

unsigned
Pcas::acquireSlot()
{
    for (;;) {
        std::uint32_t mask = slotMask_.load(std::memory_order_relaxed);
        unsigned slot = 0;
        while (slot < kDescSlots && (mask & (1u << slot)) != 0)
            ++slot;
        if (slot == kDescSlots) {
            // More concurrent mwcas()es than slots: extremely rare
            // (16 slots vs. per-page latched commits). Wait one out.
            std::this_thread::yield();
            continue;
        }
        if (slotMask_.compare_exchange_weak(mask, mask | (1u << slot),
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed))
            return slot;
    }
}

void
Pcas::releaseSlot(unsigned slot)
{
    slotMask_.fetch_and(~(1u << slot), std::memory_order_acq_rel);
}

std::uint64_t
Pcas::helpClear(PmOffset off, std::uint64_t tagged)
{
    device_.clflush(off & ~PmOffset{kCacheLineSize - 1});
    device_.sfence();
    clearTag(off, tagged);
    stats_.helps.fetch_add(1, std::memory_order_relaxed);
    ++t_pcasCounters.helps;
    return pcasStrip(tagged);
}

void
Pcas::clearTag(PmOffset off, std::uint64_t tagged)
{
    std::uint64_t expected = tagged;
    device_.casU64(off, expected, pcasStrip(tagged));
    // Losing the clear race is fine: the winner stored the same
    // stripped value. Either way the word is untagged now.
    if (PersistencyChecker *chk = device_.checker())
        chk->onTagClear(off);
    // The clear store is deliberately never flushed (a crash that
    // catches the tagged value in the image is resolved by recovery's
    // tag sweep), so tell the checker it is best-effort by contract.
    device_.markScratch(off, 8);
}

PcasResult
Pcas::cas(PmOffset off, std::uint64_t oldVal, std::uint64_t newVal)
{
    assert(off % 8 == 0);
    assert(!pcasTagged(oldVal) && !pcasTagged(newVal));
    SiteScope site(device_, "pm::Pcas::cas");

    for (unsigned attempt = 0; attempt < config_.maxRetries;
         ++attempt) {
        stats_.casAttempts.fetch_add(1, std::memory_order_relaxed);
        ++t_pcasCounters.attempts;
        if (attempt > 0)
            ++t_pcasCounters.retries;
        if (rollInjectedFail()) {
            stats_.casInjected.fetch_add(1, std::memory_order_relaxed);
            continue;
        }

        std::uint64_t expected = oldVal;
        // fasp-analyze: allow(v1s) -- a lost CAS writes nothing, and
        // the winning branch clflushes + fences the tagged line; the
        // analyzer models casU64 as an unconditional tagging store.
        if (device_.casU64(off, expected,
                           newVal | kPcasDirtyBit)) {
            if (PersistencyChecker *chk = device_.checker())
                chk->onTagSet(off, device_.eventCount(),
                              device_.site());
            device_.clflush(off & ~PmOffset{kCacheLineSize - 1});
            // fasp-analyze: allow(fence-in-loop) -- protocol fence: the
            // tagged word must be durable before its tag clears.
            device_.sfence();
            clearTag(off, newVal | kPcasDirtyBit);
            stats_.casCommits.fetch_add(1, std::memory_order_relaxed);
            return PcasResult::Ok;
        }

        // Lost. If the word holds our expected value under a lingering
        // dirty tag, help it to durability and retry; anything else is
        // a real concurrent modification.
        if ((expected & kPcasDirtyBit) != 0 &&
            (expected & kPmwcasDescBit) == 0 &&
            pcasStrip(expected) == oldVal) {
            helpClear(off, expected);
            continue;
        }
        stats_.casConflicts.fetch_add(1, std::memory_order_relaxed);
        return PcasResult::Conflict;
    }
    stats_.casExhausted.fetch_add(1, std::memory_order_relaxed);
    return PcasResult::Exhausted;
}

PcasResult
Pcas::mwcas(const MwcasEntry *entries, std::size_t count)
{
    assert(count >= 1 && count <= kMaxMwcasWords);
    SiteScope site(device_, "pm::Pcas::mwcas");

    // Install in ascending address order so two overlapping mwcas()es
    // meet on the lowest shared word instead of deadlocking.
    std::array<MwcasEntry, kMaxMwcasWords> sorted{};
    std::copy(entries, entries + count, sorted.begin());
    std::sort(sorted.begin(), sorted.begin() + count,
              [](const MwcasEntry &a, const MwcasEntry &b) {
                  return a.off < b.off;
              });
    for (std::size_t i = 0; i < count; ++i) {
        assert(sorted[i].off % 8 == 0);
        assert(!pcasTagged(sorted[i].oldVal) &&
               !pcasTagged(sorted[i].newVal));
        assert(i == 0 || sorted[i - 1].off != sorted[i].off);
    }

    for (unsigned attempt = 0; attempt < config_.maxRetries;
         ++attempt) {
        stats_.mwcasAttempts.fetch_add(1, std::memory_order_relaxed);
        ++t_pcasCounters.attempts;
        if (attempt > 0)
            ++t_pcasCounters.retries;
        if (rollInjectedFail()) {
            stats_.mwcasInjected.fetch_add(1,
                                           std::memory_order_relaxed);
            continue;
        }

        unsigned slot = acquireSlot();

        // Persist the descriptor body first, then flip it Active: a
        // durable Active status therefore implies durable entries, so
        // recovery never rolls back through torn addresses.
        device_.writeU64(slotOff(slot) + 8, count);
        for (std::size_t i = 0; i < count; ++i) {
            // fasp-analyze: allow(v1s) -- every entry word lies inside
            // the flushRange(slotOff(slot), 16 + count*24) extent
            // below; entryOff arithmetic is opaque to the analyzer.
            device_.writeU64(entryOff(slot, i) + 0, sorted[i].off);
            // fasp-analyze: allow(v1s) -- extent-covered (see above).
            device_.writeU64(entryOff(slot, i) + 8, sorted[i].oldVal);
            // fasp-analyze: allow(v1s) -- extent-covered (see above).
            device_.writeU64(entryOff(slot, i) + 16,
                             sorted[i].newVal);
        }
        device_.flushRange(slotOff(slot), 16 + count * 24);
        // fasp-analyze: allow(fence-in-loop) -- protocol fence: entries
        // must be durable before the status word flips Active.
        device_.sfence();
        device_.writeU64(slotOff(slot), kSlotActive);
        device_.clflush(slotOff(slot));
        // fasp-analyze: allow(fence-in-loop) -- protocol fence: a durable
        // Active status must precede any descriptor-pointer install.
        device_.sfence();

        PcasResult r = mwcasAttempt(slot, sorted.data(), count);
        releaseSlot(slot);
        if (r == PcasResult::Ok) {
            stats_.mwcasCommits.fetch_add(1,
                                          std::memory_order_relaxed);
            return r;
        }
        stats_.mwcasConflicts.fetch_add(1, std::memory_order_relaxed);
        return PcasResult::Conflict;
    }
    stats_.mwcasExhausted.fetch_add(1, std::memory_order_relaxed);
    return PcasResult::Exhausted;
}

PcasResult
Pcas::mwcasAttempt(unsigned slot, const MwcasEntry *entries,
                   std::size_t count)
{
    const std::uint64_t ptr = descPtr(slot);
    PersistencyChecker *chk = device_.checker();

    // Phase 1: install the descriptor pointer into every target word.
    std::size_t installed = 0;
    for (; installed < count; ++installed) {
        const MwcasEntry &e = entries[installed];
        std::uint64_t expected = e.oldVal;
        // fasp-analyze: allow(v1s) -- installed pointers are flushed
        // by the flushWordLines() helper after the loop, outside this
        // intraprocedural view; a lost CAS writes nothing.
        bool ok = device_.casU64(e.off, expected, ptr);
        if (!ok && (expected & kPcasDirtyBit) != 0 &&
            (expected & kPmwcasDescBit) == 0 &&
            pcasStrip(expected) == e.oldVal) {
            helpClear(e.off, expected);
            expected = e.oldVal;
            // fasp-analyze: allow(v1s) -- same flushWordLines()
            // delegation as the first install attempt above.
            ok = device_.casU64(e.off, expected, ptr);
        }
        if (!ok) {
            rollBackInstall(slot, entries, installed);
            return PcasResult::Conflict;
        }
        if (chk != nullptr)
            chk->onTagSet(e.off, device_.eventCount(),
                          device_.site());
    }
    flushWordLines(device_, count,
                   [&](std::size_t i) { return entries[i].off; });
    device_.sfence();

    // Commit point: a durable Succeeded status decides the mwcas. The
    // fence above guarantees no target word can still hold its old
    // value in the durable image past this flip.
    device_.writeU64(slotOff(slot), kSlotSucceeded);
    device_.clflush(slotOff(slot));
    device_.sfence();

    // Phase 2: replace pointers with tagged new values, persist them,
    // then clear the tags lazily (see clearTag).
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t expected = ptr;
        // fasp-analyze: allow(v1s) -- tagged values are flushed by
        // flushWordLines() after the loop and their tags cleared
        // lazily by clearTag (recovery strips any survivor).
        device_.casU64(entries[i].off, expected,
                       entries[i].newVal | kPcasDirtyBit);
    }
    flushWordLines(device_, count,
                   [&](std::size_t i) { return entries[i].off; });
    device_.sfence();
    for (std::size_t i = 0; i < count; ++i)
        clearTag(entries[i].off, entries[i].newVal | kPcasDirtyBit);

    // Free the slot durably before DRAM reuse, so a crash during the
    // next occupant's descriptor write can never pair a stale Active
    // status with half-written entries.
    device_.writeU64(slotOff(slot), kSlotFree);
    device_.clflush(slotOff(slot));
    device_.sfence();
    return PcasResult::Ok;
}

void
Pcas::rollBackInstall(unsigned slot, const MwcasEntry *entries,
                      std::size_t installed)
{
    const std::uint64_t ptr = descPtr(slot);
    PersistencyChecker *chk = device_.checker();
    for (std::size_t i = 0; i < installed; ++i) {
        std::uint64_t expected = ptr;
        // fasp-analyze: allow(v1s) -- rolled-back words are flushed by
        // the flushWordLines() call below (installed > 0 whenever this
        // loop ran); a lost CAS writes nothing.
        device_.casU64(entries[i].off, expected, entries[i].oldVal);
        if (chk != nullptr)
            chk->onTagClear(entries[i].off);
    }
    if (installed > 0) {
        flushWordLines(device_, installed, [&](std::size_t i) {
            return entries[i].off;
        });
        device_.sfence();
    }
    // As in the success path: Free must be durable before slot reuse.
    device_.writeU64(slotOff(slot), kSlotFree);
    device_.clflush(slotOff(slot));
    device_.sfence();
}

std::uint64_t
Pcas::read(PmOffset off)
{
    assert(off % 8 == 0);
    for (;;) {
        std::uint64_t v = device_.loadU64Atomic(off);
        if ((v & kPmwcasDescBit) == 0) {
            if ((v & kPcasDirtyBit) == 0)
                return v;
            SiteScope site(device_, "pm::Pcas::read");
            return helpClear(off, v);
        }

        // Descriptor pointer: resolve the logical value against the
        // descriptor instead of mutating the word (phase 2 belongs to
        // the owner; our linearization point is the status we read).
        SiteScope site(device_, "pm::Pcas::read");
        auto slot = static_cast<std::size_t>(pcasStrip(v));
        if (slot >= kDescSlots)
            continue; // torn garbage; re-read resolves
        std::uint64_t status = device_.readU64(slotOff(slot));
        std::uint64_t cnt = device_.readU64(slotOff(slot) + 8);
        if ((status != kSlotActive && status != kSlotSucceeded) ||
            cnt > kMaxMwcasWords)
            continue; // descriptor already freed; word has moved on
        bool found = false;
        std::uint64_t oldVal = 0;
        std::uint64_t newVal = 0;
        for (std::size_t i = 0; i < cnt && !found; ++i) {
            if (device_.readU64(entryOff(slot, i)) == off) {
                oldVal = device_.readU64(entryOff(slot, i) + 8);
                newVal = device_.readU64(entryOff(slot, i) + 16);
                found = true;
            }
        }
        if (!found || device_.loadU64Atomic(off) != v)
            continue; // slot was recycled under us; re-read
        return status == kSlotSucceeded ? newVal : oldVal;
    }
}

void
Pcas::recover()
{
    SiteScope site(device_, "pm::Pcas::recover");
    for (std::size_t slot = 0; slot < kDescSlots; ++slot) {
        std::uint64_t status = device_.readU64(slotOff(slot));
        if (status != kSlotActive && status != kSlotSucceeded)
            continue; // Free (or never-written zeroes): nothing held
        std::uint64_t cnt = device_.readU64(slotOff(slot) + 8);
        if (cnt > kMaxMwcasWords)
            cnt = 0; // unreachable by protocol; stay defensive
        const std::uint64_t ptr = descPtr(slot);
        for (std::size_t i = 0; i < cnt; ++i) {
            PmOffset addr = device_.readU64(entryOff(slot, i));
            std::uint64_t oldVal =
                device_.readU64(entryOff(slot, i) + 8);
            std::uint64_t newVal =
                device_.readU64(entryOff(slot, i) + 16);
            std::uint64_t cur = device_.readU64(addr);
            if (status == kSlotSucceeded) {
                // Roll forward: the fence before the Succeeded flip
                // rules out `old` here; rewrite both transient forms.
                if (cur == ptr || cur == (newVal | kPcasDirtyBit)) {
                    device_.writeU64(addr, newVal);
                    device_.clflush(addr &
                                    ~PmOffset{kCacheLineSize - 1});
                }
            } else {
                if (cur == ptr) {
                    device_.writeU64(addr, oldVal);
                    device_.clflush(addr &
                                    ~PmOffset{kCacheLineSize - 1});
                }
            }
        }
        if (status == kSlotSucceeded)
            stats_.recoveredForward.fetch_add(
                1, std::memory_order_relaxed);
        else
            stats_.recoveredBack.fetch_add(1,
                                           std::memory_order_relaxed);
        device_.writeU64(slotOff(slot), kSlotFree);
        device_.clflush(slotOff(slot));
    }
    device_.sfence();
    slotMask_.store(0, std::memory_order_release);
}

} // namespace fasp::pm
