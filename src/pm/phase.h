/**
 * @file
 * Execution-phase accounting used to reproduce the paper's breakdown
 * figures (Figures 6, 7, and 8).
 *
 * Code regions are tagged with a Component via RAII PhaseScope objects.
 * Each component accumulates (a) exclusive wall-clock compute time and
 * (b) modelled PM latency charged by the device while the component is
 * active, plus event counters (clflush / fence / read-miss counts).
 */

#ifndef FASP_PM_PHASE_H
#define FASP_PM_PHASE_H

#include <array>
#include <chrono>
#include <cstdint>

namespace fasp::pm {

/**
 * Fine-grained cost components. The bench layer groups these into the
 * paper's Search / Page Update / Commit stacks.
 */
enum class Component : std::uint8_t {
    None = 0,        //!< untagged execution
    Search,          //!< B-tree root-to-leaf traversal (Fig. 6)
    // --- Page Update sub-components (Fig. 7) ---
    VolatileCopy,    //!< NVWAL: updating the volatile buffer-cache copy
    InPlaceInsert,   //!< FAST/FASH: in-place record store into free space
    UpdateSlotHeader,//!< building/copying the new slot header (volatile)
    FlushRecord,     //!< clflush of in-place record bytes
    Defrag,          //!< on-demand page defragmentation
    // --- Commit sub-components (Fig. 8) ---
    NvwalCompute,    //!< NVWAL differential-log computation
    HeapMgmt,        //!< NVWAL persistent heap manager (pmalloc/pfree)
    LogFlush,        //!< flushing log / WAL frames + commit mark
    WalIndex,        //!< NVWAL volatile WAL-index construction
    Checkpoint,      //!< eager checkpoint of slot-header log entries
    Atomic64BWrite,  //!< FAST in-place commit (RTM + header-line flush)
    CommitMisc,      //!< other commit-path bookkeeping
    // --- Not part of insert breakdown ---
    Recovery,        //!< post-crash log scan and replay
    SqlFrontend,     //!< SQL parse/plan time (Figs. 11-12)
    NumComponents,
};

/** Short printable name of a component. */
const char *componentName(Component comp);

/**
 * Innermost Component the *calling thread* is executing, None outside
 * any PhaseScope. Maintained by PhaseScope on a thread-local stack —
 * independently of whether a PhaseTracker is attached — so multi-
 * threaded observers (the obs PM-event attribution, DESIGN.md §11) can
 * bill persistence events to the phase that issued them.
 */
Component currentThreadComponent();

namespace detail {
void pushThreadComponent(Component comp);
void popThreadComponent();

/**
 * Observer invoked with the new innermost component whenever the
 * calling thread's PhaseScope nesting changes (after a push or pop;
 * @p entered is true for a push). Installed once, process-wide, by the
 * obs span profiler so it can settle per-transaction sub-phase time
 * without pm depending on obs; nullptr (the default) disables it. The
 * hook must be cheap and re-entrancy free: it runs on the engines' hot
 * paths.
 */
using PhaseHook = void (*)(Component newTop, bool entered);
void setPhaseHook(PhaseHook hook);
} // namespace detail

/**
 * Per-component accumulator. One tracker per engine/benchmark run; not
 * thread-safe (the paper's workload is single-threaded SQLite).
 */
class PhaseTracker
{
  public:
    static constexpr std::size_t kNumComponents =
        static_cast<std::size_t>(Component::NumComponents);

    PhaseTracker();

    /** Reset all accumulators. */
    void reset();

    /** Enter @p comp; pairs with pop(). Prefer PhaseScope. */
    void push(Component comp);

    /** Leave the current component. */
    void pop();

    /** Component currently on top of the stack. */
    Component current() const { return stack_[depth_]; }

    /** Charge @p ns of modelled PM latency to the current component. */
    void addModelNs(std::uint64_t ns) { modelNs_[topIndex()] += ns; }

    /** Count one clflush against the current component. */
    void countFlush() { ++flushes_[topIndex()]; }

    /** Count one fence against the current component. */
    void countFence() { ++fences_[topIndex()]; }

    /** Count one simulated read miss against the current component. */
    void countReadMiss() { ++readMisses_[topIndex()]; }

    /** Exclusive wall time spent in @p comp, nanoseconds. */
    std::uint64_t wallNs(Component comp) const;

    /** Modelled PM delay charged while @p comp was active, nanoseconds. */
    std::uint64_t modelNs(Component comp) const;

    /** wallNs + modelNs: the reported figure time for @p comp. */
    std::uint64_t totalNs(Component comp) const;

    /** clflush count attributed to @p comp. */
    std::uint64_t flushCount(Component comp) const;

    /** fence count attributed to @p comp. */
    std::uint64_t fenceCount(Component comp) const;

    /** read-miss count attributed to @p comp. */
    std::uint64_t readMissCount(Component comp) const;

    /** Number of times a scope for @p comp was entered. */
    std::uint64_t scopeCount(Component comp) const;

    /** Sum of totalNs over every component. */
    std::uint64_t grandTotalNs() const;

    /** Sum of flush counts over every component. */
    std::uint64_t grandTotalFlushes() const;

  private:
    using Clock = std::chrono::steady_clock;

    std::size_t topIndex() const
    {
        return static_cast<std::size_t>(stack_[depth_]);
    }

    /** Charge wall time since lastMark_ to the current component. */
    void settle();

    static constexpr std::size_t kMaxDepth = 16;

    std::array<Component, kMaxDepth> stack_;
    std::size_t depth_;
    Clock::time_point lastMark_;

    std::array<std::uint64_t, kNumComponents> wallNs_;
    std::array<std::uint64_t, kNumComponents> modelNs_;
    std::array<std::uint64_t, kNumComponents> flushes_;
    std::array<std::uint64_t, kNumComponents> fences_;
    std::array<std::uint64_t, kNumComponents> readMisses_;
    std::array<std::uint64_t, kNumComponents> scopes_;
};

/**
 * RAII tag for a code region. Null tracker means the wall/model
 * accounting is disabled; the thread-local component tag (see
 * currentThreadComponent) is always maintained — it is two
 * thread-local writes, cheap enough to keep unconditional.
 */
class PhaseScope
{
  public:
    PhaseScope(PhaseTracker *tracker, Component comp) : tracker_(tracker)
    {
        detail::pushThreadComponent(comp);
        if (tracker_)
            tracker_->push(comp);
    }

    ~PhaseScope()
    {
        detail::popThreadComponent();
        if (tracker_)
            tracker_->pop();
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    PhaseTracker *tracker_;
};

} // namespace fasp::pm

#endif // FASP_PM_PHASE_H
