/**
 * @file
 * Structured output of the persistency-ordering checker: one Violation
 * per detected discipline breach, carrying the offending cache line,
 * the site tag active when it fired, and a short state-machine trace of
 * the line's recent history so the report reads like a pmemcheck log.
 */

#ifndef FASP_PM_CHECKER_REPORT_H
#define FASP_PM_CHECKER_REPORT_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace fasp::pm {

/** The discipline breaches the checker detects (DESIGN.md
 *  "§ Persistency checker"; V6/V7 belong to the PCAS dirty-flag
 *  protocol, DESIGN.md §14). */
enum class ViolationKind : std::uint8_t {
    /** V1: a line stored inside a transaction is still DIRTY (never
     *  flushed) when the engine declares the commit point or finishes
     *  the transaction. */
    UnflushedStoreAtCommit,
    /** V2: clflush of a line with no store since its last writeback —
     *  pure latency waste the model silently pays for. */
    RedundantFlush,
    /** V3: a line stored inside a transaction was flushed but no fence
     *  ordered the flush before the commit point. */
    UnfencedFlushAtCommit,
    /** V4: a line was stored to after its flush but before the fence
     *  that was meant to order that flush (torn-durability window). */
    StoreInFlushFenceWindow,
    /** V5: a non-scratch line is still dirty (or flushed-unfenced) at
     *  clean shutdown. */
    DirtyAtShutdown,
    /** V6: a plain read() overlapped an 8-byte word carrying a PCAS
     *  dirty tag. The tag means "this value may not be durable yet";
     *  consuming it without helping (flush + clear through the pcas
     *  layer) can leak a non-durable value into durable state. */
    TaggedRead,
    /** V7: a PCAS dirty tag was still set at clean shutdown — some
     *  persistent CAS was published but never flushed + cleared. (A
     *  crash may legally leave tags behind; a clean shutdown may not.) */
    UnclearedTag,
};

const char *violationKindName(ViolationKind kind);

/** One step of a line's recent history, kept in a small per-line ring. */
struct LineTraceEvent
{
    enum class Op : std::uint8_t {
        Store,
        ScratchStore,
        Flush,
        Fence,
    };

    Op op = Op::Store;
    std::uint64_t eventIndex = 0; //!< PmDevice::eventCount() at the op
    const char *site = nullptr;   //!< active site tag (may be null)
};

const char *lineTraceOpName(LineTraceEvent::Op op);

/** One detected violation. */
struct Violation
{
    static constexpr std::size_t kTraceDepth = 8;

    ViolationKind kind = ViolationKind::UnflushedStoreAtCommit;
    PmOffset lineBase = 0;        //!< cache-line base address
    std::uint64_t eventIndex = 0; //!< device event index when detected
    const char *site = nullptr;   //!< site tag active at detection

    /** Oldest-first history of the line (up to kTraceDepth entries). */
    std::array<LineTraceEvent, kTraceDepth> trace{};
    std::size_t traceLen = 0;

    std::string toString() const;
};

/**
 * Accumulates violations. Stores the first kMaxStored in full; beyond
 * that only the per-kind counters grow, so a hot loop with a systematic
 * bug cannot blow up memory.
 */
class CheckerReport
{
  public:
    static constexpr std::size_t kMaxStored = 64;

    void add(Violation v);

    bool empty() const { return total_ == 0; }
    std::uint64_t total() const { return total_; }
    std::uint64_t count(ViolationKind kind) const;
    std::uint64_t dropped() const { return dropped_; }

    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    void clear();

    /** Multi-line human-readable report (empty string if clean). */
    std::string toString() const;

  private:
    std::vector<Violation> violations_;
    std::array<std::uint64_t, 7> countByKind_{};
    std::uint64_t total_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace fasp::pm

#endif // FASP_PM_CHECKER_REPORT_H
