#include "pm/checker.h"

#include <algorithm>

namespace fasp::pm {

PersistencyChecker::PersistencyChecker(const Config &config)
    : config_(config)
{}

void
PersistencyChecker::LineInfo::record(LineTraceEvent::Op op,
                                     std::uint64_t eventIndex,
                                     const char *site)
{
    trace[traceHead] = LineTraceEvent{op, eventIndex, site};
    traceHead = static_cast<std::uint8_t>(
        (traceHead + 1) % Violation::kTraceDepth);
    if (traceLen < Violation::kTraceDepth)
        traceLen++;
}

PersistencyChecker::ThreadState &
PersistencyChecker::myState()
{
    return threads_[std::this_thread::get_id()];
}

void
PersistencyChecker::reportLine(ViolationKind kind, PmOffset base,
                               const LineInfo &info,
                               std::uint64_t eventIndex,
                               const char *site)
{
    Violation v;
    v.kind = kind;
    v.lineBase = base;
    v.eventIndex = eventIndex;
    v.site = site;
    v.traceLen = info.traceLen;
    // Copy the ring oldest-first.
    std::size_t oldest =
        (info.traceHead + Violation::kTraceDepth - info.traceLen) %
        Violation::kTraceDepth;
    for (std::size_t i = 0; i < info.traceLen; ++i)
        v.trace[i] = info.trace[(oldest + i) % Violation::kTraceDepth];
    report_.add(std::move(v));
}

void
PersistencyChecker::storeLine(PmOffset base, bool scratch,
                              std::uint64_t eventIndex,
                              const char *site, ThreadState &ts)
{
    LineInfo &li = lines_[base];
    li.record(scratch ? LineTraceEvent::Op::ScratchStore
                      : LineTraceEvent::Op::Store,
              eventIndex, site);
    switch (li.state) {
      case LineState::Clean:
      case LineState::Fenced:
        li.state = LineState::Dirty;
        li.scratchOnly = scratch;
        break;
      case LineState::Dirty:
        if (!scratch)
            li.scratchOnly = false;
        break;
      case LineState::Flushed:
        // Store into the flush->fence window. Judged at the fence: if
        // the line is re-flushed first (adjacent log frames sharing a
        // boundary line do this) the window closed harmlessly.
        li.state = LineState::Dirty;
        if (scratch) {
            li.scratchOnly = true;
        } else {
            li.scratchOnly = false;
            li.flushAmbiguous = true;
        }
        break;
    }
    if (ts.txActive && !scratch && ts.txMembers.insert(base).second)
        ts.txLines.push_back(base);
}

void
PersistencyChecker::onStore(PmOffset off, std::size_t len, bool scratch,
                            std::uint64_t eventIndex, const char *site)
{
    if (len == 0)
        return;
    MutexLock lk(&mu_);
    ThreadState &ts = myState();
    for (PmOffset base = cacheLineBase(off); base < off + len;
         base += kCacheLineSize) {
        storeLine(base, scratch, eventIndex, site, ts);
    }
}

void
PersistencyChecker::onCasStore(PmOffset off, std::uint64_t eventIndex,
                               const char *site)
{
    MutexLock lk(&mu_);
    ThreadState &ts = myState();
    PmOffset base = cacheLineBase(off);
    LineInfo &li = lines_[base];
    li.record(LineTraceEvent::Op::Store, eventIndex, site);
    switch (li.state) {
      case LineState::Clean:
      case LineState::Fenced:
      case LineState::Dirty:
        li.state = LineState::Dirty;
        li.scratchOnly = false;
        break;
      case LineState::Flushed:
        // An 8-byte CAS landing in another thread's flush->fence
        // window is protocol-legal (DESIGN.md §14): the word store is
        // atomic, the earlier flush wrote back a complete line, and
        // whichever pcas caller issued this CAS either flushes +
        // fences it before claiming durability (a publish) or marks
        // it scratch (the lazy tag clear). So the line re-dirties
        // without arming the V4 stale-writeback report.
        li.state = LineState::Dirty;
        li.scratchOnly = false;
        break;
    }
    if (ts.txActive && ts.txMembers.insert(base).second)
        ts.txLines.push_back(base);
}

void
PersistencyChecker::onFlush(PmOffset off, std::uint64_t eventIndex,
                            const char *site)
{
    MutexLock lk(&mu_);
    PmOffset base = cacheLineBase(off);
    LineInfo &li = lines_[base];
    li.record(LineTraceEvent::Op::Flush, eventIndex, site);
    switch (li.state) {
      case LineState::Dirty:
        li.state = LineState::Flushed;
        li.flushAmbiguous = false;
        myState().flushedSinceFence.push_back(base);
        break;
      case LineState::Clean:
      case LineState::Flushed:
      case LineState::Fenced:
        // Nothing dirty to write back. Lines that ever held a PCAS
        // dirty tag are exempt for good: a helping thread cannot know
        // whether the tag owner already flushed — or already cleared,
        // in the window between the helper's tag check and its flush —
        // so the protocol mandates flushes that are only sometimes
        // redundant (DESIGN.md §14). V2 is a perf lint; surrendering
        // it on pcas-managed header lines is the price of helping.
        if (config_.trackRedundantFlush &&
            everTaggedLines_.find(base) == everTaggedLines_.end() &&
            !lineHasTaggedWord(base))
            reportLine(ViolationKind::RedundantFlush, base, li,
                       eventIndex, site);
        break;
    }
}

void
PersistencyChecker::onFence(std::uint64_t eventIndex, const char *site)
{
    MutexLock lk(&mu_);
    // SFENCE orders only the calling thread's own write-backs; other
    // threads' flushed lines stay FLUSHED until *they* fence.
    ThreadState &ts = myState();
    for (PmOffset base : ts.flushedSinceFence) {
        auto it = lines_.find(base);
        if (it == lines_.end())
            continue;
        LineInfo &li = it->second;
        if (li.state == LineState::Flushed) {
            li.state = LineState::Fenced;
            li.record(LineTraceEvent::Op::Fence, eventIndex, site);
        } else if (li.state == LineState::Dirty && li.flushAmbiguous) {
            // The store that landed between flush and fence was never
            // re-flushed: the fence ordered a stale writeback and the
            // line can tear at a later crash.
            li.record(LineTraceEvent::Op::Fence, eventIndex, site);
            reportLine(ViolationKind::StoreInFlushFenceWindow, base,
                       li, eventIndex, site);
            li.flushAmbiguous = false;
        }
        // Fenced: duplicate entry for a line flushed twice this epoch.
    }
    ts.flushedSinceFence.clear();
}

void
PersistencyChecker::onCrash()
{
    MutexLock lk(&mu_);
    atRiskAtCrash_.clear();
    for (const auto &[base, li] : lines_) {
        if (li.state == LineState::Dirty)
            atRiskAtCrash_.insert(base);
    }
    lines_.clear();
    threads_.clear();
    // The crash left whatever tag bits were durable in the image;
    // recovery resolves them through the pcas layer. Tracking restarts
    // clean.
    taggedWords_.clear();
    taggedCount_.store(0, std::memory_order_release);
    everTaggedLines_.clear();
}

void
PersistencyChecker::onMarkScratch(PmOffset off, std::size_t len)
{
    if (len == 0)
        return;
    MutexLock lk(&mu_);
    for (PmOffset base = cacheLineBase(off); base < off + len;
         base += kCacheLineSize) {
        auto it = lines_.find(base);
        if (it == lines_.end())
            continue;
        if (it->second.state == LineState::Dirty ||
            it->second.state == LineState::Flushed) {
            it->second.scratchOnly = true;
            it->second.flushAmbiguous = false;
        }
    }
}

void
PersistencyChecker::onTxBegin()
{
    MutexLock lk(&mu_);
    ThreadState &ts = myState();
    if (ts.txActive)
        return; // joined an enclosing transaction
    ts.txActive = true;
    ts.txLines.clear();
    ts.txMembers.clear();
    ts.reported.clear();
}

void
PersistencyChecker::checkTxSetPersisted(ThreadState &ts,
                                        std::uint64_t eventIndex,
                                        const char *site)
{
    for (PmOffset base : ts.txLines) {
        auto it = lines_.find(base);
        if (it == lines_.end())
            continue;
        LineInfo &li = it->second;
        if (li.scratchOnly || ts.reported.count(base))
            continue;
        if (li.state == LineState::Dirty) {
            reportLine(ViolationKind::UnflushedStoreAtCommit, base, li,
                       eventIndex, site);
            ts.reported.insert(base);
        } else if (li.state == LineState::Flushed) {
            reportLine(ViolationKind::UnfencedFlushAtCommit, base, li,
                       eventIndex, site);
            ts.reported.insert(base);
        }
    }
}

void
PersistencyChecker::onTxCommitPoint(std::uint64_t eventIndex,
                                    const char *site)
{
    MutexLock lk(&mu_);
    ThreadState &ts = myState();
    if (!ts.txActive)
        return;
    checkTxSetPersisted(ts, eventIndex, site);
}

void
PersistencyChecker::onTxEnd(bool committed, std::uint64_t eventIndex,
                            const char *site)
{
    MutexLock lk(&mu_);
    ThreadState &ts = myState();
    if (!ts.txActive)
        return;
    if (committed) {
        checkTxSetPersisted(ts, eventIndex, site);
    } else {
        // Aborted: whatever the transaction left dirty is dead data
        // the engine has forgotten; treat it as scratch.
        for (PmOffset base : ts.txLines) {
            auto it = lines_.find(base);
            if (it == lines_.end())
                continue;
            if (it->second.state == LineState::Dirty ||
                it->second.state == LineState::Flushed) {
                it->second.scratchOnly = true;
                it->second.flushAmbiguous = false;
            }
        }
    }
    ts.txLines.clear();
    ts.txMembers.clear();
    ts.reported.clear();
    ts.txActive = false;
}

bool
PersistencyChecker::lineHasTaggedWord(PmOffset base) const
{
    if (taggedWords_.empty())
        return false;
    for (PmOffset w = base; w < base + kCacheLineSize; w += 8) {
        if (taggedWords_.count(w) > 0)
            return true;
    }
    return false;
}

void
PersistencyChecker::onTagSet(PmOffset wordOff, std::uint64_t eventIndex,
                             const char *site)
{
    MutexLock lk(&mu_);
    if (taggedWords_.insert(wordOff).second)
        taggedCount_.store(taggedWords_.size(),
                           std::memory_order_release);
    everTaggedLines_.insert(cacheLineBase(wordOff));
    // The tag publish is a store the pcas layer must still flush; keep
    // the line history readable by recording it.
    lines_[cacheLineBase(wordOff)].record(LineTraceEvent::Op::Store,
                                          eventIndex, site);
}

void
PersistencyChecker::onTagClear(PmOffset wordOff)
{
    MutexLock lk(&mu_);
    if (taggedWords_.erase(wordOff) > 0)
        taggedCount_.store(taggedWords_.size(),
                           std::memory_order_release);
}

void
PersistencyChecker::onRead(PmOffset off, std::size_t len,
                           std::uint64_t eventIndex, const char *site)
{
    if (taggedCount_.load(std::memory_order_acquire) == 0 || len == 0)
        return;
    MutexLock lk(&mu_);
    // Tagged words are 8-aligned; scan the aligned words the read
    // overlaps. The tagged set is tiny (bounded by in-flight CASes),
    // so probe whichever side is smaller.
    PmOffset first = off & ~static_cast<PmOffset>(7);
    PmOffset last = (off + len - 1) & ~static_cast<PmOffset>(7);
    std::size_t words = (last - first) / 8 + 1;
    if (taggedWords_.size() <= words) {
        for (PmOffset w : taggedWords_) {
            if (w >= first && w <= last) {
                reportLine(ViolationKind::TaggedRead, cacheLineBase(w),
                           lines_[cacheLineBase(w)], eventIndex, site);
            }
        }
        return;
    }
    for (PmOffset w = first; w <= last; w += 8) {
        if (taggedWords_.count(w)) {
            reportLine(ViolationKind::TaggedRead, cacheLineBase(w),
                       lines_[cacheLineBase(w)], eventIndex, site);
        }
    }
}

bool
PersistencyChecker::txActive() const
{
    MutexLock lk(&mu_);
    auto it = threads_.find(std::this_thread::get_id());
    return it != threads_.end() && it->second.txActive;
}

void
PersistencyChecker::checkCleanShutdown(std::uint64_t eventIndex)
{
    MutexLock lk(&mu_);
    std::vector<PmOffset> bases;
    for (const auto &[base, li] : lines_) {
        if (li.scratchOnly)
            continue;
        if (li.state == LineState::Dirty ||
            li.state == LineState::Flushed)
            bases.push_back(base);
    }
    std::sort(bases.begin(), bases.end());
    for (PmOffset base : bases) {
        reportLine(ViolationKind::DirtyAtShutdown, base, lines_[base],
                   eventIndex, nullptr);
    }
    // V7: no PCAS dirty tag may survive a *clean* shutdown (a crash
    // may leave tags; recovery clears them lazily).
    std::vector<PmOffset> tagged(taggedWords_.begin(),
                                 taggedWords_.end());
    std::sort(tagged.begin(), tagged.end());
    for (PmOffset w : tagged) {
        reportLine(ViolationKind::UnclearedTag, cacheLineBase(w),
                   lines_[cacheLineBase(w)], eventIndex, nullptr);
    }
}

void
PersistencyChecker::forgiveUnflushed()
{
    MutexLock lk(&mu_);
    for (auto &[base, li] : lines_) {
        if (li.state == LineState::Dirty ||
            li.state == LineState::Flushed) {
            li.scratchOnly = true;
            li.flushAmbiguous = false;
        }
    }
    for (auto &[tid, ts] : threads_)
        ts.flushedSinceFence.clear();
}

PersistencyChecker::LineState
PersistencyChecker::lineState(PmOffset off) const
{
    MutexLock lk(&mu_);
    auto it = lines_.find(cacheLineBase(off));
    return it == lines_.end() ? LineState::Clean : it->second.state;
}

bool
PersistencyChecker::wasAtRiskAtCrash(PmOffset off) const
{
    MutexLock lk(&mu_);
    return atRiskAtCrash_.count(cacheLineBase(off)) > 0;
}

void
PersistencyChecker::reset()
{
    MutexLock lk(&mu_);
    lines_.clear();
    threads_.clear();
    atRiskAtCrash_.clear();
    taggedWords_.clear();
    taggedCount_.store(0, std::memory_order_release);
    report_.clear();
}

} // namespace fasp::pm
