#include "pm/checker.h"

#include <algorithm>

namespace fasp::pm {

PersistencyChecker::PersistencyChecker(const Config &config)
    : config_(config)
{}

void
PersistencyChecker::LineInfo::record(LineTraceEvent::Op op,
                                     std::uint64_t eventIndex,
                                     const char *site)
{
    trace[traceHead] = LineTraceEvent{op, eventIndex, site};
    traceHead = static_cast<std::uint8_t>(
        (traceHead + 1) % Violation::kTraceDepth);
    if (traceLen < Violation::kTraceDepth)
        traceLen++;
}

void
PersistencyChecker::reportLine(ViolationKind kind, PmOffset base,
                               const LineInfo &info,
                               std::uint64_t eventIndex,
                               const char *site)
{
    Violation v;
    v.kind = kind;
    v.lineBase = base;
    v.eventIndex = eventIndex;
    v.site = site;
    v.traceLen = info.traceLen;
    // Copy the ring oldest-first.
    std::size_t oldest =
        (info.traceHead + Violation::kTraceDepth - info.traceLen) %
        Violation::kTraceDepth;
    for (std::size_t i = 0; i < info.traceLen; ++i)
        v.trace[i] = info.trace[(oldest + i) % Violation::kTraceDepth];
    report_.add(std::move(v));
}

void
PersistencyChecker::storeLine(PmOffset base, bool scratch,
                              std::uint64_t eventIndex,
                              const char *site)
{
    LineInfo &li = lines_[base];
    li.record(scratch ? LineTraceEvent::Op::ScratchStore
                      : LineTraceEvent::Op::Store,
              eventIndex, site);
    switch (li.state) {
      case LineState::Clean:
      case LineState::Fenced:
        li.state = LineState::Dirty;
        li.scratchOnly = scratch;
        break;
      case LineState::Dirty:
        if (!scratch)
            li.scratchOnly = false;
        break;
      case LineState::Flushed:
        // Store into the flush->fence window. Judged at the fence: if
        // the line is re-flushed first (adjacent log frames sharing a
        // boundary line do this) the window closed harmlessly.
        li.state = LineState::Dirty;
        if (scratch) {
            li.scratchOnly = true;
        } else {
            li.scratchOnly = false;
            li.flushAmbiguous = true;
        }
        break;
    }
    if (txActive_ && !scratch && !li.inTxSet) {
        li.inTxSet = true;
        txLines_.push_back(base);
    }
}

void
PersistencyChecker::onStore(PmOffset off, std::size_t len, bool scratch,
                            std::uint64_t eventIndex, const char *site)
{
    if (len == 0)
        return;
    for (PmOffset base = cacheLineBase(off); base < off + len;
         base += kCacheLineSize) {
        storeLine(base, scratch, eventIndex, site);
    }
}

void
PersistencyChecker::onFlush(PmOffset off, std::uint64_t eventIndex,
                            const char *site)
{
    PmOffset base = cacheLineBase(off);
    LineInfo &li = lines_[base];
    li.record(LineTraceEvent::Op::Flush, eventIndex, site);
    switch (li.state) {
      case LineState::Dirty:
        li.state = LineState::Flushed;
        li.flushAmbiguous = false;
        flushedSinceFence_.push_back(base);
        break;
      case LineState::Clean:
      case LineState::Flushed:
      case LineState::Fenced:
        // Nothing dirty to write back.
        if (config_.trackRedundantFlush)
            reportLine(ViolationKind::RedundantFlush, base, li,
                       eventIndex, site);
        break;
    }
}

void
PersistencyChecker::onFence(std::uint64_t eventIndex, const char *site)
{
    for (PmOffset base : flushedSinceFence_) {
        auto it = lines_.find(base);
        if (it == lines_.end())
            continue;
        LineInfo &li = it->second;
        if (li.state == LineState::Flushed) {
            li.state = LineState::Fenced;
            li.record(LineTraceEvent::Op::Fence, eventIndex, site);
        } else if (li.state == LineState::Dirty && li.flushAmbiguous) {
            // The store that landed between flush and fence was never
            // re-flushed: the fence ordered a stale writeback and the
            // line can tear at a later crash.
            li.record(LineTraceEvent::Op::Fence, eventIndex, site);
            reportLine(ViolationKind::StoreInFlushFenceWindow, base,
                       li, eventIndex, site);
            li.flushAmbiguous = false;
        }
        // Fenced: duplicate entry for a line flushed twice this epoch.
    }
    flushedSinceFence_.clear();
}

void
PersistencyChecker::onCrash()
{
    atRiskAtCrash_.clear();
    for (const auto &[base, li] : lines_) {
        if (li.state == LineState::Dirty)
            atRiskAtCrash_.insert(base);
    }
    lines_.clear();
    flushedSinceFence_.clear();
    txLines_.clear();
    txActive_ = false;
}

void
PersistencyChecker::onMarkScratch(PmOffset off, std::size_t len)
{
    if (len == 0)
        return;
    for (PmOffset base = cacheLineBase(off); base < off + len;
         base += kCacheLineSize) {
        auto it = lines_.find(base);
        if (it == lines_.end())
            continue;
        if (it->second.state == LineState::Dirty ||
            it->second.state == LineState::Flushed) {
            it->second.scratchOnly = true;
            it->second.flushAmbiguous = false;
        }
    }
}

void
PersistencyChecker::onTxBegin()
{
    if (txActive_)
        return; // joined an enclosing transaction
    txActive_ = true;
    txLines_.clear();
}

void
PersistencyChecker::checkTxSetPersisted(std::uint64_t eventIndex,
                                        const char *site)
{
    for (PmOffset base : txLines_) {
        auto it = lines_.find(base);
        if (it == lines_.end())
            continue;
        LineInfo &li = it->second;
        if (li.scratchOnly || li.reportedThisTx)
            continue;
        if (li.state == LineState::Dirty) {
            reportLine(ViolationKind::UnflushedStoreAtCommit, base, li,
                       eventIndex, site);
            li.reportedThisTx = true;
        } else if (li.state == LineState::Flushed) {
            reportLine(ViolationKind::UnfencedFlushAtCommit, base, li,
                       eventIndex, site);
            li.reportedThisTx = true;
        }
    }
}

void
PersistencyChecker::onTxCommitPoint(std::uint64_t eventIndex,
                                    const char *site)
{
    if (!txActive_)
        return;
    checkTxSetPersisted(eventIndex, site);
}

void
PersistencyChecker::onTxEnd(bool committed, std::uint64_t eventIndex,
                            const char *site)
{
    if (!txActive_)
        return;
    if (committed) {
        checkTxSetPersisted(eventIndex, site);
    } else {
        // Aborted: whatever the transaction left dirty is dead data
        // the engine has forgotten; treat it as scratch.
        for (PmOffset base : txLines_) {
            auto it = lines_.find(base);
            if (it == lines_.end())
                continue;
            if (it->second.state == LineState::Dirty ||
                it->second.state == LineState::Flushed) {
                it->second.scratchOnly = true;
                it->second.flushAmbiguous = false;
            }
        }
    }
    for (PmOffset base : txLines_) {
        auto it = lines_.find(base);
        if (it != lines_.end()) {
            it->second.inTxSet = false;
            it->second.reportedThisTx = false;
        }
    }
    txLines_.clear();
    txActive_ = false;
}

void
PersistencyChecker::checkCleanShutdown(std::uint64_t eventIndex)
{
    std::vector<PmOffset> bases;
    for (const auto &[base, li] : lines_) {
        if (li.scratchOnly)
            continue;
        if (li.state == LineState::Dirty ||
            li.state == LineState::Flushed)
            bases.push_back(base);
    }
    std::sort(bases.begin(), bases.end());
    for (PmOffset base : bases) {
        reportLine(ViolationKind::DirtyAtShutdown, base, lines_[base],
                   eventIndex, nullptr);
    }
}

void
PersistencyChecker::forgiveUnflushed()
{
    for (auto &[base, li] : lines_) {
        if (li.state == LineState::Dirty ||
            li.state == LineState::Flushed) {
            li.scratchOnly = true;
            li.flushAmbiguous = false;
        }
    }
    flushedSinceFence_.clear();
}

PersistencyChecker::LineState
PersistencyChecker::lineState(PmOffset off) const
{
    auto it = lines_.find(cacheLineBase(off));
    return it == lines_.end() ? LineState::Clean : it->second.state;
}

bool
PersistencyChecker::wasAtRiskAtCrash(PmOffset off) const
{
    return atRiskAtCrash_.count(cacheLineBase(off)) > 0;
}

void
PersistencyChecker::reset()
{
    lines_.clear();
    flushedSinceFence_.clear();
    txLines_.clear();
    txActive_ = false;
    atRiskAtCrash_.clear();
    report_.clear();
}

} // namespace fasp::pm
