/**
 * @file
 * Raw operation counters for a PM device.
 */

#ifndef FASP_PM_STATS_H
#define FASP_PM_STATS_H

#include <atomic>
#include <cstdint>

namespace fasp::pm {

/**
 * Monotonic counters of every operation the device performed. These feed
 * the write-amplification table and Figure 9b (clflush counts).
 *
 * The fields are relaxed atomics so concurrent clients can charge the
 * shared device without tearing; copies (taken for interval deltas and
 * end-of-run snapshots) load each field independently, so a snapshot
 * taken mid-run is per-field consistent only. Take snapshots after the
 * worker threads are joined for exact numbers.
 */
struct PmStats
{
    std::atomic<std::uint64_t> stores{0};     //!< store operations to PM
    std::atomic<std::uint64_t> storeBytes{0}; //!< bytes stored to PM
    std::atomic<std::uint64_t> loads{0};      //!< load operations from PM
    std::atomic<std::uint64_t> loadBytes{0};  //!< bytes loaded from PM
    std::atomic<std::uint64_t> clflushes{0};  //!< cache-line flushes issued
    std::atomic<std::uint64_t> fences{0};     //!< memory fences issued
    std::atomic<std::uint64_t> readMisses{0}; //!< simulated read misses
    std::atomic<std::uint64_t> modelNs{0};    //!< modelled PM latency total

    PmStats() = default;

    PmStats(const PmStats &other) { copyFrom(other); }

    PmStats &operator=(const PmStats &other)
    {
        copyFrom(other);
        return *this;
    }

    void reset() { *this = PmStats{}; }

    /** Element-wise difference (for measuring an interval). */
    PmStats since(const PmStats &base) const
    {
        PmStats d;
        d.stores = stores - base.stores;
        d.storeBytes = storeBytes - base.storeBytes;
        d.loads = loads - base.loads;
        d.loadBytes = loadBytes - base.loadBytes;
        d.clflushes = clflushes - base.clflushes;
        d.fences = fences - base.fences;
        d.readMisses = readMisses - base.readMisses;
        d.modelNs = modelNs - base.modelNs;
        return d;
    }

  private:
    void copyFrom(const PmStats &other)
    {
        stores = other.stores.load(std::memory_order_relaxed);
        storeBytes = other.storeBytes.load(std::memory_order_relaxed);
        loads = other.loads.load(std::memory_order_relaxed);
        loadBytes = other.loadBytes.load(std::memory_order_relaxed);
        clflushes = other.clflushes.load(std::memory_order_relaxed);
        fences = other.fences.load(std::memory_order_relaxed);
        readMisses = other.readMisses.load(std::memory_order_relaxed);
        modelNs = other.modelNs.load(std::memory_order_relaxed);
    }
};

} // namespace fasp::pm

#endif // FASP_PM_STATS_H
