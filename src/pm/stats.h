/**
 * @file
 * Raw operation counters for a PM device.
 */

#ifndef FASP_PM_STATS_H
#define FASP_PM_STATS_H

#include <cstdint>

namespace fasp::pm {

/**
 * Monotonic counters of every operation the device performed. These feed
 * the write-amplification table and Figure 9b (clflush counts).
 */
struct PmStats
{
    std::uint64_t stores = 0;      //!< store operations to PM
    std::uint64_t storeBytes = 0;  //!< bytes stored to PM
    std::uint64_t loads = 0;       //!< load operations from PM
    std::uint64_t loadBytes = 0;   //!< bytes loaded from PM
    std::uint64_t clflushes = 0;   //!< cache-line flushes issued
    std::uint64_t fences = 0;      //!< memory fences issued
    std::uint64_t readMisses = 0;  //!< simulated CPU-cache read misses
    std::uint64_t modelNs = 0;     //!< total modelled PM latency charged

    void reset() { *this = PmStats{}; }

    /** Element-wise difference (for measuring an interval). */
    PmStats since(const PmStats &base) const
    {
        PmStats d;
        d.stores = stores - base.stores;
        d.storeBytes = storeBytes - base.storeBytes;
        d.loads = loads - base.loads;
        d.loadBytes = loadBytes - base.loadBytes;
        d.clflushes = clflushes - base.clflushes;
        d.fences = fences - base.fences;
        d.readMisses = readMisses - base.readMisses;
        d.modelNs = modelNs - base.modelNs;
        return d;
    }
};

} // namespace fasp::pm

#endif // FASP_PM_STATS_H
