/**
 * @file
 * PmDevice: the emulated persistent-memory device.
 *
 * The device models a flat byte-addressable PM address space plus the
 * volatile CPU cache that sits in front of it. It supports two modes:
 *
 *  - Direct: stores hit the durable image immediately. Used by the
 *    benchmarks; latency is still charged through the model, but crashes
 *    cannot be simulated. Fast.
 *
 *  - CacheSim: stores land in a simulated CPU cache (a map of dirty
 *    64-byte lines) and only reach the durable image on clflush. crash()
 *    discards the cache — exactly what power failure does to unflushed
 *    data. Used by the failure-atomicity property tests.
 *
 * All PM accesses made by the library are mediated by this class, which
 * is what makes both the latency accounting and the crash simulation
 * sound.
 *
 * Thread safety: the data path (write/read/clflush/sfence and the
 * counters they maintain) is safe to drive from many threads at once —
 * counters are relaxed atomics, the simulated dirty-line cache is
 * sharded under per-shard mutexes, and the site tag plus the per-thread
 * latency accumulator are thread-local. *Logical* exclusion over the
 * bytes themselves (no two threads mutating one page) is the engines'
 * job, via the pager's per-page latch table; the device deliberately
 * does not serialize byte access, so a latch-protocol bug shows up as a
 * real data race under ThreadSanitizer instead of being masked here.
 * Crash simulation (crash/reviveAfterCrash/setCrashInjector) and
 * configuration (setLatency/setChecker/setPhaseTracker) are
 * quiescent-state operations: call them only while no other thread is
 * accessing the device.
 */

#ifndef FASP_PM_DEVICE_H
#define FASP_PM_DEVICE_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <unordered_map>
#include <vector>

#include "common/byte_io.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "pm/crash.h"
#include "pm/latency.h"
#include "pm/phase.h"
#include "pm/stats.h"

namespace fasp {
class Rng;
} // namespace fasp

namespace fasp::pm {

class PersistencyChecker;

/**
 * Allocator that places the durable image on a 64-byte (cache-line)
 * boundary. Hook points hand `durable_.data() + off` to the model
 * checker, which names per-line resources by `addr / 64`; with an
 * aligned base, line identity is a pure function of the device offset
 * instead of wherever the heap happened to place this buffer, so two
 * devices running the same schedule intern identical resource tokens.
 * (Real PM mappings are page-aligned, so this also matches the modelled
 * hardware.)
 */
template <typename T>
struct LineAlignedAlloc
{
    using value_type = T;

    LineAlignedAlloc() = default;
    template <typename U>
    LineAlignedAlloc(const LineAlignedAlloc<U> &) noexcept {}

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{kCacheLineSize}));
    }
    void deallocate(T *p, std::size_t n) noexcept
    {
        ::operator delete(p, n * sizeof(T),
                          std::align_val_t{kCacheLineSize});
    }

    template <typename U>
    bool operator==(const LineAlignedAlloc<U> &) const noexcept
    {
        return true;
    }
    template <typename U>
    bool operator!=(const LineAlignedAlloc<U> &) const noexcept
    {
        return false;
    }
};

/**
 * Observer of the device's persistence events, attributed to the code
 * site (SiteScope tag) and execution phase (PhaseScope Component) of
 * the *issuing thread*. Unlike the PhaseTracker this interface is
 * driven concurrently from every client thread, so implementations
 * must be thread-safe (the obs layer's PmAttribution uses relaxed
 * atomics). Attach/detach is quiescent-only, like the checker.
 */
class PmEventObserver
{
  public:
    virtual ~PmEventObserver() = default;

    /** A (non-scratch) store of @p bytes bytes was issued. */
    virtual void onPmStore(const char *site, Component phase,
                           std::size_t bytes) = 0;

    /** A clflush/clwb was issued. */
    virtual void onPmFlush(const char *site, Component phase) = 0;

    /** An sfence was issued. */
    virtual void onPmFence(const char *site, Component phase) = 0;

    /** @p ns of modelled PM latency was charged. */
    virtual void onPmModelNs(const char *site, Component phase,
                             std::uint64_t ns) = 0;
};

/**
 * Fault-injection hook: silently discard the durability effect of
 * selected flushes (CacheSim mode only). A dropped flush still raises
 * the event, charges latency, and is reported to the checker and
 * observer — the software believes the line persisted — but the dirty
 * line is discarded instead of written back to the durable image. This
 * models a missing-flush bug the runtime ordering checker *cannot* see
 * (the flush instruction was issued); only an end-to-end oracle that
 * compares post-crash contents against a model catches it. Used by
 * fasp-soak's seeded must-fail mutation. Attach/detach is
 * quiescent-only; shouldDrop() may be called from any thread.
 */
class FlushDropper
{
  public:
    virtual ~FlushDropper() = default;

    /** Return true to drop the write-back of the line at @p lineBase;
     *  @p index is the device-wide persistence-event index. */
    virtual bool shouldDrop(PmOffset lineBase, std::uint64_t index) = 0;
};

/** Device operating mode; see file comment. */
enum class PmMode : std::uint8_t {
    Direct,   //!< stores persist immediately (benchmarking)
    CacheSim, //!< stores buffered in a simulated CPU cache (crash tests)
};

/** How crash() treats dirty cache lines. */
enum class CrashPolicy : std::uint8_t {
    DropAll,      //!< no dirty line survives (clean power cut)
    RandomLines,  //!< each dirty line independently persists or not
                  //!< (models arbitrary cache eviction before the crash)
    TornLines,    //!< each aligned 8-byte word of each dirty line
                  //!< independently persists (8-byte atomic unit only;
                  //!< the adversary for schemes needing line atomicity)
};

/** Construction-time configuration of a device. */
struct PmConfig
{
    std::size_t size = 64u << 20;        //!< device capacity in bytes
    PmMode mode = PmMode::Direct;
    LatencyModel latency;
    bool chargeReads = true;             //!< model read-miss latency
    std::size_t tagCacheLines = 1u << 19;//!< simulated CPU cache capacity
                                         //!< (default 32 MiB of lines,
                                         //!< close to the testbed's LLC)
    CrashPolicy crashPolicy = CrashPolicy::DropAll;
    std::uint64_t crashSeed = 42;        //!< RNG seed for adversarial
                                         //!< crash policies

    /** Model CLWB instead of CLFLUSH: the written-back line stays in
     *  the CPU cache, so later reads of it do not pay PM latency
     *  (the paper's Figure 3 issues CLWBs). Same write-latency charge
     *  and durability semantics. */
    bool useClwb = false;
};

/**
 * Emulated PM device; see file comment for the concurrency contract.
 */
class PmDevice
{
  public:
    explicit PmDevice(const PmConfig &config);
    ~PmDevice();

    PmDevice(const PmDevice &) = delete;
    PmDevice &operator=(const PmDevice &) = delete;

    /** Device capacity in bytes. */
    std::size_t size() const { return durable_.size(); }

    PmMode mode() const { return config_.mode; }

    const LatencyModel &latency() const { return config_.latency; }

    /** Replace the latency model (benchmark sweeps; quiescent only). */
    void setLatency(const LatencyModel &model)
    {
        config_.latency = model;
    }

    // --- Data path -----------------------------------------------------

    /** Store @p len bytes from @p src at @p off. Volatile until flushed
     *  (CacheSim) or immediately durable (Direct). */
    void write(PmOffset off, const void *src, std::size_t len);

    /** Load @p len bytes at @p off into @p dst, charging read latency. */
    void read(PmOffset off, void *dst, std::size_t len);

    /** Typed store/load helpers (little-endian on-PM format). */
    void writeU16(PmOffset off, std::uint16_t v) { write(off, &v, 2); }
    void writeU32(PmOffset off, std::uint32_t v) { write(off, &v, 4); }
    void writeU64(PmOffset off, std::uint64_t v) { write(off, &v, 8); }

    std::uint16_t readU16(PmOffset off)
    {
        std::uint16_t v;
        read(off, &v, 2);
        return v;
    }

    std::uint32_t readU32(PmOffset off)
    {
        std::uint32_t v;
        read(off, &v, 4);
        return v;
    }

    std::uint64_t readU64(PmOffset off)
    {
        std::uint64_t v;
        read(off, &v, 8);
        return v;
    }

    /** Fill [off, off+len) with @p byte (a store). */
    void memset(PmOffset off, std::uint8_t byte, std::size_t len);

    // --- Atomic primitives (the persistent-CAS substrate) ---------------

    /**
     * Atomic compare-and-swap of the aligned 8-byte word at @p off.
     * On success the word becomes @p desired (volatile until flushed in
     * CacheSim mode, like any store) and true is returned; on failure
     * @p expected is updated to the current value. @p off must be
     * 8-byte aligned. Raises a PmCas scheduling point and counts as a
     * store (success) or load (failure) in the accounting.
     *
     * This is the ONLY cross-thread atomic the device offers; all
     * callers must go through src/pm/pcas.* (enforced by the
     * fasp-analyze `raw-cas` rule) so the dirty-flag persistence
     * protocol stays in one place.
     */
    bool casU64(PmOffset off, std::uint64_t &expected,
                std::uint64_t desired);

    /** Atomic (acquire) load of the aligned 8-byte word at @p off.
     *  Unlike read() this never consults the checker's tagged-word
     *  tracking: it is the pcas layer's tag-aware read. */
    std::uint64_t loadU64Atomic(PmOffset off);

    /** Store that is best-effort by contract (free-list hints, lazily
     *  rebuilt metadata). Identical to write() on the data path; the
     *  attached checker does not require it to become durable. */
    void writeScratch(PmOffset off, const void *src, std::size_t len);

    // --- Persistence path ----------------------------------------------

    /** Flush the cache line containing @p off to the durable image. */
    void clflush(PmOffset off);

    /** clflush every line overlapping [off, off+len). */
    void flushRange(PmOffset off, std::size_t len);

    /** Store fence: orders the calling thread's prior flushes before
     *  its later stores. Modelled as an accounting event only. */
    void sfence();

    // --- Persistency checking ------------------------------------------

    /** Attach the persistency-ordering checker (nullptr to detach;
     *  quiescent only). The checker observes every
     *  store/clflush/sfence/crash, from every thread. */
    void setChecker(PersistencyChecker *checker)
    {
        checker_.store(checker, std::memory_order_release);
    }

    PersistencyChecker *checker() const
    {
        return checker_.load(std::memory_order_acquire);
    }

    /** Declare pending stores in [off, off+len) best-effort after the
     *  fact (e.g. the content of a page being freed). No-op without a
     *  checker. */
    void markScratch(PmOffset off, std::size_t len);

    /** Attach a persistence-event observer (nullptr to detach;
     *  quiescent only). The observer sees every store/flush/fence and
     *  modelled-latency charge, billed to the issuing thread's site
     *  tag and phase Component, from every thread. */
    void setObserver(PmEventObserver *observer)
    {
        observer_.store(observer, std::memory_order_release);
    }

    PmEventObserver *observer() const
    {
        return observer_.load(std::memory_order_acquire);
    }

    /**
     * Commit-protocol annotations for the checker. txBegin() opens the
     * *calling thread's* transaction write set (nested calls join the
     * enclosing one); txCommitPoint() marks the instant just before the
     * store that makes the transaction visible to recovery — every line
     * of the write set must be flushed AND fenced by then; txEnd()
     * closes the set (committed: re-check; aborted: the leftover dirty
     * lines are forgotten data, exempt). All three are safe on a
     * crashed device (they run during unwinding) and no-ops without a
     * checker. Under concurrency, call txEnd() while still holding
     * whatever excludes other threads from the write set's lines (page
     * latches, the log mutex) so no foreign store lands in the set
     * between the last fence and the check.
     */
    void txBegin();
    void txCommitPoint();
    void txEnd(bool committed = true);

    /** Install @p site as the calling thread's active site tag recorded
     *  into checker traces, returning the previous tag (see SiteScope).
     *  The tag is thread-local: concurrent clients never see each
     *  other's tags. */
    const char *setSite(const char *site);

    const char *site() const;

    // --- Crash simulation ----------------------------------------------

    /** Simulate power failure per the configured CrashPolicy
     *  (CacheSim mode only; quiescent only). All unflushed lines are
     *  (partially) discarded; subsequent access panics until the device
     *  image is re-opened by a new engine. */
    void crash();

    /** True once crash() ran (or an injected crash fired). */
    bool crashed() const
    {
        return crashed_.load(std::memory_order_acquire);
    }

    /** Forget the crashed state so a recovery pass may re-open the
     *  durable image in place. Clears the simulated cache. */
    void reviveAfterCrash();

    /** Change the policy applied by subsequent crash() calls
     *  (quiescent only; fasp-soak rotates policies between rounds). */
    void setCrashPolicy(CrashPolicy policy)
    {
        config_.crashPolicy = policy;
    }

    /** Number of dirty (unflushed) lines in the simulated cache. */
    std::size_t dirtyLineCount() const
    {
        return dirtyLines_.load(std::memory_order_acquire);
    }

    /** Install @p injector (nullptr to remove; quiescent only). The
     *  device consults it at every persistence event. */
    void setCrashInjector(CrashInjector *injector)
    {
        injector_.store(injector, std::memory_order_release);
    }

    /** Install @p dropper (nullptr to remove; quiescent only). See
     *  FlushDropper for semantics; CacheSim mode only. */
    void setFlushDropper(FlushDropper *dropper)
    {
        flushDropper_.store(dropper, std::memory_order_release);
    }

    /** Global persistence-event counter (stores+flushes+fences). */
    std::uint64_t eventCount() const
    {
        return eventCount_.load(std::memory_order_acquire);
    }

    // --- Accounting ----------------------------------------------------

    PmStats &stats() { return stats_; }
    const PmStats &stats() const { return stats_; }

    /** Attach a per-component tracker (nullptr to detach; quiescent
     *  only). The tracker itself is single-threaded: attach one only
     *  for single-threaded measurement runs. */
    void setPhaseTracker(PhaseTracker *tracker)
    {
        tracker_.store(tracker, std::memory_order_release);
    }

    PhaseTracker *phaseTracker() const
    {
        return tracker_.load(std::memory_order_acquire);
    }

    /** Modelled PM latency charged by the *calling thread* since its
     *  last resetThreadModelNs(), across every device. Multi-client
     *  benches use this to model per-client PM stalls that overlap
     *  across clients on real hardware. */
    static std::uint64_t threadModelNs();

    /** Zero the calling thread's modelled-latency accumulator. */
    static void resetThreadModelNs();

    /** Monotonic clflush count issued by the *calling thread* since
     *  thread start, across every device. Never reset — readers take
     *  deltas, so the span profiler's brackets cannot be clobbered by
     *  other consumers (unlike threadModelNs). */
    static std::uint64_t threadFlushCount();

    /** Monotonic sfence count issued by the calling thread. */
    static std::uint64_t threadFenceCount();

    /** Monotonic modelled-latency total charged to the calling thread
     *  (the never-reset twin of threadModelNs). */
    static std::uint64_t threadPersistModelNs();

    /** Forget which lines the simulated CPU cache holds, so the next
     *  read of every line is a miss (used between benchmark phases). */
    void invalidateTagCache();

    // --- Model-check support --------------------------------------------

    /**
     * Compose into @p out the durable image a crash at this instant
     * would leave behind — durable bytes plus the @p policy-chosen
     * subset of currently-dirty cache lines, decided by a private RNG
     * seeded with @p seed — WITHOUT disturbing the live device. The
     * model checker forks one of these at explored fences, loads it
     * into a scratch device (resetToImage) and runs recovery on it
     * while the real run continues.
     */
    void composeCrashImage(CrashPolicy policy, std::uint64_t seed,
                           std::vector<std::uint8_t> &out);

    /**
     * Reset the device to the pristine state it would have just after
     * construction over @p len bytes of durable image @p image:
     * simulated cache emptied, crashed flag and event counter cleared,
     * tag cache invalidated. @p len must equal size(). Quiescent only;
     * the model checker uses it to rewind one device across thousands
     * of schedules instead of re-allocating 64 MiB each run.
     */
    void resetToImage(const std::uint8_t *image, std::size_t len);

    // --- Test-only inspection -------------------------------------------

    /** Direct pointer to the durable image (what survives a crash).
     *  Reading through this performs no accounting; tests only. */
    const std::uint8_t *durableData() const { return durable_.data(); }

    /** Read @p len bytes of the durable image without accounting or the
     *  cache overlay; tests only. */
    void readDurable(PmOffset off, void *dst, std::size_t len) const;

  private:
    using LineBuf = std::array<std::uint8_t, kCacheLineSize>;

    /** One shard of the simulated dirty-line cache (CacheSim mode).
     *  Sharding keeps concurrent clients off one global lock. */
    struct CacheShard
    {
        Mutex mu;
        std::unordered_map<PmOffset, LineBuf> lines GUARDED_BY(mu);
    };

    static constexpr std::size_t kCacheShards = 64;

    CacheShard &shardFor(PmOffset line_base)
    {
        return cacheShards_[(line_base / kCacheLineSize) % kCacheShards];
    }

    void writeImpl(PmOffset off, const void *src, std::size_t len,
                   bool scratch);
    std::uint64_t raiseEvent(PmEvent event);
    void chargeReadLatency(PmOffset off, std::size_t len);
    void chargeModelNs(std::uint64_t ns);
    void checkRange(PmOffset off, std::size_t len) const;
    void checkAlive() const;

    PmConfig config_;
    std::vector<std::uint8_t, LineAlignedAlloc<std::uint8_t>> durable_;

    /** Simulated CPU cache: dirty lines only (CacheSim mode). */
    std::array<CacheShard, kCacheShards> cacheShards_;
    std::atomic<std::size_t> dirtyLines_{0};

    /** Direct-mapped tag array for read-latency charging. Entry value is
     *  line_base + 1 (0 = empty). Racy updates are benign: the tag
     *  cache is a latency-charging heuristic, not data. */
    std::vector<std::atomic<PmOffset>> tags_;
    std::size_t tagMask_;

    PmStats stats_;
    std::atomic<PhaseTracker *> tracker_{nullptr};
    std::atomic<CrashInjector *> injector_{nullptr};
    std::atomic<FlushDropper *> flushDropper_{nullptr};
    std::atomic<PersistencyChecker *> checker_{nullptr};
    std::atomic<PmEventObserver *> observer_{nullptr};
    std::atomic<std::uint64_t> eventCount_{0};
    std::atomic<bool> crashed_{false};
    std::unique_ptr<Rng> crashRng_;
};

/** RAII site tag: names the code region for checker traces. */
class SiteScope
{
  public:
    SiteScope(PmDevice &device, const char *site)
        : device_(device), prev_(device.setSite(site))
    {}

    ~SiteScope() { device_.setSite(prev_); }

    SiteScope(const SiteScope &) = delete;
    SiteScope &operator=(const SiteScope &) = delete;

  private:
    PmDevice &device_;
    const char *prev_;
};

} // namespace fasp::pm

#endif // FASP_PM_DEVICE_H
